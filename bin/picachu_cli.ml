(* picachu — command-line front end.

   Subcommands:
     experiments [ID...]   reproduce the paper's tables/figures (default all)
     compile KERNEL        compile a library kernel and show IR/DFG/mapping
     stats                 per-pass pipeline stats + cache effectiveness check
     lint [KERNEL...]      static verification sweep (default: whole library);
                           --precision adds the affine-arithmetic error
                           analysis under each kernel's selected format
     formats [KERNEL...]   proven-bound automatic format selection table
     arch                  print the architecture instances and cost model
     models [--seq N]      print the workload inventory of the LLM zoo
     backends              Taylor vs NLI backend head-to-head per operator
     simulate MODEL        end-to-end PICACHU simulation of one model
     serve MODEL           multi-request traffic simulation with latency
                           percentiles (continuous vs static batching)
     cluster MODEL         multi-replica serving under a fault profile with
                           router, retries, hedging, and circuit breakers *)

open Cmdliner
module Kernels = Picachu_ir.Kernels
module Kernel = Picachu_ir.Kernel
module Dfg = Picachu_dfg.Dfg
module Analysis = Picachu_dfg.Analysis
module Fuse = Picachu_dfg.Fuse
module Arch = Picachu_cgra.Arch
module Mapper = Picachu_cgra.Mapper
module Cost = Picachu_cgra.Cost
module Mz = Picachu_llm.Model_zoo
module Workload = Picachu_llm.Workload
module Dataflow = Picachu_memory.Dataflow
module Verify = Picachu_verify.Verify
module Range = Picachu_verify.Range
module Finding = Picachu_verify.Finding
module Precision = Picachu_verify.Precision
module Numfmt = Picachu_numerics.Numfmt
open Picachu

(* ------------------------------------------------------------ experiments *)

let experiments_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID"
           ~doc:"Experiment ids (fig1, tab2, ... ; see --help). Default: all.")
  in
  let run ids =
    match ids with
    | [] -> Experiments.print_all ()
    | ids -> List.iter Experiments.print ids
  in
  let doc =
    "Reproduce the paper's evaluation artifacts. Known ids: "
    ^ String.concat ", " Experiments.ids
  in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const run $ ids)

(* ---------------------------------------------------------------- compile *)

let compile_cmd =
  let kernel_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL"
           ~doc:"Kernel name (softmax, relu, gelu, geglu, swiglu, silu, \
                 layernorm, rmsnorm, rope).")
  in
  let baseline =
    Arg.(value & flag & info [ "baseline" ] ~doc:"Use the homogeneous baseline CGRA \
                                                  and primitive-only kernel variant.")
  in
  let unroll =
    Arg.(value & opt (some int) None & info [ "unroll"; "u" ] ~docv:"UF"
           ~doc:"Fixed unroll factor (default: auto-tuned).")
  in
  let vector =
    Arg.(value & opt int 1 & info [ "vector" ] ~docv:"VF"
           ~doc:"Vector lanes (1 = FP path, 4 = INT16 path).")
  in
  let show_ir = Arg.(value & flag & info [ "ir" ] ~doc:"Print the kernel IR.") in
  let timings =
    Arg.(value & flag & info [ "timings" ]
           ~doc:"Print the per-pass pipeline instrumentation (runs, wall \
                 time, counters) for this compile.")
  in
  let dump_after =
    Arg.(value & opt (some string) None & info [ "dump-after" ] ~docv:"PASS"
           ~doc:"Dump the intermediate artifact after the named pass \
                 (vectorize, unroll, extract, fuse) each time it runs.")
  in
  let run name baseline unroll vector show_ir timings dump_after =
    let variant = if baseline then Kernels.Baseline else Kernels.picachu in
    let opts =
      if baseline then Compiler.baseline_options ()
      else Compiler.picachu_options ~vector ()
    in
    let kernel =
      try Kernels.by_name variant name
      with Not_found ->
        Printf.eprintf "unknown kernel %s\n" name;
        exit 1
    in
    if show_ir then Format.printf "%a@." Kernel.pp kernel;
    (match dump_after with
    | None -> ()
    | Some pass when List.mem pass Compiler.pass_names ->
        Pipeline.set_dump_after
          ~sink:(fun ~pass s ->
            Printf.printf "; dump after %s\n%s" pass s;
            if s = "" || s.[String.length s - 1] <> '\n' then print_newline ())
          (Some pass)
    | Some pass ->
        Printf.eprintf "unknown pass %s (known: %s)\n" pass
          (String.concat ", " Compiler.pass_names);
        exit 1);
    if timings then Compiler.reset_stats ();
    let compiled =
      match unroll with
      | Some uf -> Compiler.compile_with_unroll opts uf kernel
      | None -> Compiler.compile opts kernel
    in
    Pipeline.set_dump_after None;
    Printf.printf "%s on %s (UF=%d, lanes=%d)\n" name compiled.Compiler.arch_name
      compiled.Compiler.unroll compiled.Compiler.vector;
    List.iter
      (fun (cl : Compiler.compiled_loop) ->
        let g = cl.Compiler.dfg in
        Printf.printf "  %-14s nodes=%-3d II=%d makespan=%-3d recMII=%d CI=%.1f hops=%d\n"
          cl.Compiler.source.Kernel.label (Dfg.node_count g) cl.Compiler.mapping.Mapper.ii
          cl.Compiler.mapping.Mapper.makespan (Analysis.rec_mii g)
          (Analysis.computational_intensity g)
          cl.Compiler.mapping.Mapper.routed_hops;
        List.iter
          (fun (p, c) -> Printf.printf "      fused %s x%d\n" (Picachu_ir.Op.fused_name p) c)
          (Fuse.pattern_counts g))
      compiled.Compiler.loops;
    let n = 1024 in
    Printf.printf "pass over %d elements: %d cycles (%.2f cycles/element)\n" n
      (Compiler.pass_cycles compiled ~n)
      (float_of_int (Compiler.pass_cycles compiled ~n) /. float_of_int n);
    if timings then Report.pass_table (Compiler.compile_stats ())
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a nonlinear kernel onto the CGRA.")
    Term.(const run $ kernel_arg $ baseline $ unroll $ vector $ show_ir
          $ timings $ dump_after)

(* ------------------------------------------------------------------ stats *)

let stats_cmd =
  let sweep_effort =
    Arg.(
      value
      & opt (some int) None
      & info [ "sweep-effort" ] ~docv:"CEILING"
          ~doc:
            "Run the full-roster 16-point warm DSE sweep from a cold cache \
             and fail if the mapper spends more than $(docv) II attempts — \
             the search-cost analogue of a QoR golden.")
  in
  let run sweep_effort =
    match sweep_effort with
    | Some ceiling ->
        Compiler.cache_clear ();
        Compiler.reset_stats ();
        let pts = Explore.sweep ~warm:true () in
        let c = Mapper.counters () in
        Printf.printf "sweep: %d design points\n" (List.length pts);
        Report.search_effort_line c;
        if c.Mapper.ii_attempts > ceiling then begin
          Printf.eprintf
            "search effort regression: %d ii-attempts exceeds ceiling %d\n"
            c.Mapper.ii_attempts ceiling;
          exit 1
        end
    | None ->
        Compiler.reset_stats ();
        let library variant = Kernels.all variant @ Kernels.extras variant in
        let compile_roster () =
          List.iter
            (fun (variant, opts) ->
              List.iter
                (fun (k : Kernel.t) ->
                  ignore (Compiler.cached_result opts variant k.Kernel.name))
                (library variant))
            [
              (Kernels.picachu, Compiler.picachu_options ());
              (Kernels.Baseline, Compiler.baseline_options ());
            ]
        in
        compile_roster ();
        let mid = Compiler.cache_stats () in
        compile_roster ();
        let fin = Compiler.cache_stats () in
        Report.pass_table (Compiler.compile_stats ());
        Report.search_effort_line (Mapper.counters ());
        Printf.printf "cache: hits=%d misses=%d entries=%d\n" fin.Compiler.hits
          fin.Compiler.misses fin.Compiler.entries;
        if fin.Compiler.misses <> mid.Compiler.misses then begin
          Printf.eprintf
            "cache ineffective: %d misses on an already-compiled roster\n"
            (fin.Compiler.misses - mid.Compiler.misses);
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Compile the whole kernel library twice and print per-pass \
             pipeline stats; fails if the second sweep misses the \
             content-addressed cache.  With $(b,--sweep-effort) instead runs \
             the warm DSE sweep under an II-attempt budget gate.")
    Term.(const run $ sweep_effort)

(* ------------------------------------------------------------------ lint *)

let lint_cmd =
  let kernels_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"KERNEL"
           ~doc:"Kernels to verify (default: the whole library, both variants, \
                 plus the future-operation extras).")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ]
           ~doc:"Also print Info-severity findings (precision advisories).")
  in
  let precision =
    Arg.(value & flag & info [ "precision" ]
           ~doc:"Also run the affine-arithmetic precision analysis: select \
                 each kernel's format against \\$PICACHU_ERROR_BUDGET and \
                 report the proven error bound and any prec-* findings.")
  in
  let run names verbose precision =
    let library variant = Kernels.all variant @ Kernels.extras variant in
    let roster =
      match names with
      | [] ->
          List.concat_map
            (fun variant -> List.map (fun k -> (variant, k)) (library variant))
            [ Kernels.picachu; Kernels.Baseline ]
      | names ->
          List.map
            (fun name ->
              match
                List.find_opt (fun k -> k.Kernel.name = name) (library Kernels.picachu)
              with
              | Some k -> (Kernels.picachu, k)
              | None ->
                  Printf.eprintf "unknown kernel %s\n" name;
                  exit 2)
            names
    in
    let errors = ref 0 and warnings = ref 0 and infos = ref 0 in
    (* deterministic output: findings print in (severity, code, loc) order
       whatever evaluation order produced them *)
    let report findings =
      List.iter
        (fun (f : Finding.t) ->
          (match f.Finding.severity with
          | Finding.Error -> incr errors
          | Finding.Warning -> incr warnings
          | Finding.Info -> incr infos);
          if verbose || f.Finding.severity <> Finding.Info then
            Format.printf "  %a@." Finding.pp f)
        (Finding.sort findings)
    in
    List.iter
      (fun (variant, (k : Kernel.t)) ->
        let vname = Kernels.variant_name variant in
        Printf.printf "%s (%s)\n" k.Kernel.name vname;
        report (Verify.lint_kernel k);
        let opts =
          match variant with
          | Kernels.Picachu _ -> Compiler.picachu_options ()
          | Kernels.Baseline -> Compiler.baseline_options ()
        in
        (match Compiler.compile_result opts k with
        | Ok c ->
            List.iter
              (fun (cl : Compiler.compiled_loop) ->
                report
                  (Verify.check_loop ~arch:opts.Compiler.arch
                     ~source:cl.Compiler.source cl.Compiler.dfg cl.Compiler.mapping))
              c.Compiler.loops
        | Error e ->
            incr errors;
            Printf.printf "  error[compile] %s\n" (Picachu_error.to_string e));
        report (Range.analyze k);
        if precision then begin
          let c = Compiler.select_format k in
          let r = Precision.analyze ~fmt:c.Precision.fmt k in
          report r.Precision.findings;
          Printf.printf "  precision: %s (%d bits) proven bound %s budget %g%s\n"
            (Numfmt.name c.Precision.fmt)
            (Numfmt.bits c.Precision.fmt)
            (if Float.is_finite c.Precision.bound then
               Printf.sprintf "%.3g" c.Precision.bound
             else "unbounded")
            c.Precision.budget
            (if c.Precision.fallback then " [fallback]" else "")
        end)
      roster;
    Printf.printf "%d kernel(s): %d error(s), %d warning(s), %d advisory(ies)\n"
      (List.length roster) !errors !warnings !infos;
    if !errors > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the independent static verifier (IR lint, DFG invariants, \
             schedule validation, fixed-point range analysis, and with \
             $(b,--precision) the affine-arithmetic error analysis) over \
             library kernels.  Exits non-zero when any Error-severity \
             finding survives.")
    Term.(const run $ kernels_arg $ verbose $ precision)

(* --------------------------------------------------------------- formats *)

let formats_cmd =
  let kernels_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"KERNEL"
           ~doc:"Kernels to select formats for (default: the whole PICACHU \
                 roster including the future-operation extras).")
  in
  let budget =
    Arg.(value & opt (some float) None & info [ "budget" ] ~docv:"ERR"
           ~doc:"Absolute output-error budget (default: \
                 \\$PICACHU_ERROR_BUDGET or 1e-2).")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ]
           ~doc:"Also print every candidate format's proven bound.")
  in
  let run names budget verbose =
    let library = Kernels.all Kernels.picachu @ Kernels.extras Kernels.picachu in
    let roster =
      match names with
      | [] -> library
      | names ->
          List.map
            (fun name ->
              match List.find_opt (fun k -> k.Kernel.name = name) library with
              | Some k -> k
              | None ->
                  Printf.eprintf "unknown kernel %s\n" name;
                  exit 2)
            names
    in
    let pp_bound b =
      if Float.is_finite b then Printf.sprintf "%.3g" b else "unbounded"
    in
    Printf.printf "%-16s %-10s %5s  %-11s %-9s %s\n" "kernel" "format" "bits"
      "proven" "budget" "status";
    let narrow = ref 0 and fallbacks = ref 0 in
    List.iter
      (fun (k : Kernel.t) ->
        let c = Compiler.select_format ?budget k in
        if c.Precision.fallback then incr fallbacks
        else if Numfmt.bits c.Precision.fmt < 16 then incr narrow;
        Printf.printf "%-16s %-10s %5d  %-11s %-9g %s\n" k.Kernel.name
          (Numfmt.name c.Precision.fmt)
          (Numfmt.bits c.Precision.fmt)
          (pp_bound c.Precision.bound) c.Precision.budget
          (if c.Precision.fallback then "fallback" else "fits");
        if verbose then
          List.iter
            (fun (fmt, b) ->
              Printf.printf "    %-10s %5d  %s\n" (Numfmt.name fmt)
                (Numfmt.bits fmt) (pp_bound b))
            c.Precision.tried)
      roster;
    Printf.printf
      "%d kernel(s): %d sub-16-bit selection(s), %d fallback(s)\n"
      (List.length roster) !narrow !fallbacks
  in
  Cmd.v
    (Cmd.info "formats"
       ~doc:"Proven-bound automatic format selection: walk the candidate \
             ladder cheapest-first and report, per kernel, the cheapest \
             number format whose statically proven worst-case output error \
             fits the budget (affine-arithmetic analysis; no execution).")
    Term.(const run $ kernels_arg $ budget $ verbose)

(* ---------------------------------------------------------------- dump *)

let dump_cmd =
  let kernel_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL"
           ~doc:"Library kernel to print in the textual format.")
  in
  let baseline = Arg.(value & flag & info [ "baseline" ] ~doc:"Baseline variant.") in
  let run name baseline =
    let variant = if baseline then Kernels.Baseline else Kernels.picachu in
    match Kernels.by_name variant name with
    | k -> print_string (Picachu_ir.Kernel_text.to_string k)
    | exception Not_found ->
        Printf.eprintf "unknown kernel %s
" name;
        exit 1
  in
  Cmd.v (Cmd.info "dump" ~doc:"Print a library kernel in the textual kernel format.")
    Term.(const run $ kernel_arg $ baseline)

(* -------------------------------------------------------------- hw-run *)

let hw_run_cmd =
  let source =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL|FILE"
           ~doc:"Library kernel name, or a .pk text file (see the dump command).")
  in
  let n = Arg.(value & opt int 32 & info [ "n" ] ~docv:"N" ~doc:"Elements per stream.") in
  let run source n =
    let kernel =
      if Sys.file_exists source then begin
        let ic = open_in source in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        try Picachu_ir.Kernel_text.of_string text
        with Picachu_ir.Kernel_text.Parse_error e ->
          Printf.eprintf "parse error: %s
" e;
          exit 1
      end
      else
        try Kernels.by_name Kernels.picachu source
        with Not_found ->
          Printf.eprintf "no such file or library kernel: %s
" source;
          exit 1
    in
    let compiled = Compiler.compile (Compiler.picachu_options ()) kernel in
    let rng = Picachu_tensor.Rng.create 1 in
    let arrays =
      List.map
        (fun name -> (name, Array.init n (fun _ -> Picachu_tensor.Rng.uniform rng ~lo:(-2.0) ~hi:2.0)))
        kernel.Kernel.inputs
    in
    let env = { Picachu_ir.Interp.arrays; scalars = [ ("n", float_of_int n) ] } in
    let hw = Hw_sim.run compiled env in
    let reference = Picachu_ir.Interp.run kernel env in
    Printf.printf "%s: executed %d cycles on the configured fabric (%d config words)
"
      kernel.Kernel.name hw.Hw_sim.total_cycles (Hw_sim.config_words compiled);
    List.iter
      (fun (stream, a) ->
        let b = List.assoc stream reference.Picachu_ir.Interp.out_arrays in
        let worst = ref 0.0 in
        Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. b.(i)))) a;
        Printf.printf "  %s: max |hw - interp| = %g
" stream !worst)
      hw.Hw_sim.result.Picachu_ir.Interp.out_arrays;
    List.iter
      (fun cfg -> Format.printf "%a" Picachu_cgra.Config.pp cfg)
      hw.Hw_sim.configs
  in
  Cmd.v
    (Cmd.info "hw-run"
       ~doc:"Compile a kernel (library or text file), execute it on the              cycle-accurate fabric, and print the per-tile configuration.")
    Term.(const run $ source $ n)

(* ------------------------------------------------------------------- arch *)

let arch_cmd =
  let run () =
    Format.printf "%a@." Arch.pp (Arch.picachu ());
    Format.printf "%a@." Arch.pp (Arch.baseline ());
    print_endline "Cost model (paper Table 7 configuration):";
    Cost.pp_breakdown Format.std_formatter (Cost.picachu_breakdown (Arch.picachu ()));
    Format.pp_print_flush Format.std_formatter ();
    print_endline "Special FU overheads (relative to a basic tile):";
    List.iter
      (fun (name, a, p) -> Printf.printf "  %-11s area +%.1f%%  power +%.1f%%\n" name (100.0 *. a) (100.0 *. p))
      Cost.fu_overheads
  in
  Cmd.v (Cmd.info "arch" ~doc:"Show the CGRA instances and the cost model.")
    Term.(const run $ const ())

(* --------------------------------------------------------------- frontend *)

let frontend_cmd =
  let model_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL"
           ~doc:"Model whose transformer block to compile (e.g. llama2-7b).")
  in
  let seq = Arg.(value & opt int 128 & info [ "seq" ] ~docv:"N" ~doc:"Sequence length.") in
  let show_program = Arg.(value & flag & info [ "program" ] ~doc:"Print the tensor program.") in
  let run name seq show_program =
    let m =
      try Mz.by_name name
      with Not_found ->
        Printf.eprintf "unknown model %s\n" name;
        exit 1
    in
    let p = Picachu_frontend.Layer_builder.transformer_block m ~seq in
    if show_program then Format.printf "%a" Picachu_frontend.Tensor_ir.pp p;
    let r = Picachu_frontend.Patterns.rewrite p in
    Printf.printf "pattern matching: %d -> %d instructions\n"
      (List.length p.Picachu_frontend.Tensor_ir.instrs)
      (List.length r.Picachu_frontend.Tensor_ir.instrs);
    Format.printf "%a" Picachu_frontend.Offload.pp (Picachu_frontend.Offload.offload r);
    match Picachu_frontend.Patterns.unmatched_primitives r with
    | [] -> print_endline "all nonlinear operations recognized"
    | l -> Printf.printf "UNMATCHED primitives: %s\n" (String.concat ", " l)
  in
  Cmd.v
    (Cmd.info "frontend" ~doc:"Lower a transformer block, pattern-match, and offload.")
    Term.(const run $ model_arg $ seq $ show_program)

(* ----------------------------------------------------------------- models *)

let models_cmd =
  let seq = Arg.(value & opt int 1024 & info [ "seq" ] ~docv:"N" ~doc:"Sequence length.") in
  let run seq =
    List.iter
      (fun m -> Format.printf "%a@." Workload.pp (Workload.of_model m ~seq))
      Mz.all
  in
  Cmd.v (Cmd.info "models" ~doc:"Print the LLM workload inventory.")
    Term.(const run $ seq)

(* ------------------------------------------------------------------ serve *)

let serve_cmd =
  let model_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL"
           ~doc:"Model to serve (e.g. llama2-7b).")
  in
  let rps =
    Arg.(value & opt float 4.0 & info [ "rps" ] ~docv:"R"
           ~doc:"Mean request arrival rate (Poisson).")
  in
  let requests =
    Arg.(value & opt int 32 & info [ "requests"; "n" ] ~docv:"N"
           ~doc:"Number of requests in the trace.")
  in
  let policy_conv =
    let parse s =
      match String.lowercase_ascii s with
      | "continuous" -> Ok Scheduler.Continuous
      | "static" -> Ok (Scheduler.Static 4)
      | s when String.length s > 7 && String.sub s 0 7 = "static=" -> (
          match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
          | Some b when b >= 1 -> Ok (Scheduler.Static b)
          | _ -> Error (`Msg "static=B needs a positive integer B"))
      | _ -> Error (`Msg "policy is 'continuous', 'static' or 'static=B'")
    in
    Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Scheduler.policy_name p))
  in
  let policy =
    Arg.(value & opt policy_conv Scheduler.Continuous & info [ "policy"; "p" ]
           ~docv:"P" ~doc:"Batching policy: continuous (default), static, static=B.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Trace seed.") in
  let slots =
    Arg.(value & opt int 8 & info [ "slots" ] ~docv:"K"
           ~doc:"Decode batch capacity under the continuous policy.")
  in
  let queue =
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"Q"
           ~doc:"Admission queue capacity; arrivals beyond it are dropped.")
  in
  let run name rps requests policy seed slots queue =
    let m =
      try Mz.by_name name
      with Not_found ->
        Printf.eprintf "unknown model %s\n" name;
        exit 1
    in
    let spec = Scheduler.default_trace ~seed ~rps ~requests () in
    let fleet =
      try
        Scheduler.serve ~slots ~queue_capacity:queue ~policy
          (Simulator.default_config ()) m spec
      with Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    in
    Printf.printf "%s  rps=%g requests=%d policy=%s slots=%d queue=%d seed=%d\n" name
      rps requests (Scheduler.policy_name policy) slots queue seed;
    Report.serve_table fleet
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Simulate a multi-request traffic trace through the admission \
             queue and batching policy; prints per-request TTFT/latency \
             percentiles, throughput, and the serving-tier tally.")
    Term.(const run $ model_arg $ rps $ requests $ policy $ seed $ slots $ queue)

(* ---------------------------------------------------------------- cluster *)

let cluster_cmd =
  let model_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL"
           ~doc:"Model to serve (e.g. llama2-7b).")
  in
  let replicas =
    Arg.(value & opt int 3 & info [ "replicas" ] ~docv:"N"
           ~doc:"Number of serving replicas behind the router.")
  in
  let router_conv =
    let parse s =
      match Cluster.router_of_string s with
      | Some r -> Ok r
      | None -> Error (`Msg "router is 'round-robin', 'least-loaded' or 'p2c'")
    in
    Arg.conv (parse, fun fmt r -> Format.pp_print_string fmt (Cluster.router_name r))
  in
  let router =
    Arg.(value & opt router_conv Cluster.Round_robin & info [ "router" ] ~docv:"R"
           ~doc:"Routing policy: round-robin (default), least-loaded, p2c.")
  in
  let fault_profile =
    Arg.(value & opt string "none" & info [ "fault-profile" ] ~docv:"P"
           ~doc:"Replica failure profile: none (default), crash, straggler, mixed.")
  in
  let mttf =
    Arg.(value & opt float 30.0 & info [ "mttf" ] ~docv:"S"
           ~doc:"Mean time between replica failures (seconds, simulated).")
  in
  let mttr =
    Arg.(value & opt float 5.0 & info [ "mttr" ] ~docv:"S"
           ~doc:"Mean outage duration (seconds, simulated).")
  in
  let rps =
    Arg.(value & opt float 4.0 & info [ "rps" ] ~docv:"R"
           ~doc:"Mean request arrival rate (Poisson).")
  in
  let requests =
    Arg.(value & opt int 32 & info [ "requests"; "n" ] ~docv:"N"
           ~doc:"Number of requests in the trace.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Trace seed.") in
  let slots =
    Arg.(value & opt int 8 & info [ "slots" ] ~docv:"K"
           ~doc:"Continuous-batching slots per replica.")
  in
  let queue =
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"Q"
           ~doc:"Admission queue capacity per replica.")
  in
  let no_defenses =
    Arg.(value & flag & info [ "no-defenses" ]
           ~doc:"Disable every front-end defense (no retries, hedges, \
                 breakers, timeouts) — the chaos baseline.")
  in
  let timeout =
    Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"S"
           ~doc:"Per-attempt deadline in simulated seconds.")
  in
  let retries =
    Arg.(value & opt int 3 & info [ "retries" ] ~docv:"K"
           ~doc:"Deadline-driven retry budget per request.")
  in
  let run name replicas router fault_profile mttf mttr rps requests seed slots queue
      no_defenses timeout retries =
    let m =
      try Mz.by_name name
      with Not_found ->
        Printf.eprintf "unknown model %s\n" name;
        exit 1
    in
    let profile =
      match Cluster.profile_of_string ~seed ~mttf ~mttr fault_profile with
      | Some p -> p
      | None ->
          Printf.eprintf "unknown fault profile %s (known: none, crash, straggler, mixed)\n"
            fault_profile;
          exit 1
    in
    let defenses =
      if no_defenses then Cluster.no_defenses
      else
        { Cluster.default_defenses with Cluster.timeout_s = timeout; max_retries = retries }
    in
    let cfg =
      {
        Cluster.replicas;
        router;
        slots;
        queue_capacity = queue;
        seed;
        profile;
        defenses;
      }
    in
    let spec = Scheduler.default_trace ~seed ~rps ~requests () in
    let report =
      try Cluster.serve cfg (Simulator.default_config ()) m spec
      with Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    in
    Printf.printf
      "%s  replicas=%d router=%s profile=%s mttf=%g mttr=%g rps=%g requests=%d \
       slots=%d queue=%d seed=%d defenses=%s\n"
      name replicas (Cluster.router_name router) fault_profile mttf mttr rps requests
      slots queue seed
      (if no_defenses then "off" else "on");
    Report.cluster_table report;
    if not (Cluster.accounting_ok report) then begin
      Printf.eprintf "availability accounting identity violated\n";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"Simulate a multi-replica cluster under a replica failure \
             profile: a discrete-event core hosts N continuous-batching \
             replicas behind a router with timeouts, retries, hedging, and \
             circuit breakers; prints availability, tail latency, and fault \
             counters.  Exits non-zero if the availability accounting \
             identity is violated.")
    Term.(const run $ model_arg $ replicas $ router $ fault_profile $ mttf $ mttr
          $ rps $ requests $ seed $ slots $ queue $ no_defenses $ timeout $ retries)

(* --------------------------------------------------------------- backends *)

let backends_cmd =
  let run () = Experiments.print "backends" in
  Cmd.v
    (Cmd.info "backends"
       ~doc:"Head-to-head of the approximation backends (Taylor expansion \
             vs non-uniform linear interpolation) per operator: proven \
             FP16 error bound or surrogate-PPL delta, achieved II per \
             loop, and resident LUT ROM bytes.")
    Term.(const run $ const ())

(* --------------------------------------------------------------- codesign *)

let codesign_cmd =
  let iters =
    Arg.(value & opt int Codesign.default_config.Codesign.iters
         & info [ "iters" ] ~docv:"N" ~doc:"Candidate evaluation budget.")
  in
  let seed =
    Arg.(value & opt int Codesign.default_config.Codesign.seed
         & info [ "seed" ] ~docv:"SEED" ~doc:"Search seed (the trace is a pure function of it).")
  in
  let area_cap =
    Arg.(value & opt (some float) None
         & info [ "area-cap" ] ~docv:"MM2"
             ~doc:"Constrained mode: maximize geomean throughput subject to \
                   area <= $(docv) instead of maximizing perf/area.")
  in
  let run iters seed area_cap =
    let objective =
      match area_cap with
      | None -> Codesign.Perf_per_area
      | Some cap -> Codesign.Throughput_under_cap cap
    in
    let config = { Codesign.default_config with Codesign.iters; seed; objective } in
    Report.codesign_table (Codesign.run ~config ())
  in
  Cmd.v
    (Cmd.info "codesign"
       ~doc:"Automated HW/SW co-design: seeded simulated annealing over grid \
             dims, tile FU mix, CoT share, and LUT ROM capacity, scoring \
             each candidate's full-roster geomean throughput and area; \
             reports the discovered architecture against the hand-designed \
             4x4 reference point.")
    Term.(const run $ iters $ seed $ area_cap)

(* --------------------------------------------------------------- simulate *)

let simulate_cmd =
  let model_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL"
           ~doc:"Model name (gpt2-xl, opt-6.7b, opt-13b, bigbird, llama2-7b, \
                 llama2-13b).")
  in
  let seq = Arg.(value & opt int 1024 & info [ "seq" ] ~docv:"N" ~doc:"Sequence length.") in
  let buffer = Arg.(value & opt float 40.0 & info [ "buffer" ] ~docv:"KB" ~doc:"Shared Buffer size.") in
  let vector = Arg.(value & opt int 4 & info [ "vector" ] ~docv:"VF" ~doc:"Lanes (1 or 4).") in
  let scale = Arg.(value & flag & info [ "a100-scale" ] ~doc:"Use the A100-matched scale of §5.4.") in
  let timeline = Arg.(value & flag & info [ "timeline" ] ~doc:"Render a one-layer Gantt chart.") in
  let run name seq buffer vector scale timeline =
    let m =
      try Mz.by_name name
      with Not_found ->
        Printf.eprintf "unknown model %s\n" name;
        exit 1
    in
    let w = Workload.of_model m ~seq in
    let cfg =
      if scale then { (Simulator.a100_scale_config ()) with Simulator.vector }
      else Simulator.default_config ~buffer_kb:buffer ~vector ()
    in
    let r = Simulator.run cfg w in
    Printf.printf "%s seq=%d on %s (%dx%d systolic, %d CGRA(s), %d lanes)\n" name seq
      cfg.Simulator.arch.Arch.name cfg.Simulator.systolic.Picachu_systolic.Systolic.dim
      cfg.Simulator.systolic.Picachu_systolic.Systolic.dim cfg.Simulator.nl_parallel
      cfg.Simulator.vector;
    Printf.printf "total %.2f ms  (gemm %.2f ms, nonlinear exposed %.2f ms = %.1f%%)\n"
      (Simulator.seconds cfg r *. 1e3)
      (float_of_int r.Simulator.gemm_cycles /. 1e6)
      (float_of_int r.Simulator.nl_exposed_total /. 1e6)
      (100.0 *. Simulator.nonlinear_fraction r);
    Printf.printf "energy %.2f mJ\n" (r.Simulator.energy_uj /. 1e3);
    List.iter
      (fun (o : Simulator.op_time) ->
        Printf.printf "  %-11s %-18s busy=%8.3fms exposed=%8.3fms\n" o.Simulator.ot_tag
          (Dataflow.case_name o.Simulator.case)
          (float_of_int o.Simulator.busy_cycles /. 1e6)
          (float_of_int o.Simulator.exposed_cycles /. 1e6))
      r.Simulator.nl;
    if timeline then print_string (Timeline.render (Timeline.layer cfg w))
  in
  Cmd.v (Cmd.info "simulate" ~doc:"End-to-end PICACHU simulation of one model.")
    Term.(const run $ model_arg $ seq $ buffer $ vector $ scale $ timeline)

let () =
  let doc = "PICACHU: plug-in CGRA for nonlinear operations in LLMs (ASPLOS'25 reproduction)" in
  let info = Cmd.info "picachu" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ experiments_cmd; compile_cmd; stats_cmd; lint_cmd; formats_cmd; dump_cmd; hw_run_cmd; frontend_cmd; arch_cmd; models_cmd; simulate_cmd; serve_cmd; cluster_cmd; backends_cmd; codesign_cmd ]))
