#!/bin/sh
# Repo CI gate: build, tier-1 tests, and one tiny end-to-end fault campaign
# (seeded, positive rate — exercises injection, DMR detection, bounded
# re-execution, and the graceful-degradation serving path).
#
# Usage: bin/check.sh        (from the repo root)
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tier-1 tests =="
dune runtest

echo "== compilation pipeline smoke =="
# per-pass instrumentation visible from the CLI ...
dune exec bin/picachu_cli.exe -- compile softmax --timings
# ... and the content-addressed cache effective: `stats` compiles the whole
# library twice and exits non-zero if the second sweep misses the cache
dune exec bin/picachu_cli.exe -- stats

echo "== search-effort budget gate =="
# the full-roster warm DSE sweep from a cold cache must stay under a pinned
# II-attempt ceiling — catches search-cost regressions the way the QoR
# goldens catch schedule regressions (measured: 618 attempts; ceiling 1.3x)
dune exec bin/picachu_cli.exe -- stats --sweep-effort 800

echo "== static verification sweep =="
# whole kernel library through the independent verifier (IR lint, DFG
# invariants, schedule validation, range analysis, and the affine
# precision analysis under each kernel's selected format); non-zero exit
# on any Error-severity finding
dune exec bin/picachu_cli.exe -- lint --precision

echo "== format selection smoke =="
# the proven-bound ladder must pick a sub-16-bit format for at least one
# roster kernel within the default 1e-2 budget (relu proves bound 0 even
# in 4-bit fp4_e2m1; gelu fits q4.8), and the summary line must say so
formats_out="$(dune exec bin/picachu_cli.exe -- formats)"
echo "$formats_out"
echo "$formats_out" | grep -q "^relu  *fp4_e2m1  *4  *0 " || {
  echo "formats smoke: relu did not select fp4_e2m1 at proven bound 0"; exit 1; }
echo "$formats_out" | grep -Eq "[1-9][0-9]* sub-16-bit selection" || {
  echo "formats smoke: no sub-16-bit selection on the roster"; exit 1; }

echo "== approximation backend smoke =="
# the Taylor-vs-NLI head-to-head must run end to end (compile both rosters,
# bound or surrogate-measure each operator) and NLI must actually win the
# summed-II comparison somewhere while staying inside the tile ROM budget
backends_out="$(dune exec bin/picachu_cli.exe -- backends)"
echo "$backends_out"
echo "$backends_out" | grep -Eq "nli lowers the summed II on [1-9][0-9]*/" || {
  echo "backends smoke: nli wins the II comparison nowhere"; exit 1; }
echo "$backends_out" | grep -q "every nli table fits" || {
  echo "backends smoke: an nli table exceeds the tile ROM budget"; exit 1; }

echo "== codesign smoke =="
# a small seeded annealing run must walk off the hand-designed 4x4 point:
# the verdict line asserts best perf/area >= the Explore.reference_point
codesign_out="$(dune exec bin/picachu_cli.exe -- codesign --iters 16 --seed 7)"
echo "$codesign_out"
echo "$codesign_out" | grep -q "beats reference" || {
  echo "codesign smoke: search did not beat the 4x4 reference point"; exit 1; }

echo "== one-sa baseline smoke =="
# the third Figure 8 philosophy must run end to end and keep the narrative:
# no scalar cliff (covers llama), but PICACHU stays ahead on geomean
onesa_out="$(dune exec bin/picachu_cli.exe -- experiments onesa)"
echo "$onesa_out"
echo "$onesa_out" | grep -q "ONE-SA" || {
  echo "one-sa smoke: baseline column missing"; exit 1; }
echo "$onesa_out" | grep -q "PICACHU vs ONE-SA geomean" || {
  echo "one-sa smoke: geomean summary line missing"; exit 1; }

echo "== fault campaign smoke =="
dune exec examples/fault_campaign.exe -- 0.002 7

echo "== serving smoke =="
# a small fixed-seed traffic trace through the discrete-event scheduler;
# the run must exit 0 and emit a non-empty percentile table
serve_out="$(dune exec bin/picachu_cli.exe -- serve llama2-7b --rps 8 --requests 12 --policy continuous --seed 7)"
echo "$serve_out"
echo "$serve_out" | grep -q "ttft (ms)" || {
  echo "serve smoke: percentile table missing"; exit 1; }

echo "== cluster smoke =="
# 3 fault-free replicas behind the round-robin router must answer every
# request, lose none, and keep the availability accounting identity
cluster_out="$(dune exec bin/picachu_cli.exe -- cluster llama2-7b --replicas 3 --router round-robin --fault-profile none --rps 8 --requests 12 --seed 7)"
echo "$cluster_out"
echo "$cluster_out" | grep -q "(identity ok)" || {
  echo "cluster smoke: accounting identity violated"; exit 1; }
echo "$cluster_out" | grep -q "arrivals 12  answered 12  dropped 0  failed 0" || {
  echo "cluster smoke: fault-free cluster lost requests"; exit 1; }

echo "== chaos smoke =="
# crash-heavy profile with the defense stack on: the identity must still
# hold and the circuit breakers must actually trip
chaos_out="$(dune exec bin/picachu_cli.exe -- cluster llama2-7b --replicas 3 --fault-profile crash --mttf 6 --mttr 2 --rps 2 --requests 24 --seed 5 --timeout 20)"
echo "$chaos_out"
echo "$chaos_out" | grep -q "(identity ok)" || {
  echo "chaos smoke: accounting identity violated"; exit 1; }
if echo "$chaos_out" | grep -q "breaker-trips=0 "; then
  echo "chaos smoke: no breaker trips under a crash-heavy profile"; exit 1
fi

echo "== check.sh: all green =="
