#!/bin/sh
# Repo CI gate: build, tier-1 tests, and one tiny end-to-end fault campaign
# (seeded, positive rate — exercises injection, DMR detection, bounded
# re-execution, and the graceful-degradation serving path).
#
# Usage: bin/check.sh        (from the repo root)
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tier-1 tests =="
dune runtest

echo "== compilation pipeline smoke =="
# per-pass instrumentation visible from the CLI ...
dune exec bin/picachu_cli.exe -- compile softmax --timings
# ... and the content-addressed cache effective: `stats` compiles the whole
# library twice and exits non-zero if the second sweep misses the cache
dune exec bin/picachu_cli.exe -- stats

echo "== search-effort budget gate =="
# the full-roster warm DSE sweep from a cold cache must stay under a pinned
# II-attempt ceiling — catches search-cost regressions the way the QoR
# goldens catch schedule regressions (measured: 618 attempts; ceiling 1.3x)
dune exec bin/picachu_cli.exe -- stats --sweep-effort 800

echo "== static verification sweep =="
# whole kernel library through the independent verifier (IR lint, DFG
# invariants, schedule validation, range analysis); non-zero exit on any
# Error-severity finding
dune exec bin/picachu_cli.exe -- lint

echo "== fault campaign smoke =="
dune exec examples/fault_campaign.exe -- 0.002 7

echo "== serving smoke =="
# a small fixed-seed traffic trace through the discrete-event scheduler;
# the run must exit 0 and emit a non-empty percentile table
serve_out="$(dune exec bin/picachu_cli.exe -- serve llama2-7b --rps 8 --requests 12 --policy continuous --seed 7)"
echo "$serve_out"
echo "$serve_out" | grep -q "ttft (ms)" || {
  echo "serve smoke: percentile table missing"; exit 1; }

echo "== check.sh: all green =="
