(* Benchmark harness.

   Two parts:

   1. The experiment reproduction: prints every table and figure of the
      paper's evaluation (the rows EXPERIMENTS.md records).
   2. Bechamel microbenchmarks — one Test.make per table/figure — timing the
      computational core behind each artifact (a compiler+mapper run, a
      surrogate forward pass, an end-to-end simulation, ...), so regressions
      in the heavy machinery show up as timing changes. *)

open Bechamel
open Toolkit
module Kernels = Picachu_ir.Kernels
module Dfg = Picachu_dfg.Dfg
module Fuse = Picachu_dfg.Fuse
module Arch = Picachu_cgra.Arch
module Mapper = Picachu_cgra.Mapper
module Cost = Picachu_cgra.Cost
module Mz = Picachu_llm.Model_zoo
module Workload = Picachu_llm.Workload
module Gpu = Picachu_llm.Gpu_model
module Surrogate = Picachu_llm.Surrogate
module Zero_shot = Picachu_llm.Zero_shot
module Gemmini = Picachu_baselines.Gemmini
module Tandem = Picachu_baselines.Tandem
module One_sa = Picachu_baselines.One_sa
module Approx = Picachu_numerics.Approx
module Taylor = Picachu_numerics.Taylor
open Picachu

let sur = lazy (Surrogate.create ~seed:42 (Surrogate.surrogate_of Mz.llama2_7b))
let tokens = Array.init 32 (fun i -> (i * 37) mod 256)

let softmax_dfg =
  lazy
    (Fuse.fuse
       (Dfg.of_loop (List.nth (Kernels.softmax Kernels.picachu).Picachu_ir.Kernel.loops 1)))

let bench_tests =
  [
    (* fig1: the A100 roofline over a full workload *)
    Test.make ~name:"fig1:gpu-roofline-llama13b"
      (Staged.stage (fun () ->
           ignore (Gpu.run Gpu.a100 (Workload.of_model Mz.llama2_13b ~seq:1024))));
    (* tab2/tab5: one surrogate forward pass per backend class *)
    Test.make ~name:"tab2:surrogate-forward-ibert"
      (Staged.stage (fun () ->
           ignore (Surrogate.logits (Lazy.force sur) Approx.ibert tokens)));
    Test.make ~name:"tab5:surrogate-forward-ours-int16"
      (Staged.stage (fun () ->
           ignore (Surrogate.logits (Lazy.force sur) (Approx.ours_int ()) tokens)));
    (* tab3: the Taylor operator algorithm itself *)
    Test.make ~name:"tab3:taylor-exp-1k"
      (Staged.stage (fun () ->
           for i = 0 to 999 do
             ignore (Taylor.exp ((float_of_int i /. 50.0) -. 15.0))
           done));
    (* tab4: DFG extraction + fusion over the kernel library *)
    Test.make ~name:"tab4:fuse-all-kernels"
      (Staged.stage (fun () ->
           List.iter
             (fun (k : Picachu_ir.Kernel.t) ->
               List.iter
                 (fun l -> ignore (Fuse.fuse (Dfg.of_loop l)))
                 k.Picachu_ir.Kernel.loops)
             (Kernels.all Kernels.picachu)));
    (* tab6: zero-shot scoring *)
    Test.make ~name:"tab6:zero-shot-item"
      (Staged.stage (fun () ->
           ignore (Zero_shot.score_candidate (Lazy.force sur) Approx.exact tokens 7)));
    (* tab7: the cost model *)
    Test.make ~name:"tab7:cost-breakdown"
      (Staged.stage (fun () -> ignore (Cost.picachu_breakdown (Arch.picachu ()))));
    (* fig7a/b: the modulo-scheduling mapper on the softmax exp loop *)
    Test.make ~name:"fig7:map-softmax-loop"
      (Staged.stage (fun () ->
           ignore (Mapper.map_dfg (Arch.picachu ()) (Lazy.force softmax_dfg))));
    (* fig7c/8/9: the end-to-end simulator and the baseline models *)
    Test.make ~name:"fig8:simulate-llama7b"
      (Staged.stage (fun () ->
           ignore
             (Simulator.run (Simulator.default_config ())
                (Workload.of_model Mz.llama2_7b ~seq:1024))));
    Test.make ~name:"fig8:gemmini-llama7b"
      (Staged.stage (fun () ->
           ignore (Gemmini.run Gemmini.default (Workload.of_model Mz.llama2_7b ~seq:1024))));
    Test.make ~name:"fig8:tandem-gpt2xl"
      (Staged.stage (fun () ->
           ignore (Tandem.run Tandem.default (Workload.of_model Mz.gpt2_xl ~seq:1024))));
    (* baseline: nonlinear ops time-multiplexed onto the systolic array *)
    Test.make ~name:"baseline:one-sa"
      (Staged.stage (fun () ->
           ignore (One_sa.run One_sa.default (Workload.of_model Mz.llama2_7b ~seq:1024))));
    (* frontend: pattern matching a full transformer block *)
    Test.make ~name:"frontend:match-llama-block"
      (Staged.stage (fun () ->
           ignore
             (Picachu_frontend.Patterns.rewrite
                (Picachu_frontend.Layer_builder.transformer_block Mz.llama2_7b ~seq:128))));
    (* hw: cycle-accurate execution of a mapped kernel *)
    Test.make ~name:"hw:execute-rmsnorm-64"
      (Staged.stage
         (let compiled =
            lazy
              (Compiler.compile (Compiler.picachu_options ())
                 (Kernels.rmsnorm Kernels.picachu))
          in
          let env =
            {
              Picachu_ir.Interp.arrays =
                [ ("x", Array.init 64 (fun i -> float_of_int i /. 9.0)) ];
              scalars = [ ("n", 64.0) ];
            }
          in
          fun () -> ignore (Hw_sim.run (Lazy.force compiled) env)));
    (* map: rescheduling under a sibling design point's schedule as hint —
       the warm fast path (rebuild + verify, no Rau search) vs the cold
       fig7 entry above *)
    Test.make ~name:"map:warm-start"
      (Staged.stage
         (let arch_from = Arch.hetero_mix ~rows:4 ~cols:4 ~cot_share:0.5 in
          let arch_to = Arch.hetero_mix ~rows:4 ~cols:4 ~cot_share:(2.0 /. 3.0) in
          let g = Lazy.force softmax_dfg in
          let hint = lazy (Mapper.map_dfg arch_from g) in
          fun () -> ignore (Mapper.map_dfg ~hint:(Lazy.force hint) arch_to g)));
    (* nli: one full error-equalizing breakpoint fit (binary search over
       the per-segment threshold around greedy covers) for the gelu table *)
    Test.make ~name:"nli:fit-gelu"
      (Staged.stage (fun () ->
           ignore
             (Picachu_numerics.Nli.fit ~segments:64 ~lo:(-8.0) ~hi:8.0
                (fun x ->
                  x *. Picachu_numerics.Lut.gauss_cdf_exact x))));
    (* dse: a small sweep crossed with the backend axis — Taylor and NLI
       rosters compile per design point (memoized across iterations) *)
    Test.make ~name:"dse:backend-sweep"
      (Staged.stage (fun () ->
           ignore
             (Explore.sweep ~sizes:[ (3, 3) ] ~cot_shares:[ 0.5 ]
                ~backends:[ Kernels.Taylor; Kernels.Nli ] ())));
    (* dse: evaluating one design point with the compile cache bypassed —
       every kernel pays the full pipeline, so this tracks raw mapper cost *)
    Test.make ~name:"dse:evaluate-3x3"
      (Staged.stage (fun () ->
           ignore (Explore.evaluate ~cold:true ~rows:3 ~cols:3 ~cot_share:0.5 ())));
    (* dse: the full 16-point warm sweep from a cold cache — the end-to-end
       DSE throughput number (dedupe + warm starts + pruned search) *)
    Test.make ~name:"dse:sweep-16pt-cold"
      (Staged.stage (fun () ->
           Compiler.cache_clear ();
           ignore (Explore.sweep ~warm:true ())));
    (* dse: a tiny seeded annealing run on the warm cache — tracks the
       per-candidate overhead of the co-design search machinery itself
       (move generation, hint seeding, batched evaluation, acceptance) *)
    Test.make ~name:"dse:codesign-anneal"
      (Staged.stage (fun () ->
           ignore
             (Codesign.run
                ~config:{ Codesign.default_config with Codesign.iters = 8 }
                ())));
    (* compile: one cold pipeline run (auto-tuned softmax), no memoization *)
    Test.make ~name:"compile:pipeline-softmax"
      (Staged.stage (fun () ->
           ignore
             (Compiler.compile_result (Compiler.picachu_options ())
                (Kernels.softmax Kernels.picachu))));
    (* compile: a content-addressed cache hit (digest + table lookup) *)
    Test.make ~name:"compile:cache-hit"
      (Staged.stage
         (let opts = Compiler.picachu_options () in
          ignore (Compiler.cached_result opts Kernels.picachu "softmax");
          fun () -> ignore (Compiler.cached_result opts Kernels.picachu "softmax")));
    (* verify: one affine-arithmetic precision analysis of the hardest
       roster kernel (three loops, reductions, a division) at one format *)
    Test.make ~name:"verify:precision-softmax"
      (Staged.stage
         (let k = Kernels.softmax Kernels.picachu in
          let fmt = Picachu_numerics.Numfmt.fixed ~total_bits:16 ~frac_bits:8 in
          fun () -> ignore (Picachu_verify.Precision.analyze ~fmt k)));
    (* compile: the full format-selection ladder walk (9 candidate
       analyses) for a kernel that proves a sub-Q16 bound *)
    Test.make ~name:"compile:select-format"
      (Staged.stage
         (let k = Kernels.gelu Kernels.picachu in
          fun () -> ignore (Compiler.select_format ~budget:1e-2 k)));
    (* serve: one full traffic trace through the discrete-event scheduler
       (cost source built once — the per-bucket memo and the compile cache
       leave the scheduler's own event loop as the measured work) *)
    Test.make ~name:"serve:continuous-llama7b"
      (Staged.stage
         (let cost =
            Scheduler.robust_source (Simulator.default_config ()) Mz.llama2_7b
          in
          let trace =
            Scheduler.trace (Scheduler.default_trace ~seed:3 ~rps:8.0 ~requests:24 ())
          in
          fun () ->
            ignore (Scheduler.run ~slots:4 ~policy:Scheduler.Continuous ~cost trace)));
    Test.make ~name:"serve:static-llama7b"
      (Staged.stage
         (let cost =
            Scheduler.robust_source (Simulator.default_config ()) Mz.llama2_7b
          in
          let trace =
            Scheduler.trace (Scheduler.default_trace ~seed:3 ~rps:8.0 ~requests:24 ())
          in
          fun () ->
            ignore (Scheduler.run ~slots:4 ~policy:(Scheduler.Static 4) ~cost trace)));
    (* serve: the fault-free cluster path — 8 replicas behind the
       power-of-two router, so this times the event queue + routing
       machinery on top of the per-replica step model *)
    Test.make ~name:"serve:cluster-8x-p2c"
      (Staged.stage
         (let cost =
            Scheduler.robust_source (Simulator.default_config ()) Mz.llama2_7b
          in
          let trace =
            Scheduler.trace (Scheduler.default_trace ~seed:3 ~rps:8.0 ~requests:24 ())
          in
          let cfg =
            Cluster.default_config ~replicas:8 ~router:Cluster.Power_of_two ~slots:4 ()
          in
          fun () -> ignore (Cluster.run cfg ~cost trace)));
    (* serve: the chaos path — crashes plus the full defense stack
       (timeouts, retries, breakers, hedging) dominate the event count *)
    Test.make ~name:"serve:cluster-chaos"
      (Staged.stage
         (let cost =
            Scheduler.robust_source (Simulator.default_config ()) Mz.llama2_7b
          in
          let trace =
            Scheduler.trace (Scheduler.default_trace ~seed:3 ~rps:8.0 ~requests:24 ())
          in
          let cfg =
            Cluster.default_config ~replicas:3 ~slots:4
              ~profile:(Cluster.profile_crash ~seed:3 ~mttf:10.0 ~mttr:3.0 ())
              ()
          in
          fun () -> ignore (Cluster.run cfg ~cost trace)));
  ]

(* machine-readable perf trajectory: name -> ns/run, diffable across PRs *)
let write_results_json path results =
  let oc = open_out path in
  output_string oc "{\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "  %S: %.3f%s\n" name ns
        (if i = List.length results - 1 then "" else ","))
    results;
  output_string oc "}\n";
  close_out oc

let run_benchmarks () =
  print_newline ();
  print_endline "Bechamel microbenchmarks (monotonic clock per run)";
  Printf.printf "(domain pool: %d)\n" (Picachu_parallel.Parallel.size ());
  print_endline "--------------------------------------------------";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.2) ~kde:(Some 10) () in
  let instances = [ Instance.monotonic_clock ] in
  let collected = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
              let v, unit_name =
                if est > 1e6 then (est /. 1e6, "ms")
                else if est > 1e3 then (est /. 1e3, "us")
                else (est, "ns")
              in
              collected := (name, est) :: !collected;
              Printf.printf "  %-36s %10.2f %s/run\n%!" name v unit_name
          | _ -> Printf.printf "  %-36s (no estimate)\n%!" name)
        analysis)
    bench_tests;
  let results = List.rev !collected in
  write_results_json "BENCH_RESULTS.json" results;
  Printf.printf "\n[wrote %d entries to BENCH_RESULTS.json]\n" (List.length results)

let () =
  let t0 = Unix.gettimeofday () in
  print_endline "PICACHU experiment reproduction (every table and figure)";
  print_endline "=========================================================";
  Experiments.print_all ();
  run_benchmarks ();
  Printf.printf "\n[bench harness completed in %.1fs]\n" (Unix.gettimeofday () -. t0)
