(* Tests for the LLM substrate: model zoo, workload inventory, device
   models, the surrogate transformer, and the accuracy harnesses. *)
open Picachu_llm
module Approx = Picachu_numerics.Approx
module Rng = Picachu_tensor.Rng
module Tensor = Picachu_tensor.Tensor
module Registry = Picachu_nonlinear.Registry

let check_close eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------- model zoo *)

let test_zoo_lookup () =
  Alcotest.(check int) "llama2-7b layers" 32 (Model_zoo.llama2_7b.Model_zoo.layers);
  Alcotest.(check bool) "by_name" true (Model_zoo.by_name "gpt2-xl" == Model_zoo.gpt2_xl);
  Alcotest.(check int) "d_head" 128 (Model_zoo.d_head Model_zoo.llama2_7b)

let test_zoo_op_structure () =
  Alcotest.(check bool) "llama uses swiglu" true
    (Model_zoo.activation_op Model_zoo.llama2_7b = Registry.Swiglu);
  Alcotest.(check bool) "llama uses rmsnorm" true
    (Model_zoo.norm_op Model_zoo.llama2_7b = Registry.Rmsnorm);
  Alcotest.(check bool) "opt uses relu" true
    (Model_zoo.activation_op Model_zoo.opt_6_7b = Registry.Relu);
  Alcotest.(check bool) "gpt2 uses layernorm" true
    (Model_zoo.norm_op Model_zoo.gpt2_xl = Registry.Layernorm)

(* -------------------------------------------------------------- workload *)

let test_workload_structure () =
  let w = Workload.of_model Model_zoo.llama2_7b ~seq:512 in
  let tags = List.map (fun (nl : Workload.nl) -> nl.Workload.nl_tag) w.Workload.nls in
  Alcotest.(check bool) "llama has rope" true (List.mem "rope" tags);
  let w2 = Workload.of_model Model_zoo.gpt2_xl ~seq:512 in
  let tags2 = List.map (fun (nl : Workload.nl) -> nl.Workload.nl_tag) w2.Workload.nls in
  Alcotest.(check bool) "gpt2 has no rope" false (List.mem "rope" tags2)

let test_workload_gqa_width () =
  (* GQA/MQA shrink the K/V projection: qkv output width = d + 2*kv*dh *)
  let qkv m =
    let w = Workload.of_model m ~seq:128 in
    (List.find (fun (g : Workload.gemm) -> g.Workload.g_tag = "qkv") w.Workload.gemms)
      .Workload.n
  in
  Alcotest.(check int) "llama full width" (3 * 4096) (qkv Model_zoo.llama2_7b);
  Alcotest.(check int) "mistral grouped" (4096 + (2 * 8 * 128)) (qkv Model_zoo.mistral_7b);
  Alcotest.(check int) "falcon multi-query" (4544 + (2 * 1 * 64)) (qkv Model_zoo.falcon_7b)

let test_workload_rope_covers_kv_heads () =
  let rope m =
    let w = Workload.of_model m ~seq:16 in
    (List.find (fun (nl : Workload.nl) -> nl.Workload.nl_tag = "rope") w.Workload.nls)
      .Workload.rows
  in
  Alcotest.(check int) "mistral q+kv heads" (16 * (32 + 8)) (rope Model_zoo.mistral_7b);
  Alcotest.(check int) "llama q+kv heads" (16 * 64) (rope Model_zoo.llama2_7b)

let test_mistral_sliding_window () =
  let w = Workload.of_model Model_zoo.mistral_7b ~seq:8192 in
  let sm = List.find (fun (nl : Workload.nl) -> nl.Workload.nl_tag = "softmax") w.Workload.nls in
  Alcotest.(check int) "attention span capped at the window" 4096 sm.Workload.dim

let test_workload_gated_ffn_counts () =
  let w = Workload.of_model Model_zoo.llama2_7b ~seq:128 in
  let up = List.find (fun (g : Workload.gemm) -> g.Workload.g_tag = "ffn.up+gate") w.Workload.gemms in
  Alcotest.(check int) "two projections per layer" (2 * 32) up.Workload.count

let test_workload_bigbird_window () =
  let w = Workload.of_model Model_zoo.bigbird ~seq:4096 in
  let sm = List.find (fun (nl : Workload.nl) -> nl.Workload.nl_tag = "softmax") w.Workload.nls in
  Alcotest.(check int) "attention span capped" 512 sm.Workload.dim

let test_workload_flops_scale () =
  let f s = Workload.gemm_flops (Workload.of_model Model_zoo.gpt2_xl ~seq:s) in
  Alcotest.(check bool) "superlinear in seq (attention)" true (f 2048 > 2.0 *. f 1024)

let test_workload_validation () =
  Alcotest.check_raises "seq" (Invalid_argument "Workload.of_model: seq") (fun () ->
      ignore (Workload.of_model Model_zoo.gpt2_xl ~seq:0))

(* ------------------------------------------------------------- gpu model *)

let test_gpu_breakdown_sums () =
  let w = Workload.of_model Model_zoo.llama2_7b ~seq:1024 in
  let b = Gpu_model.run Gpu_model.a100 w in
  check_close 1e-9 "components sum to total" b.Gpu_model.total_s
    (b.Gpu_model.gemm_s +. b.Gpu_model.softmax_s +. b.Gpu_model.norm_s
   +. b.Gpu_model.activation_s +. b.Gpu_model.rope_s)

let test_gpu_nl_fraction_grows_with_seq () =
  let f s =
    Gpu_model.nonlinear_fraction
      (Gpu_model.run Gpu_model.a100 (Workload.of_model Model_zoo.llama2_7b ~seq:s))
  in
  Alcotest.(check bool) "nonlinear share grows" true (f 2048 > f 512 && f 512 > f 128)

let test_gpu_fig1_band () =
  (* the paper's headline: nonlinear ops reach 30-50% at seq 1024 *)
  List.iter
    (fun m ->
      let f =
        Gpu_model.nonlinear_fraction
          (Gpu_model.run Gpu_model.a100 (Workload.of_model m ~seq:1024))
      in
      Alcotest.(check bool)
        (m.Model_zoo.name ^ " in plausible band")
        true
        (f > 0.15 && f < 0.60))
    Model_zoo.all

(* ------------------------------------------------------------- surrogate *)

let surrogate m = Surrogate.create ~seed:42 (Surrogate.surrogate_of m)

let test_surrogate_logits_shape () =
  let s = surrogate Model_zoo.gpt2_xl in
  let lg = Surrogate.logits s Approx.exact [| 1; 2; 3 |] in
  Alcotest.(check (list int)) "seq x vocab" [ 3; 256 ] (Tensor.shape lg)

let test_surrogate_deterministic () =
  let s1 = surrogate Model_zoo.llama2_7b and s2 = surrogate Model_zoo.llama2_7b in
  let t = [| 5; 9; 200; 31 |] in
  Alcotest.(check bool) "same seed same logits" true
    (Tensor.equal (Surrogate.logits s1 Approx.exact t) (Surrogate.logits s2 Approx.exact t))

let test_surrogate_validation () =
  let s = surrogate Model_zoo.gpt2_xl in
  Alcotest.check_raises "bad token" (Invalid_argument "Surrogate.logits: token")
    (fun () -> ignore (Surrogate.logits s Approx.exact [| 0; 999 |]));
  Alcotest.check_raises "empty" (Invalid_argument "Surrogate.logits: sequence length")
    (fun () -> ignore (Surrogate.logits s Approx.exact [||]))

let test_surrogate_causality () =
  (* changing a later token must not affect earlier logits *)
  let s = surrogate Model_zoo.gpt2_xl in
  let a = Surrogate.logits s Approx.exact [| 1; 2; 3; 4 |] in
  let b = Surrogate.logits s Approx.exact [| 1; 2; 3; 200 |] in
  for j = 0 to 255 do
    check_close 1e-12 "position 2 unchanged" (Tensor.get2 a 2 j) (Tensor.get2 b 2 j)
  done

let test_sample_deterministic_and_valid () =
  let s = surrogate Model_zoo.opt_6_7b in
  let t1 = Surrogate.sample s (Rng.create 3) ~len:20 () in
  let t2 = Surrogate.sample s (Rng.create 3) ~len:20 () in
  Alcotest.(check (array int)) "deterministic" t1 t2;
  Array.iter (fun tok -> Alcotest.(check bool) "valid token" true (tok >= 0 && tok < 256)) t1

let test_surrogate_gqa () =
  (* Mistral-structured surrogate uses grouped KV heads end to end *)
  let cfg = Surrogate.surrogate_of Model_zoo.mistral_7b in
  Alcotest.(check int) "grouped kv heads" 2 cfg.Surrogate.kv_heads;
  let s = Surrogate.create ~seed:42 cfg in
  let lg = Surrogate.logits s Approx.exact [| 3; 7; 11 |] in
  Alcotest.(check (list int)) "logits shape" [ 3; 256 ] (Tensor.shape lg);
  (* accuracy machinery works on the GQA model too *)
  let stream = Surrogate.sample s (Rng.create 7) ~temperature:0.4 ~len:32 () in
  let fp16 = Ppl.ppl s Approx.fp16_reference stream in
  let ours = Ppl.ppl s (Approx.ours_int ()) stream in
  Alcotest.(check bool) "ours tracks fp16 under gqa" true
    (Float.abs (ours -. fp16) /. fp16 < 0.02)

(* ------------------------------------------------------------------- ppl *)

let test_ppl_exact_beats_chance () =
  let s = surrogate Model_zoo.gpt2_xl in
  let stream = Surrogate.sample s (Rng.create 7) ~temperature:0.4 ~len:48 () in
  let ppl = Ppl.ppl s Approx.exact stream in
  Alcotest.(check bool) "well below vocab" true (ppl < 64.0 && ppl > 1.0)

let test_ppl_table2_ordering () =
  (* the Table 2 shape: FP16 ~ exact << gemmlowp << I-BERT on LLaMA-style
     surrogates *)
  let s = surrogate Model_zoo.llama2_7b in
  let stream = Surrogate.sample s (Rng.create 7) ~temperature:0.4 ~len:48 () in
  let p b = Ppl.ppl s b stream in
  let exact = p Approx.exact in
  let fp16 = p Approx.fp16_reference in
  let ibert = p Approx.ibert in
  let gl = p Approx.gemmlowp in
  Alcotest.(check bool) "fp16 tracks exact" true (Float.abs (fp16 -. exact) /. exact < 0.05);
  Alcotest.(check bool) "ibert collapses (>=10x)" true (ibert > 10.0 *. fp16);
  Alcotest.(check bool) "gemmlowp degrades but survives" true
    (gl > fp16 && gl < ibert)

let test_ppl_table5_ours_tracks_fp16 () =
  List.iter
    (fun m ->
      let s = surrogate m in
      let stream = Surrogate.sample s (Rng.create 7) ~temperature:0.4 ~len:48 () in
      let fp16 = Ppl.ppl s Approx.fp16_reference stream in
      let ours_fp = Ppl.ppl s (Approx.ours_fp ()) stream in
      let ours_int = Ppl.ppl s (Approx.ours_int ()) stream in
      Alcotest.(check bool)
        (m.Model_zoo.name ^ " ours-fp within 2%")
        true
        (Float.abs (ours_fp -. fp16) /. fp16 < 0.02);
      Alcotest.(check bool)
        (m.Model_zoo.name ^ " ours-int within 2%")
        true
        (Float.abs (ours_int -. fp16) /. fp16 < 0.02))
    [ Model_zoo.gpt2_xl; Model_zoo.llama2_7b ]

let test_nll_short_stream_rejected () =
  let s = surrogate Model_zoo.gpt2_xl in
  Alcotest.check_raises "short" (Invalid_argument "Ppl.nll: stream too short") (fun () ->
      ignore (Ppl.nll s Approx.exact [| 1 |]))

let test_quantized_linear_composition () =
  (* W8 linear quantization is a mild, bounded perturbation; the nonlinear
     backend choice must stay irrelevant on top of it *)
  let base = Surrogate.surrogate_of Model_zoo.llama2_7b in
  let sur_fp = Surrogate.create ~seed:42 base in
  let sur_w8 = Surrogate.create ~seed:42 (Surrogate.with_linear_bits 8 base) in
  let stream = Surrogate.sample sur_fp (Rng.create 7) ~temperature:0.4 ~len:40 () in
  let p model b = Ppl.ppl model b stream in
  let fp = p sur_fp Approx.fp16_reference in
  let w8 = p sur_w8 Approx.fp16_reference in
  Alcotest.(check bool) "w8 within 2x" true (w8 < 2.0 *. fp && w8 > 0.5 *. fp);
  let w8_ours = p sur_w8 (Approx.ours_int ()) in
  Alcotest.(check bool) "ours-int16 tracks fp16 under W8" true
    (Float.abs (w8_ours -. w8) /. w8 < 0.05)

(* ------------------------------------------------------------- zero-shot *)

let test_zero_shot_labels_have_margin () =
  let s = surrogate Model_zoo.gpt2_xl in
  let tasks = Zero_shot.make_tasks ~seed:5 ~items_per_task:8 ~margin:0.8 s in
  Alcotest.(check int) "five tasks" 5 (List.length tasks);
  List.iter
    (fun (t : Zero_shot.task) ->
      List.iter
        (fun (it : Zero_shot.item) ->
          let la = Zero_shot.score_candidate s Approx.exact it.Zero_shot.context it.Zero_shot.cand_a in
          let lb = Zero_shot.score_candidate s Approx.exact it.Zero_shot.context it.Zero_shot.cand_b in
          Alcotest.(check bool) "margin kept" true (Float.abs (la -. lb) >= 0.8);
          Alcotest.(check bool) "label consistent" true ((la > lb) = it.Zero_shot.label_a))
        t.Zero_shot.items)
    tasks

let test_zero_shot_exact_is_perfect () =
  let s = surrogate Model_zoo.opt_6_7b in
  let tasks = Zero_shot.make_tasks ~seed:5 ~items_per_task:6 ~margin:0.5 s in
  List.iter
    (fun t ->
      check_close 1e-12 "exact agrees with its own labels" 1.0
        (Zero_shot.accuracy s Approx.exact t))
    tasks

let test_zero_shot_ours_high_agreement () =
  let s = surrogate Model_zoo.llama2_7b in
  let tasks = Zero_shot.make_tasks ~seed:5 ~items_per_task:10 ~margin:0.5 s in
  List.iter
    (fun t ->
      Alcotest.(check bool) "ours-int16 >= 80% agreement" true
        (Zero_shot.accuracy s (Approx.ours_int ()) t >= 0.8))
    tasks

(* ------------------------------------------------------------- cpu model *)

let test_cpu_model_positive_and_ordered () =
  let w = Workload.of_model Model_zoo.llama2_7b ~seq:1024 in
  let t = Cpu_model.total_nl_seconds Cpu_model.i7_11370h w in
  Alcotest.(check bool) "positive" true (t > 0.0);
  (* exp-class ops are slower per element than relu-class *)
  let sm = { Workload.op = Registry.Softmax; rows = 100; dim = 100; nl_count = 1; nl_tag = "softmax" } in
  let rl = { sm with Workload.op = Registry.Relu; nl_tag = "relu" } in
  Alcotest.(check bool) "softmax slower than relu" true
    (Cpu_model.nl_seconds Cpu_model.i7_11370h sm > Cpu_model.nl_seconds Cpu_model.i7_11370h rl)

let suite =
  [
    ( "model-zoo",
      [
        Alcotest.test_case "lookup" `Quick test_zoo_lookup;
        Alcotest.test_case "op structure" `Quick test_zoo_op_structure;
      ] );
    ( "workload",
      [
        Alcotest.test_case "structure" `Quick test_workload_structure;
        Alcotest.test_case "gqa width" `Quick test_workload_gqa_width;
        Alcotest.test_case "rope covers kv heads" `Quick test_workload_rope_covers_kv_heads;
        Alcotest.test_case "mistral window" `Quick test_mistral_sliding_window;
        Alcotest.test_case "gated ffn counts" `Quick test_workload_gated_ffn_counts;
        Alcotest.test_case "bigbird window" `Quick test_workload_bigbird_window;
        Alcotest.test_case "flops scaling" `Quick test_workload_flops_scale;
        Alcotest.test_case "validation" `Quick test_workload_validation;
      ] );
    ( "gpu-model",
      [
        Alcotest.test_case "breakdown sums" `Quick test_gpu_breakdown_sums;
        Alcotest.test_case "nl share grows with seq" `Quick test_gpu_nl_fraction_grows_with_seq;
        Alcotest.test_case "fig1 band" `Quick test_gpu_fig1_band;
      ] );
    ( "surrogate",
      [
        Alcotest.test_case "logits shape" `Quick test_surrogate_logits_shape;
        Alcotest.test_case "deterministic" `Quick test_surrogate_deterministic;
        Alcotest.test_case "validation" `Quick test_surrogate_validation;
        Alcotest.test_case "causality" `Quick test_surrogate_causality;
        Alcotest.test_case "sampling" `Quick test_sample_deterministic_and_valid;
        Alcotest.test_case "grouped-query attention" `Slow test_surrogate_gqa;
      ] );
    ( "ppl",
      [
        Alcotest.test_case "exact beats chance" `Slow test_ppl_exact_beats_chance;
        Alcotest.test_case "table 2 ordering" `Slow test_ppl_table2_ordering;
        Alcotest.test_case "table 5 ours tracks fp16" `Slow test_ppl_table5_ours_tracks_fp16;
        Alcotest.test_case "short stream rejected" `Quick test_nll_short_stream_rejected;
        Alcotest.test_case "w8 linear composition" `Slow test_quantized_linear_composition;
      ] );
    ( "zero-shot",
      [
        Alcotest.test_case "labels have margin" `Slow test_zero_shot_labels_have_margin;
        Alcotest.test_case "exact is perfect" `Slow test_zero_shot_exact_is_perfect;
        Alcotest.test_case "ours high agreement" `Slow test_zero_shot_ours_high_agreement;
      ] );
    ( "cpu-model",
      [ Alcotest.test_case "positive and ordered" `Quick test_cpu_model_positive_and_ordered ] );
  ]
