(* Tests for the systolic array model and the memory system (DMA, double
   buffering, Shared Buffer, the three data-flow cases). *)
open Picachu_memory
module Systolic = Picachu_systolic.Systolic

let qtest = QCheck_alcotest.to_alcotest

(* -------------------------------------------------------------- systolic *)

let test_gemm_cycles_formula () =
  let s = Systolic.make 32 in
  (* single tile: k + 2*dim *)
  Alcotest.(check int) "single tile" (128 + 64) (Systolic.gemm_cycles s ~m:32 ~k:128 ~n:32);
  (* four tiles pipeline: first pays fill, rest pay k *)
  Alcotest.(check int) "2x2 tiles"
    (128 + 64 + (3 * 128))
    (Systolic.gemm_cycles s ~m:64 ~k:128 ~n:64)

let test_gemm_validation () =
  let s = Systolic.default in
  Alcotest.check_raises "bad dims" (Invalid_argument "Systolic.gemm_cycles: dims")
    (fun () -> ignore (Systolic.gemm_cycles s ~m:0 ~k:4 ~n:4))

let test_gemm_utilization_approaches_one () =
  let s = Systolic.make 32 in
  let u = Systolic.utilization s ~m:1024 ~k:8192 ~n:1024 in
  Alcotest.(check bool) "large gemm utilization > 0.95" true (u > 0.95);
  Alcotest.(check bool) "never above 1" true (u <= 1.0)

let test_gemm_energy_proportional () =
  let s = Systolic.default in
  let e1 = Systolic.gemm_energy_uj s ~m:64 ~k:64 ~n:64 in
  let e2 = Systolic.gemm_energy_uj s ~m:128 ~k:64 ~n:64 in
  Alcotest.(check (float 1e-9)) "scales with macs" (2.0 *. e1) e2

(* ------------------------------------------------------------------- dma *)

let test_dma_transfer () =
  let d = Dma.make ~setup_cycles:100 ~bytes_per_cycle:8.0 () in
  Alcotest.(check int) "zero bytes free" 0 (Dma.transfer_cycles d ~bytes:0);
  Alcotest.(check int) "setup plus stream" (100 + 128) (Dma.transfer_cycles d ~bytes:1024);
  Alcotest.check_raises "negative" (Invalid_argument "Dma.transfer_cycles: negative size")
    (fun () -> ignore (Dma.transfer_cycles d ~bytes:(-1)))

let prop_dma_monotone =
  QCheck.Test.make ~name:"dma cycles monotone in size" ~count:200
    (QCheck.pair (QCheck.int_range 0 100000) (QCheck.int_range 0 100000)) (fun (a, b) ->
      let d = Dma.default in
      let lo = min a b and hi = max a b in
      Dma.transfer_cycles d ~bytes:lo <= Dma.transfer_cycles d ~bytes:hi)

(* --------------------------------------------------------- double buffer *)

let test_double_buffer_known () =
  (* 4 chunks, transfer 10, compute 30: 10 + 30*3 + 30 = 130 *)
  Alcotest.(check int) "compute bound" 130
    (Double_buffer.pipelined_cycles ~chunks:4 ~transfer:10 ~compute:30);
  Alcotest.(check int) "serialized" 160
    (Double_buffer.serialized_cycles ~chunks:4 ~transfer:10 ~compute:30);
  Alcotest.(check int) "zero chunks" 0
    (Double_buffer.pipelined_cycles ~chunks:0 ~transfer:10 ~compute:30)

let prop_pipelined_never_slower =
  QCheck.Test.make ~name:"overlap never slower than serial" ~count:500
    (QCheck.triple (QCheck.int_range 0 50) (QCheck.int_range 0 1000) (QCheck.int_range 0 1000))
    (fun (chunks, transfer, compute) ->
      Double_buffer.pipelined_cycles ~chunks ~transfer ~compute
      <= Double_buffer.serialized_cycles ~chunks ~transfer ~compute)

let prop_hidden_fraction_bounded =
  QCheck.Test.make ~name:"hidden fraction in [0,1]" ~count:500
    (QCheck.triple (QCheck.int_range 1 50) (QCheck.int_range 1 1000) (QCheck.int_range 0 1000))
    (fun (chunks, transfer, compute) ->
      let f = Double_buffer.hidden_fraction ~chunks ~transfer ~compute in
      f >= 0.0 && f <= 1.0 +. 1e-9)

let test_hidden_fraction_extremes () =
  (* compute >> transfer: nearly all DMA hidden *)
  let f = Double_buffer.hidden_fraction ~chunks:100 ~transfer:10 ~compute:1000 in
  Alcotest.(check bool) "mostly hidden" true (f > 0.95);
  (* compute = 0: nothing to hide behind *)
  let f0 = Double_buffer.hidden_fraction ~chunks:100 ~transfer:10 ~compute:0 in
  Alcotest.(check bool) "nothing hidden" true (f0 < 0.05)

(* ----------------------------------------------------------- shared buffer *)

let test_buffer_validation () =
  Alcotest.check_raises "capacity" (Invalid_argument "Shared_buffer.make: capacity")
    (fun () -> ignore (Shared_buffer.make ~kb:0.0 ()))

let test_paper_channel_thresholds () =
  (* §5.3.5: 40KB holds a LLaMA2-7B channel (d=4096), 20KB a GPT2-XL channel
     (d=1600), with double-buffered in/out pairs *)
  let b40 = Shared_buffer.make ~kb:40.0 () in
  let b20 = Shared_buffer.make ~kb:20.0 () in
  let b10 = Shared_buffer.make ~kb:10.0 () in
  Alcotest.(check bool) "llama fits in 40KB" true (Shared_buffer.holds_channel b40 ~dim:4096);
  Alcotest.(check bool) "llama does not fit in 20KB" false
    (Shared_buffer.holds_channel b20 ~dim:4096);
  Alcotest.(check bool) "gpt2 fits in 20KB" true (Shared_buffer.holds_channel b20 ~dim:1600);
  Alcotest.(check bool) "gpt2 does not fit in 10KB" false
    (Shared_buffer.holds_channel b10 ~dim:1600)

let test_channels_resident () =
  let b = Shared_buffer.make ~kb:40.0 () in
  Alcotest.(check int) "resident channels" 5 (Shared_buffer.channels_resident b ~dim:1024)

(* ---------------------------------------------------------------- dataflow *)

let buf40 = Shared_buffer.make ~kb:40.0 ()

let test_classify () =
  Alcotest.(check string) "EO streams" "case1-stream"
    (Dataflow.case_name (Dataflow.classify buf40 ~reduction:false ~rows:100000 ~dim:4096));
  Alcotest.(check string) "big RE uses channel dma" "case2-channel-dma"
    (Dataflow.case_name (Dataflow.classify buf40 ~reduction:true ~rows:1024 ~dim:4096));
  Alcotest.(check string) "small RE resident" "case3-resident"
    (Dataflow.case_name (Dataflow.classify buf40 ~reduction:true ~rows:4 ~dim:512))

let test_case1_overlap () =
  Alcotest.(check int) "producer dominates" 1010
    (Dataflow.case1_cycles ~producer_cycles:1000 ~cgra_cycles:400 ~prologue:10);
  Alcotest.(check int) "cgra dominates" 1210
    (Dataflow.case1_cycles ~producer_cycles:400 ~cgra_cycles:1200 ~prologue:10)

let test_case2_segmentation_penalty () =
  (* a buffer too small for the channel re-streams it segment by segment *)
  let small = Shared_buffer.make ~kb:10.0 () in
  let big = Shared_buffer.make ~kb:64.0 () in
  let cycles buf =
    Dataflow.case2_cycles Dma.default buf ~rows:256 ~dim:4096 ~element_bytes:2
      ~compute_per_channel:500 ~writeback:true
  in
  Alcotest.(check bool) "segmentation costs" true (cycles small > cycles big)

let test_case2_double_buffering_wins () =
  let args buf f =
    f Dma.default buf ~rows:128 ~dim:2048 ~element_bytes:2 ~compute_per_channel:700
      ~writeback:true
  in
  Alcotest.(check bool) "pipelined faster" true
    (args buf40 Dataflow.case2_cycles < args buf40 Dataflow.case2_cycles_single_buffered)

let test_case3_on_chip_cheaper () =
  let c on = Dataflow.case3_cycles Dma.default ~rows:8 ~dim:512 ~element_bytes:2
      ~compute_per_channel:600 ~input_on_chip:on
  in
  Alcotest.(check bool) "on-chip input skips the load" true (c true < c false)

let prop_case2_rows_monotone =
  QCheck.Test.make ~name:"case2 cycles monotone in rows" ~count:200
    (QCheck.pair (QCheck.int_range 1 500) (QCheck.int_range 1 500)) (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let f rows =
        Dataflow.case2_cycles Dma.default buf40 ~rows ~dim:1024 ~element_bytes:2
          ~compute_per_channel:300 ~writeback:true
      in
      f lo <= f hi)

let suite =
  [
    ( "systolic",
      [
        Alcotest.test_case "cycle formula" `Quick test_gemm_cycles_formula;
        Alcotest.test_case "validation" `Quick test_gemm_validation;
        Alcotest.test_case "utilization" `Quick test_gemm_utilization_approaches_one;
        Alcotest.test_case "energy" `Quick test_gemm_energy_proportional;
      ] );
    ( "dma",
      [
        Alcotest.test_case "transfer" `Quick test_dma_transfer;
        qtest prop_dma_monotone;
      ] );
    ( "double-buffer",
      [
        Alcotest.test_case "known values" `Quick test_double_buffer_known;
        qtest prop_pipelined_never_slower;
        qtest prop_hidden_fraction_bounded;
        Alcotest.test_case "hidden fraction extremes" `Quick test_hidden_fraction_extremes;
      ] );
    ( "shared-buffer",
      [
        Alcotest.test_case "validation" `Quick test_buffer_validation;
        Alcotest.test_case "paper thresholds" `Quick test_paper_channel_thresholds;
        Alcotest.test_case "channels resident" `Quick test_channels_resident;
      ] );
    ( "dataflow",
      [
        Alcotest.test_case "classify" `Quick test_classify;
        Alcotest.test_case "case1 overlap" `Quick test_case1_overlap;
        Alcotest.test_case "case2 segmentation" `Quick test_case2_segmentation_penalty;
        Alcotest.test_case "case2 double buffering" `Quick test_case2_double_buffering_wins;
        Alcotest.test_case "case3 on-chip input" `Quick test_case3_on_chip_cheaper;
        qtest prop_case2_rows_monotone;
      ] );
  ]
