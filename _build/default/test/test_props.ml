(* Cross-cutting mathematical property tests: identities the approximation
   algorithms must respect (up to their error budgets), and monotonicity
   invariants of the performance models. *)
open Picachu_numerics
module Mz = Picachu_llm.Model_zoo
module Workload = Picachu_llm.Workload
module Gpu = Picachu_llm.Gpu_model
open Picachu

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------- numerics *)

let prop_exp_additivity =
  QCheck.Test.make ~name:"taylor exp respects exp(a+b) = exp a * exp b" ~count:300
    (QCheck.pair (QCheck.float_range (-8.0) 4.0) (QCheck.float_range (-8.0) 4.0))
    (fun (a, b) ->
      let lhs = Taylor.exp (a +. b) in
      let rhs = Taylor.exp a *. Taylor.exp b in
      Float.abs (lhs -. rhs) /. Float.max 1e-12 lhs < 1e-4)

let prop_log_inverts_exp =
  QCheck.Test.make ~name:"taylor log inverts taylor exp" ~count:300
    (QCheck.float_range (-10.0) 10.0) (fun x ->
      Float.abs (Taylor.log (Taylor.exp x) -. x) < 2e-3)

let prop_int_exp_monotone =
  QCheck.Test.make ~name:"int exp is monotone" ~count:300
    (QCheck.pair (QCheck.float_range (-15.0) 5.0) (QCheck.float_range 0.0 2.0))
    (fun (x, d) -> Int_ops.exp x <= Int_ops.exp (x +. d) +. 1e-12)

let prop_sin_cos_pythagoras =
  QCheck.Test.make ~name:"taylor sin^2 + cos^2 = 1" ~count:300
    (QCheck.float_range (-10.0) 10.0) (fun x ->
      let s = Taylor.sin x and c = Taylor.cos x in
      Float.abs ((s *. s) +. (c *. c) -. 1.0) < 2e-2)

let prop_isqrt_inverts_square =
  QCheck.Test.make ~name:"isqrt(x^2) = 1/x" ~count:300 (QCheck.float_range 0.01 100.0)
    (fun x ->
      Float.abs (Taylor.isqrt (x *. x) -. (1.0 /. x)) *. x < 1e-5)

let prop_sigmoid_symmetry =
  QCheck.Test.make ~name:"sigmoid(x) + sigmoid(-x) = 1" ~count:300
    (QCheck.float_range (-20.0) 20.0) (fun x ->
      Float.abs (Taylor.sigmoid x +. Taylor.sigmoid (-.x) -. 1.0) < 1e-5)

let prop_fp16_idempotent_under_format =
  QCheck.Test.make ~name:"backend format functions are idempotent" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 1 16) (QCheck.float_range (-50.0) 50.0))
    (fun l ->
      let xs = Array.of_list l in
      List.for_all
        (fun (b : Approx.t) ->
          let once = b.Approx.format xs in
          let twice = b.Approx.format once in
          Array.for_all2 (fun u v -> u = v) once twice)
        [ Approx.fp16_reference; Approx.ours_fp (); Approx.gemmlowp ])

let prop_quant_scale_covers_range =
  QCheck.Test.make ~name:"quantization never saturates its own absmax" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 1 32) (QCheck.float_range (-100.0) 100.0))
    (fun l ->
      let t = Picachu_tensor.Tensor.of_array [ List.length l ] (Array.of_list l) in
      let q = Quant.quantize ~bits:8 t in
      Array.for_all (fun v -> v >= -128 && v <= 127) q.Quant.q)

(* --------------------------------------------------------- model invariants *)

let prop_gpu_time_monotone_in_seq =
  QCheck.Test.make ~name:"gpu total time monotone in sequence length" ~count:30
    (QCheck.pair (QCheck.int_range 32 1024) (QCheck.int_range 32 1024))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let t s = (Gpu.run Gpu.a100 (Workload.of_model Mz.llama2_7b ~seq:s)).Gpu.total_s in
      t lo <= t hi +. 1e-12)

let prop_simulator_monotone_in_seq =
  QCheck.Test.make ~name:"picachu total cycles monotone in sequence length" ~count:15
    (QCheck.pair (QCheck.int_range 64 512) (QCheck.int_range 64 512))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let cfg = Simulator.default_config ~vector:4 () in
      let t s = (Simulator.run cfg (Workload.of_model Mz.gpt2_xl ~seq:s)).Simulator.total_cycles in
      t lo <= t hi)

let prop_bigger_buffer_never_slower =
  QCheck.Test.make ~name:"bigger shared buffer never slower" ~count:15
    (QCheck.pair (QCheck.float_range 8.0 100.0) (QCheck.float_range 8.0 100.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let w = Workload.of_model Mz.llama2_7b ~seq:256 in
      let t kb =
        (Simulator.run (Simulator.default_config ~buffer_kb:kb ~vector:4 ()) w)
          .Simulator.total_cycles
      in
      t hi <= t lo)

let prop_gemm_cycles_monotone =
  QCheck.Test.make ~name:"systolic cycles monotone in every dimension" ~count:200
    (QCheck.triple (QCheck.int_range 1 512) (QCheck.int_range 1 512) (QCheck.int_range 1 512))
    (fun (m, k, n) ->
      let s = Picachu_systolic.Systolic.default in
      let base = Picachu_systolic.Systolic.gemm_cycles s ~m ~k ~n in
      Picachu_systolic.Systolic.gemm_cycles s ~m:(m + 32) ~k ~n >= base
      && Picachu_systolic.Systolic.gemm_cycles s ~m ~k:(k + 32) ~n >= base
      && Picachu_systolic.Systolic.gemm_cycles s ~m ~k ~n:(n + 32) >= base)

let suite =
  [
    ( "identities",
      [
        qtest prop_exp_additivity;
        qtest prop_log_inverts_exp;
        qtest prop_int_exp_monotone;
        qtest prop_sin_cos_pythagoras;
        qtest prop_isqrt_inverts_square;
        qtest prop_sigmoid_symmetry;
        qtest prop_fp16_idempotent_under_format;
        qtest prop_quant_scale_covers_range;
      ] );
    ( "model-invariants",
      [
        qtest prop_gpu_time_monotone_in_seq;
        qtest prop_simulator_monotone_in_seq;
        qtest prop_bigger_buffer_never_slower;
        qtest prop_gemm_cycles_monotone;
      ] );
  ]
