test/test_golden.ml: Alcotest Array Compiler Picachu Picachu_cgra Picachu_ir Picachu_llm Picachu_numerics Picachu_tensor
