test/test_props.ml: Approx Array Float Int_ops List Picachu Picachu_llm Picachu_numerics Picachu_systolic Picachu_tensor QCheck QCheck_alcotest Quant Simulator Taylor
