test/test_nonlinear.ml: Activations Alcotest Array Float List Norms Picachu_ir Picachu_nonlinear Picachu_numerics Picachu_tensor QCheck QCheck_alcotest Registry Rope Softmax
