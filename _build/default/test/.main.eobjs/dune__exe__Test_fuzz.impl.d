test/test_fuzz.ml: Array Builder Compiler Float Hashtbl Hw_sim Interp Kernel List Op Picachu Picachu_cgra Picachu_dfg Picachu_ir Picachu_tensor Printf QCheck QCheck_alcotest Transform
