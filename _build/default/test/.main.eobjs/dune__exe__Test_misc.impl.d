test/test_misc.ml: Alcotest Array Experiments Filename Float List Picachu Picachu_ir Picachu_numerics Report String Sys Unix
