test/test_memory.ml: Alcotest Dataflow Dma Double_buffer Picachu_memory Picachu_systolic QCheck QCheck_alcotest Shared_buffer
