test/test_numerics.ml: Alcotest Approx Array Fixed_point Float Fp16 Gemmlowp Ibert Int_ops Lazy List Lut Picachu_numerics Picachu_tensor Poly Printf QCheck QCheck_alcotest Quant Rng Taylor Tensor
