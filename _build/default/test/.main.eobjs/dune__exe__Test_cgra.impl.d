test/test_cgra.ml: Alcotest Arch Array Cost Dfg Fu Fuse Hashtbl Kernel Kernels List Mapper Mapper_exact Noc Op Picachu_cgra Picachu_dfg Picachu_ir Printf QCheck QCheck_alcotest Rf Stdlib Transform
