test/main.mli:
