test/test_explore.ml: Alcotest Array Explore Float Lazy List Picachu Picachu_cgra Picachu_llm Printf
