test/test_dfg.ml: Alcotest Analysis Array Dfg Fuse Kernel Kernels List Op Picachu_dfg Picachu_ir QCheck QCheck_alcotest Transform
