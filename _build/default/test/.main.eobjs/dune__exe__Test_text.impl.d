test/test_text.ml: Alcotest Interp Kernel Kernel_text Kernels List Picachu_ir QCheck QCheck_alcotest String Test_fuzz Transform
