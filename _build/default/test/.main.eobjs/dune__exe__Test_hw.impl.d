test/test_hw.ml: Alcotest Array Compiler Hw_sim List Picachu Picachu_cgra Picachu_dfg Picachu_ir
