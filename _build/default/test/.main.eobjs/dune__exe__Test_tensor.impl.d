test/test_tensor.ml: Alcotest Array Float Fmt Picachu_tensor QCheck QCheck_alcotest Rng Stats Tensor
