test/test_frontend.ml: Alcotest Float Layer_builder List Offload Patterns Picachu_frontend Picachu_llm Picachu_nonlinear Tensor_ir
