test/test_ir.ml: Alcotest Array Builder Float Instr Interp Kernel Kernels List Op Picachu_ir Picachu_numerics Printf QCheck QCheck_alcotest String Transform
