test/test_llm.ml: Alcotest Array Cpu_model Float Gpu_model List Model_zoo Picachu_llm Picachu_nonlinear Picachu_numerics Picachu_tensor Ppl Surrogate Workload Zero_shot
