(* Tests for the compiler front end: tensor IR construction, the §4.3
   pattern matcher (positive templates, emission variants, and the negative
   cases that must NOT fuse), the offload pass, and the cross-check against
   the hand-built workload inventory. *)
open Picachu_frontend
open Tensor_ir
module B = Tensor_ir.Build
module Registry = Picachu_nonlinear.Registry
module Mz = Picachu_llm.Model_zoo
module Workload = Picachu_llm.Workload

let sh rows cols = { rows; cols }

let nonlinears p =
  List.filter_map
    (fun (i : tinstr) -> match i.op with TNonlinear op -> Some op | _ -> None)
    p.instrs

(* ------------------------------------------------------------- tensor IR *)

let test_builder_shapes () =
  let b = B.create "t" in
  let x = B.input b "x" (sh 4 8) in
  let w = B.weight b "w" (sh 8 16) in
  let y = B.matmul b x w in
  let p = B.finish b ~outputs:[ y ] in
  Alcotest.(check bool) "valid" true (validate p = Ok ());
  let last = List.nth p.instrs y in
  Alcotest.(check int) "result rows" 4 last.shape.rows;
  Alcotest.(check int) "result cols" 16 last.shape.cols

let test_builder_shape_errors () =
  let b = B.create "t" in
  let x = B.input b "x" (sh 4 8) in
  let w = B.weight b "w" (sh 9 16) in
  Alcotest.check_raises "inner dims" (Invalid_argument "Tensor_ir.matmul: inner dims")
    (fun () -> ignore (B.matmul b x w));
  let y = B.input b "y" (sh 4 9) in
  Alcotest.check_raises "elementwise" (Invalid_argument "Tensor_ir: element-wise shape mismatch")
    (fun () -> ignore (B.add b x y))

let test_validate_rejects_forward_ref () =
  let p =
    {
      pname = "bad";
      instrs =
        [
          { id = 0; op = TTanh; args = [ 1 ]; shape = sh 1 1 };
          { id = 1; op = TInput "x"; args = []; shape = sh 1 1 };
        ];
      outputs = [ 0 ];
    }
  in
  Alcotest.(check bool) "rejected" true (validate p <> Ok ())

let test_bmm_shape () =
  let b = B.create "t" in
  let q = B.input b "q" (sh (8 * 16) 64) in
  let k = B.input b "k" (sh (8 * 16) 64) in
  let s = B.bmm b ~heads:8 q k in
  let p = B.finish b ~outputs:[ s ] in
  let last = List.nth p.instrs s in
  Alcotest.(check int) "rows = heads*seq" 128 last.shape.rows;
  Alcotest.(check int) "cols = seq" 16 last.shape.cols

(* -------------------------------------------------------------- patterns *)

let single_nl builder =
  let p = builder () in
  let r = Patterns.rewrite p in
  (r, nonlinears r)

let test_match_silu () =
  let _, nls =
    single_nl (fun () ->
        let b = B.create "silu" in
        let x = B.input b "x" (sh 4 16) in
        let s = B.sigmoid_ b x in
        let y = B.mul b x s in
        B.finish b ~outputs:[ y ])
  in
  Alcotest.(check bool) "silu found" true (nls = [ Registry.Silu ])

let test_match_gelu_tanh_both_orders () =
  List.iter
    (fun flip ->
      let _, nls =
        single_nl (fun () ->
            let b = B.create "gelu" in
            let x = B.input b "x" (sh 4 16) in
            let p3 = B.pow b 3 x in
            let c1 = B.scale b 0.044715 p3 in
            let s = if flip then B.add b c1 x else B.add b x c1 in
            let z = B.scale b (sqrt (2.0 /. Float.pi)) s in
            let t = B.tanh_ b z in
            let w = B.addc b 1.0 t in
            let hx = B.scale b 0.5 x in
            let y = if flip then B.mul b w hx else B.mul b hx w in
            B.finish b ~outputs:[ y ])
      in
      Alcotest.(check bool) "gelu found" true (nls = [ Registry.Gelu ]))
    [ false; true ]

let test_match_gelu_erf () =
  let _, nls =
    single_nl (fun () ->
        let b = B.create "gelu-erf" in
        let x = B.input b "x" (sh 4 16) in
        let z = B.scale b (1.0 /. sqrt 2.0) x in
        let e = B.erf_ b z in
        let w = B.addc b 1.0 e in
        let h = B.scale b 0.5 w in
        let y = B.mul b x h in
        B.finish b ~outputs:[ y ])
  in
  Alcotest.(check bool) "erf gelu found" true (nls = [ Registry.Gelu ])

let test_match_gelu_outer_half () =
  let _, nls =
    single_nl (fun () ->
        let b = B.create "gelu-outer" in
        let x = B.input b "x" (sh 4 16) in
        let p3 = B.pow b 3 x in
        let c1 = B.scale b 0.044715 p3 in
        let s = B.add b x c1 in
        let z = B.scale b (sqrt (2.0 /. Float.pi)) s in
        let t = B.tanh_ b z in
        let w = B.addc b 1.0 t in
        let m = B.mul b x w in
        let y = B.scale b 0.5 m in
        B.finish b ~outputs:[ y ])
  in
  Alcotest.(check bool) "outer-half gelu found" true (nls = [ Registry.Gelu ])

let test_match_softmax_layernorm_rmsnorm () =
  let mk_softmax () =
    let b = B.create "sm" in
    let x = B.input b "x" (sh 8 32) in
    let m = B.rowmax b x in
    let d = B.sub b x m in
    let e = B.exp_ b d in
    let s = B.rowsum b e in
    let y = B.div b e s in
    B.finish b ~outputs:[ y ]
  in
  let _, nls = single_nl mk_softmax in
  Alcotest.(check bool) "softmax" true (nls = [ Registry.Softmax ]);
  let mk_ln () =
    let b = B.create "ln" in
    let x = B.input b "x" (sh 8 32) in
    let mu = B.rowmean b x in
    let d = B.sub b x mu in
    let sq = B.mul b d d in
    let v = B.rowmean b sq in
    let ve = B.addc b 1e-5 v in
    let r = B.rsqrt b ve in
    let y = B.mul b d r in
    B.finish b ~outputs:[ y ]
  in
  let _, nls = single_nl mk_ln in
  Alcotest.(check bool) "layernorm" true (nls = [ Registry.Layernorm ]);
  let mk_rms () =
    let b = B.create "rms" in
    let x = B.input b "x" (sh 8 32) in
    let sq = B.mul b x x in
    let ms = B.rowmean b sq in
    let mse = B.addc b 1e-5 ms in
    let r = B.rsqrt b mse in
    let y = B.mul b x r in
    B.finish b ~outputs:[ y ]
  in
  let _, nls = single_nl mk_rms in
  Alcotest.(check bool) "rmsnorm" true (nls = [ Registry.Rmsnorm ])

let test_match_gated () =
  let _, nls =
    single_nl (fun () ->
        let b = B.create "swiglu" in
        let a = B.input b "a" (sh 4 16) in
        let v = B.input b "v" (sh 4 16) in
        let s = B.sigmoid_ b a in
        let g = B.mul b a s in
        let y = B.mul b g v in
        B.finish b ~outputs:[ y ])
  in
  Alcotest.(check bool) "swiglu found" true (nls = [ Registry.Swiglu ])

let test_no_fuse_when_value_observed () =
  (* the sigmoid output is also a program output: silu must NOT fuse *)
  let b = B.create "observed" in
  let x = B.input b "x" (sh 4 16) in
  let s = B.sigmoid_ b x in
  let y = B.mul b x s in
  let p = B.finish b ~outputs:[ y; s ] in
  let r = Patterns.rewrite p in
  Alcotest.(check bool) "not fused" true (nonlinears r = []);
  Alcotest.(check bool) "sigmoid survives" true
    (List.exists (fun (i : tinstr) -> i.op = TSigmoid) r.instrs)

let test_no_fuse_wrong_constant () =
  (* a GeLU-shaped chain with the wrong cubic coefficient is not GeLU *)
  let b = B.create "wrong" in
  let x = B.input b "x" (sh 4 16) in
  let p3 = B.pow b 3 x in
  let c1 = B.scale b 0.05 p3 in
  let s = B.add b x c1 in
  let z = B.scale b (sqrt (2.0 /. Float.pi)) s in
  let t = B.tanh_ b z in
  let w = B.addc b 1.0 t in
  let hx = B.scale b 0.5 x in
  let y = B.mul b hx w in
  let p = B.finish b ~outputs:[ y ] in
  let r = Patterns.rewrite p in
  Alcotest.(check bool) "not misrecognized" true
    (List.for_all (fun op -> op <> Registry.Gelu) (nonlinears r))

let test_unmatched_primitives_reporting () =
  let b = B.create "loose" in
  let x = B.input b "x" (sh 4 16) in
  let y = B.exp_ b x in
  let p = B.finish b ~outputs:[ y ] in
  Alcotest.(check (list string)) "reported" [ "exp" ]
    (Patterns.unmatched_primitives (Patterns.rewrite p))

(* --------------------------------------------------- blocks and offload *)

let test_all_blocks_fully_matched () =
  List.iter
    (fun m ->
      let p = Layer_builder.transformer_block m ~seq:64 in
      let r = Patterns.rewrite p in
      Alcotest.(check (list string)) (m.Mz.name ^ " no stray primitives") []
        (Patterns.unmatched_primitives r);
      let got = List.sort compare (nonlinears r) in
      let expect = Layer_builder.expected_nonlinears m in
      Alcotest.(check bool)
        (m.Mz.name ^ " recognized set")
        true (got = expect))
    Mz.all

let test_offload_no_fallbacks () =
  List.iter
    (fun m ->
      let plan =
        Offload.offload (Patterns.rewrite (Layer_builder.transformer_block m ~seq:64))
      in
      Alcotest.(check (list string)) (m.Mz.name ^ " no host fallbacks") []
        (Offload.fallbacks plan))
    Mz.all

let test_plan_matches_workload_inventory () =
  (* the compiled plan of one block must carry the same GEMM FLOPs and
     nonlinear element counts as the hand-built per-layer inventory *)
  List.iter
    (fun m ->
      let seq = 64 in
      let plan =
        Offload.offload (Patterns.rewrite (Layer_builder.transformer_block m ~seq))
      in
      let w = Workload.of_model m ~seq in
      let layers = float_of_int m.Mz.layers in
      let inventory_flops_per_layer =
        List.fold_left
          (fun acc (g : Workload.gemm) ->
            if g.Workload.g_tag = "lm_head" then acc
            else
              acc
              +. (2.0 *. float_of_int g.Workload.m *. float_of_int g.Workload.k
                  *. float_of_int g.Workload.n *. float_of_int g.Workload.count))
          0.0 w.Workload.gemms
        /. layers
      in
      let plan_flops = Offload.gemm_flops plan in
      Alcotest.(check bool)
        (m.Mz.name ^ " gemm flops agree")
        true
        (Float.abs (plan_flops -. inventory_flops_per_layer)
         /. inventory_flops_per_layer
        < 1e-9);
      let inventory_nl_per_layer =
        List.fold_left
          (fun acc (nl : Workload.nl) ->
            (* the final norm is the odd instance out *)
            let per_layer =
              if nl.Workload.nl_tag = "norm" then 2 else nl.Workload.nl_count / m.Mz.layers
            in
            acc + (nl.Workload.rows * nl.Workload.dim * per_layer))
          0 w.Workload.nls
      in
      Alcotest.(check int)
        (m.Mz.name ^ " nonlinear elements agree")
        inventory_nl_per_layer
        (Offload.nonlinear_elements plan))
    [ Mz.gpt2_xl; Mz.opt_6_7b; Mz.llama2_7b ]

let suite =
  [
    ( "tensor-ir",
      [
        Alcotest.test_case "builder shapes" `Quick test_builder_shapes;
        Alcotest.test_case "shape errors" `Quick test_builder_shape_errors;
        Alcotest.test_case "forward ref rejected" `Quick test_validate_rejects_forward_ref;
        Alcotest.test_case "bmm shape" `Quick test_bmm_shape;
      ] );
    ( "patterns",
      [
        Alcotest.test_case "silu" `Quick test_match_silu;
        Alcotest.test_case "gelu tanh (orders)" `Quick test_match_gelu_tanh_both_orders;
        Alcotest.test_case "gelu erf" `Quick test_match_gelu_erf;
        Alcotest.test_case "gelu outer half" `Quick test_match_gelu_outer_half;
        Alcotest.test_case "softmax/layernorm/rmsnorm" `Quick
          test_match_softmax_layernorm_rmsnorm;
        Alcotest.test_case "gated swiglu" `Quick test_match_gated;
        Alcotest.test_case "observed value blocks fusion" `Quick
          test_no_fuse_when_value_observed;
        Alcotest.test_case "wrong constant blocks match" `Quick test_no_fuse_wrong_constant;
        Alcotest.test_case "unmatched reporting" `Quick test_unmatched_primitives_reporting;
      ] );
    ( "offload",
      [
        Alcotest.test_case "blocks fully matched" `Quick test_all_blocks_fully_matched;
        Alcotest.test_case "no fallbacks" `Quick test_offload_no_fallbacks;
        Alcotest.test_case "plan matches inventory" `Quick test_plan_matches_workload_inventory;
      ] );
  ]
