module Tensor = Picachu_tensor.Tensor
module Approx = Picachu_numerics.Approx

let eps = 1e-5

let rowwise f t =
  let rows = Tensor.rows t and cols = Tensor.cols t in
  let out = Tensor.create [ rows; cols ] in
  for i = 0 to rows - 1 do
    let row = Array.init cols (fun j -> Tensor.get2 t i j) in
    Array.iteri (fun j v -> Tensor.set2 out i j v) (f row)
  done;
  out

let mean xs = Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let layernorm_row_exact xs =
  let mu = mean xs in
  let var = mean (Array.map (fun x -> (x -. mu) *. (x -. mu)) xs) in
  let inv = 1.0 /. sqrt (var +. eps) in
  Array.map (fun x -> (x -. mu) *. inv) xs

let layernorm_row (b : Approx.t) xs =
  let xs = b.format xs in
  let mu = mean xs in
  let var = mean (Array.map (fun x -> (x -. mu) *. (x -. mu)) xs) in
  let inv = b.isqrt (var +. eps) in
  b.format (Array.map (fun x -> (x -. mu) *. inv) xs)

let rmsnorm_row_exact xs =
  let ms = mean (Array.map (fun x -> x *. x) xs) in
  let inv = 1.0 /. sqrt (ms +. eps) in
  Array.map (fun x -> x *. inv) xs

let rmsnorm_row (b : Approx.t) xs =
  let xs = b.format xs in
  let ms = mean (Array.map (fun x -> x *. x) xs) in
  let inv = b.isqrt (ms +. eps) in
  b.format (Array.map (fun x -> x *. inv) xs)

let layernorm_exact t = rowwise layernorm_row_exact t
let layernorm b t = rowwise (layernorm_row b) t
let rmsnorm_exact t = rowwise rmsnorm_row_exact t
let rmsnorm b t = rowwise (rmsnorm_row b) t
