(** Rotary positional embedding (Table 1, last row).

    For position [m] and pair index [i] (1-based, [d/2] pairs), the rotation
    angle is [m * theta_i] with [theta_i = 10000^(-2(i-1)/d)].  Angles are
    range-reduced into [-pi/2, pi/2] (tracking the quadrant signs) before
    the backend's Taylor sin/cos run — the host-side preparation the CGRA
    kernel assumes. *)

module Tensor = Picachu_tensor.Tensor
module Approx = Picachu_numerics.Approx

val theta : dim:int -> int -> float
(** [theta ~dim i] for 1-based pair index [i]. *)

val reduce_angle : float -> float * float * float
(** [reduce_angle a] is [(t, sin_sign, cos_sign)] with [t] in
    [-pi/2, pi/2], [sin a = sin_sign * sin t] and [cos a = cos_sign * cos t]
    (for [t] as returned; signs are +-1). *)

val exact : pos:int -> Tensor.t -> Tensor.t
(** Rank-1 row of even length [d]; pairs are [(x_2i-1, x_2i)]. *)

val approx : Approx.t -> pos:int -> Tensor.t -> Tensor.t

val exact_rows : Tensor.t -> Tensor.t
(** Rank-2 [seq x d]; row index is the position. *)

val approx_rows : Approx.t -> Tensor.t -> Tensor.t
