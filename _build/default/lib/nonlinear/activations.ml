module Tensor = Picachu_tensor.Tensor
module Approx = Picachu_numerics.Approx
module Lut = Picachu_numerics.Lut

let elementwise f t =
  let out = f (Tensor.data (Tensor.copy t)) in
  Tensor.of_array (Tensor.shape t) out

let relu_exact t = Tensor.map (fun x -> Float.max 0.0 x) t
let relu (b : Approx.t) t = elementwise b.relu t
let gelu_exact t = Tensor.map (fun x -> x *. Lut.gauss_cdf_exact x) t
let gelu (b : Approx.t) t = elementwise b.gelu t
let silu_exact t = Tensor.map Approx.silu_exact t
let silu (b : Approx.t) t = elementwise b.silu t

let gated act ~gate v =
  if Tensor.shape gate <> Tensor.shape v then invalid_arg "Activations: gate shape";
  Tensor.mul (act gate) v

let geglu_exact ~gate v = gated gelu_exact ~gate v
let geglu b ~gate v = gated (gelu b) ~gate v
let swiglu_exact ~gate v = gated silu_exact ~gate v
let swiglu b ~gate v = gated (silu b) ~gate v
