lib/nonlinear/registry.mli: Picachu_ir
