lib/nonlinear/norms.ml: Array Picachu_numerics Picachu_tensor
