lib/nonlinear/norms.mli: Picachu_numerics Picachu_tensor
