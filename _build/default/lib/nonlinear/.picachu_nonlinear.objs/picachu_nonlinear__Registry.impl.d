lib/nonlinear/registry.ml: List Picachu_ir
