lib/nonlinear/softmax.mli: Picachu_numerics Picachu_tensor
