lib/nonlinear/softmax.ml: Array Float Picachu_numerics Picachu_tensor
