lib/nonlinear/rope.ml: Array Float Picachu_numerics Picachu_tensor
