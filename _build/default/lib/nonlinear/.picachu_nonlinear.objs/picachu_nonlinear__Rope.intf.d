lib/nonlinear/rope.mli: Picachu_numerics Picachu_tensor
