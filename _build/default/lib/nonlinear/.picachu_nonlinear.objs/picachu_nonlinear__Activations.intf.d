lib/nonlinear/activations.mli: Picachu_numerics Picachu_tensor
