lib/nonlinear/activations.ml: Float Picachu_numerics Picachu_tensor
