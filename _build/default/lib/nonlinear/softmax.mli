(** Row-wise numerically-stable softmax (Table 1, first row). *)

module Tensor = Picachu_tensor.Tensor
module Approx = Picachu_numerics.Approx

val exact : Tensor.t -> Tensor.t
(** Rank-2 input; softmax along the last axis in float64. *)

val approx : Approx.t -> Tensor.t -> Tensor.t
(** Same, through a backend's [exp_shifted] and [div] primitives — the
    three-loop structure the CGRA kernel executes. *)

val exact_row : float array -> float array
val approx_row : Approx.t -> float array -> float array
