(** Element-wise activation functions (Table 1: ReLU, GeLU, SiLU, and the
    gated pairs GeGLU / SwiGLU).

    The gated variants take the two already-projected streams ([xW + b] and
    [xV + c]); the projections themselves are GEMMs that run on the systolic
    array, so only the element-wise combination is a nonlinear operation. *)

module Tensor = Picachu_tensor.Tensor
module Approx = Picachu_numerics.Approx

val relu_exact : Tensor.t -> Tensor.t
val relu : Approx.t -> Tensor.t -> Tensor.t
val gelu_exact : Tensor.t -> Tensor.t
(** Phi form: [x * Phi(x)] in float64. *)

val gelu : Approx.t -> Tensor.t -> Tensor.t
val silu_exact : Tensor.t -> Tensor.t
val silu : Approx.t -> Tensor.t -> Tensor.t
val geglu_exact : gate:Tensor.t -> Tensor.t -> Tensor.t
(** [geglu ~gate v] = [gelu gate * v] element-wise; shapes must match. *)

val geglu : Approx.t -> gate:Tensor.t -> Tensor.t -> Tensor.t
val swiglu_exact : gate:Tensor.t -> Tensor.t -> Tensor.t
val swiglu : Approx.t -> gate:Tensor.t -> Tensor.t -> Tensor.t
