module Tensor = Picachu_tensor.Tensor
module Approx = Picachu_numerics.Approx

let theta ~dim i =
  if i < 1 || 2 * i > dim then invalid_arg "Rope.theta: pair index";
  10000.0 ** (-2.0 *. float_of_int (i - 1) /. float_of_int dim)

let reduce_angle a =
  let two_pi = 2.0 *. Float.pi in
  let r = Float.rem a two_pi in
  let r = if r > Float.pi then r -. two_pi else if r < -.Float.pi then r +. two_pi else r in
  if r > Float.pi /. 2.0 then (Float.pi -. r, 1.0, -1.0)
  else if r < -.(Float.pi /. 2.0) then (-.Float.pi -. r, 1.0, -1.0)
  else (r, 1.0, 1.0)

let rotate ~sin_fn ~cos_fn ~pos row =
  let d = Array.length row in
  if d mod 2 <> 0 then invalid_arg "Rope: odd dimension";
  let out = Array.make d 0.0 in
  for i = 1 to d / 2 do
    let angle = float_of_int pos *. theta ~dim:d i in
    let t, ss, cs = reduce_angle angle in
    let s = ss *. sin_fn t and c = cs *. cos_fn t in
    let x1 = row.((2 * i) - 2) and x2 = row.((2 * i) - 1) in
    out.((2 * i) - 2) <- (x1 *. c) -. (x2 *. s);
    out.((2 * i) - 1) <- (x1 *. s) +. (x2 *. c)
  done;
  out

let exact ~pos t =
  let row = Array.init (Tensor.numel t) (Tensor.get t) in
  Tensor.of_array (Tensor.shape t) (rotate ~sin_fn:sin ~cos_fn:cos ~pos row)

let approx (b : Approx.t) ~pos t =
  let row = b.format (Array.init (Tensor.numel t) (Tensor.get t)) in
  Tensor.of_array (Tensor.shape t)
    (b.format (rotate ~sin_fn:b.sin ~cos_fn:b.cos ~pos row))

let rowwise f t =
  let rows = Tensor.rows t and cols = Tensor.cols t in
  let out = Tensor.create [ rows; cols ] in
  for i = 0 to rows - 1 do
    let row = Tensor.row t i in
    Tensor.set_row out i (f ~pos:i row)
  done;
  out

let exact_rows t = rowwise (fun ~pos r -> exact ~pos r) t
let approx_rows b t = rowwise (fun ~pos r -> approx b ~pos r) t
