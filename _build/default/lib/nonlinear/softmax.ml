module Tensor = Picachu_tensor.Tensor
module Approx = Picachu_numerics.Approx

let exact_row xs =
  let m = Array.fold_left Float.max neg_infinity xs in
  let es = Array.map (fun x -> exp (x -. m)) xs in
  let s = Array.fold_left ( +. ) 0.0 es in
  Array.map (fun e -> e /. s) es

let approx_row (b : Approx.t) xs =
  let es = b.exp_shifted xs in
  let s = Array.fold_left ( +. ) 0.0 es in
  Array.map (fun e -> b.div e s) es

let rowwise f t =
  let rows = Tensor.rows t and cols = Tensor.cols t in
  let out = Tensor.create [ rows; cols ] in
  for i = 0 to rows - 1 do
    let row = Array.init cols (fun j -> Tensor.get2 t i j) in
    let r = f row in
    Array.iteri (fun j v -> Tensor.set2 out i j v) r
  done;
  out

let exact t = rowwise exact_row t
let approx b t = rowwise (approx_row b) t
