(** Row-wise normalization (Table 1: LayerNorm, RMSNorm).

    The reduction loops accumulate in the CGRA's widened registers (modelled
    exact); the approximation surface is the inverse square root — computed
    once per channel outside the hot loop (§4.1) — and the element-wise
    normalize pass, which runs through the backend's I/O format. *)

module Tensor = Picachu_tensor.Tensor
module Approx = Picachu_numerics.Approx

val eps : float
(** 1e-5, the conventional stabilizer. *)

val layernorm_exact : Tensor.t -> Tensor.t
(** Rank-2 input, normalized along the last axis (no affine parameters). *)

val layernorm : Approx.t -> Tensor.t -> Tensor.t
val rmsnorm_exact : Tensor.t -> Tensor.t
val rmsnorm : Approx.t -> Tensor.t -> Tensor.t
