(** Cycle-accurate execution of a mapped loop — the stand-in for the paper's
    RTL evaluation framework.

    The executor runs the software-pipelined schedule exactly as the
    configured fabric would: iteration [k] of node [u] issues at cycle
    [t(u) + k*II]; every operand read is dynamically verified against the
    producer's completion cycle plus the mesh routing distance, so a
    mapping bug (a dependence the scheduler missed, a mis-patched phi, a
    wrong offset after unrolling) surfaces as a {!Timing_violation} rather
    than silently producing the right value at the wrong time.

    Functional results must equal the sequential reference interpreter —
    asserted across the whole kernel library in the test suite. *)

module Kernel = Picachu_ir.Kernel
module Dfg = Picachu_dfg.Dfg

exception Timing_violation of string
exception Execution_error of string

type result = {
  out_arrays : (string * float array) list;
  out_scalars : (string * float) list;  (** exported accumulators *)
  cycles : int;  (** completion cycle of the last issued operation *)
}

val run_loop :
  Arch.t ->
  Kernel.loop ->
  Dfg.t ->
  Mapper.mapping ->
  arrays:(string * float array) list ->
  scalars:(string * float) list ->
  result
(** The trip count comes from the loop's trip scalar (like the reference
    interpreter). Requires [vector_width = 1] (the INT16 lane mode shares
    this schedule; its lanes are SIMD within a tile). *)
