lib/cgra/fu.ml: Picachu_ir
