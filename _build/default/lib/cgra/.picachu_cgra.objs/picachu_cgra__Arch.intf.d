lib/cgra/arch.mli: Format Fu Picachu_ir
