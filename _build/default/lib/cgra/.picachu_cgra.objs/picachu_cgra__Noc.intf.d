lib/cgra/noc.mli: Arch Mapper Picachu_dfg
