lib/cgra/rf.ml: Arch Array Hashtbl List Mapper Option Picachu_dfg Stdlib
