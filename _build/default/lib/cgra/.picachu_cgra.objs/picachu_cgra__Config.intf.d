lib/cgra/config.mli: Arch Format Mapper Picachu_dfg Picachu_ir
