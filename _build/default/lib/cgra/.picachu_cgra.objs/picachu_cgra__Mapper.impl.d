lib/cgra/mapper.ml: Arch Array Hashtbl List Option Picachu_dfg Picachu_ir Printf Stdlib
