lib/cgra/fu.mli: Picachu_ir
