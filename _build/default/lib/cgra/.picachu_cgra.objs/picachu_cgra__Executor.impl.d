lib/cgra/executor.ml: Arch Array Float Hashtbl List Mapper Picachu_dfg Picachu_ir Picachu_numerics Printf Stdlib
