lib/cgra/executor.mli: Arch Mapper Picachu_dfg Picachu_ir
