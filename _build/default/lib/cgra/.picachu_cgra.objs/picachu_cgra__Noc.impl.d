lib/cgra/noc.ml: Arch Array Hashtbl List Mapper Option Picachu_dfg
