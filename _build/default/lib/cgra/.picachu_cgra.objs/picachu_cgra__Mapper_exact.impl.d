lib/cgra/mapper_exact.ml: Arch Array List Mapper Picachu_dfg Stdlib
