lib/cgra/cost.mli: Arch Format Fu
