lib/cgra/rf.mli: Arch Mapper Picachu_dfg
