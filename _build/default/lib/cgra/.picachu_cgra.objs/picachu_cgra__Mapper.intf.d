lib/cgra/mapper.mli: Arch Picachu_dfg
