lib/cgra/mapper_exact.mli: Arch Picachu_dfg
