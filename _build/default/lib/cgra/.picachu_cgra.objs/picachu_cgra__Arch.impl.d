lib/cgra/arch.ml: Array Float Format Fu List Picachu_ir Printf
