lib/cgra/cost.ml: Arch Array Format Fu List
