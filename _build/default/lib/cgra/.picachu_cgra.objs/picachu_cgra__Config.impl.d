lib/cgra/config.ml: Arch Array Format List Mapper Picachu_dfg Picachu_ir
