(** Bounded-exhaustive II probe — the heuristic-quality audit.

    The paper attributes its sub-linear 4x8 scaling to "the compiler's
    mapping capability"; this module measures the same property here: for
    small DFGs it searches *all* placements (every node over every capable
    tile and every cycle within a bounded window) by backtracking, so a
    feasible schedule at the II lower bound is found if one exists within
    the window.  The search is budgeted; graphs that exhaust the budget
    report [Unknown]. *)

module Dfg = Picachu_dfg.Dfg

type verdict =
  | Feasible of int  (** a complete schedule exists at this II *)
  | Infeasible_up_to of int
      (** no schedule within the window for any II up to the given bound *)
  | Unknown  (** search budget exhausted before a conclusion *)

val probe :
  ?max_nodes:int ->
  ?max_ii:int ->
  ?window:int ->
  ?budget:int ->
  Arch.t ->
  Dfg.t ->
  verdict
(** Defaults: graphs above [max_nodes] = 14 return [Unknown] immediately;
    IIs are tried from the {!Mapper.min_ii} bound to [max_ii] = bound + 3;
    each node's issue cycle is searched within [window] = 3 II periods of
    its dependence-earliest cycle; [budget] = 2_000_000 backtracking
    steps. *)

val heuristic_gap : Arch.t -> Dfg.t -> int * int * verdict
(** [(lower_bound, achieved_ii, probe_verdict)] for one graph: the complete
    audit row. *)
