(** Register-file pressure audit.

    The mapper assumes values waiting for their consumers sit in adequately
    sized register files (DESIGN.md, "Modelling simplifications").  This
    module counts what "adequate" means for a given mapping, using standard
    modulo-variable-expansion accounting: a value produced at cycle
    [t + lat] that must remain available until its last consumer's
    departure occupies [ceil(lifetime / II)] rotating registers on its
    producer tile; a tile's pressure is the sum over the values it
    produces. *)

module Dfg = Picachu_dfg.Dfg

type report = {
  max_tile_registers : int;  (** worst per-tile register demand *)
  total_registers : int;  (** fabric-wide register demand *)
  longest_lifetime : int;  (** cycles the longest-lived value persists *)
}

val analyze : Arch.t -> Dfg.t -> Mapper.mapping -> report

val fits : report -> registers_per_tile:int -> bool
