module Op = Picachu_ir.Op

type tile_kind = BaT | BrT | CoT | UniT

let kind_name = function BaT -> "BaT" | BrT -> "BrT" | CoT -> "CoT" | UniT -> "UniT"

let rec supports_hetero kind (op : Op.t) =
  match (kind, op) with
  | UniT, _ ->
      supports_hetero BaT op || supports_hetero BrT op || supports_hetero CoT op
  (* memory ops can issue from any tile that has a port; capability-wise all
     kinds include a load/store unit *)
  | _, (Op.Load _ | Op.Store _) -> true
  | BaT, (Op.Bin (Add | Sub | Max | Min) | Op.Un (Neg | Abs) | Op.Cmp _ | Op.Select)
    -> true
  | BaT, Op.Fused (Add_add | Cmp_sel) -> true
  | BrT, (Op.Phi | Op.Br | Op.Cmp _ | Op.Select | Op.Bin (Add | Sub | Max | Min)) -> true
  | BrT, Op.Fused (Phi_add | Phi_add_add | Cmp_br | Cmp_sel) -> true
  | ( CoT,
      ( Op.Bin (Mul | Div | Add | Sub)
      | Op.Un Floor (* exponent manipulation lives with the FP2FX family *)
      | Op.Fp2fx_int | Op.Fp2fx_frac | Op.Shift_exp | Op.Lut _ ) ) -> true
  | CoT, Op.Fused (Mul_add | Mul_add_add) -> true
  | _, (Op.Const _ | Op.Input _) -> true (* config registers, free *)
  | _, _ -> false

let supports_baseline (op : Op.t) =
  match op with
  | Op.Fused _ | Op.Lut _ | Op.Fp2fx_int | Op.Fp2fx_frac -> false
  | _ -> true

let latency_hetero (op : Op.t) =
  match op with Op.Bin Op.Div -> 4 | Op.Fused _ -> 1 | _ -> 1

let latency_baseline (op : Op.t) =
  match op with
  | Op.Bin Op.Div -> 4
  | Op.Shift_exp -> 3 (* exponent-field assembly on the integer pipe *)
  | _ -> 1
