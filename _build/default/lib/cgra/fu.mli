(** Functional-unit capability sets of the three tile kinds (paper §4.2.1).

    - {b BaT} (Basic Tile): add/sub/min/max, compares, selects, and the fused
      [add+add] / [cmp+select] patterns.
    - {b BrT} (Branch-optimized Tile): control — phi, branch, and the fused
      [phi+add(+add)] / [cmp+br] patterns — plus basic adds so induction
      arithmetic does not hop tiles.
    - {b CoT} (Compute Tile): multiplier, pipelined divider, the FP2FX
      conversion module, the exponent-shift unit, the LUT, and the fused
      [mul+add(+add)] Horner patterns.

    The homogeneous baseline CGRA of §5.3.2 supports every *primitive* op on
    every tile but has no fused patterns, no LUT, no FP2FX, and executes the
    exponent shift by a 3-cycle integer-pipe emulation (field assembly). *)

module Op = Picachu_ir.Op

type tile_kind = BaT | BrT | CoT | UniT
(** [UniT] is not part of the paper's design: a hypothetical universal tile
    carrying every FU, used by the heterogeneity ablation to quantify what
    the BaT/BrT/CoT split saves. *)

val kind_name : tile_kind -> string

val supports_hetero : tile_kind -> Op.t -> bool
(** PICACHU tile capability. Memory ops are *not* decided here — port
    placement is an {!Arch} property. *)

val supports_baseline : Op.t -> bool
(** Baseline homogeneous tile capability (false for fused/LUT/FP2FX ops). *)

val latency_hetero : Op.t -> int
(** All 1 cycle except the pipelined divider (4). Fused ops are 1 — the
    point of the specialized FUs. *)

val latency_baseline : Op.t -> int
(** As hetero, plus [Shift_exp] = 3 (no exponent-manipulation unit). *)
