(** Per-tile configuration generation (paper §4.3: "Upon completing the
    mapping, we obtain the II and control signals for each tile").

    A configuration assigns to every (tile, cycle mod II) slot either
    nothing or the operation issued there, with each operand classified by
    where the tile's input mux fetches it: a value routed from another
    tile's output register, a configuration-register immediate, a scalar
    live-in register, or a value produced inside the same fused FU this
    cycle.  The configuration-memory footprint (number of programmed words)
    is the quantity a CGRA's config SRAM must hold. *)

module Op = Picachu_ir.Op
module Instr = Picachu_ir.Instr
module Kernel = Picachu_ir.Kernel
module Dfg = Picachu_dfg.Dfg

type operand_src =
  | Routed of { producer_node : int; hops : int }
  | Immediate of float
  | Scalar_reg of string
  | Fused_internal  (** produced by an earlier member of the same fused FU *)

type step = { instr : Instr.t; sources : operand_src list }

type slot = {
  node : int;  (** DFG node id *)
  opcode : Op.t;
  steps : step list;  (** member instructions in program order *)
}

type t = {
  ii : int;
  tiles : slot option array array;  (** tiles x (cycle mod II) *)
  label : string;
}

val generate : Arch.t -> Kernel.loop -> Dfg.t -> Mapper.mapping -> t
(** Raises [Invalid_argument] if the mapping does not cover the DFG. *)

val words : t -> int
(** Programmed slots — the configuration-memory footprint. *)

val routed_operands : t -> int
(** Operands fetched over the mesh (interconnect pressure). *)

val pp : Format.formatter -> t -> unit
