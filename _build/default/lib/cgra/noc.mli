(** Mesh-interconnect traffic analysis.

    The mapper models routing as distance latency without reserving
    individual link slots (DESIGN.md, "Modelling simplifications"); this
    module audits that abstraction after the fact: it walks every
    dependence's XY route through a mapping, charges each directed link at
    the cycle (mod II) the value crosses it, and reports the worst
    per-link-per-slot contention.  A result within the fabric's physical
    link capacity means the simplification was safe for that kernel. *)

module Dfg = Picachu_dfg.Dfg

type report = {
  total_hops : int;  (** link traversals per II window *)
  links_used : int;  (** distinct directed links carrying traffic *)
  max_link_load : int;  (** worst (link, cycle mod II) occupancy *)
  mean_link_load : float;  (** average over used (link, slot) pairs *)
}

val analyze : Arch.t -> Dfg.t -> Mapper.mapping -> report

val within_capacity : report -> lanes_per_link:int -> bool
(** Does the worst contention fit the physical link width? *)
