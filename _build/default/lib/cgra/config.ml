module Op = Picachu_ir.Op
module Instr = Picachu_ir.Instr
module Kernel = Picachu_ir.Kernel
module Dfg = Picachu_dfg.Dfg

type operand_src =
  | Routed of { producer_node : int; hops : int }
  | Immediate of float
  | Scalar_reg of string
  | Fused_internal

type step = { instr : Instr.t; sources : operand_src list }
type slot = { node : int; opcode : Op.t; steps : step list }
type t = { ii : int; tiles : slot option array array; label : string }

let generate arch (loop : Kernel.loop) (g : Dfg.t) (m : Mapper.mapping) =
  if Array.length m.Mapper.schedule <> Dfg.node_count g then
    invalid_arg "Config.generate: mapping does not cover the DFG";
  let body = Array.of_list loop.Kernel.body in
  (* instruction id -> owning DFG node *)
  let owner = Array.make (Array.length body) (-1) in
  Array.iter
    (fun (node : Dfg.node) ->
      List.iter (fun i -> owner.(i) <- node.Dfg.id) node.Dfg.origins)
    g.Dfg.nodes;
  let source ~of_node arg =
    match body.(arg).Instr.op with
    | Op.Const v -> Immediate v
    | Op.Input s -> Scalar_reg s
    | _ ->
        let producer = owner.(arg) in
        if producer = of_node then Fused_internal
        else
          Routed
            {
              producer_node = producer;
              hops =
                Arch.distance arch m.Mapper.schedule.(producer).Mapper.tile
                  m.Mapper.schedule.(of_node).Mapper.tile;
            }
  in
  let tiles = Array.init (Arch.tiles arch) (fun _ -> Array.make m.Mapper.ii None) in
  Array.iter
    (fun (node : Dfg.node) ->
      let p = m.Mapper.schedule.(node.Dfg.id) in
      let steps =
        List.map
          (fun i ->
            let instr = body.(i) in
            { instr; sources = List.map (source ~of_node:node.Dfg.id) instr.Instr.args })
          node.Dfg.origins
      in
      tiles.(p.Mapper.tile).(p.Mapper.time mod m.Mapper.ii) <-
        Some { node = node.Dfg.id; opcode = node.Dfg.op; steps })
    g.Dfg.nodes;
  { ii = m.Mapper.ii; tiles; label = g.Dfg.label }

let words t =
  Array.fold_left
    (fun acc prog ->
      Array.fold_left (fun acc s -> if s = None then acc else acc + 1) acc prog)
    0 t.tiles

let routed_operands t =
  Array.fold_left
    (fun acc prog ->
      Array.fold_left
        (fun acc s ->
          match s with
          | None -> acc
          | Some slot ->
              acc
              + List.fold_left
                  (fun acc st ->
                    acc
                    + List.length
                        (List.filter (function Routed _ -> true | _ -> false) st.sources))
                  0 slot.steps)
        acc prog)
    0 t.tiles

let pp_source fmt = function
  | Routed { producer_node; hops } -> Format.fprintf fmt "n%d(+%dhop)" producer_node hops
  | Immediate v -> Format.fprintf fmt "#%g" v
  | Scalar_reg s -> Format.fprintf fmt "$%s" s
  | Fused_internal -> Format.fprintf fmt "fwd"

let pp fmt t =
  Format.fprintf fmt "config %s: II=%d, %d words, %d routed operands@." t.label t.ii
    (words t) (routed_operands t);
  Array.iteri
    (fun tile prog ->
      Array.iteri
        (fun c slot ->
          match slot with
          | None -> ()
          | Some s ->
              Format.fprintf fmt "  tile %2d @%d: %-12s <-" tile c (Op.name s.opcode);
              List.iter
                (fun st -> List.iter (Format.fprintf fmt " %a" pp_source) st.sources)
                s.steps;
              Format.fprintf fmt "@.")
        prog)
    t.tiles
