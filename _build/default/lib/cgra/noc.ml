module Dfg = Picachu_dfg.Dfg

type report = {
  total_hops : int;
  links_used : int;
  max_link_load : int;
  mean_link_load : float;
}

let analyze arch (g : Dfg.t) (m : Mapper.mapping) =
  (* (from_tile, to_tile, cycle mod II) -> load *)
  let loads = Hashtbl.create 64 in
  let bump key =
    Hashtbl.replace loads key (1 + Option.value ~default:0 (Hashtbl.find_opt loads key))
  in
  let total = ref 0 in
  List.iter
    (fun (e : Dfg.edge) ->
      if e.Dfg.src <> e.Dfg.dst then begin
        let ps = m.Mapper.schedule.(e.Dfg.src) in
        let pd = m.Mapper.schedule.(e.Dfg.dst) in
        let lat = Arch.latency arch g.Dfg.nodes.(e.Dfg.src).Dfg.op in
        let depart = ps.Mapper.time + lat in
        (* the full tile sequence: source, intermediates, destination *)
        let path = (ps.Mapper.tile :: Arch.xy_path arch ps.Mapper.tile pd.Mapper.tile)
                   @ [ pd.Mapper.tile ] in
        let rec hops k = function
          | a :: (b :: _ as rest) when a <> b ->
              incr total;
              bump (a, b, (depart + k) mod m.Mapper.ii);
              hops (k + 1) rest
          | _ :: rest -> hops k rest
          | [] -> ()
        in
        hops 0 path
      end)
    g.Dfg.edges;
  let links = Hashtbl.create 16 in
  let max_load = ref 0 and sum = ref 0 and slots = ref 0 in
  Hashtbl.iter
    (fun (a, b, _) load ->
      Hashtbl.replace links (a, b) ();
      if load > !max_load then max_load := load;
      sum := !sum + load;
      incr slots)
    loads;
  {
    total_hops = !total;
    links_used = Hashtbl.length links;
    max_link_load = !max_load;
    mean_link_load =
      (if !slots = 0 then 0.0 else float_of_int !sum /. float_of_int !slots);
  }

let within_capacity r ~lanes_per_link = r.max_link_load <= lanes_per_link
