module Dfg = Picachu_dfg.Dfg

type report = {
  max_tile_registers : int;
  total_registers : int;
  longest_lifetime : int;
}

let analyze arch (g : Dfg.t) (m : Mapper.mapping) =
  let n = Dfg.node_count g in
  let lat u = Arch.latency arch g.Dfg.nodes.(u).Dfg.op in
  (* per producer: the latest departure among its consumers (a value leaves
     the tile [hops] cycles before the consumer issues; loop-carried uses
     shift one iteration later) *)
  let per_tile = Hashtbl.create 16 in
  let total = ref 0 and longest = ref 0 in
  for u = 0 to n - 1 do
    let pu = m.Mapper.schedule.(u) in
    let ready = pu.Mapper.time + lat u in
    let last_departure =
      List.fold_left
        (fun acc (e : Dfg.edge) ->
          if e.Dfg.src = u then
            let pv = m.Mapper.schedule.(e.Dfg.dst) in
            let hops = Arch.distance arch pu.Mapper.tile pv.Mapper.tile in
            let departure = pv.Mapper.time + (e.Dfg.distance * m.Mapper.ii) - hops in
            Stdlib.max acc departure
          else acc)
        ready g.Dfg.edges
    in
    let lifetime = last_departure - ready + 1 in
    if lifetime > !longest then longest := lifetime;
    let regs = Stdlib.max 1 ((lifetime + m.Mapper.ii - 1) / m.Mapper.ii) in
    total := !total + regs;
    Hashtbl.replace per_tile pu.Mapper.tile
      (regs + Option.value ~default:0 (Hashtbl.find_opt per_tile pu.Mapper.tile))
  done;
  let max_tile = Hashtbl.fold (fun _ v acc -> Stdlib.max v acc) per_tile 0 in
  { max_tile_registers = max_tile; total_registers = !total; longest_lifetime = !longest }

let fits r ~registers_per_tile = r.max_tile_registers <= registers_per_tile
