(** The offload pass (paper §4.3, "Offloading"): split a pattern-matched
    tensor program between the systolic array (matmuls) and the CGRA
    (recognized nonlinear operations).

    Element-wise glue (residual adds, reshapes, transposes) rides along for
    free — residual adds execute on the systolic array's accumulators,
    layout ops are address arithmetic.  Nonlinear *primitives* that escaped
    the pattern matcher are flagged: on real hardware they would fall to the
    host CPU, the paper's slow path. *)

module Registry = Picachu_nonlinear.Registry

type stage =
  | Gemm of { m : int; k : int; n : int; count : int; tag : string }
  | Nonlinear of { op : Registry.opkind; rows : int; dim : int; tag : string }
  | Fallback of string
      (** an unmatched nonlinear primitive — host CPU territory *)

type plan = stage list

val offload : Tensor_ir.program -> plan
(** Stages in program order. *)

val gemm_flops : plan -> float
val nonlinear_elements : plan -> int
val fallbacks : plan -> string list
val pp : Format.formatter -> plan -> unit
