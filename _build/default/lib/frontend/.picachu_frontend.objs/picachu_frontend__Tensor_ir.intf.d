lib/frontend/tensor_ir.mli: Format Picachu_nonlinear
