lib/frontend/offload.mli: Format Picachu_nonlinear Tensor_ir
