lib/frontend/layer_builder.ml: Float List Picachu_llm Picachu_nonlinear Tensor_ir
