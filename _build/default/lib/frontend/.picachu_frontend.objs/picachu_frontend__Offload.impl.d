lib/frontend/offload.ml: Array Format List Picachu_nonlinear Printf Tensor_ir
