lib/frontend/tensor_ir.ml: Array Format Hashtbl List Picachu_nonlinear Printf
