lib/frontend/layer_builder.mli: Picachu_llm Picachu_nonlinear Tensor_ir
