lib/frontend/patterns.ml: Array Float List Option Picachu_nonlinear Tensor_ir
