lib/frontend/patterns.mli: Tensor_ir
