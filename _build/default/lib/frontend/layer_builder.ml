open Tensor_ir
module Mz = Picachu_llm.Model_zoo
module Registry = Picachu_nonlinear.Registry
module B = Tensor_ir.Build

let eps = 1e-5

(* The primitive spellings a framework lowers to. *)
let emit_layernorm b x =
  let mu = B.rowmean b x in
  let d = B.sub b x mu in
  let sq = B.mul b d d in
  let v = B.rowmean b sq in
  let ve = B.addc b eps v in
  let r = B.rsqrt b ve in
  B.mul b d r

let emit_rmsnorm b x =
  let sq = B.mul b x x in
  let ms = B.rowmean b sq in
  let mse = B.addc b eps ms in
  let r = B.rsqrt b mse in
  B.mul b x r

let emit_norm (m : Mz.t) b x =
  match m.Mz.norm with
  | Mz.Layernorm_norm -> emit_layernorm b x
  | Mz.Rmsnorm_norm -> emit_rmsnorm b x

let emit_gelu_tanh b x =
  let p3 = B.pow b 3 x in
  let c1 = B.scale b 0.044715 p3 in
  let s = B.add b x c1 in
  let z = B.scale b (sqrt (2.0 /. Float.pi)) s in
  let t = B.tanh_ b z in
  let w = B.addc b 1.0 t in
  let hx = B.scale b 0.5 x in
  B.mul b hx w

let emit_silu b x =
  let s = B.sigmoid_ b x in
  B.mul b x s

let emit_softmax b x =
  let m = B.rowmax b x in
  let d = B.sub b x m in
  let e = B.exp_ b d in
  let s = B.rowsum b e in
  B.div b e s

let transformer_block (m : Mz.t) ~seq =
  let d = m.Mz.d_model in
  let dh = Mz.d_head m in
  let heads = m.Mz.heads in
  let b = B.create (m.Mz.name ^ "-block") in
  let kv = m.Mz.kv_heads in
  let x = B.input b "x" { rows = seq; cols = d } in
  (* attention; K/V projections carry the (possibly grouped) KV width *)
  let h = emit_norm m b x in
  let proj name cols = B.matmul b h (B.weight b name { rows = d; cols }) in
  let q = proj "wq" d in
  let k = proj "wk" (kv * dh) in
  let v = proj "wv" (kv * dh) in
  let rot t = if m.Mz.pos = Mz.Rope_pos then B.rotate b t else t in
  let q = rot q and k = rot k in
  (* fold heads into the batch: [seq x d] -> [heads*seq x dh]; GQA KV heads
     are broadcast up to the query head count *)
  let qh = B.reshape b { rows = heads * seq; cols = dh } q in
  let expand t =
    let folded = B.reshape b { rows = kv * seq; cols = dh } t in
    if kv = heads then folded else B.broadcast b (heads / kv) folded
  in
  let kh = expand k and vh = expand v in
  let scores = B.bmm b ~heads qh kh in
  let scaled = B.scale b (1.0 /. sqrt (float_of_int dh)) scores in
  let probs = emit_softmax b scaled in
  (* per-head transpose of v, expressed at shape level *)
  let vt = B.reshape b { rows = heads * dh; cols = seq } vh in
  let ctx = B.bmm b ~heads probs vt in
  let ctx = B.reshape b { rows = seq; cols = d } ctx in
  let out = B.matmul b ctx (B.weight b "wo" { rows = d; cols = d }) in
  let x1 = B.add b x out in
  (* ffn *)
  let h2 = emit_norm m b x1 in
  let up name cols = B.matmul b h2 (B.weight b name { rows = d; cols }) in
  let act =
    match m.Mz.ffn with
    | Mz.Relu_ffn -> B.maximum0 b (up "w_up" m.Mz.d_ffn)
    | Mz.Gelu_ffn -> emit_gelu_tanh b (up "w_up" m.Mz.d_ffn)
    | Mz.Swiglu_ffn ->
        let gate = emit_silu b (up "w_gate" m.Mz.d_ffn) in
        B.mul b gate (up "w_up" m.Mz.d_ffn)
    | Mz.Geglu_ffn ->
        let gate = emit_gelu_tanh b (up "w_gate" m.Mz.d_ffn) in
        B.mul b gate (up "w_up" m.Mz.d_ffn)
  in
  let down =
    B.matmul b act (B.weight b "w_down" { rows = m.Mz.d_ffn; cols = d })
  in
  let x2 = B.add b x1 down in
  B.finish b ~outputs:[ x2 ]

let expected_nonlinears (m : Mz.t) =
  let base = [ Mz.norm_op m; Mz.norm_op m; Registry.Softmax; Mz.activation_op m ] in
  let with_rope =
    if m.Mz.pos = Mz.Rope_pos then Registry.Rope :: Registry.Rope :: base else base
  in
  List.sort compare with_rope
