module Registry = Picachu_nonlinear.Registry

type shape = { rows : int; cols : int }

type top =
  | TInput of string
  | TWeight of string
  | TMatmul
  | TAdd
  | TSub
  | TMul
  | TDiv
  | TScale of float
  | TAddc of float
  | TPow of int
  | TTanh
  | TErf
  | TExp
  | TSigmoid
  | TMaximum0
  | TRsqrt
  | TRowmax
  | TRowsum
  | TRowmean
  | TRotate
  | TTranspose
  | TBmm of int
  | TReshape of shape
  | TBroadcast of int
  | TNonlinear of Registry.opkind

type tinstr = { id : int; op : top; args : int list; shape : shape }
type program = { pname : string; instrs : tinstr list; outputs : int list }

let arity = function
  | TInput _ | TWeight _ -> 0
  | TMatmul | TAdd | TSub | TMul | TDiv -> 2
  | TBmm _ -> 2
  | TScale _ | TAddc _ | TPow _ | TTanh | TErf | TExp | TSigmoid | TMaximum0
  | TRsqrt | TRowmax | TRowsum | TRowmean | TRotate | TTranspose | TReshape _
  | TBroadcast _ -> 1
  | TNonlinear op -> (
      match op with Registry.Geglu | Registry.Swiglu -> 2 | _ -> 1)

let validate p =
  let err fmt = Printf.ksprintf (fun s -> Error (p.pname ^ ": " ^ s)) fmt in
  let n = List.length p.instrs in
  let rec check pos = function
    | [] ->
        if List.for_all (fun o -> o >= 0 && o < n) p.outputs then Ok ()
        else err "output out of range"
    | i :: rest ->
        if i.id <> pos then err "ids must be dense (instr %d has id %d)" pos i.id
        else if List.length i.args <> arity i.op then err "instr %%%d: arity" i.id
        else if List.exists (fun a -> a < 0 || a >= pos) i.args then
          err "instr %%%d: forward or invalid argument" i.id
        else check (pos + 1) rest
  in
  check 0 p.instrs

let uses p =
  let u = Array.make (List.length p.instrs) 0 in
  List.iter (fun i -> List.iter (fun a -> u.(a) <- u.(a) + 1) i.args) p.instrs;
  List.iter (fun o -> u.(o) <- u.(o) + 1) p.outputs;
  u

let op_name = function
  | TInput s -> "input." ^ s
  | TWeight s -> "weight." ^ s
  | TMatmul -> "matmul"
  | TAdd -> "add"
  | TSub -> "sub"
  | TMul -> "mul"
  | TDiv -> "div"
  | TScale v -> Printf.sprintf "scale[%g]" v
  | TAddc v -> Printf.sprintf "addc[%g]" v
  | TPow k -> Printf.sprintf "pow[%d]" k
  | TTanh -> "tanh"
  | TErf -> "erf"
  | TExp -> "exp"
  | TSigmoid -> "sigmoid"
  | TMaximum0 -> "max0"
  | TRsqrt -> "rsqrt"
  | TRowmax -> "rowmax"
  | TRowsum -> "rowsum"
  | TRowmean -> "rowmean"
  | TRotate -> "rotate"
  | TTranspose -> "transpose"
  | TBmm b -> Printf.sprintf "bmm[%d]" b
  | TReshape s -> Printf.sprintf "reshape[%dx%d]" s.rows s.cols
  | TBroadcast f -> Printf.sprintf "broadcast[%d]" f
  | TNonlinear op -> "nonlinear." ^ Registry.name op

let pp fmt p =
  Format.fprintf fmt "program %s@." p.pname;
  List.iter
    (fun i ->
      Format.fprintf fmt "  %%%d : %dx%d = %s" i.id i.shape.rows i.shape.cols
        (op_name i.op);
      List.iter (Format.fprintf fmt " %%%d") i.args;
      Format.fprintf fmt "@.")
    p.instrs;
  Format.fprintf fmt "  outputs:";
  List.iter (Format.fprintf fmt " %%%d") p.outputs;
  Format.fprintf fmt "@."

module Build = struct
  type b = {
    name : string;
    mutable rev : tinstr list;
    mutable next : int;
    shapes : (int, shape) Hashtbl.t;
  }

  type t = b

  let create name = { name; rev = []; next = 0; shapes = Hashtbl.create 32 }

  let emit b op args shape =
    let id = b.next in
    b.next <- id + 1;
    b.rev <- { id; op; args; shape } :: b.rev;
    Hashtbl.add b.shapes id shape;
    id

  let shape_of b a =
    match Hashtbl.find_opt b.shapes a with
    | Some s -> s
    | None -> invalid_arg "Tensor_ir: unknown value id"
  let input b name shape = emit b (TInput name) [] shape
  let weight b name shape = emit b (TWeight name) [] shape

  let matmul b x w =
    let sx = shape_of b x and sw = shape_of b w in
    if sx.cols <> sw.rows then invalid_arg "Tensor_ir.matmul: inner dims";
    emit b TMatmul [ x; w ] { rows = sx.rows; cols = sw.cols }

  let bin op b x y =
    let sx = shape_of b x and sy = shape_of b y in
    if sx <> sy then invalid_arg "Tensor_ir: element-wise shape mismatch";
    emit b op [ x; y ] sx

  let add b = bin TAdd b
  let sub b = bin TSub b
  let mul b = bin TMul b
  let div b = bin TDiv b
  let un op b x = emit b op [ x ] (shape_of b x)
  let scale b v = un (TScale v) b
  let addc b v = un (TAddc v) b
  let pow b k = un (TPow k) b
  let tanh_ b = un TTanh b
  let erf_ b = un TErf b
  let exp_ b = un TExp b
  let sigmoid_ b = un TSigmoid b
  let maximum0 b = un TMaximum0 b
  let rsqrt b = un TRsqrt b
  let rowmax b = un TRowmax b
  let rowsum b = un TRowsum b
  let rowmean b = un TRowmean b
  let rotate b = un TRotate b

  let transpose b x =
    let s = shape_of b x in
    emit b TTranspose [ x ] { rows = s.cols; cols = s.rows }

  let bmm b ~heads x y =
    let sx = shape_of b x and sy = shape_of b y in
    if sx.rows mod heads <> 0 || sy.rows mod heads <> 0 || sx.cols <> sy.cols then
      invalid_arg "Tensor_ir.bmm: shapes";
    emit b (TBmm heads) [ x; y ] { rows = sx.rows; cols = sy.rows / heads }

  let broadcast b factor x =
    if factor < 1 then invalid_arg "Tensor_ir.broadcast: factor";
    let s = shape_of b x in
    emit b (TBroadcast factor) [ x ] { rows = s.rows * factor; cols = s.cols }

  let reshape b s x =
    let sx = shape_of b x in
    if sx.rows * sx.cols <> s.rows * s.cols then invalid_arg "Tensor_ir.reshape: size";
    emit b (TReshape s) [ x ] s

  let finish b ~outputs =
    let p = { pname = b.name; instrs = List.rev b.rev; outputs } in
    match validate p with Ok () -> p | Error e -> invalid_arg e
end
