open Tensor_ir
module Registry = Picachu_nonlinear.Registry

(* A match: the nonlinear op, its tensor inputs, the instruction ids the
   pattern consumes (root excluded), rooted at [root]. *)
type found = { op : Registry.opkind; inputs : int list; interior : int list }

let approx a b = Float.abs (a -. b) < 1e-4
let is_eps v = v > 0.0 && v <= 1e-3

(* Try both operand orders of a commutative node. *)
let comm args f =
  match args with
  | [ a; b ] -> ( match f a b with Some r -> Some r | None -> f b a)
  | _ -> None

let matchers (ins : tinstr array) =
  let get i = ins.(i) in
  let op i = (get i).op in
  (* silu root: mul x (sigmoid x) *)
  let match_silu (root : tinstr) =
    match root.op with
    | TMul ->
        comm root.args (fun x s ->
            match op s with
            | TSigmoid when (get s).args = [ x ] ->
                Some { op = Registry.Silu; inputs = [ x ]; interior = [ s ] }
            | _ -> None)
    | _ -> None
  in
  (* gelu tanh form; the half-scale may wrap the product or one factor *)
  let match_gelu_tanh_core x w =
    (* w = 1 + tanh(c (x + 0.044715 x^3)) *)
    match op w with
    | TAddc one when approx one 1.0 -> (
        let t = List.hd (get w).args in
        match op t with
        | TTanh -> (
            let z = List.hd (get t).args in
            match op z with
            | TScale c when approx c (sqrt (2.0 /. Float.pi)) -> (
                let s = List.hd (get z).args in
                match op s with
                | TAdd ->
                    comm (get s).args (fun x' c1 ->
                        if x' <> x then None
                        else
                          match op c1 with
                          | TScale k when approx k 0.044715 -> (
                              let p3 = List.hd (get c1).args in
                              match op p3 with
                              | TPow 3 when (get p3).args = [ x ] ->
                                  Some [ w; t; z; s; c1; p3 ]
                              | _ -> None)
                          | _ -> None)
                | _ -> None)
            | _ -> None)
        | _ -> None)
    | _ -> None
  in
  let match_gelu_erf_core x w =
    (* w = 0.5 * (1 + erf(x / sqrt 2)) or the half is outside *)
    let inner w =
      match op w with
      | TAddc one when approx one 1.0 -> (
          let e = List.hd (get w).args in
          match op e with
          | TErf -> (
              let z = List.hd (get e).args in
              match op z with
              | TScale c when approx c (1.0 /. sqrt 2.0) && (get z).args = [ x ] ->
                  Some [ w; e; z ]
              | _ -> None)
          | _ -> None)
      | _ -> None
    in
    match op w with
    | TScale h when approx h 0.5 -> (
        let w' = List.hd (get w).args in
        match inner w' with Some ids -> Some (w :: ids) | None -> None)
    | _ -> inner w
  in
  let match_gelu (root : tinstr) =
    match root.op with
    | TMul ->
        comm root.args (fun a b ->
            (* variant 1: (0.5 x) * w_tanh *)
            let v1 =
              match op a with
              | TScale h when approx h 0.5 ->
                  let x = List.hd (get a).args in
                  Option.map
                    (fun ids ->
                      { op = Registry.Gelu; inputs = [ x ]; interior = a :: ids })
                    (match_gelu_tanh_core x b)
              | _ -> None
            in
            if v1 <> None then v1
            else
              (* variant 2: x * (0.5 (1 + erf(x/sqrt2))) *)
              Option.map
                (fun ids -> { op = Registry.Gelu; inputs = [ a ]; interior = ids })
                (match_gelu_erf_core a b))
    | TScale h when approx h 0.5 -> (
        (* variant 3: 0.5 * (x * w_tanh) *)
        let m = List.hd root.args in
        match op m with
        | TMul ->
            comm (get m).args (fun x w ->
                Option.map
                  (fun ids ->
                    { op = Registry.Gelu; inputs = [ x ]; interior = m :: ids })
                  (match_gelu_tanh_core x w))
        | _ -> None)
    | _ -> None
  in
  let match_softmax (root : tinstr) =
    match (root.op, root.args) with
    | TDiv, [ e; s ] -> (
        match (op e, op s) with
        | TExp, TRowsum when (get s).args = [ e ] -> (
            let d = List.hd (get e).args in
            match (op d, (get d).args) with
            | TSub, [ x; m ] when op m = TRowmax && (get m).args = [ x ] ->
                Some { op = Registry.Softmax; inputs = [ x ]; interior = [ e; s; d; m ] }
            | _ -> None)
        | _ -> None)
    | _ -> None
  in
  let match_norms (root : tinstr) =
    match root.op with
    | TMul ->
        comm root.args (fun d r ->
            match op r with
            | TRsqrt -> (
                let ve = List.hd (get r).args in
                match op ve with
                | TAddc eps when is_eps eps -> (
                    let v = List.hd (get ve).args in
                    match op v with
                    | TRowmean -> (
                        let sq = List.hd (get v).args in
                        let squared_of =
                          match (op sq, (get sq).args) with
                          | TMul, [ a; b ] when a = b -> Some a
                          | TPow 2, [ a ] -> Some a
                          | _ -> None
                        in
                        match squared_of with
                        | Some base when base = d -> (
                            (* layernorm if d = x - rowmean x, else rmsnorm *)
                            match (op d, (get d).args) with
                            | TSub, [ x; mu ]
                              when op mu = TRowmean && (get mu).args = [ x ] ->
                                Some
                                  {
                                    op = Registry.Layernorm;
                                    inputs = [ x ];
                                    interior = [ r; ve; v; sq; d; mu ];
                                  }
                            | _ ->
                                Some
                                  {
                                    op = Registry.Rmsnorm;
                                    inputs = [ d ];
                                    interior = [ r; ve; v; sq ];
                                  })
                        | _ -> None)
                    | _ -> None)
                | _ -> None)
            | _ -> None)
    | _ -> None
  in
  let match_simple (root : tinstr) =
    match root.op with
    | TMaximum0 ->
        Some { op = Registry.Relu; inputs = root.args; interior = [] }
    | TRotate -> Some { op = Registry.Rope; inputs = root.args; interior = [] }
    | _ -> None
  in
  (* gating pass: nonlinear.silu/gelu feeding an element-wise product *)
  let match_gated (root : tinstr) =
    match root.op with
    | TMul ->
        comm root.args (fun g v ->
            match op g with
            | TNonlinear Registry.Silu ->
                Some
                  {
                    op = Registry.Swiglu;
                    inputs = (get g).args @ [ v ];
                    interior = [ g ];
                  }
            | TNonlinear Registry.Gelu ->
                Some
                  {
                    op = Registry.Geglu;
                    inputs = (get g).args @ [ v ];
                    interior = [ g ];
                  }
            | _ -> None)
    | _ -> None
  in
  (* largest templates first so GeLU wins over SiLU-ish submatches *)
  [
    match_gelu;
    match_norms;
    match_softmax;
    match_silu;
    match_gated;
    match_simple;
  ]

(* One rewrite round: find the first applicable match whose interior values
   are single-use, apply it, and compact the program. *)
let rewrite_once (p : program) =
  let ins = Array.of_list p.instrs in
  let consumers = Array.make (Array.length ins) [] in
  List.iter
    (fun (i : tinstr) ->
      List.iter (fun a -> consumers.(a) <- i.id :: consumers.(a)) i.args)
    p.instrs;
  let output_set = p.outputs in
  (* every consumer of an interior value must itself be inside the pattern:
     values observed elsewhere cannot be fused away *)
  let internal_only root (f : found) =
    let inside i = i = root || List.mem i f.interior in
    List.for_all
      (fun i ->
        (not (List.mem i output_set))
        && List.for_all inside consumers.(i))
      f.interior
  in
  let try_match (root : tinstr) =
    List.find_map
      (fun m ->
        match m root with
        | Some f when internal_only root.id f -> Some f
        | _ -> None)
      (matchers ins)
  in
  let found =
    Array.fold_left
      (fun acc root ->
        match acc with Some _ -> acc | None -> Option.map (fun f -> (root, f)) (try_match root))
      None ins
  in
  match found with
  | None -> None
  | Some (root, f) ->
      let dead = f.interior in
      let remap = Array.make (Array.length ins) (-1) in
      let fresh = ref 0 in
      let kept =
        List.filter_map
          (fun (i : tinstr) ->
            if List.mem i.id dead then None
            else begin
              remap.(i.id) <- !fresh;
              incr fresh;
              Some i
            end)
          p.instrs
      in
      let instrs =
        List.map
          (fun (i : tinstr) ->
            if i.id = root.id then
              {
                i with
                id = remap.(i.id);
                op = TNonlinear f.op;
                args = List.map (fun a -> remap.(a)) f.inputs;
              }
            else { i with id = remap.(i.id); args = List.map (fun a -> remap.(a)) i.args })
          kept
      in
      Some
        { p with instrs; outputs = List.map (fun o -> remap.(o)) p.outputs }

let rewrite p =
  let rec go p =
    match rewrite_once p with Some p' -> go p' | None -> p
  in
  let result = go p in
  match validate result with
  | Ok () -> result
  | Error e -> invalid_arg ("Patterns.rewrite produced invalid program: " ^ e)

let unmatched_primitives (p : program) =
  List.filter_map
    (fun (i : tinstr) ->
      match i.op with
      | TTanh | TErf | TExp | TSigmoid | TMaximum0 | TRsqrt | TRowmax | TRowsum
      | TRowmean | TRotate | TDiv -> Some (op_name i.op)
      | TInput _ | TWeight _ | TMatmul | TAdd | TSub | TMul | TScale _ | TAddc _
      | TPow _ | TTranspose | TBmm _ | TReshape _ | TBroadcast _ | TNonlinear _ ->
          None)
    p.instrs
