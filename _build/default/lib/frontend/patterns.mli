(** Nonlinear-operation pattern matching (paper §4.3, "Pattern Matching").

    Frameworks lower a GeLU into five primitive tensor instructions; this
    pass locates such subgraphs in a {!Tensor_ir.program} and collapses each
    into a single [TNonlinear] instruction, so the offload pass can hand it
    to the CGRA as one task.  "It supports future operations without the
    need to modify the MLIR dialect" — here: adding a template to
    {!rewrite}'s table, nothing else.

    Recognized templates (with commutative element-wise operands and the
    usual framework-emission variants):

    - ReLU ([max(x,0)]), RoPE ([rotate])
    - SiLU ([x * sigmoid x])
    - GeLU, tanh form ([0.5 x (1 + tanh(c (x + 0.044715 x^3)))]) and erf
      form ([0.5 x (1 + erf(x/sqrt2))])
    - Softmax ([exp(x - rowmax x) / rowsum ...])
    - LayerNorm ([(x - mu) * rsqrt(var + eps)]) and RMSNorm
    - gated pairs: [silu(a) * b] -> SwiGLU, [gelu(a) * b] -> GeGLU
      (second pass over already-collapsed activations)

    Interior values must be single-use (a value observed elsewhere cannot be
    fused away); matching is greedy, largest templates first, iterated to a
    fixpoint. *)

val rewrite : Tensor_ir.program -> Tensor_ir.program
(** Returns a new valid program with matched subgraphs collapsed. *)

val unmatched_primitives : Tensor_ir.program -> string list
(** Names of nonlinear primitive instructions (tanh/erf/exp/sigmoid/rsqrt/
    max0/rowmax/...) still present — non-empty means some nonlinearity
    escaped the matcher and would fall to a slow path. *)
