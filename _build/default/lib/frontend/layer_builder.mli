(** Framework stand-in: emit the tensor program of one transformer block
    exactly as a PyTorch lowering would — every nonlinear operation spelled
    out in primitives (the norm as sub/mean/rsqrt chains, GeLU as its
    five-instruction expansion, softmax as exp/rowsum/div), so that the
    §4.3 pattern matcher has real work to do.

    [attention ~heads] folds heads into batched matmuls; the per-head value
    transpose is expressed as a reshape (shape-level fidelity — this IR is
    never executed). *)

val transformer_block :
  Picachu_llm.Model_zoo.t -> seq:int -> Tensor_ir.program
(** One block: pre-norm, attention (with RoPE when the model uses it),
    residual, pre-norm, FFN (ReLU/GeLU/SwiGLU/GeGLU per the model),
    residual. *)

val expected_nonlinears : Picachu_llm.Model_zoo.t -> Picachu_nonlinear.Registry.opkind list
(** The nonlinear operations a matched block must contain (sorted). *)
