open Tensor_ir
module Registry = Picachu_nonlinear.Registry

type stage =
  | Gemm of { m : int; k : int; n : int; count : int; tag : string }
  | Nonlinear of { op : Registry.opkind; rows : int; dim : int; tag : string }
  | Fallback of string

type plan = stage list

let offload (p : program) =
  let ins = Array.of_list p.instrs in
  List.filter_map
    (fun (i : tinstr) ->
      match i.op with
      | TMatmul ->
          let a = ins.(List.nth i.args 0) in
          Some
            (Gemm
               {
                 m = i.shape.rows;
                 k = a.shape.cols;
                 n = i.shape.cols;
                 count = 1;
                 tag = Printf.sprintf "%%%d" i.id;
               })
      | TBmm b ->
          let a = ins.(List.nth i.args 0) in
          Some
            (Gemm
               {
                 m = i.shape.rows / b;
                 k = a.shape.cols;
                 n = i.shape.cols;
                 count = b;
                 tag = Printf.sprintf "%%%d(bmm)" i.id;
               })
      | TNonlinear op ->
          Some
            (Nonlinear
               {
                 op;
                 rows = i.shape.rows;
                 dim = i.shape.cols;
                 tag = Printf.sprintf "%%%d" i.id;
               })
      (* free riders *)
      | TAdd | TSub | TMul | TDiv | TScale _ | TAddc _ | TPow _ | TTranspose
      | TReshape _ | TBroadcast _ | TInput _ | TWeight _ -> None
      (* unmatched nonlinear primitives fall to the host *)
      | TTanh | TErf | TExp | TSigmoid | TMaximum0 | TRsqrt | TRowmax | TRowsum
      | TRowmean | TRotate -> Some (Fallback (op_name i.op)))
    p.instrs

let gemm_flops plan =
  List.fold_left
    (fun acc -> function
      | Gemm { m; k; n; count; _ } ->
          acc +. (2.0 *. float_of_int m *. float_of_int k *. float_of_int n
                  *. float_of_int count)
      | _ -> acc)
    0.0 plan

let nonlinear_elements plan =
  List.fold_left
    (fun acc -> function Nonlinear { rows; dim; _ } -> acc + (rows * dim) | _ -> acc)
    0 plan

let fallbacks plan =
  List.filter_map (function Fallback s -> Some s | _ -> None) plan

let pp fmt plan =
  List.iter
    (function
      | Gemm { m; k; n; count; tag } ->
          Format.fprintf fmt "  systolic  %-10s %dx%dx%d x%d@." tag m k n count
      | Nonlinear { op; rows; dim; tag } ->
          Format.fprintf fmt "  cgra      %-10s %s rows=%d dim=%d@." tag
            (Registry.name op) rows dim
      | Fallback s -> Format.fprintf fmt "  host!     %s@." s)
    plan
