(** Tensor-level program IR — the Linalg/Affine altitude of the paper's
    Figure 6, where an ML model arrives as a DAG of framework-level tensor
    operations before any nonlinear operation has been identified.

    Programs are SSA: each instruction produces one tensor value, identified
    by a dense id; shapes are rank-2 [(rows, cols)] (1-D values use one
    row).  A GeLU written by a framework shows up here as its five
    primitive instructions (mul, mul, add, tanh/erf, mul) — exactly the
    form the §4.3 pattern matcher must recognize. *)

module Registry = Picachu_nonlinear.Registry

type shape = { rows : int; cols : int }

type top =
  | TInput of string  (** activation input *)
  | TWeight of string  (** parameter tensor *)
  | TMatmul  (** args: activation, weight *)
  | TAdd
  | TSub
  | TMul  (** element-wise *)
  | TDiv
  | TScale of float  (** multiply by a compile-time scalar *)
  | TAddc of float  (** add a compile-time scalar *)
  | TPow of int  (** integer power (x^3 in the GeLU cubic) *)
  | TTanh
  | TErf
  | TExp
  | TSigmoid
  | TMaximum0  (** max(x, 0) *)
  | TRsqrt
  | TRowmax  (** row-wise max, broadcast back *)
  | TRowsum
  | TRowmean
  | TRotate  (** rotary position application *)
  | TTranspose
  | TBmm of int  (** batched matmul over [b] heads: args [b*m x k], [b*n x k] *)
  | TReshape of shape
  | TBroadcast of int
      (** repeat the rows [factor] times (GQA KV-head expansion); layout
          only, free at offload *)
  | TNonlinear of Registry.opkind
      (** produced by the pattern matcher, never by a frontend *)

type tinstr = { id : int; op : top; args : int list; shape : shape }

type program = {
  pname : string;
  instrs : tinstr list;  (** dense ids, topologically ordered *)
  outputs : int list;
}

val validate : program -> (unit, string) result
(** Dense ordered ids, args in range and backward, arities consistent. *)

val uses : program -> int array
(** Use count per instruction id (outputs count as a use). *)

val op_name : top -> string

val pp : Format.formatter -> program -> unit

(** Imperative construction (mirrors the kernel-IR builder). *)
module Build : sig
  type t

  val create : string -> t
  val input : t -> string -> shape -> int
  val weight : t -> string -> shape -> int
  val matmul : t -> int -> int -> int
  val add : t -> int -> int -> int
  val sub : t -> int -> int -> int
  val mul : t -> int -> int -> int
  val div : t -> int -> int -> int
  val scale : t -> float -> int -> int
  val addc : t -> float -> int -> int
  val pow : t -> int -> int -> int
  val tanh_ : t -> int -> int
  val erf_ : t -> int -> int
  val exp_ : t -> int -> int
  val sigmoid_ : t -> int -> int
  val maximum0 : t -> int -> int
  val rsqrt : t -> int -> int
  val rowmax : t -> int -> int
  val rowsum : t -> int -> int
  val rowmean : t -> int -> int
  val rotate : t -> int -> int
  val transpose : t -> int -> int
  val bmm : t -> heads:int -> int -> int -> int
  val reshape : t -> shape -> int -> int
  val broadcast : t -> int -> int -> int
  val finish : t -> outputs:int list -> program
end
