(** Execution timeline of one transformer layer on PICACHU — Figure 5's data
    flow rendered as a Gantt chart.

    Events are placed on three lanes (systolic array, CGRA, DMA) following
    the canonical layer order; element-wise operations overlap their
    producing GEMM (Case 1), reductions run channel-at-a-time after theirs
    (Cases 2/3) with their DMA drawn alongside.  Times come from the same
    models the end-to-end simulator uses, so the chart is an explanation of
    the simulator's accounting, not a separate estimate. *)

type lane = Systolic | Cgra | Dma

type event = {
  label : string;
  lane : lane;
  start_cycle : int;
  end_cycle : int;  (** exclusive *)
}

val layer : Simulator.config -> Picachu_llm.Workload.t -> event list
(** One layer's events in start order. The workload must come from
    {!Picachu_llm.Workload.of_model}. *)

val total_cycles : event list -> int
val render : ?width:int -> event list -> string
(** ASCII Gantt (default 72 columns). *)
