(** Request-level serving simulation.

    LLM inference in production is a prefill followed by a stream of decode
    steps; this module composes the end-to-end simulator's phase costs into
    request latency and sustained token throughput, for PICACHU and for the
    A100 roofline — the deployment view of the paper's per-pass results.

    Decode steps are evaluated at a few KV-cache lengths and interpolated
    linearly in between (attention cost is linear in the cache length). *)

module Workload = Picachu_llm.Workload
module Mz = Picachu_llm.Model_zoo

type request = { prompt : int; generate : int }

type phase_costs = {
  prefill_s : float;
  decode_s_at : (int * float) list;  (** (cache length, per-step seconds) *)
}

type summary = {
  ttft_s : float;  (** time to first token (prefill) *)
  total_s : float;  (** full request latency *)
  tokens_per_s : float;  (** decode throughput over the generation *)
}

val picachu_costs : Simulator.config -> Mz.t -> request -> phase_costs
val gpu_costs : Picachu_llm.Gpu_model.t -> Mz.t -> request -> phase_costs
val summarize : phase_costs -> request -> summary
(** Raises [Invalid_argument] on non-positive prompt/generate. *)
