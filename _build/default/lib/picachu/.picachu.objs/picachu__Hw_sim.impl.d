lib/picachu/hw_sim.ml: Compiler Hashtbl List Picachu_cgra Picachu_ir
