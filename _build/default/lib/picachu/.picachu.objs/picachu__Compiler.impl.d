lib/picachu/compiler.ml: Hashtbl List Picachu_cgra Picachu_dfg Picachu_ir Printf
