lib/picachu/serving.ml: List Picachu_llm Simulator Stdlib
