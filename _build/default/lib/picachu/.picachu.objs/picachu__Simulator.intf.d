lib/picachu/simulator.mli: Picachu_cgra Picachu_llm Picachu_memory Picachu_systolic
