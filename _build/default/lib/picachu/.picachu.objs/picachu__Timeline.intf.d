lib/picachu/timeline.mli: Picachu_llm Simulator
