lib/picachu/explore.mli:
