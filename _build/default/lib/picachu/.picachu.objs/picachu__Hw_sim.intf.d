lib/picachu/hw_sim.mli: Compiler Picachu_cgra Picachu_ir
