lib/picachu/timeline.ml: Buffer List Picachu_ir Picachu_llm Picachu_memory Picachu_nonlinear Picachu_systolic Printf Simulator Stdlib
