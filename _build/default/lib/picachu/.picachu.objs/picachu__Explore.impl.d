lib/picachu/explore.ml: Compiler List Picachu_cgra Picachu_ir Picachu_tensor
