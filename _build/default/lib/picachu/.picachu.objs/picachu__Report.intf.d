lib/picachu/report.mli:
