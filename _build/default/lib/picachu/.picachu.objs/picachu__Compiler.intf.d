lib/picachu/compiler.mli: Picachu_cgra Picachu_dfg Picachu_ir
