lib/picachu/experiments.mli: Picachu_cgra Serving
