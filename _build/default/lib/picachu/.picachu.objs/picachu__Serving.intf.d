lib/picachu/serving.mli: Picachu_llm Simulator
