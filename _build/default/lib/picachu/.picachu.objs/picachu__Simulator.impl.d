lib/picachu/simulator.ml: Compiler List Picachu_cgra Picachu_ir Picachu_llm Picachu_memory Picachu_nonlinear Picachu_systolic Stdlib
