lib/picachu/report.ml: Array Float List Printf Stdlib String
