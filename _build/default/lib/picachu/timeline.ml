module Workload = Picachu_llm.Workload
module Registry = Picachu_nonlinear.Registry
module Kernel = Picachu_ir.Kernel
module Kernels = Picachu_ir.Kernels
module Systolic_m = Picachu_systolic.Systolic
module Dataflow = Picachu_memory.Dataflow
module Dma = Picachu_memory.Dma

type lane = Systolic | Cgra | Dma

type event = { label : string; lane : lane; start_cycle : int; end_cycle : int }

let find_gemm (w : Workload.t) tag =
  List.find_opt
    (fun (g : Workload.gemm) ->
      g.Workload.g_tag = tag || (tag = "ffn.up" && g.Workload.g_tag = "ffn.up+gate"))
    w.Workload.gemms

let find_nl (w : Workload.t) tag =
  List.find_opt (fun (nl : Workload.nl) -> nl.Workload.nl_tag = tag) w.Workload.nls

let gemm_cycles cfg (g : Workload.gemm) =
  Systolic_m.gemm_cycles cfg.Simulator.systolic ~m:g.Workload.m ~k:g.Workload.k
    ~n:g.Workload.n

(* per-instance times for one layer *)
let nl_cycles cfg (w : Workload.t) (nl : Workload.nl) =
  let o = Simulator.nl_op_time cfg w nl in
  ( o.Simulator.busy_cycles / Stdlib.max 1 nl.Workload.nl_count,
    o.Simulator.exposed_cycles / Stdlib.max 1 nl.Workload.nl_count )

let layer cfg (w : Workload.t) =
  let heads_factor tag (g : Workload.gemm) =
    (* scores/context gemms run per head; charge one layer's worth *)
    if tag = "attn.scores" || tag = "attn.context" then
      g.Workload.count / w.Workload.model.Picachu_llm.Model_zoo.layers
    else 1
  in
  let events = ref [] and clock = ref 0 in
  let emit label lane cycles ~at =
    events := { label; lane; start_cycle = at; end_cycle = at + Stdlib.max 1 cycles } :: !events;
    at + cycles
  in
  let sequential_gemm tag =
    match find_gemm w tag with
    | None -> ()
    | Some g ->
        let c = gemm_cycles cfg g * heads_factor tag g in
        clock := emit tag Systolic c ~at:!clock
  in
  let sequential_nl tag =
    match find_nl w tag with
    | None -> ()
    | Some nl ->
        let busy, exposed = nl_cycles cfg w nl in
        let dma = exposed - busy in
        if dma > 0 then
          ignore (emit (tag ^ ".dma") Dma exposed ~at:!clock);
        clock := emit tag Cgra (Stdlib.max busy exposed) ~at:!clock
  in
  let overlapped_nl tag ~producer_tag =
    (* Case 1: the CGRA consumes the producer's output stream as it appears *)
    match (find_nl w tag, find_gemm w producer_tag) with
    | Some nl, Some g ->
        let producer = gemm_cycles cfg g * heads_factor producer_tag g in
        let start = !clock in
        let finish = emit producer_tag Systolic producer ~at:start in
        let busy, _ = nl_cycles cfg w nl in
        ignore (emit tag Cgra busy ~at:(start + (producer / 8)));
        clock := Stdlib.max finish (start + (producer / 8) + busy)
    | _, Some g ->
        let c = gemm_cycles cfg g * heads_factor producer_tag g in
        clock := emit producer_tag Systolic c ~at:!clock
    | _ -> ()
  in
  (* canonical layer order (Figure 5) *)
  sequential_nl "norm";
  overlapped_nl "rope" ~producer_tag:"qkv";
  sequential_gemm "attn.scores";
  sequential_nl "softmax";
  sequential_gemm "attn.context";
  sequential_gemm "attn.out";
  sequential_nl "norm";
  overlapped_nl "activation" ~producer_tag:"ffn.up";
  sequential_gemm "ffn.down";
  List.rev !events

let total_cycles events =
  List.fold_left (fun acc e -> Stdlib.max acc e.end_cycle) 0 events

let lane_name = function Systolic -> "systolic" | Cgra -> "cgra" | Dma -> "dma"

let render ?(width = 72) events =
  let total = Stdlib.max 1 (total_cycles events) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "one-layer timeline, %d cycles (each column ~ %d cycles)\n" total
       (total / width));
  List.iter
    (fun e ->
      let scale x = x * width / total in
      let a = scale e.start_cycle and b = Stdlib.max (scale e.start_cycle + 1) (scale e.end_cycle) in
      Buffer.add_string buf (Printf.sprintf "%-9s %-14s |" (lane_name e.lane) e.label);
      for c = 0 to width - 1 do
        Buffer.add_char buf (if c >= a && c < b then (match e.lane with Systolic -> '#' | Cgra -> '=' | Dma -> '.') else ' ')
      done;
      Buffer.add_string buf "|\n")
    events;
  Buffer.contents buf
