let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  List.iter
    (fun r ->
      if List.length r <> cols then invalid_arg "Report.table: ragged row")
    rows;
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)))
    all;
  let print_row r =
    List.iteri
      (fun i cell ->
        Printf.printf "%s%s" cell (String.make (widths.(i) - String.length cell + 2) ' '))
      r;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') (Array.to_list widths));
  List.iter print_row rows

let fmt_f v =
  if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v else Printf.sprintf "%.3g" v

let fmt_x v = Printf.sprintf "%.2fx" v
let fmt_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)

let fmt_delta v =
  if Float.abs v < 0.005 then "0.00"
  else if v > 0.0 then Printf.sprintf "+%.2f" v
  else Printf.sprintf "%.2f" v
