(** The Shared Buffer: the systolic array's output SRAM multiplexed as the
    CGRA's input/intermediate/output memory (paper §4.2.4, Figure 5). *)

type t = {
  capacity_bytes : int;
  element_bytes : int;  (** 2 for FP16/INT16, 4 for FP32/INT32 *)
}

val make : ?element_bytes:int -> kb:float -> unit -> t
(** Requires positive capacity. Default element width 2 bytes. *)

val capacity_elements : t -> int

val holds_channel : t -> dim:int -> bool
(** Can one channel (a vector of [dim] elements — one token's embedding, or
    one softmax row) fit?  This is the §5.3.5 threshold: a 40KB buffer holds
    a LLaMA2-7B channel (4096 x 2B x double-buffered pairs), a 20KB buffer a
    GPT2-XL channel (1600). *)

val channels_resident : t -> dim:int -> int
(** How many channels fit simultaneously (for Case 3 / FlashAttention-style
    blocking); accounts for the double-buffered input+output pairs. *)
