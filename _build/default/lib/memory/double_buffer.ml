let check ~chunks ~transfer ~compute =
  if chunks < 0 || transfer < 0 || compute < 0 then
    invalid_arg "Double_buffer: negative argument"

let pipelined_cycles ~chunks ~transfer ~compute =
  check ~chunks ~transfer ~compute;
  if chunks = 0 then 0
  else transfer + (Stdlib.max transfer compute * (chunks - 1)) + compute

let serialized_cycles ~chunks ~transfer ~compute =
  check ~chunks ~transfer ~compute;
  (transfer + compute) * chunks

let hidden_fraction ~chunks ~transfer ~compute =
  let serial = serialized_cycles ~chunks ~transfer ~compute in
  let piped = pipelined_cycles ~chunks ~transfer ~compute in
  let dma_total = transfer * chunks in
  if dma_total = 0 then 0.0 else float_of_int (serial - piped) /. float_of_int dma_total
