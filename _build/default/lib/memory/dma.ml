type t = { setup_cycles : int; bytes_per_cycle : float }

let make ?(setup_cycles = 300) ~bytes_per_cycle () =
  if bytes_per_cycle <= 0.0 then invalid_arg "Dma.make: bandwidth";
  { setup_cycles; bytes_per_cycle }

let default = make ~bytes_per_cycle:16.0 ()

let transfer_cycles t ~bytes =
  if bytes < 0 then invalid_arg "Dma.transfer_cycles: negative size";
  if bytes = 0 then 0
  else t.setup_cycles + int_of_float (ceil (float_of_int bytes /. t.bytes_per_cycle))
