(** DMA engine between off-chip DRAM and the Shared Buffer (paper §4.2.3/4.2.4).

    The paper measures DMA latency on a Xilinx U280: a fixed per-transfer
    setup latency plus a bandwidth-limited streaming phase.  Cycle counts are
    at the accelerator clock (1 GHz default). *)

type t = {
  setup_cycles : int;  (** per-transfer initiation latency *)
  bytes_per_cycle : float;  (** sustained streaming bandwidth *)
}

val default : t
(** 300-cycle setup, 16 B/cycle (16 GB/s at 1 GHz — PCIe-attached FPGA-class
    bandwidth, matching the U280 measurement setup). *)

val make : ?setup_cycles:int -> bytes_per_cycle:float -> unit -> t
val transfer_cycles : t -> bytes:int -> int
(** Requires [bytes >= 0]; zero bytes costs zero. *)
