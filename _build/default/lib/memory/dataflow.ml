type case = Stream_overlap | Channel_dma | Buffer_resident

let case_name = function
  | Stream_overlap -> "case1-stream"
  | Channel_dma -> "case2-channel-dma"
  | Buffer_resident -> "case3-resident"

let classify buf ~reduction ~rows ~dim =
  if not reduction then Stream_overlap
  else if Shared_buffer.channels_resident buf ~dim >= rows then Buffer_resident
  else Channel_dma

let case1_cycles ~producer_cycles ~cgra_cycles ~prologue =
  Stdlib.max producer_cycles cgra_cycles + prologue

let channel_bytes ~dim ~element_bytes = dim * element_bytes

(* A channel needs 4x its bytes resident (double-buffered input and output
   pairs).  A buffer below that threshold forces segmentation: the reduction
   pass and the element-wise pass each re-stream the channel segment by
   segment, so the DMA volume doubles and every segment pays setup. *)
let channel_dma_cycles dma buf ~dim ~element_bytes =
  let bytes = channel_bytes ~dim ~element_bytes in
  if Shared_buffer.holds_channel buf ~dim then Dma.transfer_cycles dma ~bytes
  else
    let segments =
      (4 * bytes + buf.Shared_buffer.capacity_bytes - 1)
      / buf.Shared_buffer.capacity_bytes
    in
    2 * segments * Dma.transfer_cycles dma ~bytes:((bytes + segments - 1) / segments)

let case2_cycles dma buf ~rows ~dim ~element_bytes ~compute_per_channel ~writeback =
  let t_in = channel_dma_cycles dma buf ~dim ~element_bytes in
  let t_out = if writeback then t_in else 0 in
  if rows = 0 then 0
  else
    (* separate in/out buffer pairs let both directions overlap compute; the
       steady-state rate is the slowest of the three engines *)
    let steady = Stdlib.max compute_per_channel (Stdlib.max t_in t_out) in
    t_in + (steady * (rows - 1)) + compute_per_channel + t_out

let case2_cycles_single_buffered dma buf ~rows ~dim ~element_bytes
    ~compute_per_channel ~writeback =
  let t_in = channel_dma_cycles dma buf ~dim ~element_bytes in
  let t_out = if writeback then t_in else 0 in
  rows * (t_in + compute_per_channel + t_out)

let case3_cycles dma ~rows ~dim ~element_bytes ~compute_per_channel ~input_on_chip =
  let bulk = Dma.transfer_cycles dma ~bytes:(rows * channel_bytes ~dim ~element_bytes) in
  let load = if input_on_chip then 0 else bulk in
  load + (rows * compute_per_channel) + bulk
