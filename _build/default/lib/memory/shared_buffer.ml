type t = { capacity_bytes : int; element_bytes : int }

let make ?(element_bytes = 2) ~kb () =
  if kb <= 0.0 then invalid_arg "Shared_buffer.make: capacity";
  if element_bytes <= 0 then invalid_arg "Shared_buffer.make: element width";
  { capacity_bytes = int_of_float (kb *. 1024.0); element_bytes }

let capacity_elements t = t.capacity_bytes / t.element_bytes

(* Four buffers share the capacity: two input and two output (double
   buffering, §4.2.3); a channel is resident when one quarter holds it. *)
let holds_channel t ~dim = dim * t.element_bytes * 4 <= t.capacity_bytes

let channels_resident t ~dim =
  if dim <= 0 then invalid_arg "Shared_buffer.channels_resident: dim";
  t.capacity_bytes / (4 * dim * t.element_bytes)
