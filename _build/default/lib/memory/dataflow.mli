(** The three Shared-Buffer data-flow strategies of paper §4.2.4.

    - {b Case 1} — element-wise operations stream directly out of the
      systolic array: CGRA execution overlaps GEMM production, no
      intermediate statistics are buffered.
    - {b Case 2} — reductions whose tensor exceeds the buffer fetch one
      channel at a time over DMA, double-buffered, and write results back.
    - {b Case 3} — reductions whose working set fits (FlashAttention-style
      blocking): inputs stay resident until statistics are complete, then
      the final element-wise loop runs in place.

    All cycle calculators take *per-channel* compute costs produced by the
    CGRA mapper and return total cycles for [rows] channels of [dim]
    elements. *)

type case = Stream_overlap | Channel_dma | Buffer_resident

val case_name : case -> string

val classify : Shared_buffer.t -> reduction:bool -> rows:int -> dim:int -> case
(** EO ops always stream (Case 1); RE ops pick Case 3 when the whole
    [rows x dim] working set is resident, else Case 2. *)

val case1_cycles :
  producer_cycles:int -> cgra_cycles:int -> prologue:int -> int
(** Overlapped with the systolic array: the slower engine dominates, plus
    the first channel's pipeline fill. *)

val case2_cycles :
  Dma.t -> Shared_buffer.t -> rows:int -> dim:int -> element_bytes:int ->
  compute_per_channel:int -> writeback:bool -> int
(** Channel-at-a-time DMA in (and optionally out), double-buffered against
    compute.  When the buffer cannot hold a full double-buffered channel
    (the Figure 7c regime below the per-model threshold), the channel is
    segmented: the reduction and element-wise passes each re-stream the
    data, paying per-segment DMA setup — the cliff §5.3.5 measures. *)

val case3_cycles :
  Dma.t -> rows:int -> dim:int -> element_bytes:int ->
  compute_per_channel:int -> input_on_chip:bool -> int
(** One bulk load (skipped when the producer already left the data in the
    buffer), all channels computed in place, one bulk store. *)

val case2_cycles_single_buffered :
  Dma.t -> Shared_buffer.t -> rows:int -> dim:int -> element_bytes:int ->
  compute_per_channel:int -> writeback:bool -> int
(** Ablation: Case 2 with the double-buffering disabled (DMA exposed). *)
