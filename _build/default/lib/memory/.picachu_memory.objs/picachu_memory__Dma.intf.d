lib/memory/dma.mli:
