lib/memory/dataflow.ml: Dma Shared_buffer Stdlib
