lib/memory/shared_buffer.ml:
