lib/memory/double_buffer.mli:
