lib/memory/double_buffer.ml: Stdlib
