lib/memory/dataflow.mli: Dma Shared_buffer
