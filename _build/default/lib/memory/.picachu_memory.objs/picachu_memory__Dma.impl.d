lib/memory/dma.ml:
