lib/memory/shared_buffer.mli:
