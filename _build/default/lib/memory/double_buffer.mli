(** Double-buffering overlap model (paper §4.2.3).

    With two input and two output buffers, chunk [i+1]'s DMA transfer
    overlaps chunk [i]'s computation.  For [chunks] equal chunks with
    per-chunk transfer time [t] and compute time [c]:

    - double-buffered:  [t + max(t, c) * (chunks - 1) + c]
      (first load exposed, then the slower of the two pipelines, then the
      last compute drains)
    - single-buffered:  [(t + c) * chunks] — everything serialized. *)

val pipelined_cycles : chunks:int -> transfer:int -> compute:int -> int
(** Requires [chunks >= 0] and non-negative stage times. *)

val serialized_cycles : chunks:int -> transfer:int -> compute:int -> int

val hidden_fraction : chunks:int -> transfer:int -> compute:int -> float
(** Fraction of total DMA time hidden by the overlap (0 when nothing is
    hidden, approaching 1 when compute fully covers transfers). *)
