module Op = Picachu_ir.Op

let member_ops (node : Dfg.node) = node.members

let compute_node_count g =
  Array.fold_left
    (fun acc node ->
      acc + List.length (List.filter Op.is_compute (member_ops node)))
    0 g.Dfg.nodes

let memory_node_count g =
  Array.fold_left
    (fun acc node ->
      acc + List.length (List.filter Op.is_memory (member_ops node)))
    0 g.Dfg.nodes

let computational_intensity g =
  let mem = memory_node_count g in
  if mem = 0 then infinity
  else float_of_int (compute_node_count g) /. float_of_int mem

let node_latency (node : Dfg.node) =
  match node.Dfg.op with
  | Op.Fused _ -> 1 (* the point of fusion: one cycle for the whole pattern *)
  | op -> Op.latency op

(* Longest forward path from [src] to [dst] in latency terms; -1 if
   unreachable. *)
let longest_path g ~src ~dst =
  let order = Dfg.topo_order g in
  let n = Dfg.node_count g in
  let dist = Array.make n min_int in
  dist.(src) <- node_latency g.Dfg.nodes.(src);
  List.iter
    (fun u ->
      if dist.(u) > min_int then
        List.iter
          (fun (v, d) ->
            if d = 0 then
              let cand = dist.(u) + node_latency g.Dfg.nodes.(v) in
              if cand > dist.(v) then dist.(v) <- cand)
          (Dfg.succs g u))
    order;
  if dist.(dst) = min_int then -1 else dist.(dst)

let rec_mii g =
  let back = List.filter (fun (e : Dfg.edge) -> e.distance > 0) g.Dfg.edges in
  List.fold_left
    (fun acc (e : Dfg.edge) ->
      let cycle_latency =
        if e.src = e.dst then node_latency g.Dfg.nodes.(e.src)
        else
          (* path dst ->...-> src plus the back edge *)
          let p = longest_path g ~src:e.dst ~dst:e.src in
          if p < 0 then node_latency g.Dfg.nodes.(e.src) else p
      in
      Stdlib.max acc ((cycle_latency + e.distance - 1) / e.distance))
    1 back

let critical_path g =
  let order = Dfg.topo_order g in
  let n = Dfg.node_count g in
  let dist = Array.make n 0 in
  List.iter
    (fun u ->
      let du = Stdlib.max dist.(u) (node_latency g.Dfg.nodes.(u)) in
      dist.(u) <- du;
      List.iter
        (fun (v, d) ->
          if d = 0 then
            let cand = du + node_latency g.Dfg.nodes.(v) in
            if cand > dist.(v) then dist.(v) <- cand)
        (Dfg.succs g u))
    order;
  Array.fold_left Stdlib.max 0 dist
