lib/dfg/fuse.mli: Dfg
