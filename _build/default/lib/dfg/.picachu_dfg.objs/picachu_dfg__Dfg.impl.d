lib/dfg/dfg.ml: Array Format List Picachu_ir Queue
