lib/dfg/dfg.mli: Format Picachu_ir
