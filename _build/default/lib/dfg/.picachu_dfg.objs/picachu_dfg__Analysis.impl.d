lib/dfg/analysis.ml: Array Dfg List Picachu_ir Stdlib
