lib/dfg/fuse.ml: Array Dfg Hashtbl List Option Picachu_ir
