(** DFG-level analyses (paper §3.1 and the scheduler's lower bounds). *)

val computational_intensity : Dfg.t -> float
(** Ratio of compute nodes to memory-access nodes at the DFG level — the
    paper's §3.1 metric (all Table 1 kernels except ReLU exceed 5.3).
    Fused nodes count each subsumed primitive.  Returns [infinity] for a
    graph with no memory nodes. *)

val compute_node_count : Dfg.t -> int
val memory_node_count : Dfg.t -> int

val rec_mii : Dfg.t -> int
(** Recurrence-constrained minimum II: the maximum over elementary cycles of
    (total latency / total distance).  The only cycles in these DFGs go
    through phi back edges, so the maximum is found by longest-path search
    from each distance-1 edge target back to its source. *)

val critical_path : Dfg.t -> int
(** Longest latency chain over forward edges (schedule-length lower bound). *)
