module Op = Picachu_ir.Op
module Kernel = Picachu_ir.Kernel
module Instr = Picachu_ir.Instr

type node = {
  id : int;
  op : Op.t;
  members : Op.t list;
  origins : int list;
  vector : bool;
}
type edge = { src : int; dst : int; distance : int }

type t = {
  nodes : node array;
  edges : edge list;
  vector_width : int;
  label : string;
}

let of_loop (loop : Kernel.loop) =
  let body = Array.of_list loop.body in
  (* constants and scalar inputs become configuration registers, not nodes *)
  let is_node (i : Instr.t) =
    match i.op with Op.Const _ | Op.Input _ -> false | _ -> true
  in
  let remap = Array.make (Array.length body) (-1) in
  let nodes = ref [] and fresh = ref 0 in
  Array.iter
    (fun (i : Instr.t) ->
      if is_node i then begin
        remap.(i.id) <- !fresh;
        nodes :=
          {
            id = !fresh;
            op = i.op;
            members = [ i.op ];
            origins = [ i.id ];
            vector = loop.vector_width > 1 && Op.is_vectorizable i.op;
          }
          :: !nodes;
        incr fresh
      end)
    body;
  let edges = ref [] in
  Array.iter
    (fun (i : Instr.t) ->
      if is_node i then
        match i.op with
        | Op.Phi ->
            (* only the loop-carried (distance-1) back edge is a steady-state
               dependence; the init value is prologue-only *)
            let next = List.nth i.args 1 in
            if remap.(next) >= 0 then
              edges := { src = remap.(next); dst = remap.(i.id); distance = 1 } :: !edges
        | _ ->
            List.iter
              (fun a ->
                if remap.(a) >= 0 then
                  edges := { src = remap.(a); dst = remap.(i.id); distance = 0 } :: !edges)
              i.args)
    body;
  {
    nodes = Array.of_list (List.rev !nodes);
    edges = List.rev !edges;
    vector_width = loop.vector_width;
    label = loop.label;
  }

let preds g id =
  List.filter_map
    (fun e -> if e.dst = id then Some (e.src, e.distance) else None)
    g.edges

let succs g id =
  List.filter_map
    (fun e -> if e.src = id then Some (e.dst, e.distance) else None)
    g.edges

let node_count g = Array.length g.nodes
let forward_edges g = List.filter (fun e -> e.distance = 0) g.edges

let topo_order g =
  let n = node_count g in
  let indeg = Array.make n 0 in
  List.iter (fun e -> if e.distance = 0 then indeg.(e.dst) <- indeg.(e.dst) + 1) g.edges;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let order = ref [] and seen = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    incr seen;
    List.iter
      (fun (v, dist) ->
        if dist = 0 then begin
          indeg.(v) <- indeg.(v) - 1;
          if indeg.(v) = 0 then Queue.add v queue
        end)
      (succs g u)
  done;
  if !seen <> n then failwith ("Dfg.topo_order: cycle in forward edges of " ^ g.label);
  List.rev !order

let pp fmt g =
  Format.fprintf fmt "dfg %s: %d nodes, %d edges (vw %d)@." g.label (node_count g)
    (List.length g.edges) g.vector_width;
  Array.iter
    (fun n ->
      Format.fprintf fmt "  n%d %a%s <-" n.id Op.pp n.op (if n.vector then " [vec]" else "");
      List.iter (fun (s, d) -> Format.fprintf fmt " n%d%s" s (if d > 0 then "'" else "")) (preds g n.id);
      Format.fprintf fmt "@.")
    g.nodes
