(** Data-flow graphs extracted from kernel loops (paper §4.3).

    Nodes are the FU-occupying operations of one loop iteration; constants
    and scalar live-ins live in tile configuration registers and do not
    appear.  Edges carry a distance: 0 for intra-iteration dependences, 1 for
    the loop-carried phi back edge.  Control flow has already been converted
    to data flow (partial predication): the branch is an ordinary node whose
    result steers the tile sequencer.

    The graph is immutable; the fusion pass produces a new graph. *)

module Op = Picachu_ir.Op
module Kernel = Picachu_ir.Kernel

type node = {
  id : int;
  op : Op.t;
  members : Op.t list;
      (** for a fused node, the primitive ops it subsumes; a singleton
          otherwise *)
  origins : int list;
      (** ids of the kernel-IR instructions this node executes, in program
          order — the link the configuration generator and the cycle-level
          executor follow back into the loop body *)
  vector : bool;  (** executes on the widened lanes when the loop is vectorized *)
}

type edge = { src : int; dst : int; distance : int }

type t = {
  nodes : node array;
  edges : edge list;
  vector_width : int;
  label : string;
}

val of_loop : Kernel.loop -> t
(** Extract the DFG of one loop body. *)

val preds : t -> int -> (int * int) list
(** [(src, distance)] pairs of incoming edges. *)

val succs : t -> int -> (int * int) list
(** [(dst, distance)] pairs of outgoing edges. *)

val node_count : t -> int

val forward_edges : t -> edge list
(** Edges with distance 0. *)

val topo_order : t -> int list
(** Topological order over forward edges (back edges ignored). Raises
    [Failure] if the forward subgraph is cyclic. *)

val pp : Format.formatter -> t -> unit
