(** Operation fusion (paper §4.2.1 "Operation fusion", Table 4).

    Recurring def-use patterns are collapsed into single complex nodes that a
    specialized FU executes in one cycle, shrinking the DFG and the critical
    recurrence (a fused [phi+add] accumulator has RecMII 1).  Patterns, in
    matching priority order:

    - [phi+add+add], [phi+add] — reduction/induction update chains
    - [cmp+br] — the loop back edge
    - [cmp+select] — predicated selection (ReLU)
    - [mul+add+add], [mul+add] — Horner steps of the Taylor polynomials
    - [add+add] — addition chains

    Fusion is greedy over node ids; interior values must be single-consumer;
    a phi's register is exposed, so other readers of the phi are rewired to
    the fused node. *)

val fuse : Dfg.t -> Dfg.t
(** Returns a new graph; input is unchanged. *)

val pattern_counts : Dfg.t -> (Dfg.Op.fused * int) list
(** How many fused nodes of each kind the graph contains (only non-zero
    entries, in Table 4 column order). *)

val contains_pattern : Dfg.t -> Dfg.Op.fused -> bool
