(** Output-stationary systolic array timing/energy model (paper §2.3, §4.2.4).

    An [dim x dim] grid of MACs computes GEMM tiles: each output tile of
    shape [dim x dim] accumulates over the full reduction dimension [k],
    costing [k + 2*dim] cycles (operand skew fill plus drain), with
    successive tiles pipelined back-to-back (weights for the next tile
    stream in while the current drains).  This is the TPU-style model the
    paper integrates the CGRA with; Gemmini's array behaves identically. *)

type t = {
  dim : int;  (** array dimension (32 in the paper's Table 7 config) *)
  freq_ghz : float;
  mac_energy_pj : float;  (** energy per MAC operation *)
}

val default : t
(** 32x32 at 1 GHz. *)

val make : ?freq_ghz:float -> ?mac_energy_pj:float -> int -> t

val gemm_cycles : t -> m:int -> k:int -> n:int -> int
(** Cycles for a dense [m x k] * [k x n] GEMM. Requires positive dims. *)

val gemm_macs : m:int -> k:int -> n:int -> int
val gemm_energy_uj : t -> m:int -> k:int -> n:int -> float
val gemm_seconds : t -> m:int -> k:int -> n:int -> float
val utilization : t -> m:int -> k:int -> n:int -> float
(** Achieved MACs per cycle over peak. *)
