type t = { dim : int; freq_ghz : float; mac_energy_pj : float }

let make ?(freq_ghz = 1.0) ?(mac_energy_pj = 0.5) dim =
  if dim < 1 then invalid_arg "Systolic.make: dim < 1";
  { dim; freq_ghz; mac_energy_pj }

let default = make 32

let ceil_div a b = (a + b - 1) / b

let gemm_cycles t ~m ~k ~n =
  if m < 1 || k < 1 || n < 1 then invalid_arg "Systolic.gemm_cycles: dims";
  let tiles = ceil_div m t.dim * ceil_div n t.dim in
  (* first tile pays the full fill+drain; subsequent tiles pipeline and pay
     only their reduction depth *)
  (k + (2 * t.dim)) + ((tiles - 1) * k)

let gemm_macs ~m ~k ~n = m * k * n

let gemm_energy_uj t ~m ~k ~n =
  float_of_int (gemm_macs ~m ~k ~n) *. t.mac_energy_pj *. 1e-6

let gemm_seconds t ~m ~k ~n =
  float_of_int (gemm_cycles t ~m ~k ~n) /. (t.freq_ghz *. 1e9)

let utilization t ~m ~k ~n =
  float_of_int (gemm_macs ~m ~k ~n)
  /. (float_of_int (gemm_cycles t ~m ~k ~n) *. float_of_int (t.dim * t.dim))
