lib/systolic/systolic.ml:
