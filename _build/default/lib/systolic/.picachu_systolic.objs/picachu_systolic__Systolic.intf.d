lib/systolic/systolic.mli:
