let horner coeffs x =
  let acc = ref 0.0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := (!acc *. x) +. coeffs.(i)
  done;
  !acc

let factorial k =
  let acc = ref 1.0 in
  for i = 2 to k do
    acc := !acc *. float_of_int i
  done;
  !acc

let taylor_coeffs ~f_derivatives ~order =
  Array.init (order + 1) (fun k -> f_derivatives k /. factorial k)

type quadratic = { a : float; b : float; c : float }

let complete_square { a; b; c } =
  if c = 0.0 then invalid_arg "Poly.complete_square: c = 0";
  let d = b /. (2.0 *. c) in
  let e = a -. (b *. b /. (4.0 *. c)) in
  (c, d, e)

let eval_quadratic_int quad ~in_scale ~bits q =
  let s, d, e = complete_square quad in
  (* q_d = round(d / in_scale); (q + q_d)^2 has scale in_scale^2; the scale
     factor s folds into the output scale, so the constant e must be
     expressed on that *output* grid (e / (s in_scale^2)), exactly as in
     I-BERT's int-poly. *)
  (* squared terms accumulate in 4x-width registers (INT32 for INT8 inputs,
     as I-BERT specifies): the shift by q_d can push |q + q_d| well past the
     input width *)
  let wide_bits = Stdlib.min 62 (4 * bits) in
  let q_d = int_of_float (Float.round (d /. in_scale)) in
  let shifted = Quant.saturating_cast ~bits q (* input already in range *) + q_d in
  let sq = Quant.saturating_cast ~bits:wide_bits (shifted * shifted) in
  let out_scale = s *. in_scale *. in_scale in
  let q_e = int_of_float (Float.round (e /. out_scale)) in
  let out = Quant.saturating_cast ~bits:wide_bits (sq + q_e) in
  (out, out_scale)

let exp_taylor_coeffs ~order =
  let ln2 = log 2.0 in
  Array.init (order + 1) (fun k -> (ln2 ** float_of_int k) /. factorial k)

let log1p_taylor_coeffs ~order =
  Array.init (order + 1) (fun k ->
      if k = 0 then 0.0
      else
        let sign = if k mod 2 = 1 then 1.0 else -1.0 in
        sign /. float_of_int k)

let sin_taylor ~order t =
  let acc = ref 0.0 and term = ref t and k = ref 1 in
  while !k <= order do
    acc := !acc +. !term;
    (* next odd term: multiply by -t^2 / ((k+1)(k+2)) *)
    term := !term *. -.(t *. t) /. float_of_int ((!k + 1) * (!k + 2));
    k := !k + 2
  done;
  !acc

let cos_taylor ~order t =
  let acc = ref 0.0 and term = ref 1.0 and k = ref 0 in
  while !k <= order do
    acc := !acc +. !term;
    term := !term *. -.(t *. t) /. float_of_int ((!k + 1) * (!k + 2));
    k := !k + 2
  done;
  !acc
