module Tensor = Picachu_tensor.Tensor

type qtensor = { q : int array; scale : float; bits : int }

let qmax bits = (1 lsl (bits - 1)) - 1

let scale_for ~bits ~absmax =
  if absmax <= 0.0 then 1.0 else absmax /. float_of_int (qmax bits)

let saturating_cast ~bits v =
  let hi = qmax bits and lo = -(1 lsl (bits - 1)) in
  if v > hi then hi else if v < lo then lo else v

let quantize_value ~bits ~scale x =
  saturating_cast ~bits (int_of_float (Float.round (x /. scale)))

let quantize_with_scale ~bits ~scale t =
  let q = Array.init (Tensor.numel t) (fun i -> quantize_value ~bits ~scale (Tensor.get t i)) in
  { q; scale; bits }

let quantize ~bits t =
  let absmax = Tensor.fold (fun acc x -> Float.max acc (abs_float x)) 0.0 t in
  quantize_with_scale ~bits ~scale:(scale_for ~bits ~absmax) t

let dequantize { q; scale; _ } =
  Tensor.init [ Array.length q ] (fun i -> scale *. float_of_int q.(i))

let roundtrip ~bits t =
  let qt = quantize ~bits t in
  Tensor.reshape (dequantize qt) (Tensor.shape t)

let requantize qt ~new_scale =
  let ratio = qt.scale /. new_scale in
  let q =
    Array.map
      (fun v -> saturating_cast ~bits:qt.bits
          (int_of_float (Float.round (float_of_int v *. ratio))))
      qt.q
  in
  { qt with q; scale = new_scale }
