(** Unified interface over nonlinear-operator evaluation backends.

    A backend bundles the element-wise primitives every Table 1 nonlinear
    operation is built from, at a given arithmetic fidelity.  The nonlinear
    operator library (lib/nonlinear) is written once against this vtable and
    evaluated under: the float64 software reference, the PICACHU algorithm in
    FP16 and INT16 (paper Tables 5/6), and the I-BERT / gemmlowp baselines
    (paper Table 2). *)

type t = {
  name : string;
  format : float array -> float array;
      (** value-level effect of the I/O data format (FP16 rounding, INT
          quantization grid, ...) applied to operator inputs and outputs *)
  exp_shifted : float array -> float array;
      (** [exp (x_i - max_j x_j)] — the softmax numerator *)
  gelu : float array -> float array;
  silu : float array -> float array;
  relu : float array -> float array;
  sin : float -> float;
  cos : float -> float;
  div : float -> float -> float;
  isqrt : float -> float;
}

val exact : t
(** Float64 software reference (exact Phi for GeLU). *)

val fp16_reference : t
(** The paper's "FP16" baseline rows: exact operator mathematics (FP32
    accumulation, as cuBLAS/cuDNN provide) behind FP16 I/O. *)

val ours_fp : ?order:int -> unit -> t
(** PICACHU algorithm, FP16 I/O, FP32 intermediates, Taylor order [order]
    (default 6), GeLU through the CoT LUT. *)

val ours_int : ?order:int -> unit -> t
(** PICACHU algorithm, dynamic per-tensor INT16 I/O, fixed-point
    intermediates. [order] is accepted for interface symmetry; the fixed
    datapath uses order 6. *)

val ibert : t
(** I-BERT INT8 baseline. *)

val gemmlowp : t
(** gemmlowp fixed-point baseline (static INT16 grid). *)

val all_backends : t list
(** The five backends above, in presentation order. *)

val hybrid : name:string -> base:t -> damaged:t -> only:[ `Softmax | `Activation | `Norm | `Rope ] -> t
(** Attribution tool: [base] everywhere except the chosen operator family,
    which uses [damaged] — isolates how much each nonlinear operation
    contributes to end-to-end accuracy loss. *)

val gelu_tanh_exact : float -> float
(** Reference tanh-form GeLU (Table 1's definition) in float64. *)

val silu_exact : float -> float
