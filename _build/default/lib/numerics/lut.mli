(** Look-up tables for hard-to-compute functions.

    Compute Tiles (CoTs) carry small LUTs holding precomputed values of
    functions with no cheap arithmetic decomposition — the paper's example is
    the Gaussian CDF [Phi] used by exact GeLU (§4.2.1).  A table covers a
    clamped input range with uniformly spaced entries and linear
    interpolation between them; entries are stored rounded through FP16, the
    natural width of an on-tile ROM word. *)

type t

val create : ?entries:int -> lo:float -> hi:float -> (float -> float) -> t
(** Tabulate [f] over [lo, hi] with [entries] samples (default 1024).
    Requires [lo < hi] and [entries >= 2]. *)

val eval : t -> float -> float
(** Clamped linear interpolation. *)

val entries : t -> int
val size_bytes : t -> int
(** ROM footprint at 2 bytes/entry. *)

val gauss_cdf : t Lazy.t
(** Phi over [-6, 6] — the GeLU table shipped with the CoTs. *)

val gauss_cdf_exact : float -> float
(** Reference Phi(x) = (1 + erf(x/sqrt2))/2 computed in float64 (software
    reference for the table; erf via Abramowitz-Stegun 7.1.26 refined with a
    series fallback, accurate to ~1e-7 which is below FP16 resolution). *)
