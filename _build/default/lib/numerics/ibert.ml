let bits = 8
let ln_2 = 0.6931471805599453

let i_poly ~scale ~a ~b ~c q =
  (* a (x + b)^2 + c  with x = q * scale: q_b = floor(b / scale),
     q_c = floor(c / (a scale^2)); out = q_out * scale_out with
     scale_out = a scale^2  (I-BERT eq. 3). *)
  let q_b = int_of_float (Float.floor (b /. scale)) in
  let q_c = int_of_float (Float.floor (c /. (a *. scale *. scale))) in
  let q_out = ((q + q_b) * (q + q_b)) + q_c in
  (q_out, a *. scale *. scale)

let i_exp ~scale q =
  (* clamp to non-positive domain, decompose by ln2 in integer arithmetic *)
  let q = if q > 0 then 0 else q in
  let q_ln2 = int_of_float (Float.floor (ln_2 /. scale)) in
  let q_ln2 = Stdlib.max 1 q_ln2 in
  let z = -q / q_ln2 in
  let q_p = q + (z * q_ln2) (* p = q_p * scale in (-ln2, 0] *) in
  let q_l, scale_l = i_poly ~scale ~a:0.3585 ~b:1.353 ~c:0.344 q_p in
  let z = Stdlib.min z 30 in
  (q_l asr z, scale_l)

let i_erf ~scale q =
  let a = -0.2888 and b = -1.769 in
  let sign = if q < 0 then -1 else 1 in
  let q_abs = abs q in
  let q_clip_limit = int_of_float (Float.floor (-.b /. scale)) in
  let q_clipped = Stdlib.min q_abs q_clip_limit in
  let q_poly, scale_poly = i_poly ~scale ~a ~b ~c:1.0 q_clipped in
  (sign * q_poly, scale_poly)

let i_sqrt n =
  if n < 0 then invalid_arg "Ibert.i_sqrt: negative";
  if n = 0 then 0
  else
    let x = ref n in
    let y = ref ((n + 1) / 2) in
    while !y < !x do
      x := !y;
      y := (!x + (n / !x)) / 2
    done;
    !x

(* I-BERT is a static post-training quantization scheme: activation scales
   are calibrated offline on typical data.  LLM activation outliers blow far
   past any such calibration range, and the INT8 grid saturates — the
   mechanism behind the paper's Table 2 collapse on LLaMA. *)
let calibrated_absmax = 8.0

let quantize_array xs =
  let scale = Quant.scale_for ~bits ~absmax:calibrated_absmax in
  (Array.map (fun x -> Quant.quantize_value ~bits ~scale x) xs, scale)

let exp_v xs =
  let q, scale = quantize_array xs in
  let q_max = Array.fold_left Stdlib.max min_int q in
  Array.map
    (fun qi ->
      let q_out, scale_out = i_exp ~scale (qi - q_max) in
      float_of_int q_out *. scale_out)
    q

let gelu_v xs =
  let q, scale = quantize_array xs in
  (* GeLU(x) = x * 0.5 (1 + erf(x / sqrt 2)) *)
  let inv_sqrt2 = 1.0 /. sqrt 2.0 in
  Array.map
    (fun qi ->
      let q_erf, scale_erf = i_erf ~scale:(scale *. inv_sqrt2) qi in
      let erf = float_of_int q_erf *. scale_erf in
      float_of_int qi *. scale *. 0.5 *. (1.0 +. erf))
    q

let sigmoid_v xs =
  let q, scale = quantize_array xs in
  Array.map
    (fun qi ->
      (* sigmoid(x) = exp(-|x|') route: for x >= 0, 1/(1+exp(-x)); else
         exp(x)/(1+exp(x)); both feed a non-positive argument to i-exp *)
      let q_neg = if qi >= 0 then -qi else qi in
      let q_e, scale_e = i_exp ~scale q_neg in
      let e = float_of_int q_e *. scale_e in
      let s = e /. (1.0 +. e) in
      if qi >= 0 then 1.0 -. s else s)
    q

let isqrt_scalar x =
  if x <= 0.0 then nan
  else
    (* fixed-point: represent x in Q32 fraction-free by scaling with 2^2k so
       the integer sqrt preserves k fractional bits *)
    let k = 12 in
    let xi = int_of_float (Float.round (x *. float_of_int (1 lsl (2 * k)))) in
    if xi <= 0 then nan
    else
      let s = i_sqrt xi in
      if s = 0 then nan else float_of_int (1 lsl k) /. float_of_int s
