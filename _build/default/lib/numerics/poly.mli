(** Polynomial evaluation helpers.

    The PICACHU algorithm decomposes nonlinear operators into Taylor
    polynomials (paper §4.1).  Polynomials are evaluated with Horner's scheme
    in FP, and with the completing-the-square rewrite in INT arithmetic: a
    quadratic [a + b x + c x^2] becomes [c (x + b/2c)^2 + (a - b^2/4c)], which
    needs only one multiply of quantized values per term pair (the I-BERT
    trick the paper adopts for its own integer path). *)

val horner : float array -> float -> float
(** [horner [|c0; c1; ...; cn|] x] = [c0 + c1 x + ... + cn x^n]. An empty
    coefficient array evaluates to 0. *)

val taylor_coeffs : f_derivatives:(int -> float) -> order:int -> float array
(** Coefficients [f^(k)(0)/k!] for [k = 0..order]. *)

type quadratic = { a : float; b : float; c : float }
(** [a + b x + c x^2]. *)

val complete_square : quadratic -> float * float * float
(** [(s, d, e)] with [a + b x + c x^2 = c * (x + d)^2 + e] (requires
    [c <> 0]); [s] = [c]. *)

val eval_quadratic_int :
  quadratic -> in_scale:float -> bits:int -> int -> int * float
(** Evaluate the quadratic on a quantized input [q] with scale [in_scale]
    using completing-the-square integer arithmetic: returns the output
    integer and its scale. Intermediates are saturated to [4*bits] to model
    the widened accumulators of the INT lanes. *)

val exp_taylor_coeffs : order:int -> float array
(** Taylor coefficients of [2^f] around 0 expressed in powers of [f]:
    [1, ln2, ln2^2/2, ...] (Table 3 step 4). *)

val log1p_taylor_coeffs : order:int -> float array
(** Coefficients of [log(1+m)]: [0, 1, -1/2, 1/3, ...]. *)

val sin_taylor : order:int -> float -> float
(** Odd-power Taylor polynomial of sin up to [t^order]. *)

val cos_taylor : order:int -> float -> float
(** Even-power Taylor polynomial of cos up to [t^order]. *)
