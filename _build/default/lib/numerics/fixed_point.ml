type fmt = { total_bits : int; frac_bits : int }

let fmt ~total_bits ~frac_bits =
  if total_bits < 2 || total_bits > 62 then invalid_arg "Fixed_point.fmt: total_bits";
  if frac_bits < 0 || frac_bits >= total_bits then
    invalid_arg "Fixed_point.fmt: frac_bits";
  { total_bits; frac_bits }

let q15 = { total_bits = 16; frac_bits = 15 }
let q31 = { total_bits = 32; frac_bits = 31 }
let max_int_value f = (1 lsl (f.total_bits - 1)) - 1
let min_int_value f = -(1 lsl (f.total_bits - 1))

let saturate f v =
  let hi = max_int_value f and lo = min_int_value f in
  if v > hi then hi else if v < lo then lo else v

let of_float f x =
  let scaled = x *. float_of_int (1 lsl f.frac_bits) in
  if Float.is_nan scaled then 0
  else saturate f (int_of_float (Float.round scaled))

let to_float f v = float_of_int v /. float_of_int (1 lsl f.frac_bits)
let round f x = to_float f (of_float f x)
let add f a b = saturate f (a + b)
let sub f a b = saturate f (a - b)

let mul f a b =
  (* 62-bit headroom is enough for two <=32-bit operands *)
  let prod = a * b in
  let half = 1 lsl (f.frac_bits - 1) in
  let rounded =
    if f.frac_bits = 0 then prod
    else if prod >= 0 then (prod + half) asr f.frac_bits
    else -((-prod + half) asr f.frac_bits)
  in
  saturate f rounded

let split x =
  let i = Float.floor x in
  (int_of_float i, x -. i)
