lib/numerics/fp16.ml: Int32
