lib/numerics/quant.ml: Array Float Picachu_tensor
