lib/numerics/ibert.ml: Array Float Quant Stdlib
