lib/numerics/fixed_point.ml: Float
