lib/numerics/taylor.ml: Fixed_point Float Fp16 Poly
