lib/numerics/gemmlowp.mli:
