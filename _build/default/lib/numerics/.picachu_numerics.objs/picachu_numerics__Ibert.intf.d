lib/numerics/ibert.mli:
