lib/numerics/int_ops.ml: Array Fixed_point Float Lazy Poly
