lib/numerics/lut.ml: Array Float Fp16 Stdlib
