lib/numerics/taylor.mli:
