lib/numerics/poly.mli:
