lib/numerics/fp16.mli:
