lib/numerics/quant.mli: Picachu_tensor
