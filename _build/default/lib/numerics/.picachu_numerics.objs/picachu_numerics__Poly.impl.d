lib/numerics/poly.ml: Array Float Quant Stdlib
