lib/numerics/approx.ml: Array Fixed_point Float Fp16 Gemmlowp Ibert Int_ops Lazy Lut Printf Quant Stdlib Taylor
