lib/numerics/lut.mli: Lazy
