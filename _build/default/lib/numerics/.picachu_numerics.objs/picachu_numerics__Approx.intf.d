lib/numerics/approx.mli:
