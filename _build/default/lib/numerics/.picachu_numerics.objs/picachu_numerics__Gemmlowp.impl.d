lib/numerics/gemmlowp.ml: Array Fixed_point Float Lazy Quant
