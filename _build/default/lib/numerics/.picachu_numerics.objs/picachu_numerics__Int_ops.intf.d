lib/numerics/int_ops.mli:
