type config = { order : int }

let default = { order = 6 }
let r32 = Fp16.round32
let log2_e = 1.4426950408889634
let ln_2 = 0.6931471805599453

let exp ?(cfg = default) x =
  if Float.is_nan x then nan
  else if x = infinity then infinity
  else if x = neg_infinity then 0.0
  else
    let t = r32 (log2_e *. x) in
    (* FP2FX split: t = i + f, f in [0,1) *)
    let i, f = Fixed_point.split t in
    (* 2^i is exact exponent manipulation; clamp to the FP32 exponent range *)
    if i > 128 then infinity
    else if i < -150 then 0.0
    else
      let pow2_i = Float.ldexp 1.0 i in
      let pow2_f = r32 (Poly.horner (Poly.exp_taylor_coeffs ~order:cfg.order) f) in
      r32 (pow2_i *. pow2_f)

let log ?(cfg = default) x =
  if Float.is_nan x || x < 0.0 then nan
  else if x = 0.0 then neg_infinity
  else if x = infinity then infinity
  else
    (* frexp yields m' in [0.5, 1); renormalize to x = 2^e * (1 + m), m in [0,1) *)
    let m', e' = Float.frexp x in
    let m = (2.0 *. m') -. 1.0 in
    let e = e' - 1 in
    (* the alternating series converges slowly near m = 1; fold m > sqrt2 - 1
       into the next binade so the polynomial argument stays small, which is
       the same normalization the FP2FX datapath applies *)
    let m, e =
      if m > 0.4142135623730951 then (((1.0 +. m) /. 2.0) -. 1.0, e + 1) else (m, e)
    in
    let log1p_m = r32 (Poly.horner (Poly.log1p_taylor_coeffs ~order:cfg.order) m) in
    r32 ((float_of_int e *. ln_2) +. log1p_m)

(* Range-reduce an angle into [-pi/2, pi/2] together with the sign flip that
   keeps sin(t) = sin(x) (Table 3). *)
let reduce_half_pi x =
  let two_pi = 2.0 *. Float.pi in
  let r = Float.rem x two_pi in
  let r = if r > Float.pi then r -. two_pi else if r < -.Float.pi then r +. two_pi else r in
  if r > Float.pi /. 2.0 then (Float.pi -. r, 1.0)
  else if r < -.(Float.pi /. 2.0) then (-.Float.pi -. r, 1.0)
  else (r, 0.0)

let sin ?(cfg = default) x =
  if Float.is_nan x || Float.abs x = infinity then nan
  else
    let t, _ = reduce_half_pi x in
    r32 (Poly.sin_taylor ~order:cfg.order t)

let cos ?(cfg = default) x =
  if Float.is_nan x || Float.abs x = infinity then nan
  else
    (* cos(x) = sin(x + pi/2); reuse the sin reduction but track the quadrant
       directly: reduce to [-pi/2, pi/2] with cos(t) = +-cos(x) *)
    let two_pi = 2.0 *. Float.pi in
    let r = Float.rem x two_pi in
    let r = if r > Float.pi then r -. two_pi else if r < -.Float.pi then r +. two_pi else r in
    let t, sign =
      if r > Float.pi /. 2.0 then (Float.pi -. r, -1.0)
      else if r < -.(Float.pi /. 2.0) then (-.Float.pi -. r, -1.0)
      else (r, 1.0)
    in
    r32 (sign *. Poly.cos_taylor ~order:cfg.order t)

let isqrt ?(iterations = 3) x =
  if x <= 0.0 || Float.is_nan x then nan
  else
    (* seed by halving the exponent, then Newton: y <- y (1.5 - x/2 y^2) *)
    let m, e = Float.frexp x in
    let k = e / 2 in
    let r = e - (2 * k) (* -1, 0 or 1 *) in
    let seed = Float.ldexp (1.0 /. sqrt m) (-k) in
    let seed =
      if r = 1 then seed /. sqrt 2.0 else if r = -1 then seed *. sqrt 2.0 else seed
    in
    let y = ref seed in
    for _ = 1 to iterations do
      y := r32 (!y *. (1.5 -. (0.5 *. x *. !y *. !y)))
    done;
    !y

let div a b = r32 (a /. b)

let sigmoid ?(cfg = default) x =
  (* guard the exp against overflow for very negative x *)
  if x >= 0.0 then div 1.0 (r32 (1.0 +. exp ~cfg (-.x)))
  else
    let e = exp ~cfg x in
    div e (r32 (1.0 +. e))

let tanh ?(cfg = default) x =
  if x > 15.0 then 1.0
  else if x < -15.0 then -1.0
  else
    let e2 = exp ~cfg (2.0 *. x) in
    div (r32 (e2 -. 1.0)) (r32 (e2 +. 1.0))
