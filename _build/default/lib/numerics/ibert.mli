(** I-BERT integer-only approximations (Kim et al., 2021) — baseline.

    I-BERT computes nonlinear functions on INT8-quantized activations with
    second-order polynomials:

    - i-exp: for [x <= 0], split [x = p - z ln2] with [p] in [(-ln2, 0]];
      [exp x = 2^-z L(p)], [L(p) = 0.3585 (p + 1.353)^2 + 0.344].
    - i-erf (for GeLU): [erf x ~ sgn x * (a (clip(|x|, b) + b')^2 + 1)] with
      the published coefficients; saturates beyond |x| = 1.769.
    - i-sqrt: integer Newton iteration.

    The paper's Table 2 shows these methods collapse on LLaMA-family models
    (PPL ~1e4): the INT8 activation grid cannot represent the heavy-tailed,
    outlier-dominated activations of modern LLMs, and the fixed quadratic has
    no accuracy headroom.  This module reproduces the method faithfully —
    integer arithmetic on (q, scale) pairs after INT8 quantization — so the
    collapse emerges rather than being hard-coded. *)

val bits : int
(** Activation bit width the method assumes (8). *)

val calibrated_absmax : float
(** The static calibration range (+-8): post-training INT8 schemes fix the
    activation grid offline, which is exactly what LLM outlier channels
    overflow. *)

val i_poly : scale:float -> a:float -> b:float -> c:float -> int -> int * float
(** [i_poly ~scale ~a ~b ~c q] evaluates [a (qs + b)^2 + c] in integer
    arithmetic by completing the square; returns (q', scale'). *)

val i_exp : scale:float -> int -> int * float
(** Integer exp for [q * scale <= 0]; positive inputs are clamped to 0. *)

val i_erf : scale:float -> int -> int * float
val i_sqrt : int -> int
(** Integer square root by Newton iteration (floor). *)

(* Tensor-level entry points used by the approximation backend: each
   quantizes its input to INT8 per-tensor, runs the integer method, and
   dequantizes. *)

val exp_v : float array -> float array
(** Element-wise exp of (x - max x), the softmax numerator I-BERT computes. *)

val gelu_v : float array -> float array
val sigmoid_v : float array -> float array
(** Derived from i-exp (I-BERT has no native sigmoid; this is how one must
    port it to SiLU/SwiGLU models). *)

val isqrt_scalar : float -> float
(** 1/sqrt via i-sqrt on a fixed-point integer representation. *)
