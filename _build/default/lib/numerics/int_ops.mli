(** Integer datapath for the PICACHU algorithm (paper §4.1 + §4.2.2).

    These are the same Table 3 decompositions as {!Taylor}, but with every
    intermediate held in a fixed-point register: inputs in Q16.16, polynomial
    accumulators in Q2.30, and outputs reconstructed by exact exponent
    shifts.  Horner steps use fixed-point multiplies with round-to-nearest,
    mirroring the widened INT lanes of a tile (two 16-bit lanes fused for
    32-bit arithmetic).

    Functions take and return [float] for composability: the caller is
    responsible for quantizing tensor data through INT16/INT32 first (see
    {!Quant.roundtrip}); these functions then model the *internal* integer
    arithmetic of the operator. *)

val exp : float -> float
val log : float -> float
(** Positive finite arguments; returns [nan] otherwise. *)

val sin : float -> float
val cos : float -> float
val reciprocal : float -> float
(** Pipelined integer divide (Newton-Raphson in Q30). *)

val div : float -> float -> float
val isqrt : float -> float
val sigmoid : float -> float
val tanh : float -> float
