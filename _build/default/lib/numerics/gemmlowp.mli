(** gemmlowp fixed-point approximations (Jacob & Warden, 2017) — baseline.

    gemmlowp's fixed-point math library computes [exp] on negative values in
    Q5.26: the input is split into quarter-units; the fractional remainder in
    [(-1/4, 0]] feeds a small rational/Taylor kernel, and each set bit of the
    quarter count multiplies by a precomputed constant [exp(-2^k/4)].
    Logistic and tanh are built on top.  Inputs are requantized to an INT16
    grid per tensor; the accuracy bottleneck the paper's Table 2 exposes on
    LLMs is the fixed-point kernels themselves (cubic-order polynomial,
    Q5.26 saturation): moderate PPL degradation, between FP16 and I-BERT. *)

val exp_on_negative : float -> float
(** [exp x] for [x <= 0] through the Q5.26 fixed-point pipeline; positive
    inputs are clamped to 0; values below -16 flush to 0 (the gemmlowp
    saturation). *)

val logistic : float -> float
(** Fixed-point sigmoid; input saturates at the Q5.26 bound. *)

val tanh : float -> float
(** Fixed-point tanh; input saturates at the Q5.26 bound. *)

val exp_v : float array -> float array
(** Softmax-style exp of (x - max x) on the static INT16 grid. *)

val sigmoid_v : float array -> float array
val tanh_v : float array -> float array
val gelu_v : float array -> float array
(** GeLU via the tanh form computed with fixed-point tanh. *)

val static_range : float
(** Saturation bound of the Q5.26 kernel inputs (16.0). *)
