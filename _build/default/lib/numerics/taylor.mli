(** The PICACHU nonlinear-operator algorithm (paper §4.1, Table 3).

    Each basic operator is decomposed so that the part fed to a Taylor
    polynomial lies in a small range:

    - [exp x]: compute [t = log2(e) * x], split [t] into integer [i] and
      fraction [f] in [0, 1) with the FP2FX unit, compute [2^i] exactly by
      exponent manipulation and [2^f] by a Taylor polynomial in [f], then
      multiply.
    - [log x]: extract exponent [e] and mantissa [m] ([x = 2^e * (1+m)],
      [m] in [0, 1)); [log x = (e + log2(1+m)) * ln 2] with [log2(1+m)]
      from the Taylor series of [log(1+m)].
    - [sin x] / [cos x]: range-reduce into [-pi/2, pi/2], then Taylor.
    - [isqrt]: Newton refinement seeded by exponent halving — the "standard
      method from GNU libc" the paper cites; it runs outside the hot loops.

    [order] is the number of the highest polynomial power retained; it is the
    user-defined precision knob of §3.2.3.  Every intermediate step is rounded
    through FP32 ([Fp16.round32]) to model the CGRA's internal format. *)

type config = { order : int }

val default : config
(** Order 6: the operating point used for the headline accuracy results. *)

val exp : ?cfg:config -> float -> float
val log : ?cfg:config -> float -> float
(** Natural log; requires a positive, finite argument (returns [nan]
    otherwise, like the libm convention for negatives and [-inf] at 0). *)

val sin : ?cfg:config -> float -> float
val cos : ?cfg:config -> float -> float
val isqrt : ?iterations:int -> float -> float
(** [1 / sqrt x] for positive [x]; [iterations] Newton steps (default 3). *)

val div : float -> float -> float
(** Division is implemented directly in a pipelined FU (§4.1); modelled as an
    FP32-rounded divide. *)

val sigmoid : ?cfg:config -> float -> float
(** [1 / (1 + exp (-x))], built from the exp and div operators above — the
    composition used by SiLU/SwiGLU. *)

val tanh : ?cfg:config -> float -> float
(** Built from exp per Table 1's GeLU definition. *)
