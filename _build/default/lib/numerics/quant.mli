(** Symmetric integer quantization.

    A quantized tensor is a pair of an integer array and a single scale:
    [x ~ scale * q] with [q] saturated to the signed range of [bits].  This is
    the representation the INT16/INT32 paths of the PICACHU algorithm operate
    on (paper §4.1), and also what the I-BERT baseline assumes. *)

module Tensor = Picachu_tensor.Tensor

type qtensor = { q : int array; scale : float; bits : int }

val scale_for : bits:int -> absmax:float -> float
(** The scale mapping [absmax] to the top of the signed [bits]-bit range. *)

val quantize : bits:int -> Tensor.t -> qtensor
(** Per-tensor symmetric quantization using the tensor's own absmax (a zero
    tensor quantizes with scale 1). *)

val quantize_with_scale : bits:int -> scale:float -> Tensor.t -> qtensor
(** Quantize against a caller-chosen scale (saturating); used to model
    calibration mismatch, the failure mode of fixed-range baselines. *)

val dequantize : qtensor -> Tensor.t
val saturating_cast : bits:int -> int -> int
val quantize_value : bits:int -> scale:float -> float -> int
val roundtrip : bits:int -> Tensor.t -> Tensor.t
(** [dequantize (quantize t)] — the value-level effect of the format. *)

val requantize : qtensor -> new_scale:float -> qtensor
(** Rescale the integer representation to a new scale (rounding). *)
