(** IEEE 754 binary16 codec.

    PICACHU's CGRA accepts FP16 inputs and converts them to FP32 for
    intermediate computation (paper §4.2.1).  This module provides the
    round-trip used to model that data format: encode a float64 to the nearest
    binary16 (round-to-nearest-even, with overflow to infinity and gradual
    underflow to subnormals) and decode back. *)

val of_float : float -> int
(** [of_float x] is the 16-bit encoding (0..0xFFFF). *)

val to_float : int -> float
(** [to_float bits] decodes; only the low 16 bits are read. *)

val round : float -> float
(** [round x] = [to_float (of_float x)] — quantize a value through FP16. *)

val round32 : float -> float
(** Quantize through IEEE binary32 (FP32), the CGRA's intermediate format. *)

val max_value : float
(** Largest finite FP16 value (65504). *)

val epsilon : float
(** FP16 machine epsilon (2^-10). *)
