let max_value = 65504.0
let epsilon = 1.0 /. 1024.0

(* Conversion goes through the binary32 encoding: float64 -> float32 (which
   OCaml's Int32.bits_of_float performs with correct rounding) -> binary16 with
   round-to-nearest-even, following the usual truncate-and-round algorithm on
   the bit patterns. *)
let of_float x =
  let bits32 = Int32.bits_of_float x in
  let b = Int32.to_int (Int32.shift_right_logical bits32 16) land 0xFFFF in
  let sign = b land 0x8000 in
  let u = Int32.to_int (Int32.logand bits32 0x7FFFFFFFl) in
  if u >= 0x7F800000 then
    (* Inf / NaN *)
    if u > 0x7F800000 then sign lor 0x7E00 (* quiet NaN *) else sign lor 0x7C00
  else
    let exp32 = (u lsr 23) - 127 in
    let mant32 = u land 0x7FFFFF in
    let exp16 = exp32 + 15 in
    if exp16 >= 0x1F then sign lor 0x7C00 (* overflow -> inf *)
    else if exp16 <= 0 then
      if exp16 < -10 then sign (* underflow -> signed zero *)
      else
        (* subnormal: shift the implicit-1 mantissa right *)
        let mant = mant32 lor 0x800000 in
        let shift = 14 - exp16 in
        let halfway = 1 lsl (shift - 1) in
        let rounded =
          let q = mant lsr shift in
          let rem = mant land ((1 lsl shift) - 1) in
          if rem > halfway || (rem = halfway && q land 1 = 1) then q + 1 else q
        in
        sign lor rounded
    else
      (* normal: round 23-bit mantissa to 10 bits, round-to-nearest-even *)
      let q = mant32 lsr 13 in
      let rem = mant32 land 0x1FFF in
      let rounded =
        if rem > 0x1000 || (rem = 0x1000 && q land 1 = 1) then q + 1 else q
      in
      let v = (exp16 lsl 10) + rounded in
      (* mantissa carry may bump the exponent; the addition handles it, but it
         can also overflow to inf which the [land] below preserves *)
      if v >= 0x7C00 then sign lor 0x7C00 else sign lor v

let to_float bits =
  let bits = bits land 0xFFFF in
  let sign = if bits land 0x8000 <> 0 then -1.0 else 1.0 in
  let exp = (bits lsr 10) land 0x1F in
  let mant = bits land 0x3FF in
  if exp = 0x1F then if mant = 0 then sign *. infinity else nan
  else if exp = 0 then sign *. (float_of_int mant /. 1024.0) *. (2.0 ** -14.0)
  else sign *. (1.0 +. (float_of_int mant /. 1024.0)) *. (2.0 ** float_of_int (exp - 15))

let round x = to_float (of_float x)
let round32 x = Int32.float_of_bits (Int32.bits_of_float x)
