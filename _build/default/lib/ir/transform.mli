(** Loop transformations (paper §4.3, "Loop Transformations").

    - {!unroll}: replicate the loop body UF times, chaining reduction
      accumulators through the copies and stepping memory offsets, so the DFG
      grows and CGRA utilization rises (Figure 7a's UF knob).
    - {!vectorize}: mark the loop as operating on [vf]-wide lanes (the INT16
      mode of §4.2.2); non-vectorizable divisions are split into one node per
      lane, while control ops stay scalar — which is why measured vector
      speedup stays below the theoretical 4x (§5.3.3). *)

val unroll : int -> Kernel.loop -> Kernel.loop
(** [unroll uf loop]. Requires [uf >= 1] and [loop.step = 1]; [uf = 1] is the
    identity. *)

val vectorize : int -> Kernel.loop -> Kernel.loop
(** [vectorize vf loop]. Requires [vf >= 1]. *)

val unroll_kernel : int -> Kernel.t -> Kernel.t
(** Unroll every loop of the kernel. *)

val vectorize_kernel : int -> Kernel.t -> Kernel.t
