(** Operation algebra of the kernel IR.

    The IR mirrors the LLVM-IR level the PICACHU compiler operates at
    (paper §4.3): scalar SSA operations inside single-level loops, with
    control flow (the loop back-edge) kept explicit because the induction
    update and exit branch occupy CGRA resources like any other node —
    this is why [phi+add] and [cmp+br] appear in every kernel of Table 4.

    Fused opcodes are the Table 4 patterns; they are produced by the DFG
    fusion pass, never authored directly. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** pipelined FU; not vectorizable (§5.3.3) *)
  | Max
  | Min

type unop = Neg | Abs | Floor
(** [Floor] exists so the *baseline* CGRA can split a value into integer and
    fractional parts without the FP2FX special unit. *)

type cmpop = Lt | Le | Gt | Ge | Eq | Ne

type fused =
  | Phi_add_add
  | Phi_add
  | Add_add
  | Cmp_sel
  | Mul_add_add
  | Mul_add
  | Cmp_br

type t =
  | Const of float
  | Bin of binop
  | Un of unop
  | Cmp of cmpop
  | Select  (** args: cond, if-true, if-false *)
  | Phi  (** args: init, loop-carried next (distance-1 back edge) *)
  | Load of string  (** load current element of the named stream *)
  | Store of string  (** store to the named output stream *)
  | Input of string  (** loop-invariant scalar live-in *)
  | Fp2fx_int  (** FP2FX special unit: integer part *)
  | Fp2fx_frac  (** FP2FX special unit: fractional part in [0,1) *)
  | Shift_exp  (** args: x, k — computes x * 2^round(k) by exponent add *)
  | Lut of string  (** CoT look-up table evaluation *)
  | Br  (** loop back-edge branch; arg: exit condition *)
  | Fused of fused

val name : t -> string
(** Short mnemonic, e.g. ["mul+add"]. *)

val latency : t -> int
(** FU latency in cycles (all 1 except [Div] = 4). *)

val is_memory : t -> bool
(** Loads and stores — constrained to memory-port tiles. *)

val is_compute : t -> bool
(** True for every op except memory accesses, [Const] and [Input] — the
    numerator of the paper's DFG-level computational intensity (§3.1). *)

val is_control : t -> bool
(** [Phi], [Br] and their fusions — the non-vectorizable ops. *)

val is_vectorizable : t -> bool
(** False for control ops and [Div] (§5.3.3). *)

val fused_name : fused -> string
(** e.g. ["mul+add+add"]. *)

val fused_members : fused -> t list
(** The primitive opcodes a fused node stands for. *)

val pp : Format.formatter -> t -> unit
