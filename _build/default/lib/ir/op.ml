type binop = Add | Sub | Mul | Div | Max | Min
type unop = Neg | Abs | Floor
type cmpop = Lt | Le | Gt | Ge | Eq | Ne

type fused =
  | Phi_add_add
  | Phi_add
  | Add_add
  | Cmp_sel
  | Mul_add_add
  | Mul_add
  | Cmp_br

type t =
  | Const of float
  | Bin of binop
  | Un of unop
  | Cmp of cmpop
  | Select
  | Phi
  | Load of string
  | Store of string
  | Input of string
  | Fp2fx_int
  | Fp2fx_frac
  | Shift_exp
  | Lut of string
  | Br
  | Fused of fused

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Max -> "max"
  | Min -> "min"

let fused_name = function
  | Phi_add_add -> "phi+add+add"
  | Phi_add -> "phi+add"
  | Add_add -> "add+add"
  | Cmp_sel -> "cmp+select"
  | Mul_add_add -> "mul+add+add"
  | Mul_add -> "mul+add"
  | Cmp_br -> "cmp+br"

let name = function
  | Const _ -> "const"
  | Bin b -> binop_name b
  | Un Neg -> "neg"
  | Un Abs -> "abs"
  | Un Floor -> "floor"
  | Cmp _ -> "cmp"
  | Select -> "select"
  | Phi -> "phi"
  | Load s -> "load." ^ s
  | Store s -> "store." ^ s
  | Input s -> "input." ^ s
  | Fp2fx_int -> "fp2fx.i"
  | Fp2fx_frac -> "fp2fx.f"
  | Shift_exp -> "shexp"
  | Lut s -> "lut." ^ s
  | Br -> "br"
  | Fused f -> fused_name f

let latency = function Bin Div -> 4 | _ -> 1
let is_memory = function Load _ | Store _ -> true | _ -> false

let is_compute = function
  | Load _ | Store _ | Const _ | Input _ -> false
  | _ -> true

let is_control = function
  | Phi | Br | Fused (Phi_add | Phi_add_add | Cmp_br) -> true
  | _ -> false

let is_vectorizable op = (not (is_control op)) && op <> Bin Div

let fused_members = function
  | Phi_add_add -> [ Phi; Bin Add; Bin Add ]
  | Phi_add -> [ Phi; Bin Add ]
  | Add_add -> [ Bin Add; Bin Add ]
  | Cmp_sel -> [ Cmp Lt; Select ]
  | Mul_add_add -> [ Bin Mul; Bin Add; Bin Add ]
  | Mul_add -> [ Bin Mul; Bin Add ]
  | Cmp_br -> [ Cmp Lt; Br ]

let pp fmt op = Format.pp_print_string fmt (name op)
