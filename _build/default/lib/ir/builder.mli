(** Imperative construction of kernel loops.

    The builder issues dense ids, wires the induction skeleton
    (index phi, increment, exit compare, branch) that every loop carries, and
    resolves phi back edges once the loop-carried value is known.  It also
    provides the operator macro-expansions of §4.1: [exp_taylor],
    [sin_taylor], [cos_taylor] emit the Table 3 decompositions as primitive
    instructions (with or without the FP2FX special unit, so both the PICACHU
    and the baseline variants of a kernel can be produced from one
    description). *)

type t

val create : ?use_fp2fx:bool -> unit -> t
(** [use_fp2fx] (default true) selects between the FP2FX special-unit split
    and the floor-based fallback used by the baseline CGRA. *)

val const : t -> float -> int
(** Constants and scalar inputs are hash-consed: requesting the same value or
    name twice returns the same node. *)

val input : t -> string -> int
val iv : t -> int
(** The induction variable (a phi). *)

val load : t -> string -> int
val store : t -> string -> int -> unit
val bin : t -> Op.binop -> int -> int -> int
val add : t -> int -> int -> int
val sub : t -> int -> int -> int
val mul : t -> int -> int -> int
val div : t -> int -> int -> int
val fmax : t -> int -> int -> int
val fmin : t -> int -> int -> int
val un : t -> Op.unop -> int -> int
val cmp : t -> Op.cmpop -> int -> int -> int
val select : t -> int -> int -> int -> int
val lut : t -> string -> int -> int

val phi : t -> init:int -> int
(** A loop-carried value; complete it with {!set_phi_next}. *)

val set_phi_next : t -> int -> int -> unit
(** [set_phi_next b phi_id next_id]. *)

val reduce : t -> Op.binop -> init:int -> (t -> int -> int) -> int * int
(** [reduce b op ~init f] builds the accumulator idiom
    [acc = phi init (op acc (f acc))]; returns [(phi_id, next_id)]. The
    callback receives the phi id.  For simple reductions prefer
    {!reduce_simple}. *)

val reduce_simple : t -> Op.binop -> init:int -> int -> int * int
(** [reduce_simple b op ~init v] is [acc = phi init (op acc v)]. *)

val exp_taylor : t -> order:int -> int -> int
(** Emit the Table 3 exponential: scale by log2(e), FP2FX split (or
    floor-based split), Horner polynomial in the fraction, exponent shift. *)

val sin_taylor : t -> order:int -> int -> int
(** Odd Horner polynomial; assumes the argument is already range-reduced
    (RoPE angles are). *)

val cos_taylor : t -> order:int -> int -> int

val sigmoid_taylor : t -> order:int -> int -> int
(** [1 / (1 + exp (-x))] via {!exp_taylor} and a pipelined divide. *)

val finish :
  t ->
  label:string ->
  ?pre:(string * Kernel.sexpr) list ->
  ?reduction:bool ->
  ?exports:(string * int) list ->
  trip_input:string ->
  unit ->
  Kernel.loop
(** Close the loop: append the induction increment, the exit compare against
    scalar input [trip_input], and the branch. *)
