lib/ir/interp.mli: Kernel Picachu_numerics
