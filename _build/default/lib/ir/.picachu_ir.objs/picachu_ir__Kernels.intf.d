lib/ir/kernels.mli: Kernel
