lib/ir/kernel.ml: Format Instr List Op Printf
