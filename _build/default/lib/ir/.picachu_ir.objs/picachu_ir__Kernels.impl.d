lib/ir/kernels.ml: Builder Float Kernel List Op
