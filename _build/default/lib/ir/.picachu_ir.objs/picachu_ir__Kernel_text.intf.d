lib/ir/kernel_text.mli: Kernel
