lib/ir/transform.mli: Kernel
