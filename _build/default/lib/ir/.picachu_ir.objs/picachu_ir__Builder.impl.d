lib/ir/builder.ml: Array Hashtbl Instr Kernel List Op Picachu_numerics
