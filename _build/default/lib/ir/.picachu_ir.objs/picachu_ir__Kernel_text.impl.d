lib/ir/kernel_text.ml: Buffer Instr Kernel List Op Printf String
