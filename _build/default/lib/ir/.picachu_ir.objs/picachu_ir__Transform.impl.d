lib/ir/transform.ml: Array Instr Kernel List Op
