lib/ir/kernel.mli: Format Instr Op
