lib/ir/instr.ml: Format List Op
