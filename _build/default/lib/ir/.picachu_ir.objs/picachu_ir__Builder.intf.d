lib/ir/builder.mli: Kernel Op
