lib/ir/op.ml: Format
