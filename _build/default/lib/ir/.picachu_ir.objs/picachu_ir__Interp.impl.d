lib/ir/interp.ml: Array Float Hashtbl Instr Kernel Lazy List Op Picachu_numerics Printf
