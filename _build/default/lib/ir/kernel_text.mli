(** Textual kernel format.

    A stable, human-writable serialization of {!Kernel.t}, so kernels can be
    authored, versioned and exchanged without writing OCaml — the role the
    paper's "predefined kernel codes written in C++" play in its toolchain.

    Shape of the format (see {!to_string} output for any library kernel):

    {v
    kernel softmax RE
    inputs x
    outputs e y
    scalars n
    loop softmax.1 reduction step=1 vw=1
      export m = %5
      %0 = const 0.
      %1 = phi %0 %7
      %2 = load x %1
      ...
    endloop
    endkernel
    v}

    Inter-loop scalar glue uses fully parenthesized expressions:
    [pre mu = (sum / n)], [pre inv = isqrt((v + 0.00001))].

    Fused opcodes are a DFG-level artifact and are not part of the format. *)

exception Parse_error of string
(** Carries a line number and a description. *)

val to_string : Kernel.t -> string

val of_string : string -> Kernel.t
(** Parses and validates; raises {!Parse_error} on malformed input and on
    kernels that fail {!Kernel.validate}. *)
