type t = { id : int; op : Op.t; args : int list; offset : int }

let make ?(offset = 0) ~id ~op ~args () = { id; op; args; offset }

let pp fmt i =
  Format.fprintf fmt "%%%d = %a" i.id Op.pp i.op;
  List.iter (fun a -> Format.fprintf fmt " %%%d" a) i.args;
  if i.offset <> 0 then Format.fprintf fmt " [+%d]" i.offset
