exception Parse_error of string

let fail line fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" line s))) fmt

(* ------------------------------------------------------------- printing *)

let binop_text = function
  | Op.Add -> "add"
  | Op.Sub -> "sub"
  | Op.Mul -> "mul"
  | Op.Div -> "div"
  | Op.Max -> "max"
  | Op.Min -> "min"

let cmp_text = function
  | Op.Lt -> "cmp.lt"
  | Op.Le -> "cmp.le"
  | Op.Gt -> "cmp.gt"
  | Op.Ge -> "cmp.ge"
  | Op.Eq -> "cmp.eq"
  | Op.Ne -> "cmp.ne"

let op_text = function
  | Op.Const v -> Printf.sprintf "const %h" v
  | Op.Input s -> "input " ^ s
  | Op.Bin b -> binop_text b
  | Op.Un Op.Neg -> "neg"
  | Op.Un Op.Abs -> "abs"
  | Op.Un Op.Floor -> "floor"
  | Op.Cmp c -> cmp_text c
  | Op.Select -> "select"
  | Op.Phi -> "phi"
  | Op.Load s -> "load " ^ s
  | Op.Store s -> "store " ^ s
  | Op.Fp2fx_int -> "fp2fx.i"
  | Op.Fp2fx_frac -> "fp2fx.f"
  | Op.Shift_exp -> "shexp"
  | Op.Lut s -> "lut " ^ s
  | Op.Br -> "br"
  | Op.Fused _ -> invalid_arg "Kernel_text: fused opcodes are not serializable"

let rec sexpr_text = function
  | Kernel.Svar s -> s
  | Kernel.Sconst v -> Printf.sprintf "%h" v
  | Kernel.Sbin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (sexpr_text a) (binop_text op) (sexpr_text b)
  | Kernel.Sisqrt e -> Printf.sprintf "isqrt(%s)" (sexpr_text e)

let loop_text (l : Kernel.loop) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "loop %s%s step=%d vw=%d\n" l.Kernel.label
       (if l.Kernel.reduction then " reduction" else "")
       l.Kernel.step l.Kernel.vector_width);
  List.iter
    (fun (name, e) -> Buffer.add_string buf (Printf.sprintf "  pre %s = %s\n" name (sexpr_text e)))
    l.Kernel.pre;
  List.iter
    (fun (name, id) -> Buffer.add_string buf (Printf.sprintf "  export %s = %%%d\n" name id))
    l.Kernel.exports;
  List.iter
    (fun (i : Instr.t) ->
      Buffer.add_string buf (Printf.sprintf "  %%%d = %s" i.Instr.id (op_text i.Instr.op));
      List.iter (fun a -> Buffer.add_string buf (Printf.sprintf " %%%d" a)) i.Instr.args;
      if i.Instr.offset <> 0 then Buffer.add_string buf (Printf.sprintf " +%d" i.Instr.offset);
      Buffer.add_char buf '\n')
    l.Kernel.body;
  Buffer.add_string buf "endloop\n";
  Buffer.contents buf

let to_string (k : Kernel.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "kernel %s %s\n" k.Kernel.name
       (match k.Kernel.klass with Kernel.EO -> "EO" | Kernel.RE -> "RE"));
  let names kw = function
    | [] -> ()
    | l -> Buffer.add_string buf (kw ^ " " ^ String.concat " " l ^ "\n")
  in
  names "inputs" k.Kernel.inputs;
  names "outputs" k.Kernel.outputs;
  names "scalars" k.Kernel.scalar_inputs;
  List.iter (fun l -> Buffer.add_string buf (loop_text l)) k.Kernel.loops;
  Buffer.add_string buf "endkernel\n";
  Buffer.contents buf

(* -------------------------------------------------------------- parsing *)

let tokens_of_line line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_ref line tok =
  if String.length tok < 2 || tok.[0] <> '%' then fail line "expected %%<id>, got %s" tok
  else
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some v -> v
    | None -> fail line "bad instruction reference %s" tok

let parse_float line tok =
  match float_of_string_opt tok with
  | Some v -> v
  | None -> fail line "bad number %s" tok

let binop_of_text = function
  | "add" -> Some Op.Add
  | "sub" -> Some Op.Sub
  | "mul" -> Some Op.Mul
  | "div" -> Some Op.Div
  | "max" -> Some Op.Max
  | "min" -> Some Op.Min
  | _ -> None

let cmp_of_text = function
  | "cmp.lt" -> Some Op.Lt
  | "cmp.le" -> Some Op.Le
  | "cmp.gt" -> Some Op.Gt
  | "cmp.ge" -> Some Op.Ge
  | "cmp.eq" -> Some Op.Eq
  | "cmp.ne" -> Some Op.Ne
  | _ -> None

(* Expression parser for the pre-scalar glue: fully parenthesized binary
   expressions, isqrt(...), numbers, identifiers. *)
let parse_sexpr line text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let skip_ws () =
    while !pos < n && text.[!pos] = ' ' do
      incr pos
    done
  in
  let ident_or_number () =
    let start = !pos in
    while
      !pos < n
      && (match text.[!pos] with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' | '+' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then fail line "expected identifier or number in expression";
    String.sub text start (!pos - start)
  in
  let rec expr () =
    skip_ws ();
    match peek () with
    | Some '(' ->
        incr pos;
        let a = expr () in
        skip_ws ();
        let op_tok = ident_or_number () in
        let op =
          match binop_of_text op_tok with
          | Some o -> o
          | None -> fail line "unknown operator %s in expression" op_tok
        in
        let b = expr () in
        skip_ws ();
        (match peek () with
        | Some ')' -> incr pos
        | _ -> fail line "expected ) in expression");
        Kernel.Sbin (op, a, b)
    | Some _ ->
        let tok = ident_or_number () in
        if tok = "isqrt" then begin
          skip_ws ();
          match peek () with
          | Some '(' ->
              incr pos;
              let e = expr () in
              skip_ws ();
              (match peek () with
              | Some ')' -> incr pos
              | _ -> fail line "expected ) after isqrt argument");
              Kernel.Sisqrt e
          | _ -> fail line "expected ( after isqrt"
        end
        else
          (match float_of_string_opt tok with
          | Some v -> Kernel.Sconst v
          | None -> Kernel.Svar tok)
    | None -> fail line "unexpected end of expression"
  in
  let e = expr () in
  skip_ws ();
  if !pos <> n then fail line "trailing characters in expression: %s" (String.sub text !pos (n - !pos));
  e

let parse_instr line toks =
  match toks with
  | dest :: "=" :: op_tok :: rest ->
      let id = parse_ref line dest in
      let take_refs rest =
        let rec go args offset = function
          | [] -> (List.rev args, offset)
          | tok :: t when String.length tok > 0 && tok.[0] = '%' ->
              go (parse_ref line tok :: args) offset t
          | tok :: t when String.length tok > 1 && tok.[0] = '+' -> (
              match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
              | Some o -> go args o t
              | None -> fail line "bad offset %s" tok)
          | tok :: _ -> fail line "unexpected token %s" tok
        in
        go [] 0 rest
      in
      let op, rest =
        match op_tok with
        | "const" -> (
            match rest with
            | v :: t -> (Op.Const (parse_float line v), t)
            | [] -> fail line "const needs a value")
        | "input" -> (
            match rest with
            | s :: t -> (Op.Input s, t)
            | [] -> fail line "input needs a name")
        | "load" -> (
            match rest with
            | s :: t -> (Op.Load s, t)
            | [] -> fail line "load needs a stream")
        | "store" -> (
            match rest with
            | s :: t -> (Op.Store s, t)
            | [] -> fail line "store needs a stream")
        | "lut" -> (
            match rest with
            | s :: t -> (Op.Lut s, t)
            | [] -> fail line "lut needs a table name")
        | "neg" -> (Op.Un Op.Neg, rest)
        | "abs" -> (Op.Un Op.Abs, rest)
        | "floor" -> (Op.Un Op.Floor, rest)
        | "select" -> (Op.Select, rest)
        | "phi" -> (Op.Phi, rest)
        | "fp2fx.i" -> (Op.Fp2fx_int, rest)
        | "fp2fx.f" -> (Op.Fp2fx_frac, rest)
        | "shexp" -> (Op.Shift_exp, rest)
        | "br" -> (Op.Br, rest)
        | tok -> (
            match binop_of_text tok with
            | Some b -> (Op.Bin b, rest)
            | None -> (
                match cmp_of_text tok with
                | Some c -> (Op.Cmp c, rest)
                | None -> fail line "unknown opcode %s" tok))
      in
      let args, offset = take_refs rest in
      Instr.make ~offset ~id ~op ~args ()
  | _ -> fail line "expected %%<id> = <op> ..."

type loop_acc = {
  mutable label : string;
  mutable reduction : bool;
  mutable step : int;
  mutable vw : int;
  mutable pre : (string * Kernel.sexpr) list;
  mutable exports : (string * int) list;
  mutable body : Instr.t list;
}

let of_string text =
  let lines = String.split_on_char '\n' text in
  let name = ref "" and klass = ref Kernel.EO in
  let inputs = ref [] and outputs = ref [] and scalars = ref [] in
  let loops = ref [] in
  let current = ref None in
  let seen_kernel = ref false and seen_end = ref false in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if line = "" || (String.length line > 0 && line.[0] = '#') then ()
      else
        match (tokens_of_line line, !current) with
        | "kernel" :: n :: k :: [], None ->
            seen_kernel := true;
            name := n;
            klass :=
              (match k with
              | "EO" -> Kernel.EO
              | "RE" -> Kernel.RE
              | other -> fail lineno "unknown class %s" other)
        | "inputs" :: rest, None -> inputs := rest
        | "outputs" :: rest, None -> outputs := rest
        | "scalars" :: rest, None -> scalars := rest
        | "loop" :: label :: rest, None ->
            let acc =
              { label; reduction = false; step = 1; vw = 1; pre = []; exports = []; body = [] }
            in
            List.iter
              (fun tok ->
                if tok = "reduction" then acc.reduction <- true
                else if String.length tok > 5 && String.sub tok 0 5 = "step=" then
                  acc.step <-
                    (match int_of_string_opt (String.sub tok 5 (String.length tok - 5)) with
                    | Some v -> v
                    | None -> fail lineno "bad step")
                else if String.length tok > 3 && String.sub tok 0 3 = "vw=" then
                  acc.vw <-
                    (match int_of_string_opt (String.sub tok 3 (String.length tok - 3)) with
                    | Some v -> v
                    | None -> fail lineno "bad vw")
                else fail lineno "unknown loop attribute %s" tok)
              rest;
            current := Some acc
        | [ "endkernel" ], None -> seen_end := true
        | toks, None -> fail lineno "unexpected top-level line: %s" (String.concat " " toks)
        | [ "endloop" ], Some acc ->
            loops :=
              {
                Kernel.label = acc.label;
                pre = List.rev acc.pre;
                body = List.rev acc.body;
                reduction = acc.reduction;
                exports = List.rev acc.exports;
                step = acc.step;
                vector_width = acc.vw;
              }
              :: !loops;
            current := None
        | "pre" :: pname :: "=" :: rest, Some acc ->
            acc.pre <- (pname, parse_sexpr lineno (String.concat " " rest)) :: acc.pre
        | [ "export"; ename; "="; ref_tok ], Some acc ->
            acc.exports <- (ename, parse_ref lineno ref_tok) :: acc.exports
        | toks, Some acc -> acc.body <- parse_instr lineno toks :: acc.body)
    lines;
  if not !seen_kernel then raise (Parse_error "missing kernel header");
  if not !seen_end then raise (Parse_error "missing endkernel");
  if !current <> None then raise (Parse_error "unterminated loop");
  let k =
    {
      Kernel.name = !name;
      klass = !klass;
      loops = List.rev !loops;
      inputs = !inputs;
      outputs = !outputs;
      scalar_inputs = !scalars;
    }
  in
  match Kernel.validate k with
  | Ok () -> k
  | Error e -> raise (Parse_error ("validation: " ^ e))
