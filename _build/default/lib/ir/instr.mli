(** SSA instructions.

    An instruction's [args] are ids of other instructions in the same loop
    body.  The only legal forward (cyclic) reference is the second argument of
    a [Phi], which names the loop-carried value produced later in the body —
    the distance-1 back edge that determines the recurrence-constrained
    minimum initiation interval.

    [offset] is the static address offset of a [Load]/[Store] relative to the
    loop's base index; loop unrolling materializes copies with offsets
    0..UF-1 instead of spending FU slots on address arithmetic, matching
    post-increment addressing in the CGRA tiles. *)

type t = { id : int; op : Op.t; args : int list; offset : int }

val make : ?offset:int -> id:int -> op:Op.t -> args:int list -> unit -> t
val pp : Format.formatter -> t -> unit
