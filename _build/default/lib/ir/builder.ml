type pending = { mutable instrs : Instr.t list (* reverse order *) }

type t = {
  use_fp2fx : bool;
  p : pending;
  mutable next_id : int;
  mutable iv_id : int option;
  consts : (float, int) Hashtbl.t;
  inputs : (string, int) Hashtbl.t;
}

let create ?(use_fp2fx = true) () =
  {
    use_fp2fx;
    p = { instrs = [] };
    next_id = 0;
    iv_id = None;
    consts = Hashtbl.create 16;
    inputs = Hashtbl.create 16;
  }

let emit b op args =
  let id = b.next_id in
  b.next_id <- id + 1;
  b.p.instrs <- Instr.make ~id ~op ~args () :: b.p.instrs;
  id

let const b v =
  match Hashtbl.find_opt b.consts v with
  | Some id -> id
  | None ->
      let id = emit b (Op.Const v) [] in
      Hashtbl.add b.consts v id;
      id

let input b name =
  match Hashtbl.find_opt b.inputs name with
  | Some id -> id
  | None ->
      let id = emit b (Op.Input name) [] in
      Hashtbl.add b.inputs name id;
      id

let iv b =
  match b.iv_id with
  | Some id -> id
  | None ->
      let zero = const b 0.0 in
      (* next is patched in [finish] *)
      let id = emit b Op.Phi [ zero; zero ] in
      b.iv_id <- Some id;
      id

let load b name =
  let i = iv b in
  emit b (Op.Load name) [ i ]

let store b name v =
  let i = iv b in
  ignore (emit b (Op.Store name) [ i; v ])

let bin b op x y = emit b (Op.Bin op) [ x; y ]
let add b = bin b Op.Add
let sub b = bin b Op.Sub
let mul b = bin b Op.Mul
let div b = bin b Op.Div
let fmax b = bin b Op.Max
let fmin b = bin b Op.Min
let un b op x = emit b (Op.Un op) [ x ]
let cmp b op x y = emit b (Op.Cmp op) [ x; y ]
let select b c x y = emit b Op.Select [ c; x; y ]
let lut b name x = emit b (Op.Lut name) [ x ]
let phi b ~init = emit b Op.Phi [ init; init ]

let set_phi_next b phi_id next_id =
  b.p.instrs <-
    List.map
      (fun (i : Instr.t) ->
        if i.id = phi_id then
          match i.args with
          | [ init; _ ] -> { i with args = [ init; next_id ] }
          | _ -> i
        else i)
      b.p.instrs

let reduce b op ~init f =
  let p = phi b ~init in
  let v = f b p in
  let next = bin b op p v in
  set_phi_next b p next;
  (p, next)

let reduce_simple b op ~init v =
  let p = phi b ~init in
  let next = bin b op p v in
  set_phi_next b p next;
  (p, next)

(* Horner evaluation of sum coeffs.(k) x^k emitted as mul/add chains — the
   source of the mul+add fusion pattern in Table 4. *)
let horner b coeffs x =
  let n = Array.length coeffs in
  let acc = ref (const b coeffs.(n - 1)) in
  for k = n - 2 downto 0 do
    let m = mul b !acc x in
    acc := add b m (const b coeffs.(k))
  done;
  !acc

let exp_taylor b ~order x =
  let t = mul b x (const b 1.4426950408889634) in
  if b.use_fp2fx then begin
    let i_part = emit b Op.Fp2fx_int [ t ] in
    let f_part = emit b Op.Fp2fx_frac [ t ] in
    let poly = horner b (Picachu_numerics.Poly.exp_taylor_coeffs ~order) f_part in
    emit b Op.Shift_exp [ poly; i_part ]
  end
  else begin
    (* without the FP2FX unit the split costs a floor + subtract, and 2^i
       must be assembled separately (exponent-field construction on the
       integer pipe) before a final multiply *)
    let fl = un b Op.Floor t in
    let f_part = sub b t fl in
    let poly = horner b (Picachu_numerics.Poly.exp_taylor_coeffs ~order) f_part in
    let pow2_i = emit b Op.Shift_exp [ const b 1.0; fl ] in
    mul b poly pow2_i
  end

let sin_taylor b ~order x =
  (* t (1 - t^2/6 + t^4/120 - ...) with Horner in t^2 *)
  let coeffs =
    Array.init ((order + 1) / 2) (fun j ->
        let k = (2 * j) + 1 in
        let rec fact n = if n <= 1 then 1.0 else float_of_int n *. fact (n - 1) in
        (if j mod 2 = 0 then 1.0 else -1.0) /. fact k)
  in
  let t2 = mul b x x in
  let even = horner b coeffs t2 in
  mul b x even

let cos_taylor b ~order x =
  let coeffs =
    Array.init ((order / 2) + 1) (fun j ->
        let k = 2 * j in
        let rec fact n = if n <= 1 then 1.0 else float_of_int n *. fact (n - 1) in
        (if j mod 2 = 0 then 1.0 else -1.0) /. fact k)
  in
  let t2 = mul b x x in
  horner b coeffs t2

let sigmoid_taylor b ~order x =
  let neg = un b Op.Neg x in
  let e = exp_taylor b ~order neg in
  let denom = add b e (const b 1.0) in
  div b (const b 1.0) denom

let finish b ~label ?(pre = []) ?(reduction = false) ?(exports = []) ~trip_input () =
  (* induction skeleton: iv already emitted if any instruction used it;
     loops with no memory access still need it for the trip count *)
  let i = iv b in
  let one = const b 1.0 in
  let next = add b i one in
  set_phi_next b i next;
  let n = input b trip_input in
  let c = cmp b Op.Lt next n in
  ignore (emit b Op.Br [ c ]);
  {
    Kernel.label;
    pre;
    body = List.rev b.p.instrs;
    reduction;
    exports;
    step = 1;
    vector_width = 1;
  }
