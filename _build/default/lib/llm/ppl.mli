(** Perplexity-proxy evaluation (Tables 2 and 5).

    Wikitext2 is replaced by a synthetic token stream sampled from the
    float64-exact surrogate itself (temperature < 1, deterministic seed) —
    a stream the model genuinely predicts better than chance, so that
    damaged nonlinear operators raise the measured perplexity exactly the
    way broken LLM inference raises Wikitext2 PPL.  Absolute values are not
    comparable to the paper's (different model, different data); the
    *deltas* between backends are the reproduced quantity. *)

module Approx = Picachu_numerics.Approx

val nll : Surrogate.t -> Approx.t -> int array -> float
(** Mean next-token negative log likelihood (nats) over the stream;
    positions 1..n-1 are scored.  Degenerate (non-finite) logits score as
    uniform-over-vocab plus a penalty, mirroring how a destroyed model
    scores on real data. *)

val ppl : Surrogate.t -> Approx.t -> int array -> float
(** [exp (nll ...)], clamped to 1e9 to keep tables printable. *)

val evaluate :
  seed:int -> stream_len:int -> Surrogate.t -> Approx.t list ->
  (string * float) list
(** Convenience: sample one stream, score several backends; returns
    [(backend_name, ppl)]. *)
