module Registry = Picachu_nonlinear.Registry

type t = {
  peak_tflops : float;
  gemm_eff : float;
  hbm_gbs : float;
  nl_bw_eff : float;
  launch_s : float;
}

let a100 =
  {
    peak_tflops = 312.0;
    gemm_eff = 0.55;
    hbm_gbs = 2039.0;
    nl_bw_eff = 0.5;
    launch_s = 5e-6;
  }

(* Tensor-core efficiency degrades for skinny reductions and small tiles. *)
let shape_efficiency (g : Workload.gemm) =
  let k_f = Float.min 1.0 ((float_of_int g.k /. 4096.0) ** 0.3) in
  let mn_f = Float.min 1.0 ((float_of_int (Stdlib.min g.m g.n) /. 512.0) ** 0.25) in
  Float.max 0.05 (k_f *. mn_f)

let gemm_seconds t (g : Workload.gemm) =
  let flops = 2.0 *. float_of_int g.m *. float_of_int g.k *. float_of_int g.n in
  let eff = t.gemm_eff *. shape_efficiency g in
  let compute_s = flops /. (t.peak_tflops *. 1e12 *. eff) in
  (* skinny GEMMs (decode GEMVs) are weight-bandwidth bound *)
  let bytes = 2.0 *. float_of_int ((g.m * g.k) + (g.k * g.n) + (g.m * g.n)) in
  let memory_s = bytes /. (t.hbm_gbs *. 1e9 *. 0.8) in
  float_of_int g.count *. (Float.max compute_s memory_s +. t.launch_s)

(* Effective DRAM bytes per element, counting the multiple passes frameworks
   make: softmax = max/sub-exp/sum/divide over FP32 intermediates plus the
   attention-mask add; norms = reduce + normalize passes; GeLU/SiLU-family =
   the unfused elementwise chain; ReLU = a single FP16 pass; RoPE = the
   gather/rotate/interleave sequence. *)
let nl_bytes_per_element (nl : Workload.nl) =
  match nl.op with
  | Registry.Softmax -> 24.0
  | Registry.Layernorm | Registry.Rmsnorm -> 20.0
  | Registry.Gelu | Registry.Silu | Registry.Swiglu | Registry.Geglu -> 20.0
  | Registry.Relu -> 4.0
  | Registry.Rope -> 24.0

let launches_per_instance (nl : Workload.nl) =
  match nl.op with
  | Registry.Softmax -> 5
  | Registry.Layernorm | Registry.Rmsnorm -> 3
  | Registry.Gelu | Registry.Silu | Registry.Swiglu | Registry.Geglu -> 4
  | Registry.Relu -> 1
  | Registry.Rope -> 6

let nl_seconds t (nl : Workload.nl) =
  let elems = float_of_int (nl.rows * nl.dim) in
  let bytes = elems *. nl_bytes_per_element nl in
  let per_instance =
    bytes /. (t.hbm_gbs *. 1e9 *. t.nl_bw_eff)
    +. (float_of_int (launches_per_instance nl) *. t.launch_s)
  in
  float_of_int nl.nl_count *. per_instance

type breakdown = {
  gemm_s : float;
  softmax_s : float;
  norm_s : float;
  activation_s : float;
  rope_s : float;
  total_s : float;
}

let run t (w : Workload.t) =
  let gemm_s = List.fold_left (fun acc g -> acc +. gemm_seconds t g) 0.0 w.gemms in
  let acc_of tag =
    List.fold_left
      (fun acc (nl : Workload.nl) ->
        if nl.nl_tag = tag then acc +. nl_seconds t nl else acc)
      0.0 w.nls
  in
  let softmax_s = acc_of "softmax" in
  let norm_s = acc_of "norm" in
  let activation_s = acc_of "activation" in
  let rope_s = acc_of "rope" in
  {
    gemm_s;
    softmax_s;
    norm_s;
    activation_s;
    rope_s;
    total_s = gemm_s +. softmax_s +. norm_s +. activation_s +. rope_s;
  }

let nonlinear_fraction b =
  if b.total_s = 0.0 then 0.0 else (b.total_s -. b.gemm_s) /. b.total_s

let energy_j _t b = 300.0 *. b.total_s
