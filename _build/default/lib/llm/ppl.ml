module Approx = Picachu_numerics.Approx
module Tensor = Picachu_tensor.Tensor
module Rng = Picachu_tensor.Rng
module Nl = Picachu_nonlinear

let nll model backend tokens =
  let n = Array.length tokens in
  if n < 2 then invalid_arg "Ppl.nll: stream too short";
  let lg = Surrogate.logits model backend tokens in
  let vocab = Tensor.cols lg in
  let total = ref 0.0 in
  for pos = 0 to n - 2 do
    let row = Array.init vocab (fun j -> Tensor.get2 lg pos j) in
    let finite = Array.for_all (fun v -> Float.is_finite v) row in
    let loss =
      if not finite then log (float_of_int vocab) +. 5.0
      else
        let probs = Nl.Softmax.exact_row row in
        let p = probs.(tokens.(pos + 1)) in
        if p <= 0.0 || Float.is_nan p then log (float_of_int vocab) +. 5.0
        else -.log p
    in
    total := !total +. loss
  done;
  !total /. float_of_int (n - 1)

let ppl model backend tokens = Float.min 1e9 (exp (nll model backend tokens))

let evaluate ~seed ~stream_len model backends =
  let rng = Rng.create seed in
  let stream = Surrogate.sample model rng ~len:stream_len () in
  List.map (fun (b : Approx.t) -> (b.Approx.name, ppl model b stream)) backends
