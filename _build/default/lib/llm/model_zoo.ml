module Registry = Picachu_nonlinear.Registry

type ffn_kind = Gelu_ffn | Relu_ffn | Swiglu_ffn | Geglu_ffn
type norm_kind = Layernorm_norm | Rmsnorm_norm
type pos_kind = Learned_pos | Rope_pos

type t = {
  name : string;
  layers : int;
  d_model : int;
  heads : int;
  kv_heads : int;
  d_ffn : int;
  ffn : ffn_kind;
  norm : norm_kind;
  pos : pos_kind;
  vocab : int;
  attn_window : int option;
}

let d_head m = m.d_model / m.heads

let gpt2_xl =
  {
    name = "gpt2-xl";
    layers = 48;
    d_model = 1600;
    heads = 25;
    kv_heads = 25;
    d_ffn = 6400;
    ffn = Gelu_ffn;
    norm = Layernorm_norm;
    pos = Learned_pos;
    vocab = 50257;
    attn_window = None;
  }

let opt_6_7b =
  {
    name = "opt-6.7b";
    layers = 32;
    d_model = 4096;
    heads = 32;
    kv_heads = 32;
    d_ffn = 16384;
    ffn = Relu_ffn;
    norm = Layernorm_norm;
    pos = Learned_pos;
    vocab = 50272;
    attn_window = None;
  }

let opt_13b =
  {
    opt_6_7b with
    name = "opt-13b";
    layers = 40;
    d_model = 5120;
    heads = 40;
    kv_heads = 40;
    d_ffn = 20480;
  }

let llama2_7b =
  {
    name = "llama2-7b";
    layers = 32;
    d_model = 4096;
    heads = 32;
    kv_heads = 32;
    d_ffn = 11008;
    ffn = Swiglu_ffn;
    norm = Rmsnorm_norm;
    pos = Rope_pos;
    vocab = 32000;
    attn_window = None;
  }

let llama2_13b =
  {
    llama2_7b with
    name = "llama2-13b";
    layers = 40;
    d_model = 5120;
    heads = 40;
    kv_heads = 40;
    d_ffn = 13824;
  }

let bigbird =
  {
    name = "bigbird";
    layers = 24;
    d_model = 1024;
    heads = 16;
    kv_heads = 16;
    d_ffn = 4096;
    ffn = Gelu_ffn;
    norm = Layernorm_norm;
    pos = Learned_pos;
    vocab = 50358;
    attn_window = Some 512 (* 3 sliding + 2 global + random blocks of 64 *);
  }

let mistral_7b =
  {
    name = "mistral-7b";
    layers = 32;
    d_model = 4096;
    heads = 32;
    kv_heads = 8;
    d_ffn = 14336;
    ffn = Swiglu_ffn;
    norm = Rmsnorm_norm;
    pos = Rope_pos;
    vocab = 32000;
    attn_window = Some 4096;
  }

let falcon_7b =
  {
    name = "falcon-7b";
    layers = 32;
    d_model = 4544;
    heads = 71;
    kv_heads = 1;
    d_ffn = 18176;
    ffn = Gelu_ffn;
    norm = Layernorm_norm;
    pos = Rope_pos;
    vocab = 65024;
    attn_window = None;
  }

let all =
  [ gpt2_xl; opt_6_7b; opt_13b; bigbird; llama2_7b; llama2_13b; mistral_7b; falcon_7b ]
let by_name name = List.find (fun m -> m.name = name) all

let activation_op m =
  match m.ffn with
  | Gelu_ffn -> Registry.Gelu
  | Relu_ffn -> Registry.Relu
  | Swiglu_ffn -> Registry.Swiglu
  | Geglu_ffn -> Registry.Geglu

let norm_op m =
  match m.norm with
  | Layernorm_norm -> Registry.Layernorm
  | Rmsnorm_norm -> Registry.Rmsnorm
