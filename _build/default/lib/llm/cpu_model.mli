(** Host-CPU model for the Figure 8a baseline configuration: the systolic
    array still runs GEMM, but every nonlinear operation executes on the CPU
    (i7-11370H class), paying PCIe transfers both ways plus the CPU's scalar/
    AVX throughput on transcendental-heavy loops. *)

module Registry = Picachu_nonlinear.Registry

type t = {
  elems_per_s_exp : float;  (** softmax/GeLU/SiLU-class throughput *)
  elems_per_s_simple : float;  (** ReLU-class throughput *)
  elems_per_s_norm : float;
  elems_per_s_trig : float;  (** RoPE *)
  pcie_gbs : float;
  dispatch_s : float;  (** per-offloaded-op host round-trip *)
}

val i7_11370h : t
val nl_seconds : t -> Workload.nl -> float
val total_nl_seconds : t -> Workload.t -> float
