(** Architectural configurations of the LLMs the paper evaluates (§5.1:
    GPT2-XL, OPT-6.7B/13B, BigBird, LLaMA2-7B/13B).

    Only the shape parameters matter for the workload model; weights are
    never materialized at these sizes (the accuracy experiments use the
    surrogate models in {!Surrogate}). *)

type ffn_kind = Gelu_ffn | Relu_ffn | Swiglu_ffn | Geglu_ffn
type norm_kind = Layernorm_norm | Rmsnorm_norm
type pos_kind = Learned_pos | Rope_pos

type t = {
  name : string;
  layers : int;
  d_model : int;
  heads : int;
  kv_heads : int;
      (** key/value heads: equal to [heads] for MHA, fewer for GQA
          (Mistral), 1 for MQA (Falcon) *)
  d_ffn : int;  (** intermediate size (per gate for gated FFNs) *)
  ffn : ffn_kind;
  norm : norm_kind;
  pos : pos_kind;
  vocab : int;
  attn_window : int option;
      (** sliding/block-sparse attention span (BigBird, Mistral);
          [None] = full *)
}

val d_head : t -> int
val gpt2_xl : t
val opt_6_7b : t
val opt_13b : t
val llama2_7b : t
val llama2_13b : t
val bigbird : t
val mistral_7b : t
(** GQA (8 KV heads) + sliding-window attention + SwiGLU/RMSNorm/RoPE —
    the "upcoming" operation mix the paper's title anticipates. *)

val falcon_7b : t
(** Multi-query attention (1 KV head) + GeLU/LayerNorm/RoPE. *)

val all : t list
val by_name : string -> t
(** Raises [Not_found]. *)

val activation_op : t -> Picachu_nonlinear.Registry.opkind
val norm_op : t -> Picachu_nonlinear.Registry.opkind
