lib/llm/surrogate.mli: Model_zoo Picachu_numerics Picachu_tensor
