lib/llm/model_zoo.ml: List Picachu_nonlinear
