lib/llm/zero_shot.ml: Array Float List Picachu_nonlinear Picachu_numerics Picachu_tensor Surrogate
