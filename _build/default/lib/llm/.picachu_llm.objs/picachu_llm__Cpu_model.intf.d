lib/llm/cpu_model.mli: Picachu_nonlinear Workload
