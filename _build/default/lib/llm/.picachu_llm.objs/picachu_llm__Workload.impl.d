lib/llm/workload.ml: Format List Model_zoo Picachu_nonlinear Stdlib
