lib/llm/surrogate.ml: Array List Model_zoo Picachu_nonlinear Picachu_numerics Picachu_tensor
