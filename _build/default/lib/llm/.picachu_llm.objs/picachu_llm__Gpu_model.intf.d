lib/llm/gpu_model.mli: Workload
