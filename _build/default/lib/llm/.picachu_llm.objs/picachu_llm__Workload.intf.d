lib/llm/workload.mli: Format Model_zoo Picachu_nonlinear
