lib/llm/zero_shot.mli: Picachu_numerics Picachu_tensor Surrogate
