lib/llm/cpu_model.ml: List Picachu_nonlinear Workload
