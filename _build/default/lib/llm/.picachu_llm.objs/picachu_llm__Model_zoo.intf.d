lib/llm/model_zoo.mli: Picachu_nonlinear
