lib/llm/gpu_model.ml: Float List Picachu_nonlinear Stdlib Workload
