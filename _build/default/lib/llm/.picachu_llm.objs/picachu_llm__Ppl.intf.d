lib/llm/ppl.mli: Picachu_numerics Surrogate
