(** Roofline-style A100 model for Figure 1 / 8b / 9a.

    GEMMs run on the tensor cores at an effective fraction of peak that
    degrades for small/skinny shapes; nonlinear operations are memory-bound
    kernel launches: per-launch overhead plus bytes over effective HBM
    bandwidth.  The per-op byte costs reflect how frameworks actually execute
    them (softmax upcast to FP32 with a mask pass; norms with separate
    reduce/normalize kernels), which is what makes nonlinear operations
    30-46% of FP16 inference at seq 1024 (paper Figure 1) despite a naive
    roofline predicting less. *)

type t = {
  peak_tflops : float;  (** FP16 tensor-core peak *)
  gemm_eff : float;  (** large-GEMM efficiency *)
  hbm_gbs : float;  (** HBM peak *)
  nl_bw_eff : float;  (** achieved fraction for element-wise kernels *)
  launch_s : float;  (** per-kernel-launch overhead *)
}

val a100 : t

val gemm_seconds : t -> Workload.gemm -> float
(** Whole-count time for all instances of the gemm entry. *)

val nl_seconds : t -> Workload.nl -> float
val nl_bytes_per_element : Workload.nl -> float
(** Effective DRAM bytes per element for this op as frameworks run it. *)

type breakdown = {
  gemm_s : float;
  softmax_s : float;
  norm_s : float;
  activation_s : float;
  rope_s : float;
  total_s : float;
}

val run : t -> Workload.t -> breakdown
val nonlinear_fraction : breakdown -> float
val energy_j : t -> breakdown -> float
(** Board energy at a constant 300W inference draw. *)
