(** Per-model operation inventory for a prefill pass (batch 1).

    Enumerates every GEMM and every nonlinear-operation instance one forward
    pass executes, with shapes — the input all device and accelerator models
    consume.  Counts are whole-model (layer counts folded in). *)

module Registry = Picachu_nonlinear.Registry

type gemm = {
  m : int;
  k : int;
  n : int;
  count : int;  (** instances per forward pass *)
  g_tag : string;  (** e.g. ["qkv"], ["ffn.up"] *)
}

type nl = {
  op : Registry.opkind;
  rows : int;  (** channels per instance *)
  dim : int;  (** channel length *)
  nl_count : int;
  nl_tag : string;
}

type t = {
  model : Model_zoo.t;
  seq : int;
  gemms : gemm list;
  nls : nl list;
}

val of_model : Model_zoo.t -> seq:int -> t

val decode_of_model : Model_zoo.t -> context:int -> t
(** One autoregressive decode step: every projection collapses to a GEMV
    (m = 1) while attention still spans the [context]-token KV cache.  The
    regime where nonlinear operations weigh heaviest: the GEMMs are
    bandwidth-bound matrix-vector products, and softmax still touches the
    whole cache. *)

val gemm_flops : t -> float
(** Total multiply-add*2 count. *)

val nl_elements : t -> float
(** Total nonlinear elements processed. *)

val nl_elements_of : nl -> int
val nl_bytes : ?element_bytes:int -> nl -> int
(** DRAM traffic of one instance (streams-per-element aware). *)

val pp : Format.formatter -> t -> unit
