module Registry = Picachu_nonlinear.Registry

type t = {
  elems_per_s_exp : float;
  elems_per_s_simple : float;
  elems_per_s_norm : float;
  elems_per_s_trig : float;
  pcie_gbs : float;
  dispatch_s : float;
}

(* 4-core Tiger Lake running framework CPU kernels (FP16<->FP32 conversion
   passes, multiple dispatches per op): ~0.25 Gelem/s on exp-bound loops,
   a few Gelem/s on simple elementwise code, PCIe gen4 x8 effective. *)
let i7_11370h =
  {
    elems_per_s_exp = 0.25e9;
    elems_per_s_simple = 3.0e9;
    elems_per_s_norm = 0.8e9;
    elems_per_s_trig = 0.2e9;
    pcie_gbs = 12.0;
    dispatch_s = 10e-6;
  }

let throughput t (op : Registry.opkind) =
  match op with
  | Registry.Softmax | Registry.Gelu | Registry.Silu | Registry.Swiglu
  | Registry.Geglu -> t.elems_per_s_exp
  | Registry.Relu -> t.elems_per_s_simple
  | Registry.Layernorm | Registry.Rmsnorm -> t.elems_per_s_norm
  | Registry.Rope -> t.elems_per_s_trig

let nl_seconds t (nl : Workload.nl) =
  let elems = float_of_int (nl.rows * nl.dim) in
  let bytes = float_of_int (Workload.nl_bytes nl) in
  let per_instance =
    (bytes /. (t.pcie_gbs *. 1e9)) +. (elems /. throughput t nl.op) +. t.dispatch_s
  in
  float_of_int nl.nl_count *. per_instance

let total_nl_seconds t (w : Workload.t) =
  List.fold_left (fun acc nl -> acc +. nl_seconds t nl) 0.0 w.nls
