(** Surrogate transformers for the accuracy experiments (Tables 2/5/6).

    The paper evaluates its approximation algorithm inside real LLM
    checkpoints; this repository has no model weights, so each evaluated
    model is replaced by a structurally faithful miniature: the same
    nonlinear-operation mix (GeLU+LayerNorm for GPT2, ReLU+LayerNorm for
    OPT, SwiGLU+RMSNorm+RoPE for LLaMA2), deterministic pseudo-random
    weights, causal attention, tied embeddings — and injected activation
    outlier channels whose magnitude follows the model family (the
    well-documented LLM outlier phenomenon that breaks INT8 activation
    grids).  Linear layers compute in float64, mirroring the paper's setup
    where linear layers stay FP16 and only nonlinear operators are swapped.

    Every nonlinear evaluation routes through a {!Picachu_numerics.Approx.t}
    backend, so swapping the backend swaps exactly what the paper swaps. *)

module Tensor = Picachu_tensor.Tensor
module Rng = Picachu_tensor.Rng
module Approx = Picachu_numerics.Approx

type cfg = {
  name : string;
  layers : int;
  d_model : int;
  heads : int;
  kv_heads : int;  (** grouped-query attention: query-head groups share KV *)
  d_ffn : int;
  ffn : Model_zoo.ffn_kind;
  norm : Model_zoo.norm_kind;
  pos : Model_zoo.pos_kind;
  vocab : int;
  max_seq : int;
  outlier_scale : float;  (** amplification of the designated outlier channels *)
  outlier_channels : int;
  logit_scale : float;
      (** lm-head sharpening standing in for a trained model's confidence *)
  linear_bits : int option;
      (** when set, every weight matrix is round-tripped through a
          symmetric INT grid of that width — the paper's evaluation setting
          ("linear layers stay quantized, nonlinear operations in FP"),
          reproduced so the two error sources can be composed *)
}

val with_linear_bits : int -> cfg -> cfg
(** Quantize the linear layers of a configuration (e.g. W8). *)

val surrogate_of : Model_zoo.t -> cfg
(** Shrink a zoo model to surrogate size, keeping its operator structure and
    assigning the family-appropriate outlier severity. *)

type t

val cfg : t -> cfg
val create : seed:int -> cfg -> t
val logits : t -> Approx.t -> int array -> Tensor.t
(** [seq x vocab] next-token logits under the given nonlinear backend.
    Tokens must lie in [0, vocab). *)

val sample : t -> Rng.t -> ?temperature:float -> len:int -> unit -> int array
(** Autoregressive sampling from the float64-exact model; the synthetic
    "Wikitext2" stream the perplexity experiments score. *)
