(** Synthetic zero-shot tasks (Table 6).

    The paper scores ARC-c/ARC-e/HellaSwag/PIQA/WinoGrande via lm-eval:
    every item reduces to "which of two continuations does the model assign
    higher likelihood?".  The synthetic replacement builds two-candidate
    items from random contexts: the first candidate is random, the second
    is the *closest-scored* other token at least [margin] away under the
    float64-exact model, whose preference becomes the label.  Near-tie
    items are what make format-level perturbations measurable — exactly the
    property of real benchmark items.  A backend's accuracy is its
    agreement with those labels: FP16 lands near but not at 100% and the
    PICACHU backends land within a task-granularity delta of FP16,
    reproducing the Table 6 +-0.x%% structure. *)

module Approx = Picachu_numerics.Approx
module Rng = Picachu_tensor.Rng

type item = { context : int array; cand_a : int; cand_b : int; label_a : bool }
type task = { task_name : string; items : item list }

val task_names : string list
(** ["arc-c"; "arc-e"; "hellaswag"; "piqa"; "winogrande"] — each synthetic
    task uses a different context length, mirroring the different item
    shapes of the real benchmarks. *)

val make_tasks :
  seed:int -> items_per_task:int -> margin:float -> Surrogate.t -> task list

val score_candidate : Surrogate.t -> Approx.t -> int array -> int -> float
(** Log-likelihood the backend assigns to [candidate] after [context]. *)

val accuracy : Surrogate.t -> Approx.t -> task -> float
(** Fraction of items where the backend agrees with the label. *)
