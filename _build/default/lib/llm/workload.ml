module Registry = Picachu_nonlinear.Registry
module Mz = Model_zoo

type gemm = { m : int; k : int; n : int; count : int; g_tag : string }

type nl = {
  op : Registry.opkind;
  rows : int;
  dim : int;
  nl_count : int;
  nl_tag : string;
}

type t = { model : Mz.t; seq : int; gemms : gemm list; nls : nl list }

let of_model (mz : Mz.t) ~seq =
  if seq < 1 then invalid_arg "Workload.of_model: seq";
  let l = mz.layers in
  let d = mz.d_model in
  let dh = Mz.d_head mz in
  let s_eff = match mz.attn_window with Some w -> Stdlib.min w seq | None -> seq in
  let qkv_width = d + (2 * mz.kv_heads * dh) in
  let gemms =
    [
      { m = seq; k = d; n = qkv_width; count = l; g_tag = "qkv" };
      { m = seq; k = dh; n = s_eff; count = l * mz.heads; g_tag = "attn.scores" };
      { m = seq; k = s_eff; n = dh; count = l * mz.heads; g_tag = "attn.context" };
      { m = seq; k = d; n = d; count = l; g_tag = "attn.out" };
    ]
    @ (match mz.ffn with
      | Mz.Gelu_ffn | Mz.Relu_ffn ->
          [
            { m = seq; k = d; n = mz.d_ffn; count = l; g_tag = "ffn.up" };
            { m = seq; k = mz.d_ffn; n = d; count = l; g_tag = "ffn.down" };
          ]
      | Mz.Swiglu_ffn | Mz.Geglu_ffn ->
          [
            { m = seq; k = d; n = mz.d_ffn; count = 2 * l; g_tag = "ffn.up+gate" };
            { m = seq; k = mz.d_ffn; n = d; count = l; g_tag = "ffn.down" };
          ])
    @ [ { m = seq; k = d; n = mz.vocab; count = 1; g_tag = "lm_head" } ]
  in
  let norm = Mz.norm_op mz in
  let act = Mz.activation_op mz in
  let nls =
    [
      { op = norm; rows = seq; dim = d; nl_count = (2 * l) + 1; nl_tag = "norm" };
      {
        op = Registry.Softmax;
        rows = seq * mz.heads;
        dim = s_eff;
        nl_count = l;
        nl_tag = "softmax";
      };
      { op = act; rows = seq; dim = mz.d_ffn; nl_count = l; nl_tag = "activation" };
    ]
    @
    match mz.pos with
    | Mz.Rope_pos ->
        (* applied to every query head and every key (KV) head *)
        [
          {
            op = Registry.Rope;
            rows = seq * (mz.heads + mz.kv_heads);
            dim = dh;
            nl_count = l;
            nl_tag = "rope";
          };
        ]
    | Mz.Learned_pos -> []
  in
  { model = mz; seq; gemms; nls }

let decode_of_model (mz : Mz.t) ~context =
  if context < 1 then invalid_arg "Workload.decode_of_model: context";
  let l = mz.layers in
  let d = mz.d_model in
  let dh = Mz.d_head mz in
  let s_eff = match mz.attn_window with Some w -> Stdlib.min w context | None -> context in
  let qkv_width = d + (2 * mz.kv_heads * dh) in
  let gemms =
    [
      { m = 1; k = d; n = qkv_width; count = l; g_tag = "qkv" };
      { m = 1; k = dh; n = s_eff; count = l * mz.heads; g_tag = "attn.scores" };
      { m = 1; k = s_eff; n = dh; count = l * mz.heads; g_tag = "attn.context" };
      { m = 1; k = d; n = d; count = l; g_tag = "attn.out" };
    ]
    @ (match mz.ffn with
      | Mz.Gelu_ffn | Mz.Relu_ffn ->
          [
            { m = 1; k = d; n = mz.d_ffn; count = l; g_tag = "ffn.up" };
            { m = 1; k = mz.d_ffn; n = d; count = l; g_tag = "ffn.down" };
          ]
      | Mz.Swiglu_ffn | Mz.Geglu_ffn ->
          [
            { m = 1; k = d; n = mz.d_ffn; count = 2 * l; g_tag = "ffn.up+gate" };
            { m = 1; k = mz.d_ffn; n = d; count = l; g_tag = "ffn.down" };
          ])
    @ [ { m = 1; k = d; n = mz.vocab; count = 1; g_tag = "lm_head" } ]
  in
  let norm = Mz.norm_op mz in
  let act = Mz.activation_op mz in
  let nls =
    [
      { op = norm; rows = 1; dim = d; nl_count = (2 * l) + 1; nl_tag = "norm" };
      {
        op = Registry.Softmax;
        rows = mz.heads;
        dim = s_eff;
        nl_count = l;
        nl_tag = "softmax";
      };
      { op = act; rows = 1; dim = mz.d_ffn; nl_count = l; nl_tag = "activation" };
    ]
    @
    match mz.pos with
    | Mz.Rope_pos ->
        (* only the new token's query and key heads rotate *)
        [
          {
            op = Registry.Rope;
            rows = mz.heads + mz.kv_heads;
            dim = dh;
            nl_count = l;
            nl_tag = "rope";
          };
        ]
    | Mz.Learned_pos -> []
  in
  { model = mz; seq = 1; gemms; nls }

let gemm_flops t =
  List.fold_left
    (fun acc g ->
      acc +. (2.0 *. float_of_int g.m *. float_of_int g.k *. float_of_int g.n
              *. float_of_int g.count))
    0.0 t.gemms

let nl_elements_of nl = nl.rows * nl.dim * nl.nl_count

let nl_elements t =
  List.fold_left (fun acc nl -> acc +. float_of_int (nl_elements_of nl)) 0.0 t.nls

let nl_bytes ?(element_bytes = 2) nl =
  nl.rows * nl.dim * Registry.streams_per_element nl.op * element_bytes

let pp fmt t =
  Format.fprintf fmt "workload %s seq=%d: %.2f GFLOP gemm, %.1f M nl elements@."
    t.model.Mz.name t.seq (gemm_flops t /. 1e9) (nl_elements t /. 1e6);
  List.iter
    (fun g ->
      Format.fprintf fmt "  gemm %-13s %5dx%5dx%5d x%d@." g.g_tag g.m g.k g.n g.count)
    t.gemms;
  List.iter
    (fun nl ->
      Format.fprintf fmt "  nl   %-13s rows=%6d dim=%5d x%d@." nl.nl_tag nl.rows nl.dim
        nl.nl_count)
    t.nls
