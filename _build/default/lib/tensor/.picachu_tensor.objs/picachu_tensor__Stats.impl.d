lib/tensor/stats.ml: Array Float Format List Stdlib Tensor
