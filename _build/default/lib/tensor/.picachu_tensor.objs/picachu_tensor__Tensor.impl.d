lib/tensor/tensor.ml: Array Float Format List Rng Stdlib
