lib/tensor/rng.mli:
