lib/tensor/stats.mli: Format Tensor
