module Registry = Picachu_nonlinear.Registry
module Workload = Picachu_llm.Workload
module Systolic = Picachu_systolic.Systolic
module Dma = Picachu_memory.Dma

type t = {
  systolic : Systolic.t;
  dedicated_elems_per_cycle : float;
  dma : Dma.t;
}

let default =
  { systolic = Systolic.default; dedicated_elems_per_cycle = 16.0; dma = Dma.default }

let supported = function
  | Registry.Relu | Registry.Gelu | Registry.Softmax | Registry.Layernorm -> true
  | Registry.Silu | Registry.Swiglu | Registry.Geglu | Registry.Rmsnorm
  | Registry.Rope -> false

(* RISC-V rocket-class scalar core: soft-float transcendental per element. *)
let scalar_cycles_per_elem = function
  | Registry.Silu | Registry.Swiglu | Registry.Geglu -> 40.0
  | Registry.Rmsnorm -> 12.0
  | Registry.Rope -> 60.0
  | Registry.Relu -> 2.0
  | Registry.Gelu -> 40.0
  | Registry.Softmax -> 30.0
  | Registry.Layernorm -> 12.0

let nl_cycles t (nl : Workload.nl) =
  let elems = nl.rows * nl.dim in
  let compute =
    if supported nl.op then
      int_of_float (ceil (float_of_int elems /. t.dedicated_elems_per_cycle))
    else int_of_float (float_of_int elems *. scalar_cycles_per_elem nl.op)
  in
  let dma_bytes = Workload.nl_bytes nl in
  (* serialized: every instance pays its transfer in and out *)
  let dma = Dma.transfer_cycles t.dma ~bytes:dma_bytes in
  nl.nl_count * (compute + dma)

type result = { gemm_cycles : int; nl_cycles_total : int; total_cycles : int }

let run t (w : Workload.t) =
  let gemm_cycles =
    List.fold_left
      (fun acc (g : Workload.gemm) ->
        acc + (g.count * Systolic.gemm_cycles t.systolic ~m:g.m ~k:g.k ~n:g.n))
      0 w.gemms
  in
  let nl_cycles_total = List.fold_left (fun acc nl -> acc + nl_cycles t nl) 0 w.nls in
  { gemm_cycles; nl_cycles_total; total_cycles = gemm_cycles + nl_cycles_total }
