lib/baselines/gemmini.ml: List Picachu_llm Picachu_memory Picachu_nonlinear Picachu_systolic
