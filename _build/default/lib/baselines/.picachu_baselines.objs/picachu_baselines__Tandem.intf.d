lib/baselines/tandem.mli: Picachu_llm Picachu_memory Picachu_nonlinear Picachu_systolic
