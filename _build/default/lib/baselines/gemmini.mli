(** Behavioural model of Gemmini (Genc et al., DAC'21) — the Figure 8a
    baseline.

    Gemmini pairs the same systolic array with *dedicated* nonlinear units
    for the operations it was designed around — ReLU, GeLU, Softmax,
    LayerNorm — which stream at array-edge bandwidth.  Anything else
    (SiLU/SwiGLU, RMSNorm, RoPE, GeGLU) falls back to the on-chip RISC-V
    scalar core at tens of cycles per element.  DMA is serialized with
    compute (no double buffering).  This reproduces the paper's Figure 8a
    structure: competitive with PICACHU on GPT2/OPT, collapsing on LLaMA. *)

module Registry = Picachu_nonlinear.Registry
module Workload = Picachu_llm.Workload

type t = {
  systolic : Picachu_systolic.Systolic.t;
  dedicated_elems_per_cycle : float;  (** hardware-unit streaming rate *)
  dma : Picachu_memory.Dma.t;
}

val default : t
val supported : Registry.opkind -> bool
val scalar_cycles_per_elem : Registry.opkind -> float
(** RISC-V fallback cost for unsupported ops. *)

val nl_cycles : t -> Workload.nl -> int
(** All instances of the entry, DMA included (serialized). *)

type result = { gemm_cycles : int; nl_cycles_total : int; total_cycles : int }

val run : t -> Workload.t -> result
