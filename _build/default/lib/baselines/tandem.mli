(** Behavioural model of the Tandem processor (Ghodrati et al., ASPLOS'24) —
    the Figure 8b baseline.

    Tandem is a tightly-coupled programmable processor dedicated to the
    non-GEMM operators of a DNN accelerator.  It covers *all* nonlinear
    operations (no scalar-core cliff like Gemmini), executing the I-BERT /
    gemmlowp integer algorithms on a short vector pipeline, with its own
    DMA overlapped against the GEMM engine.  It is therefore the strongest
    latency baseline — PICACHU's advantage (<= 1.55x in the paper) comes
    from the CGRA's higher operator-level parallelism (fused Horner steps,
    FP2FX) rather than from coverage. *)

module Registry = Picachu_nonlinear.Registry
module Workload = Picachu_llm.Workload

type t = {
  systolic : Picachu_systolic.Systolic.t;
  lanes : float;  (** vector width of the non-GEMM pipeline *)
  dma : Picachu_memory.Dma.t;
}

val default : t
val algo_cycles_per_elem : Registry.opkind -> float
(** Per-lane cycles of the I-BERT/gemmlowp kernels Tandem runs. *)

val nl_cycles : t -> Workload.nl -> int
(** Burst DMA overlapped against the vector pipeline (Tandem has its own
    buffers and descriptors). *)

type result = { gemm_cycles : int; nl_cycles_total : int; total_cycles : int }

val run : t -> Workload.t -> result
