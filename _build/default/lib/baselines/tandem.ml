module Registry = Picachu_nonlinear.Registry
module Workload = Picachu_llm.Workload
module Systolic = Picachu_systolic.Systolic
module Dma = Picachu_memory.Dma
module Double_buffer = Picachu_memory.Double_buffer

type t = { systolic : Systolic.t; lanes : float; dma : Dma.t }

let default = { systolic = Systolic.default; lanes = 4.0; dma = Dma.default }

(* Cycles per element per lane for the integer kernels (i-exp: range split,
   quadratic, requantize; i-erf similar; norms: accumulate + i-sqrt share;
   rope: two polynomial evaluations + rotation). *)
let algo_cycles_per_elem = function
  | Registry.Softmax -> 9.0
  | Registry.Gelu | Registry.Silu -> 10.0
  | Registry.Swiglu | Registry.Geglu -> 12.0
  | Registry.Relu -> 1.0
  | Registry.Layernorm -> 5.0
  | Registry.Rmsnorm -> 4.0
  | Registry.Rope -> 14.0

let nl_cycles t (nl : Workload.nl) =
  (* burst DMA for the whole instance, overlapped with the vector pipeline *)
  let elems = nl.rows * nl.dim in
  let compute =
    int_of_float (ceil (float_of_int elems *. algo_cycles_per_elem nl.op /. t.lanes))
  in
  let bulk = Dma.transfer_cycles t.dma ~bytes:(2 * elems * 2) (* in + out *) in
  nl.nl_count * (Stdlib.max compute bulk + t.dma.Dma.setup_cycles)

type result = { gemm_cycles : int; nl_cycles_total : int; total_cycles : int }

let run t (w : Workload.t) =
  let gemm_cycles =
    List.fold_left
      (fun acc (g : Workload.gemm) ->
        acc + (g.count * Systolic.gemm_cycles t.systolic ~m:g.m ~k:g.k ~n:g.n))
      0 w.gemms
  in
  let nl_cycles_total = List.fold_left (fun acc nl -> acc + nl_cycles t nl) 0 w.nls in
  { gemm_cycles; nl_cycles_total; total_cycles = gemm_cycles + nl_cycles_total }
