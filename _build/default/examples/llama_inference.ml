(* End-to-end LLaMA2-7B prefill on PICACHU vs the A100 roofline, Gemmini and
   the CPU-offload configuration — the workload the paper's introduction
   motivates (SwiGLU + RMSNorm + RoPE make dedicated-unit accelerators
   collapse).

   Run with: dune exec examples/llama_inference.exe *)

module Mz = Picachu_llm.Model_zoo
module Workload = Picachu_llm.Workload
module Gpu = Picachu_llm.Gpu_model
module Cpu = Picachu_llm.Cpu_model
module Systolic = Picachu_systolic.Systolic
module Gemmini = Picachu_baselines.Gemmini
module Dataflow = Picachu_memory.Dataflow
open Picachu

let () =
  let seq = 1024 in
  let w = Workload.of_model Mz.llama2_7b ~seq in
  Format.printf "%a@." Workload.pp w;

  (* the A100 runtime breakdown (Figure 1 view of this model) *)
  let gpu = Gpu.run Gpu.a100 w in
  Printf.printf "A100: %.1f ms total, %.1f%% nonlinear\n" (gpu.Gpu.total_s *. 1e3)
    (100.0 *. Gpu.nonlinear_fraction gpu);

  (* PICACHU at the paper's edge configuration: 32x32 systolic + one 4x4
     CGRA + 40KB Shared Buffer, INT16 deployment path *)
  let cfg = Simulator.default_config ~vector:4 () in
  let r = Simulator.run cfg w in
  Printf.printf "PICACHU (32x32+4x4): %.1f ms total, %.1f%% nonlinear, %.1f mJ\n"
    (Simulator.seconds cfg r *. 1e3)
    (100.0 *. Simulator.nonlinear_fraction r)
    (r.Simulator.energy_uj /. 1e3);
  List.iter
    (fun (o : Simulator.op_time) ->
      Printf.printf "  %-11s %-18s busy=%.2fms exposed=%.2fms\n" o.Simulator.ot_tag
        (Dataflow.case_name o.Simulator.case)
        (float_of_int o.Simulator.busy_cycles /. 1e6)
        (float_of_int o.Simulator.exposed_cycles /. 1e6))
    r.Simulator.nl;

  (* Gemmini: SwiGLU/RMSNorm/RoPE fall to its scalar RISC-V core *)
  let gem = Gemmini.run Gemmini.default w in
  Printf.printf "Gemmini: %.1f ms total (%.1f ms nonlinear — the scalar-core cliff)\n"
    (float_of_int gem.Gemmini.total_cycles /. 1e6)
    (float_of_int gem.Gemmini.nl_cycles_total /. 1e6);

  (* CPU-offload configuration of Figure 8a *)
  let gemm_s =
    List.fold_left
      (fun acc (g : Workload.gemm) ->
        acc
        +. (float_of_int g.Workload.count
            *. Systolic.gemm_seconds Systolic.default ~m:g.Workload.m ~k:g.Workload.k
                 ~n:g.Workload.n))
      0.0 w.Workload.gemms
  in
  let cpu_s = gemm_s +. Cpu.total_nl_seconds Cpu.i7_11370h w in
  Printf.printf "CPU-offload: %.1f ms total\n" (cpu_s *. 1e3);

  Printf.printf "\nSpeedups: %.2fx vs CPU config, %.2fx vs Gemmini\n"
    (cpu_s /. Simulator.seconds cfg r)
    (float_of_int gem.Gemmini.total_cycles /. float_of_int r.Simulator.total_cycles)
