(* The paper's flexibility claim (§3.2.2): an operation PICACHU has never
   seen can be brought up from the basic arithmetic/control primitives
   without touching the architecture.

   Here: ELU, elu(x) = x if x > 0 else alpha*(exp x - 1) — a real activation
   that no dedicated-unit accelerator ships hardware for.  We author its
   kernel in the IR, validate it against a float64 reference, and compile
   it onto the unmodified PICACHU CGRA.

   Run with: dune exec examples/custom_op.exe *)

module Builder = Picachu_ir.Builder
module Kernel = Picachu_ir.Kernel
module Interp = Picachu_ir.Interp
module Op = Picachu_ir.Op
module Dfg = Picachu_dfg.Dfg
module Fuse = Picachu_dfg.Fuse
module Analysis = Picachu_dfg.Analysis
module Mapper = Picachu_cgra.Mapper
open Picachu

let elu_kernel ~alpha =
  let b = Builder.create () in
  let x = Builder.load b "x" in
  (* negative branch: alpha * (exp x - 1), with exp through the FP2FX
     decomposition *)
  let e = Builder.exp_taylor b ~order:6 x in
  let em1 = Builder.sub b e (Builder.const b 1.0) in
  let neg = Builder.mul b em1 (Builder.const b alpha) in
  (* predicated select: x > 0 ? x : neg *)
  let c = Builder.cmp b Op.Gt x (Builder.const b 0.0) in
  let y = Builder.select b c x neg in
  Builder.store b "y" y;
  let loop = Builder.finish b ~label:"elu.1" ~trip_input:"n" () in
  {
    Kernel.name = "elu";
    klass = Kernel.EO;
    loops = [ loop ];
    inputs = [ "x" ];
    outputs = [ "y" ];
    scalar_inputs = [ "n" ];
  }

let () =
  let alpha = 1.0 in
  let kernel = elu_kernel ~alpha in
  (match Kernel.validate kernel with
  | Ok () -> print_endline "ELU kernel validates."
  | Error e -> failwith e);

  (* functional check against the float64 reference *)
  let n = 64 in
  let xs = Array.init n (fun i -> (float_of_int i /. 8.0) -. 4.0) in
  let res =
    Interp.run kernel { Interp.arrays = [ ("x", xs) ]; scalars = [ ("n", float_of_int n) ] }
  in
  let y = List.assoc "y" res.Interp.out_arrays in
  let worst = ref 0.0 in
  Array.iteri
    (fun i v ->
      let expect = if xs.(i) > 0.0 then xs.(i) else alpha *. (exp xs.(i) -. 1.0) in
      worst := Float.max !worst (Float.abs (v -. expect)))
    y;
  Printf.printf "Max error vs reference ELU: %.3e\n" !worst;

  (* what the compiler sees *)
  let g = Dfg.of_loop (List.hd kernel.Kernel.loops) in
  let f = Fuse.fuse g in
  Printf.printf "DFG: %d nodes -> %d after fusion; patterns:" (Dfg.node_count g)
    (Dfg.node_count f);
  List.iter
    (fun (p, c) -> Printf.printf " %s:%d" (Op.fused_name p) c)
    (Fuse.pattern_counts f);
  Printf.printf "\nComputational intensity: %.1f\n" (Analysis.computational_intensity g);

  (* compile onto the stock PICACHU CGRA, auto-tuned unrolling *)
  let compiled = Compiler.compile (Compiler.picachu_options ()) kernel in
  let cl = List.hd compiled.Compiler.loops in
  Printf.printf "Mapped onto %s: II=%d (UF=%d), %.2f cycles/element over 1024 elements\n"
    compiled.Compiler.arch_name cl.Compiler.mapping.Mapper.ii compiled.Compiler.unroll
    (float_of_int (Compiler.pass_cycles compiled ~n:1024) /. 1024.0);

  (* and in the INT16 4-lane deployment mode *)
  let vec = Compiler.compile (Compiler.picachu_options ~vector:4 ()) kernel in
  Printf.printf "INT16 4-lane mode: %.2f cycles/element (%.2fx)\n"
    (float_of_int (Compiler.pass_cycles vec ~n:1024) /. 1024.0)
    (float_of_int (Compiler.pass_cycles compiled ~n:1024)
    /. float_of_int (Compiler.pass_cycles vec ~n:1024))
