examples/llama_inference.ml: Format List Picachu Picachu_baselines Picachu_llm Picachu_memory Picachu_systolic Printf Simulator
