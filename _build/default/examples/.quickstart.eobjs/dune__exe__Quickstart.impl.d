examples/quickstart.ml: Array Compiler Float Format Hashtbl List Picachu Picachu_cgra Picachu_ir Picachu_nonlinear Printf
