examples/compile_model.ml: Array Compiler Format Hw_sim Layer_builder List Offload Patterns Picachu Picachu_cgra Picachu_frontend Picachu_ir Picachu_llm Picachu_nonlinear Printf Tensor_ir
