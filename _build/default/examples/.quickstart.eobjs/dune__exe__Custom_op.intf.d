examples/custom_op.mli:
