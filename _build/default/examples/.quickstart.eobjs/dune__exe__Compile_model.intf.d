examples/compile_model.mli:
