examples/design_sweep.mli:
