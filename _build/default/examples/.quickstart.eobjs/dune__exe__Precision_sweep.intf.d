examples/precision_sweep.mli:
