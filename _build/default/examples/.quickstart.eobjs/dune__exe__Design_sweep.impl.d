examples/design_sweep.ml: Compiler Explore List Picachu Picachu_cgra Picachu_ir Printf Stdlib
