examples/custom_op.ml: Array Compiler Float List Picachu Picachu_cgra Picachu_dfg Picachu_ir Printf
