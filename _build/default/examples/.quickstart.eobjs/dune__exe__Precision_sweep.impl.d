examples/precision_sweep.ml: Compiler Float List Picachu Picachu_dfg Picachu_ir Picachu_llm Picachu_numerics Picachu_tensor Printf
