examples/quickstart.mli:
