examples/llama_inference.mli:
