(* Tests for the baseline accelerator models, the PICACHU compiler pipeline,
   the end-to-end simulator, and shape assertions over the experiment
   reproductions (the integration layer). *)
open Picachu
module Kernels = Picachu_ir.Kernels
module Kernel = Picachu_ir.Kernel
module Arch = Picachu_cgra.Arch
module Mapper = Picachu_cgra.Mapper
module Mz = Picachu_llm.Model_zoo
module Workload = Picachu_llm.Workload
module Registry = Picachu_nonlinear.Registry
module Gemmini = Picachu_baselines.Gemmini
module Tandem = Picachu_baselines.Tandem
module Stats = Picachu_tensor.Stats

(* ------------------------------------------------------------- baselines *)

let test_gemmini_support_set () =
  Alcotest.(check bool) "gelu supported" true (Gemmini.supported Registry.Gelu);
  Alcotest.(check bool) "swiglu falls to scalar core" false
    (Gemmini.supported Registry.Swiglu);
  Alcotest.(check bool) "rmsnorm falls to scalar core" false
    (Gemmini.supported Registry.Rmsnorm)

let test_gemmini_scalar_cliff () =
  (* the same element count costs far more on the scalar fallback *)
  let mk op tag = { Workload.op; rows = 64; dim = 256; nl_count = 1; nl_tag = tag } in
  let fast = Gemmini.nl_cycles Gemmini.default (mk Registry.Gelu "activation") in
  let slow = Gemmini.nl_cycles Gemmini.default (mk Registry.Swiglu "activation") in
  Alcotest.(check bool) "cliff >= 20x" true (slow > 20 * fast)

let test_gemmini_llama_penalty () =
  (* Figure 8a structure: Gemmini's nonlinear time explodes on LLaMA *)
  let nl_frac m =
    let w = Workload.of_model m ~seq:1024 in
    let r = Gemmini.run Gemmini.default w in
    float_of_int r.Gemmini.nl_cycles_total /. float_of_int r.Gemmini.total_cycles
  in
  Alcotest.(check bool) "llama >> gpt2 nonlinear share" true
    (nl_frac Mz.llama2_7b > 2.0 *. nl_frac Mz.gpt2_xl)

let test_tandem_covers_everything () =
  (* no cliff: per-element costs within one order of magnitude *)
  let costs = List.map Tandem.algo_cycles_per_elem Registry.all in
  let mx = List.fold_left Float.max 0.0 costs in
  let mn = List.fold_left Float.min infinity costs in
  Alcotest.(check bool) "no scalar cliff" true (mx /. mn < 20.0)

let test_tandem_dma_overlap () =
  let nl = { Workload.op = Registry.Softmax; rows = 1024; dim = 1024; nl_count = 1; nl_tag = "softmax" } in
  let c = Tandem.nl_cycles Tandem.default nl in
  let compute = int_of_float (ceil (1024.0 *. 1024.0 *. 9.0 /. 4.0)) in
  (* overlapped: max(compute, dma) + setup, never the sum *)
  Alcotest.(check bool) "no serialization" true (c < compute * 2)

(* -------------------------------------------------------------- compiler *)

let test_compile_all_kernels () =
  let opts = Compiler.picachu_options () in
  List.iter
    (fun (k : Kernel.t) ->
      let c = Compiler.compile opts k in
      Alcotest.(check bool) "has loops" true (List.length c.Compiler.loops > 0);
      Alcotest.(check bool) "positive cycles" true (Compiler.pass_cycles c ~n:256 > 0))
    (Kernels.all Kernels.picachu)

let test_compile_unroll_tuning () =
  (* the tuner never does worse than UF=1 *)
  let opts = Compiler.picachu_options () in
  List.iter
    (fun (k : Kernel.t) ->
      let tuned = Compiler.pass_cycles (Compiler.compile opts k) ~n:1024 in
      let uf1 = Compiler.pass_cycles (Compiler.compile_with_unroll opts 1 k) ~n:1024 in
      Alcotest.(check bool) (k.Kernel.name ^ " tuned <= uf1") true (tuned <= uf1))
    (Kernels.all Kernels.picachu)

let test_pass_cycles_monotone () =
  let opts = Compiler.picachu_options () in
  let c = Compiler.compile opts (Kernels.softmax Kernels.picachu) in
  Alcotest.(check bool) "monotone in n" true
    (Compiler.pass_cycles c ~n:2048 > Compiler.pass_cycles c ~n:256)

let test_per_channel_excludes_prologue () =
  let opts = Compiler.picachu_options () in
  let c = Compiler.compile opts (Kernels.rmsnorm Kernels.picachu) in
  Alcotest.(check bool) "steady-state below full pass" true
    (Compiler.per_channel_cycles c ~dim:512 < Compiler.pass_cycles c ~n:512)

let test_cached_memoizes () =
  let opts = Compiler.picachu_options () in
  let a = Compiler.cached opts Kernels.picachu "relu" in
  let b = Compiler.cached opts Kernels.picachu "relu" in
  Alcotest.(check bool) "physically shared" true (a == b)

let test_vector_mode_faster () =
  let scalar = Compiler.picachu_options () in
  let vec = Compiler.picachu_options ~vector:4 () in
  List.iter
    (fun name ->
      let s = Compiler.pass_cycles (Compiler.cached scalar Kernels.picachu name) ~n:1024 in
      let v = Compiler.pass_cycles (Compiler.cached vec Kernels.picachu name) ~n:1024 in
      Alcotest.(check bool) (name ^ " vector mode faster") true (v < s))
    [ "relu"; "gelu"; "layernorm"; "softmax" ]

(* ------------------------------------------------------------- simulator *)

let test_simulator_runs_all_models () =
  let cfg = Simulator.default_config () in
  List.iter
    (fun m ->
      let r = Simulator.run cfg (Workload.of_model m ~seq:512) in
      Alcotest.(check bool) "positive total" true (r.Simulator.total_cycles > 0);
      Alcotest.(check bool) "energy positive" true (r.Simulator.energy_uj > 0.0);
      Alcotest.(check bool) "exposed <= total" true
        (r.Simulator.nl_exposed_total <= r.Simulator.total_cycles))
    Mz.all

let test_simulator_case_assignment () =
  let cfg = Simulator.default_config () in
  let r = Simulator.run cfg (Workload.of_model Mz.llama2_7b ~seq:1024) in
  List.iter
    (fun (o : Simulator.op_time) ->
      match o.Simulator.ot_tag with
      | "activation" | "rope" ->
          Alcotest.(check bool) "EO streams" true
            (o.Simulator.case = Picachu_memory.Dataflow.Stream_overlap)
      | "norm" | "softmax" ->
          Alcotest.(check bool) "RE does not stream" true
            (o.Simulator.case <> Picachu_memory.Dataflow.Stream_overlap)
      | _ -> ())
    r.Simulator.nl

let test_double_buffering_helps () =
  let w = Workload.of_model Mz.llama2_7b ~seq:1024 in
  let on = Simulator.run (Simulator.default_config ()) w in
  let off =
    Simulator.run { (Simulator.default_config ()) with Simulator.double_buffering = false } w
  in
  Alcotest.(check bool) "double buffering reduces cycles" true
    (on.Simulator.total_cycles < off.Simulator.total_cycles)

let test_nl_parallel_scales () =
  let w = Workload.of_model Mz.llama2_7b ~seq:1024 in
  let r1 = Simulator.run (Simulator.default_config ()) w in
  let r8 =
    Simulator.run { (Simulator.default_config ()) with Simulator.nl_parallel = 8 } w
  in
  Alcotest.(check bool) "more engines, less exposure" true
    (r8.Simulator.nl_exposed_total < r1.Simulator.nl_exposed_total)

(* --------------------------------------------------------------- serving *)

let test_serving_summary_math () =
  let costs =
    { Serving.prefill_s = 0.1; decode_s_at = [ (100, 0.01); (200, 0.02) ] }
  in
  let r = { Serving.prompt = 100; generate = 100 } in
  let s = Serving.summarize costs r in
  Alcotest.(check (float 1e-9)) "ttft is prefill" 0.1 s.Serving.ttft_s;
  (* per-step cost interpolates 0.01..0.02 over contexts 100..199 *)
  Alcotest.(check bool) "total between bounds" true
    (s.Serving.total_s > 0.1 +. 1.0 && s.Serving.total_s < 0.1 +. 2.0);
  Alcotest.(check bool) "throughput consistent" true
    (Float.abs ((float_of_int r.Serving.generate /. s.Serving.tokens_per_s)
                -. (s.Serving.total_s -. 0.1))
    < 1e-9)

let test_serving_summary_pinned () =
  (* pinned end-to-end numbers for a known request, guarding the
     anchor-interpolation rewrite: contexts 8..31 over anchors at 8/16/32.
     decode = 0.010 + sum_{d=1..8}(0.010 + 0.00125 d)
                    + sum_{d=1..15}(0.020 + 0.00125 d) = 0.585 s *)
  let costs =
    { Serving.prefill_s = 0.25; decode_s_at = [ (8, 0.010); (16, 0.020); (32, 0.040) ] }
  in
  let r = { Serving.prompt = 8; generate = 24 } in
  let s = Serving.summarize costs r in
  Alcotest.(check (float 1e-12)) "ttft" 0.25 s.Serving.ttft_s;
  Alcotest.(check (float 1e-12)) "total" 0.835 s.Serving.total_s;
  Alcotest.(check (float 1e-9)) "tokens/s" (24.0 /. 0.585) s.Serving.tokens_per_s

let test_serving_anchor_boundaries () =
  (* pinned values exactly at the anchor contexts, clamped outside them *)
  let costs =
    { Serving.prefill_s = 0.5; decode_s_at = [ (8, 0.01); (16, 0.02); (32, 0.04) ] }
  in
  Alcotest.(check (float 1e-12)) "first anchor" 0.01 (Serving.decode_cost costs 8);
  Alcotest.(check (float 1e-12)) "middle anchor" 0.02 (Serving.decode_cost costs 16);
  Alcotest.(check (float 1e-12)) "last anchor" 0.04 (Serving.decode_cost costs 32);
  Alcotest.(check (float 1e-12)) "clamps below" 0.01 (Serving.decode_cost costs 1);
  Alcotest.(check (float 1e-12)) "clamps above" 0.04 (Serving.decode_cost costs 100);
  Alcotest.(check (float 1e-12)) "segment midpoint" 0.015 (Serving.decode_cost costs 12);
  (* summarize's cursor charges the same boundary value: one decode step at
     exactly the middle anchor *)
  let s = Serving.summarize costs { Serving.prompt = 16; generate = 1 } in
  Alcotest.(check (float 1e-12)) "cursor at boundary" (0.5 +. 0.02) s.Serving.total_s

let test_serving_single_anchor_clamps () =
  let costs = { Serving.prefill_s = 0.1; decode_s_at = [ (10, 0.01) ] } in
  Alcotest.(check (float 1e-12)) "below" 0.01 (Serving.decode_cost costs 3);
  Alcotest.(check (float 1e-12)) "above" 0.01 (Serving.decode_cost costs 99);
  (* every step of a request far outside the anchor pays the single cost *)
  let s = Serving.summarize costs { Serving.prompt = 50; generate = 7 } in
  Alcotest.(check (float 1e-12)) "total" (0.1 +. (7.0 *. 0.01)) s.Serving.total_s

let prop_summarize_matches_naive_oracle =
  (* the anchor-cursor total must equal a naive per-step linear
     interpolation written from scratch (no cursor, no shared code) *)
  let oracle_cost anchors ctx =
    let arr = Array.of_list anchors in
    let n = Array.length arr in
    if ctx <= fst arr.(0) then snd arr.(0)
    else if ctx >= fst arr.(n - 1) then snd arr.(n - 1)
    else begin
      let i = ref 0 in
      while not (fst arr.(!i) < ctx && ctx <= fst arr.(!i + 1)) do
        incr i
      done;
      let c1, s1 = arr.(!i) and c2, s2 = arr.(!i + 1) in
      s1 +. ((s2 -. s1) *. float_of_int (ctx - c1) /. float_of_int (c2 - c1))
    end
  in
  QCheck.Test.make ~name:"summarize equals the per-step interpolation oracle"
    ~count:300
    (QCheck.quad (QCheck.int_range 1 100) (QCheck.int_range 1 50)
       (QCheck.pair (QCheck.float_range 0.001 0.1) (QCheck.float_range 0.001 0.1))
       (QCheck.pair (QCheck.float_range 0.001 0.1) (QCheck.float_range 0.05 2.0)))
    (fun (p, g, (c1, c2), (c3, prefill)) ->
      let rec dedupe = function
        | (x1, s1) :: (x2, _) :: rest when x1 = x2 -> dedupe ((x1, s1) :: rest)
        | x :: rest -> x :: dedupe rest
        | [] -> []
      in
      let anchors =
        dedupe [ (p, c1); (p + Stdlib.max 1 (g / 2), c2); (p + g, c3) ]
      in
      let costs = { Serving.prefill_s = prefill; decode_s_at = anchors } in
      let s = Serving.summarize costs { Serving.prompt = p; generate = g } in
      let naive = ref prefill in
      for step = 0 to g - 1 do
        naive := !naive +. oracle_cost anchors (p + step)
      done;
      Float.abs (s.Serving.total_s -. !naive) <= 1e-9 *. float_of_int g)

let test_serving_validation () =
  let costs = { Serving.prefill_s = 0.1; decode_s_at = [ (10, 0.01) ] } in
  Alcotest.check_raises "bad request" (Invalid_argument "Serving.summarize: request")
    (fun () ->
      ignore (Serving.summarize costs { Serving.prompt = 0; generate = 5 }))

let test_serving_end_to_end_sane () =
  let r = { Serving.prompt = 256; generate = 32 } in
  let cfg = Simulator.default_config ~vector:4 () in
  let s = Serving.summarize (Serving.picachu_costs cfg Mz.gpt2_xl r) r in
  Alcotest.(check bool) "positive throughput" true (s.Serving.tokens_per_s > 0.0);
  Alcotest.(check bool) "ttft below total" true (s.Serving.ttft_s < s.Serving.total_s)

(* -------------------------------------------------------------- timeline *)

let test_timeline_structure () =
  let w = Workload.of_model Mz.llama2_7b ~seq:512 in
  let cfg = Simulator.default_config ~vector:4 () in
  let ev = Timeline.layer cfg w in
  Alcotest.(check bool) "events exist" true (List.length ev > 8);
  Alcotest.(check bool) "total positive" true (Timeline.total_cycles ev > 0);
  let count label =
    List.length (List.filter (fun (e : Timeline.event) -> e.Timeline.label = label) ev)
  in
  Alcotest.(check int) "two norms per layer" 2 (count "norm");
  Alcotest.(check int) "one softmax" 1 (count "softmax");
  List.iter
    (fun (e : Timeline.event) ->
      Alcotest.(check bool) "well-formed interval" true
        (e.Timeline.end_cycle > e.Timeline.start_cycle))
    ev

let test_timeline_overlap () =
  (* Case 1: the activation starts before its producing GEMM finishes *)
  let w = Workload.of_model Mz.gpt2_xl ~seq:512 in
  let cfg = Simulator.default_config ~vector:4 () in
  let ev = Timeline.layer cfg w in
  let find label = List.find (fun (e : Timeline.event) -> e.Timeline.label = label) ev in
  let act = find "activation" and up = find "ffn.up" in
  Alcotest.(check bool) "activation overlaps ffn.up" true
    (act.Timeline.start_cycle < up.Timeline.end_cycle)

let test_timeline_render () =
  let w = Workload.of_model Mz.opt_6_7b ~seq:256 in
  let cfg = Simulator.default_config () in
  let s = Timeline.render ~width:40 (Timeline.layer cfg w) in
  Alcotest.(check bool) "renders rows" true (String.length s > 200);
  Alcotest.(check bool) "no rope lane for opt" true
    (not (Test_ir.string_contains s "rope"))

(* ----------------------------------------------------------- experiments *)

let test_fig7a_shape () =
  let rows = Experiments.fig7a () in
  List.iter
    (fun (r : Experiments.fig7a_row) ->
      Alcotest.(check bool)
        (r.Experiments.f7_loop ^ " picachu at least on par")
        true
        (r.Experiments.f7_speedup >= 0.95))
    rows;
  let gm, mx = Experiments.fig7a_summary rows in
  Alcotest.(check bool) "geomean in band (paper 2.95x)" true (gm > 1.8 && gm < 4.5);
  Alcotest.(check bool) "max in band (paper 6.4x)" true (mx > 3.5 && mx < 8.0)

let test_fig7d_shape () =
  let rows = Experiments.fig7d () in
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool) (name ^ " below theoretical 4x") true (s <= 4.0 +. 1e-9);
      Alcotest.(check bool) (name ^ " speedup material") true (s > 1.5))
    rows

let test_fig7b_split_mode () =
  List.iter
    (fun (name, entries) ->
      let at key = List.assoc key entries in
      Alcotest.(check (float 1e-9)) (name ^ " split doubles 4x4") (2.0 *. at "4x4")
        (at "4x8-split"))
    (Experiments.fig7b ())

let test_fig7c_knee () =
  (* the 10KB point must be the slowest for both models (below the channel
     threshold of either) *)
  List.iter
    (fun (name, entries) ->
      let v10 = List.assoc 10.0 entries and v160 = List.assoc 160.0 entries in
      Alcotest.(check bool) (name ^ " 10KB slowest") true (v10 < v160))
    (Experiments.fig7c ())

let test_tab4_shape () =
  let rows = Experiments.tab4 () in
  let frac p = match List.find_opt (fun (n, _, _) -> n = p) rows with
    | Some (_, _, f) -> f
    | None -> 0.0
  in
  Alcotest.(check (float 1e-9)) "cmp+br everywhere" 1.0 (frac "cmp+br");
  Alcotest.(check (float 1e-9)) "phi+add everywhere" 1.0 (frac "phi+add");
  Alcotest.(check bool) "mul+add common" true (frac "mul+add" > 0.3)

let test_tab7_shape () =
  let b = Experiments.tab7 () in
  let t = Picachu_cgra.Cost.total b in
  Alcotest.(check bool) "sram dominates area" true
    (b.Picachu_cgra.Cost.sram.Picachu_cgra.Cost.area_mm2 > 0.7 *. t.Picachu_cgra.Cost.area_mm2)

let test_fig8a_shape () =
  let rows = Experiments.fig8a () in
  (* PICACHU beats the CPU config everywhere; Gemmini collapses on LLaMA *)
  List.iter
    (fun (m, gem, pic) ->
      Alcotest.(check bool) (m ^ " picachu beats cpu") true (pic > 1.0);
      if m = "llama2-7b" || m = "llama2-13b" then
        Alcotest.(check bool) (m ^ " gemmini collapses") true (pic > 2.0 *. gem))
    rows;
  let ratio = Stats.geomean (List.map (fun (_, g, p) -> p /. g) rows) in
  Alcotest.(check bool) "picachu/gemmini geomean in band (paper 1.86x)" true
    (ratio > 1.2 && ratio < 2.6)

let test_fig9b_shape () =
  List.iter
    (fun (m, gpu_frac, pic_frac) ->
      Alcotest.(check bool) (m ^ " nonlinear share shrinks") true (pic_frac < gpu_frac))
    (Experiments.fig9b ())

let test_ablation_order_tradeoff () =
  let rows = Experiments.ablation_order () in
  let errs = List.map (fun (_, e, _) -> e) rows in
  let nodes = List.map (fun (_, _, n) -> n) rows in
  let rec decreasing = function a :: b :: t -> a > b && decreasing (b :: t) | _ -> true in
  let rec increasing = function a :: b :: t -> a <= b && increasing (b :: t) | _ -> true in
  Alcotest.(check bool) "error falls with order" true (decreasing errs);
  Alcotest.(check bool) "dfg grows with order" true (increasing nodes)

let test_ablation_online_softmax_compute_bound () =
  (* documented finding: on the compute-bound CGRA the online form is
     somewhat slower per stage (its value is Case 3 residency), so the ratio
     sits a little below 1 — never catastrophic, never above the three-loop
     form by much *)
  List.iter
    (fun (m, ratio) ->
      Alcotest.(check bool) (m ^ " ratio in expected band") true
        (ratio > 0.5 && ratio < 1.2))
    (Experiments.ablation_online_softmax ())

let test_ablation_fusion_always_helps () =
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool) (name ^ " fusion >= 1x") true (s >= 0.99))
    (Experiments.ablation_fusion ())

let test_extras_compile_and_execute () =
  (* future ops compile onto the unmodified fabric and run bit-exact *)
  let opts = Compiler.picachu_options () in
  List.iter
    (fun (k : Kernel.t) ->
      let compiled = Compiler.compile opts k in
      let n = 16 in
      let env =
        {
          Picachu_ir.Interp.arrays =
            [ ("x", Array.init n (fun i -> (float_of_int i /. 2.0) -. 4.0)) ];
          scalars = [ ("n", float_of_int n) ];
        }
      in
      let hw = Hw_sim.run compiled env in
      let reference = Picachu_ir.Interp.run compiled.Compiler.kernel env in
      let a = List.assoc "y" hw.Hw_sim.result.Picachu_ir.Interp.out_arrays in
      let b = List.assoc "y" reference.Picachu_ir.Interp.out_arrays in
      Array.iteri
        (fun i v ->
          if v <> b.(i) then Alcotest.failf "%s: hw/interp diverge" k.Kernel.name)
        a)
    (Kernels.extras Kernels.picachu)

let test_outlier_sweep_monotone_collapse () =
  let rows = Experiments.supp_outliers () in
  (* ours tracks FP16 at every outlier magnitude; I-BERT's damage grows
     monotonically with the outlier scale *)
  List.iter
    (fun (_, fp, ours, _) ->
      Alcotest.(check bool) "ours tracks fp16" true (Float.abs (ours -. fp) /. fp < 0.02))
    rows;
  let ratios = List.map (fun (_, fp, _, ib) -> ib /. fp) rows in
  let rec nondecreasing = function
    | a :: b :: t -> a <= b *. 1.2 && nondecreasing (b :: t)
    | _ -> true
  in
  Alcotest.(check bool) "i-bert damage grows with outliers" true (nondecreasing ratios);
  Alcotest.(check bool) "collapse at the top" true
    (List.nth ratios (List.length ratios - 1) > 20.0)

let test_print_unknown_id () =
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Experiments.print: unknown id nonsense") (fun () ->
      Experiments.print "nonsense")

let suite =
  [
    ( "baselines",
      [
        Alcotest.test_case "gemmini support set" `Quick test_gemmini_support_set;
        Alcotest.test_case "gemmini scalar cliff" `Quick test_gemmini_scalar_cliff;
        Alcotest.test_case "gemmini llama penalty" `Quick test_gemmini_llama_penalty;
        Alcotest.test_case "tandem coverage" `Quick test_tandem_covers_everything;
        Alcotest.test_case "tandem dma overlap" `Quick test_tandem_dma_overlap;
      ] );
    ( "compiler",
      [
        Alcotest.test_case "compiles all kernels" `Quick test_compile_all_kernels;
        Alcotest.test_case "unroll tuning" `Quick test_compile_unroll_tuning;
        Alcotest.test_case "pass cycles monotone" `Quick test_pass_cycles_monotone;
        Alcotest.test_case "per-channel steady state" `Quick test_per_channel_excludes_prologue;
        Alcotest.test_case "cache memoizes" `Quick test_cached_memoizes;
        Alcotest.test_case "vector mode faster" `Quick test_vector_mode_faster;
      ] );
    ( "simulator",
      [
        Alcotest.test_case "runs all models" `Quick test_simulator_runs_all_models;
        Alcotest.test_case "case assignment" `Quick test_simulator_case_assignment;
        Alcotest.test_case "double buffering helps" `Quick test_double_buffering_helps;
        Alcotest.test_case "nl_parallel scales" `Quick test_nl_parallel_scales;
      ] );
    ( "serving",
      [
        Alcotest.test_case "summary math" `Quick test_serving_summary_math;
        Alcotest.test_case "summary pinned numbers" `Quick test_serving_summary_pinned;
        Alcotest.test_case "anchor boundaries" `Quick test_serving_anchor_boundaries;
        Alcotest.test_case "single anchor clamps" `Quick test_serving_single_anchor_clamps;
        QCheck_alcotest.to_alcotest prop_summarize_matches_naive_oracle;
        Alcotest.test_case "validation" `Quick test_serving_validation;
        Alcotest.test_case "end-to-end sane" `Quick test_serving_end_to_end_sane;
      ] );
    ( "timeline",
      [
        Alcotest.test_case "structure" `Quick test_timeline_structure;
        Alcotest.test_case "case-1 overlap" `Quick test_timeline_overlap;
        Alcotest.test_case "render" `Quick test_timeline_render;
      ] );
    ( "experiments",
      [
        Alcotest.test_case "fig7a shape" `Slow test_fig7a_shape;
        Alcotest.test_case "fig7d shape" `Slow test_fig7d_shape;
        Alcotest.test_case "fig7b split mode" `Slow test_fig7b_split_mode;
        Alcotest.test_case "fig7c knee" `Slow test_fig7c_knee;
        Alcotest.test_case "tab4 shape" `Quick test_tab4_shape;
        Alcotest.test_case "tab7 shape" `Quick test_tab7_shape;
        Alcotest.test_case "fig8a shape" `Slow test_fig8a_shape;
        Alcotest.test_case "fig9b shape" `Slow test_fig9b_shape;
        Alcotest.test_case "order ablation tradeoff" `Slow test_ablation_order_tradeoff;
        Alcotest.test_case "fusion ablation" `Slow test_ablation_fusion_always_helps;
        Alcotest.test_case "online softmax ablation" `Slow
          test_ablation_online_softmax_compute_bound;
        Alcotest.test_case "extras compile & execute" `Quick test_extras_compile_and_execute;
        Alcotest.test_case "outlier sweep" `Slow test_outlier_sweep_monotone_collapse;
        Alcotest.test_case "unknown id" `Quick test_print_unknown_id;
      ] );
  ]
