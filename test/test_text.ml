(* Tests for the textual kernel format: roundtrips over the whole library
   (including unrolled/vectorized forms and randomly generated kernels),
   hand-written sources, and parse-error reporting. *)
open Picachu_ir

let qtest = QCheck_alcotest.to_alcotest

let kernels_equal (a : Kernel.t) (b : Kernel.t) =
  a.Kernel.name = b.Kernel.name
  && a.Kernel.klass = b.Kernel.klass
  && a.Kernel.inputs = b.Kernel.inputs
  && a.Kernel.outputs = b.Kernel.outputs
  && a.Kernel.scalar_inputs = b.Kernel.scalar_inputs
  && List.length a.Kernel.loops = List.length b.Kernel.loops
  && List.for_all2
       (fun (la : Kernel.loop) (lb : Kernel.loop) ->
         la.Kernel.label = lb.Kernel.label
         && la.Kernel.reduction = lb.Kernel.reduction
         && la.Kernel.step = lb.Kernel.step
         && la.Kernel.vector_width = lb.Kernel.vector_width
         && la.Kernel.pre = lb.Kernel.pre
         && la.Kernel.exports = lb.Kernel.exports
         && la.Kernel.body = lb.Kernel.body)
       a.Kernel.loops b.Kernel.loops

let test_roundtrip_library () =
  List.iter
    (fun variant ->
      List.iter
        (fun k ->
          let text = Kernel_text.to_string k in
          let back = Kernel_text.of_string text in
          Alcotest.(check bool) (k.Kernel.name ^ " roundtrips") true (kernels_equal k back))
        (Kernels.all variant @ Kernels.extras variant))
    [ Kernels.picachu; Kernels.Baseline ]

let test_roundtrip_transformed () =
  let k = Transform.unroll_kernel 4 (Kernels.layernorm Kernels.picachu) in
  let back = Kernel_text.of_string (Kernel_text.to_string k) in
  Alcotest.(check bool) "unrolled roundtrips" true (kernels_equal k back);
  let kv = Transform.vectorize_kernel 4 (Kernels.relu Kernels.picachu) in
  let back = Kernel_text.of_string (Kernel_text.to_string kv) in
  Alcotest.(check bool) "vectorized roundtrips" true (kernels_equal kv back)

let test_handwritten_source () =
  let src =
    {|
# doubled input, hand-written
kernel double EO
inputs x
outputs y
scalars n
loop double.1 step=1 vw=1
  %0 = const 0x0p+0
  %1 = phi %0 %6
  %2 = load x %1
  %3 = const 0x1p+1
  %4 = mul %2 %3
  %5 = store y %1 %4
  %6 = add %1 %zz
  %7 = input n
  %8 = cmp.lt %6 %7
  %9 = br %8
endloop
endkernel
|}
  in
  (* the %zz above is deliberately malformed to check error reporting *)
  Alcotest.(check bool) "malformed ref rejected" true
    (try
       ignore (Kernel_text.of_string src);
       false
     with Kernel_text.Parse_error _ -> true)

let test_handwritten_valid () =
  let src =
    {|
kernel double EO
inputs x
outputs y
scalars n
loop double.1 step=1 vw=1
  %0 = const 0x0p+0
  %1 = phi %0 %7
  %2 = load x %1
  %3 = const 0x1p+1
  %4 = mul %2 %3
  %5 = store y %1 %4
  %6 = const 0x1p+0
  %7 = add %1 %6
  %8 = input n
  %9 = cmp.lt %7 %8
  %10 = br %9
endloop
endkernel
|}
  in
  let k = Kernel_text.of_string src in
  let res =
    Interp.run k
      {
        Interp.arrays = [ ("x", [| 1.0; 2.5; -3.0 |]) ];
        scalars = [ ("n", 3.0) ];
      }
  in
  let y = List.assoc "y" res.Interp.out_arrays in
  Alcotest.(check bool) "parsed kernel computes" true (y = [| 2.0; 5.0; -6.0 |])

let test_pre_expressions_roundtrip () =
  (* layernorm's glue exercises nested Sbin and Sisqrt *)
  let k = Kernels.layernorm Kernels.picachu in
  let back = Kernel_text.of_string (Kernel_text.to_string k) in
  let pre_of (kk : Kernel.t) = (List.nth kk.Kernel.loops 1).Kernel.pre in
  Alcotest.(check bool) "glue preserved" true (pre_of k = pre_of back)

let test_parse_errors () =
  let cases =
    [
      ("", "missing header");
      ("kernel a EO\n", "missing endkernel");
      ("kernel a EO\nloop l step=1 vw=1\nendkernel\n", "unterminated or invalid");
      ("garbage\nendkernel\n", "top-level garbage");
    ]
  in
  List.iter
    (fun (src, what) ->
      Alcotest.(check bool) what true
        (try
           ignore (Kernel_text.of_string src);
           false
         with Kernel_text.Parse_error _ -> true))
    cases

let test_line_numbers_in_errors () =
  let src = "kernel a EO\nloop l step=1 vw=1\n  %0 = frobnicate\nendloop\nendkernel\n" in
  (try ignore (Kernel_text.of_string src) with
  | Kernel_text.Parse_error msg ->
      Alcotest.(check bool) "mentions line 3" true
        (String.length msg >= 6 && String.sub msg 0 6 = "line 3"))

(* random-kernel roundtrip: reuse the fuzz generator *)
let prop_roundtrip_random =
  QCheck.Test.make ~name:"text roundtrip on random kernels" ~count:80 QCheck.small_nat
    (fun seed ->
      let k = Test_fuzz.random_kernel seed in
      kernels_equal k (Kernel_text.of_string (Kernel_text.to_string k)))

let suite =
  [
    ( "kernel-text",
      [
        Alcotest.test_case "library roundtrip" `Quick test_roundtrip_library;
        Alcotest.test_case "transformed roundtrip" `Quick test_roundtrip_transformed;
        Alcotest.test_case "malformed source" `Quick test_handwritten_source;
        Alcotest.test_case "hand-written kernel runs" `Quick test_handwritten_valid;
        Alcotest.test_case "glue expressions" `Quick test_pre_expressions_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "error line numbers" `Quick test_line_numbers_in_errors;
        qtest prop_roundtrip_random;
      ] );
  ]
