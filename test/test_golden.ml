(* Golden regression values.

   Everything in the repository is deterministic (fixed seeds, no wall-clock
   or randomness in scripts), so a handful of exact pinned values catches
   silent behavioural drift in the mapper, the numerics and the surrogate.
   If a deliberate change moves one of these, update the pin and say why in
   the commit. *)
open Picachu
module Kernels = Picachu_ir.Kernels
module Mz = Picachu_llm.Model_zoo

let test_mapper_pins () =
  let opts = Compiler.picachu_options () in
  let cycles name = Compiler.pass_cycles (Compiler.cached opts Kernels.picachu name) ~n:1024 in
  (* pinned from the calibrated run recorded in EXPERIMENTS.md *)
  Alcotest.(check int) "relu pass" 519 (cycles "relu");
  Alcotest.(check int) "gelu pass" 522 (cycles "gelu");
  Alcotest.(check int) "softmax pass" 3629 (cycles "softmax")

let test_numerics_pins () =
  Alcotest.(check int) "fp16 of 1/3" 0x3555 (Picachu_numerics.Fp16.of_float (1.0 /. 3.0));
  Alcotest.(check (float 1e-12)) "taylor exp(1)" 2.7182817459106445
    (Picachu_numerics.Taylor.exp 1.0)

let test_surrogate_pins () =
  let sur = Picachu_llm.Surrogate.create ~seed:42 (Picachu_llm.Surrogate.surrogate_of Mz.gpt2_xl) in
  let rng = Picachu_tensor.Rng.create 7 in
  let stream = Picachu_llm.Surrogate.sample sur rng ~temperature:0.4 ~len:32 () in
  (* the sampled stream itself is a deterministic artifact *)
  Alcotest.(check int) "first token" stream.(0) stream.(0);
  let p1 = Picachu_llm.Ppl.ppl sur Picachu_numerics.Approx.exact stream in
  let p2 = Picachu_llm.Ppl.ppl sur Picachu_numerics.Approx.exact stream in
  Alcotest.(check (float 0.0)) "ppl deterministic" p1 p2;
  Alcotest.(check bool) "ppl in sane range" true (p1 > 1.0 && p1 < 100.0)

let test_cost_pins () =
  let c = Picachu_cgra.Cost.cgra_cost (Picachu_cgra.Arch.picachu ()) in
  Alcotest.(check (float 0.02)) "cgra area" 1.0 c.Picachu_cgra.Cost.area_mm2;
  Alcotest.(check (float 1.0)) "cgra power" 64.2 c.Picachu_cgra.Cost.power_mw

let suite =
  [
    ( "golden",
      [
        Alcotest.test_case "mapper pins" `Quick test_mapper_pins;
        Alcotest.test_case "numerics pins" `Quick test_numerics_pins;
        Alcotest.test_case "surrogate pins" `Quick test_surrogate_pins;
        Alcotest.test_case "cost pins" `Quick test_cost_pins;
      ] );
  ]
