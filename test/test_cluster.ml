(* Cluster-serving suite: the event-queue ordering contract (qcheck oracle),
   the PR 5 golden-trace replay through a 1-replica fault-free cluster,
   pool-size and repeat determinism at every fault profile, the chaos
   acceptance scenario (defenses on >= 0.99 availability, defenses off
   measurably lower), the availability accounting identity as a property,
   and hand-checked router/timeout semantics. *)
open Picachu
module Parallel = Picachu_parallel.Parallel
module Mz = Picachu_llm.Model_zoo

let qtest = QCheck_alcotest.to_alcotest
let pool_sizes = [ 1; 2; 4 ]

(* the same synthetic flat cost source the scheduler suite hand-computes
   against: fixed prefill, flat decode — fault timing is the only variable *)
let flat_cost ?(prefill = 1.0) ?(decode = 0.1) () : Scheduler.cost_source =
 fun (r : Serving.request) ->
  ( {
      Serving.prefill_s = prefill;
      decode_s_at =
        [ (r.Serving.prompt, decode); (r.Serving.prompt + r.Serving.generate, decode) ];
    },
    Serving.Fused )

let arrival id at prompt generate =
  { Scheduler.id; at; request = { Serving.prompt; generate } }

(* bit-exact digest over a cluster report, in the exact format of the
   scheduler suite's [fleet_digest] (goodput stands in for throughput —
   same tokens/makespan formula) so the two are directly comparable *)
let cluster_digest (r : Cluster.report) =
  let b = Buffer.create 512 in
  List.iter
    (fun (c : Scheduler.completion) ->
      Buffer.add_string b
        (Printf.sprintf "%d:%Lx:%Lx:%Lx:%Lx;" c.Scheduler.c_id
           (Int64.bits_of_float c.Scheduler.c_arrival_s)
           (Int64.bits_of_float c.Scheduler.c_ttft_s)
           (Int64.bits_of_float c.Scheduler.c_latency_s)
           (Int64.bits_of_float c.Scheduler.c_tpot_s)))
    r.Cluster.completions;
  Buffer.add_string b
    (Printf.sprintf "d%d|m%Lx|t%Lx" r.Cluster.dropped
       (Int64.bits_of_float r.Cluster.makespan_s)
       (Int64.bits_of_float r.Cluster.goodput_tps));
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------ event queue *)

let test_event_queue_basics () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Event_queue.push q ~at:2.0 "b";
  Event_queue.push q ~at:1.0 "a";
  Event_queue.push q ~at:3.0 "c";
  Alcotest.(check int) "length" 3 (Event_queue.length q);
  (match Event_queue.peek q with
  | Some (t, v) ->
      Alcotest.(check (float 0.0)) "peek time" 1.0 t;
      Alcotest.(check string) "peek value" "a" v
  | None -> Alcotest.fail "peek on non-empty queue");
  Alcotest.(check (option string)) "pop a" (Some "a")
    (Option.map snd (Event_queue.pop q));
  Alcotest.(check (option string)) "pop b" (Some "b")
    (Option.map snd (Event_queue.pop q));
  Alcotest.(check (option string)) "pop c" (Some "c")
    (Option.map snd (Event_queue.pop q));
  Alcotest.(check bool) "drained" true (Event_queue.pop q = None);
  Alcotest.check_raises "nan time"
    (Invalid_argument "Event_queue.push: NaN time") (fun () ->
      Event_queue.push q ~at:Float.nan "x")

let test_event_queue_stable_ties () =
  (* equal times must pop in push order — the determinism anchor the whole
     cluster simulation leans on *)
  let q = Event_queue.create () in
  List.iteri (fun i t -> Event_queue.push q ~at:t i) [ 1.0; 1.0; 0.5; 1.0; 0.5 ];
  let order = List.init 5 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list int)) "fifo within a timestamp" [ 2; 4; 0; 1; 3 ] order

let prop_event_queue_matches_sorted_oracle =
  (* dequeue order == a stable sort of the push sequence by time: the heap
     must agree with the obvious list-based oracle, ties included (times
     drawn from a tiny grid to force collisions) *)
  QCheck.Test.make ~name:"event queue drains in stable (time, seq) order"
    ~count:500
    QCheck.(list (pair (int_range 0 7) small_nat))
    (fun entries ->
      let q = Event_queue.create () in
      List.iteri
        (fun i (t, v) -> Event_queue.push q ~at:(float_of_int t /. 4.0) (i, v))
        entries;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, v) -> drain ((t, v) :: acc)
      in
      let got = drain [] in
      let oracle =
        List.mapi (fun i (t, v) -> (float_of_int t /. 4.0, (i, v))) entries
        |> List.stable_sort (fun (t1, _) (t2, _) -> Float.compare t1 t2)
      in
      got = oracle)

(* --------------------------------------------------- golden-trace replay *)

let golden_cluster_config =
  Cluster.default_config ~replicas:1 ~slots:8 ~queue_capacity:64
    ~defenses:Cluster.no_defenses ()

let test_golden_replay () =
  (* a 1-replica, zero-fault, defense-free cluster is the scheduler: the
     PR 5 pinned digest must hold bit-for-bit over the cluster's report,
     and it must equal a live Scheduler.serve digest of the same trace *)
  let r =
    Cluster.serve golden_cluster_config (Simulator.default_config ()) Mz.llama2_7b
      Test_scheduler.golden_spec
  in
  Alcotest.(check int) "answered" 12 r.Cluster.answered;
  Alcotest.(check int) "dropped" 0 r.Cluster.dropped;
  Alcotest.(check int) "failed" 0 r.Cluster.failed;
  Alcotest.(check bool) "identity" true (Cluster.accounting_ok r);
  Alcotest.(check string) "pinned PR 5 digest" "16d32789d5caa77bf3e6f2892fe7a3e9"
    (cluster_digest r);
  Alcotest.(check string) "live scheduler equivalence"
    (Test_scheduler.fleet_digest (Test_scheduler.golden_fleet Scheduler.Continuous))
    (cluster_digest r)

(* ------------------------------------------- determinism across profiles *)

let profile_roster =
  [
    ("none", Cluster.profile_none);
    ("crash", Cluster.profile_crash ~seed:2 ~mttf:5.0 ~mttr:2.0 ());
    ("straggler", Cluster.profile_straggler ~seed:2 ~mttf:5.0 ~mttr:2.0 ());
    ("mixed", Cluster.profile_mixed ~seed:2 ~mttf:5.0 ~mttr:2.0 ());
  ]

let test_pool_invariant_every_profile () =
  (* bit-identical across domain-pool sizes and repeat runs, at every fault
     profile — the failure model must not leak scheduling nondeterminism *)
  let trace = Scheduler.trace (Scheduler.default_trace ~seed:9 ~rps:3.0 ~requests:24 ()) in
  let run profile =
    let cfg =
      Cluster.default_config ~replicas:3 ~slots:4 ~profile
        ~defenses:{ Cluster.default_defenses with Cluster.timeout_s = 20.0 }
        ()
    in
    cluster_digest (Cluster.run cfg ~cost:(flat_cost ()) trace)
  in
  List.iter
    (fun (name, profile) ->
      let reference = Parallel.with_pool ~size:1 (fun () -> run profile) in
      List.iter
        (fun size ->
          Parallel.with_pool ~size (fun () ->
              Alcotest.(check string)
                (Printf.sprintf "%s at pool size %d" name size)
                reference (run profile);
              Alcotest.(check string)
                (Printf.sprintf "%s repeat at pool size %d" name size)
                reference (run profile)))
        pool_sizes)
    profile_roster

(* ------------------------------------------------------- chaos acceptance *)

let chaos_profile = Cluster.profile_mixed ~seed:3 ~mttf:6.0 ~mttr:2.0 ()

let chaos_trace =
  Scheduler.trace
    {
      (Scheduler.default_trace ~seed:5 ~rps:2.0 ~requests:60 ()) with
      Scheduler.prompt_buckets = [| 32; 64 |];
      generate_buckets = [| 8; 16 |];
    }

let chaos_config defenses =
  Cluster.default_config ~replicas:3 ~router:Cluster.Least_loaded ~slots:4
    ~profile:chaos_profile ~defenses ()

let test_chaos_defended_vs_undefended () =
  (* the acceptance pin: under a crash+straggler mix the defended cluster
     holds >= 0.99 availability while the same cluster with every defense
     off is measurably worse — and the accounting identity holds in both *)
  let defended =
    Cluster.run
      (chaos_config { Cluster.default_defenses with Cluster.timeout_s = 20.0 })
      ~cost:(flat_cost ()) chaos_trace
  in
  let undefended =
    Cluster.run (chaos_config Cluster.no_defenses) ~cost:(flat_cost ()) chaos_trace
  in
  Alcotest.(check bool) "identity (defended)" true (Cluster.accounting_ok defended);
  Alcotest.(check bool) "identity (undefended)" true (Cluster.accounting_ok undefended);
  Alcotest.(check bool) "faults actually fired" true
    (defended.Cluster.counters.Cluster.crashes > 0);
  Alcotest.(check bool) "breakers actually tripped" true
    (defended.Cluster.counters.Cluster.breaker_trips > 0);
  Alcotest.(check bool) "defended availability >= 0.99" true
    (defended.Cluster.availability >= 0.99);
  Alcotest.(check bool) "undefended measurably lower" true
    (undefended.Cluster.availability < 0.99);
  Alcotest.(check bool) "defenses strictly help" true
    (defended.Cluster.availability > undefended.Cluster.availability)

(* ------------------------------------------------- accounting properties *)

let prop_accounting_identity =
  (* answered + dropped + failed = arrivals at every seed and fault mix;
     with an unbounded deadline and crash re-queuing on, nothing is ever
     lost (failed = 0) and the whole run is repeat-deterministic *)
  QCheck.Test.make ~name:"availability accounting identity under faults" ~count:30
    QCheck.(triple (int_range 1 1000) (int_range 0 2) (int_range 2 3))
    (fun (seed, mode, replicas) ->
      let profile =
        match mode with
        | 0 -> Cluster.profile_crash ~seed ~mttf:4.0 ~mttr:2.0 ()
        | 1 -> Cluster.profile_straggler ~seed ~mttf:4.0 ~mttr:2.0 ()
        | _ -> Cluster.profile_mixed ~seed ~mttf:4.0 ~mttr:2.0 ()
      in
      let cfg =
        Cluster.default_config ~replicas ~slots:4 ~seed ~profile
          ~defenses:{ Cluster.default_defenses with Cluster.timeout_s = infinity }
          ()
      in
      let trace =
        Scheduler.trace (Scheduler.default_trace ~seed ~rps:4.0 ~requests:16 ())
      in
      let r = Cluster.run cfg ~cost:(flat_cost ()) trace in
      let r' = Cluster.run cfg ~cost:(flat_cost ()) trace in
      Cluster.accounting_ok r
      && r.Cluster.failed = 0
      && r.Cluster.answered = r.Cluster.arrivals - r.Cluster.dropped
      && cluster_digest r = cluster_digest r')

let test_retry_budget_exhaustion () =
  (* a deadline shorter than the prefill makes every attempt time out: the
     bounded retry budget must drain, requests must land in [failed] (not
     hang, not raise), and the identity must still balance *)
  let cfg =
    Cluster.default_config ~replicas:2 ~slots:4
      ~defenses:{ Cluster.default_defenses with Cluster.timeout_s = 0.5; hedge = false }
      ()
  in
  let trace = List.init 6 (fun i -> arrival i (0.2 *. float_of_int i) 8 4) in
  let r = Cluster.run cfg ~cost:(flat_cost ()) trace in
  Alcotest.(check bool) "identity" true (Cluster.accounting_ok r);
  Alcotest.(check int) "nothing answered under an impossible deadline" 0
    r.Cluster.answered;
  Alcotest.(check int) "every request failed" 6 r.Cluster.failed;
  Alcotest.(check bool) "timeouts counted" true (r.Cluster.counters.Cluster.timeouts > 0);
  Alcotest.(check bool) "retries spent" true (r.Cluster.counters.Cluster.retries > 0)

(* ----------------------------------------------------------------- routers *)

let test_round_robin_spreads () =
  let cfg =
    Cluster.default_config ~replicas:2 ~defenses:Cluster.no_defenses ()
  in
  let trace = List.init 4 (fun i -> arrival i 0.0 8 2) in
  let r = Cluster.run cfg ~cost:(flat_cost ()) trace in
  Alcotest.(check int) "all answered" 4 r.Cluster.answered;
  Alcotest.(check (array int)) "alternating dispatch" [| 2; 2 |]
    r.Cluster.served_per_replica

let test_other_routers_answer_everything () =
  let trace = Scheduler.trace (Scheduler.default_trace ~seed:4 ~rps:6.0 ~requests:20 ()) in
  List.iter
    (fun router ->
      let cfg =
        Cluster.default_config ~replicas:3 ~router ~slots:4
          ~defenses:Cluster.no_defenses ()
      in
      let r = Cluster.run cfg ~cost:(flat_cost ()) trace in
      Alcotest.(check int)
        (Printf.sprintf "%s answers everything" (Cluster.router_name router))
        20 r.Cluster.answered;
      Alcotest.(check bool)
        (Printf.sprintf "%s identity" (Cluster.router_name router))
        true (Cluster.accounting_ok r))
    [ Cluster.Least_loaded; Cluster.Power_of_two ]

let suite =
  [
    ( "cluster",
      [
        Alcotest.test_case "event queue basics" `Quick test_event_queue_basics;
        Alcotest.test_case "event queue stable ties" `Quick test_event_queue_stable_ties;
        qtest prop_event_queue_matches_sorted_oracle;
        Alcotest.test_case "golden replay" `Quick test_golden_replay;
        Alcotest.test_case "pool-invariant every profile" `Quick
          test_pool_invariant_every_profile;
        Alcotest.test_case "chaos defended vs undefended" `Quick
          test_chaos_defended_vs_undefended;
        qtest prop_accounting_identity;
        Alcotest.test_case "retry budget exhaustion" `Quick test_retry_budget_exhaustion;
        Alcotest.test_case "round-robin spreads" `Quick test_round_robin_spreads;
        Alcotest.test_case "other routers answer everything" `Quick
          test_other_routers_answer_everything;
      ] );
  ]
