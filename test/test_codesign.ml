(* Co-design search (lib/picachu/codesign.ml) and the ONE-SA baseline
   (lib/baselines/one_sa.ml).

   The search determinism tests are the load-bearing ones: the annealer
   batches candidate evaluations over the domain pool and threads warm-start
   hint stores across moves, and its whole trace must be a pure function of
   (config, seed) — independent of the pool size and of compile-cache state
   left behind by earlier runs. *)

open Picachu
module Arch = Picachu_cgra.Arch
module Fu = Picachu_cgra.Fu
module Parallel = Picachu_parallel.Parallel
module Registry = Picachu_nonlinear.Registry
module Workload = Picachu_llm.Workload
module Mz = Picachu_llm.Model_zoo
module One_sa = Picachu_baselines.One_sa
module Gemmini = Picachu_baselines.Gemmini

let small_config = { Codesign.default_config with Codesign.iters = 8; seed = 3 }

let trace_string (r : Codesign.result) =
  String.concat "\n"
    (List.map
       (fun (e : Codesign.trace_entry) ->
         Printf.sprintf "%d %s %s %s %b %.12g" e.Codesign.step e.Codesign.move
           e.Codesign.arch_name
           (match e.Codesign.score with
           | Some s -> Printf.sprintf "%.12g" s
           | None -> "-")
           e.Codesign.accepted e.Codesign.best_score)
       r.Codesign.trace)

let test_pool_determinism () =
  (* the compile cache is cleared before each run so every pool size does
     its own compiles — a shared cache would mask order dependence *)
  let run_at size =
    Compiler.cache_clear ();
    Parallel.with_pool ~size (fun () -> Codesign.run ~config:small_config ())
  in
  let r1 = run_at 1 in
  let r2 = run_at 2 in
  let r4 = run_at 4 in
  Alcotest.(check string) "pool 2 trace" (trace_string r1) (trace_string r2);
  Alcotest.(check string) "pool 4 trace" (trace_string r1) (trace_string r4);
  Alcotest.(check string) "best arch digest"
    (Arch.structural_digest r1.Codesign.best_arch)
    (Arch.structural_digest r4.Codesign.best_arch)

let test_repeat_determinism () =
  let r1 = Codesign.run ~config:small_config () in
  let r2 = Codesign.run ~config:small_config () in
  Alcotest.(check string) "repeat trace" (trace_string r1) (trace_string r2);
  Alcotest.(check int) "trace covers the budget" small_config.Codesign.iters
    (List.length r1.Codesign.trace)

(* the CI smoke's configuration: the discovered point must strictly beat the
   paper's hand-designed 4x4 on perf/area within a small seeded budget *)
let test_beats_reference () =
  let config = { Codesign.default_config with Codesign.iters = 16; seed = 7 } in
  let r = Codesign.run ~config () in
  let ref_p = Explore.reference_point () in
  Alcotest.(check bool) "strictly above the 4x4 reference" true
    (r.Codesign.best.Explore.perf_per_area > ref_p.Explore.perf_per_area);
  Alcotest.(check (float 1e-9)) "init point is the reference"
    ref_p.Explore.perf_per_area r.Codesign.init_point.Explore.perf_per_area

let test_search_invariants () =
  let r = Codesign.run ~config:small_config () in
  Alcotest.(check int) "evaluated = budget" small_config.Codesign.iters
    r.Codesign.evaluated;
  List.iter
    (fun (e : Codesign.trace_entry) ->
      Alcotest.(check bool) "candidate names carry the sa- prefix" true
        (String.length e.Codesign.arch_name >= 3
        && String.sub e.Codesign.arch_name 0 3 = "sa-"))
    r.Codesign.trace;
  (* best_score is monotone along the trace *)
  ignore
    (List.fold_left
       (fun prev (e : Codesign.trace_entry) ->
         Alcotest.(check bool) "best monotone" true (e.Codesign.best_score >= prev);
         e.Codesign.best_score)
       Float.neg_infinity r.Codesign.trace);
  (* corners stay BrT through every move *)
  let a = r.Codesign.best_arch in
  List.iter
    (fun (row, col) ->
      let idx = (row * a.Arch.cols) + col in
      Alcotest.(check bool) "corner is BrT" true (a.Arch.kinds.(idx) = Fu.BrT))
    [
      (0, 0);
      (0, a.Arch.cols - 1);
      (a.Arch.rows - 1, 0);
      (a.Arch.rows - 1, a.Arch.cols - 1);
    ]

let test_constrained_mode () =
  let ref_p = Explore.reference_point () in
  let cap = ref_p.Explore.area_mm2 *. 0.8 in
  let config =
    {
      Codesign.default_config with
      Codesign.iters = 12;
      seed = 5;
      objective = Codesign.Throughput_under_cap cap;
    }
  in
  let r = Codesign.run ~config () in
  Alcotest.(check bool) "best respects the area cap" true
    (r.Codesign.best.Explore.area_mm2 <= cap);
  (* under the cap the score is the geomean throughput *)
  match Codesign.score config.Codesign.objective r.Codesign.best with
  | Some s ->
      Alcotest.(check (float 1e-9)) "score = throughput"
        r.Codesign.best.Explore.geomean_throughput s
  | None -> Alcotest.fail "best point scored infeasible"

(* --------------------------------------------------------------- ONE-SA *)

let nl_instance ?(count = 1) op =
  { Workload.op; rows = 64; dim = 256; nl_count = count; nl_tag = "t" }

let test_onesa_accounting () =
  let w = Workload.of_model Mz.llama2_7b ~seq:512 in
  let r = One_sa.run One_sa.default w in
  Alcotest.(check int) "total = gemm + nl" r.One_sa.total_cycles
    (r.One_sa.gemm_cycles + r.One_sa.nl_cycles_total);
  Alcotest.(check bool) "nonlinear work is visible" true
    (r.One_sa.nl_cycles_total > 0)

let test_onesa_no_cliff () =
  (* every operator runs on the array: cost per element is bounded and
     positive across the whole registry (no scalar-fallback cliff) *)
  List.iter
    (fun op ->
      let c = One_sa.mac_ops_per_elem op in
      Alcotest.(check bool)
        (Printf.sprintf "%s cost sane" (Registry.name op))
        true
        (c >= 1.0 && c <= 16.0))
    Registry.all;
  (* ... in contrast to Gemmini, whose scalar fallback makes silu an order
     of magnitude slower than ONE-SA's in-array evaluation *)
  let silu = nl_instance Registry.Silu in
  Alcotest.(check bool) "beats the Gemmini scalar cliff on silu" true
    (One_sa.nl_cycles One_sa.default silu
    < Gemmini.nl_cycles Gemmini.default silu)

let test_onesa_mode_switch () =
  (* the GEMM <-> nonlinear reconfiguration is charged once per instance *)
  let one = One_sa.nl_cycles One_sa.default (nl_instance Registry.Gelu) in
  let two =
    One_sa.nl_cycles One_sa.default (nl_instance ~count:2 Registry.Gelu)
  in
  Alcotest.(check int) "two instances cost twice one" (2 * one) two;
  Alcotest.(check bool) "switch overhead present" true
    (one > One_sa.default.One_sa.switch_cycles)

let test_onesa_monotone () =
  let cost dim =
    One_sa.nl_cycles One_sa.default
      { Workload.op = Registry.Softmax; rows = 16; dim; nl_count = 1; nl_tag = "t" }
  in
  Alcotest.(check bool) "cycles monotone in elements" true
    (cost 64 < cost 256 && cost 256 < cost 1024);
  Alcotest.(check bool) "relu cheaper than softmax" true
    (One_sa.nl_cycles One_sa.default (nl_instance Registry.Relu)
    < One_sa.nl_cycles One_sa.default (nl_instance Registry.Softmax))

let suite =
  [
    ( "codesign",
      [
        Alcotest.test_case "pool determinism" `Slow test_pool_determinism;
        Alcotest.test_case "repeat determinism" `Quick test_repeat_determinism;
        Alcotest.test_case "beats reference" `Quick test_beats_reference;
        Alcotest.test_case "search invariants" `Quick test_search_invariants;
        Alcotest.test_case "constrained mode" `Quick test_constrained_mode;
      ] );
    ( "one-sa",
      [
        Alcotest.test_case "accounting" `Quick test_onesa_accounting;
        Alcotest.test_case "no scalar cliff" `Quick test_onesa_no_cliff;
        Alcotest.test_case "mode switch per instance" `Quick test_onesa_mode_switch;
        Alcotest.test_case "monotone in elements" `Quick test_onesa_monotone;
      ] );
  ]
