(* Tests for the CGRA architecture model, the modulo-scheduling mapper
   (including a full mapping-validity checker), and the cost model. *)
open Picachu_ir
open Picachu_dfg
open Picachu_cgra

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ arch *)

let test_picachu_layout () =
  let a = Arch.picachu () in
  Alcotest.(check int) "16 tiles" 16 (Arch.tiles a);
  List.iter
    (fun idx ->
      Alcotest.(check string) "corner is BrT" "BrT"
        (Fu.kind_name (Arch.tile_kind a idx)))
    [ 0; 3; 12; 15 ];
  let cots = ref 0 and bats = ref 0 in
  Array.iter
    (fun k -> match k with Fu.CoT -> incr cots | Fu.BaT -> incr bats | _ -> ())
    a.Arch.kinds;
  Alcotest.(check int) "CoT majority" 8 !cots;
  Alcotest.(check int) "BaT count" 4 !bats

let test_mem_ports_on_edge_columns () =
  let a = Arch.picachu () in
  for t = 0 to 15 do
    let _, c = Arch.coords a t in
    Alcotest.(check bool) "ports on columns 0 and 3" (c = 0 || c = 3)
      (Arch.has_mem_port a t)
  done

let test_distance_properties () =
  let a = Arch.picachu () in
  Alcotest.(check int) "self" 0 (Arch.distance a 5 5);
  Alcotest.(check int) "corner to corner" 6 (Arch.distance a 0 15);
  Alcotest.(check int) "neighbours" 1 (Arch.distance a 0 1)

let prop_distance_symmetric =
  QCheck.Test.make ~name:"mesh distance is symmetric" ~count:200
    (QCheck.pair (QCheck.int_range 0 15) (QCheck.int_range 0 15)) (fun (i, j) ->
      let a = Arch.picachu () in
      Arch.distance a i j = Arch.distance a j i)

let prop_xy_path_length =
  QCheck.Test.make ~name:"xy path length matches distance" ~count:200
    (QCheck.pair (QCheck.int_range 0 15) (QCheck.int_range 0 15)) (fun (i, j) ->
      let a = Arch.picachu () in
      let hops = List.length (Arch.xy_path a i j) in
      let d = Arch.distance a i j in
      if d = 0 then hops = 0 else hops = d - 1)

let test_capabilities () =
  let pic = Arch.picachu () and base = Arch.baseline () in
  (* BrT corner supports phi; CoT supports mul; baseline never fused/LUT *)
  Alcotest.(check bool) "BrT phi" true (Arch.supports pic ~tile:0 Op.Phi);
  Alcotest.(check bool) "BrT no mul" false (Arch.supports pic ~tile:0 (Op.Bin Op.Mul));
  Alcotest.(check bool) "baseline no fused" false
    (Arch.supports base ~tile:5 (Op.Fused Op.Mul_add));
  Alcotest.(check bool) "baseline no lut" false (Arch.supports base ~tile:5 (Op.Lut "phi"));
  Alcotest.(check bool) "baseline primitive mul" true
    (Arch.supports base ~tile:5 (Op.Bin Op.Mul));
  (* memory capability requires the port *)
  let non_port =
    let rec find t = if Arch.has_mem_port pic t then find (t + 1) else t in
    find 0
  in
  Alcotest.(check bool) "load needs port" false
    (Arch.supports pic ~tile:non_port (Op.Load "x"))

let test_universal_supports_everything () =
  let u = Arch.universal () in
  List.iter
    (fun op ->
      Alcotest.(check bool) (Op.name op ^ " on UniT") true (Arch.supports u ~tile:5 op))
    [ Op.Phi; Op.Bin Op.Mul; Op.Lut "phi"; Op.Fp2fx_int; Op.Fused Op.Cmp_br; Op.Select ]

let test_baseline_latencies () =
  let base = Arch.baseline () in
  Alcotest.(check int) "shift emulated" 3 (Arch.latency base Op.Shift_exp);
  Alcotest.(check int) "div" 4 (Arch.latency base (Op.Bin Op.Div));
  let pic = Arch.picachu () in
  Alcotest.(check int) "shift native" 1 (Arch.latency pic Op.Shift_exp)

(* ---------------------------------------------------------------- mapper *)

(* Full validity check: capability, slot exclusivity, dependence timing. *)
let assert_valid_mapping arch (g : Dfg.t) (m : Mapper.mapping) =
  let lat u = Arch.latency arch g.Dfg.nodes.(u).Dfg.op in
  Alcotest.(check bool) "ii >= min_ii" true (m.Mapper.ii >= Mapper.min_ii arch g);
  let slots = Hashtbl.create 64 in
  Array.iteri
    (fun u (p : Mapper.placement) ->
      Alcotest.(check bool) "scheduled" true (p.Mapper.time >= 0);
      Alcotest.(check bool)
        (Printf.sprintf "node %d capability" u)
        true
        (Arch.supports arch ~tile:p.Mapper.tile g.Dfg.nodes.(u).Dfg.op);
      let key = (p.Mapper.tile, p.Mapper.time mod m.Mapper.ii) in
      (match Hashtbl.find_opt slots key with
      | Some other -> Alcotest.failf "slot conflict between nodes %d and %d" u other
      | None -> Hashtbl.add slots key u))
    m.Mapper.schedule;
  List.iter
    (fun (e : Dfg.edge) ->
      let ps = m.Mapper.schedule.(e.Dfg.src) and pd = m.Mapper.schedule.(e.Dfg.dst) in
      if not (e.Dfg.src = e.Dfg.dst) then begin
        let needed =
          ps.Mapper.time + lat e.Dfg.src
          + Arch.distance arch ps.Mapper.tile pd.Mapper.tile
          - (e.Dfg.distance * m.Mapper.ii)
        in
        if pd.Mapper.time < needed then
          Alcotest.failf "dependence %d->%d violated (t=%d < %d)" e.Dfg.src e.Dfg.dst
            pd.Mapper.time needed
      end
      else if lat e.Dfg.src > e.Dfg.distance * m.Mapper.ii then
        Alcotest.fail "self-loop latency exceeds ii")
    g.Dfg.edges

let all_loop_dfgs variant ~fuse =
  List.concat_map
    (fun (k : Kernel.t) ->
      List.map
        (fun loop ->
          let g = Dfg.of_loop loop in
          if fuse then Fuse.fuse g else g)
        k.Kernel.loops)
    (Kernels.all variant)

let test_mappings_valid_picachu () =
  let arch = Arch.picachu () in
  List.iter
    (fun g -> assert_valid_mapping arch g (Mapper.map_dfg arch g))
    (all_loop_dfgs Kernels.picachu ~fuse:true)

let test_mappings_valid_baseline () =
  let arch = Arch.baseline () in
  List.iter
    (fun g -> assert_valid_mapping arch g (Mapper.map_dfg arch g))
    (all_loop_dfgs Kernels.Baseline ~fuse:false)

let test_mappings_valid_unrolled () =
  let arch = Arch.picachu () in
  List.iter
    (fun (k : Kernel.t) ->
      List.iter
        (fun loop ->
          let g = Fuse.fuse (Dfg.of_loop (Transform.unroll 2 loop)) in
          assert_valid_mapping arch g (Mapper.map_dfg arch g))
        k.Kernel.loops)
    [ Kernels.softmax Kernels.picachu; Kernels.layernorm Kernels.picachu ]

let test_unmappable_raises () =
  (* a LUT node cannot be placed on the homogeneous baseline *)
  let g = Dfg.of_loop (List.hd (Kernels.gelu Kernels.picachu).Kernel.loops) in
  Alcotest.(check bool) "raises Unmappable" true
    (try
       ignore (Mapper.map_dfg (Arch.baseline ()) g);
       false
     with Mapper.Unmappable _ -> true)

let test_loop_cycles () =
  let arch = Arch.picachu () in
  let g = Fuse.fuse (Dfg.of_loop (List.hd (Kernels.relu Kernels.picachu).Kernel.loops)) in
  let m = Mapper.map_dfg arch g in
  Alcotest.(check int) "zero trips" 0 (Mapper.loop_cycles m ~trips:0);
  Alcotest.(check int) "one trip = makespan" m.Mapper.makespan
    (Mapper.loop_cycles m ~trips:1);
  Alcotest.(check int) "steady state adds ii"
    (m.Mapper.makespan + (9 * m.Mapper.ii))
    (Mapper.loop_cycles m ~trips:10)

let test_res_mii_lower_bound () =
  let arch = Arch.picachu () in
  List.iter
    (fun g ->
      let bound = (Dfg.node_count g + 15) / 16 in
      Alcotest.(check bool) "res_mii >= aggregate bound" true
        (Mapper.res_mii arch g >= bound))
    (all_loop_dfgs Kernels.picachu ~fuse:true)

let test_utilization_bounded () =
  let arch = Arch.picachu () in
  List.iter
    (fun g ->
      let m = Mapper.map_dfg arch g in
      let u = Mapper.utilization m g arch in
      Alcotest.(check bool) "0 < util <= 1" true (u > 0.0 && u <= 1.0 +. 1e-9))
    (all_loop_dfgs Kernels.picachu ~fuse:true)

(* ------------------------------------------------------------------- noc *)

let test_noc_report_consistency () =
  let arch = Arch.picachu () in
  List.iter
    (fun g ->
      let m = Mapper.map_dfg arch g in
      let r = Noc.analyze arch g m in
      Alcotest.(check bool) "hop total matches mapper metric" true
        (r.Noc.total_hops = m.Mapper.routed_hops
         (* self-loops carry no hops in either metric *));
      Alcotest.(check bool) "mean <= max" true
        (r.Noc.mean_link_load <= float_of_int (Stdlib.max 1 r.Noc.max_link_load));
      Alcotest.(check bool) "contention bounded" true (r.Noc.max_link_load <= 10))
    (all_loop_dfgs Kernels.picachu ~fuse:true)

let test_noc_empty_graph () =
  let g = Picachu_dfg.Dfg.of_loop (List.hd (Kernels.relu Kernels.picachu).Kernel.loops) in
  let arch = Arch.picachu () in
  let m = Mapper.map_dfg arch g in
  let r = Noc.analyze arch g m in
  Alcotest.(check bool) "within wide capacity" true (Noc.within_capacity r ~lanes_per_link:16)

(* ----------------------------------------------------------- exact probe *)

let test_exact_probe_consistency () =
  let arch = Arch.picachu () in
  List.iter
    (fun g ->
      let lower, achieved, verdict = Mapper_exact.heuristic_gap arch g in
      Alcotest.(check bool) "achieved >= bound" true (achieved >= lower);
      match verdict with
      | Mapper_exact.Feasible ii ->
          Alcotest.(check bool) "probe within [bound, achieved]" true
            (ii >= lower && ii <= achieved)
      | Mapper_exact.Infeasible_up_to b ->
          (* the heuristic found a schedule, so infeasibility can only be an
             artifact of the bounded window — and then only above it *)
          Alcotest.(check bool) "heuristic beyond probe window" true (achieved > b)
      | Mapper_exact.Unknown -> ())
    (all_loop_dfgs Kernels.picachu ~fuse:true)

let test_exact_probe_small_graphs_conclusive () =
  let arch = Arch.picachu () in
  let small =
    List.filter (fun g -> Picachu_dfg.Dfg.node_count g <= 8)
      (all_loop_dfgs Kernels.picachu ~fuse:true)
  in
  Alcotest.(check bool) "have small graphs" true (List.length small >= 5);
  List.iter
    (fun g ->
      match Mapper_exact.probe arch g with
      | Mapper_exact.Feasible _ -> ()
      | _ -> Alcotest.failf "probe inconclusive on a small graph (%s)" g.Picachu_dfg.Dfg.label)
    small

(* -------------------------------------------------------------------- rf *)

let test_rf_pressure_bounded () =
  let arch = Arch.picachu () in
  let over_16 = ref 0 and loops = ref 0 in
  List.iter
    (fun g ->
      incr loops;
      let m = Mapper.map_dfg arch g in
      let r = Rf.analyze arch g m in
      Alcotest.(check bool) "every value needs a register" true
        (r.Rf.total_registers >= Picachu_dfg.Dfg.node_count g);
      (* documented finding: the exp-chain kernels exceed a 16-entry RF at
         their tuned unroll factors (a production mapper would spill via
         routed copies); everything stays under a sanity ceiling *)
      Alcotest.(check bool) "sanity ceiling" true (r.Rf.max_tile_registers <= 64);
      if r.Rf.max_tile_registers > 16 then incr over_16;
      Alcotest.(check bool) "lifetime positive" true (r.Rf.longest_lifetime >= 1))
    (all_loop_dfgs Kernels.picachu ~fuse:true);
  Alcotest.(check bool) "most loops fit a 16-entry RF" true
    (!over_16 * 3 <= !loops)

(* ------------------------------------------------------------------ cost *)

let test_tab7_matches_paper () =
  let b = Cost.picachu_breakdown (Arch.picachu ()) in
  let t = Cost.total b in
  let frac part = part /. t.Cost.area_mm2 in
  Alcotest.(check (float 0.03)) "sram area share" 0.776 (frac b.Cost.sram.Cost.area_mm2);
  Alcotest.(check (float 0.03)) "cgra area share" 0.149 (frac b.Cost.cgra.Cost.area_mm2);
  let pfrac part = part /. t.Cost.power_mw in
  Alcotest.(check (float 0.03)) "cgra power share" 0.342 (pfrac b.Cost.cgra.Cost.power_mw);
  Alcotest.(check (float 0.03)) "sram power share" 0.569 (pfrac b.Cost.sram.Cost.power_mw)

let test_cgra_absolute_calibration () =
  let c = Cost.cgra_cost (Arch.picachu ()) in
  Alcotest.(check (float 0.05)) "1.0 mm2" 1.0 c.Cost.area_mm2;
  Alcotest.(check (float 3.0)) "64.2 mW" 64.2 c.Cost.power_mw

let test_tile_cost_ordering () =
  let cot = Cost.tile_cost ~hetero:true Fu.CoT in
  let bat = Cost.tile_cost ~hetero:true Fu.BaT in
  let basic = Cost.basic_tile in
  Alcotest.(check bool) "CoT > BaT area" true (cot.Cost.area_mm2 > bat.Cost.area_mm2);
  Alcotest.(check bool) "BaT > basic area" true (bat.Cost.area_mm2 > basic.Cost.area_mm2)

let test_universal_premium () =
  let u = Cost.cgra_cost (Arch.universal ()) in
  let p = Cost.cgra_cost (Arch.picachu ()) in
  Alcotest.(check bool) "universal costs more" true (u.Cost.area_mm2 > p.Cost.area_mm2)

let test_energy () =
  let c = { Cost.area_mm2 = 1.0; power_mw = 100.0 } in
  Alcotest.(check (float 1e-9)) "100mW for 1k cycles = 0.1 uJ" 0.1
    (Cost.energy_uj c ~cycles:1000)

let test_sram_scaling () =
  let a = Cost.sram_cost ~kb:40.0 and b = Cost.sram_cost ~kb:80.0 in
  Alcotest.(check (float 1e-9)) "linear" (2.0 *. a.Cost.area_mm2) b.Cost.area_mm2

let suite =
  [
    ( "arch",
      [
        Alcotest.test_case "picachu layout" `Quick test_picachu_layout;
        Alcotest.test_case "memory ports" `Quick test_mem_ports_on_edge_columns;
        Alcotest.test_case "distance" `Quick test_distance_properties;
        qtest prop_distance_symmetric;
        qtest prop_xy_path_length;
        Alcotest.test_case "capabilities" `Quick test_capabilities;
        Alcotest.test_case "universal tile" `Quick test_universal_supports_everything;
        Alcotest.test_case "baseline latencies" `Quick test_baseline_latencies;
      ] );
    ( "mapper",
      [
        Alcotest.test_case "valid mappings (picachu)" `Quick test_mappings_valid_picachu;
        Alcotest.test_case "valid mappings (baseline)" `Quick test_mappings_valid_baseline;
        Alcotest.test_case "valid mappings (unrolled)" `Quick test_mappings_valid_unrolled;
        Alcotest.test_case "unmappable raises" `Quick test_unmappable_raises;
        Alcotest.test_case "loop cycles" `Quick test_loop_cycles;
        Alcotest.test_case "resMII lower bound" `Quick test_res_mii_lower_bound;
        Alcotest.test_case "utilization bounded" `Quick test_utilization_bounded;
      ] );
    ( "noc",
      [
        Alcotest.test_case "report consistency" `Quick test_noc_report_consistency;
        Alcotest.test_case "capacity check" `Quick test_noc_empty_graph;
        Alcotest.test_case "register pressure" `Quick test_rf_pressure_bounded;
        Alcotest.test_case "exact probe consistency" `Slow test_exact_probe_consistency;
        Alcotest.test_case "probe conclusive on small graphs" `Slow
          test_exact_probe_small_graphs_conclusive;
      ] );
    ( "cost",
      [
        Alcotest.test_case "table 7 shares" `Quick test_tab7_matches_paper;
        Alcotest.test_case "cgra calibration" `Quick test_cgra_absolute_calibration;
        Alcotest.test_case "tile ordering" `Quick test_tile_cost_ordering;
        Alcotest.test_case "universal premium" `Quick test_universal_premium;
        Alcotest.test_case "energy" `Quick test_energy;
        Alcotest.test_case "sram scaling" `Quick test_sram_scaling;
      ] );
  ]
