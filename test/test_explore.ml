(* Tests for the design-space explorer, the tile-mix constructor, and the
   decode-phase workload extension. *)
open Picachu
module Arch = Picachu_cgra.Arch
module Fu = Picachu_cgra.Fu
module Mz = Picachu_llm.Model_zoo
module Workload = Picachu_llm.Workload
module Gpu = Picachu_llm.Gpu_model

(* -------------------------------------------------------------- tile mix *)

let count_kind arch kind =
  Array.fold_left (fun acc k -> if k = kind then acc + 1 else acc) 0 arch.Arch.kinds

let test_mix_share_respected () =
  List.iter
    (fun share ->
      let a = Arch.hetero_mix ~rows:4 ~cols:4 ~cot_share:share in
      let cots = count_kind a Fu.CoT in
      let expected = int_of_float (Float.round (share *. 12.0)) in
      Alcotest.(check int) (Printf.sprintf "share %.2f" share) expected cots;
      Alcotest.(check int) "corners stay BrT" 4 (count_kind a Fu.BrT))
    [ 0.0; 0.25; 0.5; 2.0 /. 3.0; 1.0 ]

let test_mix_validation () =
  Alcotest.check_raises "share range" (Invalid_argument "Arch.hetero_mix: share")
    (fun () -> ignore (Arch.hetero_mix ~rows:4 ~cols:4 ~cot_share:1.5))

let test_mix_two_thirds_matches_picachu_counts () =
  let mix = Arch.hetero_mix ~rows:4 ~cols:4 ~cot_share:(2.0 /. 3.0) in
  let pic = Arch.picachu () in
  Alcotest.(check int) "same CoT count" (count_kind pic Fu.CoT) (count_kind mix Fu.CoT);
  Alcotest.(check int) "same BaT count" (count_kind pic Fu.BaT) (count_kind mix Fu.BaT)

(* --------------------------------------------------------------- explore *)

let small_sweep =
  lazy (Explore.sweep ~sizes:[ (3, 3); (4, 4) ] ~cot_shares:[ 0.5; 2.0 /. 3.0 ] ())

let test_sweep_produces_points () =
  let points = Lazy.force small_sweep in
  Alcotest.(check int) "all points evaluated" 4 (List.length points);
  List.iter
    (fun (p : Explore.point) ->
      Alcotest.(check bool) "positive throughput" true (p.Explore.geomean_throughput > 0.0);
      Alcotest.(check bool) "positive area" true (p.Explore.area_mm2 > 0.0))
    points

let test_pareto_subset_and_nonempty () =
  let points = Lazy.force small_sweep in
  let front = Explore.pareto points in
  Alcotest.(check bool) "non-empty" true (front <> []);
  List.iter
    (fun p -> Alcotest.(check bool) "frontier from the sweep" true (List.memq p points))
    front;
  (* no frontier point dominates another *)
  List.iter
    (fun (a : Explore.point) ->
      List.iter
        (fun (b : Explore.point) ->
          if a != b then
            Alcotest.(check bool) "mutually non-dominated" false
              (a.Explore.geomean_throughput >= b.Explore.geomean_throughput
              && a.Explore.area_mm2 <= b.Explore.area_mm2
              && (a.Explore.geomean_throughput > b.Explore.geomean_throughput
                 || a.Explore.area_mm2 < b.Explore.area_mm2)))
        front)
    front

let test_reference_point_on_frontier () =
  (* the paper's 4x4 operating point is not dominated in the default sweep *)
  let points = Explore.sweep () in
  let r = Explore.reference_point () in
  let dominated =
    List.exists
      (fun (q : Explore.point) ->
        q.Explore.geomean_throughput >= r.Explore.geomean_throughput
        && q.Explore.area_mm2 <= r.Explore.area_mm2
        && (q.Explore.geomean_throughput > r.Explore.geomean_throughput
           || q.Explore.area_mm2 < r.Explore.area_mm2))
      points
  in
  Alcotest.(check bool) "paper point undominated" false dominated

let test_more_cots_more_area () =
  let a = Explore.evaluate ~rows:4 ~cols:4 ~cot_share:(1.0 /. 3.0) () in
  let b = Explore.evaluate ~rows:4 ~cols:4 ~cot_share:(5.0 /. 6.0) () in
  Alcotest.(check bool) "CoTs cost area" true (b.Explore.area_mm2 > a.Explore.area_mm2);
  Alcotest.(check bool) "CoTs buy throughput" true
    (b.Explore.geomean_throughput > a.Explore.geomean_throughput)

(* ---------------------------------------------------------------- decode *)

let test_decode_structure () =
  let w = Workload.decode_of_model Mz.llama2_7b ~context:1024 in
  List.iter
    (fun (g : Workload.gemm) ->
      Alcotest.(check int) (g.Workload.g_tag ^ " is a gemv") 1 g.Workload.m)
    w.Workload.gemms;
  let sm = List.find (fun (nl : Workload.nl) -> nl.Workload.nl_tag = "softmax") w.Workload.nls in
  Alcotest.(check int) "softmax spans the cache" 1024 sm.Workload.dim;
  Alcotest.(check int) "one row per head" 32 sm.Workload.rows

let test_decode_validation () =
  Alcotest.check_raises "context" (Invalid_argument "Workload.decode_of_model: context")
    (fun () -> ignore (Workload.decode_of_model Mz.gpt2_xl ~context:0))

let test_decode_gemv_memory_bound () =
  (* the GPU model must charge a GEMV its weight traffic, not just FLOPs *)
  let g = { Workload.m = 1; k = 4096; n = 4096; count = 1; g_tag = "gemv" } in
  let t = Gpu.gemm_seconds Gpu.a100 g in
  let weight_bytes = 2.0 *. 4096.0 *. 4096.0 in
  let min_memory_s = weight_bytes /. (Gpu.a100.Gpu.hbm_gbs *. 1e9) in
  Alcotest.(check bool) "at least the weight-streaming time" true (t >= min_memory_s)

let test_decode_cheaper_than_prefill () =
  let prefill = Gpu.run Gpu.a100 (Workload.of_model Mz.llama2_7b ~seq:1024) in
  let decode = Gpu.run Gpu.a100 (Workload.decode_of_model Mz.llama2_7b ~context:1024) in
  Alcotest.(check bool) "one step far cheaper than a prefill" true
    (decode.Gpu.total_s < prefill.Gpu.total_s /. 4.0)

let suite =
  [
    ( "tile-mix",
      [
        Alcotest.test_case "share respected" `Quick test_mix_share_respected;
        Alcotest.test_case "validation" `Quick test_mix_validation;
        Alcotest.test_case "2/3 matches picachu" `Quick
          test_mix_two_thirds_matches_picachu_counts;
      ] );
    ( "explore",
      [
        Alcotest.test_case "sweep" `Slow test_sweep_produces_points;
        Alcotest.test_case "pareto" `Slow test_pareto_subset_and_nonempty;
        Alcotest.test_case "paper point undominated" `Slow test_reference_point_on_frontier;
        Alcotest.test_case "cot share tradeoff" `Slow test_more_cots_more_area;
      ] );
    ( "decode",
      [
        Alcotest.test_case "structure" `Quick test_decode_structure;
        Alcotest.test_case "validation" `Quick test_decode_validation;
        Alcotest.test_case "gemv memory bound" `Quick test_decode_gemv_memory_bound;
        Alcotest.test_case "decode step cheap" `Quick test_decode_cheaper_than_prefill;
      ] );
  ]
