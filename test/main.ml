(* The static-verification gate is on for the whole suite: every compile any
   test performs is re-checked by the independent validator (lib/verify),
   and an Error-severity finding fails the compile.  Hot paths keep the
   knob off; tests are exactly where the check should always run. *)
let () = Unix.putenv "PICACHU_VERIFY" "1"

let () =
  Alcotest.run "picachu"
    (Test_tensor.suite @ Test_numerics.suite @ Test_ir.suite @ Test_dfg.suite
   @ Test_cgra.suite @ Test_memory.suite @ Test_nonlinear.suite
   @ Test_llm.suite @ Test_picachu.suite @ Test_hw.suite @ Test_explore.suite @ Test_frontend.suite @ Test_fuzz.suite @ Test_text.suite @ Test_props.suite @ Test_golden.suite @ Test_misc.suite @ Test_parallel.suite
   @ Test_resilience.suite @ Test_verify.suite @ Test_precision.suite
   @ Test_pipeline.suite
   @ Test_scheduler.suite @ Test_cluster.suite @ Test_mapper_fastpath.suite
   @ Test_codesign.suite)
