(* Determinism suite for the domain pool: every parallel hot path must be
   bit-identical to its sequential fallback at pool sizes 1, 2, and 4. *)

module Parallel = Picachu_parallel.Parallel
module Tensor = Picachu_tensor.Tensor
module Rng = Picachu_tensor.Rng
module Surrogate = Picachu_llm.Surrogate
module Mz = Picachu_llm.Model_zoo
module Approx = Picachu_numerics.Approx

let qtest = QCheck_alcotest.to_alcotest
let pool_sizes = [ 1; 2; 4 ]

let bits_equal a b =
  Tensor.shape a = Tensor.shape b
  &&
  let da = Tensor.data a and db = Tensor.data b in
  let ok = ref true in
  Array.iteri
    (fun i x -> if Int64.bits_of_float x <> Int64.bits_of_float db.(i) then ok := false)
    da;
  !ok

let at_size size f = Parallel.with_pool ~size f

(* ------------------------------------------------------------ combinators *)

let test_pool_lifecycle () =
  List.iter
    (fun size ->
      at_size size (fun () ->
          Alcotest.(check int) "installed size" size (Parallel.size ());
          Alcotest.(check bool) "not in region" false (Parallel.in_parallel ())))
    pool_sizes

let test_parallel_for_covers_range () =
  List.iter
    (fun size ->
      at_size size (fun () ->
          let hits = Array.make 1000 0 in
          Parallel.parallel_for 0 1000 (fun i -> hits.(i) <- hits.(i) + (i * 3));
          Array.iteri
            (fun i v -> Alcotest.(check int) "each index once" (i * 3) v)
            hits))
    pool_sizes

let test_map_array_matches_sequential () =
  let input = Array.init 777 (fun i -> float_of_int i /. 7.0) in
  let expected = Array.map (fun x -> sin x *. x) input in
  List.iter
    (fun size ->
      at_size size (fun () ->
          let got = Parallel.parallel_map_array (fun x -> sin x *. x) input in
          Alcotest.(check bool) "same floats" true (got = expected)))
    pool_sizes

let test_reduce_identical_across_sizes () =
  let red () =
    Parallel.parallel_reduce ~lo:0 ~hi:10_000 ~init:0.0 ~fold:( +. ) (fun i ->
        1.0 /. (1.0 +. float_of_int i))
  in
  let reference = at_size 1 red in
  List.iter
    (fun size ->
      at_size size (fun () ->
          Alcotest.(check bool)
            "bitwise equal partial-sum order" true
            (Int64.bits_of_float (red ()) = Int64.bits_of_float reference)))
    pool_sizes

let test_nested_regions_run_inline () =
  at_size 4 (fun () ->
      let out = Array.make 64 (-1) in
      Parallel.parallel_for 0 8 (fun i ->
          Alcotest.(check bool) "inner sees region" true (Parallel.in_parallel ());
          Parallel.parallel_for 0 8 (fun j -> out.((i * 8) + j) <- (i * 8) + j));
      Array.iteri (fun i v -> Alcotest.(check int) "nested write" i v) out)

let test_exception_propagates () =
  List.iter
    (fun size ->
      at_size size (fun () ->
          match Parallel.parallel_for 0 256 (fun i -> if i = 137 then failwith "chunk") with
          | () -> Alcotest.fail "expected exception"
          | exception Failure m -> Alcotest.(check string) "message" "chunk" m))
    pool_sizes

(* ------------------------------------------------------------ hot kernels *)

let random_tensor rng shape = Tensor.randn rng shape ~mu:0.0 ~sigma:1.0

let test_matmul_bit_identical () =
  let rng = Rng.create 99 in
  (* big enough to cross the parallel threshold (37*41*53 flops) *)
  let a = random_tensor rng [ 37; 41 ] and b = random_tensor rng [ 41; 53 ] in
  let reference = at_size 1 (fun () -> Tensor.matmul a b) in
  List.iter
    (fun size ->
      at_size size (fun () ->
          Alcotest.(check bool)
            (Printf.sprintf "matmul pool=%d" size)
            true
            (bits_equal (Tensor.matmul a b) reference)))
    pool_sizes

let test_matmul_nt_bit_identical () =
  let rng = Rng.create 7 in
  let a = random_tensor rng [ 33; 40 ] and b = random_tensor rng [ 47; 40 ] in
  let reference = at_size 1 (fun () -> Tensor.matmul a (Tensor.transpose b)) in
  List.iter
    (fun size ->
      at_size size (fun () ->
          Alcotest.(check bool)
            (Printf.sprintf "matmul_nt pool=%d" size)
            true
            (bits_equal (Tensor.matmul_nt a b) reference)))
    pool_sizes

let surrogate_logits () =
  let model = Surrogate.create ~seed:5 (Surrogate.surrogate_of Mz.llama2_7b) in
  let tokens = Array.init 24 (fun i -> (i * 31) mod 256) in
  fun backend -> Surrogate.logits model backend tokens

let test_surrogate_logits_bit_identical () =
  let forward = surrogate_logits () in
  List.iter
    (fun backend ->
      let reference = at_size 1 (fun () -> forward backend) in
      List.iter
        (fun size ->
          at_size size (fun () ->
              Alcotest.(check bool)
                (Printf.sprintf "%s pool=%d" backend.Approx.name size)
                true
                (bits_equal (forward backend) reference)))
        pool_sizes)
    [ Approx.exact; Approx.ours_int () ]

(* ------------------------------------------------------------- properties *)

let shape_gen = QCheck.Gen.int_range 1 48

let prop_matmul_nt_is_matmul_transpose =
  QCheck.Test.make ~name:"matmul_nt a b = matmul a (transpose b), any shape" ~count:60
    QCheck.(
      make
        Gen.(
          map3
            (fun m k n -> (m, k, n))
            shape_gen shape_gen shape_gen))
    (fun (m, k, n) ->
      let rng = Rng.create ((m * 1009) + (k * 31) + n) in
      let a = random_tensor rng [ m; k ] and b = random_tensor rng [ n; k ] in
      bits_equal (Tensor.matmul_nt a b) (Tensor.matmul a (Tensor.transpose b)))

let prop_parallel_matmul_matches_pool1 =
  QCheck.Test.make ~name:"parallel matmul bit-identical to pool=1, random shapes"
    ~count:25
    QCheck.(
      make
        Gen.(
          map3
            (fun m k n -> (m, k, n))
            shape_gen shape_gen shape_gen))
    (fun (m, k, n) ->
      let rng = Rng.create ((m * 7919) + (k * 137) + n) in
      let a = random_tensor rng [ m; k ] and b = random_tensor rng [ k; n ] in
      let reference = at_size 1 (fun () -> Tensor.matmul a b) in
      at_size 4 (fun () -> bits_equal (Tensor.matmul a b) reference))

let suite =
  [
    ( "parallel",
      [
        Alcotest.test_case "pool lifecycle & sizing" `Quick test_pool_lifecycle;
        Alcotest.test_case "parallel_for covers range once" `Quick
          test_parallel_for_covers_range;
        Alcotest.test_case "map_array = Array.map" `Quick test_map_array_matches_sequential;
        Alcotest.test_case "chunked reduce identical across pools" `Quick
          test_reduce_identical_across_sizes;
        Alcotest.test_case "nested regions run inline" `Quick test_nested_regions_run_inline;
        Alcotest.test_case "exceptions propagate to caller" `Quick test_exception_propagates;
        Alcotest.test_case "matmul bit-identical @ pools 1/2/4" `Quick
          test_matmul_bit_identical;
        Alcotest.test_case "matmul_nt bit-identical @ pools 1/2/4" `Quick
          test_matmul_nt_bit_identical;
        Alcotest.test_case "surrogate logits bit-identical @ pools 1/2/4" `Slow
          test_surrogate_logits_bit_identical;
        qtest prop_matmul_nt_is_matmul_transpose;
        qtest prop_parallel_matmul_matches_pool1;
      ] );
  ]
