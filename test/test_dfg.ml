(* Tests for DFG extraction, Table 4 pattern fusion, and DFG analyses. *)
open Picachu_ir
open Picachu_dfg

let qtest = QCheck_alcotest.to_alcotest

let dfg_of name variant loop_idx =
  let k = Kernels.by_name variant name in
  Dfg.of_loop (List.nth k.Kernel.loops loop_idx)

(* ------------------------------------------------------------ extraction *)

let test_no_const_input_nodes () =
  List.iter
    (fun (k : Kernel.t) ->
      List.iter
        (fun loop ->
          let g = Dfg.of_loop loop in
          Array.iter
            (fun (node : Dfg.node) ->
              match node.Dfg.op with
              | Op.Const _ | Op.Input _ ->
                  Alcotest.failf "%s: config register materialized as node"
                    loop.Kernel.label
              | _ -> ())
            g.Dfg.nodes)
        k.Kernel.loops)
    (Kernels.all Kernels.picachu)

let test_relu_structure () =
  let g = dfg_of "relu" Kernels.picachu 0 in
  (* load, cmp, select, store, iv phi, iv add, loop cmp, br *)
  Alcotest.(check int) "node count" 8 (Dfg.node_count g);
  let back = List.filter (fun (e : Dfg.edge) -> e.Dfg.distance = 1) g.Dfg.edges in
  Alcotest.(check int) "one back edge (induction)" 1 (List.length back)

let test_back_edges_target_phis () =
  List.iter
    (fun (k : Kernel.t) ->
      List.iter
        (fun loop ->
          let g = Dfg.of_loop loop in
          List.iter
            (fun (e : Dfg.edge) ->
              if e.Dfg.distance = 1 then
                Alcotest.(check bool) "back edge targets phi" true
                  (g.Dfg.nodes.(e.Dfg.dst).Dfg.op = Op.Phi))
            g.Dfg.edges)
        k.Kernel.loops)
    (Kernels.all Kernels.picachu)

let test_topo_order_valid () =
  List.iter
    (fun (k : Kernel.t) ->
      List.iter
        (fun loop ->
          let g = Dfg.of_loop loop in
          let order = Dfg.topo_order g in
          Alcotest.(check int) "covers all nodes" (Dfg.node_count g) (List.length order);
          let pos = Array.make (Dfg.node_count g) 0 in
          List.iteri (fun i u -> pos.(u) <- i) order;
          List.iter
            (fun (e : Dfg.edge) ->
              if e.Dfg.distance = 0 then
                Alcotest.(check bool) "preds first" true (pos.(e.Dfg.src) < pos.(e.Dfg.dst)))
            g.Dfg.edges)
        k.Kernel.loops)
    (Kernels.all Kernels.Baseline)

let test_vector_flags () =
  let k = Transform.vectorize_kernel 4 (Kernels.softmax Kernels.picachu) in
  let g = Dfg.of_loop (List.nth k.Kernel.loops 2) in
  Array.iter
    (fun (node : Dfg.node) ->
      let expected = Op.is_vectorizable node.Dfg.op in
      Alcotest.(check bool) (Op.name node.Dfg.op ^ " vector flag") expected node.Dfg.vector)
    g.Dfg.nodes

(* ---------------------------------------------------------------- fusion *)

let test_fuse_shrinks () =
  List.iter
    (fun (k : Kernel.t) ->
      List.iter
        (fun loop ->
          let g = Dfg.of_loop loop in
          let f = Fuse.fuse g in
          Alcotest.(check bool) "fused graph is smaller" true
            (Dfg.node_count f < Dfg.node_count g))
        k.Kernel.loops)
    (Kernels.all Kernels.picachu)

let test_fuse_preserves_members () =
  List.iter
    (fun (k : Kernel.t) ->
      List.iter
        (fun loop ->
          let g = Dfg.of_loop loop in
          let f = Fuse.fuse g in
          let members_total =
            Array.fold_left
              (fun acc (n : Dfg.node) -> acc + List.length n.Dfg.members)
              0 f.Dfg.nodes
          in
          Alcotest.(check int)
            (loop.Kernel.label ^ ": members account for every node")
            (Dfg.node_count g) members_total)
        k.Kernel.loops)
    (Kernels.all Kernels.picachu)

let test_relu_patterns () =
  let f = Fuse.fuse (dfg_of "relu" Kernels.picachu 0) in
  let counts = Fuse.pattern_counts f in
  Alcotest.(check (option int)) "cmp+select" (Some 1) (List.assoc_opt Op.Cmp_sel counts);
  Alcotest.(check (option int)) "cmp+br" (Some 1) (List.assoc_opt Op.Cmp_br counts);
  Alcotest.(check (option int)) "phi+add (induction)" (Some 1)
    (List.assoc_opt Op.Phi_add counts)

let test_horner_mul_add_chains () =
  let f = Fuse.fuse (dfg_of "softmax" Kernels.picachu 1) in
  let counts = Fuse.pattern_counts f in
  match List.assoc_opt Op.Mul_add counts with
  | Some n -> Alcotest.(check bool) "taylor horner produces mul+add chains" true (n >= 5)
  | None -> Alcotest.fail "no mul+add in the exp loop"

let test_unrolled_reduction_phi_add_add () =
  let k = Kernels.rmsnorm Kernels.picachu in
  let l2 = Transform.unroll 2 (List.hd k.Kernel.loops) in
  let f = Fuse.fuse (Dfg.of_loop l2) in
  Alcotest.(check bool) "phi+add+add appears" true
    (Fuse.contains_pattern f Op.Phi_add_add)

let test_fused_self_loop () =
  (* the fused induction update must carry a distance-1 self edge *)
  let f = Fuse.fuse (dfg_of "relu" Kernels.picachu 0) in
  let self =
    List.exists
      (fun (e : Dfg.edge) -> e.Dfg.src = e.Dfg.dst && e.Dfg.distance = 1)
      f.Dfg.edges
  in
  Alcotest.(check bool) "self loop present" true self

let test_fuse_idempotent_on_fused () =
  let f = Fuse.fuse (dfg_of "softmax" Kernels.picachu 1) in
  let f2 = Fuse.fuse f in
  Alcotest.(check int) "second pass finds nothing new" (Dfg.node_count f)
    (Dfg.node_count f2)

(* -------------------------------------------------------------- analysis *)

let test_intensity_relu_low () =
  (* §3.1: ReLU is the only op under the 5.3 threshold *)
  let k = Kernels.relu Kernels.Baseline in
  let ci =
    let gs = List.map Dfg.of_loop k.Kernel.loops in
    let c = List.fold_left (fun a g -> a + Analysis.compute_node_count g) 0 gs in
    let m = List.fold_left (fun a g -> a + Analysis.memory_node_count g) 0 gs in
    float_of_int c /. float_of_int m
  in
  Alcotest.(check bool) "relu below threshold" true (ci < 5.3)

let test_intensity_exp_kernels_high () =
  List.iter
    (fun name ->
      let k = Kernels.by_name Kernels.Baseline name in
      let gs = List.map Dfg.of_loop k.Kernel.loops in
      let c = List.fold_left (fun a g -> a + Analysis.compute_node_count g) 0 gs in
      let m = List.fold_left (fun a g -> a + Analysis.memory_node_count g) 0 gs in
      let ci = float_of_int c /. float_of_int m in
      Alcotest.(check bool) (name ^ " above threshold") true (ci > 5.3))
    [ "softmax"; "silu"; "gelu"; "rope" ]

let test_intensity_infinite_without_memory () =
  let g =
    {
      Dfg.nodes =
        [|
          {
            Dfg.id = 0;
            op = Op.Bin Op.Add;
            members = [ Op.Bin Op.Add ];
            origins = [ 0 ];
            vector = false;
          };
        |];
      edges = [];
      vector_width = 1;
      label = "synthetic";
    }
  in
  Alcotest.(check bool) "infinite" true (Analysis.computational_intensity g = infinity)

let test_rec_mii_unfused_vs_fused () =
  let g = dfg_of "rmsnorm" Kernels.picachu 0 in
  Alcotest.(check int) "unfused accumulator recurrence" 2 (Analysis.rec_mii g);
  Alcotest.(check int) "fused accumulator recurrence" 1 (Analysis.rec_mii (Fuse.fuse g))

let test_critical_path_shrinks_under_fusion () =
  let g = dfg_of "softmax" Kernels.picachu 1 in
  let f = Fuse.fuse g in
  Alcotest.(check bool) "critical path shrinks" true
    (Analysis.critical_path f < Analysis.critical_path g)

let prop_fusion_never_raises_recmii =
  QCheck.Test.make ~name:"fusion never increases RecMII" ~count:30
    (QCheck.oneofl [ "softmax"; "relu"; "gelu"; "layernorm"; "rmsnorm"; "rope"; "silu" ])
    (fun name ->
      let k = Kernels.by_name Kernels.picachu name in
      List.for_all
        (fun loop ->
          let g = Dfg.of_loop loop in
          Analysis.rec_mii (Fuse.fuse g) <= Analysis.rec_mii g)
        k.Kernel.loops)

let suite =
  [
    ( "dfg-extraction",
      [
        Alcotest.test_case "no config-register nodes" `Quick test_no_const_input_nodes;
        Alcotest.test_case "relu structure" `Quick test_relu_structure;
        Alcotest.test_case "back edges target phis" `Quick test_back_edges_target_phis;
        Alcotest.test_case "topological order" `Quick test_topo_order_valid;
        Alcotest.test_case "vector flags" `Quick test_vector_flags;
      ] );
    ( "fusion",
      [
        Alcotest.test_case "shrinks graphs" `Quick test_fuse_shrinks;
        Alcotest.test_case "accounts for all members" `Quick test_fuse_preserves_members;
        Alcotest.test_case "relu patterns" `Quick test_relu_patterns;
        Alcotest.test_case "horner mul+add chains" `Quick test_horner_mul_add_chains;
        Alcotest.test_case "unrolled phi+add+add" `Quick test_unrolled_reduction_phi_add_add;
        Alcotest.test_case "fused self loop" `Quick test_fused_self_loop;
        Alcotest.test_case "idempotent" `Quick test_fuse_idempotent_on_fused;
      ] );
    ( "analysis",
      [
        Alcotest.test_case "relu intensity low" `Quick test_intensity_relu_low;
        Alcotest.test_case "exp kernels intensity high" `Quick
          test_intensity_exp_kernels_high;
        Alcotest.test_case "no memory = infinite" `Quick test_intensity_infinite_without_memory;
        Alcotest.test_case "recMII fused vs unfused" `Quick test_rec_mii_unfused_vs_fused;
        Alcotest.test_case "fusion shortens critical path" `Quick
          test_critical_path_shrinks_under_fusion;
        qtest prop_fusion_never_raises_recmii;
      ] );
  ]
