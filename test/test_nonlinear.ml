(* Tests for the tensor-level nonlinear operators: closed-form correctness,
   mathematical invariants, cross-validation against the IR kernels, and the
   registry metadata. *)
open Picachu_nonlinear
module Tensor = Picachu_tensor.Tensor
module Rng = Picachu_tensor.Rng
module Approx = Picachu_numerics.Approx
module Interp = Picachu_ir.Interp
module Kernels = Picachu_ir.Kernels

let qtest = QCheck_alcotest.to_alcotest
let check_close eps = Alcotest.(check (float eps))

let random_matrix seed rows cols =
  Tensor.randn (Rng.create seed) [ rows; cols ] ~mu:0.0 ~sigma:1.5

(* --------------------------------------------------------------- softmax *)

let test_softmax_rows_sum_one () =
  let t = random_matrix 1 6 17 in
  let s = Softmax.exact t in
  for i = 0 to 5 do
    let sum = ref 0.0 in
    for j = 0 to 16 do
      sum := !sum +. Tensor.get2 s i j
    done;
    check_close 1e-12 "row sums to one" 1.0 !sum
  done

let test_softmax_shift_invariance () =
  let row = [| 0.1; 2.0; -3.0; 1.5 |] in
  let shifted = Array.map (fun x -> x +. 100.0) row in
  let a = Softmax.exact_row row and b = Softmax.exact_row shifted in
  Array.iteri (fun i v -> check_close 1e-12 "shift invariant" v b.(i)) a

let test_softmax_overflow_safe () =
  let row = [| 1000.0; 999.0 |] in
  let p = Softmax.exact_row row in
  Alcotest.(check bool) "finite under large logits" true
    (Array.for_all Float.is_finite p)

let test_softmax_approx_close () =
  let t = random_matrix 2 4 32 in
  let e = Softmax.exact t and a = Softmax.approx (Approx.ours_fp ()) t in
  Alcotest.(check bool) "ours-fp within 1e-3" true (Tensor.equal ~eps:1e-3 e a)

let prop_softmax_monotone =
  QCheck.Test.make ~name:"softmax preserves ordering" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 2 12) (QCheck.float_range (-8.0) 8.0))
    (fun l ->
      let row = Array.of_list l in
      let p = Softmax.exact_row row in
      let ok = ref true in
      Array.iteri
        (fun i _ ->
          Array.iteri
            (fun j _ -> if row.(i) < row.(j) && p.(i) > p.(j) +. 1e-12 then ok := false)
            row)
        row;
      !ok)

(* ----------------------------------------------------------- activations *)

let test_relu_values () =
  let t = Tensor.of_array [ 4 ] [| -1.0; 0.0; 2.5; -0.1 |] in
  let r = Activations.relu_exact t in
  Alcotest.(check bool) "relu" true
    (Tensor.equal r (Tensor.of_array [ 4 ] [| 0.0; 0.0; 2.5; 0.0 |]))

let test_gelu_landmarks () =
  let t = Tensor.of_array [ 3 ] [| 0.0; 10.0; -10.0 |] in
  let g = Activations.gelu_exact t in
  check_close 1e-9 "gelu(0)" 0.0 (Tensor.get g 0);
  check_close 1e-3 "gelu(10) ~ 10" 10.0 (Tensor.get g 1);
  check_close 1e-3 "gelu(-10) ~ 0" 0.0 (Tensor.get g 2)

let test_silu_landmarks () =
  let t = Tensor.of_array [ 2 ] [| 0.0; 20.0 |] in
  let s = Activations.silu_exact t in
  check_close 1e-9 "silu(0)" 0.0 (Tensor.get s 0);
  check_close 1e-3 "silu(20) ~ 20" 20.0 (Tensor.get s 1)

let test_gated_shape_check () =
  Alcotest.check_raises "shape mismatch" (Invalid_argument "Activations: gate shape")
    (fun () ->
      ignore
        (Activations.swiglu_exact ~gate:(Tensor.create [ 2 ]) (Tensor.create [ 3 ])))

let test_swiglu_is_silu_times_value () =
  let gate = random_matrix 3 2 8 and v = random_matrix 4 2 8 in
  let direct = Activations.swiglu_exact ~gate v in
  let manual = Tensor.mul (Activations.silu_exact gate) v in
  Alcotest.(check bool) "definition" true (Tensor.equal direct manual)

(* ----------------------------------------------------------------- norms *)

let test_layernorm_moments () =
  let t = random_matrix 5 4 64 in
  let n = Norms.layernorm_exact t in
  for i = 0 to 3 do
    let row = Tensor.row n i in
    check_close 1e-9 "mean 0" 0.0 (Tensor.mean row);
    check_close 1e-3 "variance 1" 1.0 (Tensor.variance row)
  done

let test_rmsnorm_unit_rms () =
  let t = random_matrix 6 4 64 in
  let n = Norms.rmsnorm_exact t in
  for i = 0 to 3 do
    let row = Tensor.row n i in
    let ms = Tensor.mean (Tensor.mul row row) in
    check_close 1e-3 "unit mean square" 1.0 ms
  done

let test_norm_scale_invariance () =
  (* rmsnorm(c x) = rmsnorm(x) up to the epsilon *)
  let t = random_matrix 7 1 32 in
  let a = Norms.rmsnorm_exact t and b = Norms.rmsnorm_exact (Tensor.scale 7.0 t) in
  Alcotest.(check bool) "scale invariant" true (Tensor.equal ~eps:1e-3 a b)

let test_norm_backends_close () =
  let t = random_matrix 8 2 48 in
  let e = Norms.layernorm_exact t in
  List.iter
    (fun b ->
      let a = Norms.layernorm b t in
      Alcotest.(check bool) "backend close" true (Tensor.equal ~eps:5e-3 e a))
    [ Approx.fp16_reference; Approx.ours_fp (); Approx.ours_int () ]

(* ------------------------------------------------------------------ rope *)

let test_rope_theta () =
  check_close 1e-12 "theta_1 = 1" 1.0 (Rope.theta ~dim:64 1);
  Alcotest.(check bool) "theta decreasing" true
    (Rope.theta ~dim:64 10 < Rope.theta ~dim:64 2)

let test_reduce_angle_identity () =
  List.iter
    (fun a ->
      let t, ss, cs = Rope.reduce_angle a in
      check_close 1e-9 "sin identity" (sin a) (ss *. sin t);
      check_close 1e-9 "cos identity" (cos a) (cs *. cos t);
      Alcotest.(check bool) "reduced range" true
        (t >= -.(Float.pi /. 2.0) -. 1e-9 && t <= (Float.pi /. 2.0) +. 1e-9))
    [ 0.0; 1.0; -1.0; 2.5; -2.5; 7.0; 100.3; -55.5 ]

let test_rope_position_zero_identity () =
  let x = Tensor.of_array [ 8 ] [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |] in
  let y = Rope.exact ~pos:0 x in
  Alcotest.(check bool) "pos 0 is identity" true (Tensor.equal ~eps:1e-12 x y)

let prop_rope_preserves_pair_norms =
  QCheck.Test.make ~name:"rotation preserves pair norms" ~count:100
    (QCheck.pair (QCheck.int_range 0 500)
       (QCheck.list_of_size (QCheck.Gen.return 8) (QCheck.float_range (-5.0) 5.0)))
    (fun (pos, l) ->
      let x = Tensor.of_array [ 8 ] (Array.of_list l) in
      let y = Rope.exact ~pos x in
      let ok = ref true in
      for i = 0 to 3 do
        let nx = (Tensor.get x (2 * i) ** 2.0) +. (Tensor.get x ((2 * i) + 1) ** 2.0) in
        let ny = (Tensor.get y (2 * i) ** 2.0) +. (Tensor.get y ((2 * i) + 1) ** 2.0) in
        if Float.abs (nx -. ny) > 1e-6 then ok := false
      done;
      !ok)

let test_rope_odd_dim_rejected () =
  Alcotest.check_raises "odd dim" (Invalid_argument "Rope: odd dimension") (fun () ->
      ignore (Rope.exact ~pos:1 (Tensor.create [ 7 ])))

let test_rope_backend_close () =
  let x = random_matrix 9 6 16 in
  let e = Rope.exact_rows x and a = Rope.approx_rows (Approx.ours_fp ()) x in
  Alcotest.(check bool) "ours-fp rope close" true (Tensor.equal ~eps:2e-2 e a)

(* -------------------------------------------- kernel cross-validation *)

(* The IR kernels and the tensor-level operators implement the same
   mathematics; run both on the same data. *)
let test_kernel_vs_tensor_softmax () =
  let n = 24 in
  let xs = Array.init n (fun i -> ((float_of_int i *. 7.3) -. 80.0) /. 11.0) in
  let res =
    Interp.run (Kernels.softmax Kernels.picachu)
      { Interp.arrays = [ ("x", xs) ]; scalars = [ ("n", float_of_int n) ] }
  in
  let y = List.assoc "y" res.Interp.out_arrays in
  let expect = Softmax.exact_row xs in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "kernel matches tensor op" true
        (Float.abs (v -. expect.(i)) < 1e-5))
    y

let test_kernel_vs_tensor_rmsnorm () =
  let n = 24 in
  let xs = Array.init n (fun i -> ((float_of_int i *. 3.1) -. 30.0) /. 7.0) in
  let res =
    Interp.run (Kernels.rmsnorm Kernels.picachu)
      { Interp.arrays = [ ("x", xs) ]; scalars = [ ("n", float_of_int n) ] }
  in
  let y = List.assoc "y" res.Interp.out_arrays in
  let expect =
    Tensor.data (Norms.rmsnorm_exact (Tensor.of_array [ 1; n ] (Array.copy xs)))
  in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "kernel matches tensor op" true
        (Float.abs (v -. expect.(i)) < 1e-9))
    y

(* -------------------------------------------------------------- registry *)

let test_registry_roundtrip () =
  List.iter
    (fun k ->
      Alcotest.(check bool) "roundtrip" true (Registry.of_name (Registry.name k) = k))
    Registry.all;
  Alcotest.check_raises "unknown" (Invalid_argument "Registry.of_name: frobnicate")
    (fun () -> ignore (Registry.of_name "frobnicate"))

let test_registry_classes () =
  Alcotest.(check bool) "softmax is RE" true
    (Registry.klass Registry.Softmax = Picachu_ir.Kernel.RE);
  Alcotest.(check bool) "gelu is EO" true
    (Registry.klass Registry.Gelu = Picachu_ir.Kernel.EO)

let test_registry_kernels_exist () =
  List.iter
    (fun op -> ignore (Registry.kernel Kernels.picachu op))
    Registry.all

let test_registry_math_operators () =
  Alcotest.(check (list string)) "softmax operators" [ "division"; "exponential" ]
    (Registry.mathematical_operators Registry.Softmax);
  Alcotest.(check (list string)) "norm operators" [ "inverted square root" ]
    (Registry.mathematical_operators Registry.Rmsnorm)

let suite =
  [
    ( "softmax",
      [
        Alcotest.test_case "rows sum to one" `Quick test_softmax_rows_sum_one;
        Alcotest.test_case "shift invariance" `Quick test_softmax_shift_invariance;
        Alcotest.test_case "overflow safe" `Quick test_softmax_overflow_safe;
        Alcotest.test_case "approx close" `Quick test_softmax_approx_close;
        qtest prop_softmax_monotone;
      ] );
    ( "activations",
      [
        Alcotest.test_case "relu values" `Quick test_relu_values;
        Alcotest.test_case "gelu landmarks" `Quick test_gelu_landmarks;
        Alcotest.test_case "silu landmarks" `Quick test_silu_landmarks;
        Alcotest.test_case "gated shape check" `Quick test_gated_shape_check;
        Alcotest.test_case "swiglu definition" `Quick test_swiglu_is_silu_times_value;
      ] );
    ( "norms",
      [
        Alcotest.test_case "layernorm moments" `Quick test_layernorm_moments;
        Alcotest.test_case "rmsnorm unit rms" `Quick test_rmsnorm_unit_rms;
        Alcotest.test_case "scale invariance" `Quick test_norm_scale_invariance;
        Alcotest.test_case "backends close" `Quick test_norm_backends_close;
      ] );
    ( "rope",
      [
        Alcotest.test_case "theta" `Quick test_rope_theta;
        Alcotest.test_case "angle reduction" `Quick test_reduce_angle_identity;
        Alcotest.test_case "position zero" `Quick test_rope_position_zero_identity;
        qtest prop_rope_preserves_pair_norms;
        Alcotest.test_case "odd dim rejected" `Quick test_rope_odd_dim_rejected;
        Alcotest.test_case "backend close" `Quick test_rope_backend_close;
      ] );
    ( "kernel-crosscheck",
      [
        Alcotest.test_case "softmax kernel vs tensor" `Quick test_kernel_vs_tensor_softmax;
        Alcotest.test_case "rmsnorm kernel vs tensor" `Quick test_kernel_vs_tensor_rmsnorm;
      ] );
    ( "registry",
      [
        Alcotest.test_case "roundtrip" `Quick test_registry_roundtrip;
        Alcotest.test_case "classes" `Quick test_registry_classes;
        Alcotest.test_case "kernels exist" `Quick test_registry_kernels_exist;
        Alcotest.test_case "math operators" `Quick test_registry_math_operators;
      ] );
  ]
