(* Determinism suite for the discrete-event serving scheduler: hand-computed
   step semantics for both batching policies, queue-capacity drops, and the
   acceptance pins — one small llama2-7b traffic trace whose results must be
   bit-identical across domain-pool sizes 1/2/4 and across repeated runs,
   with Continuous strictly beating Static on p95 TTFT. *)
open Picachu
module Parallel = Picachu_parallel.Parallel
module Mz = Picachu_llm.Model_zoo
module Arch = Picachu_cgra.Arch

let pool_sizes = [ 1; 2; 4 ]
let checkf = Alcotest.(check (float 1e-12))

(* a synthetic cost source: flat decode cost, fixed prefill — every step of
   the simulation is hand-computable *)
let flat_cost ?(prefill = 1.0) ?(decode = 0.1) () : Scheduler.cost_source =
 fun (r : Serving.request) ->
  ( {
      Serving.prefill_s = prefill;
      decode_s_at =
        [ (r.Serving.prompt, decode); (r.Serving.prompt + r.Serving.generate, decode) ];
    },
    Serving.Fused )

let arrival id at prompt generate =
  { Scheduler.id; at; request = { Serving.prompt; generate } }

(* ---------------------------------------------------------------- traces *)

let test_trace_deterministic () =
  let spec = Scheduler.default_trace ~seed:11 ~rps:4.0 ~requests:20 () in
  Alcotest.(check bool) "same seed, same trace" true
    (Scheduler.trace spec = Scheduler.trace spec);
  Alcotest.(check bool) "different seed diverges" true
    (Scheduler.trace spec <> Scheduler.trace { spec with Scheduler.seed = 12 })

let test_trace_shape () =
  let spec = Scheduler.default_trace ~seed:3 ~rps:10.0 ~requests:50 () in
  let tr = Scheduler.trace spec in
  Alcotest.(check int) "count" 50 (List.length tr);
  let prev = ref 0.0 and prev_id = ref (-1) in
  List.iter
    (fun (a : Scheduler.arrival) ->
      Alcotest.(check bool) "arrival order" true (a.Scheduler.at >= !prev);
      Alcotest.(check int) "dense ids" (!prev_id + 1) a.Scheduler.id;
      Alcotest.(check bool) "prompt from buckets" true
        (Array.mem a.Scheduler.request.Serving.prompt spec.Scheduler.prompt_buckets);
      Alcotest.(check bool) "generate from buckets" true
        (Array.mem a.Scheduler.request.Serving.generate spec.Scheduler.generate_buckets);
      prev := a.Scheduler.at;
      prev_id := a.Scheduler.id)
    tr

let test_trace_validation () =
  let spec = Scheduler.default_trace ~rps:4.0 ~requests:8 () in
  Alcotest.check_raises "rps" (Invalid_argument "Scheduler.trace: rps must be positive")
    (fun () -> ignore (Scheduler.trace { spec with Scheduler.rps = 0.0 }));
  Alcotest.check_raises "requests"
    (Invalid_argument "Scheduler.trace: requests must be positive") (fun () ->
      ignore (Scheduler.trace { spec with Scheduler.requests = 0 }))

(* ----------------------------------------------------- policy semantics *)

let test_continuous_hand_computed () =
  (* two requests at t=0, two slots: prefills overlap the admission step
     (1.0 s), then two lockstep decode steps of 0.1 s each *)
  let fleet =
    Scheduler.run ~slots:2 ~policy:Scheduler.Continuous ~cost:(flat_cost ())
      [ arrival 0 0.0 8 2; arrival 1 0.0 8 2 ]
  in
  Alcotest.(check int) "both complete" 2 (List.length fleet.Scheduler.completions);
  List.iter
    (fun (c : Scheduler.completion) ->
      checkf "ttft is the admission step" 1.0 c.Scheduler.c_ttft_s;
      checkf "latency" 1.2 c.Scheduler.c_latency_s;
      checkf "tpot" 0.1 c.Scheduler.c_tpot_s)
    fleet.Scheduler.completions;
  checkf "makespan" 1.2 fleet.Scheduler.makespan_s;
  checkf "throughput" (4.0 /. 1.2) fleet.Scheduler.throughput_tps;
  Alcotest.(check int) "no drops" 0 fleet.Scheduler.dropped

let test_continuous_refills_freed_slot () =
  (* one slot: the second request waits for the first to finish decoding,
     then its prefill occupies the freed slot's next step *)
  let fleet =
    Scheduler.run ~slots:1 ~policy:Scheduler.Continuous ~cost:(flat_cost ())
      [ arrival 0 0.0 8 2; arrival 1 0.0 8 2 ]
  in
  let by_id id =
    List.find (fun (c : Scheduler.completion) -> c.Scheduler.c_id = id)
      fleet.Scheduler.completions
  in
  checkf "first ttft" 1.0 (by_id 0).Scheduler.c_ttft_s;
  checkf "first latency" 1.2 (by_id 0).Scheduler.c_latency_s;
  (* request 1 admits at the 1.2 s boundary, prefill to 2.2, decodes to 2.4 *)
  checkf "second ttft" 2.2 (by_id 1).Scheduler.c_ttft_s;
  checkf "second latency" 2.4 (by_id 1).Scheduler.c_latency_s

let test_static_waits_for_batch () =
  (* batch of two: the first request cannot prefill until the second
     arrives at t=10 — the static TTFT penalty in its purest form *)
  let fleet =
    Scheduler.run ~policy:(Scheduler.Static 2) ~cost:(flat_cost ())
      [ arrival 0 0.0 8 2; arrival 1 10.0 8 2 ]
  in
  let by_id id =
    List.find (fun (c : Scheduler.completion) -> c.Scheduler.c_id = id)
      fleet.Scheduler.completions
  in
  checkf "early arrival waits" 11.0 (by_id 0).Scheduler.c_ttft_s;
  checkf "late arrival only pays prefill" 1.0 (by_id 1).Scheduler.c_ttft_s;
  checkf "makespan" 11.2 fleet.Scheduler.makespan_s

let test_static_partial_final_batch () =
  (* three requests, batch of two: the trailing request runs as a partial
     batch once arrivals are exhausted *)
  let fleet =
    Scheduler.run ~policy:(Scheduler.Static 2) ~cost:(flat_cost ())
      [ arrival 0 0.0 8 1; arrival 1 0.0 8 1; arrival 2 0.0 8 1 ]
  in
  Alcotest.(check int) "all complete" 3 (List.length fleet.Scheduler.completions)

let test_queue_capacity_drops () =
  let fleet =
    Scheduler.run ~slots:1 ~queue_capacity:1 ~policy:Scheduler.Continuous
      ~cost:(flat_cost ())
      [ arrival 0 0.0 8 1; arrival 1 0.0 8 1; arrival 2 0.0 8 1 ]
  in
  Alcotest.(check int) "one served" 1 (List.length fleet.Scheduler.completions);
  Alcotest.(check int) "two dropped" 2 fleet.Scheduler.dropped

let test_run_validation () =
  Alcotest.check_raises "slots" (Invalid_argument "Scheduler.run: slots must be positive")
    (fun () ->
      ignore
        (Scheduler.run ~slots:0 ~policy:Scheduler.Continuous ~cost:(flat_cost ()) []));
  Alcotest.check_raises "batch" (Invalid_argument "Scheduler.run: batch size must be positive")
    (fun () ->
      ignore (Scheduler.run ~policy:(Scheduler.Static 0) ~cost:(flat_cost ()) []));
  (* an empty trace is a well-formed degenerate fleet, not an exception —
     the cluster layer feeds per-replica sub-traces that can be empty *)
  let empty = Scheduler.run ~policy:Scheduler.Continuous ~cost:(flat_cost ()) [] in
  Alcotest.(check int) "no completions" 0 (List.length empty.Scheduler.completions);
  Alcotest.(check int) "no drops" 0 empty.Scheduler.dropped;
  checkf "zero throughput" 0.0 empty.Scheduler.throughput_tps;
  checkf "zero p99 ttft" 0.0 empty.Scheduler.ttft.Scheduler.p99;
  Alcotest.(check int) "no tiers" 0 (List.length empty.Scheduler.tiers)

let test_all_dropped_trace () =
  (* queue capacity 1, one slot, a burst at t=0: requests beyond the first
     two are shed.  Before PR 7 an all-dropped trace raised [Invalid_argument]
     out of Scheduler.run; now it must report a well-formed fleet whose
     completions + dropped account for every arrival *)
  let burst = List.init 12 (fun i -> arrival i 0.0 8 1) in
  let fleet =
    Scheduler.run ~slots:1 ~queue_capacity:1 ~policy:Scheduler.Continuous
      ~cost:(flat_cost ()) burst
  in
  Alcotest.(check int) "accounting"
    12
    (List.length fleet.Scheduler.completions + fleet.Scheduler.dropped);
  Alcotest.(check bool) "most of the burst shed" true (fleet.Scheduler.dropped >= 10)

(* ------------------------------------------- the pinned llama2-7b trace *)

let golden_spec = Scheduler.default_trace ~seed:7 ~rps:8.0 ~requests:12 ()

let golden_fleet policy =
  Scheduler.serve ~slots:8 ~queue_capacity:64 ~policy (Simulator.default_config ())
    Mz.llama2_7b golden_spec

let fleet_digest (f : Scheduler.fleet) =
  let b = Buffer.create 512 in
  List.iter
    (fun (c : Scheduler.completion) ->
      Buffer.add_string b
        (Printf.sprintf "%d:%Lx:%Lx:%Lx:%Lx;" c.Scheduler.c_id
           (Int64.bits_of_float c.Scheduler.c_arrival_s)
           (Int64.bits_of_float c.Scheduler.c_ttft_s)
           (Int64.bits_of_float c.Scheduler.c_latency_s)
           (Int64.bits_of_float c.Scheduler.c_tpot_s)))
    f.Scheduler.completions;
  Buffer.add_string b
    (Printf.sprintf "d%d|m%Lx|t%Lx" f.Scheduler.dropped
       (Int64.bits_of_float f.Scheduler.makespan_s)
       (Int64.bits_of_float f.Scheduler.throughput_tps));
  Digest.to_hex (Digest.string (Buffer.contents b))

let test_golden_trace_pinned () =
  (* the full per-request result of the seed-7 trace, pinned: any change to
     the arrival stream, the step model, or the cost machinery moves this *)
  let f = golden_fleet Scheduler.Continuous in
  Alcotest.(check int) "completions" 12 (List.length f.Scheduler.completions);
  Alcotest.(check int) "drops" 0 f.Scheduler.dropped;
  Alcotest.(check string) "p95 ttft" "21.672747"
    (Printf.sprintf "%.6f" f.Scheduler.ttft.Scheduler.p95);
  Alcotest.(check string) "p95 latency" "35.916038"
    (Printf.sprintf "%.6f" f.Scheduler.latency.Scheduler.p95);
  Alcotest.(check string) "digest" "16d32789d5caa77bf3e6f2892fe7a3e9" (fleet_digest f)

let test_golden_pool_invariant () =
  (* bit-identical across domain-pool sizes and across repeated runs *)
  let reference =
    Parallel.with_pool ~size:1 (fun () -> fleet_digest (golden_fleet Scheduler.Continuous))
  in
  List.iter
    (fun size ->
      Parallel.with_pool ~size (fun () ->
          Alcotest.(check string)
            (Printf.sprintf "pool size %d" size)
            reference
            (fleet_digest (golden_fleet Scheduler.Continuous));
          Alcotest.(check string)
            (Printf.sprintf "repeat at size %d" size)
            reference
            (fleet_digest (golden_fleet Scheduler.Continuous))))
    pool_sizes

let test_continuous_beats_static_p95_ttft () =
  let cont = golden_fleet Scheduler.Continuous in
  let stat = golden_fleet (Scheduler.Static 4) in
  Alcotest.(check bool) "strictly better tail TTFT" true
    (cont.Scheduler.ttft.Scheduler.p95 < stat.Scheduler.ttft.Scheduler.p95)

let test_degraded_tier_shows_up () =
  (* picachu-variant kernels on the homogeneous baseline fabric are
     structurally unmappable: every request falls through the robust
     ladder, and the fleet records who actually answered *)
  let cfg = { (Simulator.default_config ()) with Simulator.arch = Arch.baseline () } in
  let spec =
    {
      (Scheduler.default_trace ~seed:5 ~rps:8.0 ~requests:4 ()) with
      Scheduler.prompt_buckets = [| 32; 64 |];
      generate_buckets = [| 4; 8 |];
    }
  in
  let f = Scheduler.serve ~policy:Scheduler.Continuous cfg Mz.gpt2_xl spec in
  Alcotest.(check int) "all answered" 4 (List.length f.Scheduler.completions);
  (match f.Scheduler.tiers with
  | [ (Serving.Baseline_cgra, 4) ] -> ()
  | _ -> Alcotest.fail "expected every request served by the baseline tier");
  List.iter
    (fun (c : Scheduler.completion) ->
      Alcotest.(check bool) "positive ttft" true (c.Scheduler.c_ttft_s > 0.0))
    f.Scheduler.completions

let suite =
  [
    ( "scheduler",
      [
        Alcotest.test_case "trace deterministic" `Quick test_trace_deterministic;
        Alcotest.test_case "trace shape" `Quick test_trace_shape;
        Alcotest.test_case "trace validation" `Quick test_trace_validation;
        Alcotest.test_case "continuous hand-computed" `Quick test_continuous_hand_computed;
        Alcotest.test_case "continuous refills freed slot" `Quick
          test_continuous_refills_freed_slot;
        Alcotest.test_case "static waits for batch" `Quick test_static_waits_for_batch;
        Alcotest.test_case "static partial final batch" `Quick
          test_static_partial_final_batch;
        Alcotest.test_case "queue capacity drops" `Quick test_queue_capacity_drops;
        Alcotest.test_case "validation" `Quick test_run_validation;
        Alcotest.test_case "all-dropped trace" `Quick test_all_dropped_trace;
        Alcotest.test_case "golden trace pinned" `Quick test_golden_trace_pinned;
        Alcotest.test_case "golden pool-invariant" `Quick test_golden_pool_invariant;
        Alcotest.test_case "continuous beats static p95 ttft" `Quick
          test_continuous_beats_static_p95_ttft;
        Alcotest.test_case "degraded tier shows up" `Quick test_degraded_tier_shows_up;
      ] );
  ]
