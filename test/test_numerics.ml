(* Tests for the numerics substrate: formats, the PICACHU operator algorithm
   (FP and INT datapaths), the LUT, and the I-BERT / gemmlowp baselines. *)
open Picachu_numerics

let check_float = Alcotest.(check (float 1e-12))
let check_close eps = Alcotest.(check (float eps))
let qtest = QCheck_alcotest.to_alcotest

let rel_err ref v =
  Float.abs (ref -. v) /. Float.max 1e-12 (Float.abs ref)

(* ------------------------------------------------------------------ Fp16 *)

let test_fp16_known_encodings () =
  Alcotest.(check int) "1.0" 0x3C00 (Fp16.of_float 1.0);
  Alcotest.(check int) "-2.0" 0xC000 (Fp16.of_float (-2.0));
  Alcotest.(check int) "0.5" 0x3800 (Fp16.of_float 0.5);
  Alcotest.(check int) "65504" 0x7BFF (Fp16.of_float 65504.0);
  Alcotest.(check int) "inf" 0x7C00 (Fp16.of_float infinity);
  Alcotest.(check int) "-inf" 0xFC00 (Fp16.of_float neg_infinity);
  Alcotest.(check int) "+0" 0x0000 (Fp16.of_float 0.0)

let test_fp16_decode_known () =
  check_float "decode 1.0" 1.0 (Fp16.to_float 0x3C00);
  check_float "decode max" 65504.0 (Fp16.to_float 0x7BFF);
  check_float "decode smallest subnormal" (2.0 ** -24.0) (Fp16.to_float 0x0001);
  Alcotest.(check bool) "decode nan" true (Float.is_nan (Fp16.to_float 0x7E00))

let test_fp16_overflow_to_inf () =
  Alcotest.(check bool) "66000 -> inf" true (Fp16.round 66000.0 = infinity);
  check_float "65504 stays" 65504.0 (Fp16.round 65504.0)

let test_fp16_round_to_nearest_even () =
  (* 2049 is exactly between representables 2048 and 2050: ties to even *)
  check_float "tie to even" 2048.0 (Fp16.round 2049.0);
  check_float "above tie" 2052.0 (Fp16.round 2051.0)

let prop_fp16_roundtrip_idempotent =
  QCheck.Test.make ~name:"fp16 round is idempotent" ~count:1000
    (QCheck.float_range (-60000.0) 60000.0) (fun x ->
      let r = Fp16.round x in
      Fp16.round r = r)

let prop_fp16_relative_error =
  QCheck.Test.make ~name:"fp16 relative error within half-ulp" ~count:1000
    (QCheck.float_range 6.2e-5 60000.0) (fun x ->
      rel_err x (Fp16.round x) <= Fp16.epsilon /. 2.0 +. 1e-12)

let prop_fp16_monotone =
  QCheck.Test.make ~name:"fp16 rounding is monotone" ~count:1000
    (QCheck.pair (QCheck.float_range (-1000.0) 1000.0) (QCheck.float_range (-1000.0) 1000.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Fp16.round lo <= Fp16.round hi)

(* ----------------------------------------------------------- Fixed_point *)

let test_fx_fmt_validation () =
  Alcotest.check_raises "bad total" (Invalid_argument "Fixed_point.fmt: total_bits")
    (fun () -> ignore (Fixed_point.fmt ~total_bits:63 ~frac_bits:10));
  Alcotest.check_raises "bad frac" (Invalid_argument "Fixed_point.fmt: frac_bits")
    (fun () -> ignore (Fixed_point.fmt ~total_bits:16 ~frac_bits:16))

let test_fx_roundtrip () =
  let f = Fixed_point.q15 in
  check_close 1e-4 "roundtrip" 0.333 (Fixed_point.round f 0.333);
  check_float "exact half" 0.5 (Fixed_point.round f 0.5)

let test_fx_saturation () =
  let f = Fixed_point.q15 in
  Alcotest.(check int) "positive saturate" (Fixed_point.max_int_value f)
    (Fixed_point.of_float f 2.0);
  Alcotest.(check int) "negative saturate" (Fixed_point.min_int_value f)
    (Fixed_point.of_float f (-2.0))

let test_fx_overflow_saturates () =
  (* int_of_float is unspecified out of range (1e30 came back as 0): an
     overflowed exp intermediate must clamp to the format max, not zero *)
  let f = Fixed_point.q15 in
  Alcotest.(check int) "+inf" 32767 (Fixed_point.of_float f infinity);
  Alcotest.(check int) "-inf" (-32768) (Fixed_point.of_float f neg_infinity);
  Alcotest.(check int) "1e30" 32767 (Fixed_point.of_float f 1e30);
  Alcotest.(check int) "-1e30" (-32768) (Fixed_point.of_float f (-1e30));
  Alcotest.(check int) "nan still 0" 0 (Fixed_point.of_float f nan);
  let g = Fixed_point.q31 in
  Alcotest.(check int) "q31 +inf" (Fixed_point.max_int_value g)
    (Fixed_point.of_float g infinity);
  Alcotest.(check int) "q31 -inf" (Fixed_point.min_int_value g)
    (Fixed_point.of_float g neg_infinity);
  Alcotest.(check int) "q31 1e30" (Fixed_point.max_int_value g)
    (Fixed_point.of_float g 1e30)

let prop_fx_of_float_saturating_roundtrip =
  QCheck.Test.make ~name:"to_float (of_float f x) within one LSB of the clamp"
    ~count:1000
    (QCheck.float_range (-1e12) 1e12)
    (fun x ->
      let f = Fixed_point.q15 in
      let lsb = 1.0 /. 32768.0 in
      let lo = Fixed_point.to_float f (Fixed_point.min_int_value f) in
      let hi = Fixed_point.to_float f (Fixed_point.max_int_value f) in
      let clamped = Float.min (Float.max x lo) hi in
      Float.abs (Fixed_point.to_float f (Fixed_point.of_float f x) -. clamped)
      <= lsb +. 1e-15)

let test_fx_mul () =
  let f = Fixed_point.fmt ~total_bits:32 ~frac_bits:16 in
  let a = Fixed_point.of_float f 1.5 and b = Fixed_point.of_float f 2.25 in
  check_close 1e-4 "product" 3.375 (Fixed_point.to_float f (Fixed_point.mul f a b))

let test_fx_mul_corners () =
  (* q31 min x min is 2^62, which wraps OCaml's native int; the Int64
     product must saturate to the format max instead *)
  let q31 = Fixed_point.q31 in
  let mn = Fixed_point.min_int_value q31 and mx = Fixed_point.max_int_value q31 in
  Alcotest.(check int) "q31 min*min saturates" mx (Fixed_point.mul q31 mn mn);
  Alcotest.(check int) "q31 min*max" (-mx) (Fixed_point.mul q31 mn mx);
  Alcotest.(check int) "q31 max*max" (mx - 1) (Fixed_point.mul q31 mx mx);
  let q15 = Fixed_point.q15 in
  Alcotest.(check int) "q15 min*min saturates" (Fixed_point.max_int_value q15)
    (Fixed_point.mul q15 (Fixed_point.min_int_value q15)
       (Fixed_point.min_int_value q15))

let test_fx_split () =
  let i, fr = Fixed_point.split 3.75 in
  Alcotest.(check int) "int part" 3 i;
  check_float "frac part" 0.75 fr;
  let i, fr = Fixed_point.split (-1.25) in
  Alcotest.(check int) "negative floors" (-2) i;
  check_float "frac in [0,1)" 0.75 fr

let prop_fx_split_reconstructs =
  QCheck.Test.make ~name:"split reconstructs x with frac in [0,1)" ~count:1000
    (QCheck.float_range (-1e6) 1e6) (fun x ->
      let i, f = Fixed_point.split x in
      f >= 0.0 && f < 1.0 && Float.abs (float_of_int i +. f -. x) < 1e-6)

let prop_fx_roundtrip_error =
  QCheck.Test.make ~name:"fixed-point roundtrip error <= half lsb" ~count:1000
    (QCheck.float_range (-0.999) 0.999) (fun x ->
      let f = Fixed_point.q15 in
      Float.abs (Fixed_point.round f x -. x) <= 0.5 /. 32768.0 +. 1e-12)

(* ----------------------------------------------------------------- Quant *)

let test_quant_roundtrip_bound () =
  let open Picachu_tensor in
  let r = Rng.create 2 in
  let t = Tensor.randn r [ 256 ] ~mu:0.0 ~sigma:2.0 in
  let q = Quant.quantize ~bits:8 t in
  let back = Quant.dequantize q in
  for i = 0 to 255 do
    Alcotest.(check bool) "error within half step" true
      (Float.abs (Tensor.get t i -. Tensor.get back i) <= q.Quant.scale /. 2.0 +. 1e-12)
  done

let test_quant_zero_tensor () =
  let t = Picachu_tensor.Tensor.create [ 4 ] in
  let q = Quant.quantize ~bits:8 t in
  check_float "scale defaults to 1" 1.0 q.Quant.scale

let test_saturating_cast () =
  Alcotest.(check int) "clamps high" 127 (Quant.saturating_cast ~bits:8 300);
  Alcotest.(check int) "clamps low" (-128) (Quant.saturating_cast ~bits:8 (-300));
  Alcotest.(check int) "passes through" 42 (Quant.saturating_cast ~bits:8 42)

let test_requantize () =
  let t = Picachu_tensor.Tensor.of_array [ 2 ] [| 1.0; -0.5 |] in
  let q = Quant.quantize ~bits:16 t in
  let q2 = Quant.requantize q ~new_scale:(q.Quant.scale *. 2.0) in
  let back = Quant.dequantize q2 in
  Alcotest.(check bool) "value preserved" true
    (Picachu_tensor.Tensor.equal ~eps:(q2.Quant.scale) t
       (Picachu_tensor.Tensor.reshape back [ 2 ]))

(* ------------------------------------------------------------------ Poly *)

let prop_horner_matches_naive =
  QCheck.Test.make ~name:"horner matches naive evaluation" ~count:500
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 0 8) (QCheck.float_range (-5.0) 5.0))
       (QCheck.float_range (-2.0) 2.0))
    (fun (coeffs, x) ->
      let c = Array.of_list coeffs in
      let naive =
        Array.to_list (Array.mapi (fun k ck -> ck *. (x ** float_of_int k)) c)
        |> List.fold_left ( +. ) 0.0
      in
      Float.abs (Poly.horner c x -. naive) < 1e-6)

let prop_complete_square_identity =
  QCheck.Test.make ~name:"completing the square preserves the quadratic" ~count:500
    (QCheck.quad (QCheck.float_range (-5.0) 5.0) (QCheck.float_range (-5.0) 5.0)
       (QCheck.float_range 0.1 5.0) (QCheck.float_range (-3.0) 3.0))
    (fun (a, b, c, x) ->
      let s, d, e = Poly.complete_square { Poly.a; b; c } in
      let direct = a +. (b *. x) +. (c *. x *. x) in
      let squared = (s *. (x +. d) *. (x +. d)) +. e in
      Float.abs (direct -. squared) < 1e-6)

let test_exp_coeffs () =
  let c = Poly.exp_taylor_coeffs ~order:3 in
  check_float "c0" 1.0 c.(0);
  check_float "c1 = ln2" (log 2.0) c.(1);
  check_close 1e-12 "c2 = ln2^2/2" (log 2.0 ** 2.0 /. 2.0) c.(2)

let test_eval_quadratic_int () =
  (* the I-BERT exp quadratic on a mid-range point *)
  let quad = { Poly.a = 0.344; b = 0.0; c = 0.3585 } in
  let quad = { quad with Poly.b = 2.0 *. 0.3585 *. 1.353 } in
  (* a + bx + cx^2 with completing-the-square equals c(x+1.353)^2 + const *)
  let in_scale = 0.7 /. 127.0 in
  let q = Quant.quantize_value ~bits:8 ~scale:in_scale (-0.3) in
  let q_out, out_scale = Poly.eval_quadratic_int quad ~in_scale ~bits:8 q in
  let got = float_of_int q_out *. out_scale in
  let expect = quad.Poly.a +. (quad.Poly.b *. -0.3) +. (quad.Poly.c *. 0.09) in
  check_close 0.02 "integer quadratic tracks float" expect got

(* ----------------------------------------------------- Taylor (FP path) *)

let grid ~lo ~hi n f =
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)) in
    worst := Float.max !worst (f x)
  done;
  !worst

let test_taylor_exp_accuracy () =
  let w = grid ~lo:(-30.0) ~hi:8.0 1000 (fun x -> rel_err (exp x) (Taylor.exp x)) in
  Alcotest.(check bool) "exp rel err < 1e-4" true (w < 1e-4)

let test_taylor_exp_edges () =
  check_float "exp(-inf)" 0.0 (Taylor.exp neg_infinity);
  Alcotest.(check bool) "exp(inf)" true (Taylor.exp infinity = infinity);
  Alcotest.(check bool) "exp(nan)" true (Float.is_nan (Taylor.exp nan));
  check_close 1e-6 "exp(0)" 1.0 (Taylor.exp 0.0)

let test_taylor_log_accuracy () =
  let w = grid ~lo:0.001 ~hi:1000.0 1000 (fun x -> rel_err (log x) (Taylor.log x)) in
  Alcotest.(check bool) "log rel err < 1e-3" true (w < 1e-3)

let test_taylor_log_edges () =
  Alcotest.(check bool) "log(-1) nan" true (Float.is_nan (Taylor.log (-1.0)));
  Alcotest.(check bool) "log 0" true (Taylor.log 0.0 = neg_infinity);
  check_close 1e-6 "log 1" 0.0 (Taylor.log 1.0)

let test_taylor_trig_accuracy () =
  (* default order 6 keeps sin terms through t^5: worst case ~t^7/7! at the
     range-reduction boundary, i.e. ~5e-3 *)
  let ws = grid ~lo:(-10.0) ~hi:10.0 1000 (fun x -> Float.abs (sin x -. Taylor.sin x)) in
  let wc = grid ~lo:(-10.0) ~hi:10.0 1000 (fun x -> Float.abs (cos x -. Taylor.cos x)) in
  Alcotest.(check bool) "sin abs err < 6e-3" true (ws < 6e-3);
  Alcotest.(check bool) "cos abs err < 1.5e-3" true (wc < 1.5e-3)

let test_taylor_isqrt () =
  let w =
    grid ~lo:0.001 ~hi:10000.0 1000 (fun x -> rel_err (1.0 /. sqrt x) (Taylor.isqrt x))
  in
  Alcotest.(check bool) "isqrt rel err < 1e-6" true (w < 1e-6);
  Alcotest.(check bool) "isqrt of negative" true (Float.is_nan (Taylor.isqrt (-1.0)))

let test_taylor_sigmoid_tanh () =
  let ws =
    grid ~lo:(-12.0) ~hi:12.0 500 (fun x ->
        Float.abs ((1.0 /. (1.0 +. exp (-.x))) -. Taylor.sigmoid x))
  in
  let wt = grid ~lo:(-12.0) ~hi:12.0 500 (fun x -> Float.abs (tanh x -. Taylor.tanh x)) in
  Alcotest.(check bool) "sigmoid abs err < 1e-5" true (ws < 1e-5);
  Alcotest.(check bool) "tanh abs err < 1e-4" true (wt < 1e-4)

let test_taylor_order_monotone () =
  (* user-defined precision: error shrinks as the order grows *)
  let err order =
    grid ~lo:(-5.0) ~hi:2.0 200 (fun x ->
        rel_err (exp x) (Taylor.exp ~cfg:{ Taylor.order } x))
  in
  let e2 = err 2 and e4 = err 4 and e6 = err 6 in
  Alcotest.(check bool) "order 4 better than 2" true (e4 < e2);
  Alcotest.(check bool) "order 6 better than 4" true (e6 < e4)

let prop_taylor_sigmoid_bounded =
  QCheck.Test.make ~name:"sigmoid stays in (0,1)" ~count:500
    (QCheck.float_range (-80.0) 80.0) (fun x ->
      let s = Taylor.sigmoid x in
      s >= 0.0 && s <= 1.0)

(* ------------------------------------------------------ Int_ops (INT16) *)

let test_int_exp_accuracy () =
  let w = grid ~lo:(-20.0) ~hi:8.0 1000 (fun x -> rel_err (exp x) (Int_ops.exp x)) in
  Alcotest.(check bool) "int exp rel err < 1e-3" true (w < 1e-3)

let test_int_log_accuracy () =
  let w = grid ~lo:0.01 ~hi:1000.0 1000 (fun x -> rel_err (log x) (Int_ops.log x)) in
  Alcotest.(check bool) "int log rel err < 1e-3" true (w < 1e-3)

let test_int_trig_accuracy () =
  let ws = grid ~lo:(-6.0) ~hi:6.0 500 (fun x -> Float.abs (sin x -. Int_ops.sin x)) in
  let wc = grid ~lo:(-6.0) ~hi:6.0 500 (fun x -> Float.abs (cos x -. Int_ops.cos x)) in
  Alcotest.(check bool) "int sin abs err < 1e-3" true (ws < 1e-3);
  Alcotest.(check bool) "int cos abs err < 1e-2" true (wc < 1e-2)

let test_int_reciprocal () =
  let w = grid ~lo:0.01 ~hi:100.0 500 (fun x -> rel_err (1.0 /. x) (Int_ops.reciprocal x)) in
  Alcotest.(check bool) "reciprocal rel err < 1e-4" true (w < 1e-4);
  check_close 1e-6 "negative operand" (-0.25) (Int_ops.reciprocal (-4.0))

let test_int_isqrt_sigmoid () =
  let w = grid ~lo:0.01 ~hi:100.0 300 (fun x -> rel_err (1.0 /. sqrt x) (Int_ops.isqrt x)) in
  Alcotest.(check bool) "int isqrt < 1e-5" true (w < 1e-5);
  let ws =
    grid ~lo:(-10.0) ~hi:10.0 300 (fun x ->
        Float.abs ((1.0 /. (1.0 +. exp (-.x))) -. Int_ops.sigmoid x))
  in
  Alcotest.(check bool) "int sigmoid < 1e-3" true (ws < 1e-3)

(* ------------------------------------------------------------------- Lut *)

let test_lut_validation () =
  Alcotest.check_raises "entries" (Invalid_argument "Lut.create: entries < 2") (fun () ->
      ignore (Lut.create ~entries:1 ~lo:0.0 ~hi:1.0 (fun x -> x)));
  Alcotest.check_raises "range" (Invalid_argument "Lut.create: empty range") (fun () ->
      ignore (Lut.create ~lo:1.0 ~hi:1.0 (fun x -> x)))

let test_lut_clamps () =
  let l = Lut.create ~entries:16 ~lo:0.0 ~hi:1.0 (fun x -> x) in
  check_close 1e-3 "below lo" 0.0 (Lut.eval l (-5.0));
  check_close 1e-3 "above hi" 1.0 (Lut.eval l 10.0)

let test_lut_linear_exact () =
  (* a linear function interpolates with only FP16 storage error *)
  let l = Lut.create ~entries:64 ~lo:(-2.0) ~hi:2.0 (fun x -> (0.5 *. x) +. 0.25) in
  let w = grid ~lo:(-2.0) ~hi:2.0 200 (fun x -> Float.abs (Lut.eval l x -. ((0.5 *. x) +. 0.25))) in
  Alcotest.(check bool) "linear within fp16 step" true (w < 2e-3)

let test_lut_gauss_cdf () =
  let l = Lazy.force Lut.gauss_cdf in
  check_close 1e-3 "phi(0)" 0.5 (Lut.eval l 0.0);
  check_close 1e-3 "phi(6)" 1.0 (Lut.eval l 6.0);
  check_close 1e-3 "phi(-6)" 0.0 (Lut.eval l (-6.0));
  Alcotest.(check int) "rom bytes" 2048 (Lut.size_bytes l)

let test_gauss_cdf_exact () =
  check_close 1e-6 "phi(0)" 0.5 (Lut.gauss_cdf_exact 0.0);
  check_close 1e-4 "phi(1.96)" 0.975 (Lut.gauss_cdf_exact 1.96);
  check_close 1e-6 "symmetry" 1.0
    (Lut.gauss_cdf_exact 1.3 +. Lut.gauss_cdf_exact (-1.3))

(* ------------------------------------------------------------------- Nli *)

let tanh_family a x = Float.tanh (a *. x)

let test_nli_gelu_golden () =
  (* the shipped nli.gelu table, pinned: the fitter is deterministic, so a
     drift here means the fitting algorithm changed *)
  match Nli.fit_of_name "nli.gelu" with
  | None -> Alcotest.fail "nli.gelu missing from the standard tables"
  | Some f ->
      Alcotest.(check int) "segments" 64 f.Nli.segments;
      Alcotest.(check int) "entries" 65 (Lut.entries f.Nli.table);
      Alcotest.(check int) "rom bytes" 260 (Lut.size_bytes f.Nli.table);
      Alcotest.(check bool) "non-uniform" false (Lut.is_uniform f.Nli.table);
      check_float "lo" (-8.0) (Lut.lo f.Nli.table);
      check_float "hi" 8.0 (Lut.hi f.Nli.table);
      let bp = Lut.breakpoints f.Nli.table in
      check_float "first interior cut" (-3.71875) bp.(1);
      check_float "center cut" 0.0 bp.(Array.length bp / 2);
      check_close 1e-8 "max err" 1.017671e-3 f.Nli.max_err;
      Alcotest.(check bool) "threshold below measured sup" true
        (f.Nli.target_err <= f.Nli.max_err)

let prop_nli_equalized =
  QCheck.Test.make ~name:"nli per-segment errors equalized under max_err"
    ~count:50
    (QCheck.float_range 0.3 4.0)
    (fun a ->
      let f = tanh_family a in
      let fit = Nli.fit ~segments:24 ~lo:(-4.0) ~hi:4.0 f in
      let errs = Nli.per_segment_errors fit f in
      let mx = Array.fold_left Float.max 0.0 errs in
      (* the witness samples each segment on its own dense grid, so it
         agrees with the fit's global sup only up to sampling noise *)
      Array.for_all (fun e -> e <= (fit.Nli.max_err *. 1.02) +. 1e-9) errs
      && mx >= fit.Nli.max_err *. 0.98)

let prop_nli_budget_monotone =
  QCheck.Test.make ~name:"nli doubling the budget never fits worse" ~count:25
    QCheck.(pair (float_range 0.3 4.0) (int_range 4 48))
    (fun (a, s) ->
      let f = tanh_family a in
      let small = Nli.fit ~segments:s ~lo:(-4.0) ~hi:4.0 f in
      let big = Nli.fit ~segments:(2 * s) ~lo:(-4.0) ~hi:4.0 f in
      big.Nli.max_err <= small.Nli.max_err +. 1e-12)

let prop_nli_exact_at_breakpoints =
  QCheck.Test.make ~name:"nli eval exact at every breakpoint" ~count:50
    (QCheck.float_range 0.3 4.0)
    (fun a ->
      let f = tanh_family a in
      let fit = Nli.fit ~segments:16 ~lo:(-4.0) ~hi:4.0 f in
      (* node values are the function samples rounded through the FP16 ROM
         word, and interpolation returns the stored value at a node *)
      Array.for_all
        (fun x -> Lut.eval fit.Nli.table x = Fp16.round (f x))
        (Lut.breakpoints fit.Nli.table))

let test_nli_scalar_evaluators () =
  (* the range-reduced software datapath tracks libm within table error *)
  check_close 2e-3 "exp_neg" (Float.exp (-3.2)) (Nli.exp_neg (-3.2));
  check_close 2e-3 "gelu" (1.7 *. Lut.gauss_cdf_exact 1.7) (Nli.gelu 1.7);
  check_close 2e-3 "silu" (2.5 /. (1.0 +. Float.exp (-2.5))) (Nli.silu 2.5);
  check_close 2e-3 "tanh" (Float.tanh 0.8) (Nli.tanh 0.8);
  check_close 2e-3 "sin" (Float.sin 10.0) (Nli.sin 10.0);
  check_close 2e-3 "cos" (Float.cos (-7.0)) (Nli.cos (-7.0));
  (* frexp reduction covers every positive binade with one table *)
  check_close 1e-2 "recip 300" (1.0 /. 300.0 *. 300.0) (Nli.recip 300.0 *. 300.0);
  check_close 1e-2 "isqrt 5e4" (1.0) (Nli.isqrt 5e4 *. Float.sqrt 5e4);
  check_close 1e-2 "div" (17.0 /. 3.0 /. 5.666) (Nli.div 17.0 3.0 /. 5.666)

(* ----------------------------------------------------------------- Ibert *)

let test_ibert_i_exp_accuracy () =
  (* within the calibrated regime the quadratic tracks exp to a few % *)
  let scale = 8.0 /. 127.0 in
  let worst = ref 0.0 in
  for q = -127 to 0 do
    let x = float_of_int q *. scale in
    let q_out, s_out = Ibert.i_exp ~scale q in
    let got = float_of_int q_out *. s_out in
    worst := Float.max !worst (Float.abs (got -. exp x))
  done;
  Alcotest.(check bool) "i-exp abs err < 0.035" true (!worst < 0.035)

let test_ibert_i_sqrt () =
  List.iter
    (fun n ->
      let s = Ibert.i_sqrt n in
      Alcotest.(check bool) "floor sqrt" true (s * s <= n && (s + 1) * (s + 1) > n))
    [ 0; 1; 2; 15; 16; 17; 1000; 999999 ];
  Alcotest.check_raises "negative" (Invalid_argument "Ibert.i_sqrt: negative") (fun () ->
      ignore (Ibert.i_sqrt (-1)))

let prop_ibert_i_sqrt_random =
  QCheck.Test.make ~name:"i_sqrt is floor sqrt" ~count:500 (QCheck.int_range 0 1_000_000)
    (fun n ->
      let s = Ibert.i_sqrt n in
      s * s <= n && (s + 1) * (s + 1) > n)

let test_ibert_exp_v_in_range () =
  let xs = [| 0.5; -1.0; 2.0; -3.0 |] in
  let es = Ibert.exp_v xs in
  Array.iteri
    (fun i e ->
      let expect = exp (xs.(i) -. 2.0) in
      Alcotest.(check bool) "within 5%" true (Float.abs (e -. expect) < 0.05))
    es

let test_ibert_saturates_outliers () =
  (* beyond the static calibration range the grid clips: this is the LLaMA
     failure mechanism of Table 2 *)
  let xs = [| 40.0; 0.5 |] in
  let q = Quant.quantize_value ~bits:8 ~scale:(Ibert.calibrated_absmax /. 127.0) xs.(0) in
  Alcotest.(check int) "clipped to int8 max" 127 q

let test_ibert_gelu_shape () =
  let xs = [| -3.0; -1.0; 0.0; 1.0; 3.0 |] in
  let g = Ibert.gelu_v xs in
  Alcotest.(check bool) "gelu(-3) ~ 0" true (Float.abs g.(0) < 0.05);
  Alcotest.(check bool) "gelu(3) ~ 3" true (Float.abs (g.(4) -. 3.0) < 0.2);
  Alcotest.(check bool) "gelu(0) ~ 0" true (Float.abs g.(2) < 0.05)

(* -------------------------------------------------------------- Gemmlowp *)

let test_gemmlowp_exp_accuracy () =
  let w =
    grid ~lo:(-15.0) ~hi:0.0 500 (fun x -> Float.abs (exp x -. Gemmlowp.exp_on_negative x))
  in
  Alcotest.(check bool) "fixed exp abs err < 1e-3" true (w < 1e-3)

let test_gemmlowp_exp_edges () =
  check_float "positive clamps to 1" 1.0 (Gemmlowp.exp_on_negative 0.5);
  check_float "flushes below -16" 0.0 (Gemmlowp.exp_on_negative (-20.0))

let test_gemmlowp_logistic () =
  let w =
    grid ~lo:(-8.0) ~hi:8.0 500 (fun x ->
        Float.abs ((1.0 /. (1.0 +. exp (-.x))) -. Gemmlowp.logistic x))
  in
  Alcotest.(check bool) "logistic abs err < 1e-2" true (w < 1e-2)

let test_gemmlowp_tanh_symmetry () =
  List.iter
    (fun x ->
      Alcotest.(check bool) "odd symmetry" true
        (Float.abs (Gemmlowp.tanh x +. Gemmlowp.tanh (-.x)) < 2e-3))
    [ 0.3; 1.1; 2.7; 5.0 ]

let test_gemmlowp_exp_v_max_one () =
  let es = Gemmlowp.exp_v [| 1.0; 3.0; -2.0 |] in
  Alcotest.(check bool) "max element is ~1" true (Float.abs (es.(1) -. 1.0) < 1e-3)

(* ---------------------------------------------------------------- Approx *)

let test_backend_names_unique () =
  let names = List.map (fun (b : Approx.t) -> b.Approx.name) Approx.all_backends in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_exact_softmax_primitive () =
  let es = Approx.exact.Approx.exp_shifted [| 1.0; 2.0; 3.0 |] in
  check_close 1e-12 "max maps to 1" 1.0 es.(2);
  check_close 1e-12 "ratio" (exp (-1.0)) es.(1)

let test_backend_softmax_agreement () =
  (* each backend's primitives normalize to a distribution close to exact *)
  let xs = [| 0.3; -1.2; 2.4; 0.0; 1.1 |] in
  let exact_es = Approx.exact.Approx.exp_shifted xs in
  let exact_sum = Array.fold_left ( +. ) 0.0 exact_es in
  List.iter
    (fun (b : Approx.t) ->
      let es = b.Approx.exp_shifted xs in
      let sum = Array.fold_left ( +. ) 0.0 es in
      Array.iteri
        (fun i e ->
          let p = b.Approx.div e sum and p_exact = exact_es.(i) /. exact_sum in
          Alcotest.(check bool)
            (Printf.sprintf "%s prob within 0.02" b.Approx.name)
            true
            (Float.abs (p -. p_exact) < 0.02))
        es)
    [ Approx.fp16_reference; Approx.ours_fp (); Approx.ours_int (); Approx.gemmlowp ]

let test_gelu_forms_agree () =
  (* tanh form (Table 1) and Phi form agree to ~1e-3 *)
  let w =
    grid ~lo:(-5.0) ~hi:5.0 300 (fun x ->
        Float.abs (Approx.gelu_tanh_exact x -. (x *. Lut.gauss_cdf_exact x)))
  in
  Alcotest.(check bool) "forms agree" true (w < 5e-3)

let test_ours_backends_close_to_exact () =
  let xs = Array.init 64 (fun i -> (float_of_int i /. 8.0) -. 4.0) in
  List.iter
    (fun (b : Approx.t) ->
      let g = b.Approx.gelu xs and g0 = Approx.exact.Approx.gelu xs in
      let s = b.Approx.silu xs and s0 = Approx.exact.Approx.silu xs in
      Array.iteri
        (fun i _ ->
          Alcotest.(check bool) (b.Approx.name ^ " gelu close") true
            (Float.abs (g.(i) -. g0.(i)) < 0.01);
          Alcotest.(check bool) (b.Approx.name ^ " silu close") true
            (Float.abs (s.(i) -. s0.(i)) < 0.01))
        xs)
    [ Approx.fp16_reference; Approx.ours_fp (); Approx.ours_int () ]

(* -------------------------------------------------------------- Bfloat16 *)

let test_bf16_known_encodings () =
  Alcotest.(check int) "1.0" 0x3F80 (Bfloat16.of_float 1.0);
  Alcotest.(check int) "-2.0" 0xC000 (Bfloat16.of_float (-2.0));
  Alcotest.(check int) "max" 0x7F7F (Bfloat16.of_float Bfloat16.max_value);
  Alcotest.(check int) "inf" 0x7F80 (Bfloat16.of_float infinity);
  Alcotest.(check int) "-inf" 0xFF80 (Bfloat16.of_float neg_infinity);
  Alcotest.(check int) "nan" 0x7FC0 (Bfloat16.of_float Float.nan);
  Alcotest.(check int) "+0" 0x0000 (Bfloat16.of_float 0.0)

let test_bf16_decode_known () =
  check_float "decode 1.0" 1.0 (Bfloat16.to_float 0x3F80);
  check_float "decode max" Bfloat16.max_value (Bfloat16.to_float 0x7F7F);
  check_float "decode smallest subnormal" Bfloat16.min_positive_subnormal
    (Bfloat16.to_float 0x0001);
  Alcotest.(check bool) "decode inf" true (Bfloat16.to_float 0x7F80 = infinity);
  Alcotest.(check bool) "decode nan" true (Float.is_nan (Bfloat16.to_float 0x7FC0))

let test_bf16_round_to_nearest_even () =
  (* 1 + 2^-8 sits exactly between 1.0 and 1 + 2^-7: ties to the even code *)
  check_float "tie to even (down)" 1.0 (Bfloat16.round (1.0 +. (2.0 ** -8.0)));
  check_float "tie to even (up)" (1.0 +. (2.0 ** -6.0))
    (Bfloat16.round (1.0 +. (3.0 *. (2.0 ** -8.0))));
  check_float "above tie" (1.0 +. (2.0 ** -7.0))
    (Bfloat16.round (1.0 +. (1.5 *. (2.0 ** -8.0))))

let test_bf16_overflow_and_max_ulp () =
  let ulp = 2.0 ** 120.0 (* spacing at the top binade, 2^(127-7) *) in
  Alcotest.(check bool) "beyond max rounds to inf" true
    (Bfloat16.round 3.4e38 = infinity);
  check_float "max stays" Bfloat16.max_value (Bfloat16.round Bfloat16.max_value);
  check_float "max - 1 ulp stays" (Bfloat16.max_value -. ulp)
    (Bfloat16.round (Bfloat16.max_value -. ulp));
  Alcotest.(check bool) "max + 1 ulp rounds to inf" true
    (Bfloat16.round (Bfloat16.max_value +. ulp) = infinity)

let test_bf16_subnormals () =
  let s = Bfloat16.min_positive_subnormal in
  check_float "min subnormal exact" s (Bfloat16.round s);
  check_float "half of it ties to zero" 0.0 (Bfloat16.round (s /. 2.0));
  check_float "0.75 of it rounds up" s (Bfloat16.round (0.75 *. s));
  check_float "negative subnormal" (-.s) (Bfloat16.round (-.s))

let prop_bf16_roundtrip_idempotent =
  QCheck.Test.make ~name:"bf16 round is idempotent" ~count:1000
    (QCheck.float_range (-1e38) 1e38) (fun x ->
      let r = Bfloat16.round x in
      Bfloat16.round r = r)

let prop_bf16_half_ulp =
  QCheck.Test.make ~name:"bf16 error within half-ulp" ~count:1000
    (QCheck.float_range 1e-30 1e30) (fun x ->
      rel_err x (Bfloat16.round x) <= (Bfloat16.epsilon /. 2.0) +. 1e-12)

let prop_bf16_codes_roundtrip =
  QCheck.Test.make ~name:"bf16 all codes decode/encode stable" ~count:1
    QCheck.unit (fun () ->
      (* every 16-bit pattern: decode then re-encode is the identity up to
         NaN canonicalization *)
      let ok = ref true in
      for code = 0 to 0xFFFF do
        let v = Bfloat16.to_float code in
        let back = Bfloat16.of_float v in
        if Float.is_nan v then ok := !ok && Float.is_nan (Bfloat16.to_float back)
        else ok := !ok && back = code
      done;
      !ok)

(* ------------------------------------------------------------------- Fp8 *)

let test_fp8_known_values () =
  check_float "e4m3 max" 448.0 (Fp8.max_value Fp8.e4m3);
  check_float "e5m2 max" 57344.0 (Fp8.max_value Fp8.e5m2);
  check_float "e4m3 min subnormal" (2.0 ** -9.0)
    (Fp8.min_positive_subnormal Fp8.e4m3);
  check_float "e5m2 min subnormal" (2.0 ** -16.0)
    (Fp8.min_positive_subnormal Fp8.e5m2);
  check_float "e4m3 1.0" 1.0 (Fp8.round Fp8.e4m3 1.0);
  check_float "e5m2 -2.0" (-2.0) (Fp8.round Fp8.e5m2 (-2.0))

let test_fp8_saturation () =
  (* E4M3 has no infinity: everything beyond max (infinity included)
     saturates; E5M2 keeps true infinities but saturates finite overflow *)
  check_float "e4m3 500 -> 448" 448.0 (Fp8.round Fp8.e4m3 500.0);
  check_float "e4m3 inf -> 448" 448.0 (Fp8.round Fp8.e4m3 infinity);
  check_float "e4m3 -inf -> -448" (-448.0) (Fp8.round Fp8.e4m3 neg_infinity);
  check_float "e5m2 1e6 -> 57344" 57344.0 (Fp8.round Fp8.e5m2 1e6);
  Alcotest.(check bool) "e5m2 inf stays inf" true
    (Fp8.round Fp8.e5m2 infinity = infinity);
  Alcotest.(check bool) "e5m2 -inf stays -inf" true
    (Fp8.round Fp8.e5m2 neg_infinity = neg_infinity);
  Alcotest.(check bool) "nan stays nan (both)" true
    (Float.is_nan (Fp8.round Fp8.e4m3 Float.nan)
    && Float.is_nan (Fp8.round Fp8.e5m2 Float.nan))

let test_fp8_max_pm_one_ulp () =
  List.iter
    (fun (f, ulp) ->
      let m = Fp8.max_value f in
      check_float (f.Fp8.name ^ " max stays") m (Fp8.round f m);
      check_float (f.Fp8.name ^ " max - ulp stays") (m -. ulp)
        (Fp8.round f (m -. ulp));
      check_float (f.Fp8.name ^ " max + ulp saturates") m (Fp8.round f (m +. ulp)))
    [ (Fp8.e4m3, 32.0); (Fp8.e5m2, 8192.0) ]

let test_fp8_subnormals () =
  List.iter
    (fun f ->
      let s = Fp8.min_positive_subnormal f in
      check_float (f.Fp8.name ^ " min subnormal exact") s (Fp8.round f s);
      check_float (f.Fp8.name ^ " half ties to zero") 0.0 (Fp8.round f (s /. 2.0));
      check_float (f.Fp8.name ^ " 0.75x rounds up") s (Fp8.round f (0.75 *. s));
      check_float (f.Fp8.name ^ " negative") (-.s) (Fp8.round f (-.s)))
    [ Fp8.e4m3; Fp8.e5m2 ]

let test_fp8_all_codes_roundtrip () =
  (* all 256 encodings: decode then re-encode is the identity up to NaN
     canonicalization (E5M2 has a NaN row; E4M3 only S.1111.111) *)
  List.iter
    (fun f ->
      for code = 0 to 255 do
        let v = Fp8.to_float f code in
        let back = Fp8.of_float f v in
        if Float.is_nan v then
          Alcotest.(check bool)
            (Printf.sprintf "%s code %#x nan-canonical" f.Fp8.name code)
            true
            (Float.is_nan (Fp8.to_float f back))
        else
          Alcotest.(check int)
            (Printf.sprintf "%s code %#x" f.Fp8.name code)
            code back
      done)
    [ Fp8.e4m3; Fp8.e5m2 ]

let prop_fp8_idempotent fmt =
  QCheck.Test.make
    ~name:(Printf.sprintf "fp8 %s round is idempotent" fmt.Fp8.name)
    ~count:1000
    (QCheck.float_range (-60000.0) 60000.0)
    (fun x ->
      let r = Fp8.round fmt x in
      Fp8.round fmt r = r)

let prop_fp8_nearest fmt =
  QCheck.Test.make
    ~name:(Printf.sprintf "fp8 %s rounds to nearest" fmt.Fp8.name)
    ~count:1000
    (QCheck.float_range (-.Fp8.max_value fmt) (Fp8.max_value fmt))
    (fun x ->
      (* the Numfmt quantum is the proven half-ulp bound at |x|'s binade *)
      let q =
        Numfmt.quantum (Numfmt.Fp8 fmt) ~mag:(Float.max (Float.abs x) 1e-12)
      in
      Float.abs (Fp8.round fmt x -. x) <= q)

(* ------------------------------------------------------------------- Fp4 *)

let test_fp4_known_values () =
  check_float "max" 6.0 Fp4.max_value;
  check_float "min subnormal" 0.5 Fp4.min_positive_subnormal;
  check_float "1.0" 1.0 (Fp4.round 1.0);
  check_float "-1.5" (-1.5) (Fp4.round (-1.5));
  check_float "0.5" 0.5 (Fp4.round 0.5)

let test_fp4_saturation () =
  (* the encoding has no infinity and no NaN: overflow saturates to +/-6
     and NaN falls to zero *)
  check_float "7 -> 6" 6.0 (Fp4.round 7.0);
  check_float "inf -> 6" 6.0 (Fp4.round infinity);
  check_float "-inf -> -6" (-6.0) (Fp4.round neg_infinity);
  check_float "-5 -> -4" (-4.0) (Fp4.round (-5.0));
  check_float "nan -> 0" 0.0 (Fp4.round Float.nan)

let test_fp4_round_to_nearest_even () =
  (* positive magnitudes are 0 0.5 1 1.5 2 3 4 6; ties go to the even
     mantissa code *)
  check_float "0.25 ties to 0" 0.0 (Fp4.round 0.25);
  check_float "0.75 ties to 1" 1.0 (Fp4.round 0.75);
  check_float "1.25 ties to 1" 1.0 (Fp4.round 1.25);
  check_float "2.5 ties to 2" 2.0 (Fp4.round 2.5);
  check_float "3.5 ties to 4" 4.0 (Fp4.round 3.5);
  check_float "5 ties to 4" 4.0 (Fp4.round 5.0)

let test_fp4_all_codes_roundtrip () =
  (* all 16 encodings are finite and decode/re-encode is the identity,
     including the signed zero at 0x8 *)
  for code = 0 to 15 do
    let v = Fp4.to_float code in
    Alcotest.(check bool)
      (Printf.sprintf "code %#x finite" code)
      true
      (Float.is_finite v);
    Alcotest.(check int) (Printf.sprintf "code %#x" code) code (Fp4.of_float v)
  done;
  Alcotest.(check bool) "0x8 is negative zero" true
    (Fp4.to_float 0x8 = 0.0 && 1.0 /. Fp4.to_float 0x8 = neg_infinity)

let prop_fp4_idempotent =
  QCheck.Test.make ~name:"fp4 round is idempotent" ~count:1000
    (QCheck.float_range (-100.0) 100.0)
    (fun x ->
      let r = Fp4.round x in
      Fp4.round r = r)

let prop_fp4_nearest =
  QCheck.Test.make ~name:"fp4 rounds to nearest" ~count:1000
    (QCheck.float_range (-6.0) 6.0)
    (fun x ->
      let q = Numfmt.quantum Numfmt.Fp4 ~mag:(Float.max (Float.abs x) 1e-12) in
      Float.abs (Fp4.round x -. x) <= q)

(* ---------------------------------------------------------------- Numfmt *)

let test_numfmt_names_roundtrip () =
  List.iter
    (fun fmt ->
      match Numfmt.of_string (Numfmt.name fmt) with
      | Some fmt' ->
          Alcotest.(check string) (Numfmt.name fmt) (Numfmt.name fmt)
            (Numfmt.name fmt')
      | None -> Alcotest.failf "of_string failed on %s" (Numfmt.name fmt))
    Numfmt.catalogue;
  Alcotest.(check bool) "aliases" true
    (Numfmt.of_string "e4m3" = Some Numfmt.e4m3
    && Numfmt.of_string "q4.8" = Some (Numfmt.fixed ~total_bits:12 ~frac_bits:8)
    && Numfmt.of_string "nope" = None)

let test_numfmt_catalogue_cheapest_first () =
  let rec mono = function
    | a :: (b :: _ as tl) -> Numfmt.bits a <= Numfmt.bits b && mono tl
    | _ -> true
  in
  Alcotest.(check bool) "bits non-decreasing" true (mono Numfmt.catalogue)

let prop_numfmt_quantize_within_quantum =
  QCheck.Test.make ~name:"numfmt quantize error within quantum" ~count:500
    (QCheck.pair (QCheck.int_bound (List.length Numfmt.catalogue - 1))
       (QCheck.float_range (-2.0) 2.0))
    (fun (i, x) ->
      let fmt = List.nth Numfmt.catalogue i in
      let q = Numfmt.quantum fmt ~mag:(Float.max (Float.abs x) 1e-12) in
      Float.abs (Numfmt.quantize fmt x -. x) <= q)

let prop_numfmt_quantize_saturates =
  QCheck.Test.make ~name:"numfmt quantize saturates beyond max" ~count:200
    (QCheck.pair (QCheck.int_bound (List.length Numfmt.catalogue - 1))
       (QCheck.float_range 1.0 3.0))
    (fun (i, scale) ->
      let fmt = List.nth Numfmt.catalogue i in
      let v = Numfmt.quantize fmt (Numfmt.max_value fmt *. scale) in
      Float.is_finite v && Float.abs v <= Numfmt.max_value fmt)

let suite =
  [
    ( "fp16",
      [
        Alcotest.test_case "known encodings" `Quick test_fp16_known_encodings;
        Alcotest.test_case "decode known" `Quick test_fp16_decode_known;
        Alcotest.test_case "overflow to inf" `Quick test_fp16_overflow_to_inf;
        Alcotest.test_case "round to nearest even" `Quick test_fp16_round_to_nearest_even;
        qtest prop_fp16_roundtrip_idempotent;
        qtest prop_fp16_relative_error;
        qtest prop_fp16_monotone;
      ] );
    ( "fixed-point",
      [
        Alcotest.test_case "format validation" `Quick test_fx_fmt_validation;
        Alcotest.test_case "roundtrip" `Quick test_fx_roundtrip;
        Alcotest.test_case "saturation" `Quick test_fx_saturation;
        Alcotest.test_case "overflow saturates" `Quick test_fx_overflow_saturates;
        Alcotest.test_case "multiplication" `Quick test_fx_mul;
        Alcotest.test_case "multiplication corners" `Quick test_fx_mul_corners;
        Alcotest.test_case "fp2fx split" `Quick test_fx_split;
        qtest prop_fx_split_reconstructs;
        qtest prop_fx_roundtrip_error;
        qtest prop_fx_of_float_saturating_roundtrip;
      ] );
    ( "quant",
      [
        Alcotest.test_case "roundtrip bound" `Quick test_quant_roundtrip_bound;
        Alcotest.test_case "zero tensor" `Quick test_quant_zero_tensor;
        Alcotest.test_case "saturating cast" `Quick test_saturating_cast;
        Alcotest.test_case "requantize" `Quick test_requantize;
      ] );
    ( "poly",
      [
        qtest prop_horner_matches_naive;
        qtest prop_complete_square_identity;
        Alcotest.test_case "exp coefficients" `Quick test_exp_coeffs;
        Alcotest.test_case "integer quadratic" `Quick test_eval_quadratic_int;
      ] );
    ( "taylor",
      [
        Alcotest.test_case "exp accuracy" `Quick test_taylor_exp_accuracy;
        Alcotest.test_case "exp edges" `Quick test_taylor_exp_edges;
        Alcotest.test_case "log accuracy" `Quick test_taylor_log_accuracy;
        Alcotest.test_case "log edges" `Quick test_taylor_log_edges;
        Alcotest.test_case "trig accuracy" `Quick test_taylor_trig_accuracy;
        Alcotest.test_case "isqrt" `Quick test_taylor_isqrt;
        Alcotest.test_case "sigmoid/tanh" `Quick test_taylor_sigmoid_tanh;
        Alcotest.test_case "order monotonicity" `Quick test_taylor_order_monotone;
        qtest prop_taylor_sigmoid_bounded;
      ] );
    ( "int-ops",
      [
        Alcotest.test_case "exp accuracy" `Quick test_int_exp_accuracy;
        Alcotest.test_case "log accuracy" `Quick test_int_log_accuracy;
        Alcotest.test_case "trig accuracy" `Quick test_int_trig_accuracy;
        Alcotest.test_case "reciprocal" `Quick test_int_reciprocal;
        Alcotest.test_case "isqrt & sigmoid" `Quick test_int_isqrt_sigmoid;
      ] );
    ( "lut",
      [
        Alcotest.test_case "validation" `Quick test_lut_validation;
        Alcotest.test_case "clamps" `Quick test_lut_clamps;
        Alcotest.test_case "linear interpolation" `Quick test_lut_linear_exact;
        Alcotest.test_case "gauss cdf table" `Quick test_lut_gauss_cdf;
        Alcotest.test_case "gauss cdf exact" `Quick test_gauss_cdf_exact;
      ] );
    ( "nli",
      [
        Alcotest.test_case "gelu table golden" `Quick test_nli_gelu_golden;
        Alcotest.test_case "scalar evaluators" `Quick test_nli_scalar_evaluators;
        qtest prop_nli_equalized;
        qtest prop_nli_budget_monotone;
        qtest prop_nli_exact_at_breakpoints;
      ] );
    ( "ibert",
      [
        Alcotest.test_case "i-exp accuracy" `Quick test_ibert_i_exp_accuracy;
        Alcotest.test_case "i-sqrt" `Quick test_ibert_i_sqrt;
        qtest prop_ibert_i_sqrt_random;
        Alcotest.test_case "exp_v in range" `Quick test_ibert_exp_v_in_range;
        Alcotest.test_case "outliers saturate" `Quick test_ibert_saturates_outliers;
        Alcotest.test_case "gelu shape" `Quick test_ibert_gelu_shape;
      ] );
    ( "gemmlowp",
      [
        Alcotest.test_case "exp accuracy" `Quick test_gemmlowp_exp_accuracy;
        Alcotest.test_case "exp edges" `Quick test_gemmlowp_exp_edges;
        Alcotest.test_case "logistic" `Quick test_gemmlowp_logistic;
        Alcotest.test_case "tanh symmetry" `Quick test_gemmlowp_tanh_symmetry;
        Alcotest.test_case "exp_v max one" `Quick test_gemmlowp_exp_v_max_one;
      ] );
    ( "approx",
      [
        Alcotest.test_case "backend names unique" `Quick test_backend_names_unique;
        Alcotest.test_case "exact softmax primitive" `Quick test_exact_softmax_primitive;
        Alcotest.test_case "backend softmax agreement" `Quick test_backend_softmax_agreement;
        Alcotest.test_case "gelu forms agree" `Quick test_gelu_forms_agree;
        Alcotest.test_case "ours close to exact" `Quick test_ours_backends_close_to_exact;
      ] );
    ( "bfloat16",
      [
        Alcotest.test_case "known encodings" `Quick test_bf16_known_encodings;
        Alcotest.test_case "decode known" `Quick test_bf16_decode_known;
        Alcotest.test_case "round to nearest even" `Quick test_bf16_round_to_nearest_even;
        Alcotest.test_case "overflow and max ulp" `Quick test_bf16_overflow_and_max_ulp;
        Alcotest.test_case "subnormals" `Quick test_bf16_subnormals;
        qtest prop_bf16_roundtrip_idempotent;
        qtest prop_bf16_half_ulp;
        qtest prop_bf16_codes_roundtrip;
      ] );
    ( "fp8",
      [
        Alcotest.test_case "known values" `Quick test_fp8_known_values;
        Alcotest.test_case "saturation" `Quick test_fp8_saturation;
        Alcotest.test_case "max +/- one ulp" `Quick test_fp8_max_pm_one_ulp;
        Alcotest.test_case "subnormals" `Quick test_fp8_subnormals;
        Alcotest.test_case "all 256 codes roundtrip" `Quick test_fp8_all_codes_roundtrip;
        qtest (prop_fp8_idempotent Fp8.e4m3);
        qtest (prop_fp8_idempotent Fp8.e5m2);
        qtest (prop_fp8_nearest Fp8.e4m3);
        qtest (prop_fp8_nearest Fp8.e5m2);
      ] );
    ( "fp4",
      [
        Alcotest.test_case "known values" `Quick test_fp4_known_values;
        Alcotest.test_case "saturation" `Quick test_fp4_saturation;
        Alcotest.test_case "round to nearest even" `Quick
          test_fp4_round_to_nearest_even;
        Alcotest.test_case "all 16 codes roundtrip" `Quick
          test_fp4_all_codes_roundtrip;
        qtest prop_fp4_idempotent;
        qtest prop_fp4_nearest;
      ] );
    ( "numfmt",
      [
        Alcotest.test_case "names roundtrip" `Quick test_numfmt_names_roundtrip;
        Alcotest.test_case "catalogue cheapest first" `Quick
          test_numfmt_catalogue_cheapest_first;
        qtest prop_numfmt_quantize_within_quantum;
        qtest prop_numfmt_quantize_saturates;
      ] );
  ]
