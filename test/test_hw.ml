(* Tests for the configuration generator and the cycle-accurate executor:
   compiled kernels must execute bit-identically to the reference
   interpreter on the configured fabric, and corrupted schedules must be
   caught as timing violations. *)
open Picachu
module Kernels = Picachu_ir.Kernels
module Kernel = Picachu_ir.Kernel
module Interp = Picachu_ir.Interp
module Dfg = Picachu_dfg.Dfg
module Fuse = Picachu_dfg.Fuse
module Arch = Picachu_cgra.Arch
module Mapper = Picachu_cgra.Mapper
module Config = Picachu_cgra.Config
module Executor = Picachu_cgra.Executor

let n = 24

let env_for (k : Kernel.t) =
  let arrays =
    List.map
      (fun name ->
        ( name,
          match name with
          | "angle" -> Array.init n (fun i -> (float_of_int i /. 20.0) -. 0.5)
          | _ -> Array.init n (fun i -> ((float_of_int (i * 7) /. 11.0) -. 3.0) /. 2.0) ))
      k.Kernel.inputs
  in
  { Interp.arrays; scalars = [ ("n", float_of_int n) ] }

let assert_bit_identical (k : Kernel.t) (compiled : Compiler.compiled) =
  let env = env_for k in
  let hw = Hw_sim.run compiled env in
  let reference = Interp.run compiled.Compiler.kernel env in
  List.iter
    (fun (name, a) ->
      match List.assoc_opt name reference.Interp.out_arrays with
      | None -> Alcotest.failf "%s: stream %s missing from reference" k.Kernel.name name
      | Some b ->
          Array.iteri
            (fun i v ->
              if v <> b.(i) then
                Alcotest.failf "%s: %s[%d] = %.17g, interpreter says %.17g"
                  k.Kernel.name name i v b.(i))
            a)
    hw.Hw_sim.result.Interp.out_arrays;
  (* exported scalars agree too *)
  List.iter
    (fun (name, _) ->
      List.iter
        (fun loop ->
          List.iter
            (fun (export, _) ->
              if export = name then
                let a = List.assoc name hw.Hw_sim.result.Interp.out_scalars in
                let b = List.assoc name reference.Interp.out_scalars in
                if a <> b then Alcotest.failf "%s: scalar %s differs" k.Kernel.name name)
            loop.Kernel.exports)
        compiled.Compiler.kernel.Kernel.loops)
    (List.concat_map (fun l -> l.Kernel.exports) compiled.Compiler.kernel.Kernel.loops)

let test_executor_matches_interpreter_picachu () =
  let opts = Compiler.picachu_options () in
  List.iter
    (fun k -> assert_bit_identical k (Compiler.compile opts k))
    (Kernels.all Kernels.picachu)

let test_executor_matches_interpreter_baseline () =
  let opts = Compiler.baseline_options () in
  List.iter
    (fun k -> assert_bit_identical k (Compiler.compile opts k))
    (Kernels.all Kernels.Baseline)

let test_executor_matches_under_fixed_unroll () =
  let opts = Compiler.picachu_options () in
  List.iter
    (fun uf ->
      List.iter
        (fun name ->
          let k = Kernels.by_name Kernels.picachu name in
          assert_bit_identical k (Compiler.compile_with_unroll opts uf k))
        [ "softmax"; "layernorm"; "rope" ])
    [ 1; 2; 4 ]

let test_executor_rejects_vectorized () =
  let opts = Compiler.picachu_options ~vector:4 () in
  let compiled = Compiler.compile opts (Kernels.relu Kernels.picachu) in
  Alcotest.(check bool) "vector mode rejected" true
    (try
       ignore (Hw_sim.run compiled (env_for (Kernels.relu Kernels.picachu)));
       false
     with Invalid_argument _ -> true)

let test_timing_violation_detected () =
  (* corrupt a valid mapping: pull one non-trivial node earlier than its
     operands allow; the executor must notice *)
  let k = Kernels.layernorm Kernels.picachu in
  let loop = List.hd k.Kernel.loops in
  let arch = Arch.picachu () in
  let g = Fuse.fuse (Dfg.of_loop loop) in
  let m = Mapper.map_dfg arch g in
  (* find a node with a forward predecessor and pull it to cycle 0 *)
  let victim =
    let found = ref None in
    List.iter
      (fun (e : Dfg.edge) ->
        if !found = None && e.Dfg.distance = 0
           && m.Mapper.schedule.(e.Dfg.dst).Mapper.time > 0
        then found := Some e.Dfg.dst)
      g.Dfg.edges;
    match !found with Some v -> v | None -> Alcotest.fail "no candidate node"
  in
  let schedule = Array.copy m.Mapper.schedule in
  schedule.(victim) <- { (schedule.(victim)) with Mapper.time = 0 };
  let corrupted = { m with Mapper.schedule = schedule } in
  let arrays = [ ("x", Array.init n (fun i -> float_of_int i)) ] in
  Alcotest.(check bool) "violation raised" true
    (try
       ignore
         (Executor.run_loop arch loop g corrupted ~arrays
            ~scalars:[ ("n", float_of_int n) ]);
       false
     with Executor.Timing_violation _ -> true)

let test_config_words_bounds () =
  let opts = Compiler.picachu_options () in
  List.iter
    (fun (k : Kernel.t) ->
      let compiled = Compiler.compile opts k in
      List.iter
        (fun (cl : Compiler.compiled_loop) ->
          let cfg =
            Config.generate compiled.Compiler.arch cl.Compiler.source cl.Compiler.dfg
              cl.Compiler.mapping
          in
          let words = Config.words cfg in
          Alcotest.(check int) "one word per node" (Dfg.node_count cl.Compiler.dfg) words;
          Alcotest.(check bool) "fits the config memory" true
            (words <= 16 * cfg.Config.ii))
        compiled.Compiler.loops)
    (Kernels.all Kernels.picachu)

let test_config_routed_operands_positive () =
  let opts = Compiler.picachu_options () in
  let compiled = Compiler.compile opts (Kernels.softmax Kernels.picachu) in
  let cl = List.nth compiled.Compiler.loops 1 in
  let cfg =
    Config.generate compiled.Compiler.arch cl.Compiler.source cl.Compiler.dfg
      cl.Compiler.mapping
  in
  Alcotest.(check bool) "multi-tile kernel routes operands" true
    (Config.routed_operands cfg > 0)

let test_config_sources_classified () =
  (* the exp loop reads an immediate (taylor coefficient), a scalar register
     (the running max), and routed values *)
  let opts = Compiler.picachu_options () in
  let compiled = Compiler.compile_with_unroll opts 1 (Kernels.softmax Kernels.picachu) in
  let cl = List.nth compiled.Compiler.loops 1 in
  let cfg =
    Config.generate compiled.Compiler.arch cl.Compiler.source cl.Compiler.dfg
      cl.Compiler.mapping
  in
  let seen_imm = ref false and seen_scalar = ref false and seen_routed = ref false in
  Array.iter
    (Array.iter (function
      | None -> ()
      | Some (slot : Config.slot) ->
          List.iter
            (fun (st : Config.step) ->
              List.iter
                (function
                  | Config.Immediate _ -> seen_imm := true
                  | Config.Scalar_reg _ -> seen_scalar := true
                  | Config.Routed _ -> seen_routed := true
                  | Config.Fused_internal -> ())
                st.Config.sources)
            slot.Config.steps))
    cfg.Config.tiles;
  Alcotest.(check bool) "immediate seen" true !seen_imm;
  Alcotest.(check bool) "scalar register seen" true !seen_scalar;
  Alcotest.(check bool) "routed operand seen" true !seen_routed

let test_hw_cycles_close_to_model () =
  (* the executor's measured completion should track the analytical
     loop-cycles model *)
  let opts = Compiler.picachu_options () in
  let k = Kernels.rmsnorm Kernels.picachu in
  let compiled = Compiler.compile opts k in
  let hw = Hw_sim.run compiled (env_for k) in
  let model = Compiler.pass_cycles compiled ~n in
  let ratio = float_of_int hw.Hw_sim.total_cycles /. float_of_int model in
  Alcotest.(check bool) "within 2x of analytical model" true (ratio > 0.5 && ratio < 2.0)

let suite =
  [
    ( "hw-execution",
      [
        Alcotest.test_case "bit-identical (picachu)" `Quick
          test_executor_matches_interpreter_picachu;
        Alcotest.test_case "bit-identical (baseline)" `Quick
          test_executor_matches_interpreter_baseline;
        Alcotest.test_case "bit-identical (fixed UF)" `Quick
          test_executor_matches_under_fixed_unroll;
        Alcotest.test_case "vectorized rejected" `Quick test_executor_rejects_vectorized;
        Alcotest.test_case "timing violation detected" `Quick
          test_timing_violation_detected;
        Alcotest.test_case "hw cycles track model" `Quick test_hw_cycles_close_to_model;
      ] );
    ( "config",
      [
        Alcotest.test_case "word bounds" `Quick test_config_words_bounds;
        Alcotest.test_case "routed operands" `Quick test_config_routed_operands_positive;
        Alcotest.test_case "source classification" `Quick test_config_sources_classified;
      ] );
  ]
