(* Tests for the affine-arithmetic precision analyzer (lib/verify/precision)
   and proven-bound format selection.

   Three angles:
   - the affine domain itself beats intervals where it should: [x - x] is
     exactly zero, the square rule proves [x*x >= 0], and a pinned roster
     kernel (rope at Q4.8) fits a format the interval analysis cannot
     justify.
   - format selection: the ladder picks a sub-Q16 format for kernels the
     analysis proves tight (relu -> fp8_e4m3 at bound 0, gelu -> q4.8) and
     falls back honestly where nothing proves (softmax).
   - soundness, adversarially: for every roster kernel x every catalogue
     format with a finite claimed bound, bit-accurate execution (the
     interpreter under the [Precision.rounder] hook) on random in-range
     inputs never exceeds the bound.  The harness runs at domain-pool
     sizes 1/2/4 — results must not depend on evaluation parallelism. *)

open Picachu_ir
module Numfmt = Picachu_numerics.Numfmt
module Fx = Picachu_numerics.Fixed_point
module Affine = Picachu_verify.Affine
module Precision = Picachu_verify.Precision
module Range = Picachu_verify.Range
module Finding = Picachu_verify.Finding
module Parallel = Picachu_parallel.Parallel
open Picachu

let qtest = QCheck_alcotest.to_alcotest
let roster = Kernels.all Kernels.picachu @ Kernels.extras Kernels.picachu

(* ---------------------------------------------------------- affine domain *)

let test_affine_cancellation () =
  let ctx = Affine.ctx () in
  let x = Affine.of_interval ctx (-2.0) 2.0 in
  let lo, hi = Affine.interval (Affine.sub x x) in
  Alcotest.(check (pair (float 0.0) (float 0.0))) "x - x is exactly 0" (0.0, 0.0)
    (lo, hi);
  (* an interval domain would answer [-4, 4] here *)
  let y = Affine.of_interval ctx (-2.0) 2.0 in
  let lo', hi' = Affine.interval (Affine.sub x y) in
  Alcotest.(check (pair (float 1e-12) (float 1e-12)))
    "uncorrelated difference stays wide" (-4.0, 4.0) (lo', hi')

let test_affine_square_nonnegative () =
  (* the pinned affine-beats-intervals case: interval arithmetic gives
     [-2,2] * [-2,2] = [-4,4]; the square rule proves x*x in [0,4] *)
  let ctx = Affine.ctx () in
  let x = Affine.of_interval ctx (-2.0) 2.0 in
  let lo, hi = Affine.interval (Affine.mul x x) in
  Alcotest.(check bool) "x*x lower bound >= 0" true (lo >= 0.0);
  Alcotest.(check bool) "x*x upper bound <= 4" true (hi <= 4.0 +. 1e-12);
  (* sanity on the interval side: plain Range multiplication stays signed *)
  let r = Range.binop_i Op.Mul (Range.make (-2.0) 2.0) (Range.make (-2.0) 2.0) in
  Alcotest.(check bool) "interval mul cannot prove it" true (r.Range.lo < 0.0)

let prop_affine_mul_sound =
  QCheck.Test.make ~name:"affine mul encloses concrete product" ~count:500
    QCheck.(
      quad (float_range (-8.0) 8.0) (float_range 0.0 4.0)
        (float_range (-8.0) 8.0) (float_range 0.0 4.0))
    (fun (ca, wa, cb, wb) ->
      let ctx = Affine.ctx () in
      let a = Affine.of_interval ctx (ca -. wa) (ca +. wa) in
      let b = Affine.of_interval ctx (cb -. wb) (cb +. wb) in
      let lo, hi = Affine.interval (Affine.mul a b) in
      (* endpoints and center of each operand range: products must fall in *)
      List.for_all
        (fun x ->
          List.for_all
            (fun y -> x *. y >= lo -. 1e-9 && x *. y <= hi +. 1e-9)
            [ cb -. wb; cb; cb +. wb ])
        [ ca -. wa; ca; ca +. wa ])

(* ------------------------------------------- affine beats intervals: rope *)

let q4_8 = Fx.fmt ~total_bits:12 ~frac_bits:8

let test_rope_fits_narrower_than_intervals () =
  (* rope in Q4.8: cos/sin correlations make the rotated outputs provably
     fit, but the interval analysis (which multiplies [-2,2]-ish ranges
     outward) flags an overflow.  This is the acceptance separation case. *)
  let k = List.find (fun k -> k.Kernel.name = "rope") roster in
  let range_cfg = { Range.default_config with Range.fmt = q4_8 } in
  Alcotest.(check bool) "interval analysis flags q4.8" false
    (Range.safe ~config:range_cfg k);
  let fmt = Numfmt.fixed ~total_bits:12 ~frac_bits:8 in
  let r = Precision.analyze ~fmt k in
  Alcotest.(check bool) "precision proves q4.8 (no overflow finding)" false
    (Finding.has_code "prec-overflow" r.Precision.findings
    || Finding.has_code "prec-unbounded" r.Precision.findings);
  Alcotest.(check bool) "finite proven bound" true
    (Float.is_finite r.Precision.bound)

(* -------------------------------------------------------- format selection *)

let select name = Compiler.select_format ~budget:1e-2
    (List.find (fun k -> k.Kernel.name = name) roster)

let test_select_relu_fp4 () =
  (* relu is exact in every format on in-range inputs: max(x, 0) introduces
     no rounding on an already-quantized value — the 4-bit E2M1 proves
     bound 0 and wins the ladder *)
  let c = select "relu" in
  Alcotest.(check string) "chosen" "fp4_e2m1" (Numfmt.name c.Precision.fmt);
  Alcotest.(check int) "4 bits" 4 (Numfmt.bits c.Precision.fmt);
  Alcotest.(check (float 0.0)) "proven bound 0" 0.0 c.Precision.bound;
  Alcotest.(check bool) "no fallback" false c.Precision.fallback

let test_select_gelu_sub_q16 () =
  (* gelu (LUT form) proves ~6e-3 in Q4.8 — a 12-bit format within the 1e-2
     budget, narrower than the INT16 lane's Q8.8/Q16.16 *)
  let c = select "gelu" in
  Alcotest.(check string) "chosen" "q4.8" (Numfmt.name c.Precision.fmt);
  Alcotest.(check bool) "sub-16-bit" true (Numfmt.bits c.Precision.fmt < 16);
  Alcotest.(check bool) "bound within budget" true
    (c.Precision.bound <= 1e-2);
  Alcotest.(check bool) "no fallback" false c.Precision.fallback

let test_select_softmax_fallback () =
  (* softmax divides by a reduction the analysis cannot bound away from its
     accumulated error — no candidate proves, selection falls back to the
     widest and says so *)
  let c = select "softmax" in
  Alcotest.(check bool) "fallback" true c.Precision.fallback;
  Alcotest.(check bool) "no finite proof" false (Float.is_finite c.Precision.bound);
  Alcotest.(check string) "widest candidate" "fp32" (Numfmt.name c.Precision.fmt);
  Alcotest.(check int) "every candidate tried"
    (List.length Numfmt.catalogue)
    (List.length c.Precision.tried)

let test_select_budget_monotone () =
  (* loosening the budget can only move the choice down-ladder (cheaper) *)
  let k = List.find (fun k -> k.Kernel.name = "gelu") roster in
  let tight = Compiler.select_format ~budget:1e-4 k in
  let loose = Compiler.select_format ~budget:0.5 k in
  Alcotest.(check bool) "looser budget, narrower-or-equal format" true
    (Numfmt.bits loose.Precision.fmt <= Numfmt.bits tight.Precision.fmt)

(* ------------------------------------------------------ execution rounding *)

let run_arrays k fmt seed =
  let rng = Random.State.make [| seed |] in
  List.map
    (fun s ->
      ( s,
        Array.init 48 (fun _ ->
            Numfmt.quantize fmt (Random.State.float rng 4.0 -. 2.0)) ))
    k.Kernel.inputs

let test_rounder_quantizes_outputs () =
  (* under the rounder hook every stored value is representable: quantizing
     an output again must be the identity *)
  let k = List.find (fun k -> k.Kernel.name = "gelu") roster in
  let fmt = Numfmt.e4m3 in
  let env = { Interp.arrays = run_arrays k fmt 7; scalars = [ ("n", 48.0) ] } in
  let r = Interp.run ~round:(Precision.rounder fmt) k env in
  List.iter
    (fun (s, a) ->
      Array.iter
        (fun v ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s value representable" s)
            (Numfmt.quantize fmt v) v)
        a)
    r.Interp.out_arrays

(* ------------------------------------------------------ soundness harness *)

(* Every (kernel, format) pair with a finite claimed bound, analyzed once. *)
let claims =
  lazy
    (List.concat_map
       (fun (k : Kernel.t) ->
         List.filter_map
           (fun fmt ->
             let r = Precision.analyze ~fmt k in
             if Float.is_finite r.Precision.bound then
               Some (k, fmt, r.Precision.bound)
             else None)
           Numfmt.catalogue)
       roster)

let concrete_error k fmt seed =
  let arrays = run_arrays k fmt seed in
  let env = { Interp.arrays; scalars = [ ("n", 48.0) ] } in
  let reference = Interp.run k env in
  let finite = Interp.run ~round:(Precision.rounder fmt) k env in
  List.fold_left
    (fun acc (name, a) ->
      let b = List.assoc name finite.Interp.out_arrays in
      let worst = ref 0.0 in
      Array.iteri
        (fun i v -> worst := Float.max !worst (Float.abs (v -. b.(i))))
        a;
      Float.max acc !worst)
    0.0 reference.Interp.out_arrays

let prop_soundness =
  (* 4 trials x 48 elements per qcheck case, ~200 cases from qcheck's
     generator: every claim sees well over 100 random in-range inputs *)
  QCheck.Test.make ~name:"proven bound dominates bit-accurate error" ~count:20
    (QCheck.int_bound 0x3FFFFF) (fun seed ->
      List.for_all
        (fun ((k : Kernel.t), fmt, bound) ->
          let ok = ref true in
          for t = 0 to 3 do
            let e = concrete_error k fmt ((seed * 4) + t) in
            if e > bound then begin
              QCheck.Test.fail_reportf
                "%s under %s: concrete error %.9g exceeds proven bound %.9g"
                k.Kernel.name (Numfmt.name fmt) e bound
            end;
            ok := !ok && e <= bound
          done;
          !ok)
        (Lazy.force claims))

let soundness_at_pool size =
  Alcotest.test_case
    (Printf.sprintf "soundness sweep (pool %d)" size)
    `Slow
    (fun () -> Parallel.with_pool ~size (fun () -> QCheck.Test.check_exn prop_soundness))

let test_claims_cover_roster () =
  (* the finite-bound set is not vacuous: the sweep really exercises
     several kernels and every format in the catalogue *)
  let cs = Lazy.force claims in
  let kernels =
    List.sort_uniq compare (List.map (fun ((k : Kernel.t), _, _) -> k.Kernel.name) cs)
  in
  let formats =
    List.sort_uniq compare (List.map (fun (_, fmt, _) -> Numfmt.name fmt) cs)
  in
  Alcotest.(check bool) "several kernels prove bounds" true
    (List.length kernels >= 4);
  Alcotest.(check int) "every format proves on some kernel"
    (List.length Numfmt.catalogue) (List.length formats)

(* -------------------------------------------------------------- findings *)

let test_findings_deterministic_across_pools () =
  (* the analysis result (and its findings order, via Finding.sort in the
     printers) must not depend on the domain-pool size *)
  let digest size =
    Parallel.with_pool ~size (fun () ->
        String.concat "\n"
          (List.concat_map
             (fun (k : Kernel.t) ->
               let c = Compiler.select_format ~budget:1e-2 k in
               let r = Precision.analyze ~fmt:c.Precision.fmt k in
               Printf.sprintf "%s %s %.17g" k.Kernel.name
                 (Numfmt.name c.Precision.fmt) c.Precision.bound
               :: List.map Finding.to_string (Finding.sort r.Precision.findings))
             roster))
  in
  let reference = digest 1 in
  List.iter
    (fun size ->
      Alcotest.(check string)
        (Printf.sprintf "pool %d matches pool 1" size)
        reference (digest size))
    [ 2; 4 ]

let suite =
  [
    ( "precision",
      [
        Alcotest.test_case "affine cancellation" `Quick test_affine_cancellation;
        Alcotest.test_case "affine square rule beats intervals" `Quick
          test_affine_square_nonnegative;
        qtest prop_affine_mul_sound;
        Alcotest.test_case "rope fits q4.8 where intervals cannot" `Quick
          test_rope_fits_narrower_than_intervals;
        Alcotest.test_case "relu selects fp4_e2m1 at bound 0" `Quick
          test_select_relu_fp4;
        Alcotest.test_case "gelu selects sub-q16 format" `Quick
          test_select_gelu_sub_q16;
        Alcotest.test_case "softmax falls back honestly" `Quick
          test_select_softmax_fallback;
        Alcotest.test_case "budget monotone" `Quick test_select_budget_monotone;
        Alcotest.test_case "rounder quantizes outputs" `Quick
          test_rounder_quantizes_outputs;
        Alcotest.test_case "claims cover roster" `Quick test_claims_cover_roster;
        soundness_at_pool 1;
        soundness_at_pool 2;
        soundness_at_pool 4;
        Alcotest.test_case "deterministic across pools" `Quick
          test_findings_deterministic_across_pools;
      ] );
  ]
