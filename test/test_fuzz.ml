(* Differential fuzzing of the whole compilation stack.

   Random element-wise kernels are generated through the public Builder API
   (random expression DAGs over loads, constants, scalar inputs and the
   operator macro-expansions, with optional reduction accumulators), then:

   - the kernel must validate,
   - unrolling by 2/4 must preserve interpreter semantics exactly,
   - fusion + modulo scheduling must yield a mapping that passes the
     structural validity checker, and
   - the cycle-accurate executor must reproduce the interpreter bit-for-bit
     with no timing violation, at every unroll factor.

   This hunts exactly the class of bugs unit tests missed historically:
   mis-patched phi back edges after unrolling, fusion groups that steal an
   observed value, schedules that violate a routed dependence. *)

open Picachu_ir
module Dfg = Picachu_dfg.Dfg
module Fuse = Picachu_dfg.Fuse
module Arch = Picachu_cgra.Arch
module Mapper = Picachu_cgra.Mapper
module Executor = Picachu_cgra.Executor
module Rng = Picachu_tensor.Rng
open Picachu

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------ random kernel generator *)

(* Build a random element-wise kernel with [n_roots] stored outputs and an
   optional reduction accumulator, from a seed. All operations keep values
   in a tame numeric range so float comparisons stay exact across
   evaluation orders (the executor evaluates in the same order as the
   interpreter, so even without that, equality must hold bit-for-bit). *)
let random_kernel seed =
  let rng = Rng.create seed in
  let b = Builder.create ~use_fp2fx:(Rng.bool rng) () in
  let x = Builder.load b "x" in
  let y = Builder.load b "y" in
  let pool = ref [ x; y ] in
  let pick () = List.nth !pool (Rng.int rng (List.length !pool)) in
  let n_ops = 3 + Rng.int rng 10 in
  for _ = 1 to n_ops do
    let v =
      match Rng.int rng 9 with
      | 0 -> Builder.add b (pick ()) (pick ())
      | 1 -> Builder.sub b (pick ()) (pick ())
      | 2 -> Builder.mul b (pick ()) (pick ())
      | 3 -> Builder.fmax b (pick ()) (pick ())
      | 4 -> Builder.fmin b (pick ()) (pick ())
      | 5 ->
          let c = Builder.cmp b Op.Gt (pick ()) (Builder.const b 0.25) in
          Builder.select b c (pick ()) (pick ())
      | 6 -> Builder.mul b (pick ()) (Builder.const b (Rng.uniform rng ~lo:(-1.0) ~hi:1.0))
      | 7 -> Builder.un b Op.Neg (pick ())
      | _ -> Builder.un b Op.Abs (pick ())
    in
    pool := v :: !pool
  done;
  (* avoid value explosions before the transcendental *)
  let squash v = Builder.fmax b (Builder.fmin b v (Builder.const b 4.0)) (Builder.const b (-4.0)) in
  let pool_final =
    if Rng.bool rng then Builder.exp_taylor b ~order:(2 + Rng.int rng 5) (squash (pick ()))
    else pick ()
  in
  Builder.store b "out" pool_final;
  let exports, reduction =
    if Rng.bool rng then begin
      let _, next = Builder.reduce_simple b Op.Add ~init:(Builder.const b 0.0) (squash (pick ())) in
      ([ ("acc", next) ], true)
    end
    else ([], false)
  in
  let loop = Builder.finish b ~label:"fuzz.1" ~reduction ~exports ~trip_input:"n" () in
  {
    Kernel.name = Printf.sprintf "fuzz-%d" seed;
    klass = (if reduction then Kernel.RE else Kernel.EO);
    loops = [ loop ];
    inputs = [ "x"; "y" ];
    outputs = [ "out" ];
    scalar_inputs = [ "n" ];
  }

let fuzz_env seed n =
  let rng = Rng.create (seed * 7919) in
  {
    Interp.arrays =
      [
        ("x", Array.init n (fun _ -> Rng.uniform rng ~lo:(-2.0) ~hi:2.0));
        ("y", Array.init n (fun _ -> Rng.uniform rng ~lo:(-2.0) ~hi:2.0));
      ];
    scalars = [ ("n", float_of_int n) ];
  }

let outputs_sorted (r : Interp.result) = List.sort compare r.Interp.out_arrays

let identical a b =
  List.length a = List.length b
  && List.for_all2
       (fun (na, xs) (nb, ys) -> na = nb && Array.for_all2 (fun u v -> u = v || (Float.is_nan u && Float.is_nan v)) xs ys)
       a b

(* ----------------------------------------------------------------- props *)

let prop_random_kernels_validate =
  QCheck.Test.make ~name:"random kernels validate" ~count:120 QCheck.small_nat
    (fun seed ->
      match Kernel.validate (random_kernel seed) with Ok () -> true | Error _ -> false)

let prop_unroll_preserves_semantics =
  QCheck.Test.make ~name:"unroll preserves semantics on random kernels" ~count:80
    (QCheck.pair QCheck.small_nat (QCheck.oneofl [ 2; 4 ]))
    (fun (seed, uf) ->
      let k = random_kernel seed in
      let n = 16 in
      let env = fuzz_env seed n in
      let base = outputs_sorted (Interp.run k env) in
      let unrolled = Transform.unroll_kernel uf k in
      (match Kernel.validate unrolled with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "invalid after unroll: %s" e);
      identical base (outputs_sorted (Interp.run unrolled env)))

(* structural mapping validity on random fused kernels (mirrors the checker
   in test_cgra but over a much wider graph population) *)
let mapping_valid arch (g : Dfg.t) (m : Mapper.mapping) =
  let lat u = Arch.latency arch g.Dfg.nodes.(u).Dfg.op in
  let ok = ref true in
  let slots = Hashtbl.create 64 in
  Array.iteri
    (fun u (p : Mapper.placement) ->
      if p.Mapper.time < 0 then ok := false;
      if not (Arch.supports arch ~tile:p.Mapper.tile g.Dfg.nodes.(u).Dfg.op) then
        ok := false;
      let key = (p.Mapper.tile, p.Mapper.time mod m.Mapper.ii) in
      if Hashtbl.mem slots key then ok := false else Hashtbl.add slots key u)
    m.Mapper.schedule;
  List.iter
    (fun (e : Dfg.edge) ->
      let ps = m.Mapper.schedule.(e.Dfg.src) and pd = m.Mapper.schedule.(e.Dfg.dst) in
      if e.Dfg.src <> e.Dfg.dst then begin
        if
          pd.Mapper.time
          < ps.Mapper.time + lat e.Dfg.src
            + Arch.distance arch ps.Mapper.tile pd.Mapper.tile
            - (e.Dfg.distance * m.Mapper.ii)
        then ok := false
      end
      else if lat e.Dfg.src > e.Dfg.distance * m.Mapper.ii then ok := false)
    g.Dfg.edges;
  !ok

let prop_mapper_valid_on_random_kernels =
  QCheck.Test.make ~name:"mapper validity on random fused kernels" ~count:60
    (QCheck.pair QCheck.small_nat QCheck.bool)
    (fun (seed, picachu_arch) ->
      let k = random_kernel seed in
      let arch = if picachu_arch then Arch.picachu () else Arch.universal () in
      List.for_all
        (fun loop ->
          let g = Fuse.fuse (Dfg.of_loop loop) in
          mapping_valid arch g (Mapper.map_dfg arch g))
        k.Kernel.loops)

let prop_executor_bit_identical =
  QCheck.Test.make ~name:"cycle-accurate executor == interpreter (random kernels)"
    ~count:60
    (QCheck.pair QCheck.small_nat (QCheck.oneofl [ 1; 2 ]))
    (fun (seed, uf) ->
      let k = random_kernel seed in
      let opts = Compiler.picachu_options () in
      let compiled = Compiler.compile_with_unroll opts uf k in
      let env = fuzz_env seed 16 in
      let hw = Hw_sim.run compiled env in
      let reference = Interp.run compiled.Compiler.kernel env in
      identical
        (outputs_sorted hw.Hw_sim.result)
        (outputs_sorted reference))

(* The independent verifier as oracle: whatever the generator produces must
   lint clean of Errors, and whatever the compiler emits for it must pass
   the DFG invariant checker and the schedule translation validator.  This
   replaces the hand-rolled [mapping_valid] predicate above with the full
   production checker (both stay: one mirrors the mapper's own invariants,
   the other is the shipping oracle). *)
let prop_verifier_oracle =
  QCheck.Test.make ~name:"verifier oracle on random kernels" ~count:60
    QCheck.small_nat (fun seed ->
      let module Verify = Picachu_verify.Verify in
      let module Finding = Picachu_verify.Finding in
      let k = random_kernel seed in
      (match Finding.errors (Verify.lint_kernel k) with
      | [] -> ()
      | f :: _ -> QCheck.Test.fail_reportf "lint: %s" (Finding.to_string f));
      let opts = Compiler.picachu_options () in
      match Compiler.compile_result opts k with
      | Error e -> QCheck.Test.fail_reportf "compile: %s" (Picachu_error.to_string e)
      | Ok c ->
          List.iter
            (fun (cl : Compiler.compiled_loop) ->
              match
                Finding.errors
                  (Verify.check_loop ~arch:opts.Compiler.arch
                     ~source:cl.Compiler.source cl.Compiler.dfg cl.Compiler.mapping)
              with
              | [] -> ()
              | f :: _ -> QCheck.Test.fail_reportf "verify: %s" (Finding.to_string f))
            c.Compiler.loops;
          (* the range analysis must terminate and never crash, whatever the
             generator dreamt up *)
          ignore (Picachu_verify.Range.analyze k : Finding.t list);
          true)

let prop_fusion_structural_on_random =
  QCheck.Test.make ~name:"fusion preserves member accounting (random kernels)"
    ~count:100 QCheck.small_nat (fun seed ->
      let k = random_kernel seed in
      List.for_all
        (fun loop ->
          let g = Dfg.of_loop loop in
          let f = Fuse.fuse g in
          let members =
            Array.fold_left (fun acc (n : Dfg.node) -> acc + List.length n.Dfg.members) 0
              f.Dfg.nodes
          in
          members = Dfg.node_count g
          && Picachu_dfg.Analysis.rec_mii f <= Picachu_dfg.Analysis.rec_mii g)
        k.Kernel.loops)

let suite =
  [
    ( "fuzz",
      [
        qtest prop_random_kernels_validate;
        qtest prop_unroll_preserves_semantics;
        qtest prop_mapper_valid_on_random_kernels;
        qtest prop_verifier_oracle;
        qtest prop_executor_bit_identical;
        qtest prop_fusion_structural_on_random;
      ] );
  ]
