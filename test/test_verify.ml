(* Tests of the independent static verifier (lib/verify).

   Three angles:
   - positive: the whole kernel library (both variants, extras included)
     lints clean, every mapping the compiler emits validates, and the same
     holds on every architecture of the default Explore sweep grid — pinned
     as a zero-findings golden.
   - negative: programmatic mutants of known-good mappings / DFGs / loops
     must each trip exactly the injected finding class (slot collisions,
     capability violations, timing violations, dishonest statistics, broken
     SSA, ...).  The verifier earns its keep only if it rejects what the
     mapper would never emit.
   - range analysis: interval transfer functions, safe/flagged verdicts on
     the library, and one-directional consistency with the interpreter — a
     kernel the analysis calls safe must keep its outputs representable on
     the standard test vectors. *)

open Picachu_ir
module Dfg = Picachu_dfg.Dfg
module Arch = Picachu_cgra.Arch
module Mapper = Picachu_cgra.Mapper
module Verify = Picachu_verify.Verify
module Range = Picachu_verify.Range
module Finding = Picachu_verify.Finding
module Fx = Picachu_numerics.Fixed_point
module Parallel = Picachu_parallel.Parallel
module Rng = Picachu_tensor.Rng
open Picachu

let library variant = Kernels.all variant @ Kernels.extras variant

let options_of = function
  | Kernels.Picachu _ -> Compiler.picachu_options ()
  | Kernels.Baseline -> Compiler.baseline_options ()

let variant_name = Kernels.variant_name

(* All structural (non-range) findings for one compiled kernel. *)
let structural_findings (opts : Compiler.options) (c : Compiler.compiled) =
  Verify.lint_kernel c.Compiler.kernel
  @ List.concat_map
      (fun (cl : Compiler.compiled_loop) ->
        Verify.check_loop ~arch:opts.Compiler.arch ~source:cl.Compiler.source
          cl.Compiler.dfg cl.Compiler.mapping)
      c.Compiler.loops

let fail_findings ctx = function
  | [] -> ()
  | fs ->
      Alcotest.failf "%s: %s" ctx
        (String.concat "; " (List.map Finding.to_string fs))

(* ------------------------------------------------- positive: clean library *)

(* Golden: zero structural findings of ANY severity across the library.
   The range pass legitimately warns (reduction growth is real); the
   structural passes must be silent — a new warning here is a regression
   either in the compiler or in the verifier's model of it. *)
let test_library_clean () =
  let total = ref 0 in
  List.iter
    (fun variant ->
      let opts = options_of variant in
      List.iter
        (fun (k : Kernel.t) ->
          let c = Compiler.compile opts k in
          let fs = structural_findings opts c in
          total := !total + List.length fs;
          fail_findings
            (Printf.sprintf "%s (%s)" k.Kernel.name (variant_name variant))
            fs)
        (library variant))
    [ Kernels.picachu; Kernels.Baseline ];
  Alcotest.(check int) "structural findings across library" 0 !total

(* The range pass may warn but must never produce Error-severity findings
   on the library (it is advisory), and must not crash on any kernel. *)
let test_library_range_no_errors () =
  List.iter
    (fun variant ->
      List.iter
        (fun (k : Kernel.t) ->
          fail_findings k.Kernel.name (Finding.errors (Range.analyze k)))
        (library variant))
    [ Kernels.picachu; Kernels.Baseline ]

(* Every mapping produced across the default Explore sweep grid validates:
   the acceptance bar is 100% of Mapper.map_dfg results, every sweep
   architecture, whole roster. *)
let test_sweep_architectures_validate () =
  let sizes = [ (3, 3); (4, 4); (4, 8); (5, 5) ] in
  let cot_shares = [ 1.0 /. 3.0; 0.5; 2.0 /. 3.0; 5.0 /. 6.0 ] in
  let grid =
    Array.of_list
      (List.concat_map
         (fun (rows, cols) -> List.map (fun cot -> (rows, cols, cot)) cot_shares)
         sizes)
  in
  let roster =
    List.filter
      (fun (k : Kernel.t) -> k.Kernel.name <> "softmax_online")
      (Kernels.all Kernels.picachu)
  in
  let results =
    Parallel.parallel_map_array
      (fun (rows, cols, cot_share) ->
        let arch = Arch.hetero_mix ~rows ~cols ~cot_share in
        let opts = Compiler.picachu_options ~arch () in
        List.fold_left
          (fun (mapped, bad) (k : Kernel.t) ->
            match Compiler.compile_result opts k with
            | Error _ -> (mapped, bad) (* unmappable points are Explore's concern *)
            | Ok c ->
                let errs = Finding.errors (structural_findings opts c) in
                if errs = [] then (mapped + 1, bad)
                else
                  ( mapped,
                    Printf.sprintf "%s on %s: %s" k.Kernel.name arch.Arch.name
                      (Finding.to_string (List.hd errs))
                    :: bad ))
          (0, []) roster)
      grid
  in
  let mapped = Array.fold_left (fun acc (m, _) -> acc + m) 0 results in
  let bad = Array.fold_left (fun acc (_, b) -> b @ acc) [] results in
  (match bad with [] -> () | b -> Alcotest.failf "%s" (String.concat "; " b));
  if mapped < Array.length grid then
    Alcotest.failf "only %d mappings validated across %d design points" mapped
      (Array.length grid)

(* The PICACHU_VERIFY knob must be pure observation: identical mappings with
   the gate off and on. *)
let test_knob_preserves_mappings () =
  let fingerprint (c : Compiler.compiled) =
    List.map
      (fun (cl : Compiler.compiled_loop) ->
        let m = cl.Compiler.mapping in
        (m.Mapper.ii, m.Mapper.makespan, m.Mapper.routed_hops,
         Array.to_list m.Mapper.schedule))
      c.Compiler.loops
  in
  let compile_with value =
    Unix.putenv "PICACHU_VERIFY" value;
    Fun.protect
      ~finally:(fun () -> Unix.putenv "PICACHU_VERIFY" "1")
      (fun () ->
        Compiler.compile (Compiler.picachu_options ())
          (Kernels.gelu Kernels.picachu))
  in
  let off = fingerprint (compile_with "0") in
  let on = fingerprint (compile_with "1") in
  Alcotest.(check bool) "gate off/on produce identical mappings" true (off = on)

(* ------------------------------------------------ negative: mapping mutants *)

(* A deterministic known-good (arch, dfg, mapping) triple to mutate. *)
let victim =
  lazy
    (let opts = Compiler.picachu_options () in
     let c = Compiler.compile_with_unroll opts 1 (Kernels.gelu Kernels.picachu) in
     let cl = List.hd c.Compiler.loops in
     (opts.Compiler.arch, cl.Compiler.dfg, cl.Compiler.mapping))

let with_placement (m : Mapper.mapping) u p =
  let s = Array.copy m.Mapper.schedule in
  s.(u) <- p;
  { m with Mapper.schedule = s }

let codes_of arch g m = Finding.codes (Verify.check_mapping arch g m)

let test_mapping_unmutated_clean () =
  let arch, g, m = Lazy.force victim in
  fail_findings "unmutated gelu mapping" (Verify.check_mapping arch g m)

let test_mutant_slot_collision () =
  let arch, g, m = Lazy.force victim in
  (* park node u on node v's exact slot, picking a v whose tile can also
     execute u so the only necessary finding is the collision *)
  let n = Dfg.node_count g in
  let pair = ref None in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if !pair = None && u <> v then begin
        let pv = m.Mapper.schedule.(v) in
        if Arch.supports arch ~tile:pv.Mapper.tile g.Dfg.nodes.(u).Dfg.op then
          pair := Some (u, pv)
      end
    done
  done;
  match !pair with
  | None -> Alcotest.fail "no collision candidate in victim"
  | Some (u, pv) ->
      let codes = codes_of arch g (with_placement m u pv) in
      Alcotest.(check bool) "slot-collision reported" true
        (List.mem "slot-collision" codes)

let test_mutant_capability () =
  let arch, g, m = Lazy.force victim in
  (* move a non-memory node to a tile that cannot execute it *)
  let n = Dfg.node_count g in
  let tiles = Arch.tiles arch in
  let found = ref None in
  for u = 0 to n - 1 do
    for t = 0 to tiles - 1 do
      let op = g.Dfg.nodes.(u).Dfg.op in
      if !found = None && (not (Op.is_memory op)) && not (Arch.supports arch ~tile:t op)
      then found := Some (u, t)
    done
  done;
  match !found with
  | None -> Alcotest.fail "no capability-violation candidate (arch too universal)"
  | Some (u, t) ->
      let p = { m.Mapper.schedule.(u) with Mapper.tile = t } in
      let codes = codes_of arch g (with_placement m u p) in
      Alcotest.(check bool) "capability reported" true (List.mem "capability" codes)

let test_mutant_mem_port () =
  let arch, g, m = Lazy.force victim in
  let n = Dfg.node_count g in
  let tiles = Arch.tiles arch in
  let found = ref None in
  for u = 0 to n - 1 do
    for t = 0 to tiles - 1 do
      let op = g.Dfg.nodes.(u).Dfg.op in
      if
        !found = None && Op.is_memory op
        && (not (Arch.has_mem_port arch t))
        && not (Arch.supports arch ~tile:t op)
      then found := Some (u, t)
    done
  done;
  match !found with
  | None -> Alcotest.fail "no mem-port candidate (every tile has a port?)"
  | Some (u, t) ->
      let p = { m.Mapper.schedule.(u) with Mapper.tile = t } in
      let codes = codes_of arch g (with_placement m u p) in
      Alcotest.(check bool) "mem-port reported" true (List.mem "mem-port" codes)

let test_mutant_timing () =
  let arch, g, m = Lazy.force victim in
  (* schedule a consumer at its producer's own cycle: latency >= 1 makes the
     dependence inequality impossible *)
  match
    List.find_opt
      (fun (e : Dfg.edge) -> e.Dfg.src <> e.Dfg.dst && e.Dfg.distance = 0)
      g.Dfg.edges
  with
  | None -> Alcotest.fail "victim has no forward edge"
  | Some e ->
      let ps = m.Mapper.schedule.(e.Dfg.src) in
      let p = { m.Mapper.schedule.(e.Dfg.dst) with Mapper.time = ps.Mapper.time } in
      let codes = codes_of arch g (with_placement m e.Dfg.dst p) in
      Alcotest.(check bool) "timing reported" true (List.mem "timing" codes)

let test_mutant_hops_mismatch () =
  let arch, g, m = Lazy.force victim in
  let codes = codes_of arch g { m with Mapper.routed_hops = m.Mapper.routed_hops + 1 } in
  Alcotest.(check (list string)) "only hops-mismatch" [ "hops-mismatch" ] codes

let test_mutant_makespan_mismatch () =
  let arch, g, m = Lazy.force victim in
  let codes = codes_of arch g { m with Mapper.makespan = m.Mapper.makespan + 1 } in
  Alcotest.(check (list string)) "only makespan-mismatch" [ "makespan-mismatch" ] codes

let test_mutant_ii_range () =
  let arch, g, m = Lazy.force victim in
  let codes = codes_of arch g { m with Mapper.ii = 0 } in
  Alcotest.(check bool) "ii-range reported" true (List.mem "ii-range" codes)

(* ---------------------------------------------------- negative: DFG mutants *)

let dfg_codes ?source g = Finding.codes (Verify.check_dfg ?source g)

let test_dfg_unmutated_clean () =
  let _, g, _ = Lazy.force victim in
  fail_findings "unmutated gelu DFG" (Verify.check_dfg g)

let test_dfg_mutant_edge_distance () =
  let _, g, _ = Lazy.force victim in
  let e = List.hd g.Dfg.edges in
  let g' = { g with Dfg.edges = { e with Dfg.distance = 2 } :: List.tl g.Dfg.edges } in
  Alcotest.(check bool) "edge-distance reported" true
    (List.mem "edge-distance" (dfg_codes g'))

let test_dfg_mutant_edge_endpoint () =
  let _, g, _ = Lazy.force victim in
  let bogus = { Dfg.src = Dfg.node_count g; dst = 0; distance = 0 } in
  let g' = { g with Dfg.edges = bogus :: g.Dfg.edges } in
  Alcotest.(check bool) "edge-endpoint reported" true
    (List.mem "edge-endpoint" (dfg_codes g'))

let test_dfg_mutant_back_edge_target () =
  let _, g, _ = Lazy.force victim in
  (* loop-carried edge into a node with no phi member *)
  let target = ref None in
  Array.iteri
    (fun i (node : Dfg.node) ->
      if !target = None && not (List.mem Op.Phi node.Dfg.members) then target := Some i)
    g.Dfg.nodes;
  match !target with
  | None -> Alcotest.fail "every node carries a phi?"
  | Some d ->
      let g' =
        { g with Dfg.edges = { Dfg.src = d; dst = d; distance = 1 } :: g.Dfg.edges }
      in
      Alcotest.(check bool) "back-edge-target reported" true
        (List.mem "back-edge-target" (dfg_codes g'))

let test_dfg_mutant_forward_cycle () =
  let _, g, _ = Lazy.force victim in
  (* reverse a forward edge: the distance-0 subgraph now has a 2-cycle *)
  match
    List.find_opt
      (fun (e : Dfg.edge) -> e.Dfg.src <> e.Dfg.dst && e.Dfg.distance = 0)
      g.Dfg.edges
  with
  | None -> Alcotest.fail "victim has no forward edge"
  | Some e ->
      let rev = { Dfg.src = e.Dfg.dst; dst = e.Dfg.src; distance = 0 } in
      let g' = { g with Dfg.edges = rev :: g.Dfg.edges } in
      Alcotest.(check bool) "forward-cycle reported" true
        (List.mem "forward-cycle" (dfg_codes g'))

let test_dfg_mutant_origin_coverage () =
  let opts = Compiler.picachu_options () in
  let c = Compiler.compile_with_unroll opts 1 (Kernels.gelu Kernels.picachu) in
  let cl = List.hd c.Compiler.loops in
  let g = cl.Compiler.dfg and source = cl.Compiler.source in
  fail_findings "unmutated origins" (Verify.check_dfg ~source g);
  (* steal another node's origin: one source instruction becomes claimed
     twice and the victim's own origin goes unclaimed *)
  let nodes = Array.copy g.Dfg.nodes in
  let a = nodes.(0) and b = nodes.(1) in
  let a' = { a with Dfg.origins = b.Dfg.origins } in
  nodes.(0) <- a';
  let g' = { g with Dfg.nodes = nodes } in
  Alcotest.(check bool) "origin-coverage reported" true
    (List.mem "origin-coverage" (dfg_codes ~source g'))

(* --------------------------------------------------- negative: lint mutants *)

let lint_codes (k : Kernel.t) = Finding.codes (Verify.lint_kernel k)

let map_first_loop f (k : Kernel.t) =
  match k.Kernel.loops with
  | l :: rest -> { k with Kernel.loops = f l :: rest }
  | [] -> k

let test_lint_mutant_forward_ref () =
  let k = Kernels.relu Kernels.picachu in
  (* make some non-phi instruction consume its own (not yet computed) result *)
  let mutate (l : Kernel.loop) =
    let body =
      List.map
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Op.Bin _ -> { i with Instr.args = List.map (fun _ -> i.Instr.id) i.Instr.args }
          | _ -> i)
        l.Kernel.body
    in
    { l with Kernel.body = body }
  in
  Alcotest.(check bool) "forward-ref reported" true
    (List.mem "forward-ref" (lint_codes (map_first_loop mutate k)))

let test_lint_mutant_arity () =
  let k = Kernels.relu Kernels.picachu in
  let mutate (l : Kernel.loop) =
    let body =
      List.map
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Op.Bin _ -> { i with Instr.args = 0 :: i.Instr.args }
          | _ -> i)
        l.Kernel.body
    in
    { l with Kernel.body = body }
  in
  Alcotest.(check bool) "arity reported" true
    (List.mem "arity" (lint_codes (map_first_loop mutate k)))

let test_lint_mutant_branch_count () =
  let k = Kernels.relu Kernels.picachu in
  let mutate (l : Kernel.loop) =
    (* the branch is the last instruction; dropping it keeps ids dense *)
    let body =
      List.filter (fun (i : Instr.t) -> i.Instr.op <> Op.Br) l.Kernel.body
    in
    { l with Kernel.body = body }
  in
  Alcotest.(check bool) "branch-count reported" true
    (List.mem "branch-count" (lint_codes (map_first_loop mutate k)))

let test_lint_mutant_undeclared_stream () =
  let k = Kernels.relu Kernels.picachu in
  Alcotest.(check bool) "undeclared-stream reported" true
    (List.mem "undeclared-stream" (lint_codes { k with Kernel.inputs = [] }))

let test_lint_mutant_undeclared_output () =
  let k = Kernels.relu Kernels.picachu in
  Alcotest.(check bool) "undeclared output store reported" true
    (List.mem "undeclared-stream" (lint_codes { k with Kernel.outputs = [] }))

let test_lint_dead_def_warning () =
  let b = Builder.create () in
  let x = Builder.load b "x" in
  let _dead = Builder.add b x x in
  Builder.store b "y" x;
  let loop = Builder.finish b ~label:"dead.1" ~trip_input:"n" () in
  let k =
    {
      Kernel.name = "dead";
      klass = Kernel.EO;
      loops = [ loop ];
      inputs = [ "x" ];
      outputs = [ "y" ];
      scalar_inputs = [ "n" ];
    }
  in
  let fs = Verify.lint_kernel k in
  Alcotest.(check bool) "dead-def reported" true (Finding.has_code "dead-def" fs);
  (* advisory, not gating *)
  Alcotest.(check int) "dead-def is not an Error" 0 (List.length (Finding.errors fs))

(* Regression: Transform.unroll used to re-emit every constant of the source
   loop, leaving the old induction-step literal dead (its only consumer, the
   skeleton's iv_add, is re-synthesized around a fresh uf constant).  The
   linter found this on the library; unrolled kernels must now lint clean. *)
let test_unroll_no_dead_consts () =
  List.iter
    (fun uf ->
      List.iter
        (fun (k : Kernel.t) ->
          let u = Transform.unroll_kernel uf k in
          let dead =
            List.filter (fun (f : Finding.t) -> f.Finding.code = "dead-def")
              (Verify.lint_kernel u)
          in
          fail_findings (Printf.sprintf "%s UF%d" k.Kernel.name uf) dead)
        (library Kernels.picachu))
    [ 2; 4 ]

(* ----------------------------------------------------------- range analysis *)

let test_interval_transfer () =
  let open Range in
  let i a b = make a b in
  let check_itv name want got =
    Alcotest.(check (pair (float 1e-9) (float 1e-9))) name want (got.lo, got.hi)
  in
  check_itv "mul sign grid" (-4.0, 4.0) (binop_i Op.Mul (i (-2.0) 2.0) (i (-2.0) 2.0));
  check_itv "mul positive" (2.0, 12.0) (binop_i Op.Mul (i 1.0 3.0) (i 2.0 4.0));
  check_itv "add" (-1.0, 5.0) (binop_i Op.Add (i 0.0 2.0) (i (-1.0) 3.0));
  check_itv "sub" (-3.0, 3.0) (binop_i Op.Sub (i 0.0 2.0) (i (-1.0) 3.0));
  check_itv "max" (1.0, 4.0) (binop_i Op.Max (i (-2.0) 4.0) (i 1.0 2.0));
  check_itv "join" (-2.0, 4.0) (join (i (-2.0) 0.0) (i 1.0 4.0));
  (* division by an interval containing zero is unbounded *)
  Alcotest.(check bool) "div through zero unbounded" false
    (is_finite (binop_i Op.Div (i 1.0 2.0) (i (-1.0) 1.0)));
  Alcotest.(check bool) "div away from zero bounded" true
    (is_finite (binop_i Op.Div (i 1.0 2.0) (i 2.0 4.0)))

let test_interval_division_tightening () =
  let open Range in
  let i a b = make a b in
  let check_itv name want got =
    Alcotest.(check (pair (float 1e-9) (float 1e-9))) name want (got.lo, got.hi)
  in
  (* divisor provably positive: tight endpoint quotients, both dividend signs *)
  check_itv "pos / pos" (0.25, 2.0) (binop_i Op.Div (i 1.0 4.0) (i 2.0 4.0));
  check_itv "neg / pos" (-2.0, -0.25) (binop_i Op.Div (i (-4.0) (-1.0)) (i 2.0 4.0));
  check_itv "mixed / pos" (-1.5, 2.0) (binop_i Op.Div (i (-3.0) 4.0) (i 2.0 4.0));
  (* divisor provably negative: signs flip, still tight *)
  check_itv "pos / neg" (-2.0, -0.25) (binop_i Op.Div (i 1.0 4.0) (i (-4.0) (-2.0)));
  check_itv "neg / neg" (0.25, 2.0) (binop_i Op.Div (i (-4.0) (-1.0)) (i (-4.0) (-2.0)));
  check_itv "mixed / neg" (-2.0, 1.5) (binop_i Op.Div (i (-3.0) 4.0) (i (-4.0) (-2.0)));
  (* zero-endpoint divisor with a sign-definite dividend: half-bounded,
     no longer widened all the way to top *)
  let r = binop_i Op.Div (i 1.0 2.0) (i 0.0 4.0) in
  Alcotest.(check (float 1e-9)) "pos / [0,4] lower" 0.25 r.lo;
  Alcotest.(check bool) "pos / [0,4] upper unbounded" true (r.hi = infinity);
  let r = binop_i Op.Div (i (-2.0) (-1.0)) (i 0.0 4.0) in
  Alcotest.(check bool) "neg / [0,4] lower unbounded" true (r.lo = neg_infinity);
  Alcotest.(check (float 1e-9)) "neg / [0,4] upper" (-0.25) r.hi;
  let r = binop_i Op.Div (i 1.0 2.0) (i (-4.0) 0.0) in
  Alcotest.(check bool) "pos / [-4,0] lower unbounded" true (r.lo = neg_infinity);
  Alcotest.(check (float 1e-9)) "pos / [-4,0] upper" (-0.25) r.hi;
  let r = binop_i Op.Div (i (-2.0) (-1.0)) (i (-4.0) 0.0) in
  Alcotest.(check (float 1e-9)) "neg / [-4,0] lower" 0.25 r.lo;
  Alcotest.(check bool) "neg / [-4,0] upper unbounded" true (r.hi = infinity);
  (* mixed dividend over a zero-endpoint divisor stays top *)
  let r = binop_i Op.Div (i (-1.0) 1.0) (i 0.0 4.0) in
  Alcotest.(check bool) "mixed / [0,4] stays top" true
    (r.lo = neg_infinity && r.hi = infinity)

let test_finding_sort_deterministic () =
  let f ?kernel ?loop ?node sev code =
    Finding.make ?kernel ?loop ?node Finding.Range_check sev ~code "m"
  in
  let a = f ~kernel:"k1" Finding.Warning "fx-overflow" in
  let b = f ~kernel:"k1" Finding.Error "bad-ssa" in
  let c = f ~kernel:"k0" ~loop:"l0" ~node:3 Finding.Warning "fx-overflow" in
  let d = f ~kernel:"k0" ~loop:"l0" ~node:1 Finding.Warning "fx-overflow" in
  let e = f Finding.Info "advice" in
  let want = [ b; c; d; a; e ] in
  let want = List.sort Finding.compare want in
  (* every permutation sorts to the same list *)
  let rec perms = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( != ) x) l)))
          l
  in
  List.iter
    (fun p ->
      Alcotest.(check (list string))
        "permutation-invariant order"
        (List.map Finding.to_string want)
        (List.map Finding.to_string (Finding.sort p)))
    (perms [ a; b; c; d; e ]);
  (* severity dominates, then code, then location *)
  match want with
  | first :: _ ->
      Alcotest.(check string) "errors first" (Finding.to_string b)
        (Finding.to_string first)
  | [] -> Alcotest.fail "empty sort"

let test_range_verdicts () =
  (* element-wise Picachu kernels stay representable in Q8.8 on [-2,2];
     the reductions legitimately escape (growth over 1024 trips) *)
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " safe") true
        (Range.safe (Kernels.by_name Kernels.picachu name)))
    [ "relu"; "gelu"; "silu"; "swiglu"; "geglu"; "rope" ];
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " flagged") false
        (Range.safe (Kernels.by_name Kernels.picachu name)))
    [ "softmax"; "softmax_online"; "layernorm"; "rmsnorm" ]

let test_range_flags_overflow () =
  let b = Builder.create () in
  let x = Builder.load b "x" in
  let big = Builder.mul b x (Builder.const b 100.0) in
  Builder.store b "y" big;
  let loop = Builder.finish b ~label:"big.1" ~trip_input:"n" () in
  let k =
    {
      Kernel.name = "big";
      klass = Kernel.EO;
      loops = [ loop ];
      inputs = [ "x" ];
      outputs = [ "y" ];
      scalar_inputs = [ "n" ];
    }
  in
  let fs = Range.analyze k in
  Alcotest.(check bool) "fx-overflow reported" true (Finding.has_code "fx-overflow" fs);
  Alcotest.(check bool) "flagged unsafe" false (Range.safe k)

(* One-directional consistency with the interpreter: a kernel the analysis
   calls safe must keep every output representable on the standard test
   vectors (inputs in [-2,2], RoPE angles pre-reduced, n=32).  The converse
   need not hold — intervals are conservative. *)
let test_range_consistent_with_interp () =
  let fx_lo, fx_hi = Range.fx_bounds Fx.(fmt ~total_bits:16 ~frac_bits:8) in
  let n = 32 in
  List.iter
    (fun variant ->
      List.iter
        (fun (k : Kernel.t) ->
          if Range.safe k then begin
            let rng = Rng.create 42 in
            let range_of stream = if stream = "angle" then (-1.5, 1.5) else (-2.0, 2.0) in
            let env =
              {
                Interp.arrays =
                  List.map
                    (fun s ->
                      let lo, hi = range_of s in
                      (s, Array.init n (fun _ -> Rng.uniform rng ~lo ~hi)))
                    k.Kernel.inputs;
                scalars =
                  List.map
                    (fun s -> (s, if s = "n" then float_of_int n else 1.0))
                    k.Kernel.scalar_inputs;
              }
            in
            let r = Interp.run k env in
            List.iter
              (fun (stream, a) ->
                Array.iter
                  (fun v ->
                    if not (v >= fx_lo && v <= fx_hi) then
                      Alcotest.failf "%s (%s): safe kernel emits %g on %s (Q8.8 is [%g, %g])"
                        k.Kernel.name (variant_name variant) v stream fx_lo fx_hi)
                  a)
              r.Interp.out_arrays
          end)
        (library variant))
    [ Kernels.picachu; Kernels.Baseline ]

(* --------------------------------------------------------------- gate wiring *)

let test_gate_rejects_bad_kernel () =
  (* the env knob is on (test/main.ml); a kernel whose IR fails the linter
     must come back as Verification_failed, not Ok *)
  let k = Kernels.relu Kernels.picachu in
  let bad = { k with Kernel.outputs = [] } in
  match Compiler.compile_result (Compiler.picachu_options ()) bad with
  | Error (Picachu_error.Verification_failed { findings; _ }) ->
      Alcotest.(check bool) "findings nonempty" true (findings <> [])
  | Ok _ -> Alcotest.fail "gate accepted a kernel with an undeclared output store"
  | Error e -> Alcotest.failf "unexpected error class: %s" (Picachu_error.to_string e)

let suite =
  [
    ( "verify",
      [
        Alcotest.test_case "library structurally clean (golden 0)" `Slow
          test_library_clean;
        Alcotest.test_case "range pass never errors on library" `Quick
          test_library_range_no_errors;
        Alcotest.test_case "sweep architectures all validate" `Slow
          test_sweep_architectures_validate;
        Alcotest.test_case "verify knob preserves mappings" `Quick
          test_knob_preserves_mappings;
        Alcotest.test_case "unmutated mapping clean" `Quick test_mapping_unmutated_clean;
        Alcotest.test_case "mutant: slot collision" `Quick test_mutant_slot_collision;
        Alcotest.test_case "mutant: capability violation" `Quick test_mutant_capability;
        Alcotest.test_case "mutant: memory port violation" `Quick test_mutant_mem_port;
        Alcotest.test_case "mutant: timing violation" `Quick test_mutant_timing;
        Alcotest.test_case "mutant: dishonest routed_hops" `Quick
          test_mutant_hops_mismatch;
        Alcotest.test_case "mutant: dishonest makespan" `Quick
          test_mutant_makespan_mismatch;
        Alcotest.test_case "mutant: II out of range" `Quick test_mutant_ii_range;
        Alcotest.test_case "unmutated DFG clean" `Quick test_dfg_unmutated_clean;
        Alcotest.test_case "mutant: edge distance" `Quick test_dfg_mutant_edge_distance;
        Alcotest.test_case "mutant: edge endpoint" `Quick test_dfg_mutant_edge_endpoint;
        Alcotest.test_case "mutant: back edge into non-phi" `Quick
          test_dfg_mutant_back_edge_target;
        Alcotest.test_case "mutant: forward cycle" `Quick test_dfg_mutant_forward_cycle;
        Alcotest.test_case "mutant: origin coverage" `Quick
          test_dfg_mutant_origin_coverage;
        Alcotest.test_case "mutant: SSA forward reference" `Quick
          test_lint_mutant_forward_ref;
        Alcotest.test_case "mutant: arity" `Quick test_lint_mutant_arity;
        Alcotest.test_case "mutant: branch count" `Quick test_lint_mutant_branch_count;
        Alcotest.test_case "mutant: undeclared input stream" `Quick
          test_lint_mutant_undeclared_stream;
        Alcotest.test_case "mutant: undeclared output store" `Quick
          test_lint_mutant_undeclared_output;
        Alcotest.test_case "dead definition is advisory" `Quick
          test_lint_dead_def_warning;
        Alcotest.test_case "unroll leaves no dead constants" `Quick
          test_unroll_no_dead_consts;
        Alcotest.test_case "interval transfer functions" `Quick test_interval_transfer;
        Alcotest.test_case "interval division tightening" `Quick
          test_interval_division_tightening;
        Alcotest.test_case "finding sort deterministic" `Quick
          test_finding_sort_deterministic;
        Alcotest.test_case "range verdicts on library" `Quick test_range_verdicts;
        Alcotest.test_case "range flags overflow" `Quick test_range_flags_overflow;
        Alcotest.test_case "safe kernels stay representable in interp" `Quick
          test_range_consistent_with_interp;
        Alcotest.test_case "verify gate rejects bad kernel" `Quick
          test_gate_rejects_bad_kernel;
      ] );
  ]
