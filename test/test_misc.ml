(* Edge-case coverage: the report renderer, interpreter corner semantics,
   numerics boundary behaviour, and the supplementary model rows. *)
open Picachu
module Kernels = Picachu_ir.Kernels
module Kernel = Picachu_ir.Kernel
module Interp = Picachu_ir.Interp
module Nm = Picachu_numerics

(* ---------------------------------------------------------------- report *)

let with_captured_stdout f =
  (* Report prints to stdout; run under a temp redirect *)
  let tmp = Filename.temp_file "picachu" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved;
    Unix.close fd
  in
  (try f () with e -> restore (); raise e);
  restore ();
  let ic = open_in tmp in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  s

let test_report_table_alignment () =
  let out =
    with_captured_stdout (fun () ->
        Report.table ~header:[ "a"; "bbbb" ] [ [ "xx"; "y" ]; [ "1"; "22222" ] ])
  in
  let lines = String.split_on_char '\n' out |> List.filter (fun s -> s <> "") in
  Alcotest.(check int) "header + rule + rows" 4 (List.length lines);
  (* all lines align to the same width *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "fixed width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_report_rejects_ragged () =
  Alcotest.check_raises "ragged row" (Invalid_argument "Report.table: ragged row")
    (fun () -> Report.table ~header:[ "a"; "b" ] [ [ "only-one" ] ])

let test_report_formatters () =
  Alcotest.(check string) "ratio" "1.86x" (Report.fmt_x 1.8600001);
  Alcotest.(check string) "percent" "46.3%" (Report.fmt_pct 0.46349);
  Alcotest.(check string) "delta zero" "0.00" (Report.fmt_delta 0.001);
  Alcotest.(check string) "delta positive" "+0.21" (Report.fmt_delta 0.21);
  Alcotest.(check string) "delta negative" "-0.21" (Report.fmt_delta (-0.21))

(* ---------------------------------------------------------- interp edges *)

let test_interp_zero_trip () =
  (* n = 0: no iterations, outputs empty, exports default to 0 *)
  let k = Kernels.rmsnorm Kernels.picachu in
  let res =
    Interp.run k { Interp.arrays = [ ("x", [||]) ]; scalars = [ ("n", 0.0) ] }
  in
  List.iter
    (fun (_, a) -> Alcotest.(check int) "empty stream" 0 (Array.length a))
    res.Interp.out_arrays

let test_interp_single_element () =
  let k = Kernels.softmax Kernels.picachu in
  let res =
    Interp.run k { Interp.arrays = [ ("x", [| 3.7 |]) ]; scalars = [ ("n", 1.0) ] }
  in
  let y = List.assoc "y" res.Interp.out_arrays in
  Alcotest.(check (float 1e-9)) "softmax of singleton is 1" 1.0 y.(0)

let test_unroll_non_divisible_trip () =
  (* 10 elements under UF=4: the interpreter must not read out of bounds *)
  let k = Picachu_ir.Transform.unroll_kernel 4 (Kernels.relu Kernels.picachu) in
  Alcotest.(check bool) "out-of-bounds load detected" true
    (try
       ignore
         (Interp.run k
            { Interp.arrays = [ ("x", Array.make 10 1.0) ]; scalars = [ ("n", 10.0) ] });
       false
     with Interp.Runtime_error _ -> true)

(* -------------------------------------------------------- numerics edges *)

let test_fp16_negative_zero () =
  Alcotest.(check int) "-0.0 encodes sign" 0x8000 (Nm.Fp16.of_float (-0.0))

let test_taylor_exp_extremes () =
  Alcotest.(check (float 0.0)) "deep underflow" 0.0 (Nm.Taylor.exp (-1000.0));
  Alcotest.(check bool) "overflow to inf" true (Nm.Taylor.exp 1000.0 = infinity)

let test_int_ops_exp_bounds () =
  Alcotest.(check (float 0.0)) "flush below -87" 0.0 (Nm.Int_ops.exp (-100.0));
  Alcotest.(check bool) "saturate above 88" true (Nm.Int_ops.exp 100.0 = infinity)

let test_lut_single_sided () =
  let l = Nm.Lut.create ~entries:2 ~lo:0.0 ~hi:1.0 (fun x -> x) in
  Alcotest.(check (float 1e-6)) "two-entry interpolation" 0.5 (Nm.Lut.eval l 0.5)

(* ---------------------------------------------------------- supp models *)

let test_supp_models_accuracy () =
  List.iter
    (fun (name, fp, dfp, dint) ->
      Alcotest.(check bool) (name ^ " fp16 sane") true (fp > 1.0 && fp < 100.0);
      Alcotest.(check bool) (name ^ " ours-fp within 2%") true
        (Float.abs dfp /. fp < 0.02);
      Alcotest.(check bool) (name ^ " ours-int within 2%") true
        (Float.abs dint /. fp < 0.02))
    (Experiments.supp_models ())

let suite =
  [
    ( "report",
      [
        Alcotest.test_case "table alignment" `Quick test_report_table_alignment;
        Alcotest.test_case "ragged rejected" `Quick test_report_rejects_ragged;
        Alcotest.test_case "formatters" `Quick test_report_formatters;
      ] );
    ( "interp-edges",
      [
        Alcotest.test_case "zero trips" `Quick test_interp_zero_trip;
        Alcotest.test_case "single element" `Quick test_interp_single_element;
        Alcotest.test_case "non-divisible unroll" `Quick test_unroll_non_divisible_trip;
      ] );
    ( "numerics-edges",
      [
        Alcotest.test_case "fp16 negative zero" `Quick test_fp16_negative_zero;
        Alcotest.test_case "taylor exp extremes" `Quick test_taylor_exp_extremes;
        Alcotest.test_case "int exp bounds" `Quick test_int_ops_exp_bounds;
        Alcotest.test_case "two-entry lut" `Quick test_lut_single_sided;
      ] );
    ( "supp-models",
      [ Alcotest.test_case "gqa/mqa accuracy" `Slow test_supp_models_accuracy ] );
  ]
