(* Tests for the kernel IR: opcode algebra, builder, kernel validation, the
   reference interpreter (against closed-form math), and the loop
   transformations (semantic equivalence under unrolling/vectorization). *)
open Picachu_ir

let check_close eps = Alcotest.(check (float eps))
let qtest = QCheck_alcotest.to_alcotest

let run_kernel k ~arrays ~scalars =
  Interp.run k { Interp.arrays; scalars }

let input_n n = [ ("n", float_of_int n) ]

let test_xs n = Array.init n (fun i -> (float_of_int i /. 3.0) -. 2.2)

let max_delta a b =
  let d = ref 0.0 in
  Array.iteri (fun i v -> d := Float.max !d (Float.abs (v -. b.(i)))) a;
  !d

(* -------------------------------------------------------------------- Op *)

let test_op_latency () =
  Alcotest.(check int) "div pipelined" 4 (Op.latency (Op.Bin Op.Div));
  Alcotest.(check int) "add" 1 (Op.latency (Op.Bin Op.Add));
  Alcotest.(check int) "fused" 1 (Op.latency (Op.Fused Op.Mul_add))

let test_op_classification () =
  Alcotest.(check bool) "load is memory" true (Op.is_memory (Op.Load "x"));
  Alcotest.(check bool) "const is not compute" false (Op.is_compute (Op.Const 1.0));
  Alcotest.(check bool) "phi is control" true (Op.is_control Op.Phi);
  Alcotest.(check bool) "div not vectorizable" false (Op.is_vectorizable (Op.Bin Op.Div));
  Alcotest.(check bool) "mul vectorizable" true (Op.is_vectorizable (Op.Bin Op.Mul))

let test_fused_members () =
  Alcotest.(check int) "mul+add+add members" 3
    (List.length (Op.fused_members Op.Mul_add_add));
  Alcotest.(check string) "name" "cmp+br" (Op.fused_name Op.Cmp_br)

(* ------------------------------------------------------------ Validation *)

let test_all_kernels_validate () =
  List.iter
    (fun variant ->
      List.iter
        (fun k ->
          match Kernel.validate k with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: %s" k.Kernel.name e)
        (Kernels.all variant))
    [ Kernels.picachu; Kernels.Baseline ]

let test_validate_rejects_bad_ids () =
  let bad =
    {
      Kernel.name = "bad";
      klass = Kernel.EO;
      loops =
        [
          {
            Kernel.label = "bad.1";
            pre = [];
            body = [ Instr.make ~id:5 ~op:(Op.Const 1.0) ~args:[] () ];
            reduction = false;
            exports = [];
            step = 1;
            vector_width = 1;
          };
        ];
      inputs = [];
      outputs = [];
      scalar_inputs = [];
    }
  in
  match Kernel.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "dense-id violation not caught"

let string_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_validate_rejects_undeclared_stream () =
  let b = Builder.create () in
  let x = Builder.load b "mystery" in
  Builder.store b "y" x;
  let loop = Builder.finish b ~label:"l" ~trip_input:"n" () in
  let k =
    {
      Kernel.name = "k";
      klass = Kernel.EO;
      loops = [ loop ];
      inputs = [ "x" ];
      outputs = [ "y" ];
      scalar_inputs = [ "n" ];
    }
  in
  match Kernel.validate k with
  | Error e ->
      Alcotest.(check bool) "mentions stream" true (string_contains e "mystery")
  | Ok () -> Alcotest.fail "undeclared load not caught"

(* ------------------------------------------------------------ Interp/math *)

let test_relu_interp () =
  let n = 12 in
  let xs = test_xs n in
  let res = run_kernel (Kernels.relu Kernels.picachu) ~arrays:[ ("x", xs) ] ~scalars:(input_n n) in
  let y = List.assoc "y" res.Interp.out_arrays in
  Array.iteri
    (fun i v -> check_close 1e-12 "relu" (Float.max 0.0 xs.(i)) v)
    y

let test_softmax_interp () =
  let n = 16 in
  let xs = test_xs n in
  let res = run_kernel (Kernels.softmax Kernels.picachu) ~arrays:[ ("x", xs) ] ~scalars:(input_n n) in
  let y = List.assoc "y" res.Interp.out_arrays in
  let m = Array.fold_left Float.max neg_infinity xs in
  let es = Array.map (fun x -> exp (x -. m)) xs in
  let s = Array.fold_left ( +. ) 0.0 es in
  let expect = Array.map (fun e -> e /. s) es in
  Alcotest.(check bool) "softmax within taylor tolerance" true
    (max_delta y expect < 1e-5);
  check_close 1e-5 "sums to one" 1.0 (Array.fold_left ( +. ) 0.0 y)

let test_softmax_baseline_variant_interp () =
  (* the floor-based split must compute the same values *)
  let n = 16 in
  let xs = test_xs n in
  let p = run_kernel (Kernels.softmax Kernels.picachu) ~arrays:[ ("x", xs) ] ~scalars:(input_n n) in
  let b = run_kernel (Kernels.softmax Kernels.Baseline) ~arrays:[ ("x", xs) ] ~scalars:(input_n n) in
  let yp = List.assoc "y" p.Interp.out_arrays and yb = List.assoc "y" b.Interp.out_arrays in
  Alcotest.(check bool) "variants agree" true (max_delta yp yb < 1e-6)

let test_gelu_lut_interp () =
  let n = 10 in
  let xs = test_xs n in
  let res = run_kernel (Kernels.gelu Kernels.picachu) ~arrays:[ ("x", xs) ] ~scalars:(input_n n) in
  let y = List.assoc "y" res.Interp.out_arrays in
  Array.iteri
    (fun i v ->
      let expect = xs.(i) *. Picachu_numerics.Lut.gauss_cdf_exact xs.(i) in
      Alcotest.(check bool) "gelu lut tolerance" true (Float.abs (v -. expect) < 2e-3))
    y

let test_gelu_tanh_interp () =
  let n = 10 in
  let xs = test_xs n in
  let res = run_kernel (Kernels.gelu Kernels.Baseline) ~arrays:[ ("x", xs) ] ~scalars:(input_n n) in
  let y = List.assoc "y" res.Interp.out_arrays in
  Array.iteri
    (fun i v ->
      let expect = Picachu_numerics.Approx.gelu_tanh_exact xs.(i) in
      Alcotest.(check bool) "gelu tanh tolerance" true (Float.abs (v -. expect) < 1e-3))
    y

let test_silu_swiglu_interp () =
  let n = 12 in
  let a = test_xs n in
  let g = Array.init n (fun i -> 1.0 -. (float_of_int i /. 10.0)) in
  let silu = run_kernel (Kernels.silu Kernels.picachu) ~arrays:[ ("x", a) ] ~scalars:(input_n n) in
  let ys = List.assoc "y" silu.Interp.out_arrays in
  Array.iteri
    (fun i v ->
      let expect = a.(i) /. (1.0 +. exp (-.a.(i))) in
      Alcotest.(check bool) "silu" true (Float.abs (v -. expect) < 1e-5))
    ys;
  let sw =
    run_kernel (Kernels.swiglu Kernels.picachu)
      ~arrays:[ ("a", a); ("b", g) ]
      ~scalars:(input_n n)
  in
  let yw = List.assoc "y" sw.Interp.out_arrays in
  Array.iteri
    (fun i v ->
      let expect = a.(i) /. (1.0 +. exp (-.a.(i))) *. g.(i) in
      Alcotest.(check bool) "swiglu" true (Float.abs (v -. expect) < 1e-5))
    yw

let test_layernorm_interp () =
  let n = 16 in
  let xs = test_xs n in
  let res = run_kernel (Kernels.layernorm Kernels.picachu) ~arrays:[ ("x", xs) ] ~scalars:(input_n n) in
  let y = List.assoc "y" res.Interp.out_arrays in
  let mu = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let var = Array.fold_left (fun a x -> a +. ((x -. mu) ** 2.0)) 0.0 xs /. float_of_int n in
  let expect = Array.map (fun x -> (x -. mu) /. sqrt (var +. 1e-5)) xs in
  Alcotest.(check bool) "layernorm" true (max_delta y expect < 1e-9)

let test_rmsnorm_interp () =
  let n = 16 in
  let xs = test_xs n in
  let res = run_kernel (Kernels.rmsnorm Kernels.picachu) ~arrays:[ ("x", xs) ] ~scalars:(input_n n) in
  let y = List.assoc "y" res.Interp.out_arrays in
  let ms = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 xs /. float_of_int n in
  let expect = Array.map (fun x -> x /. sqrt (ms +. 1e-5)) xs in
  Alcotest.(check bool) "rmsnorm" true (max_delta y expect < 1e-9)

let test_rope_interp () =
  let n = 8 in
  let x1 = Array.init n (fun i -> float_of_int i /. 5.0) in
  let x2 = Array.init n (fun i -> 0.7 -. (float_of_int i /. 9.0)) in
  let angle = Array.init n (fun i -> (float_of_int i /. float_of_int n *. 2.8) -. 1.4) in
  let res =
    run_kernel (Kernels.rope Kernels.picachu)
      ~arrays:[ ("x1", x1); ("x2", x2); ("angle", angle) ]
      ~scalars:(input_n n)
  in
  let y1 = List.assoc "y1" res.Interp.out_arrays in
  let y2 = List.assoc "y2" res.Interp.out_arrays in
  Array.iteri
    (fun i _ ->
      let c = cos angle.(i) and s = sin angle.(i) in
      Alcotest.(check bool) "y1" true
        (Float.abs (y1.(i) -. ((x1.(i) *. c) -. (x2.(i) *. s))) < 1e-3);
      Alcotest.(check bool) "y2" true
        (Float.abs (y2.(i) -. ((x1.(i) *. s) +. (x2.(i) *. c))) < 1e-3))
    x1

let test_softmax_online_interp () =
  let n = 32 in
  let xs = Array.init n (fun i -> (float_of_int i /. 3.0) -. 5.0) in
  let res =
    run_kernel (Kernels.softmax_online Kernels.picachu) ~arrays:[ ("x", xs) ]
      ~scalars:(input_n n)
  in
  let y = List.assoc "y" res.Interp.out_arrays in
  let m = Array.fold_left Float.max neg_infinity xs in
  let es = Array.map (fun x -> exp (x -. m)) xs in
  let s = Array.fold_left ( +. ) 0.0 es in
  let expect = Array.map (fun e -> e /. s) es in
  Alcotest.(check bool) "online softmax matches exact" true (max_delta y expect < 1e-5);
  (* the exports are the true statistics *)
  check_close 1e-9 "running max export" m (List.assoc "m" res.Interp.out_scalars)

let test_softmax_online_agrees_with_three_loop () =
  let n = 24 in
  let xs = test_xs n in
  let a =
    run_kernel (Kernels.softmax Kernels.picachu) ~arrays:[ ("x", xs) ] ~scalars:(input_n n)
  in
  let b =
    run_kernel (Kernels.softmax_online Kernels.picachu) ~arrays:[ ("x", xs) ]
      ~scalars:(input_n n)
  in
  let ya = List.assoc "y" a.Interp.out_arrays and yb = List.assoc "y" b.Interp.out_arrays in
  Alcotest.(check bool) "forms agree" true (max_delta ya yb < 1e-6)

let test_interp_exports () =
  let n = 8 in
  let xs = test_xs n in
  let res = run_kernel (Kernels.softmax Kernels.picachu) ~arrays:[ ("x", xs) ] ~scalars:(input_n n) in
  let m = List.assoc "m" res.Interp.out_scalars in
  check_close 1e-12 "max exported" (Array.fold_left Float.max neg_infinity xs) m

let test_interp_missing_stream () =
  Alcotest.check_raises "missing stream"
    (Interp.Runtime_error "relu.1: missing input stream x") (fun () ->
      ignore (run_kernel (Kernels.relu Kernels.picachu) ~arrays:[] ~scalars:(input_n 4)))

let test_interp_missing_scalar () =
  try
    ignore (run_kernel (Kernels.relu Kernels.picachu) ~arrays:[ ("x", test_xs 4) ] ~scalars:[]);
    Alcotest.fail "missing trip scalar not caught"
  with Interp.Runtime_error _ -> ()

let test_future_op_kernels () =
  (* the §3.2.2 claim: new operations come up from primitives with no
     architecture change — validate their mathematics and their mappings *)
  let n = 16 in
  let xs = Array.init n (fun i -> (float_of_int i *. 5.0) -. 40.0) in
  let sc = run_kernel (Kernels.softcap Kernels.picachu) ~arrays:[ ("x", xs) ] ~scalars:(input_n n) in
  let y = List.assoc "y" sc.Interp.out_arrays in
  Array.iteri
    (fun i v ->
      let expect = 30.0 *. tanh (xs.(i) /. 30.0) in
      Alcotest.(check bool) "softcap" true (Float.abs (v -. expect) < 1e-3))
    y;
  let r2 = run_kernel (Kernels.relu_squared Kernels.picachu) ~arrays:[ ("x", xs) ] ~scalars:(input_n n) in
  let y = List.assoc "y" r2.Interp.out_arrays in
  Array.iteri
    (fun i v ->
      let r = Float.max 0.0 xs.(i) in
      check_close 1e-9 "relu^2" (r *. r) v)
    y;
  List.iter
    (fun k ->
      match Kernel.validate k with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" k.Kernel.name e)
    (Kernels.extras Kernels.picachu @ Kernels.extras Kernels.Baseline)

let test_exp_kernel_orders () =
  let n = 8 in
  let xs = Array.init n (fun i -> (float_of_int i /. 2.0) -. 2.0) in
  List.iter
    (fun order ->
      let k = Kernels.exp_kernel ~order Kernels.picachu in
      let res = run_kernel k ~arrays:[ ("x", xs) ] ~scalars:(input_n n) in
      let y = List.assoc "y" res.Interp.out_arrays in
      let tolerance = match order with 2 -> 0.1 | 4 -> 3e-3 | _ -> 1e-4 in
      Array.iteri
        (fun i v ->
          Alcotest.(check bool)
            (Printf.sprintf "order %d" order)
            true
            (Float.abs (v -. exp xs.(i)) /. exp xs.(i) < tolerance))
        y)
    [ 2; 4; 6 ]

(* --------------------------------------------------------------- Builder *)

let test_builder_const_hash_consing () =
  let b = Builder.create () in
  let a = Builder.const b 1.5 and c = Builder.const b 1.5 in
  Alcotest.(check int) "same const shared" a c;
  let i1 = Builder.input b "n" and i2 = Builder.input b "n" in
  Alcotest.(check int) "same input shared" i1 i2

let test_builder_iv_single () =
  let b = Builder.create () in
  let i1 = Builder.iv b and i2 = Builder.iv b in
  Alcotest.(check int) "one induction variable" i1 i2

(* ------------------------------------------------------------- Transform *)

let interp_outputs k ~arrays ~scalars =
  let res = Interp.run k { Interp.arrays; scalars } in
  List.sort compare res.Interp.out_arrays

let test_unroll_equivalence_all_kernels () =
  let n = 16 in
  let arrays_for (k : Kernel.t) =
    List.map
      (fun name ->
        ( name,
          match name with
          | "angle" -> Array.init n (fun i -> (float_of_int i /. 16.0) -. 0.5)
          | _ -> Array.init n (fun i -> ((float_of_int (i * 7) /. 11.0) -. 3.0) /. 2.0) ))
      k.Kernel.inputs
  in
  List.iter
    (fun uf ->
      List.iter
        (fun (k : Kernel.t) ->
          let arrays = arrays_for k in
          let base = interp_outputs k ~arrays ~scalars:(input_n n) in
          let unrolled = Transform.unroll_kernel uf k in
          (match Kernel.validate unrolled with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s uf=%d invalid: %s" k.Kernel.name uf e);
          let got = interp_outputs unrolled ~arrays ~scalars:(input_n n) in
          List.iter2
            (fun (n1, a) (n2, b) ->
              Alcotest.(check string) "stream name" n1 n2;
              Alcotest.(check bool)
                (Printf.sprintf "%s uf=%d equivalent" k.Kernel.name uf)
                true
                (max_delta a b < 1e-9))
            base got)
        (Kernels.all Kernels.picachu))
    [ 2; 4 ]

let test_unroll_updates_step () =
  let k = Transform.unroll_kernel 4 (Kernels.relu Kernels.picachu) in
  List.iter (fun l -> Alcotest.(check int) "step" 4 l.Kernel.step) k.Kernel.loops

let test_unroll_identity () =
  let k = Kernels.relu Kernels.picachu in
  let k1 = Transform.unroll_kernel 1 k in
  Alcotest.(check int) "uf=1 unchanged" (Kernel.kernel_instr_count k)
    (Kernel.kernel_instr_count k1)

let test_unroll_twice_rejected () =
  let l = List.hd (Kernels.relu Kernels.picachu).Kernel.loops in
  let l2 = Transform.unroll 2 l in
  Alcotest.check_raises "already unrolled"
    (Invalid_argument "Transform.unroll: loop already unrolled") (fun () ->
      ignore (Transform.unroll 2 l2))

let test_vectorize_splits_divs () =
  let k = Kernels.softmax Kernels.picachu in
  let count_divs (k : Kernel.t) =
    List.fold_left
      (fun acc l ->
        acc
        + List.length
            (List.filter (fun (i : Instr.t) -> i.Instr.op = Op.Bin Op.Div) l.Kernel.body))
      0 k.Kernel.loops
  in
  let before = count_divs k in
  let kv = Transform.vectorize_kernel 4 k in
  (match Kernel.validate kv with
  | Ok () -> ()
  | Error e -> Alcotest.failf "vectorized invalid: %s" e);
  Alcotest.(check int) "divs split per lane" (before * 4) (count_divs kv);
  List.iter (fun l -> Alcotest.(check int) "vw" 4 l.Kernel.vector_width) kv.Kernel.loops

let test_vectorize_preserves_semantics () =
  let n = 16 in
  let xs = test_xs n in
  let k = Kernels.softmax Kernels.picachu in
  let base = interp_outputs k ~arrays:[ ("x", xs) ] ~scalars:(input_n n) in
  let kv = Transform.vectorize_kernel 4 k in
  let got = interp_outputs kv ~arrays:[ ("x", xs) ] ~scalars:(input_n n) in
  List.iter2
    (fun (_, a) (_, b) ->
      Alcotest.(check bool) "vectorized equivalent" true (max_delta a b < 1e-12))
    base got

let prop_unroll_random_inputs =
  QCheck.Test.make ~name:"unroll-2 layernorm equivalence on random inputs" ~count:50
    (QCheck.list_of_size (QCheck.Gen.return 12) (QCheck.float_range (-10.0) 10.0))
    (fun xs ->
      let xs = Array.of_list xs in
      let n = Array.length xs in
      let k = Kernels.layernorm Kernels.picachu in
      let base = interp_outputs k ~arrays:[ ("x", xs) ] ~scalars:(input_n n) in
      let got =
        interp_outputs (Transform.unroll_kernel 2 k) ~arrays:[ ("x", xs) ]
          ~scalars:(input_n n)
      in
      List.for_all2 (fun (_, a) (_, b) -> max_delta a b < 1e-9) base got)

let suite =
  [
    ( "op",
      [
        Alcotest.test_case "latency" `Quick test_op_latency;
        Alcotest.test_case "classification" `Quick test_op_classification;
        Alcotest.test_case "fused members" `Quick test_fused_members;
      ] );
    ( "kernel-validation",
      [
        Alcotest.test_case "library validates" `Quick test_all_kernels_validate;
        Alcotest.test_case "rejects bad ids" `Quick test_validate_rejects_bad_ids;
        Alcotest.test_case "rejects undeclared stream" `Quick
          test_validate_rejects_undeclared_stream;
      ] );
    ( "interp",
      [
        Alcotest.test_case "relu" `Quick test_relu_interp;
        Alcotest.test_case "softmax" `Quick test_softmax_interp;
        Alcotest.test_case "softmax variants agree" `Quick
          test_softmax_baseline_variant_interp;
        Alcotest.test_case "gelu (lut)" `Quick test_gelu_lut_interp;
        Alcotest.test_case "gelu (tanh)" `Quick test_gelu_tanh_interp;
        Alcotest.test_case "silu/swiglu" `Quick test_silu_swiglu_interp;
        Alcotest.test_case "layernorm" `Quick test_layernorm_interp;
        Alcotest.test_case "rmsnorm" `Quick test_rmsnorm_interp;
        Alcotest.test_case "rope" `Quick test_rope_interp;
        Alcotest.test_case "softmax online" `Quick test_softmax_online_interp;
        Alcotest.test_case "softmax forms agree" `Quick
          test_softmax_online_agrees_with_three_loop;
        Alcotest.test_case "exports" `Quick test_interp_exports;
        Alcotest.test_case "missing stream" `Quick test_interp_missing_stream;
        Alcotest.test_case "missing scalar" `Quick test_interp_missing_scalar;
        Alcotest.test_case "exp kernel orders" `Quick test_exp_kernel_orders;
        Alcotest.test_case "future-op kernels" `Quick test_future_op_kernels;
      ] );
    ( "builder",
      [
        Alcotest.test_case "const hash-consing" `Quick test_builder_const_hash_consing;
        Alcotest.test_case "single induction var" `Quick test_builder_iv_single;
      ] );
    ( "transform",
      [
        Alcotest.test_case "unroll equivalence (all kernels)" `Quick
          test_unroll_equivalence_all_kernels;
        Alcotest.test_case "unroll updates step" `Quick test_unroll_updates_step;
        Alcotest.test_case "unroll identity" `Quick test_unroll_identity;
        Alcotest.test_case "double unroll rejected" `Quick test_unroll_twice_rejected;
        Alcotest.test_case "vectorize splits divs" `Quick test_vectorize_splits_divs;
        Alcotest.test_case "vectorize preserves semantics" `Quick
          test_vectorize_preserves_semantics;
        qtest prop_unroll_random_inputs;
      ] );
  ]
