(* The staged compilation pipeline: typed passes, per-pass instrumentation,
   and the content-addressed compile cache.

   The headline properties: compiling the same input twice is bit-identical
   and served from the cache; the cache address is structural (names don't
   matter, domain-pool size doesn't matter); per-pass stats account for
   exactly the work the auto-tuner does; and the refactor changed nothing
   observable — the experiments transcript and every emitted mapping are
   golden-pinned. *)

module Kernel = Picachu_ir.Kernel
module Kernels = Picachu_ir.Kernels
module Kernel_text = Picachu_ir.Kernel_text
module Transform = Picachu_ir.Transform
module Arch = Picachu_cgra.Arch
module Mapper = Picachu_cgra.Mapper
module Parallel = Picachu_parallel.Parallel
open Picachu

let opts () = Compiler.picachu_options ()

(* deterministic serialization of everything a compile emits *)
let string_of_compiled (c : Compiler.compiled) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "uf=%d vf=%d arch=%s\n" c.Compiler.unroll c.Compiler.vector
       c.Compiler.arch_name);
  List.iter
    (fun (cl : Compiler.compiled_loop) ->
      let m = cl.Compiler.mapping in
      Buffer.add_string buf
        (Printf.sprintf "  %s ii=%d makespan=%d hops=%d |"
           cl.Compiler.source.Kernel.label m.Mapper.ii m.Mapper.makespan
           m.Mapper.routed_hops);
      Array.iter
        (fun (p : Mapper.placement) ->
          Buffer.add_string buf (Printf.sprintf " %d@%d" p.Mapper.time p.Mapper.tile))
        m.Mapper.schedule;
      Buffer.add_char buf '\n')
    c.Compiler.loops;
  Buffer.contents buf

(* ------------------------------------------------------------- caching *)

let test_memo_bit_identical () =
  let k = Kernels.softmax Kernels.picachu in
  let fresh =
    match Compiler.compile_result (opts ()) k with
    | Ok c -> c
    | Error e -> Alcotest.failf "softmax failed: %s" (Picachu_error.to_string e)
  in
  let a = Compiler.memo_result (opts ()) k in
  let before = Compiler.cache_stats () in
  let b = Compiler.memo_result (opts ()) k in
  let after = Compiler.cache_stats () in
  Alcotest.(check int) "second memo is a hit" (before.Compiler.hits + 1)
    after.Compiler.hits;
  Alcotest.(check int) "second memo adds no miss" before.Compiler.misses
    after.Compiler.misses;
  match (a, b) with
  | Ok ca, Ok cb ->
      Alcotest.(check bool) "hits share one value" true (ca == cb);
      Alcotest.(check string) "memoized compile bit-identical to a fresh one"
        (string_of_compiled fresh) (string_of_compiled ca)
  | _ -> Alcotest.fail "memoized softmax compile failed"

let test_renamed_clone_shares_entry () =
  let k = Kernels.softmax Kernels.picachu in
  let clone = { k with Kernel.name = "softmax_clone_for_cache_test" } in
  Alcotest.(check string) "kernel name is not part of the address"
    (Compiler.cache_key (opts ()) k)
    (Compiler.cache_key (opts ()) clone);
  (* prime with the original, then compile the clone: no pipeline run *)
  ignore (Compiler.memo_result (opts ()) k);
  let runs = Compiler.compile_count () in
  (match Compiler.memo_result (opts ()) clone with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "clone failed: %s" (Picachu_error.to_string e));
  Alcotest.(check int) "clone answered from the original's entry" runs
    (Compiler.compile_count ())

let test_options_change_address () =
  let k = Kernels.softmax Kernels.picachu in
  let base = Compiler.cache_key (opts ()) k in
  Alcotest.(check bool) "vector width is part of the address" true
    (base <> Compiler.cache_key (Compiler.picachu_options ~vector:4 ()) k);
  Alcotest.(check bool) "arch is part of the address" true
    (base
    <> Compiler.cache_key
         (Compiler.picachu_options ~arch:(Arch.picachu ~rows:3 ~cols:3 ()) ())
         k);
  (* same structure under a different constructor path shares the address *)
  Alcotest.(check string) "structurally identical archs share the address" base
    (Compiler.cache_key (Compiler.picachu_options ~arch:(Arch.picachu ()) ()) k)

let test_digest_stable_across_pools () =
  let k = Kernels.softmax Kernels.picachu in
  let digests =
    List.map
      (fun size ->
        Parallel.with_pool ~size (fun () ->
            (Kernel.structural_digest k, Compiler.cache_key (opts ()) k)))
      [ 1; 2; 4 ]
  in
  match digests with
  | d :: rest ->
      List.iter
        (fun d' ->
          Alcotest.(check (pair string string))
            "digest independent of PICACHU_DOMAINS" d d')
        rest
  | [] -> assert false

let contains_sub s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_backend_changes_address () =
  (* the approximation backend rewrites kernel bodies (Taylor chains vs LUT
     references), so it must be part of the cache address: a Taylor compile
     primed in the cache may never answer for the NLI kernel *)
  let taylor = Kernels.gelu Kernels.picachu in
  let nli = Kernels.gelu Kernels.picachu_nli in
  Alcotest.(check bool) "backend is part of the address" true
    (Compiler.cache_key (opts ()) taylor <> Compiler.cache_key (opts ()) nli);
  ignore (Compiler.memo_result (opts ()) taylor);
  let runs = Compiler.compile_count () in
  (match Compiler.memo_result (opts ()) nli with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "nli gelu failed: %s" (Picachu_error.to_string e));
  Alcotest.(check bool) "nli compile was not served from the taylor entry"
    true
    (Compiler.compile_count () > runs)

let test_nli_roster_compiles () =
  (* every library kernel compiles under the NLI backend on the default
     PICACHU architecture — the tables all fit the tile ROM budget *)
  List.iter
    (fun (k : Kernel.t) ->
      match Compiler.memo_result (opts ()) k with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "nli %s failed: %s" k.Kernel.name
            (Picachu_error.to_string e))
    (Kernels.all Kernels.picachu_nli @ Kernels.extras Kernels.picachu_nli)

let test_lut_capacity_rejection () =
  (* a tile ROM budget smaller than the referenced segment tables must be
     a mapping failure naming the tables, not a silent success *)
  let arch = Arch.with_lut_capacity 128 (Arch.picachu ()) in
  let o = Compiler.picachu_options ~arch () in
  (match Compiler.compile_result o (Kernels.gelu Kernels.picachu_nli) with
  | Ok _ -> Alcotest.fail "gelu nli mapped into a 128-byte LUT budget"
  | Error (Picachu_error.Unmappable { reasons; _ }) ->
      Alcotest.(check bool) "reason names the LUT tables" true
        (List.exists
           (fun (_, msg) ->
             contains_sub msg "LUT tables" && contains_sub msg "nli.gelu")
           reasons)
  | Error e ->
      Alcotest.failf "unexpected error: %s" (Picachu_error.to_string e));
  (* the Taylor form of the same kernel references only the 2 KiB phi
     table, which a 2 KiB budget admits and the 128-byte one rejects *)
  (match
     Compiler.compile_result
       (Compiler.picachu_options
          ~arch:(Arch.with_lut_capacity 2048 (Arch.picachu ())) ())
       (Kernels.gelu Kernels.picachu)
   with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "taylor gelu at 2 KiB failed: %s"
        (Picachu_error.to_string e));
  match Compiler.compile_result o (Kernels.gelu Kernels.picachu) with
  | Ok _ -> Alcotest.fail "taylor gelu mapped into a 128-byte LUT budget"
  | Error (Picachu_error.Unmappable _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Picachu_error.to_string e)

let test_unknown_kernel_no_miss () =
  let before = Compiler.cache_stats () in
  (match Compiler.cached_result (opts ()) Kernels.picachu "nope" with
  | Error (Picachu_error.Unknown_kernel "nope") -> ()
  | _ -> Alcotest.fail "expected Unknown_kernel");
  let after = Compiler.cache_stats () in
  Alcotest.(check int) "unknown kernel is not a cache miss"
    before.Compiler.misses after.Compiler.misses

let test_roster_digests_unique () =
  (* transcript-identity guard: structural sharing across the library would
     hand one kernel another's compile (names differ but artifacts would be
     shared), so the roster must be pairwise structurally distinct *)
  List.iter
    (fun variant ->
      let roster = Kernels.all variant @ Kernels.extras variant in
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (k : Kernel.t) ->
          let d = Kernel.structural_digest k in
          (match Hashtbl.find_opt tbl d with
          | Some other ->
              Alcotest.failf "%s and %s are structurally identical"
                other k.Kernel.name
          | None -> ());
          Hashtbl.add tbl d k.Kernel.name)
        roster)
    [ Kernels.picachu; Kernels.picachu_nli; Kernels.Baseline ]

(* ----------------------------------------------------- instrumentation *)

let test_per_pass_stats () =
  Compiler.reset_stats ();
  let k = Kernels.softmax Kernels.picachu in
  let t0 = Unix.gettimeofday () in
  (match Compiler.compile_result (opts ()) k with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "softmax failed: %s" (Picachu_error.to_string e));
  let elapsed = Unix.gettimeofday () -. t0 in
  let stats = Compiler.compile_stats () in
  (* the structural passes in pipeline order, then the on-demand
     format-selection pass (declared but not run by compile_result) *)
  Alcotest.(check (list string))
    "stats rows in declaration order"
    (Compiler.pass_names @ [ "select-format" ])
    (List.map (fun (s : Pipeline.pass_stats) -> s.Pipeline.pass) stats);
  let find name =
    List.find (fun (s : Pipeline.pass_stats) -> s.Pipeline.pass = name) stats
  in
  let counter name s =
    Option.value ~default:0
      (List.assoc_opt name (find s).Pipeline.counters)
  in
  (* 3 unroll candidates; softmax has 3 loops -> 9 per-loop pass runs *)
  Alcotest.(check int) "vectorize runs" 3 (find "vectorize").Pipeline.runs;
  Alcotest.(check int) "unroll runs" 3 (find "unroll").Pipeline.runs;
  Alcotest.(check int) "unroll candidates" 3 (counter "candidates" "unroll");
  Alcotest.(check int) "extract runs" 9 (find "extract").Pipeline.runs;
  Alcotest.(check int) "fuse runs" 9 (find "fuse").Pipeline.runs;
  Alcotest.(check int) "schedule runs" 9 (find "schedule").Pipeline.runs;
  Alcotest.(check bool) "fusion found matches" true
    (counter "matches" "fuse" > 0);
  Alcotest.(check bool) "mapper attempted an II per schedule run" true
    (counter "ii-attempts" "schedule" >= 9);
  List.iter
    (fun (s : Pipeline.pass_stats) ->
      Alcotest.(check bool) (s.Pipeline.pass ^ " wall time sane") true
        (s.Pipeline.wall_s >= 0.0))
    stats;
  (* pass bodies run sequentially inside the compile, so their recorded
     wall times sum to at most the observed end-to-end time *)
  let summed =
    List.fold_left (fun acc (s : Pipeline.pass_stats) -> acc +. s.Pipeline.wall_s)
      0.0 stats
  in
  Alcotest.(check bool) "per-pass wall times bounded by total" true
    (summed <= elapsed +. 1e-3)

let test_dump_after_roundtrip () =
  let k = Kernels.softmax Kernels.picachu in
  let dumps = ref [] in
  Pipeline.set_dump_after
    ~sink:(fun ~pass s -> dumps := (pass, s) :: !dumps)
    (Some "unroll");
  Fun.protect
    ~finally:(fun () ->
      Pipeline.set_dump_after ~sink:(fun ~pass:_ s -> print_string s) None)
    (fun () -> ignore (Compiler.compile_with_unroll (opts ()) 2 k));
  match !dumps with
  | [ ("unroll", text) ] ->
      let parsed = Kernel_text.of_string text in
      Alcotest.(check string)
        "--dump-after unroll round-trips to the transformed kernel"
        (Kernel.structural_digest (Transform.unroll_kernel 2 k))
        (Kernel.structural_digest parsed)
  | l -> Alcotest.failf "expected exactly one unroll dump, got %d" (List.length l)

let test_pass_failure_names_pass () =
  let k = Kernels.relu Kernels.picachu in
  let bad = { k with Kernel.outputs = [] } in
  match Compiler.compile_result (opts ()) bad with
  | Error (Picachu_error.Verification_failed { findings; _ }) ->
      Alcotest.(check bool) "finding names the offending pass" true
        (findings <> []
        && List.for_all
             (fun f ->
               String.length f > 6 && String.sub f 0 6 = "after ")
             findings)
  | _ -> Alcotest.fail "bad kernel passed the per-pass gate"

(* ------------------------------------------------------- explore dedup *)

let test_explore_memoization () =
  (* a design point no other test or experiment visits *)
  let evaluate () =
    ignore (Explore.evaluate ~rows:3 ~cols:4 ~cot_share:0.42 ())
  in
  let c0 = Compiler.compile_count () in
  evaluate ();
  let c1 = Compiler.compile_count () in
  evaluate ();
  let c2 = Compiler.compile_count () in
  Alcotest.(check bool) "first visit compiles" true (c1 > c0);
  Alcotest.(check int) "second visit is fully memoized" 0 (c2 - c1);
  (* and a whole sweep over an already-visited grid re-compiles nothing *)
  let sweep () =
    ignore (Explore.sweep ~sizes:[ (3, 4) ] ~cot_shares:[ 0.42; 0.5 ] ())
  in
  sweep ();
  let c3 = Compiler.compile_count () in
  sweep ();
  Alcotest.(check int) "repeat sweep is fully memoized" c3
    (Compiler.compile_count ())

(* ------------------------------------------------------------- goldens *)

let capture_stdout f =
  let path = Filename.temp_file "picachu_golden" ".txt" in
  let saved = Unix.dup Unix.stdout in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f;
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove path;
  s

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* the compiler-relevant subset of the experiments transcript, in the same
   order test/experiments_compiler.golden was assembled in; the cheap ids
   only — the full transcript is surrogate-dominated and diffed manually *)
let golden_ids =
  [ "tab4"; "fig7a"; "fig7b"; "fig7d"; "energy"; "noc"; "mapper"; "dse";
    "ablations" ]

let golden_path name =
  (* dune copies the golden next to the test executable; cwd varies between
     [dune runtest] and a direct [dune exec] *)
  if Sys.file_exists name then name
  else Filename.concat (Filename.dirname Sys.executable_name) name

let test_golden_transcript () =
  let got = capture_stdout (fun () -> List.iter Experiments.print golden_ids) in
  Alcotest.(check string) "experiments transcript byte-identical"
    (read_file (golden_path "experiments_compiler.golden")) got

let mappings_digest_pin = "53e6d6126400f51973ecc8d30a490aaf"

let test_golden_mappings_digest () =
  (* every mapping the compiler emits for the library roster, under all
     three option sets the experiments use, serialized placement by
     placement and pinned by digest: the pipeline refactor must not move a
     single op *)
  let buf = Buffer.create 4096 in
  let add name = function
    | Ok (c : Compiler.compiled) ->
        Buffer.add_string buf
          (Printf.sprintf "%s uf=%d vf=%d arch=%s\n" name c.Compiler.unroll
             c.Compiler.vector c.Compiler.arch_name);
        List.iter
          (fun (cl : Compiler.compiled_loop) ->
            let m = cl.Compiler.mapping in
            Buffer.add_string buf
              (Printf.sprintf "  %s ii=%d makespan=%d hops=%d |"
                 cl.Compiler.source.Kernel.label m.Mapper.ii m.Mapper.makespan
                 m.Mapper.routed_hops);
            Array.iter
              (fun (p : Mapper.placement) ->
                Buffer.add_string buf
                  (Printf.sprintf " %d@%d" p.Mapper.time p.Mapper.tile))
              m.Mapper.schedule;
            Buffer.add_char buf '\n')
          c.Compiler.loops
    | Error e ->
        Buffer.add_string buf
          (Printf.sprintf "%s ERROR %s\n" name (Picachu_error.to_string e))
  in
  let roster variant = Kernels.all variant @ Kernels.extras variant in
  List.iter
    (fun (prefix, variant, o) ->
      List.iter
        (fun (k : Kernel.t) ->
          add (prefix ^ "/" ^ k.Kernel.name) (Compiler.compile_result o k))
        (roster variant))
    [
      ("picachu", Kernels.picachu, Compiler.picachu_options ());
      ("baseline", Kernels.Baseline, Compiler.baseline_options ());
      ("picachu-v4", Kernels.picachu, Compiler.picachu_options ~vector:4 ());
    ];
  Alcotest.(check string) "all emitted mappings byte-identical to the seed"
    mappings_digest_pin
    (Digest.to_hex (Digest.string (Buffer.contents buf)))

let suite =
  [
    ( "pipeline",
      [
        Alcotest.test_case "memoized compile bit-identical" `Quick
          test_memo_bit_identical;
        Alcotest.test_case "renamed clone shares cache entry" `Quick
          test_renamed_clone_shares_entry;
        Alcotest.test_case "options change the cache address" `Quick
          test_options_change_address;
        Alcotest.test_case "digest stable across pool sizes" `Quick
          test_digest_stable_across_pools;
        Alcotest.test_case "unknown kernel adds no miss" `Quick
          test_unknown_kernel_no_miss;
        Alcotest.test_case "backend changes the cache address" `Quick
          test_backend_changes_address;
        Alcotest.test_case "nli roster compiles" `Slow test_nli_roster_compiles;
        Alcotest.test_case "lut capacity rejects oversized tables" `Quick
          test_lut_capacity_rejection;
        Alcotest.test_case "library roster structurally distinct" `Quick
          test_roster_digests_unique;
        Alcotest.test_case "per-pass stats account for the auto-tune" `Quick
          test_per_pass_stats;
        Alcotest.test_case "dump-after round-trips" `Quick
          test_dump_after_roundtrip;
        Alcotest.test_case "verify failure names the pass" `Quick
          test_pass_failure_names_pass;
        Alcotest.test_case "explore memoizes repeat design points" `Slow
          test_explore_memoization;
        Alcotest.test_case "golden: experiments transcript subset" `Slow
          test_golden_transcript;
        Alcotest.test_case "golden: emitted mappings digest" `Slow
          test_golden_mappings_digest;
      ] );
  ]
