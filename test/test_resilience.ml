(* Fault injection, the typed error channel, and graceful degradation:
   a [Fault.none] injector must be invisible (bit-identical to the hook-free
   executor path), unmappable compilations must carry per-candidate reasons
   and be cached negatively, serving must walk the fallback tier ladder and
   always answer, and fault campaigns must be bit-identical across
   domain-pool sizes. *)
open Picachu
module Kernels = Picachu_ir.Kernels
module Kernel = Picachu_ir.Kernel
module Interp = Picachu_ir.Interp
module Arch = Picachu_cgra.Arch
module Fault = Picachu_cgra.Fault
module Parallel = Picachu_parallel.Parallel
module Gpu = Picachu_llm.Gpu_model
module Mz = Picachu_llm.Model_zoo

let qtest = QCheck_alcotest.to_alcotest
let n = 24

let env_for (k : Kernel.t) =
  let arrays =
    List.map
      (fun name ->
        ( name,
          match name with
          | "angle" -> Array.init n (fun i -> (float_of_int i /. 20.0) -. 0.5)
          | _ -> Array.init n (fun i -> ((float_of_int (i * 7) /. 11.0) -. 3.0) /. 2.0) ))
      k.Kernel.inputs
  in
  { Interp.arrays; scalars = [ ("n", float_of_int n) ] }

let bits = Int64.bits_of_float

(* ------------------------------------------------ zero-fault determinism *)

let test_none_injector_invisible () =
  let opts = Compiler.picachu_options () in
  List.iter
    (fun name ->
      let compiled = Compiler.cached opts Kernels.picachu name in
      let env = env_for compiled.Compiler.kernel in
      let plain = (Hw_sim.run compiled env).Hw_sim.result in
      let inj = Fault.injector ~salt:3 Fault.none in
      let hooked = (Hw_sim.run ~fault:inj compiled env).Hw_sim.result in
      List.iter2
        (fun (na, a) (nb, b) ->
          Alcotest.(check string) "stream name" na nb;
          Array.iteri
            (fun i v ->
              if bits v <> bits b.(i) then
                Alcotest.failf "%s: %s[%d] differs under Fault.none" name na i)
            a)
        plain.Interp.out_arrays hooked.Interp.out_arrays;
      List.iter2
        (fun (na, a) (nb, b) ->
          Alcotest.(check string) "scalar name" na nb;
          if bits a <> bits b then Alcotest.failf "%s: scalar %s differs" name na)
        plain.Interp.out_scalars hooked.Interp.out_scalars;
      Alcotest.(check int)
        "no faults charged" 0
        (Fault.total (Fault.counts inj)))
    [ "relu"; "gelu"; "silu"; "softmax"; "layernorm"; "rmsnorm"; "rope" ]

(* ------------------------------------------------- typed compile failures *)

let test_unmappable_carries_reasons () =
  (* the Picachu-variant kernels need LUT/FP2FX tiles; the homogeneous
     baseline fabric has none, so every unroll candidate must fail and say
     why *)
  let opts = Compiler.picachu_options ~arch:(Arch.baseline ()) () in
  match Compiler.compile_result opts (Kernels.by_name Kernels.picachu "gelu") with
  | Ok _ -> Alcotest.fail "picachu gelu should not map on the baseline fabric"
  | Error (Picachu_error.Unmappable { kernel; reasons }) ->
      Alcotest.(check string) "kernel name" "gelu" kernel;
      Alcotest.(check (list int))
        "one reason per unroll candidate, in order" [ 1; 2; 4 ]
        (List.map fst reasons);
      List.iter
        (fun (uf, msg) ->
          if String.length msg = 0 then Alcotest.failf "empty reason for uf=%d" uf)
        reasons
  | Error e -> Alcotest.failf "unexpected error: %s" (Picachu_error.to_string e)

let test_unknown_kernel_typed () =
  match Compiler.cached_result (Compiler.picachu_options ()) Kernels.picachu "nope" with
  | Error (Picachu_error.Unknown_kernel "nope") -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Picachu_error.to_string e)
  | Ok _ -> Alcotest.fail "unknown kernel compiled?"

let test_negative_caching () =
  let opts = Compiler.picachu_options ~arch:(Arch.baseline ()) () in
  let expect_unmappable = function
    | Error (Picachu_error.Unmappable _) -> ()
    | Error e -> Alcotest.failf "unexpected error: %s" (Picachu_error.to_string e)
    | Ok _ -> Alcotest.fail "expected an unmappable kernel"
  in
  expect_unmappable (Compiler.cached_result opts Kernels.picachu "softmax");
  let before = Compiler.compile_count () in
  expect_unmappable (Compiler.cached_result opts Kernels.picachu "softmax");
  Alcotest.(check int)
    "failure answered from the cache, no recompilation" before
    (Compiler.compile_count ())

(* --------------------------------------------------- fallback tier ladder *)

let small_req = { Serving.prompt = 64; generate = 8 }

let check_tier msg expected tier =
  Alcotest.(check string) msg expected (Serving.tier_name tier)

let test_fallback_lands_on_baseline () =
  let cfg =
    { (Simulator.default_config ()) with Simulator.arch = Arch.baseline () }
  in
  let a = Serving.robust_costs cfg Mz.gpt2_xl small_req in
  check_tier "served by" "baseline-cgra" a.Serving.served_by;
  (match a.Serving.fallbacks with
  | [ f ] ->
      check_tier "failed tier" "fused" f.Serving.failed_tier;
      (match f.Serving.error with
      | Picachu_error.Unmappable _ -> ()
      | e -> Alcotest.failf "expected Unmappable, got %s" (Picachu_error.to_string e))
  | l -> Alcotest.failf "expected exactly one fallback, got %d" (List.length l));
  Alcotest.(check int) "structural failure: no retries" 0 a.Serving.retries

let fail_with e = fun _ -> raise (Picachu_error.Error e)

let test_fallback_lands_on_roofline () =
  let fused_calls = ref 0 in
  let a =
    Serving.robust_costs_with
      [
        ( Serving.Fused,
          fun r ->
            incr fused_calls;
            fail_with (Picachu_error.Mapping_failed "forced") r );
        (Serving.Baseline_cgra, fail_with (Picachu_error.Unknown_kernel "forced"));
        (Serving.Roofline, fun r -> Serving.gpu_costs Gpu.a100 Mz.gpt2_xl r);
      ]
      small_req
  in
  check_tier "served by" "roofline" a.Serving.served_by;
  Alcotest.(check int) "both CGRA tiers recorded" 2 (List.length a.Serving.fallbacks);
  Alcotest.(check (list string))
    "failure order" [ "fused"; "baseline-cgra" ]
    (List.map (fun f -> Serving.tier_name f.Serving.failed_tier) a.Serving.fallbacks);
  Alcotest.(check int) "structural errors are not retried" 1 !fused_calls

let test_all_tiers_failed_raises () =
  match
    Serving.robust_costs_with
      [
        (Serving.Fused, fail_with (Picachu_error.Mapping_failed "a"));
        (Serving.Baseline_cgra, fail_with (Picachu_error.Execution_fault "b"));
      ]
      small_req
  with
  | _ -> Alcotest.fail "expected All_tiers_failed"
  | exception Picachu_error.Error (Picachu_error.All_tiers_failed l) ->
      Alcotest.(check (list string))
        "every tier recorded" [ "fused"; "baseline-cgra" ] (List.map fst l)

let test_transient_errors_retried () =
  let attempts = ref 0 in
  let flaky r =
    incr attempts;
    if !attempts <= 2 then
      fail_with (Picachu_error.Execution_fault "bit flip") r
    else Serving.gpu_costs Gpu.a100 Mz.gpt2_xl r
  in
  let a =
    Serving.robust_costs_with ~budget:2 [ (Serving.Fused, flaky) ] small_req
  in
  check_tier "recovered in-tier" "fused" a.Serving.served_by;
  Alcotest.(check int) "retries counted" 2 a.Serving.retries;
  Alcotest.(check int) "no fallback recorded" 0 (List.length a.Serving.fallbacks)

(* ------------------------------------------------------ campaign behavior *)

let test_zero_rate_never_corrected =
  let compiled =
    Compiler.cached (Compiler.picachu_options ()) Kernels.picachu "gelu"
  in
  let env = env_for compiled.Compiler.kernel in
  qtest
    (QCheck.Test.make ~name:"zero-fault DMR is always Clean" ~count:30
       (QCheck.pair (QCheck.int_bound 500) (QCheck.int_bound 3))
       (fun (salt, budget) ->
         let t = Resilience.run_trial ~budget ~fault:Fault.none ~salt compiled env in
         t.Resilience.verdict = Resilience.Clean
         && Fault.total t.Resilience.injected = 0
         && t.Resilience.executions = 2))

let campaign_fault = Fault.uniform ~seed:77 0.01

let campaign_at_pool_size size =
  Parallel.with_pool ~size (fun () ->
      Resilience.campaign ~trials:3 ~n:16 ~kernels:[ "relu"; "gelu" ]
        ~fault:campaign_fault ())

let test_campaign_pool_size_invariant () =
  let s1 = campaign_at_pool_size 1 in
  let s2 = campaign_at_pool_size 2 in
  let s4 = campaign_at_pool_size 4 in
  Alcotest.(check bool) "pool 1 = pool 2" true (s1 = s2);
  Alcotest.(check bool) "pool 1 = pool 4" true (s1 = s4)

let test_campaign_pinned () =
  (* the campaign is a pure function of (seed, rate, roster): pin one point
     so a silent change to the sampling or salting scheme is caught *)
  let s = campaign_at_pool_size 2 in
  Alcotest.(check int) "trials" 6 s.Resilience.trials;
  Alcotest.(check int) "injected" 116 s.Resilience.injected;
  Alcotest.(check int) "detected" 6 s.Resilience.detected;
  Alcotest.(check int) "corrected" 1 s.Resilience.corrected;
  Alcotest.(check int) "silent" 0 s.Resilience.silent;
  Alcotest.(check int) "uncorrected" 5 s.Resilience.uncorrected;
  Alcotest.(check int) "executions" 44 s.Resilience.executions

let test_seeded_campaign_completes () =
  (* a positive-rate campaign must classify every trial, never raise *)
  let s =
    Resilience.campaign ~trials:2 ~n:16 ~fault:(Fault.uniform ~seed:5 0.002) ()
  in
  Alcotest.(check int) "all trials classified" s.Resilience.trials
    (s.Resilience.clean + s.Resilience.masked + s.Resilience.corrected
   + s.Resilience.silent + s.Resilience.uncorrected);
  Alcotest.(check bool) "faults were injected" true (s.Resilience.injected > 0)

let suite =
  [
    ( "resilience",
      [
        Alcotest.test_case "Fault.none is invisible" `Quick
          test_none_injector_invisible;
        Alcotest.test_case "unmappable reasons per candidate" `Quick
          test_unmappable_carries_reasons;
        Alcotest.test_case "unknown kernel typed" `Quick test_unknown_kernel_typed;
        Alcotest.test_case "negative caching" `Quick test_negative_caching;
        Alcotest.test_case "fallback lands on baseline" `Quick
          test_fallback_lands_on_baseline;
        Alcotest.test_case "fallback lands on roofline" `Quick
          test_fallback_lands_on_roofline;
        Alcotest.test_case "all tiers failed raises" `Quick
          test_all_tiers_failed_raises;
        Alcotest.test_case "transient errors retried" `Quick
          test_transient_errors_retried;
        test_zero_rate_never_corrected;
        Alcotest.test_case "campaign pool-size invariant" `Quick
          test_campaign_pool_size_invariant;
        Alcotest.test_case "campaign pinned point" `Quick test_campaign_pinned;
        Alcotest.test_case "seeded campaign completes" `Quick
          test_seeded_campaign_completes;
      ] );
  ]
