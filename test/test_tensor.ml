(* Unit and property tests for the tensor substrate: Rng, Tensor, Stats. *)
open Picachu_tensor

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------- Rng *)

let test_rng_deterministic () =
  let a = Rng.create 11 and b = Rng.create 11 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_int_range () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_rng_float_range () =
  let r = Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_uniform_bounds () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.uniform r ~lo:(-3.0) ~hi:5.0 in
    Alcotest.(check bool) "bounds" true (v >= -3.0 && v < 5.0)
  done

let test_rng_normal_moments () =
  let r = Rng.create 17 in
  let n = 50_000 in
  let samples = Array.init n (fun _ -> Rng.normal r ~mu:2.0 ~sigma:3.0) in
  let mean = Array.fold_left ( +. ) 0.0 samples /. float_of_int n in
  let var =
    Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 samples /. float_of_int n
  in
  check_close 0.1 "mean" 2.0 mean;
  check_close 0.3 "variance" 9.0 var

let test_rng_split_diverges () =
  let a = Rng.create 4 in
  let b = Rng.split a in
  let xa = Rng.int64 a and xb = Rng.int64 b in
  Alcotest.(check bool) "split streams differ" true (xa <> xb)

let test_rng_copy () =
  let a = Rng.create 8 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_rng_shuffle_permutation () =
  let r = Rng.create 21 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_laplace_median () =
  let r = Rng.create 33 in
  let n = 20_000 in
  let below = ref 0 in
  for _ = 1 to n do
    if Rng.laplace r ~mu:1.0 ~b:2.0 < 1.0 then incr below
  done;
  check_close 0.03 "median at mu" 0.5 (float_of_int !below /. float_of_int n)

let test_rng_int_invalid () =
  let r = Rng.create 1 in
  Alcotest.check_raises "n = 0" (Invalid_argument "Rng.int: n must be > 0")
    (fun () -> ignore (Rng.int r 0));
  Alcotest.check_raises "n = -1" (Invalid_argument "Rng.int: n must be > 0")
    (fun () -> ignore (Rng.int r (-1)));
  (* the failed draws must not have advanced the stream *)
  Alcotest.(check int) "stream unchanged by failed draws"
    (Rng.int (Rng.create 1) 7) (Rng.int r 7)

(* splitmix64's finalizer is a bijection fixing 0, so the draw whose
   pre-mix state is exactly 0 outputs raw 0 — i.e. [float] = 0.0.  Seeding
   with -2*golden_gamma (mod 2^64) puts the *second* draw there. *)
let laplace_corner_seed = -4354685564936845354

let test_rng_laplace_corner () =
  (* premise: the seed really forces the corner *)
  let r = Rng.create laplace_corner_seed in
  ignore (Rng.float r);
  check_float "second float draw is exactly 0.0" 0.0 (Rng.float r);
  (* at [float] = 0.0 the inverse-CDF argument is log 0. unclamped; the
     draw must now be finite (deep in the left tail), not -inf *)
  let r = Rng.create laplace_corner_seed in
  ignore (Rng.float r);
  let v = Rng.laplace r ~mu:0.0 ~b:1.0 in
  Alcotest.(check bool) "laplace finite at the forced corner" true
    (Float.is_finite v);
  Alcotest.(check bool) "corner draw lands in the deep left tail" true
    (v < -100.0)

let prop_distributions_finite =
  QCheck.Test.make ~name:"laplace/normal/uniform draws always finite"
    ~count:500 QCheck.int (fun seed ->
      let r = Rng.create seed in
      let ok v = Float.is_finite v in
      List.for_all Fun.id
        (List.init 50 (fun _ ->
             ok (Rng.laplace r ~mu:0.0 ~b:2.0)
             && ok (Rng.normal r ~mu:0.0 ~sigma:3.0)
             && ok (Rng.uniform r ~lo:(-5.0) ~hi:5.0))))

(* ---------------------------------------------------------------- Tensor *)

let test_create_shape () =
  let t = Tensor.create [ 3; 4 ] in
  Alcotest.(check (list int)) "shape" [ 3; 4 ] (Tensor.shape t);
  Alcotest.(check int) "numel" 12 (Tensor.numel t);
  check_float "zeroed" 0.0 (Tensor.get t 7)

let test_create_invalid () =
  Alcotest.check_raises "empty shape" (Invalid_argument "Tensor: empty shape") (fun () ->
      ignore (Tensor.create []));
  Alcotest.check_raises "negative dim" (Invalid_argument "Tensor: negative dimension")
    (fun () -> ignore (Tensor.create [ 2; -1 ]))

let test_of_array_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Tensor.of_array: shape/data mismatch") (fun () ->
      ignore (Tensor.of_array [ 2; 2 ] [| 1.0; 2.0 |]))

let test_get2_set2 () =
  let t = Tensor.create [ 2; 3 ] in
  Tensor.set2 t 1 2 5.0;
  check_float "get2" 5.0 (Tensor.get2 t 1 2);
  check_float "flat layout" 5.0 (Tensor.get t 5)

let test_matmul_known () =
  let a = Tensor.of_array [ 2; 3 ] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let b = Tensor.of_array [ 3; 2 ] [| 7.; 8.; 9.; 10.; 11.; 12. |] in
  let c = Tensor.matmul a b in
  Alcotest.(check (list int)) "shape" [ 2; 2 ] (Tensor.shape c);
  check_float "c00" 58.0 (Tensor.get2 c 0 0);
  check_float "c01" 64.0 (Tensor.get2 c 0 1);
  check_float "c10" 139.0 (Tensor.get2 c 1 0);
  check_float "c11" 154.0 (Tensor.get2 c 1 1)

let test_matmul_dim_mismatch () =
  let a = Tensor.create [ 2; 3 ] and b = Tensor.create [ 4; 2 ] in
  Alcotest.check_raises "inner mismatch"
    (Invalid_argument "Tensor.matmul: inner dimension mismatch") (fun () ->
      ignore (Tensor.matmul a b))

let test_transpose_known () =
  let a = Tensor.of_array [ 2; 3 ] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let t = Tensor.transpose a in
  Alcotest.(check (list int)) "shape" [ 3; 2 ] (Tensor.shape t);
  check_float "t01" 4.0 (Tensor.get2 t 0 1);
  check_float "t20" 3.0 (Tensor.get2 t 2 0)

let test_row_ops () =
  let a = Tensor.of_array [ 2; 3 ] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let r = Tensor.row a 1 in
  check_float "row read" 5.0 (Tensor.get r 1);
  Tensor.set_row a 0 (Tensor.of_array [ 3 ] [| 9.; 8.; 7. |]);
  check_float "row written" 8.0 (Tensor.get2 a 0 1)

let test_concat_cols () =
  let a = Tensor.of_array [ 2; 2 ] [| 1.; 2.; 3.; 4. |] in
  let b = Tensor.of_array [ 2; 1 ] [| 5.; 6. |] in
  let c = Tensor.concat_cols a b in
  Alcotest.(check (list int)) "shape" [ 2; 3 ] (Tensor.shape c);
  check_float "left kept" 3.0 (Tensor.get2 c 1 0);
  check_float "right appended" 6.0 (Tensor.get2 c 1 2)

let test_reductions () =
  let t = Tensor.of_array [ 4 ] [| 1.0; -2.0; 3.5; 0.5 |] in
  check_float "sum" 3.0 (Tensor.sum t);
  check_float "max" 3.5 (Tensor.max_value t);
  check_float "min" (-2.0) (Tensor.min_value t);
  check_float "mean" 0.75 (Tensor.mean t);
  Alcotest.(check int) "argmax" 2 (Tensor.argmax t)

let test_variance () =
  let t = Tensor.of_array [ 4 ] [| 2.0; 4.0; 4.0; 6.0 |] in
  check_float "population variance" 2.0 (Tensor.variance t)

let test_reshape () =
  let t = Tensor.of_array [ 2; 3 ] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let r = Tensor.reshape t [ 3; 2 ] in
  check_float "storage shared" 4.0 (Tensor.get2 r 1 1);
  Alcotest.check_raises "size mismatch" (Invalid_argument "Tensor.reshape: size mismatch")
    (fun () -> ignore (Tensor.reshape t [ 4; 2 ]))

let test_equal_eps () =
  let a = Tensor.of_array [ 2 ] [| 1.0; 2.0 |] in
  let b = Tensor.of_array [ 2 ] [| 1.0; 2.0005 |] in
  Alcotest.(check bool) "within eps" true (Tensor.equal ~eps:1e-3 a b);
  Alcotest.(check bool) "outside eps" false (Tensor.equal ~eps:1e-6 a b);
  Alcotest.(check bool) "shape differs" false
    (Tensor.equal a (Tensor.of_array [ 1; 2 ] [| 1.0; 2.0 |]))

let tensor_gen =
  QCheck.Gen.(
    sized_size (int_range 1 20) (fun n ->
        map
          (fun l -> Tensor.of_array [ n ] (Array.of_list l))
          (list_repeat n (float_range (-100.0) 100.0))))

let arb_tensor = QCheck.make ~print:(Fmt.to_to_string Tensor.pp) tensor_gen

let prop_scale_linearity =
  QCheck.Test.make ~name:"scale distributes over add" ~count:200
    (QCheck.pair arb_tensor (QCheck.float_range (-10.0) 10.0))
    (fun (t, s) ->
      let lhs = Tensor.scale s (Tensor.add t t) in
      let rhs = Tensor.add (Tensor.scale s t) (Tensor.scale s t) in
      Tensor.equal ~eps:1e-6 lhs rhs)

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose is an involution" ~count:100
    (QCheck.pair (QCheck.int_range 1 8) (QCheck.int_range 1 8))
    (fun (m, n) ->
      let r = Rng.create (m + (100 * n)) in
      let t = Tensor.randn r [ m; n ] ~mu:0.0 ~sigma:1.0 in
      Tensor.equal t (Tensor.transpose (Tensor.transpose t)))

let prop_matmul_identity =
  QCheck.Test.make ~name:"matmul by identity" ~count:100 (QCheck.int_range 1 8)
    (fun n ->
      let r = Rng.create n in
      let a = Tensor.randn r [ n; n ] ~mu:0.0 ~sigma:1.0 in
      let id = Tensor.init [ n; n ] (fun k -> if k / n = k mod n then 1.0 else 0.0) in
      Tensor.equal ~eps:1e-9 a (Tensor.matmul a id))

let prop_dot_symmetric =
  QCheck.Test.make ~name:"dot is symmetric" ~count:200 (QCheck.pair arb_tensor arb_tensor)
    (fun (a, b) ->
      QCheck.assume (Tensor.numel a = Tensor.numel b);
      Float.abs (Tensor.dot a b -. Tensor.dot b a) < 1e-9)

(* ----------------------------------------------------------------- Stats *)

let test_compare_exact () =
  let r =
    Stats.compare_fn ~n:100 ~lo:(-1.0) ~hi:1.0 ~reference:sin ~candidate:sin ()
  in
  check_float "zero error" 0.0 r.Stats.max_abs

let test_compare_known_offset () =
  let r =
    Stats.compare_fn ~n:16 ~lo:0.0 ~hi:1.0 ~reference:(fun x -> x)
      ~candidate:(fun x -> x +. 0.5)
      ()
  in
  check_float "max abs" 0.5 r.Stats.max_abs;
  check_float "mean abs" 0.5 r.Stats.mean_abs;
  check_float "rmse" 0.5 r.Stats.rmse

let test_compare_tensors_shape () =
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Stats.compare_tensors: shape mismatch") (fun () ->
      ignore
        (Stats.compare_tensors ~reference:(Tensor.create [ 2 ])
           ~candidate:(Tensor.create [ 3 ])))

let test_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.geomean: empty") (fun () ->
      ignore (Stats.geomean []));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive element") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_percentile () =
  let a = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "median" 2.5 (Stats.percentile a 50.0);
  check_float "min" 1.0 (Stats.percentile a 0.0);
  check_float "max" 4.0 (Stats.percentile a 100.0);
  (* interpolated positions: p sits fractionally between two sorted ranks *)
  check_float "p25" 1.75 (Stats.percentile a 25.0);
  check_float "p95" 3.85 (Stats.percentile a 95.0);
  let b = Array.init 100 (fun i -> float_of_int (99 - i)) in
  check_float "p99 of 0..99" 98.01 (Stats.percentile b 99.0);
  check_float "p1 of 0..99" 0.99 (Stats.percentile b 1.0);
  (* Float.compare gives a total order: NaNs sort below every real value
     instead of scrambling the sort like polymorphic compare could *)
  let withnan = [| 2.0; Float.nan; 1.0 |] in
  Alcotest.(check bool) "nan sorts first" true
    (Float.is_nan (Stats.percentile withnan 0.0));
  check_float "reals keep order above nan" 2.0 (Stats.percentile withnan 100.0)

let test_percentile_endpoints_small () =
  (* endpoint percentiles on the smallest arrays: the rank interpolation
     must degenerate cleanly (n-1 = 0 and 1) *)
  let one = [| 42.0 |] in
  check_float "p0 singleton" 42.0 (Stats.percentile one 0.0);
  check_float "p100 singleton" 42.0 (Stats.percentile one 100.0);
  check_float "p50 singleton" 42.0 (Stats.percentile one 50.0);
  let two = [| 7.0; 3.0 |] in
  check_float "p0 pair" 3.0 (Stats.percentile two 0.0);
  check_float "p100 pair" 7.0 (Stats.percentile two 100.0);
  check_float "p50 pair" 5.0 (Stats.percentile two 50.0)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    (QCheck.pair arb_tensor (QCheck.pair (QCheck.float_range 0.0 100.0) (QCheck.float_range 0.0 100.0)))
    (fun (t, (p1, p2)) ->
      let a = Tensor.data t in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile a lo <= Stats.percentile a hi +. 1e-9)

let suite =
  [
    ( "rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "int range" `Quick test_rng_int_range;
        Alcotest.test_case "float range" `Quick test_rng_float_range;
        Alcotest.test_case "uniform bounds" `Quick test_rng_uniform_bounds;
        Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
        Alcotest.test_case "split diverges" `Quick test_rng_split_diverges;
        Alcotest.test_case "copy" `Quick test_rng_copy;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
        Alcotest.test_case "laplace median" `Quick test_rng_laplace_median;
        Alcotest.test_case "int invalid n" `Quick test_rng_int_invalid;
        Alcotest.test_case "laplace forced corner" `Quick test_rng_laplace_corner;
        qtest prop_distributions_finite;
      ] );
    ( "tensor",
      [
        Alcotest.test_case "create/shape" `Quick test_create_shape;
        Alcotest.test_case "create invalid" `Quick test_create_invalid;
        Alcotest.test_case "of_array mismatch" `Quick test_of_array_mismatch;
        Alcotest.test_case "get2/set2" `Quick test_get2_set2;
        Alcotest.test_case "matmul known" `Quick test_matmul_known;
        Alcotest.test_case "matmul mismatch" `Quick test_matmul_dim_mismatch;
        Alcotest.test_case "transpose known" `Quick test_transpose_known;
        Alcotest.test_case "row ops" `Quick test_row_ops;
        Alcotest.test_case "concat_cols" `Quick test_concat_cols;
        Alcotest.test_case "reductions" `Quick test_reductions;
        Alcotest.test_case "variance" `Quick test_variance;
        Alcotest.test_case "reshape" `Quick test_reshape;
        Alcotest.test_case "equal eps" `Quick test_equal_eps;
        qtest prop_scale_linearity;
        qtest prop_transpose_involution;
        qtest prop_matmul_identity;
        qtest prop_dot_symmetric;
      ] );
    ( "stats",
      [
        Alcotest.test_case "compare exact" `Quick test_compare_exact;
        Alcotest.test_case "compare offset" `Quick test_compare_known_offset;
        Alcotest.test_case "compare shape" `Quick test_compare_tensors_shape;
        Alcotest.test_case "geomean" `Quick test_geomean;
        Alcotest.test_case "percentile" `Quick test_percentile;
        Alcotest.test_case "percentile endpoints small" `Quick
          test_percentile_endpoints_small;
        qtest prop_percentile_monotone;
      ] );
  ]
