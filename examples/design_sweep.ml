(* Design-space exploration walkthrough: sweep CGRA configurations, find the
   Pareto frontier, and audit the chosen point's interconnect and register
   pressure — the studies an architect runs before committing to the 4x4
   heterogeneous fabric the paper ships.

   Run with: dune exec examples/design_sweep.exe *)

module Arch = Picachu_cgra.Arch
module Noc = Picachu_cgra.Noc
module Rf = Picachu_cgra.Rf
module Kernels = Picachu_ir.Kernels
open Picachu

let () =
  (* 1. sweep grid sizes x CoT shares *)
  let points = Explore.sweep () in
  let front = Explore.pareto points in
  Printf.printf "%d design points, %d on the Pareto frontier:\n" (List.length points)
    (List.length front);
  List.iter
    (fun (p : Explore.point) ->
      Printf.printf "  %-16s %.3f mm2  %.3f elems/cyc  (%.3f /mm2)\n"
        p.Explore.arch_name p.Explore.area_mm2 p.Explore.geomean_throughput
        p.Explore.perf_per_area)
    front;

  (* 2. the paper's operating point *)
  let r = Explore.reference_point () in
  Printf.printf "\npaper operating point %s: %.3f elems/cyc at %.3f mm2%s\n"
    r.Explore.arch_name r.Explore.geomean_throughput r.Explore.area_mm2
    (if List.exists (fun (q : Explore.point) -> q.Explore.arch_name = r.Explore.arch_name) front
     then " — on the frontier"
     else "");

  (* 3. audit its mappings: link contention and register pressure *)
  print_endline "\naudits of the chosen fabric (worst loop per kernel):";
  let opts = Compiler.picachu_options () in
  List.iter
    (fun (k : Picachu_ir.Kernel.t) ->
      let c = Compiler.cached opts Kernels.picachu k.Picachu_ir.Kernel.name in
      let worst_link, worst_rf =
        List.fold_left
          (fun (wl, wr) (cl : Compiler.compiled_loop) ->
            let noc = Noc.analyze c.Compiler.arch cl.Compiler.dfg cl.Compiler.mapping in
            let rf = Rf.analyze c.Compiler.arch cl.Compiler.dfg cl.Compiler.mapping in
            ( Stdlib.max wl noc.Noc.max_link_load,
              Stdlib.max wr rf.Rf.max_tile_registers ))
          (0, 0) c.Compiler.loops
      in
      Printf.printf "  %-10s max link load %d, max tile registers %d\n"
        k.Picachu_ir.Kernel.name worst_link worst_rf)
    (List.filter
       (fun (k : Picachu_ir.Kernel.t) -> k.Picachu_ir.Kernel.name <> "softmax_online")
       (Kernels.all Kernels.picachu))
