(* The user-defined precision knob (§3.2.3): sweep the Taylor order and the
   data format and watch the accuracy/cost trade-off move — on the operator,
   on the CGRA mapping, and on a surrogate LLM's perplexity.

   Run with: dune exec examples/precision_sweep.exe *)

module Taylor = Picachu_numerics.Taylor
module Approx = Picachu_numerics.Approx
module Kernels = Picachu_ir.Kernels
module Dfg = Picachu_dfg.Dfg
module Mz = Picachu_llm.Model_zoo
module Surrogate = Picachu_llm.Surrogate
module Ppl = Picachu_llm.Ppl
module Rng = Picachu_tensor.Rng
open Picachu

let worst_exp_error order =
  let worst = ref 0.0 in
  for i = 0 to 999 do
    let x = (float_of_int i /. 40.0) -. 22.0 in
    let e = exp x in
    worst := Float.max !worst (Float.abs (e -. Taylor.exp ~cfg:{ Taylor.order } x) /. e)
  done;
  !worst

let () =
  print_endline "Taylor order sweep on the exponential operator:";
  print_endline "order  worst-rel-err  dfg-nodes  cycles/elem (4x4 CGRA)";
  let opts = Compiler.picachu_options () in
  List.iter
    (fun order ->
      let k = Kernels.exp_kernel ~order Kernels.picachu in
      let c = Compiler.compile_with_unroll opts 1 k in
      let nodes =
        List.fold_left (fun acc cl -> acc + Dfg.node_count cl.Compiler.dfg) 0
          c.Compiler.loops
      in
      Printf.printf "  %d     %.2e       %2d        %.2f\n" order (worst_exp_error order)
        nodes
        (float_of_int (Compiler.pass_cycles c ~n:1024) /. 1024.0))
    [ 2; 3; 4; 6; 8 ];

  print_endline "\nData-format sweep on a GPT2-class surrogate (perplexity):";
  let sur = Surrogate.create ~seed:42 (Surrogate.surrogate_of Mz.gpt2_xl) in
  let stream = Surrogate.sample sur (Rng.create 7) ~temperature:0.4 ~len:48 () in
  List.iter
    (fun (b : Approx.t) ->
      Printf.printf "  %-20s PPL %.4f\n" b.Approx.name (Ppl.ppl sur b stream))
    [
      Approx.exact;
      Approx.fp16_reference;
      Approx.ours_fp ~order:8 ();
      Approx.ours_fp ~order:4 ();
      Approx.ours_fp ~order:2 ();
      Approx.ours_int ();
    ];

  print_endline "\nVectorization (INT16, 4 lanes) per kernel at seq-1024 passes:";
  let scalar = Compiler.picachu_options () in
  let vec = Compiler.picachu_options ~vector:4 () in
  List.iter
    (fun name ->
      let s = Compiler.pass_cycles (Compiler.cached scalar Kernels.picachu name) ~n:1024 in
      let v = Compiler.pass_cycles (Compiler.cached vec Kernels.picachu name) ~n:1024 in
      Printf.printf "  %-10s FP %5d cyc  INT16 %5d cyc  (%.2fx)\n" name s v
        (float_of_int s /. float_of_int v))
    [ "softmax"; "gelu"; "silu"; "layernorm"; "rope" ]
