(* The full Figure 6 pipeline, front to back: a transformer block arrives as
   framework-level tensor instructions (every nonlinearity spelled out in
   primitives), the pattern matcher recognizes the Table 1 operations, the
   offload pass splits the work between systolic array and CGRA, and each
   offloaded kernel compiles down to a mapped, cycle-verified configuration.

   Run with: dune exec examples/compile_model.exe *)

open Picachu_frontend
module Mz = Picachu_llm.Model_zoo
module Registry = Picachu_nonlinear.Registry
module Kernels = Picachu_ir.Kernels
module Mapper = Picachu_cgra.Mapper
open Picachu

let () =
  let model = Mz.llama2_7b in
  let seq = 128 in

  (* 1. the "PyTorch model": one block as primitive tensor instructions *)
  let program = Layer_builder.transformer_block model ~seq in
  Printf.printf "framework program: %d tensor instructions\n"
    (List.length program.Tensor_ir.instrs);

  (* 2. pattern matching (§4.3): collapse nonlinear subgraphs *)
  let matched = Patterns.rewrite program in
  Printf.printf "after pattern matching: %d instructions, nonlinears:"
    (List.length matched.Tensor_ir.instrs);
  List.iter
    (fun (i : Tensor_ir.tinstr) ->
      match i.Tensor_ir.op with
      | Tensor_ir.TNonlinear op -> Printf.printf " %s" (Registry.name op)
      | _ -> ())
    matched.Tensor_ir.instrs;
  print_newline ();
  assert (Patterns.unmatched_primitives matched = []);

  (* 3. offload: systolic vs CGRA *)
  let plan = Offload.offload matched in
  Format.printf "%a" Offload.pp plan;

  (* 4. compile every offloaded nonlinear kernel onto the CGRA *)
  let opts = Compiler.picachu_options () in
  List.iter
    (function
      | Offload.Nonlinear { op; rows; dim; _ } ->
          let compiled = Compiler.cached opts Kernels.picachu (Registry.name op) in
          let per_channel = Compiler.per_channel_cycles compiled ~dim in
          Printf.printf "  %s: UF=%d, %d cycles/channel, %d channels -> %.2f Mcycles\n"
            (Registry.name op) compiled.Compiler.unroll per_channel rows
            (float_of_int (per_channel * rows) /. 1e6)
      | _ -> ())
    plan;

  (* 5. and verify one of them on the cycle-accurate fabric *)
  let compiled = Compiler.cached opts Kernels.picachu "rmsnorm" in
  let xs = Array.init 64 (fun i -> (float_of_int i /. 7.0) -. 4.0) in
  let env =
    { Picachu_ir.Interp.arrays = [ ("x", xs) ]; scalars = [ ("n", 64.0) ] }
  in
  let hw = Hw_sim.run compiled env in
  Printf.printf
    "rmsnorm executed on the configured fabric: %d cycles, %d config words\n"
    hw.Hw_sim.total_cycles
    (Hw_sim.config_words compiled)
