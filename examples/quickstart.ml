(* Quickstart: compile a nonlinear kernel onto the PICACHU CGRA and check
   it against the float64 reference.

   Run with: dune exec examples/quickstart.exe *)

module Kernels = Picachu_ir.Kernels
module Kernel = Picachu_ir.Kernel
module Interp = Picachu_ir.Interp
module Arch = Picachu_cgra.Arch
module Mapper = Picachu_cgra.Mapper
open Picachu

let () =
  (* 1. Pick a kernel from the Table 1 library: softmax, in its PICACHU
     form (FP2FX special unit + Taylor expansion). *)
  let kernel = Kernels.softmax Kernels.picachu in
  Format.printf "Kernel IR:@.%a@." Kernel.pp kernel;

  (* 2. Compile it: vectorize/unroll -> DFG -> fuse -> modulo-schedule onto
     the heterogeneous 4x4 CGRA. The unroll factor is auto-tuned. *)
  let opts = Compiler.picachu_options () in
  let compiled = Compiler.compile opts kernel in
  Printf.printf "Compiled with unroll factor %d onto %s:\n" compiled.Compiler.unroll
    compiled.Compiler.arch_name;
  List.iter
    (fun (cl : Compiler.compiled_loop) ->
      Printf.printf "  %-12s II=%d makespan=%d tiles-used=%d/16\n"
        cl.Compiler.source.Kernel.label cl.Compiler.mapping.Mapper.ii
        cl.Compiler.mapping.Mapper.makespan
        (let tiles = Hashtbl.create 16 in
         Array.iter
           (fun (p : Mapper.placement) -> Hashtbl.replace tiles p.Mapper.tile ())
           cl.Compiler.mapping.Mapper.schedule;
         Hashtbl.length tiles))
    compiled.Compiler.loops;
  let n = 1024 in
  Printf.printf "One pass over %d elements: %d cycles (%.2f cycles/element)\n" n
    (Compiler.pass_cycles compiled ~n)
    (float_of_int (Compiler.pass_cycles compiled ~n) /. float_of_int n);

  (* 3. Execute the kernel in the reference interpreter and compare with
     exact softmax. *)
  let xs = Array.init 16 (fun i -> (float_of_int i /. 3.0) -. 2.5) in
  let res =
    Interp.run kernel
      { Interp.arrays = [ ("x", xs) ]; scalars = [ ("n", 16.0) ] }
  in
  let y = List.assoc "y" res.Interp.out_arrays in
  let exact = Picachu_nonlinear.Softmax.exact_row xs in
  let worst = ref 0.0 in
  Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. exact.(i)))) y;
  Printf.printf "Max error vs float64 softmax: %.3e\n" !worst;

  (* 4. Compare against the homogeneous baseline CGRA of the paper's
     Figure 7a. *)
  let baseline =
    Compiler.compile (Compiler.baseline_options ()) (Kernels.softmax Kernels.Baseline)
  in
  Printf.printf "Baseline CGRA pass: %d cycles -> speedup %.2fx\n"
    (Compiler.pass_cycles baseline ~n)
    (float_of_int (Compiler.pass_cycles baseline ~n)
    /. float_of_int (Compiler.pass_cycles compiled ~n))
