(* Fault injection and graceful degradation, end to end: run a seeded DMR
   fault campaign over the kernel roster on the cycle-level executor, then
   serve a batch of requests while the fused tier is forced to fail and show
   that every request is still answered (availability 1.0).

   Run with: dune exec examples/fault_campaign.exe [rate] [seed]
   (defaults: rate 0.001, seed 42; PICACHU_FAULT_RATE / PICACHU_FAULT_SEED
   are honored when no arguments are given) *)

module Fault = Picachu_cgra.Fault
module Arch = Picachu_cgra.Arch
module Mz = Picachu_llm.Model_zoo
open Picachu

let () =
  let fault =
    match Sys.argv with
    | [| _ |] ->
        let f = Fault.of_env () in
        if Fault.enabled f then f else Fault.uniform ~seed:42 0.001
    | [| _; rate |] -> Fault.uniform ~seed:42 (float_of_string rate)
    | [| _; rate; seed |] ->
        Fault.uniform ~seed:(int_of_string seed) (float_of_string rate)
    | _ -> failwith "usage: fault_campaign [rate] [seed]"
  in

  (* 1. the campaign: every trial runs the compiled kernel twice per round
     (DMR), compares bit-for-bit, and re-executes on disagreement *)
  Printf.printf "campaign: uniform per-site fault rate %g, seed %d\n"
    fault.Fault.rf_rate fault.Fault.seed;
  let stats = Resilience.campaign ~fault () in
  Format.printf "  %a@." Resilience.pp_stats stats;

  (* 2. graceful degradation: deploy the fused (Picachu-variant) kernels on
     the homogeneous baseline fabric, where their LUT/FP2FX tiles do not
     exist.  The fused tier is structurally unmappable, so every request
     falls through to the baseline CGRA — and is still answered. *)
  let cfg =
    { (Simulator.default_config ()) with Simulator.arch = Arch.baseline () }
  in
  let requests =
    List.init 6 (fun i -> { Serving.prompt = 128 + (64 * i); generate = 32 })
  in
  let answered = ref 0 in
  Printf.printf "serving with the fused fabric degraded:\n";
  List.iter
    (fun r ->
      let a = Serving.robust_costs cfg Mz.gpt2_xl r in
      incr answered;
      Printf.printf
        "  prompt %4d: served by %-13s (%d fallback, %d retries)  ttft %.1f ms\n"
        r.Serving.prompt
        (Serving.tier_name a.Serving.served_by)
        (List.length a.Serving.fallbacks)
        a.Serving.retries
        (a.Serving.r_summary.Serving.ttft_s *. 1e3))
    requests;
  Printf.printf "availability: %d/%d = %.2f\n" !answered (List.length requests)
    (float_of_int !answered /. float_of_int (List.length requests))
