(** Unified interface over nonlinear-operator evaluation backends.

    A backend bundles the element-wise primitives every Table 1 nonlinear
    operation is built from, at a given arithmetic fidelity.  The nonlinear
    operator library (lib/nonlinear) is written once against this vtable and
    evaluated under: the float64 software reference, the PICACHU algorithm in
    FP16 and INT16 (paper Tables 5/6), and the I-BERT / gemmlowp baselines
    (paper Table 2). *)

type t = {
  name : string;
  format : float array -> float array;
      (** value-level effect of the I/O data format (FP16 rounding, INT
          quantization grid, ...) applied to operator inputs and outputs *)
  exp_shifted : float array -> float array;
      (** [exp (x_i - max_j x_j)] — the softmax numerator *)
  gelu : float array -> float array;
  silu : float array -> float array;
  relu : float array -> float array;
  sin : float -> float;
  cos : float -> float;
  div : float -> float -> float;
  isqrt : float -> float;
}

type prims = {
  p_name : string;
  p_format : float array -> float array;
  p_exp_shifted : float -> float;
      (** [exp d] for a max-shifted argument [d <= 0] *)
  p_gelu : float -> float;  (** on an already-formatted input *)
  p_silu : float -> float;
  p_sin : float -> float;
  p_cos : float -> float;
  p_div : float -> float -> float;
  p_isqrt : float -> float;
}
(** The pluggable backend signature: one scalar primitive per Table 1
    building block at the backend's fidelity (rounding included).  The
    Taylor engine and the NLI interpolation engine are both instances. *)

val of_prims : prims -> t
(** Lift the scalar primitives into a full backend: [of_prims] supplies the
    vector plumbing every instance shares (apply the I/O format, shift the
    softmax numerator by the running maximum, map element-wise). *)

val taylor_fp_prims : ?order:int -> unit -> prims
val taylor_int_prims : unit -> prims
val nli_fp_prims : unit -> prims
val nli_int_prims : unit -> prims

val exact : t
(** Float64 software reference (exact Phi for GeLU). *)

val fp16_reference : t
(** The paper's "FP16" baseline rows: exact operator mathematics (FP32
    accumulation, as cuBLAS/cuDNN provide) behind FP16 I/O. *)

val ours_fp : ?order:int -> unit -> t
(** PICACHU algorithm, FP16 I/O, FP32 intermediates, Taylor order [order]
    (default 6), GeLU through the CoT LUT. *)

val ours_int : ?order:int -> unit -> t
(** PICACHU algorithm, dynamic per-tensor INT16 I/O, fixed-point
    intermediates. [order] is accepted for interface symmetry; the fixed
    datapath uses order 6. *)

val nli_fp : unit -> t
(** NLI backend, FP16 I/O, FP32 intermediates: non-uniform error-equalized
    segment tables ({!Nli.standard}) with range-reduced lookups instead of
    Taylor expansions. *)

val nli_int : unit -> t
(** NLI backend over the dynamic per-tensor INT16 I/O grid. *)

val ibert : t
(** I-BERT INT8 baseline. *)

val gemmlowp : t
(** gemmlowp fixed-point baseline (static INT16 grid). *)

val all_backends : t list
(** The seven backends above, in presentation order (exact, the two Taylor
    instances, the two NLI instances, the two baselines). *)

val hybrid : name:string -> base:t -> damaged:t -> only:[ `Softmax | `Activation | `Norm | `Rope ] -> t
(** Attribution tool: [base] everywhere except the chosen operator family,
    which uses [damaged] — isolates how much each nonlinear operation
    contributes to end-to-end accuracy loss. *)

val gelu_tanh_exact : float -> float
(** Reference tanh-form GeLU (Table 1's definition) in float64. *)

val silu_exact : float -> float
