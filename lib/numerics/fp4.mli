(** 4-bit minifloat (OCP MX FP4, E2M1 layout).

    1 sign, 2 exponent, 1 mantissa, bias 1.  All 16 codes are finite — no
    infinity and no NaN: the positive magnitudes are 0, 0.5, 1, 1.5, 2, 3,
    4, 6.  Conversions round to nearest, ties to even, and saturate finite
    and infinite inputs past ±6 to ±6; NaN maps to (positive) zero, the
    convention of formats with no better encoding. *)

val max_value : float
(** 6.0 — the largest finite magnitude. *)

val min_positive_subnormal : float
(** 0.5. *)

val of_float : float -> int
(** RNE into the 4-bit encoding (0..0xF), saturating; sign of zero
    preserved. *)

val to_float : int -> float
(** Decode; only the low 4 bits are read. *)

val round : float -> float
(** Quantize a float through the format. *)
