(* bfloat16 is binary32 with the low 16 mantissa bits dropped: same 8-bit
   exponent field, 7 explicit mantissa bits.  Conversion therefore reduces
   to round-to-nearest-even on the upper half of the binary32 pattern;
   subnormals need no special casing because the exponent field is shared
   with binary32. *)

let max_value = 3.3895313892515355e38 (* 0x7F7F = (2 - 2^-7) * 2^127 *)
let epsilon = 1.0 /. 128.0
let min_positive_subnormal = Float.ldexp 1.0 (-133)

let of_float x =
  let bits32 = Int32.bits_of_float x in
  let sign =
    if Int32.logand bits32 Int32.min_int <> 0l then 0x8000 else 0
  in
  let u = Int32.to_int (Int32.logand bits32 0x7FFFFFFFl) in
  if u > 0x7F800000 then sign lor 0x7FC0 (* quiet NaN *)
  else
    (* RNE on the low 16 bits; a finite value that rounds past the largest
       finite encoding carries into the infinity encoding, and infinity
       itself (rem = 0) passes through unchanged *)
    let q = u lsr 16 in
    let rem = u land 0xFFFF in
    let rounded =
      if rem > 0x8000 || (rem = 0x8000 && q land 1 = 1) then q + 1 else q
    in
    let rounded = if rounded > 0x7F80 then 0x7F80 else rounded in
    sign lor rounded

let to_float bits =
  Int32.float_of_bits (Int32.of_int ((bits land 0xFFFF) lsl 16))

let round x = to_float (of_float x)
