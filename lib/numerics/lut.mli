(** Look-up tables for hard-to-compute functions.

    Compute Tiles (CoTs) carry small LUTs holding precomputed values of
    functions with no cheap arithmetic decomposition — the paper's example is
    the Gaussian CDF [Phi] used by exact GeLU (§4.2.1).  A table covers a
    clamped input range and linearly interpolates between stored samples;
    entries are stored rounded through FP16, the natural width of an on-tile
    ROM word.

    Two grid shapes share the representation: uniformly spaced entries (the
    CoT tables, grid implicit) and explicit non-uniform breakpoints (the NLI
    error-equalized segment tables, classified by binary search).  Uniform
    evaluation keeps its historical arithmetic bit-for-bit. *)

type t

val create : ?entries:int -> lo:float -> hi:float -> (float -> float) -> t
(** Tabulate [f] over [lo, hi] with [entries] uniformly spaced samples
    (default 1024).  Requires [lo < hi] and [entries >= 2]. *)

val create_nonuniform : breakpoints:float array -> (float -> float) -> t
(** Tabulate [f] at the given strictly increasing breakpoints (at least 2);
    values round through FP16 like every ROM word. *)

val of_samples : breakpoints:float array -> float array -> t
(** Non-uniform table from precomputed node values (same length as
    [breakpoints], which must be strictly increasing).  Values are stored
    as given — round them through the ROM word width yourself. *)

val eval : t -> float -> float
(** Clamped linear interpolation.  Exactly the stored value at a node. *)

val entries : t -> int
val size_bytes : t -> int
(** ROM footprint: 2 bytes/entry for uniform tables; 4 bytes/entry for
    non-uniform ones (value word + breakpoint word for the classifier). *)

val lo : t -> float
val hi : t -> float
(** Clamp bounds (first and last node). *)

val breakpoints : t -> float array
(** The node positions (materialized for uniform grids); fresh array. *)

val is_uniform : t -> bool

val interval : t -> float -> float -> float * float
(** [(min, max)] of the clamped interpolant over the given query interval —
    sound for any table, exact for PWL (extrema sit at nodes or clamped
    endpoints). *)

val max_abs_slope : t -> float
(** Lipschitz constant of the clamped interpolant (max |segment slope|) —
    the PWL error-transfer rule the precision analyzer applies. *)

val gauss_cdf : t Lazy.t
(** Phi over [-6, 6] — the GeLU table shipped with the CoTs. *)

val gauss_cdf_exact : float -> float
(** Reference Phi(x) = (1 + erf(x/sqrt2))/2 computed in float64 (software
    reference for the table; erf via Abramowitz-Stegun 7.1.26 refined with a
    series fallback, accurate to ~1e-7 which is below FP16 resolution). *)
