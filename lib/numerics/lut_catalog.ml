(* Single name -> table authority for every LUT a kernel can reference
   through Op.Lut: the interpreter, the hardware executor, the verifier's
   transfer rules and the mapper's ROM-capacity check all resolve here, so
   a table added for one backend is visible to every layer at once.

   "phi" is the uniform Gaussian-CDF table the CoTs ship for exact GeLU;
   "nli.*" are the fitted non-uniform segment tables of the NLI backend. *)

let find_opt name =
  match name with
  | "phi" -> Some (Lazy.force Lut.gauss_cdf)
  | _ -> Nli.table_of_name name

let known name = find_opt name <> None

(* ROM bytes of the named tables, deduplicated — two references to one
   table share the one copy resident in a CoT's ROM *)
let footprint_bytes names =
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc name ->
      if Hashtbl.mem seen name then acc
      else begin
        Hashtbl.add seen name ();
        match find_opt name with
        | Some t -> acc + Lut.size_bytes t
        | None -> acc
      end)
    0 names

(* Lipschitz constant for the PWL error-transfer rule.  Phi keeps its
   historical hand-derived constant (sup Phi' = 1/sqrt(2pi) ~ 0.3989,
   rounded up) so existing proofs replay identically; fitted tables use
   their measured max |segment slope|, nudged up a last-ulp so the
   constant stays an upper bound of the float arithmetic. *)
let lipschitz = function
  | "phi" -> Some 0.4
  | name ->
      Option.map
        (fun t -> Lut.max_abs_slope t *. (1.0 +. 1e-9))
        (find_opt name)

let interval name a b =
  match find_opt name with
  | Some t -> Lut.interval t a b
  | None -> (neg_infinity, infinity)
