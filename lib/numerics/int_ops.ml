(* Fixed-point formats used by the integer lanes.  Wide input format gives
   headroom for the log2(e)*x product; Q2.30 holds polynomial accumulators
   whose magnitude stays below 2. *)
let fmt_in = Fixed_point.fmt ~total_bits:48 ~frac_bits:16
let fmt_acc = Fixed_point.fmt ~total_bits:34 ~frac_bits:30
let log2_e_q = Fixed_point.of_float fmt_in 1.4426950408889634
let ln_2 = 0.6931471805599453

(* Horner in fixed point: accumulator Q30, argument Q16. *)
let horner_fx coeffs_q30 f_q16 =
  let acc = ref coeffs_q30.(Array.length coeffs_q30 - 1) in
  for k = Array.length coeffs_q30 - 2 downto 0 do
    (* acc(Q30) * f(Q16) -> Q46 -> round back to Q30 *)
    let prod = !acc * f_q16 in
    let half = 1 lsl 15 in
    let shifted =
      if prod >= 0 then (prod + half) asr 16 else -((-prod + half) asr 16)
    in
    acc := Fixed_point.saturate fmt_acc (shifted + coeffs_q30.(k))
  done;
  !acc

let q30_of_coeffs coeffs = Array.map (Fixed_point.of_float fmt_acc) coeffs
let exp_coeffs_q30 = Lazy.from_val (q30_of_coeffs (Poly.exp_taylor_coeffs ~order:6))
let log1p_coeffs_q30 = Lazy.from_val (q30_of_coeffs (Poly.log1p_taylor_coeffs ~order:8))

let exp x =
  if Float.is_nan x then nan
  else if x > 88.0 then infinity
  else if x < -87.0 then 0.0
  else
    let x_q = Fixed_point.of_float fmt_in x in
    let t_q = Fixed_point.mul fmt_in x_q log2_e_q in
    (* split: i = floor(t), f in [0,1) as Q16 *)
    let i = t_q asr 16 in
    let f_q16 = t_q - (i lsl 16) in
    let pow2_f_q30 = horner_fx (Lazy.force exp_coeffs_q30) f_q16 in
    Float.ldexp (Fixed_point.to_float fmt_acc pow2_f_q30) i

let log x =
  if Float.is_nan x || x < 0.0 then nan
  else if x = 0.0 then neg_infinity
  else if x = infinity then infinity
  else
    let m', e' = Float.frexp x in
    let m = (2.0 *. m') -. 1.0 in
    let e = e' - 1 in
    let m, e =
      if m > 0.4142135623730951 then (((1.0 +. m) /. 2.0) -. 1.0, e + 1) else (m, e)
    in
    let m_q16 = int_of_float (Float.round (m *. 65536.0)) in
    let log1p_q30 = horner_fx (Lazy.force log1p_coeffs_q30) m_q16 in
    (float_of_int e *. ln_2) +. Fixed_point.to_float fmt_acc log1p_q30

(* sin/cos on t in [-pi/2, pi/2]: Horner in t^2 (Q28), final multiply by t for
   sin.  |t| <= 1.5708 so Q4.28 is safe for t and t^2 (< 2.47). *)
let fmt_trig = Fixed_point.fmt ~total_bits:34 ~frac_bits:28

let sin_even_coeffs_q28 =
  (* sin t = t * (1 - t^2/6 + t^4/120 - t^6/5040) *)
  Lazy.from_val (Array.map (Fixed_point.of_float fmt_trig)
          [| 1.0; -1.0 /. 6.0; 1.0 /. 120.0; -1.0 /. 5040.0 |])

let cos_even_coeffs_q28 =
  Lazy.from_val (Array.map (Fixed_point.of_float fmt_trig)
          [| 1.0; -0.5; 1.0 /. 24.0; -1.0 /. 720.0; 1.0 /. 40320.0 |])

let horner_trig coeffs_q28 u_q28 =
  let acc = ref coeffs_q28.(Array.length coeffs_q28 - 1) in
  for k = Array.length coeffs_q28 - 2 downto 0 do
    acc := Fixed_point.add fmt_trig (Fixed_point.mul fmt_trig !acc u_q28) coeffs_q28.(k)
  done;
  !acc

let reduce_half_pi x =
  let two_pi = 2.0 *. Float.pi in
  let r = Float.rem x two_pi in
  let r = if r > Float.pi then r -. two_pi else if r < -.Float.pi then r +. two_pi else r in
  if r > Float.pi /. 2.0 then (Float.pi -. r, 1.0)
  else if r < -.(Float.pi /. 2.0) then (-.Float.pi -. r, 1.0)
  else (r, 1.0)

let sin x =
  if Float.is_nan x || Float.abs x = infinity then nan
  else
    let t, _ = reduce_half_pi x in
    let t_q = Fixed_point.of_float fmt_trig t in
    let t2_q = Fixed_point.mul fmt_trig t_q t_q in
    let even = horner_trig (Lazy.force sin_even_coeffs_q28) t2_q in
    Fixed_point.to_float fmt_trig (Fixed_point.mul fmt_trig t_q even)

let cos x =
  if Float.is_nan x || Float.abs x = infinity then nan
  else
    let two_pi = 2.0 *. Float.pi in
    let r = Float.rem x two_pi in
    let r = if r > Float.pi then r -. two_pi else if r < -.Float.pi then r +. two_pi else r in
    let t, sign =
      if r > Float.pi /. 2.0 then (Float.pi -. r, -1.0)
      else if r < -.(Float.pi /. 2.0) then (-.Float.pi -. r, -1.0)
      else (r, 1.0)
    in
    let t_q = Fixed_point.of_float fmt_trig t in
    let t2_q = Fixed_point.mul fmt_trig t_q t_q in
    let even = horner_trig (Lazy.force cos_even_coeffs_q28) t2_q in
    sign *. Fixed_point.to_float fmt_trig even

let reciprocal x =
  if x = 0.0 then (if 1.0 /. x > 0.0 then infinity else neg_infinity)
  else if Float.is_nan x then nan
  else
    (* normalize |x| to [1, 2), Newton in Q30: y <- y (2 - d y) *)
    let m', e' = Float.frexp (Float.abs x) in
    let d = 2.0 *. m' (* in [1, 2) *) in
    let d_q = Fixed_point.of_float fmt_acc (d /. 2.0) (* Q30 holds d/2 in [0.5,1) *) in
    let y = ref (Fixed_point.of_float fmt_acc (2.88 -. (2.0 *. d /. 2.0))) in
    (* initial linear estimate of 1/(d/2) over [0.5,1): 2.88 - 2 u *)
    for _ = 1 to 4 do
      let dy = Fixed_point.mul fmt_acc d_q !y in
      let two = Fixed_point.of_float fmt_acc 2.0 in
      y := Fixed_point.mul fmt_acc !y (Fixed_point.sub fmt_acc two dy)
    done;
    let inv_half = Fixed_point.to_float fmt_acc !y (* = 2/d *) in
    let magnitude = Float.ldexp (inv_half /. 2.0) (-(e' - 1)) in
    if x < 0.0 then -.magnitude else magnitude

let div a b = a *. reciprocal b

let isqrt x =
  if x <= 0.0 || Float.is_nan x then nan
  else
    let m, e = Float.frexp x in
    let k = e / 2 in
    let r = e - (2 * k) in
    let seed = Float.ldexp (1.0 /. sqrt m) (-k) in
    let seed =
      if r = 1 then seed /. sqrt 2.0 else if r = -1 then seed *. sqrt 2.0 else seed
    in
    let y = ref seed in
    for _ = 1 to 3 do
      (* Newton step with fixed-point rounding of the correction *)
      let corr = Fixed_point.round fmt_acc (1.5 -. (0.5 *. x *. !y *. !y)) in
      y := !y *. corr
    done;
    !y

let sigmoid x =
  if x >= 0.0 then div 1.0 (1.0 +. exp (-.x))
  else
    let e = exp x in
    div e (1.0 +. e)

let tanh x =
  if x > 15.0 then 1.0
  else if x < -15.0 then -1.0
  else
    let e2 = exp (2.0 *. x) in
    div (e2 -. 1.0) (e2 +. 1.0)
