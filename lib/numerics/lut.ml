type t = { lo : float; hi : float; step : float; values : float array }

let create ?(entries = 1024) ~lo ~hi f =
  if entries < 2 then invalid_arg "Lut.create: entries < 2";
  if lo >= hi then invalid_arg "Lut.create: empty range";
  let step = (hi -. lo) /. float_of_int (entries - 1) in
  let values =
    Array.init entries (fun i -> Fp16.round (f (lo +. (float_of_int i *. step))))
  in
  { lo; hi; step; values }

let eval t x =
  let n = Array.length t.values in
  if x <= t.lo then t.values.(0)
  else if x >= t.hi then t.values.(n - 1)
  else
    let pos = (x -. t.lo) /. t.step in
    let i = int_of_float pos in
    let i = Stdlib.min i (n - 2) in
    let frac = pos -. float_of_int i in
    t.values.(i) +. (frac *. (t.values.(i + 1) -. t.values.(i)))

let entries t = Array.length t.values
let size_bytes t = 2 * entries t

(* erf via the maximal-accuracy rational approximation (Abramowitz & Stegun
   7.1.26 has only ~1.5e-7 absolute error; we refine by one step of the
   series when |x| is small where the rational form is weakest). *)
let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  if x < 1e-8 then sign *. (2.0 /. sqrt Float.pi *. x)
  else
    let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
    let y =
      1.0
      -. (((((1.061405429 *. t) -. 1.453152027) *. t +. 1.421413741) *. t
           -. 0.284496736) *. t +. 0.254829592)
         *. t *. exp (-.(x *. x))
    in
    sign *. y

let gauss_cdf_exact x = 0.5 *. (1.0 +. erf (x /. sqrt 2.0))
(* eagerly built: concurrently forcing a pending lazy from several domains
   is unsafe in OCaml 5, and surrogate attention evaluates backends from
   every pool worker *)
let gauss_cdf = Lazy.from_val (create ~entries:1024 ~lo:(-6.0) ~hi:6.0 gauss_cdf_exact)
