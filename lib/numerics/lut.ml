(* Two grid shapes share one value array and one eval contract.  The uniform
   arm keeps the historical arithmetic bit-for-bit (position = (x-lo)/step,
   truncate, interpolate) — the gauss_cdf goldens pin it.  The non-uniform
   arm stores explicit breakpoints (the NLI segment tables) and classifies
   by binary search; the interpolation formula is the same shape, so a
   query landing exactly on breakpoint i returns values.(i) unchanged. *)
type grid =
  | Uniform of { lo : float; hi : float; step : float }
  | Breakpoints of float array

type t = { grid : grid; values : float array }

let create ?(entries = 1024) ~lo ~hi f =
  if entries < 2 then invalid_arg "Lut.create: entries < 2";
  if lo >= hi then invalid_arg "Lut.create: empty range";
  let step = (hi -. lo) /. float_of_int (entries - 1) in
  let values =
    Array.init entries (fun i -> Fp16.round (f (lo +. (float_of_int i *. step))))
  in
  { grid = Uniform { lo; hi; step }; values }

let check_breakpoints bps =
  let n = Array.length bps in
  if n < 2 then invalid_arg "Lut: fewer than 2 breakpoints";
  for i = 0 to n - 2 do
    if not (bps.(i) < bps.(i + 1)) then
      invalid_arg "Lut: breakpoints not strictly increasing"
  done

let of_samples ~breakpoints values =
  check_breakpoints breakpoints;
  if Array.length values <> Array.length breakpoints then
    invalid_arg "Lut.of_samples: length mismatch";
  { grid = Breakpoints (Array.copy breakpoints); values = Array.copy values }

let create_nonuniform ~breakpoints f =
  check_breakpoints breakpoints;
  {
    grid = Breakpoints (Array.copy breakpoints);
    values = Array.map (fun x -> Fp16.round (f x)) breakpoints;
  }

let lo t =
  match t.grid with Uniform u -> u.lo | Breakpoints b -> b.(0)

let hi t =
  match t.grid with
  | Uniform u -> u.hi
  | Breakpoints b -> b.(Array.length b - 1)

let eval t x =
  let n = Array.length t.values in
  match t.grid with
  | Uniform u ->
      if x <= u.lo then t.values.(0)
      else if x >= u.hi then t.values.(n - 1)
      else
        let pos = (x -. u.lo) /. u.step in
        let i = int_of_float pos in
        let i = Stdlib.min i (n - 2) in
        let frac = pos -. float_of_int i in
        t.values.(i) +. (frac *. (t.values.(i + 1) -. t.values.(i)))
  | Breakpoints b ->
      if x <= b.(0) then t.values.(0)
      else if x >= b.(n - 1) then t.values.(n - 1)
      else begin
        (* largest i with b.(i) <= x; x < b.(n-1) keeps i <= n-2 *)
        let lo_i = ref 0 and hi_i = ref (n - 1) in
        while !hi_i - !lo_i > 1 do
          let mid = (!lo_i + !hi_i) / 2 in
          if b.(mid) <= x then lo_i := mid else hi_i := mid
        done;
        let i = !lo_i in
        let frac = (x -. b.(i)) /. (b.(i + 1) -. b.(i)) in
        t.values.(i) +. (frac *. (t.values.(i + 1) -. t.values.(i)))
      end

let entries t = Array.length t.values

(* ROM words are FP16: a uniform table stores one value per entry (the grid
   is implicit in two registers); a non-uniform table also stores its
   breakpoint per entry — the segment-classify comparators read them. *)
let size_bytes t =
  match t.grid with
  | Uniform _ -> 2 * entries t
  | Breakpoints _ -> 4 * entries t

let breakpoints t =
  match t.grid with
  | Uniform u ->
      Array.init (entries t) (fun i -> u.lo +. (float_of_int i *. u.step))
  | Breakpoints b -> Array.copy b

let is_uniform t = match t.grid with Uniform _ -> true | Breakpoints _ -> false

(* Sound range of the clamped interpolant over [a, b]: the endpoint
   evaluations plus every stored node strictly inside — a PWL function
   attains its extrema at nodes or at the clamped query endpoints.  Equals
   the endpoint scan for monotone tables. *)
let interval t a b =
  let a = Float.min a b and b = Float.max a b in
  let va = eval t a and vb = eval t b in
  let mn = ref (Float.min va vb) and mx = ref (Float.max va vb) in
  let bps = match t.grid with Uniform _ -> breakpoints t | Breakpoints bp -> bp in
  Array.iteri
    (fun i x ->
      if x > a && x < b then begin
        mn := Float.min !mn t.values.(i);
        mx := Float.max !mx t.values.(i)
      end)
    bps;
  (!mn, !mx)

(* Lipschitz constant of the clamped interpolant: max |segment slope|. *)
let max_abs_slope t =
  let n = entries t in
  let bps = match t.grid with Uniform _ -> breakpoints t | Breakpoints bp -> bp in
  let m = ref 0.0 in
  for i = 0 to n - 2 do
    let s =
      Float.abs ((t.values.(i + 1) -. t.values.(i)) /. (bps.(i + 1) -. bps.(i)))
    in
    if s > !m then m := s
  done;
  !m

(* erf via the maximal-accuracy rational approximation (Abramowitz & Stegun
   7.1.26 has only ~1.5e-7 absolute error; we refine by one step of the
   series when |x| is small where the rational form is weakest). *)
let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  if x < 1e-8 then sign *. (2.0 /. sqrt Float.pi *. x)
  else
    let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
    let y =
      1.0
      -. (((((1.061405429 *. t) -. 1.453152027) *. t +. 1.421413741) *. t
           -. 0.284496736) *. t +. 0.254829592)
         *. t *. exp (-.(x *. x))
    in
    sign *. y

let gauss_cdf_exact x = 0.5 *. (1.0 +. erf (x /. sqrt 2.0))
(* eagerly built: concurrently forcing a pending lazy from several domains
   is unsafe in OCaml 5, and surrogate attention evaluates backends from
   every pool worker *)
let gauss_cdf = Lazy.from_val (create ~entries:1024 ~lo:(-6.0) ~hi:6.0 gauss_cdf_exact)
