(** bfloat16 (brain floating point): 1 sign, 8 exponent, 7 mantissa bits.

    The training/inference format that keeps binary32's dynamic range at
    half the width.  Encoded values are the top 16 bits of the binary32
    pattern, so conversion is round-to-nearest-even on the low half of the
    word; infinities, NaN and subnormals follow IEEE 754 with the shared
    8-bit exponent field. *)

val max_value : float
(** Largest finite value, [(2 - 2^-7) * 2^127]. *)

val epsilon : float
(** Spacing of values in [[1, 2)]: [2^-7]. *)

val min_positive_subnormal : float
(** Smallest positive (subnormal) value, [2^-133]. *)

val of_float : float -> int
(** Round-to-nearest-even into the 16-bit encoding.  Finite values beyond
    {!max_value} round to infinity; NaN maps to a quiet NaN encoding. *)

val to_float : int -> float
val round : float -> float
(** Quantize a float through the format ([to_float] of [of_float]). *)
