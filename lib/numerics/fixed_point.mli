(** Signed fixed-point arithmetic in Q notation.

    The FP2FX special unit (paper §4.2.1) and the INT execution lanes (§4.2.2)
    operate on fixed-point representations.  A value is an [int] holding
    [round (x * 2^frac_bits)], saturated to the given total bit width.
    Operations saturate rather than wrap, matching the DSP-style units in the
    PICACHU tiles. *)

type fmt = { total_bits : int; frac_bits : int }
(** [total_bits] includes the sign bit. Requires [2 <= total_bits <= 62] and
    [0 <= frac_bits < total_bits]. *)

val fmt : total_bits:int -> frac_bits:int -> fmt
(** Smart constructor; raises [Invalid_argument] on an unusable format. *)

val q15 : fmt
(** Q1.15: 16-bit, 15 fractional bits — the INT16 lane format. *)

val q31 : fmt
(** Q1.31: 32-bit, 31 fractional bits — the INT32 lane format. *)

val max_int_value : fmt -> int
val min_int_value : fmt -> int

val of_float : fmt -> float -> int
(** Round-to-nearest, saturating: values whose scaled magnitude exceeds the
    format (including [±infinity]) clamp to the format bounds; NaN maps
    to 0. *)

val to_float : fmt -> int -> float
val round : fmt -> float -> float
(** Quantize a float through the format. *)

val add : fmt -> int -> int -> int
val sub : fmt -> int -> int -> int
val mul : fmt -> int -> int -> int
(** Full-precision product (formed in 64 bits — exact for formats up to 32
    total bits, so the q31 [min x min] corner saturates instead of
    wrapping), then round and saturate back to [fmt]. *)

val saturate : fmt -> int -> int

val split : float -> int * float
(** [split x] is the FP2FX decomposition [(i, f)] with [x = i + f] and
    [f] in [[0, 1)]; the integer part is [floor x].  This is the hardware
    operation used by the exponential algorithm (Table 3, step 2). *)
