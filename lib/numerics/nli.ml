(* Non-uniform linear interpolation (NLI) — the second approximation
   backend.  Instead of Taylor-expanding an operator around a reduced
   range, approximate it directly with an error-equalized piecewise-linear
   interpolant: place breakpoints densely where the function curves and
   sparsely where it is flat, so every segment contributes about the same
   worst-case error and the table meets a target error with far fewer
   ROM words than a uniform grid.

   Fitting is a binary search on the per-segment error threshold eps
   wrapped around a greedy left-to-right cover: starting from the range's
   left edge, extend the current segment sample by sample until the chord
   deviates from the function by more than eps, cut, repeat.  The greedy
   cover is maximal (each segment stops at the first infeasible
   extension), so the number of segments needed is monotone nonincreasing
   in eps and the bisection converges to the smallest threshold the
   segment budget can honor — the error-equalization property: every
   interior cut is witnessed by a sample where one more step would exceed
   the threshold every other segment also honors. *)

type fit = {
  table : Lut.t;
  max_err : float;
  target_err : float;
  segments : int;
}

let fit ?(segments = 64) ?(grid = 1024) ~lo ~hi f =
  if segments < 1 then invalid_arg "Nli.fit: segments < 1";
  if grid < 2 then invalid_arg "Nli.fit: grid < 2";
  if not (lo < hi) then invalid_arg "Nli.fit: empty range";
  let n = grid + 1 in
  let xs = Array.init n (fun i -> lo +. ((hi -. lo) *. float_of_int i /. float_of_int grid)) in
  (* pin the endpoints exactly: the table's clamp bounds must be lo/hi *)
  xs.(0) <- lo;
  xs.(n - 1) <- hi;
  let ys = Array.map f xs in
  if Array.exists (fun y -> not (Float.is_finite y)) ys then
    invalid_arg "Nli.fit: function not finite on the range";
  (* max |f - chord(i,j)| over the samples strictly between i and j *)
  let chord_err i j =
    let xi = xs.(i) and yi = ys.(i) in
    let slope = (ys.(j) -. yi) /. (xs.(j) -. xi) in
    let m = ref 0.0 in
    for k = i + 1 to j - 1 do
      let d = Float.abs (ys.(k) -. (yi +. (slope *. (xs.(k) -. xi)))) in
      if d > !m then m := d
    done;
    !m
  in
  (* greedy maximal cover at threshold eps; returns the cut indices
     (ascending, starting 0, ending n-1) *)
  let cover eps =
    let cuts = ref [ 0 ] in
    let i = ref 0 in
    while !i < n - 1 do
      let j = ref (!i + 1) in
      while !j + 1 <= n - 1 && chord_err !i (!j + 1) <= eps do
        incr j
      done;
      cuts := !j :: !cuts;
      i := !j
    done;
    List.rev !cuts
  in
  let needed eps = List.length (cover eps) - 1 in
  let eps_hi = Float.max (chord_err 0 (n - 1)) 1e-300 in
  let eps =
    if needed 0.0 <= segments then 0.0
    else begin
      (* invariant: [bad] needs more than the budget, [good] fits it *)
      let bad = ref 0.0 and good = ref eps_hi in
      for _ = 1 to 60 do
        let mid = 0.5 *. (!bad +. !good) in
        if needed mid <= segments then good := mid else bad := mid
      done;
      !good
    end
  in
  let cuts = Array.of_list (cover eps) in
  let breakpoints = Array.map (fun i -> xs.(i)) cuts in
  let table = Lut.create_nonuniform ~breakpoints f in
  (* measure the shipped table (FP16-rounded node values included) against
     the reference on a grid 4x denser than the fitting grid *)
  let m = 4 * grid in
  let max_err = ref 0.0 in
  for k = 0 to m do
    let x = lo +. ((hi -. lo) *. float_of_int k /. float_of_int m) in
    let d = Float.abs (Lut.eval table x -. f x) in
    if d > !max_err then max_err := d
  done;
  {
    table;
    max_err = !max_err;
    target_err = eps;
    segments = Array.length breakpoints - 1;
  }

(* maximum over segments of the shipped table's deviation from [f],
   reported per segment — the equalization witness the tests check *)
let per_segment_errors fit f =
  let bps = Lut.breakpoints fit.table in
  let nseg = Array.length bps - 1 in
  Array.init nseg (fun s ->
      let a = bps.(s) and b = bps.(s + 1) in
      let m = ref 0.0 in
      for k = 0 to 64 do
        let x = a +. ((b -. a) *. float_of_int k /. 64.0) in
        let d = Float.abs (Lut.eval fit.table x -. f x) in
        if d > !m then m := d
      done;
      !m)

(* ------------------------------------------------------ standard tables *)

let silu_exact x = x /. (1.0 +. Stdlib.exp (-.x))

let gelu_exact x = x *. Lut.gauss_cdf_exact x

let tanh_exact = Stdlib.tanh

(* The shipped operator tables.  Ranges follow the operators' reduced
   domains: the softmax numerator argument is max-shifted (<= 0, and
   exp(-20) is below FP16 resolution); RoPE angles arrive range-reduced
   into [-pi/2, pi/2]; division and inverse square root are frexp
   range-reduced onto one (respectively two) binades, so one small table
   covers every input.  Budgets are deliberately small — the point of
   non-uniform placement is meeting FP16-level error with tens of
   segments where the uniform CoT table spends 1024 entries. *)
let standard_specs =
  [
    ("nli.exp", 64, -20.0, 0.0, Stdlib.exp);
    ("nli.gelu", 64, -8.0, 8.0, gelu_exact);
    ("nli.silu", 64, -8.0, 8.0, silu_exact);
    ("nli.sigmoid", 64, -16.0, 16.0, fun x -> 1.0 /. (1.0 +. Stdlib.exp (-.x)));
    ("nli.sin", 32, -.(Float.pi /. 2.0), Float.pi /. 2.0, Stdlib.sin);
    ("nli.cos", 32, -.(Float.pi /. 2.0), Float.pi /. 2.0, Stdlib.cos);
    ("nli.tanh", 64, -4.0, 4.0, tanh_exact);
    ("nli.recip", 32, 1.0, 2.0, fun m -> 1.0 /. m);
    ("nli.isqrt", 32, 1.0, 4.0, fun m -> 1.0 /. sqrt m);
  ]

(* eagerly fitted at module init (cheap: a few hundred thousand float ops
   per table) — forcing a pending lazy concurrently from several domains
   is unsafe in OCaml 5 and backends evaluate on the pool *)
let standard =
  List.map
    (fun (name, segments, lo, hi, f) -> (name, fit ~segments ~lo ~hi f))
    standard_specs

let fit_of_name name = List.assoc_opt name standard
let table_of_name name = Option.map (fun f -> f.table) (fit_of_name name)

let reference_of_name name =
  Option.map
    (fun (_, _, _, _, f) -> f)
    (List.find_opt (fun (n, _, _, _, _) -> n = name) standard_specs)

(* ------------------------------------------------- range-reduced scalars *)

let table name =
  match table_of_name name with
  | Some t -> t
  | None -> invalid_arg ("Nli.table: " ^ name)

let exp_table = table "nli.exp"
let gelu_table = table "nli.gelu"
let silu_table = table "nli.silu"
let sigmoid_table = table "nli.sigmoid"
let sin_table = table "nli.sin"
let cos_table = table "nli.cos"
let tanh_table = table "nli.tanh"
let recip_table = table "nli.recip"
let isqrt_table = table "nli.isqrt"

let exp_neg d = Lut.eval exp_table d
let gelu x = Lut.eval gelu_table x
let silu x = Lut.eval silu_table x
let sigmoid x = Lut.eval sigmoid_table x
let tanh x = Lut.eval tanh_table x

(* trigonometry: fold into [-pi/2, pi/2] (sin(pi - r) = sin r), then table *)
let sin x =
  if not (Float.is_finite x) then Float.nan
  else begin
    let two_pi = 2.0 *. Float.pi in
    let r = Float.rem x two_pi in
    let r = if r > Float.pi then r -. two_pi else if r < -.Float.pi then r +. two_pi else r in
    let r =
      if r > Float.pi /. 2.0 then Float.pi -. r
      else if r < -.(Float.pi /. 2.0) then -.Float.pi -. r
      else r
    in
    Lut.eval sin_table r
  end

(* cosine is even: fold into [0, pi], then reflect the upper quadrant *)
let cos x =
  if not (Float.is_finite x) then Float.nan
  else begin
    let two_pi = 2.0 *. Float.pi in
    let r = Float.abs (Float.rem x two_pi) in
    let r = if r > Float.pi then two_pi -. r else r in
    if r <= Float.pi /. 2.0 then Lut.eval cos_table r
    else -.Lut.eval cos_table (Float.pi -. r)
  end

(* division: b = m * 2^e with m in [0.5, 1) via frexp, so
   1/b = recip(2m) * 2^(1-e) with 2m in [1, 2) — one binade of table *)
let recip b =
  if b = 0.0 || not (Float.is_finite b) then 1.0 /. b
  else
    let m, e = Float.frexp (Float.abs b) in
    let r = Float.ldexp (Lut.eval recip_table (2.0 *. m)) (1 - e) in
    Float.copy_sign r b

let div a b = a *. recip b

(* inverse square root: x = u * 4^p with u in [1, 4), so
   isqrt x = isqrt(u) * 2^(-p); p from the frexp exponent's parity *)
let isqrt x =
  if x <= 0.0 || not (Float.is_finite x) then 1.0 /. sqrt x
  else
    let m, e = Float.frexp x in
    (* x = (2m) * 2^(e-1) with 2m in [1, 2) *)
    let e' = e - 1 in
    let u, p =
      if e' land 1 = 0 then (2.0 *. m, e' asr 1)
      else (4.0 *. m, (e' - 1) asr 1)
    in
    Float.ldexp (Lut.eval isqrt_table u) (-p)

(* total bytes of the standard tables, deduplicated by name *)
let footprint_bytes names =
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc name ->
      if Hashtbl.mem seen name then acc
      else begin
        Hashtbl.add seen name ();
        match table_of_name name with
        | Some t -> acc + Lut.size_bytes t
        | None -> acc
      end)
    0 names
