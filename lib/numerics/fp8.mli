(** 8-bit minifloats (OCP FP8): E4M3 and E5M2.

    E5M2 (1 sign, 5 exponent, 2 mantissa, bias 15) is IEEE-like: the top
    exponent row encodes infinities and NaN and the largest finite value is
    57344.  E4M3 (1 sign, 4 exponent, 3 mantissa, bias 7) reclaims the top
    row: no infinity, NaN only at S.1111.111, largest finite value 448.

    Conversions round to nearest, ties to even, and *saturate*: a finite
    input beyond the largest finite magnitude clamps to it (±infinity input
    stays infinity in E5M2, which has one, and saturates in E4M3, which
    does not).  NaN maps to the format's NaN encoding. *)

type fmt = {
  name : string;
  exp_bits : int;
  mant_bits : int;
  bias : int;
  has_inf : bool;  (** IEEE top row (E5M2) vs reclaimed finite row (E4M3) *)
}

val e4m3 : fmt
val e5m2 : fmt

val max_value : fmt -> float
(** Largest finite magnitude: 448 (E4M3), 57344 (E5M2). *)

val min_positive_subnormal : fmt -> float
(** Smallest positive value: [2^-9] (E4M3), [2^-16] (E5M2). *)

val of_float : fmt -> float -> int
(** Round-to-nearest-even into the 8-bit encoding, saturating as described
    above.  The sign of zero is preserved. *)

val to_float : fmt -> int -> float
val round : fmt -> float -> float
(** Quantize a float through the format. *)
