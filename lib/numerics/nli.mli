(** Non-uniform linear interpolation (NLI) approximation backend.

    Approximates a nonlinear operator directly with an error-equalized
    piecewise-linear interpolant (the NLI paper's strategy), as the
    competing backend to the Taylor-expansion engine: automatic breakpoint
    fitting places segments densely where the function curves, the fitted
    segment table lives in CoT LUT ROM, and evaluation is range classify →
    segment index → one fused multiply-add.

    Fitting binary-searches the per-segment error threshold around a
    greedy maximal left-to-right cover, so the budgeted table converges to
    the smallest threshold every segment can honor (error equalization);
    the number of segments needed is monotone in the threshold, hence a
    larger budget never fits worse. *)

type fit = {
  table : Lut.t;  (** non-uniform table, node values FP16-rounded *)
  max_err : float;
      (** measured sup |table - f| over a dense grid of the fitted range,
          including the FP16 node rounding *)
  target_err : float;  (** the equalization threshold the search reached *)
  segments : int;
}

val fit :
  ?segments:int -> ?grid:int -> lo:float -> hi:float -> (float -> float) -> fit
(** Fit [f] over [lo, hi] with at most [segments] linear pieces (default
    64), sampling on a [grid]+1-point calibration grid (default 1024).
    Requires a finite [f] on the range. *)

val per_segment_errors : fit -> (float -> float) -> float array
(** Measured per-segment sup deviation of the shipped table from [f] —
    the equalization witness (every entry is at most [max_err], and
    interior cuts are where one more sample would have exceeded
    [target_err]). *)

val standard : (string * fit) list
(** The shipped operator tables, fitted eagerly at load: [nli.exp] (the
    max-shifted softmax numerator over [-20, 0]), [nli.gelu] / [nli.silu]
    / [nli.sigmoid] / [nli.tanh], [nli.sin] / [nli.cos] (range-reduced
    angles), and the frexp-reduced [nli.recip] (one binade) and
    [nli.isqrt] (two binades). *)

val fit_of_name : string -> fit option
val table_of_name : string -> Lut.t option
val reference_of_name : string -> (float -> float) option
(** The float64 reference function a standard table approximates. *)

val footprint_bytes : string list -> int
(** Total {!Lut.size_bytes} of the named standard tables, deduplicated by
    name; unknown names contribute 0. *)

(** {2 Range-reduced scalar evaluators}

    The software model of the NLI datapath: table interpolation plus the
    same range reductions the CGRA kernels perform (max shift, angle
    folding, frexp exponent split). *)

val exp_neg : float -> float
(** [exp d] for a max-shifted argument [d <= 0] (clamped below -20). *)

val gelu : float -> float
val silu : float -> float
val sigmoid : float -> float
val tanh : float -> float
val sin : float -> float
val cos : float -> float
val recip : float -> float
val div : float -> float -> float
val isqrt : float -> float
(** [1 / sqrt x] for positive finite [x] (falls back to the libm value on
    other inputs, like {!Taylor.isqrt}'s conventions). *)
