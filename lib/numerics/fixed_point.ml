type fmt = { total_bits : int; frac_bits : int }

let fmt ~total_bits ~frac_bits =
  if total_bits < 2 || total_bits > 62 then invalid_arg "Fixed_point.fmt: total_bits";
  if frac_bits < 0 || frac_bits >= total_bits then
    invalid_arg "Fixed_point.fmt: frac_bits";
  { total_bits; frac_bits }

let q15 = { total_bits = 16; frac_bits = 15 }
let q31 = { total_bits = 32; frac_bits = 31 }
let max_int_value f = (1 lsl (f.total_bits - 1)) - 1
let min_int_value f = -(1 lsl (f.total_bits - 1))

let saturate f v =
  let hi = max_int_value f and lo = min_int_value f in
  if v > hi then hi else if v < lo then lo else v

let of_float f x =
  let scaled = x *. float_of_int (1 lsl f.frac_bits) in
  if Float.is_nan scaled then 0
  else
    (* clamp the float before int_of_float: the conversion is unspecified
       outside [min_int, max_int] (inf and 1e30 both came back as 0,
       flipping an overflow into a silent zero instead of saturating) *)
    let rounded = Float.round scaled in
    if rounded >= float_of_int (max_int_value f) then max_int_value f
    else if rounded <= float_of_int (min_int_value f) then min_int_value f
    else saturate f (int_of_float rounded)

let to_float f v = float_of_int v /. float_of_int (1 lsl f.frac_bits)
let round f x = to_float f (of_float f x)
let add f a b = saturate f (a + b)
let sub f a b = saturate f (a - b)

let mul f a b =
  (* the product is formed in Int64: two 32-bit operands can produce a
     2^62 magnitude (q31 min x min), which overflows OCaml's 63-bit
     native int.  Int64 is exact for every format up to 32 total bits. *)
  let prod = Int64.mul (Int64.of_int a) (Int64.of_int b) in
  let rounded =
    if f.frac_bits = 0 then prod
    else
      let half = Int64.shift_left 1L (f.frac_bits - 1) in
      if Int64.compare prod 0L >= 0 then
        Int64.shift_right (Int64.add prod half) f.frac_bits
      else Int64.neg (Int64.shift_right (Int64.add (Int64.neg prod) half) f.frac_bits)
  in
  let hi = Int64.of_int (max_int_value f) and lo = Int64.of_int (min_int_value f) in
  Int64.to_int
    (if Int64.compare rounded hi > 0 then hi
     else if Int64.compare rounded lo < 0 then lo
     else rounded)

let split x =
  let i = Float.floor x in
  (int_of_float i, x -. i)
