(* 4-bit minifloat in the OCP MX E2M1 layout: 1 sign, 2 exponent, 1
   mantissa, bias 1.  Every one of the 16 codes is finite — there is no
   infinity and no NaN row; the positive magnitudes are
   0, 0.5, 1, 1.5, 2, 3, 4, 6.

   Conversion is round-to-nearest-even with saturating overflow, the same
   accelerator convention as the FP8 codec; NaN input maps to 0 (the
   Fixed_point convention for formats with nothing better to encode it). *)

let exp_bits = 2
let mant_bits = 1
let bias = 1
let mant_mask = (1 lsl mant_bits) - 1
let exp_mask = (1 lsl exp_bits) - 1

(* exponent of the subnormal quantum: value of the mantissa ulp at e = 0 *)
let sub_exp = 1 - bias - mant_bits

(* largest finite magnitude encoding: 0.111 = 1.1b * 2^(3-1) = 6 *)
let max_code = (exp_mask lsl mant_bits) lor mant_mask

let to_float code =
  let code = code land 0xF in
  let sign = if code land 0x8 <> 0 then -1.0 else 1.0 in
  let e = (code lsr mant_bits) land exp_mask in
  let m = code land mant_mask in
  if e = 0 then sign *. Float.ldexp (float_of_int m) sub_exp
  else sign *. Float.ldexp (float_of_int (m lor (1 lsl mant_bits))) (e - bias - mant_bits)

let max_value = to_float max_code
let min_positive_subnormal = Float.ldexp 1.0 sub_exp

let of_float x =
  if Float.is_nan x then 0
  else
    let sign = if 1.0 /. x < 0.0 || x < 0.0 then 0x8 else 0 in
    let a = Float.abs x in
    if a > max_value then sign lor max_code (* includes infinity *)
    else if a = 0.0 then sign
    else
      (* scale [a] into integer units of the quantum at its binade; the
         quotient is a small exact float, so RNE reduces to integer
         rounding with ties-to-even *)
      let _, e = Float.frexp a in
      let shift = Stdlib.max (e - 1 - mant_bits) sub_exp in
      let q = a /. Float.ldexp 1.0 shift in
      let fl = Float.floor q in
      let rem = q -. fl in
      let qi = int_of_float fl in
      let qi =
        if rem > 0.5 then qi + 1
        else if rem < 0.5 then qi
        else if qi land 1 = 1 then qi + 1
        else qi
      in
      (* a mantissa carry moves the value up one binade *)
      let qi, shift =
        if qi = 1 lsl (mant_bits + 1) then (1 lsl mant_bits, shift + 1)
        else (qi, shift)
      in
      if qi < 1 lsl mant_bits then sign lor qi (* subnormal (shift = sub_exp) *)
      else
        let e_field = shift + mant_bits + bias in
        let code = (e_field lsl mant_bits) lor (qi land mant_mask) in
        if code > max_code then sign lor max_code else sign lor code

let round x = to_float (of_float x)
