(** The numeric-format abstraction the precision analyzer consumes.

    One closed view over every value format a PICACHU lane can run: the Q
    fixed-point formats of the INT16/INT32 lanes plus the floating-point
    stack (FP8 E4M3/E5M2, bfloat16, binary16, binary32).  Each format
    answers the three questions static precision analysis asks — how wide
    is it ({!bits}), how large a magnitude can it hold ({!max_value}), and
    how much can one round-to-nearest step move a value of a given
    magnitude ({!quantum}) — and supplies the bit-accurate {!quantize} the
    soundness harness executes against. *)

type t =
  | Fixed of Fixed_point.fmt
  | Fp4  (** OCP MX FP4, E2M1 *)
  | Fp8 of Fp8.fmt
  | Bf16
  | Fp16
  | Fp32

val fixed : total_bits:int -> frac_bits:int -> t
val e4m3 : t
val e5m2 : t

val name : t -> string
(** ["q8.8"], ["fp8_e4m3"], ["bf16"], ... *)

val of_string : string -> t option
(** Inverse of {!name}; also accepts ["e4m3"]/["e5m2"] and any ["qI.F"]. *)

val bits : t -> int
(** Storage width — the cost axis format selection minimizes. *)

val max_value : t -> float
(** Largest finite representable magnitude. *)

val quantize : t -> float -> float
(** Bit-accurate round-to-nearest(-even for the float formats) through the
    format.  Finite values beyond {!max_value} saturate in every format. *)

val quantum : t -> mag:float -> float
(** Sound upper bound on [|quantize t x - x|] over all [|x| <= mag], for
    [mag <= max_value t]: a half quantum for fixed point, a half ulp at
    [mag]'s binade (floored at the subnormal spacing) for floats. *)

val exact_sums : t -> bool
(** Whether addition/subtraction of in-format, in-range values is exact
    (fixed-point grids are closed under addition; float formats round). *)

val catalogue : t list
(** The candidate ladder format selection walks, cheapest (narrowest)
    first: fp4_e2m1, fp8_e4m3, fp8_e5m2, q4.4, q4.8, bf16, fp16, q8.8,
    q16.16, fp32. *)
