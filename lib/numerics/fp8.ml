(* 8-bit minifloats in the two OCP interchange layouts.

   E5M2 follows IEEE 754 exactly (exponent all-ones encodes infinity and
   NaN).  E4M3 reclaims almost the whole top exponent row for finite
   values: S.1111.111 is the only NaN, there is no infinity, and the
   largest finite value is S.1111.110 = 448.

   Conversion is round-to-nearest-even with *saturating* overflow — finite
   values past the largest finite magnitude clamp to it instead of
   producing infinity (the accelerator convention; an FP8 infinity would
   poison a whole tile the way a silent fixed-point wrap would). *)

type fmt = {
  name : string;
  exp_bits : int;
  mant_bits : int;
  bias : int;
  has_inf : bool;
}

let e4m3 = { name = "fp8_e4m3"; exp_bits = 4; mant_bits = 3; bias = 7; has_inf = false }
let e5m2 = { name = "fp8_e5m2"; exp_bits = 5; mant_bits = 2; bias = 15; has_inf = true }

let mant_mask f = (1 lsl f.mant_bits) - 1
let exp_mask f = (1 lsl f.exp_bits) - 1

(* exponent of the subnormal quantum: value of mantissa ulp when e = 0 *)
let sub_exp f = 1 - f.bias - f.mant_bits

let nan_code f =
  if f.has_inf then (exp_mask f lsl f.mant_bits) lor 1
  else (exp_mask f lsl f.mant_bits) lor mant_mask f

let inf_code f = exp_mask f lsl f.mant_bits

(* largest finite magnitude encoding *)
let max_code f =
  if f.has_inf then ((exp_mask f - 1) lsl f.mant_bits) lor mant_mask f
  else (exp_mask f lsl f.mant_bits) lor (mant_mask f - 1)

let to_float f code =
  let code = code land 0xFF in
  let sign = if code land 0x80 <> 0 then -1.0 else 1.0 in
  let e = (code lsr f.mant_bits) land exp_mask f in
  let m = code land mant_mask f in
  if f.has_inf && e = exp_mask f then
    if m = 0 then sign *. infinity else nan
  else if (not f.has_inf) && e = exp_mask f && m = mant_mask f then nan
  else if e = 0 then sign *. Float.ldexp (float_of_int m) (sub_exp f)
  else
    sign *. Float.ldexp (float_of_int (m lor (1 lsl f.mant_bits))) (e - f.bias - f.mant_bits)

let max_value f = to_float f (max_code f)
let min_positive_subnormal f = Float.ldexp 1.0 (sub_exp f)

let of_float f x =
  if Float.is_nan x then nan_code f
  else
    let sign = if 1.0 /. x < 0.0 || x < 0.0 then 0x80 else 0 in
    let a = Float.abs x in
    if a = infinity then
      (* E5M2 keeps IEEE infinities; E4M3 has none, so saturate *)
      sign lor (if f.has_inf then inf_code f else max_code f)
    else if a > max_value f then sign lor max_code f
    else if a = 0.0 then sign
    else
      (* scale [a] into integer units of the quantum at its binade; the
         quotient is a small exact float, so RNE reduces to integer
         rounding with ties-to-even *)
      let _, e = Float.frexp a in
      let shift = Stdlib.max (e - 1 - f.mant_bits) (sub_exp f) in
      let q = a /. Float.ldexp 1.0 shift in
      let fl = Float.floor q in
      let rem = q -. fl in
      let qi = int_of_float fl in
      let qi =
        if rem > 0.5 then qi + 1
        else if rem < 0.5 then qi
        else if qi land 1 = 1 then qi + 1
        else qi
      in
      (* a mantissa carry moves the value up one binade *)
      let qi, shift =
        if qi = 1 lsl (f.mant_bits + 1) then (1 lsl f.mant_bits, shift + 1)
        else (qi, shift)
      in
      if qi < 1 lsl f.mant_bits then sign lor qi (* subnormal (shift = sub_exp) *)
      else
        let e_field = shift + f.mant_bits + f.bias in
        let code = (e_field lsl f.mant_bits) lor (qi land mant_mask f) in
        if code > max_code f then sign lor max_code f else sign lor code

let round f x = to_float f (of_float f x)
