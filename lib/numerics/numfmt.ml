module Fx = Fixed_point

type t =
  | Fixed of Fx.fmt
  | Fp4
  | Fp8 of Fp8.fmt
  | Bf16
  | Fp16
  | Fp32

let fixed ~total_bits ~frac_bits = Fixed (Fx.fmt ~total_bits ~frac_bits)
let e4m3 = Fp8 Fp8.e4m3
let e5m2 = Fp8 Fp8.e5m2

let name = function
  | Fixed f -> Printf.sprintf "q%d.%d" (f.Fx.total_bits - f.Fx.frac_bits) f.Fx.frac_bits
  | Fp4 -> "fp4_e2m1"
  | Fp8 f -> f.Fp8.name
  | Bf16 -> "bf16"
  | Fp16 -> "fp16"
  | Fp32 -> "fp32"

let bits = function
  | Fixed f -> f.Fx.total_bits
  | Fp4 -> 4
  | Fp8 _ -> 8
  | Bf16 | Fp16 -> 16
  | Fp32 -> 32

let max_value = function
  | Fixed f -> Fx.to_float f (Fx.max_int_value f)
  | Fp4 -> Fp4.max_value
  | Fp8 f -> Fp8.max_value f
  | Bf16 -> Bfloat16.max_value
  | Fp16 -> Fp16.max_value
  | Fp32 -> Int32.float_of_bits 0x7F7FFFFFl

let quantize t x =
  match t with
  | Fixed f -> Fx.round f x
  | _ ->
      let q =
        match t with
        | Fixed _ -> assert false
        | Fp4 -> Fp4.round x
        | Fp8 f -> Fp8.round f x
        | Bf16 -> Bfloat16.round x
        | Fp16 -> Fp16.round x
        | Fp32 -> Fp16.round32 x
      in
      (* unify the overflow convention across the stack: every format
         saturates finite inputs to its largest finite magnitude instead of
         rounding to infinity (FP8 already does; binary16/32 and bfloat16
         follow IEEE, so clamp here) *)
      if Float.is_finite x && not (Float.is_finite q) then
        Float.copy_sign (max_value t) x
      else q

(* (explicit mantissa bits, unbiased exponent of the smallest normal) *)
let float_params = function
  | Fixed _ -> invalid_arg "Numfmt.float_params: fixed format"
  | Fp4 -> (1, 0) (* E2M1: one explicit mantissa bit, min normal 2^0 *)
  | Fp8 f -> (f.Fp8.mant_bits, 1 - f.Fp8.bias)
  | Bf16 -> (7, -126)
  | Fp16 -> (10, -14)
  | Fp32 -> (23, -126)

let quantum t ~mag =
  match t with
  | Fixed f -> Float.ldexp 1.0 (-(f.Fx.frac_bits + 1))
  | _ ->
      if mag = 0.0 then 0.0
      else
        let mant, min_normal_exp = float_params t in
        (* mag = m * 2^e with m in [0.5, 1), so every |x| <= mag sits at or
           below the [2^(e-1), 2^e) binade whose ulp is 2^(e-1-mant); the
           spacing never shrinks below the subnormal quantum *)
        let _, e = Float.frexp mag in
        let ulp_exp = Stdlib.max (e - 1 - mant) (min_normal_exp - mant) in
        Float.ldexp 1.0 (ulp_exp - 1)

let exact_sums = function Fixed _ -> true | _ -> false

let catalogue =
  [
    Fp4;
    e4m3;
    e5m2;
    fixed ~total_bits:8 ~frac_bits:4;
    fixed ~total_bits:12 ~frac_bits:8;
    Bf16;
    Fp16;
    fixed ~total_bits:16 ~frac_bits:8;
    fixed ~total_bits:32 ~frac_bits:16;
    Fp32;
  ]

let of_string s =
  match s with
  | "fp4_e2m1" | "e2m1" -> Some Fp4
  | "fp8_e4m3" | "e4m3" -> Some e4m3
  | "fp8_e5m2" | "e5m2" -> Some e5m2
  | "bf16" -> Some Bf16
  | "fp16" -> Some Fp16
  | "fp32" -> Some Fp32
  | _ -> (
      match String.index_opt s '.' with
      | Some dot when String.length s > 1 && s.[0] = 'q' -> (
          try
            let int_bits = int_of_string (String.sub s 1 (dot - 1)) in
            let frac_bits =
              int_of_string (String.sub s (dot + 1) (String.length s - dot - 1))
            in
            Some (fixed ~total_bits:(int_bits + frac_bits) ~frac_bits)
          with Invalid_argument _ | Failure _ -> None)
      | _ -> None)
