type t = {
  name : string;
  format : float array -> float array;
  exp_shifted : float array -> float array;
  gelu : float array -> float array;
  silu : float array -> float array;
  relu : float array -> float array;
  sin : float -> float;
  cos : float -> float;
  div : float -> float -> float;
  isqrt : float -> float;
}

let max_of xs = Array.fold_left Float.max neg_infinity xs

let gelu_tanh_exact x =
  let c = sqrt (2.0 /. Float.pi) in
  0.5 *. x *. (1.0 +. Stdlib.tanh (c *. (x +. (0.044715 *. x *. x *. x))))

let silu_exact x = x /. (1.0 +. Stdlib.exp (-.x))
let relu_v xs = Array.map (fun x -> Float.max 0.0 x) xs

let exact =
  {
    name = "fp64-exact";
    format = (fun xs -> xs);
    exp_shifted =
      (fun xs ->
        let m = max_of xs in
        Array.map (fun x -> Stdlib.exp (x -. m)) xs);
    gelu = (fun xs -> Array.map (fun x -> x *. Lut.gauss_cdf_exact x) xs);
    silu = (fun xs -> Array.map silu_exact xs);
    relu = relu_v;
    sin = Stdlib.sin;
    cos = Stdlib.cos;
    div = ( /. );
    isqrt = (fun x -> 1.0 /. sqrt x);
  }

let fp16_format xs = Array.map Fp16.round xs

let fp16_reference =
  {
    exact with
    name = "fp16";
    format = fp16_format;
    exp_shifted =
      (fun xs ->
        let xs = fp16_format xs in
        let m = max_of xs in
        Array.map (fun x -> Fp16.round32 (Stdlib.exp (x -. m))) xs);
    gelu =
      (fun xs ->
        Array.map (fun x -> Fp16.round32 (x *. Lut.gauss_cdf_exact x)) (fp16_format xs));
    silu = (fun xs -> Array.map (fun x -> Fp16.round32 (silu_exact x)) (fp16_format xs));
    relu = (fun xs -> relu_v (fp16_format xs));
    div = (fun a b -> Fp16.round32 (a /. b));
  }

let int16_format xs =
  let absmax = Array.fold_left (fun a x -> Float.max a (Float.abs x)) 0.0 xs in
  let scale = Quant.scale_for ~bits:16 ~absmax in
  Array.map
    (fun x -> float_of_int (Quant.quantize_value ~bits:16 ~scale x) *. scale)
    xs

let int8_format xs =
  (* I-BERT's statically calibrated INT8 activation grid *)
  let scale = Quant.scale_for ~bits:8 ~absmax:Ibert.calibrated_absmax in
  Array.map
    (fun x -> float_of_int (Quant.quantize_value ~bits:8 ~scale x) *. scale)
    xs

(* ----------------------------------------------- pluggable PICACHU prims *)

(* The shared backend signature: one scalar primitive per Table 1 building
   block, at the backend's fidelity (rounding included — the FP instances
   round products through FP32, the INT instances ride the quantized grid).
   [of_prims] supplies the vector plumbing every instance shares: apply the
   I/O format, shift the softmax numerator by the running maximum, map. *)
type prims = {
  p_name : string;
  p_format : float array -> float array;
  p_exp_shifted : float -> float;  (** [exp d] for a max-shifted [d <= 0] *)
  p_gelu : float -> float;  (** on an already-formatted input *)
  p_silu : float -> float;
  p_sin : float -> float;
  p_cos : float -> float;
  p_div : float -> float -> float;
  p_isqrt : float -> float;
}

let of_prims p =
  {
    name = p.p_name;
    format = p.p_format;
    exp_shifted =
      (fun xs ->
        let xs = p.p_format xs in
        let m = max_of xs in
        Array.map (fun x -> p.p_exp_shifted (x -. m)) xs);
    gelu = (fun xs -> Array.map p.p_gelu (p.p_format xs));
    silu = (fun xs -> Array.map p.p_silu (p.p_format xs));
    relu = (fun xs -> relu_v (p.p_format xs));
    sin = p.p_sin;
    cos = p.p_cos;
    div = p.p_div;
    isqrt = p.p_isqrt;
  }

let taylor_fp_prims ?(order = 6) () =
  let cfg = { Taylor.order } in
  let lut = Lazy.force Lut.gauss_cdf in
  {
    p_name = Printf.sprintf "ours-fp16(order %d)" order;
    p_format = fp16_format;
    p_exp_shifted = Taylor.exp ~cfg;
    p_gelu = (fun x -> Fp16.round32 (x *. Lut.eval lut x));
    p_silu = (fun x -> Fp16.round32 (x *. Taylor.sigmoid ~cfg x));
    p_sin = Taylor.sin ~cfg;
    p_cos = Taylor.cos ~cfg;
    p_div = Taylor.div;
    p_isqrt = (fun x -> Taylor.isqrt x);
  }

let taylor_int_prims () =
  let lut = Lazy.force Lut.gauss_cdf in
  {
    p_name = "ours-int16";
    p_format = int16_format;
    p_exp_shifted = Int_ops.exp;
    p_gelu = (fun x -> x *. Lut.eval lut x);
    p_silu = (fun x -> x *. Int_ops.sigmoid x);
    p_sin = Int_ops.sin;
    p_cos = Int_ops.cos;
    p_div = Int_ops.div;
    p_isqrt = Int_ops.isqrt;
  }

let nli_fp_prims () =
  {
    p_name = "nli-fp16";
    p_format = fp16_format;
    p_exp_shifted = (fun d -> Fp16.round32 (Nli.exp_neg d));
    p_gelu = (fun x -> Fp16.round32 (Nli.gelu x));
    p_silu = (fun x -> Fp16.round32 (Nli.silu x));
    p_sin = (fun x -> Fp16.round32 (Nli.sin x));
    p_cos = (fun x -> Fp16.round32 (Nli.cos x));
    p_div = (fun a b -> Fp16.round32 (Nli.div a b));
    p_isqrt = (fun x -> Fp16.round32 (Nli.isqrt x));
  }

let nli_int_prims () =
  {
    p_name = "nli-int16";
    p_format = int16_format;
    p_exp_shifted = Nli.exp_neg;
    p_gelu = Nli.gelu;
    p_silu = Nli.silu;
    p_sin = Nli.sin;
    p_cos = Nli.cos;
    p_div = Nli.div;
    p_isqrt = Nli.isqrt;
  }

let ours_fp ?(order = 6) () = of_prims (taylor_fp_prims ~order ())
let ours_int ?order:(_ = 6) () = of_prims (taylor_int_prims ())
let nli_fp () = of_prims (nli_fp_prims ())
let nli_int () = of_prims (nli_int_prims ())

let ibert =
  {
    name = "i-bert(int8)";
    format = int8_format;
    exp_shifted = Ibert.exp_v;
    gelu = Ibert.gelu_v;
    silu =
      (fun xs ->
        (* SiLU has no I-BERT kernel; port via x * i-sigmoid(x), both on the
           INT8 grid — the porting choice the paper's Table 2 evaluates *)
        let s = Ibert.sigmoid_v xs in
        Array.mapi (fun i x -> let q = int8_format [| x |] in q.(0) *. s.(i)) xs);
    relu = (fun xs -> relu_v (int8_format xs));
    sin = (fun x -> (int8_format [| Stdlib.sin x |]).(0));
    cos = (fun x -> (int8_format [| Stdlib.cos x |]).(0));
    div = ( /. );
    isqrt = Ibert.isqrt_scalar;
  }

let gemmlowp =
  {
    name = "gemmlowp(fixed)";
    format = Gemmlowp.(fun xs ->
        Array.map (fun x -> Float.max (-.static_range) (Float.min static_range x)) xs);
    exp_shifted = Gemmlowp.exp_v;
    gelu = Gemmlowp.gelu_v;
    silu =
      (fun xs ->
        let s = Gemmlowp.sigmoid_v xs in
        Array.mapi (fun i x -> x *. s.(i)) xs);
    relu = relu_v;
    sin = (fun x -> Fixed_point.round Fixed_point.q15 (Stdlib.sin x));
    cos = (fun x -> Fixed_point.round Fixed_point.q15 (Stdlib.cos x));
    div = ( /. );
    isqrt = (fun x -> Fixed_point.round (Fixed_point.fmt ~total_bits:32 ~frac_bits:16) (1.0 /. sqrt x));
  }

let all_backends =
  [ exact; ours_fp (); ours_int (); nli_fp (); nli_int (); ibert; gemmlowp ]

let hybrid ~name ~base ~damaged ~only =
  match only with
  | `Softmax -> { base with name; exp_shifted = damaged.exp_shifted; div = damaged.div }
  | `Activation ->
      { base with name; gelu = damaged.gelu; silu = damaged.silu; relu = damaged.relu }
  | `Norm -> { base with name; isqrt = damaged.isqrt; format = damaged.format }
  | `Rope -> { base with name; sin = damaged.sin; cos = damaged.cos }
