(** Name resolution for every LUT a kernel can reference via [Op.Lut].

    One authority shared by the interpreter, the hardware executor, the
    verifier's PWL transfer rules and the mapper's ROM-capacity check:
    ["phi"] is the uniform Gaussian-CDF CoT table, ["nli.*"] are the
    fitted non-uniform NLI segment tables ({!Nli.standard}). *)

val find_opt : string -> Lut.t option
val known : string -> bool

val footprint_bytes : string list -> int
(** Total ROM bytes of the named tables, deduplicated by name (references
    to one table share one resident copy); unknown names contribute 0. *)

val lipschitz : string -> float option
(** Sound Lipschitz constant of the named table's clamped interpolant
    (["phi"] keeps its historical 0.4), or [None] for unknown tables. *)

val interval : string -> float -> float -> float * float
(** Sound output range of the named table over a query interval;
    [(-inf, +inf)] for unknown tables. *)
