(* Q5.26 fixed point on 32-bit words, following gemmlowp's
   fixedpoint/fixedpoint.h structure. *)
let q26 = Fixed_point.fmt ~total_bits:32 ~frac_bits:26
let one_q26 = 1 lsl 26
let quarter_q26 = one_q26 / 4
let static_range = 16.0  (* Q5.26 format bound *)

(* exp(r) for r in (-1/4, 0], gemmlowp's
   exp_on_interval_between_negative_one_quarter_and_0_excl: a 4th-order
   Taylor rearrangement evaluated in fixed point. *)
let exp_on_quarter_interval r_q26 =
  let mul = Fixed_point.mul q26 in
  let x = r_q26 + (quarter_q26 / 2) (* recentred at -1/8 as gemmlowp does *) in
  let x2 = mul x x in
  let x3 = mul x2 x in
  let x4 = mul x3 x in
  let c_exp_neg_eighth = Fixed_point.of_float q26 (exp (-0.125)) in
  let term =
    one_q26 + x + (x2 / 2) + (x3 / 6) + (x4 / 24)
  in
  mul c_exp_neg_eighth term

let exp_barrel_constants =
  (* exp(-2^k / 4) for k = 0..6 in Q26 *)
  Lazy.from_val (Array.init 7 (fun k -> Fixed_point.of_float q26 (exp (-.(2.0 ** float_of_int k) /. 4.0))))

let exp_on_negative x =
  if x >= 0.0 then 1.0
  else if x < -16.0 then 0.0
  else
    let x_q = Fixed_point.of_float (Fixed_point.fmt ~total_bits:40 ~frac_bits:26) x in
    (* number of whole quarters (towards -inf) and the remainder in (-1/4, 0] *)
    let neg_quarters = -x_q / quarter_q26 in
    let neg_quarters =
      if -x_q mod quarter_q26 = 0 then neg_quarters else neg_quarters + 1
    in
    let r_q26 = x_q + (neg_quarters * quarter_q26) in
    let acc = ref (exp_on_quarter_interval r_q26) in
    let consts = Lazy.force exp_barrel_constants in
    let n = ref neg_quarters and k = ref 0 in
    while !n > 0 && !k < 7 do
      if !n land 1 = 1 then acc := Fixed_point.mul q26 !acc consts.(!k);
      n := !n asr 1;
      incr k
    done;
    if !n > 0 then 0.0 else Fixed_point.to_float q26 !acc

let logistic x =
  (* clamp to the static calibrated range, then use
     sigmoid(x) = 1/(1 + exp(-|x|)) with fixed-point one-over-one-plus-x *)
  let x = Float.max (-.static_range) (Float.min static_range x) in
  let e = exp_on_negative (-.Float.abs x) in
  let e_q = Fixed_point.of_float q26 e in
  (* one_over_one_plus_x_for_x_in_0_1 via Newton in Q26 *)
  let denom_q = one_q26 + e_q in
  let y = ref (Fixed_point.of_float q26 (1.0 /. (1.0 +. Fixed_point.to_float q26 e_q))) in
  (* one Newton polish: y <- y (2 - d y) *)
  let two_q = 2 * one_q26 in
  let dy = Fixed_point.mul q26 denom_q !y in
  y := Fixed_point.mul q26 !y (Fixed_point.saturate q26 (two_q - dy));
  let s = Fixed_point.to_float q26 !y in
  if x >= 0.0 then Float.min 1.0 (1.0 -. (s *. e)) else s *. e

let tanh x =
  let x = Float.max (-.static_range) (Float.min static_range x) in
  (* tanh(x) = 2 logistic(2x) - 1 *)
  (2.0 *. logistic (2.0 *. x)) -. 1.0

let static_quantize xs =
  (* per-tensor INT16 requantization at the operator boundary, the usual
     gemmlowp deployment; damage comes from the fixed-point kernels, not
     from input clipping *)
  let absmax = Array.fold_left (fun a x -> Float.max a (Float.abs x)) 0.0 xs in
  let scale = Quant.scale_for ~bits:16 ~absmax in
  Array.map
    (fun x ->
      let q = Quant.quantize_value ~bits:16 ~scale x in
      float_of_int q *. scale)
    xs

let exp_v xs =
  let xs' = static_quantize xs in
  let m = Array.fold_left Float.max neg_infinity xs' in
  Array.map (fun x -> exp_on_negative (x -. m)) xs'

let sigmoid_v xs = Array.map logistic (static_quantize xs)
let tanh_v xs = Array.map tanh (static_quantize xs)

let gelu_v xs =
  let c = sqrt (2.0 /. Float.pi) in
  Array.map
    (fun x -> 0.5 *. x *. (1.0 +. tanh (c *. (x +. (0.044715 *. x *. x *. x)))))
    (static_quantize xs)
