(* A hand-rolled persistent domain pool (no domainslib): n-1 worker domains
   block on a condition variable; a parallel region bumps a generation
   counter, hands every worker the same thunk, and the caller participates
   before waiting for stragglers.  Work inside a region is distributed by an
   atomic chunk counter, so load balancing is dynamic while the per-index
   computation stays exactly the sequential one. *)

type pool = {
  size : int;
  mutable workers : unit Domain.t array;
  region_lock : Mutex.t;  (* serializes concurrent outer callers *)
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;
  mutable body : (unit -> unit) option;
  mutable pending : int;
  mutable stop : bool;
}

(* Set while a domain executes inside a parallel region; nested combinator
   calls check it and run inline. *)
let inside_region : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let in_parallel () = Domain.DLS.get inside_region

let run_region_body body =
  Domain.DLS.set inside_region true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set inside_region false) body

let rec worker_loop pool seen =
  Mutex.lock pool.lock;
  while (not pool.stop) && pool.generation = seen do
    Condition.wait pool.work_ready pool.lock
  done;
  if pool.stop then Mutex.unlock pool.lock
  else begin
    let generation = pool.generation in
    let body = pool.body in
    Mutex.unlock pool.lock;
    (match body with
    | Some b -> ( try run_region_body b with _ -> () )
    | None -> ());
    Mutex.lock pool.lock;
    pool.pending <- pool.pending - 1;
    if pool.pending = 0 then Condition.broadcast pool.work_done;
    Mutex.unlock pool.lock;
    worker_loop pool generation
  end

let create n =
  let size = Stdlib.max 1 n in
  let pool =
    {
      size;
      workers = [||];
      region_lock = Mutex.create ();
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      generation = 0;
      body = None;
      pending = 0;
      stop = false;
    }
  in
  pool.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool 0));
  pool

let pool_size p = p.size

let shutdown p =
  Mutex.lock p.lock;
  let workers = p.workers in
  p.workers <- [||];
  p.stop <- true;
  Condition.broadcast p.work_ready;
  Mutex.unlock p.lock;
  Array.iter Domain.join workers

(* The caller runs [body] too, then waits for every worker to drain it.
   Outer callers are serialized: nested calls never get here (they run
   inline via the [inside_region] guard). *)
let run_region p body =
  Mutex.lock p.region_lock;
  Mutex.lock p.lock;
  p.generation <- p.generation + 1;
  p.body <- Some body;
  p.pending <- Array.length p.workers;
  Condition.broadcast p.work_ready;
  Mutex.unlock p.lock;
  (try run_region_body body with _ -> ());
  Mutex.lock p.lock;
  while p.pending > 0 do
    Condition.wait p.work_done p.lock
  done;
  p.body <- None;
  Mutex.unlock p.lock;
  Mutex.unlock p.region_lock

let default_size () =
  let hw = Stdlib.max 1 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "PICACHU_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      (* clamp to the hardware: these kernels are compute-bound, so
         oversubscribing a small machine only adds GC-coordination and
         scheduling overhead *)
      | Some n when n >= 1 -> Stdlib.min n hw
      | _ -> invalid_arg "PICACHU_DOMAINS: expected a positive integer")
  | None -> hw

let global_lock = Mutex.create ()
let global_pool : pool option ref = ref None
let exit_hook_installed = ref false

let global () =
  Mutex.lock global_lock;
  let p =
    match !global_pool with
    | Some p -> p
    | None ->
        let p = create (default_size ()) in
        global_pool := Some p;
        if not !exit_hook_installed then begin
          exit_hook_installed := true;
          at_exit (fun () ->
              match !global_pool with
              | Some p ->
                  global_pool := None;
                  shutdown p
              | None -> ())
        end;
        p
  in
  Mutex.unlock global_lock;
  p

let size () = pool_size (global ())

let with_pool ~size f =
  let p = create size in
  Mutex.lock global_lock;
  let saved = !global_pool in
  global_pool := Some p;
  Mutex.unlock global_lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock global_lock;
      global_pool := saved;
      Mutex.unlock global_lock;
      shutdown p)
    f

let resolve = function Some p -> p | None -> global ()

let seq_for lo hi f =
  for i = lo to hi - 1 do
    f i
  done

let parallel_for ?pool ?chunk lo hi f =
  let n = hi - lo in
  if n <= 0 then ()
  else if in_parallel () then seq_for lo hi f
  else
    let p = resolve pool in
    let alive = p.size > 1 && Array.length p.workers > 0 in
    if (not alive) || n = 1 then seq_for lo hi f
    else begin
      let chunk_size =
        match chunk with
        | Some c -> Stdlib.max 1 c
        | None -> Stdlib.max 1 ((n + (4 * p.size) - 1) / (4 * p.size))
      in
      let nchunks = (n + chunk_size - 1) / chunk_size in
      if nchunks <= 1 then seq_for lo hi f
      else begin
        let next = Atomic.make 0 in
        let error : (exn * Printexc.raw_backtrace) option Atomic.t = Atomic.make None in
        let body () =
          let continue = ref true in
          while !continue do
            let c = Atomic.fetch_and_add next 1 in
            if c >= nchunks || Atomic.get error <> None then continue := false
            else begin
              let clo = lo + (c * chunk_size) in
              let chi = Stdlib.min hi (clo + chunk_size) in
              try seq_for clo chi f
              with e ->
                let bt = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set error None (Some (e, bt)));
                continue := false
            end
          done
        in
        run_region p body;
        match Atomic.get error with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ()
      end
    end

let parallel_map_array ?pool f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let first = f (Array.unsafe_get a 0) in
    let out = Array.make n first in
    parallel_for ?pool 1 n (fun i -> Array.unsafe_set out i (f (Array.unsafe_get a i)));
    out
  end

let parallel_reduce ?pool ?chunk ~lo ~hi ~init ~fold map =
  let n = hi - lo in
  if n <= 0 then init
  else begin
    (* block boundaries depend only on the range, never on the pool size *)
    let block_size =
      match chunk with Some c -> Stdlib.max 1 c | None -> Stdlib.max 1 ((n + 63) / 64)
    in
    let nblocks = (n + block_size - 1) / block_size in
    let block b =
      let blo = lo + (b * block_size) in
      let bhi = Stdlib.min hi (blo + block_size) in
      let acc = ref (map blo) in
      for i = blo + 1 to bhi - 1 do
        acc := fold !acc (map i)
      done;
      !acc
    in
    let partials = parallel_map_array ?pool block (Array.init nblocks (fun b -> b)) in
    Array.fold_left fold init partials
  end
