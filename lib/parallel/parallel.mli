(** A persistent domain pool and data-parallel combinators.

    The pool is sized by the [PICACHU_DOMAINS] environment variable (default:
    {!Domain.recommended_domain_count}).  A pool of size [n] owns [n - 1]
    worker domains; the calling domain always participates in a parallel
    region, so size 1 means "no domains spawned, run everything inline".

    {2 Determinism contract}

    Every combinator produces results that are bit-identical for any pool
    size, including 1:

    - {!parallel_for} and {!parallel_map_array} assign each index exactly the
      same computation as the sequential loop; callers must write to disjoint
      locations per index, and then only scheduling (never arithmetic)
      depends on the pool.
    - {!parallel_reduce} splits the index range into fixed-size blocks whose
      boundaries depend only on the range (never on the pool size), folds
      each block sequentially, and combines block partials in block order.
      The result is therefore identical across pool sizes, though it may
      differ in the last ulp from an unblocked left fold when the operator
      is not associative.

    Nested parallel regions run sequentially: a worker (or the caller, while
    inside a region) that invokes another combinator executes it inline.
    This both avoids deadlock on the shared pool and keeps the arithmetic of
    nested kernels identical to the sequential path. *)

type pool

val create : int -> pool
(** [create n] spawns [n - 1] worker domains ([n >= 1]; values are clamped
    to at least 1). *)

val shutdown : pool -> unit
(** Joins and discards the pool's workers.  Idempotent.  Using a pool after
    shutting it down runs everything sequentially. *)

val pool_size : pool -> int

val default_size : unit -> int
(** [PICACHU_DOMAINS] when set to a positive integer, otherwise
    {!Domain.recommended_domain_count}.  Either way the result is clamped to
    {!Domain.recommended_domain_count}: the hot kernels are compute-bound,
    so oversubscription never helps and idle domains tax every
    stop-the-world minor collection.  ({!create} and {!with_pool} accept any
    size — the determinism tests rely on that to exercise multi-domain
    pools on any host.) *)

val global : unit -> pool
(** The ambient pool, created on first use with {!default_size} workers and
    shut down automatically at exit. *)

val size : unit -> int
(** Size of the ambient pool (creates it on first use). *)

val in_parallel : unit -> bool
(** True while executing inside a parallel region (on any domain). *)

val with_pool : size:int -> (unit -> 'a) -> 'a
(** [with_pool ~size f] runs [f] with a fresh pool of [size] installed as
    the ambient pool, then restores the previous ambient pool and shuts the
    temporary one down (also on exception).  Used by the determinism tests
    to pin the pool size regardless of [PICACHU_DOMAINS]. *)

val parallel_for : ?pool:pool -> ?chunk:int -> int -> int -> (int -> unit) -> unit
(** [parallel_for lo hi f] runs [f i] for [lo <= i < hi].  Indices are
    dealt to workers in contiguous chunks ([chunk] overrides the automatic
    chunk size).  [f] must write only to locations owned by its index.  The
    first exception raised by any index is re-raised in the caller. *)

val parallel_map_array : ?pool:pool -> ('a -> 'b) -> 'a array -> 'b array
(** Like [Array.map], with each element mapped exactly once and results in
    input order. *)

val parallel_reduce :
  ?pool:pool ->
  ?chunk:int ->
  lo:int ->
  hi:int ->
  init:'a ->
  fold:('a -> 'a -> 'a) ->
  (int -> 'a) ->
  'a
(** [parallel_reduce ~lo ~hi ~init ~fold map]: chunked reduction of [map i]
    over [lo <= i < hi]; see the determinism contract above.  Returns [init]
    on an empty range.  ([map] is positional so the optional arguments are
    erased at full application.) *)
