module Registry = Picachu_nonlinear.Registry
module Workload = Picachu_llm.Workload
module Systolic = Picachu_systolic.Systolic

type t = { systolic : Systolic.t; nl_lanes : float; switch_cycles : int }

(* Effective nonlinear SIMD width: a PE row could hold dim elements, but
   each element needs its own segment's three quadratic coefficients from
   the weight bus, which broadcasts one coefficient set per cycle — the
   select + two Horner steps leave ~dim/4 elements in flight.  Mode switch:
   drain + refill the dim-deep pipeline, plus a fixed coefficient-table
   reload for the incoming operator's piecewise segments. *)
let default =
  {
    systolic = Systolic.default;
    nl_lanes = float_of_int (Systolic.default.Systolic.dim / 4);
    switch_cycles = (2 * Systolic.default.Systolic.dim) + 32;
  }

(* Piecewise-quadratic evaluation on the MAC datapath: segment compare +
   two Horner MACs for one polynomial; exp/reciprocal/rsqrt cost one
   polynomial each; reduction passes (max, sum, mean, var) stream through
   the array and fold to ~1 MAC op per element per pass. *)
let mac_ops_per_elem = function
  | Registry.Relu -> 1.0
  | Registry.Gelu | Registry.Silu -> 5.0
  | Registry.Swiglu | Registry.Geglu -> 6.0
  | Registry.Softmax -> 8.0 (* max pass, exp, sum pass, reciprocal + mul *)
  | Registry.Layernorm -> 6.0 (* mean, var, rsqrt, scale *)
  | Registry.Rmsnorm -> 5.0
  | Registry.Rope -> 6.0 (* sin + cos polynomials + rotation muls *)

let nl_cycles t (nl : Workload.nl) =
  let elems = nl.rows * nl.dim in
  let compute =
    int_of_float
      (ceil (float_of_int elems *. mac_ops_per_elem nl.op /. t.nl_lanes))
  in
  nl.nl_count * (compute + t.switch_cycles)

type result = { gemm_cycles : int; nl_cycles_total : int; total_cycles : int }

let run t (w : Workload.t) =
  let gemm_cycles =
    List.fold_left
      (fun acc (g : Workload.gemm) ->
        acc + (g.count * Systolic.gemm_cycles t.systolic ~m:g.m ~k:g.k ~n:g.n))
      0 w.gemms
  in
  let nl_cycles_total =
    List.fold_left (fun acc nl -> acc + nl_cycles t nl) 0 w.nls
  in
  { gemm_cycles; nl_cycles_total; total_cycles = gemm_cycles + nl_cycles_total }
