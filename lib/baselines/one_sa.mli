(** Behavioural model of ONE-SA (Sun et al., DATE'24) — the third
    architectural philosophy in the Figure 8 comparison.

    ONE-SA executes nonlinear operations *inside* the systolic array: the PE
    grid is reconfigured between GEMM tiles and evaluates piecewise-quadratic
    approximations on the MAC datapath itself.  Coverage is universal and the
    silicon premium is zero (no dedicated nonlinear unit, no near-core vector
    processor, no plug-in CGRA), but the array time-multiplexes between GEMM
    and nonlinear modes — every nonlinear instance pays a drain + reconfigure
    penalty, and the approximation runs on plain MACs with per-row segment
    coefficient broadcast, so only one PE row's worth of lanes is effective.

    Against Gemmini it removes the scalar-core cliff; against Tandem it
    trades the dedicated pipeline's overlap for area; against PICACHU it
    isolates what the plug-in CGRA buys *beyond* coverage: concurrency with
    the GEMM engine and operator-level parallelism. *)

module Registry = Picachu_nonlinear.Registry
module Workload = Picachu_llm.Workload

type t = {
  systolic : Picachu_systolic.Systolic.t;
  nl_lanes : float;
      (** effective SIMD width in nonlinear mode — coefficient-broadcast
          limited to ~dim/4, far below the dim^2 PEs doing GEMM *)
  switch_cycles : int;
      (** GEMM <-> nonlinear mode switch: pipeline drain/refill plus
          coefficient-table reload, paid once per nonlinear instance *)
}

val default : t

val mac_ops_per_elem : Registry.opkind -> float
(** MAC-datapath operations per element of the piecewise-quadratic
    evaluation (segment select, Horner steps, and any reduction passes
    folded in per element). *)

val nl_cycles : t -> Workload.nl -> int
(** Compute at [nl_lanes] effective lanes plus the per-instance mode
    switch.  No DMA term: operands are already resident in the array's
    SRAM from the producing GEMM — the whole point of executing
    in-array. *)

type result = { gemm_cycles : int; nl_cycles_total : int; total_cycles : int }

val run : t -> Workload.t -> result
(** GEMM and nonlinear phases strictly serialize (one array, two modes). *)
