type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_raw t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 = next_raw

let split t =
  let s = next_raw t in
  { state = s }

let copy t = { state = t.state }

let float t =
  (* 53 high bits -> [0,1) *)
  let bits = Int64.shift_right_logical (next_raw t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let int t n =
  (* a real raise, not [assert]: the check must survive [-noassert] builds,
     where a nonpositive [n] would otherwise reach [mod] *)
  if n <= 0 then invalid_arg "Rng.int: n must be > 0";
  (* mask to 62 bits: Int64.to_int wraps 63-bit-and-up values negative *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_raw t) 2) land max_int in
  bits mod n

let bool t = Int64.logand (next_raw t) 1L = 1L

let normal t ~mu ~sigma =
  let u1 = Stdlib.max 1e-300 (float t) in
  let u2 = float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let laplace t ~mu ~b =
  let u = float t -. 0.5 in
  let s = if u < 0.0 then -1.0 else 1.0 in
  (* [float t] = 0.0 makes u = -0.5 and the log argument exactly 0., so the
     draw would be -inf; clamp away from zero like [normal] clamps u1 *)
  mu -. (b *. s *. log (Stdlib.max 1e-300 (1.0 -. (2.0 *. abs_float u))))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
