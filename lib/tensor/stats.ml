type error_report = {
  max_abs : float;
  max_rel : float;
  rmse : float;
  mean_abs : float;
}

let report_of_pairs pairs =
  let n = Array.length pairs in
  if n = 0 then invalid_arg "Stats: empty sample";
  let max_abs = ref 0.0 and max_rel = ref 0.0 and sq = ref 0.0 and ab = ref 0.0 in
  Array.iter
    (fun (r, c) ->
      let e = abs_float (r -. c) in
      let rel = e /. Float.max 1e-12 (abs_float r) in
      if e > !max_abs then max_abs := e;
      if rel > !max_rel then max_rel := rel;
      sq := !sq +. (e *. e);
      ab := !ab +. e)
    pairs;
  let nf = float_of_int n in
  { max_abs = !max_abs; max_rel = !max_rel; rmse = sqrt (!sq /. nf); mean_abs = !ab /. nf }

let compare_tensors ~reference ~candidate =
  if Tensor.shape reference <> Tensor.shape candidate then
    invalid_arg "Stats.compare_tensors: shape mismatch";
  report_of_pairs
    (Array.init (Tensor.numel reference) (fun i ->
         (Tensor.get reference i, Tensor.get candidate i)))

let compare_fn ?(n = 1024) ~lo ~hi ~reference ~candidate () =
  if n < 2 then invalid_arg "Stats.compare_fn: n < 2";
  let step = (hi -. lo) /. float_of_int (n - 1) in
  report_of_pairs
    (Array.init n (fun i ->
         let x = lo +. (float_of_int i *. step) in
         (reference x, candidate x)))

let pp_error fmt r =
  Format.fprintf fmt "max_abs=%.3e max_rel=%.3e rmse=%.3e mean_abs=%.3e" r.max_abs
    r.max_rel r.rmse r.mean_abs

let geomean xs =
  match xs with
  | [] -> invalid_arg "Stats.geomean: empty"
  | _ ->
      let acc =
        List.fold_left
          (fun acc x ->
            if x <= 0.0 then invalid_arg "Stats.geomean: non-positive element";
            acc +. log x)
          0.0 xs
      in
      exp (acc /. float_of_int (List.length xs))

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let pos = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = Stdlib.min (n - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
