(** Dense float tensors.

    A deliberately small substrate: row-major [float array] data with an
    explicit shape.  Values are stored in float64; reduced-precision behaviour
    (FP16/INT16/...) is modelled by the numerics library, which rounds values
    through the target format and back.  This mirrors how the paper's RTL-level
    formats are evaluated against a float64 software reference. *)

type t

val create : int list -> t
(** [create shape] allocates a zero tensor. Raises [Invalid_argument] on a
    negative dimension or empty shape. *)

val init : int list -> (int -> float) -> t
(** [init shape f] fills position [i] (flat index) with [f i]. *)

val of_array : int list -> float array -> t
(** Wraps an existing array; the array is not copied. Raises
    [Invalid_argument] if the length does not match the shape. *)

val scalar : float -> t
(** A rank-1 singleton tensor. *)

val shape : t -> int list
val numel : t -> int
val data : t -> float array
(** The underlying storage (shared, mutable). *)

val get : t -> int -> float
(** Flat-index read. *)

val set : t -> int -> float -> unit
(** Flat-index write. *)

val get2 : t -> int -> int -> float
(** [get2 t i j] reads row [i], column [j] of a rank-2 tensor. *)

val set2 : t -> int -> int -> float -> unit

val rows : t -> int
(** First dimension of a rank >= 1 tensor. *)

val cols : t -> int
(** Second dimension of a rank-2 tensor. *)

val copy : t -> t
val reshape : t -> int list -> t
(** Shares storage; raises [Invalid_argument] if element counts differ. *)

val fill : t -> float -> unit
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val mapi_inplace : (int -> float -> float) -> t -> unit
val iteri : (int -> float -> unit) -> t -> unit
val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Element-wise product. *)

val scale : float -> t -> t
val dot : t -> t -> float
(** Inner product of same-size tensors (shape-agnostic, flat). *)

val matmul : t -> t -> t
(** [matmul a b] for rank-2 [a : m x k] and [b : k x n].  Large products are
    row-blocked across the ambient {!Picachu_parallel.Parallel} pool; each
    output row is computed exactly as in the sequential loop, so results are
    bit-identical for every pool size. *)

val matmul_nt : t -> t -> t
(** [matmul_nt a b] for [a : m x k] and [b : n x k] computes
    [a * transpose b] without materializing the transpose — the shape taken
    by attention scores ([q @ k^T]) and the logit projection against tied
    embeddings.  Bit-identical to [matmul a (transpose b)], and parallelized
    the same way as {!matmul}. *)

val transpose : t -> t
(** Rank-2 transpose (copies). *)

val row : t -> int -> t
(** [row t i] copies row [i] of a rank-2 tensor into a rank-1 tensor. *)

val set_row : t -> int -> t -> unit

val concat_cols : t -> t -> t
(** [concat_cols a b] concatenates rank-2 tensors along the column axis. *)

val sum : t -> float
val max_value : t -> float
val min_value : t -> float
val mean : t -> float
val variance : t -> float
(** Population variance. *)

val argmax : t -> int

val randn : Rng.t -> int list -> mu:float -> sigma:float -> t
val rand_uniform : Rng.t -> int list -> lo:float -> hi:float -> t
val rand_laplace : Rng.t -> int list -> mu:float -> b:float -> t

val equal : ?eps:float -> t -> t -> bool
(** Same shape and element-wise within [eps] (default 0: exact). *)

val pp : Format.formatter -> t -> unit
(** Prints shape and a bounded prefix of the data. *)
