(** Error and summary statistics used by the accuracy experiments. *)

type error_report = {
  max_abs : float;  (** worst-case absolute error *)
  max_rel : float;  (** worst-case relative error (guarded denominator) *)
  rmse : float;  (** root mean squared error *)
  mean_abs : float;  (** mean absolute error *)
}

val compare_tensors : reference:Tensor.t -> candidate:Tensor.t -> error_report
(** Element-wise error of [candidate] against [reference]. Raises
    [Invalid_argument] on shape mismatch. *)

val compare_fn :
  ?n:int -> lo:float -> hi:float -> reference:(float -> float) ->
  candidate:(float -> float) -> unit -> error_report
(** Error of a scalar function sampled on [n] evenly spaced points of
    [lo, hi] (default [n = 1024]). *)

val pp_error : Format.formatter -> error_report -> unit

val geomean : float list -> float
(** Geometric mean; the conventional aggregate for speedup ratios. Raises
    [Invalid_argument] on an empty list or a non-positive element. *)

val percentile : float array -> float -> float
(** [percentile a p] for [p] in [0, 100]; linear interpolation, copies and
    sorts with [Float.compare] (total order: NaNs sort below every other
    value, and no polymorphic-compare cost on hot metric paths). *)
