module Parallel = Picachu_parallel.Parallel

type t = { shape : int list; data : float array }

let numel_of_shape shape = List.fold_left ( * ) 1 shape

let check_shape shape =
  if shape = [] then invalid_arg "Tensor: empty shape";
  List.iter (fun d -> if d < 0 then invalid_arg "Tensor: negative dimension") shape

let create shape =
  check_shape shape;
  { shape; data = Array.make (numel_of_shape shape) 0.0 }

let init shape f =
  check_shape shape;
  { shape; data = Array.init (numel_of_shape shape) f }

let of_array shape data =
  check_shape shape;
  if Array.length data <> numel_of_shape shape then
    invalid_arg "Tensor.of_array: shape/data mismatch";
  { shape; data }

let scalar x = { shape = [ 1 ]; data = [| x |] }
let shape t = t.shape
let numel t = Array.length t.data
let data t = t.data
let get t i = t.data.(i)
let set t i v = t.data.(i) <- v

let cols t =
  match t.shape with
  | [ _; c ] -> c
  | _ -> invalid_arg "Tensor.cols: rank-2 expected"

let rows t =
  match t.shape with
  | r :: _ -> r
  | [] -> invalid_arg "Tensor.rows: empty shape"

let get2 t i j = t.data.((i * cols t) + j)
let set2 t i j v = t.data.((i * cols t) + j) <- v
let copy t = { t with data = Array.copy t.data }

let reshape t shape =
  check_shape shape;
  if numel_of_shape shape <> numel t then invalid_arg "Tensor.reshape: size mismatch";
  { t with shape }

let fill t v = Array.fill t.data 0 (Array.length t.data) v
let map f t = { t with data = Array.map f t.data }

let map2 f a b =
  if numel a <> numel b then invalid_arg "Tensor.map2: size mismatch";
  { a with data = Array.init (numel a) (fun i -> f a.data.(i) b.data.(i)) }

let mapi_inplace f t =
  for i = 0 to numel t - 1 do
    t.data.(i) <- f i t.data.(i)
  done

let iteri f t = Array.iteri f t.data
let fold f acc t = Array.fold_left f acc t.data
let add = map2 ( +. )
let sub = map2 ( -. )
let mul = map2 ( *. )
let scale s t = map (fun x -> s *. x) t

let dot a b =
  if numel a <> numel b then invalid_arg "Tensor.dot: size mismatch";
  let acc = ref 0.0 in
  for i = 0 to numel a - 1 do
    acc := !acc +. (a.data.(i) *. b.data.(i))
  done;
  !acc

(* Below this many multiply-accumulates a matmul is not worth a pool
   dispatch; the row kernels themselves are identical either way, so the
   choice never changes the result. *)
let par_flops_threshold = 32_768

let matmul a b =
  let m, k =
    match a.shape with [ m; k ] -> (m, k) | _ -> invalid_arg "Tensor.matmul: lhs rank"
  in
  let k', n =
    match b.shape with [ k'; n ] -> (k', n) | _ -> invalid_arg "Tensor.matmul: rhs rank"
  in
  if k <> k' then invalid_arg "Tensor.matmul: inner dimension mismatch";
  let out = create [ m; n ] in
  let ad = a.data and bd = b.data and od = out.data in
  (* row-blocked: each index owns one output row, so the parallel and
     sequential paths perform the same additions in the same order *)
  let row i =
    let arow = i * k and orow = i * n in
    for p = 0 to k - 1 do
      let aip = Array.unsafe_get ad (arow + p) in
      if aip <> 0.0 then
        let brow = p * n in
        for j = 0 to n - 1 do
          Array.unsafe_set od (orow + j)
            (Array.unsafe_get od (orow + j) +. (aip *. Array.unsafe_get bd (brow + j)))
        done
    done
  in
  if m * k * n < par_flops_threshold then
    for i = 0 to m - 1 do
      row i
    done
  else Parallel.parallel_for 0 m row;
  out

let matmul_nt a b =
  let m, k =
    match a.shape with [ m; k ] -> (m, k) | _ -> invalid_arg "Tensor.matmul_nt: lhs rank"
  in
  let n, k' =
    match b.shape with [ n; k' ] -> (n, k') | _ -> invalid_arg "Tensor.matmul_nt: rhs rank"
  in
  if k <> k' then invalid_arg "Tensor.matmul_nt: inner dimension mismatch";
  let out = create [ m; n ] in
  let ad = a.data and bd = b.data and od = out.data in
  (* dot-product form over rows of [b]; the [aip <> 0.0] skip mirrors
     [matmul] so [matmul_nt a b] is bit-identical to
     [matmul a (transpose b)] *)
  let row i =
    let arow = i * k and orow = i * n in
    for j = 0 to n - 1 do
      let brow = j * k in
      let acc = ref 0.0 in
      for p = 0 to k - 1 do
        let aip = Array.unsafe_get ad (arow + p) in
        if aip <> 0.0 then acc := !acc +. (aip *. Array.unsafe_get bd (brow + p))
      done;
      Array.unsafe_set od (orow + j) !acc
    done
  in
  if m * k * n < par_flops_threshold then
    for i = 0 to m - 1 do
      row i
    done
  else Parallel.parallel_for 0 m row;
  out

let transpose t =
  let m, n =
    match t.shape with [ m; n ] -> (m, n) | _ -> invalid_arg "Tensor.transpose: rank"
  in
  init [ n; m ] (fun idx ->
      let j = idx / m and i = idx mod m in
      t.data.((i * n) + j))

let row t i =
  let n = cols t in
  init [ n ] (fun j -> t.data.((i * n) + j))

let set_row t i r =
  let n = cols t in
  if numel r <> n then invalid_arg "Tensor.set_row: size mismatch";
  Array.blit r.data 0 t.data (i * n) n

let concat_cols a b =
  let m = rows a and na = cols a and nb = cols b in
  if rows b <> m then invalid_arg "Tensor.concat_cols: row mismatch";
  init [ m; na + nb ] (fun idx ->
      let i = idx / (na + nb) and j = idx mod (na + nb) in
      if j < na then a.data.((i * na) + j) else b.data.((i * nb) + (j - na)))

let sum t = fold ( +. ) 0.0 t

let max_value t =
  if numel t = 0 then invalid_arg "Tensor.max_value: empty";
  Array.fold_left Float.max t.data.(0) t.data

let min_value t =
  if numel t = 0 then invalid_arg "Tensor.min_value: empty";
  Array.fold_left Float.min t.data.(0) t.data

let mean t =
  if numel t = 0 then invalid_arg "Tensor.mean: empty";
  sum t /. float_of_int (numel t)

let variance t =
  let m = mean t in
  fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 t /. float_of_int (numel t)

let argmax t =
  if numel t = 0 then invalid_arg "Tensor.argmax: empty";
  let best = ref 0 in
  for i = 1 to numel t - 1 do
    if t.data.(i) > t.data.(!best) then best := i
  done;
  !best

let randn rng shape ~mu ~sigma = init shape (fun _ -> Rng.normal rng ~mu ~sigma)
let rand_uniform rng shape ~lo ~hi = init shape (fun _ -> Rng.uniform rng ~lo ~hi)
let rand_laplace rng shape ~mu ~b = init shape (fun _ -> Rng.laplace rng ~mu ~b)

let equal ?(eps = 0.0) a b =
  a.shape = b.shape
  &&
  let n = numel a in
  let ok = ref true and i = ref 0 in
  while !ok && !i < n do
    if abs_float (a.data.(!i) -. b.data.(!i)) > eps then ok := false;
    incr i
  done;
  !ok

let pp fmt t =
  let prefix = Stdlib.min 8 (numel t) in
  Format.fprintf fmt "tensor%a [" (fun fmt l ->
      List.iter (fun d -> Format.fprintf fmt " %d" d) l)
    t.shape;
  for i = 0 to prefix - 1 do
    Format.fprintf fmt "%s%g" (if i > 0 then "; " else "") t.data.(i)
  done;
  if numel t > prefix then Format.fprintf fmt "; ...";
  Format.fprintf fmt "]"
