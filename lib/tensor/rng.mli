(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the repository (synthetic workloads, surrogate
    model weights, property-test inputs beyond qcheck's own generators) flows
    through this module so that every experiment is reproducible bit-for-bit
    from a seed.  The core generator is splitmix64, which has a 64-bit state,
    passes BigCrush, and is trivially splittable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an arbitrary integer seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t
(** [copy t] duplicates the state without advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform float in [lo, hi). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n).
    @raise Invalid_argument if [n <= 0]. *)

val bool : t -> bool
(** Fair coin. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian sample via Box-Muller. *)

val laplace : t -> mu:float -> b:float -> float
(** Laplace sample; heavy-tailed activations in LLM layers are closer to
    Laplace than Gaussian, which matters when stressing approximation range.
    Always finite: the inverse-CDF log argument is clamped away from zero. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
