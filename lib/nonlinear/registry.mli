(** Catalogue of the supported nonlinear operations (paper Table 1), tying
    together their tensor-level evaluators, their CGRA kernels, and the
    metadata the workload model and the compiler need. *)

module Kernel = Picachu_ir.Kernel
module Kernels = Picachu_ir.Kernels

type opkind =
  | Softmax
  | Relu
  | Gelu
  | Geglu
  | Swiglu
  | Silu
  | Layernorm
  | Rmsnorm
  | Rope

val all : opkind list
val name : opkind -> string
val of_name : string -> opkind
(** Raises [Invalid_argument] on unknown names. *)

val of_name_opt : string -> opkind option
(** Total lookup for user-facing boundaries (CLI arguments, experiment
    rosters): [None] instead of an exception on unknown names. *)

val klass : opkind -> Kernel.klass
(** EO or RE (Table 1's black/blue split). *)

val kernel : Kernels.variant -> opkind -> Kernel.t
val streams_per_element : opkind -> int
(** Input+output stream elements touched per logical element (e.g. RoPE
    reads x1, x2, angle and writes y1, y2 -> 5/2 per rotated value); used for
    DMA sizing. *)

val mathematical_operators : opkind -> string list
(** Table 1's "Mathematical Operator" column. *)

val vectorizable : opkind -> bool
(** Whether the INT16 4-lane mode applies (division-free inner loops
    vectorize fully; softmax's divide loop splits, §5.3.3). *)
