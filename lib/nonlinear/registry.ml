module Kernel = Picachu_ir.Kernel
module Kernels = Picachu_ir.Kernels

type opkind =
  | Softmax
  | Relu
  | Gelu
  | Geglu
  | Swiglu
  | Silu
  | Layernorm
  | Rmsnorm
  | Rope

let all = [ Softmax; Relu; Gelu; Geglu; Swiglu; Silu; Layernorm; Rmsnorm; Rope ]

let name = function
  | Softmax -> "softmax"
  | Relu -> "relu"
  | Gelu -> "gelu"
  | Geglu -> "geglu"
  | Swiglu -> "swiglu"
  | Silu -> "silu"
  | Layernorm -> "layernorm"
  | Rmsnorm -> "rmsnorm"
  | Rope -> "rope"

let of_name_opt s = List.find_opt (fun k -> name k = s) all

let of_name s =
  match of_name_opt s with
  | Some k -> k
  | None -> invalid_arg ("Registry.of_name: " ^ s)

let klass = function
  | Softmax | Layernorm | Rmsnorm -> Kernel.RE
  | Relu | Gelu | Geglu | Swiglu | Silu | Rope -> Kernel.EO

let kernel variant k = Kernels.by_name variant (name k)

let streams_per_element = function
  | Softmax -> 2 (* read x, write y; the intermediate e stays on chip *)
  | Relu | Gelu | Silu -> 2
  | Geglu | Swiglu -> 3 (* two inputs, one output *)
  | Layernorm | Rmsnorm -> 2
  | Rope -> 3 (* x1+x2+angle in, y1+y2 out, per element pair ~ 5/2; round up *)

let mathematical_operators = function
  | Softmax -> [ "division"; "exponential" ]
  | Relu -> [ "maximum" ]
  | Gelu | Geglu | Swiglu | Silu -> [ "division"; "exponential" ]
  | Layernorm | Rmsnorm -> [ "inverted square root" ]
  | Rope -> [ "sine"; "cosine" ]

let vectorizable = function
  | Softmax -> true (* the divide loop splits per lane but still vectorizes *)
  | Relu | Gelu | Geglu | Swiglu | Silu | Layernorm | Rmsnorm | Rope -> true
