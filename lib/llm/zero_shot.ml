module Approx = Picachu_numerics.Approx
module Rng = Picachu_tensor.Rng
module Tensor = Picachu_tensor.Tensor
module Nl = Picachu_nonlinear
module Parallel = Picachu_parallel.Parallel

type item = { context : int array; cand_a : int; cand_b : int; label_a : bool }
type task = { task_name : string; items : item list }

let task_names = [ "arc-c"; "arc-e"; "hellaswag"; "piqa"; "winogrande" ]
let context_len_of = function
  | "arc-c" -> 24
  | "arc-e" -> 16
  | "hellaswag" -> 40
  | "piqa" -> 20
  | "winogrande" -> 12
  | _ -> 16

(* One forward over the context yields the log-probabilities of every
   possible continuation at once (causality: the candidate token cannot
   influence the logits that score it). *)
let continuation_logprobs model backend context =
  let lg = Surrogate.logits model backend context in
  let pos = Array.length context - 1 in
  let vocab = Tensor.cols lg in
  let row = Array.init vocab (fun j -> Tensor.get2 lg pos j) in
  if not (Array.for_all Float.is_finite row) then Array.make vocab neg_infinity
  else
    let probs = Nl.Softmax.exact_row row in
    Array.map (fun p -> if p <= 0.0 then neg_infinity else log p) probs

let score_candidate model backend context candidate =
  (continuation_logprobs model backend context).(candidate)

let make_tasks ~seed ~items_per_task ~margin model =
  let c = Surrogate.cfg model in
  let rng = Rng.create seed in
  List.map
    (fun task_name ->
      let ctx_len = context_len_of task_name in
      let items = ref [] in
      let attempts = ref 0 in
      while List.length !items < items_per_task && !attempts < items_per_task * 20 do
        incr attempts;
        let context = Array.init ctx_len (fun _ -> Rng.int rng c.Surrogate.vocab) in
        let cand_a = Rng.int rng c.Surrogate.vocab in
        let lp = continuation_logprobs model Approx.exact context in
        (* the competitor is the *closest-scored* other token at least
           [margin] away: real benchmark items are near-ties, which is what
           makes format-level perturbations measurable *)
        let cand_b = ref (-1) and best_gap = ref infinity in
        Array.iteri
          (fun tok l ->
            if tok <> cand_a then
              let gap = Float.abs (l -. lp.(cand_a)) in
              if gap >= margin && gap < !best_gap then begin
                best_gap := gap;
                cand_b := tok
              end)
          lp;
        if !cand_b >= 0 then
          let cand_b = !cand_b in
          items :=
            { context; cand_a; cand_b; label_a = lp.(cand_a) > lp.(cand_b) } :: !items
      done;
      { task_name; items = List.rev !items })
    task_names

let accuracy model backend task =
  match task.items with
  | [] -> 0.0
  | items ->
      (* each item is an independent forward pass; score them across the
         domain pool (integer counting, so the reduction is exact) *)
      let verdicts =
        Parallel.parallel_map_array
          (fun it ->
            let lp = continuation_logprobs model backend it.context in
            lp.(it.cand_a) > lp.(it.cand_b) = it.label_a)
          (Array.of_list items)
      in
      let correct = Array.fold_left (fun acc ok -> if ok then acc + 1 else acc) 0 verdicts in
      float_of_int correct /. float_of_int (List.length items)
