module Tensor = Picachu_tensor.Tensor
module Rng = Picachu_tensor.Rng
module Approx = Picachu_numerics.Approx
module Nl = Picachu_nonlinear
module Mz = Model_zoo
module Parallel = Picachu_parallel.Parallel

type cfg = {
  name : string;
  layers : int;
  d_model : int;
  heads : int;
  kv_heads : int;
  d_ffn : int;
  ffn : Mz.ffn_kind;
  norm : Mz.norm_kind;
  pos : Mz.pos_kind;
  vocab : int;
  max_seq : int;
  outlier_scale : float;
  outlier_channels : int;
  logit_scale : float;
  linear_bits : int option;
}

let with_linear_bits bits c = { c with linear_bits = Some bits }

let surrogate_of (m : Mz.t) =
  let outlier_scale =
    (* activation outliers grow with model scale and are strongest in the
       OPT/LLaMA families (Dettmers et al.); GPT2-class models are milder *)
    match m.Mz.name with
    | "gpt2-xl" | "bigbird" -> 4.0
    | "opt-6.7b" -> 8.0
    | "opt-13b" -> 10.0
    | "llama2-7b" -> 16.0
    | "llama2-13b" -> 20.0
    | _ -> 6.0
  in
  {
    name = m.Mz.name ^ "-surrogate";
    layers = 4;
    d_model = 64;
    heads = 4;
    kv_heads = (if m.Mz.kv_heads < m.Mz.heads then 2 else 4);
    d_ffn = (match m.Mz.ffn with Mz.Swiglu_ffn | Mz.Geglu_ffn -> 96 | _ -> 128);
    ffn = m.Mz.ffn;
    norm = m.Mz.norm;
    pos = m.Mz.pos;
    vocab = 256;
    max_seq = 160;
    outlier_scale;
    outlier_channels = 4;
    logit_scale = 6.0;
    linear_bits = None;
  }

type layer = {
  wq : Tensor.t;
  wk : Tensor.t;
  wv : Tensor.t;
  wo : Tensor.t;
  w_up : Tensor.t;
  w_gate : Tensor.t option;
  w_down : Tensor.t;
}

type t = {
  c : cfg;
  emb : Tensor.t;  (* vocab x d *)
  pos_emb : Tensor.t;  (* max_seq x d *)
  layers_w : layer list;
}

let cfg t = t.c

let create ~seed c =
  let rng = Rng.create seed in
  let d = c.d_model in
  let quantize_weights t =
    match c.linear_bits with
    | None -> t
    | Some bits -> Picachu_numerics.Quant.roundtrip ~bits t
  in
  let w rows cols =
    quantize_weights
      (Tensor.randn rng [ rows; cols ] ~mu:0.0 ~sigma:(1.0 /. sqrt (float_of_int rows)))
  in
  let scale_outlier_cols t2 =
    (* amplify a fixed set of output channels: these become the residual
       stream's outlier dimensions *)
    let cols = Tensor.cols t2 in
    for ch = 0 to c.outlier_channels - 1 do
      let col = (ch * 13) mod cols in
      for r = 0 to Tensor.rows t2 - 1 do
        Tensor.set2 t2 r col (Tensor.get2 t2 r col *. c.outlier_scale)
      done
    done;
    t2
  in
  let kv_width = c.kv_heads * (d / c.heads) in
  let mk_layer () =
    {
      wq = w d d;
      wk = w d kv_width;
      wv = w d kv_width;
      wo = scale_outlier_cols (w d d);
      w_up = w d c.d_ffn;
      w_gate =
        (match c.ffn with
        | Mz.Swiglu_ffn | Mz.Geglu_ffn -> Some (w d c.d_ffn)
        | Mz.Gelu_ffn | Mz.Relu_ffn -> None);
      w_down = scale_outlier_cols (w c.d_ffn d);
    }
  in
  {
    c;
    emb = w c.vocab d;
    pos_emb = Tensor.randn rng [ c.max_seq; d ] ~mu:0.0 ~sigma:0.02;
    layers_w = List.init c.layers (fun _ -> mk_layer ());
  }

let norm_fn c (b : Approx.t) x =
  match c.norm with
  | Mz.Layernorm_norm -> Nl.Norms.layernorm b x
  | Mz.Rmsnorm_norm -> Nl.Norms.rmsnorm b x

let slice_head x ~heads ~h =
  let seq = Tensor.rows x and d = Tensor.cols x in
  let dh = d / heads in
  Tensor.init [ seq; dh ] (fun idx ->
      let i = idx / dh and j = idx mod dh in
      Tensor.get2 x i ((h * dh) + j))

let write_head ~dst x ~heads ~h =
  let seq = Tensor.rows x and dh = Tensor.cols x in
  ignore heads;
  for i = 0 to seq - 1 do
    for j = 0 to dh - 1 do
      Tensor.set2 dst i ((h * dh) + j) (Tensor.get2 x i j)
    done
  done

let attention c (b : Approx.t) ~q ~k ~v =
  let seq = Tensor.rows q in
  let d = Tensor.cols q in
  let dh = d / c.heads in
  let group = c.heads / c.kv_heads in
  let out = Tensor.create [ seq; d ] in
  let scale = 1.0 /. sqrt (float_of_int dh) in
  (* heads are independent and each writes its own column slice of [out],
     so the head loop parallelizes with bit-identical results *)
  let head h =
    let qh = slice_head q ~heads:c.heads ~h in
    (* grouped-query attention: [group] query heads share one KV head *)
    let kv = h / group in
    let kh = slice_head k ~heads:c.kv_heads ~h:kv in
    let vh = slice_head v ~heads:c.kv_heads ~h:kv in
    let qh = if c.pos = Mz.Rope_pos then Nl.Rope.approx_rows b qh else qh in
    let kh = if c.pos = Mz.Rope_pos then Nl.Rope.approx_rows b kh else kh in
    let scores = Tensor.matmul_nt qh kh in
    (* causal attention: each query row softmaxes over its own prefix — the
       channel-by-channel shape the CGRA kernel actually executes, so no
       sentinel mask value ever reaches a quantizer *)
    let probs = Tensor.create [ seq; seq ] in
    for i = 0 to seq - 1 do
      let row = Array.init (i + 1) (fun j -> Tensor.get2 scores i j *. scale) in
      let p = Nl.Softmax.approx_row b row in
      Array.iteri (fun j v -> Tensor.set2 probs i j v) p
    done;
    let ctx = Tensor.matmul probs vh in
    write_head ~dst:out ctx ~heads:c.heads ~h
  in
  Parallel.parallel_for ~chunk:1 0 c.heads head;
  out

let ffn c (b : Approx.t) (l : layer) h =
  match (c.ffn, l.w_gate) with
  | Mz.Gelu_ffn, _ -> Tensor.matmul (Nl.Activations.gelu b (Tensor.matmul h l.w_up)) l.w_down
  | Mz.Relu_ffn, _ -> Tensor.matmul (Nl.Activations.relu b (Tensor.matmul h l.w_up)) l.w_down
  | Mz.Swiglu_ffn, Some wg ->
      let gate = Tensor.matmul h wg and up = Tensor.matmul h l.w_up in
      Tensor.matmul (Nl.Activations.swiglu b ~gate up) l.w_down
  | Mz.Geglu_ffn, Some wg ->
      let gate = Tensor.matmul h wg and up = Tensor.matmul h l.w_up in
      Tensor.matmul (Nl.Activations.geglu b ~gate up) l.w_down
  | (Mz.Swiglu_ffn | Mz.Geglu_ffn), None -> assert false

let logits t (b : Approx.t) tokens =
  let c = t.c in
  let seq = Array.length tokens in
  if seq = 0 || seq > c.max_seq then invalid_arg "Surrogate.logits: sequence length";
  Array.iter (fun tok -> if tok < 0 || tok >= c.vocab then invalid_arg "Surrogate.logits: token") tokens;
  let x =
    Tensor.init [ seq; c.d_model ] (fun idx ->
        let i = idx / c.d_model and j = idx mod c.d_model in
        Tensor.get2 t.emb tokens.(i) j
        +. (match c.pos with Mz.Learned_pos -> Tensor.get2 t.pos_emb i j | Mz.Rope_pos -> 0.0))
  in
  let x = ref x in
  List.iter
    (fun l ->
      let h = norm_fn c b !x in
      let q = Tensor.matmul h l.wq
      and k = Tensor.matmul h l.wk
      and v = Tensor.matmul h l.wv in
      let ctx = attention c b ~q ~k ~v in
      x := Tensor.add !x (Tensor.matmul ctx l.wo);
      let h2 = norm_fn c b !x in
      x := Tensor.add !x (ffn c b l h2))
    t.layers_w;
  let xf = norm_fn c b !x in
  (* trained LLMs emit confident (low-entropy) distributions; the sharpening
     factor stands in for that, so operator damage moves perplexity the way
     it does in a real checkpoint *)
  Tensor.scale c.logit_scale (Tensor.matmul_nt xf t.emb)

let sample t rng ?(temperature = 0.8) ~len () =
  if len < 2 || len > t.c.max_seq then invalid_arg "Surrogate.sample: len";
  let tokens = Array.make len 0 in
  tokens.(0) <- Rng.int rng t.c.vocab;
  for pos = 1 to len - 1 do
    let lg = logits t Approx.exact (Array.sub tokens 0 pos) in
    let row = Array.init t.c.vocab (fun j -> Tensor.get2 lg (pos - 1) j /. temperature) in
    let probs = Nl.Softmax.exact_row row in
    (* inverse-CDF sampling *)
    let u = Rng.float rng in
    let acc = ref 0.0 and chosen = ref (t.c.vocab - 1) in
    (try
       Array.iteri
         (fun j p ->
           acc := !acc +. p;
           if !acc >= u then begin
             chosen := j;
             raise Exit
           end)
         probs
     with Exit -> ());
    tokens.(pos) <- !chosen
  done;
  tokens
