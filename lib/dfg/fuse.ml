module Op = Picachu_ir.Op

let fuse (g : Dfg.t) =
  let n = Dfg.node_count g in
  let fwd_cons = Array.make n [] in
  let back_src = Array.make n None in
  List.iter
    (fun (e : Dfg.edge) ->
      if e.distance = 0 then fwd_cons.(e.src) <- e.dst :: fwd_cons.(e.src)
      else back_src.(e.dst) <- Some e.src)
    g.edges;
  let taken = Array.make n false in
  let groups = ref [] (* (fused kind, members in op order) *) in
  let op i = g.nodes.(i).op in
  let is_add i = op i = Op.Bin Op.Add in
  let is_mul i = op i = Op.Bin Op.Mul in
  let is_cmp i = match op i with Op.Cmp _ -> true | _ -> false in
  let single_cons i = match fwd_cons.(i) with [ c ] -> Some c | _ -> None in
  let free ids = List.for_all (fun i -> not taken.(i)) ids in
  let grab kind ids =
    List.iter (fun i -> taken.(i) <- true) ids;
    groups := (kind, ids) :: !groups
  in
  (* phi chains *)
  for p = 0 to n - 1 do
    if op p = Op.Phi && not taken.(p) then
      match back_src.(p) with
      | None -> ()
      | Some closer ->
          let a1_via_a2 =
            (* p -> a1 -> a2(=closer) *)
            List.find_opt
              (fun a1 ->
                is_add a1 && single_cons a1 = Some closer && is_add closer
                && List.mem a1 fwd_cons.(p))
              fwd_cons.(p)
          in
          (match a1_via_a2 with
          | Some a1 when a1 <> closer && free [ p; a1; closer ] ->
              grab Op.Phi_add_add [ p; a1; closer ]
          | _ ->
              if is_add closer && List.mem closer fwd_cons.(p) && free [ p; closer ]
              then grab Op.Phi_add [ p; closer ])
  done;
  (* cmp+br / cmp+select *)
  for i = 0 to n - 1 do
    if not taken.(i) && is_cmp i then
      match single_cons i with
      | Some c when not taken.(c) && op c = Op.Br -> grab Op.Cmp_br [ i; c ]
      | Some c when not taken.(c) && op c = Op.Select -> grab Op.Cmp_sel [ i; c ]
      | _ -> ()
  done;
  (* mul+add(+add) *)
  for m = 0 to n - 1 do
    if not taken.(m) && is_mul m then
      match single_cons m with
      | Some a1 when (not taken.(a1)) && is_add a1 -> (
          match single_cons a1 with
          | Some a2 when (not taken.(a2)) && is_add a2 && a2 <> m ->
              grab Op.Mul_add_add [ m; a1; a2 ]
          | _ -> grab Op.Mul_add [ m; a1 ])
      | _ -> ()
  done;
  (* add+add *)
  for a = 0 to n - 1 do
    if not taken.(a) && is_add a then
      match single_cons a with
      | Some a2 when (not taken.(a2)) && is_add a2 && a2 <> a -> grab Op.Add_add [ a; a2 ]
      | _ -> ()
  done;
  (* rebuild *)
  let group_of = Array.make n (-1) in
  List.iteri (fun gi (_, ids) -> List.iter (fun i -> group_of.(i) <- gi) ids) !groups;
  let groups_arr = Array.of_list !groups in
  let fresh = ref 0 in
  let new_id = Array.make n (-1) in
  let group_new_id = Array.make (Array.length groups_arr) (-1) in
  let nodes = ref [] in
  Array.iteri
    (fun i (node : Dfg.node) ->
      let gi = group_of.(i) in
      if gi < 0 then begin
        new_id.(i) <- !fresh;
        nodes := { node with Dfg.id = !fresh } :: !nodes;
        incr fresh
      end
      else if group_new_id.(gi) < 0 then begin
        let kind, ids = groups_arr.(gi) in
        let members = List.map (fun j -> op j) ids in
        let origins = List.concat_map (fun j -> g.nodes.(j).Dfg.origins) ids in
        let vector =
          g.vector_width > 1 && List.for_all Op.is_vectorizable members
        in
        group_new_id.(gi) <- !fresh;
        nodes :=
          { Dfg.id = !fresh; op = Op.Fused kind; members; origins; vector } :: !nodes;
        incr fresh
      end)
    g.nodes;
  let map i = if group_of.(i) < 0 then new_id.(i) else group_new_id.(group_of.(i)) in
  let edges =
    List.filter_map
      (fun (e : Dfg.edge) ->
        let s = map e.src and d = map e.dst in
        if s = d && e.distance = 0 then None
        else Some { Dfg.src = s; dst = d; distance = e.distance })
      g.edges
  in
  let edges =
    (* same (src, dst, distance) order polymorphic compare gave, minus the
       generic-comparison dispatch on every element *)
    List.sort_uniq
      (fun (a : Dfg.edge) (b : Dfg.edge) ->
        match Int.compare a.src b.src with
        | 0 -> (
            match Int.compare a.dst b.dst with
            | 0 -> Int.compare a.distance b.distance
            | c -> c)
        | c -> c)
      edges
  in
  {
    Dfg.nodes = Array.of_list (List.rev !nodes);
    edges;
    vector_width = g.vector_width;
    label = g.label;
  }

let pattern_counts (g : Dfg.t) =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun (node : Dfg.node) ->
      match node.op with
      | Op.Fused f ->
          Hashtbl.replace tbl f (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f))
      | _ -> ())
    g.nodes;
  let order =
    Op.[ Phi_add_add; Phi_add; Add_add; Cmp_sel; Mul_add_add; Mul_add; Cmp_br ]
  in
  List.filter_map
    (fun f -> Option.map (fun c -> (f, c)) (Hashtbl.find_opt tbl f))
    order

let contains_pattern g f = List.mem_assoc f (pattern_counts g)
