module Workload = Picachu_llm.Workload
module Mz = Picachu_llm.Model_zoo
module Gpu = Picachu_llm.Gpu_model
module Arch = Picachu_cgra.Arch
module Kernels = Picachu_ir.Kernels

type request = { prompt : int; generate : int }

type phase_costs = {
  prefill_s : float;
  decode_s_at : (int * float) list;
}

type summary = { ttft_s : float; total_s : float; tokens_per_s : float }

let anchor_lengths (r : request) =
  let last = r.prompt + r.generate in
  List.sort_uniq Int.compare [ r.prompt; (r.prompt + last) / 2; last ]

let picachu_costs cfg m (r : request) =
  let prefill =
    Simulator.seconds cfg (Simulator.run cfg (Workload.of_model m ~seq:r.prompt))
  in
  let decode_at ctx =
    Simulator.seconds cfg (Simulator.run cfg (Workload.decode_of_model m ~context:ctx))
  in
  { prefill_s = prefill; decode_s_at = List.map (fun c -> (c, decode_at c)) (anchor_lengths r) }

let gpu_costs gpu m (r : request) =
  let prefill = (Gpu.run gpu (Workload.of_model m ~seq:r.prompt)).Gpu.total_s in
  let decode_at ctx = (Gpu.run gpu (Workload.decode_of_model m ~context:ctx)).Gpu.total_s in
  { prefill_s = prefill; decode_s_at = List.map (fun c -> (c, decode_at c)) (anchor_lengths r) }

let decode_cost costs ctx =
  (* the cursor-free form of [summarize]'s interpolation, for callers whose
     context queries are not monotone (the batched scheduler interleaves
     requests); same clamping and the same arithmetic expression, so the
     two agree bit-for-bit on every anchor segment *)
  match costs.decode_s_at with
  | [] -> invalid_arg "Serving: no decode anchors"
  | ((c0, s0) :: _) as anchors ->
      if ctx <= c0 then s0
      else
        let rec go = function
          | [ (_, s) ] -> s
          | (c1, s1) :: ((c2, s2) :: _ as rest) ->
              if ctx <= c2 then
                s1
                +. ((s2 -. s1) *. float_of_int (ctx - c1)
                    /. float_of_int (Stdlib.max 1 (c2 - c1)))
              else go rest
          | [] -> assert false
        in
        go anchors

let summarize costs (r : request) =
  if r.prompt < 1 || r.generate < 1 then invalid_arg "Serving.summarize: request";
  (* decode contexts grow monotonically, so a cursor over the precomputed
     anchor array replaces a per-step scan of the anchor list:
     O(generate + anchors) instead of O(generate x anchors).  Linear
     interpolation between anchors; clamped outside their range. *)
  let anchors = Array.of_list costs.decode_s_at in
  let na = Array.length anchors in
  if na = 0 then invalid_arg "Serving: no decode anchors";
  let seg = ref 0 in
  let cost_at ctx =
    if ctx <= fst anchors.(0) then snd anchors.(0)
    else if ctx > fst anchors.(na - 1) then snd anchors.(na - 1)
    else begin
      while ctx > fst anchors.(!seg + 1) do
        incr seg
      done;
      let c1, s1 = anchors.(!seg) and c2, s2 = anchors.(!seg + 1) in
      s1 +. ((s2 -. s1) *. float_of_int (ctx - c1) /. float_of_int (Stdlib.max 1 (c2 - c1)))
    end
  in
  let decode_total = ref 0.0 in
  for step = 0 to r.generate - 1 do
    decode_total := !decode_total +. cost_at (r.prompt + step)
  done;
  {
    ttft_s = costs.prefill_s;
    total_s = costs.prefill_s +. !decode_total;
    tokens_per_s = float_of_int r.generate /. !decode_total;
  }

(* ------------------------------------------------- graceful degradation *)

type tier = Fused | Baseline_cgra | Roofline

let tier_name = function
  | Fused -> "fused"
  | Baseline_cgra -> "baseline-cgra"
  | Roofline -> "roofline"

type failure = { failed_tier : tier; error : Picachu_error.t; attempts : int }

type robust = {
  r_costs : phase_costs;
  r_summary : summary;
  served_by : tier;
  fallbacks : failure list;
  retries : int;
}

let robust_costs_with ?(budget = 1) tiers (r : request) =
  (* transient errors (a detected execution fault) are retried within the
     tier up to [budget] extra attempts; structural errors (unmappable,
     unknown kernel) are deterministic, so the request drops straight to
     the next tier *)
  let attempt_tier f =
    let rec go attempt =
      match f r with
      | costs -> Ok (costs, attempt)
      | exception e -> (
          match Picachu_error.of_exn e with
          | None -> raise e
          | Some err ->
              if Picachu_error.transient err && attempt < budget then go (attempt + 1)
              else Error (err, attempt))
    in
    go 0
  in
  let rec serve fallbacks retries = function
    | [] ->
        raise
          (Picachu_error.Error
             (Picachu_error.All_tiers_failed
                (List.rev_map
                   (fun f -> (tier_name f.failed_tier, f.error))
                   fallbacks)))
    | (tier, f) :: rest -> (
        match attempt_tier f with
        | Ok (costs, attempts) ->
            {
              r_costs = costs;
              r_summary = summarize costs r;
              served_by = tier;
              fallbacks = List.rev fallbacks;
              retries = retries + attempts;
            }
        | Error (error, attempts) ->
            serve
              ({ failed_tier = tier; error; attempts } :: fallbacks)
              (retries + attempts) rest)
  in
  serve [] 0 tiers

let robust_costs ?budget ?(gpu = Gpu.a100) cfg m (r : request) =
  let baseline_cfg =
    {
      cfg with
      Simulator.arch = Arch.baseline ();
      variant = Kernels.Baseline;
      vector = 1;
    }
  in
  robust_costs_with ?budget
    [
      (Fused, fun r -> picachu_costs cfg m r);
      (Baseline_cgra, fun r -> picachu_costs baseline_cfg m r);
      (Roofline, fun r -> gpu_costs gpu m r);
    ]
    r
