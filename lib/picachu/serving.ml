module Workload = Picachu_llm.Workload
module Mz = Picachu_llm.Model_zoo
module Gpu = Picachu_llm.Gpu_model

type request = { prompt : int; generate : int }

type phase_costs = {
  prefill_s : float;
  decode_s_at : (int * float) list;
}

type summary = { ttft_s : float; total_s : float; tokens_per_s : float }

let anchor_lengths (r : request) =
  let last = r.prompt + r.generate in
  List.sort_uniq compare [ r.prompt; (r.prompt + last) / 2; last ]

let picachu_costs cfg m (r : request) =
  let prefill =
    Simulator.seconds cfg (Simulator.run cfg (Workload.of_model m ~seq:r.prompt))
  in
  let decode_at ctx =
    Simulator.seconds cfg (Simulator.run cfg (Workload.decode_of_model m ~context:ctx))
  in
  { prefill_s = prefill; decode_s_at = List.map (fun c -> (c, decode_at c)) (anchor_lengths r) }

let gpu_costs gpu m (r : request) =
  let prefill = (Gpu.run gpu (Workload.of_model m ~seq:r.prompt)).Gpu.total_s in
  let decode_at ctx = (Gpu.run gpu (Workload.decode_of_model m ~context:ctx)).Gpu.total_s in
  { prefill_s = prefill; decode_s_at = List.map (fun c -> (c, decode_at c)) (anchor_lengths r) }

let summarize costs (r : request) =
  if r.prompt < 1 || r.generate < 1 then invalid_arg "Serving.summarize: request";
  (* decode contexts grow monotonically, so a cursor over the precomputed
     anchor array replaces a per-step scan of the anchor list:
     O(generate + anchors) instead of O(generate x anchors).  Linear
     interpolation between anchors; clamped outside their range. *)
  let anchors = Array.of_list costs.decode_s_at in
  let na = Array.length anchors in
  if na = 0 then invalid_arg "Serving: no decode anchors";
  let seg = ref 0 in
  let cost_at ctx =
    if ctx <= fst anchors.(0) then snd anchors.(0)
    else if ctx > fst anchors.(na - 1) then snd anchors.(na - 1)
    else begin
      while ctx > fst anchors.(!seg + 1) do
        incr seg
      done;
      let c1, s1 = anchors.(!seg) and c2, s2 = anchors.(!seg + 1) in
      s1 +. ((s2 -. s1) *. float_of_int (ctx - c1) /. float_of_int (Stdlib.max 1 (c2 - c1)))
    end
  in
  let decode_total = ref 0.0 in
  for step = 0 to r.generate - 1 do
    decode_total := !decode_total +. cost_at (r.prompt + step)
  done;
  {
    ttft_s = costs.prefill_s;
    total_s = costs.prefill_s +. !decode_total;
    tokens_per_s = float_of_int r.generate /. !decode_total;
  }
