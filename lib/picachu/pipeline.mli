(** Typed pass manager for the staged compilation pipeline (paper §4.3,
    Figure 6).

    A pass is a named, instrumented transformation between typed artifacts
    (kernel IR -> transformed kernel -> per-loop DFG -> fused DFG -> modulo
    schedule).  Passes compose explicitly with {!(>>>)}; running one
    records wall time and invocation counts into a process-global registry
    ({!stats}), optionally dumps its artifact (the CLI's [--dump-after]),
    and — when the [PICACHU_VERIFY] knob is on — checks a per-pass
    post-condition, so a verification failure names the pass that produced
    the bad artifact instead of pointing at the whole compile.

    The registry is mutex-protected and counters snapshot external atomic
    sources, so stats stay exact when compiles fan out across the domain
    pool. *)

type pass_stats = {
  pass : string;
  runs : int;  (** invocations, including ones that raised *)
  wall_s : float;  (** total wall time across runs (pass body only) *)
  counters : (string * int) list;  (** name-sorted pass-specific tallies *)
}

exception Pass_failed of { pass : string; findings : string list }
(** Raised by {!run} when a pass's post-condition reports Error-severity
    findings (only with the [PICACHU_VERIFY] knob on).  [Compiler] converts
    this into [Picachu_error.Verification_failed], prefixing each finding
    with the pass name. *)

type ('a, 'b) t
(** A pass (or a composition of passes) from artifact ['a] to ['b]. *)

val v :
  name:string ->
  ?post:('b -> Picachu_verify.Finding.t list) ->
  ?dump:('b -> string) ->
  ('a -> 'b) ->
  ('a, 'b) t
(** [v ~name ?post ?dump f] — an instrumented pass.  [post] is the
    artifact's independent validator (Error findings gate when verification
    is enabled; Warnings/Info are advisory and ignored here).  [dump]
    serializes the artifact for [--dump-after]. *)

val ( >>> ) : ('a, 'b) t -> ('b, 'c) t -> ('a, 'c) t
(** Left-to-right composition.  Each constituent pass keeps its own
    instrumentation. *)

val skip : ('a, 'a) t
(** The identity — an uninstrumented no-op for optional stages (e.g. the
    fusion stage under [baseline_options]). *)

val run : ('a, 'b) t -> 'a -> 'b

val declare : string -> unit
(** Pre-register a pass name so {!stats} lists it (with zero runs) in
    declaration order; undeclared passes append in first-run order. *)

val bump : pass:string -> string -> int -> unit
(** [bump ~pass counter n] adds [n] to a named per-pass tally (e.g.
    ["candidates"] on the unroll pass, ["fused-nodes"] on fusion). *)

val register_counter_source :
  pass:string -> ?reset:(unit -> unit) -> (unit -> (string * int) list) -> unit
(** Attach an external counter snapshot to a pass — e.g. the mapper's
    process-global search-effort atomics appear under the schedule pass.
    [reset] is invoked by {!reset}. *)

val stats : unit -> pass_stats list
val reset : unit -> unit
(** Zero all runs, times and tallies (including registered sources). *)

val set_dump_after : ?sink:(pass:string -> string -> unit) -> string option -> unit
(** Arm (or disarm, with [None]) artifact dumping: when a pass with a
    [dump] serializer and a matching name completes, its artifact is sent
    to [sink] (default: [print_string]). *)
