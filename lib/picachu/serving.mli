(** Request-level serving simulation.

    LLM inference in production is a prefill followed by a stream of decode
    steps; this module composes the end-to-end simulator's phase costs into
    request latency and sustained token throughput, for PICACHU and for the
    A100 roofline — the deployment view of the paper's per-pass results.

    Decode steps are evaluated at a few KV-cache lengths and interpolated
    linearly in between (attention cost is linear in the cache length). *)

module Workload = Picachu_llm.Workload
module Mz = Picachu_llm.Model_zoo

type request = { prompt : int; generate : int }

type phase_costs = {
  prefill_s : float;
  decode_s_at : (int * float) list;  (** (cache length, per-step seconds) *)
}

type summary = {
  ttft_s : float;  (** time to first token (prefill) *)
  total_s : float;  (** full request latency *)
  tokens_per_s : float;  (** decode throughput over the generation *)
}

val picachu_costs : Simulator.config -> Mz.t -> request -> phase_costs
val gpu_costs : Picachu_llm.Gpu_model.t -> Mz.t -> request -> phase_costs
val decode_cost : phase_costs -> int -> float
(** [decode_cost costs ctx] is the per-step decode seconds at KV-cache
    length [ctx]: linear interpolation between the anchors, clamped outside
    their range.  Agrees bit-for-bit with the interpolation [summarize]
    charges per step, but needs no monotone-query cursor — the batched
    scheduler ({!Scheduler}) interleaves many requests' contexts.  Raises
    [Invalid_argument] when [costs] has no anchors. *)

val summarize : phase_costs -> request -> summary
(** Raises [Invalid_argument] on non-positive prompt/generate. *)

(** {2 Graceful degradation}

    The north star is a system where a request is {e always} answered: when
    the fast fused PICACHU path fails (an unmappable kernel on the deployed
    fabric, an uncorrected execution fault), the request degrades to the
    unfused baseline CGRA, and past that to the CPU/GPU roofline model —
    slower tiers that cannot fail structurally.  Each answer records which
    tier served it, every tier failure along the way (typed, not stringly),
    and how many transient retries were spent. *)

type tier = Fused | Baseline_cgra | Roofline

val tier_name : tier -> string

type failure = {
  failed_tier : tier;
  error : Picachu_error.t;  (** the tier's final error *)
  attempts : int;  (** transient retries spent inside the tier *)
}

type robust = {
  r_costs : phase_costs;  (** costs of the tier that answered *)
  r_summary : summary;
  served_by : tier;
  fallbacks : failure list;  (** failed tiers, in attempt order *)
  retries : int;  (** total transient retries across all tiers *)
}

val robust_costs_with :
  ?budget:int -> (tier * (request -> phase_costs)) list -> request -> robust
(** The generic engine: try tiers in order.  A tier raising a transient
    {!Picachu_error.t} (per {!Picachu_error.transient}) is retried up to
    [budget] extra attempts (default 1); structural errors skip straight to
    the next tier.  Foreign exceptions propagate.  Raises
    [Picachu_error.Error (All_tiers_failed _)] when every tier fails. *)

val robust_costs :
  ?budget:int ->
  ?gpu:Picachu_llm.Gpu_model.t ->
  Simulator.config ->
  Mz.t ->
  request ->
  robust
(** The production tier ladder: fused PICACHU on [cfg], then the unfused
    baseline CGRA (homogeneous arch, primitive kernels, scalar), then the
    GPU roofline (default A100).  The roofline tier is analytic and cannot
    fail, so every request is answered (availability 1.0). *)
