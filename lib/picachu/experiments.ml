module Cost = Picachu_cgra.Cost
module Arch = Picachu_cgra.Arch
module Mapper = Picachu_cgra.Mapper
module Dfg = Picachu_dfg.Dfg
module Fuse = Picachu_dfg.Fuse
module Kernel = Picachu_ir.Kernel
module Kernels = Picachu_ir.Kernels
module Op = Picachu_ir.Op
module Nm = Picachu_numerics
module Mz = Picachu_llm.Model_zoo
module Workload = Picachu_llm.Workload
module Gpu = Picachu_llm.Gpu_model
module Cpu = Picachu_llm.Cpu_model
module Surrogate = Picachu_llm.Surrogate
module Ppl = Picachu_llm.Ppl
module Zero_shot = Picachu_llm.Zero_shot
module Gemmini = Picachu_baselines.Gemmini
module Tandem = Picachu_baselines.Tandem
module One_sa = Picachu_baselines.One_sa
module Systolic = Picachu_systolic.Systolic
module Stats = Picachu_tensor.Stats
module Fault = Picachu_cgra.Fault

let seq = 1024
let seed = 42
let stream_seed = 7
let stream_len = 64
let sample_temperature = 0.4

(* ------------------------------------------------------------------ fig1 *)

type fig1_row = {
  f1_model : string;
  f1_gemm_s : float;
  f1_softmax_s : float;
  f1_norm_s : float;
  f1_act_s : float;
  f1_rope_s : float;
  f1_nl_frac : float;
}

let fig1_row m =
  let w = Workload.of_model m ~seq in
  let b = Gpu.run Gpu.a100 w in
  {
    f1_model = m.Mz.name;
    f1_gemm_s = b.Gpu.gemm_s;
    f1_softmax_s = b.Gpu.softmax_s;
    f1_norm_s = b.Gpu.norm_s;
    f1_act_s = b.Gpu.activation_s;
    f1_rope_s = b.Gpu.rope_s;
    f1_nl_frac = Gpu.nonlinear_fraction b;
  }

let fig1a () =
  List.map fig1_row [ Mz.gpt2_xl; Mz.opt_6_7b; Mz.bigbird; Mz.llama2_13b ]

let fig1b () =
  List.map
    (fun s ->
      let w = Workload.of_model Mz.llama2_7b ~seq:s in
      (s, Gpu.nonlinear_fraction (Gpu.run Gpu.a100 w)))
    [ 128; 256; 512; 1024; 2048 ]

(* ----------------------------------------------------------- tab2 / tab5 *)

let surrogate_for m = Surrogate.create ~seed (Surrogate.surrogate_of m)

let ppl_for model backends =
  let sur = surrogate_for model in
  let rng = Picachu_tensor.Rng.create stream_seed in
  let stream = Surrogate.sample sur rng ~temperature:sample_temperature ~len:stream_len () in
  List.map (fun (b : Nm.Approx.t) -> (b.Nm.Approx.name, Ppl.ppl sur b stream)) backends

let tab2 () =
  List.map
    (fun m ->
      ( m.Mz.name,
        ppl_for m [ Nm.Approx.fp16_reference; Nm.Approx.ibert; Nm.Approx.gemmlowp ] ))
    [ Mz.llama2_7b; Mz.llama2_13b ]

let tab5_models = [ Mz.gpt2_xl; Mz.opt_6_7b; Mz.opt_13b; Mz.llama2_7b; Mz.llama2_13b ]

let tab5 () =
  List.map
    (fun m ->
      match
        ppl_for m
          [ Nm.Approx.fp16_reference; Nm.Approx.ours_fp (); Nm.Approx.ours_int () ]
      with
      | [ (_, fp16); (_, ours_fp); (_, ours_int) ] ->
          (m.Mz.name, fp16, ours_fp -. fp16, ours_int -. fp16)
      | _ -> assert false)
    tab5_models

(* ------------------------------------------------------------------ tab3 *)

let max_rel ~lo ~hi ~reference ~candidate =
  (Stats.compare_fn ~n:4096 ~lo ~hi ~reference ~candidate ()).Stats.max_rel

let max_abs ~lo ~hi ~reference ~candidate =
  (Stats.compare_fn ~n:4096 ~lo ~hi ~reference ~candidate ()).Stats.max_abs

let tab3 () =
  [
    ( "exp",
      max_rel ~lo:(-20.0) ~hi:8.0 ~reference:Stdlib.exp ~candidate:(Nm.Taylor.exp ?cfg:None),
      max_rel ~lo:(-20.0) ~hi:8.0 ~reference:Stdlib.exp ~candidate:Nm.Int_ops.exp );
    ( "log",
      max_rel ~lo:0.01 ~hi:100.0 ~reference:Stdlib.log ~candidate:(Nm.Taylor.log ?cfg:None),
      max_rel ~lo:0.01 ~hi:100.0 ~reference:Stdlib.log ~candidate:Nm.Int_ops.log );
    (* absolute error for the trigs: relative error diverges at the zeros *)
    ( "sin (abs)",
      max_abs ~lo:(-8.0) ~hi:8.0 ~reference:Stdlib.sin ~candidate:(Nm.Taylor.sin ?cfg:None),
      max_abs ~lo:(-8.0) ~hi:8.0 ~reference:Stdlib.sin ~candidate:Nm.Int_ops.sin );
    ( "cos (abs)",
      max_abs ~lo:(-8.0) ~hi:8.0 ~reference:Stdlib.cos ~candidate:(Nm.Taylor.cos ?cfg:None),
      max_abs ~lo:(-8.0) ~hi:8.0 ~reference:Stdlib.cos ~candidate:Nm.Int_ops.cos );
    ( "div",
      max_rel ~lo:0.1 ~hi:50.0
        ~reference:(fun x -> 1.0 /. x)
        ~candidate:(fun x -> Nm.Taylor.div 1.0 x),
      max_rel ~lo:0.1 ~hi:50.0 ~reference:(fun x -> 1.0 /. x) ~candidate:Nm.Int_ops.reciprocal );
    ( "isqrt",
      max_rel ~lo:0.001 ~hi:1000.0
        ~reference:(fun x -> 1.0 /. sqrt x)
        ~candidate:(fun x -> Nm.Taylor.isqrt x),
      max_rel ~lo:0.001 ~hi:1000.0
        ~reference:(fun x -> 1.0 /. sqrt x)
        ~candidate:Nm.Int_ops.isqrt );
  ]

(* ------------------------------------------------------------------ tab4 *)

let tab4 () =
  let kernels = Kernels.all Kernels.picachu in
  let patterns =
    Op.[ Phi_add_add; Phi_add; Add_add; Cmp_sel; Mul_add_add; Mul_add; Cmp_br ]
  in
  (* the production configuration unrolls by 2, which is where the
     accumulate chains (phi+add+add) of Table 4 come from *)
  let fused_of k =
    List.map
      (fun l -> Fuse.fuse (Dfg.of_loop (Picachu_ir.Transform.unroll 2 l)))
      k.Kernel.loops
  in
  let all_fused = List.map (fun k -> (k, fused_of k)) kernels in
  List.map
    (fun p ->
      let total =
        List.fold_left
          (fun acc (_, gs) ->
            acc
            + List.fold_left
                (fun acc g ->
                  acc + Option.value ~default:0 (List.assoc_opt p (Fuse.pattern_counts g)))
                0 gs)
          0 all_fused
      in
      let containing =
        List.length
          (List.filter
             (fun (_, gs) -> List.exists (fun g -> Fuse.contains_pattern g p) gs)
             all_fused)
      in
      (Op.fused_name p, total, float_of_int containing /. float_of_int (List.length kernels)))
    patterns

(* ------------------------------------------------------------------ tab6 *)

let tab6_items = 60

(* a small margin keeps borderline items in the pool, so format-level
   perturbations (FP16 rounding, INT16 grids) can flip a few preferences —
   the sub-percent deltas of the paper's Table 6 *)
let tab6_margin = 0.002

let tab6 () =
  List.map
    (fun m ->
      let sur = surrogate_for m in
      let tasks = Zero_shot.make_tasks ~seed:stream_seed ~items_per_task:tab6_items ~margin:tab6_margin sur in
      ( m.Mz.name,
        List.map
          (fun (t : Zero_shot.task) ->
            let acc b = Zero_shot.accuracy sur b t in
            let fp16 = acc Nm.Approx.fp16_reference in
            ( t.Zero_shot.task_name,
              fp16,
              acc (Nm.Approx.ours_fp ()) -. fp16,
              acc (Nm.Approx.ours_int ()) -. fp16 ))
          tasks ))
    tab5_models

(* ------------------------------------------------------------------ tab7 *)

let tab7 () = Cost.picachu_breakdown (Arch.picachu ())
let tab7_fu_overheads () = Cost.fu_overheads

(* ------------------------------------------------------------------ fig3 *)

(* Static design points of the paper's Figure 3b survey (representative
   published numbers: throughput in GOPS, power in mW). *)
let fig3 () =
  [
    ("SoftAct", "ASIC", 70.0, 120.0);
    ("EFSHA", "ASIC", 40.0, 65.0);
    ("Hyft", "ASIC", 90.0, 55.0);
    ("NN-LUT", "ASIC", 60.0, 80.0);
    ("TranCIM", "ASIC/CIM", 150.0, 200.0);
    ("Snafu", "CGRA", 30.0, 1.0);
    ("VecPAC", "CGRA", 120.0, 90.0);
    ("RipTide", "CGRA", 45.0, 2.0);
    ("Plasticine", "CGRA", 6400.0, 49000.0);
    ("DFX (FPGA)", "FPGA", 300.0, 30000.0);
    ("A100 (GPU)", "GPU", 312000.0, 300000.0);
  ]

(* Figure 7a/ablation roster: the Table 1 kernels the paper plots.  The
   online-softmax extension kernel is covered by its own ablation — its
   double-exponential reduce loop saturates the CoT class and is *not*
   faster than the baseline per-pass (its win is the removed data pass). *)
let table1_kernels variant =
  List.filter
    (fun (k : Kernel.t) -> k.Kernel.name <> "softmax_online")
    (Kernels.all variant)

(* ----------------------------------------------------------------- fig7a *)

type fig7a_row = {
  f7_loop : string;
  f7_base_cycles : int;
  f7_pic_cycles : int;
  f7_uf : int;
  f7_speedup : float;
}

let loop_pass_cycles (cl : Compiler.compiled_loop) ~n =
  let per_trip = cl.source.Kernel.step * cl.source.Kernel.vector_width in
  Mapper.loop_cycles cl.mapping ~trips:((n + per_trip - 1) / per_trip)

let fig7a () =
  let base_opts = Compiler.baseline_options () in
  let pic_opts = Compiler.picachu_options () in
  List.concat_map
    (fun (k : Kernel.t) ->
      let base = Compiler.cached base_opts Kernels.Baseline k.Kernel.name in
      let pic = Compiler.cached pic_opts Kernels.picachu k.Kernel.name in
      List.map2
        (fun bl pl ->
          let bc = loop_pass_cycles bl ~n:seq and pc = loop_pass_cycles pl ~n:seq in
          {
            f7_loop = bl.Compiler.source.Kernel.label;
            f7_base_cycles = bc;
            f7_pic_cycles = pc;
            f7_uf = pic.Compiler.unroll;
            f7_speedup = float_of_int bc /. float_of_int pc;
          })
        base.Compiler.loops pic.Compiler.loops)
    (table1_kernels Kernels.picachu)

let fig7a_summary rows =
  let speedups = List.map (fun r -> r.f7_speedup) rows in
  (Stats.geomean speedups, List.fold_left Float.max 0.0 speedups)

(* ----------------------------------------------------------------- fig7b *)

let fig7b () =
  let sizes = [ ("3x3", 3, 3); ("4x4", 4, 4); ("5x5", 5, 5); ("4x8", 4, 8) ] in
  List.map
    (fun (k : Kernel.t) ->
      let cycles_for rows cols =
        let opts = Compiler.picachu_options ~arch:(Arch.picachu ~rows ~cols ()) () in
        Compiler.pass_cycles (Compiler.cached opts Kernels.picachu k.Kernel.name) ~n:seq
      in
      let base = cycles_for 3 3 in
      let entries =
        List.map
          (fun (name, r, c) ->
            (name, float_of_int base /. float_of_int (cycles_for r c)))
          sizes
      in
      (* the split mode runs two independent 4x4 halves on disjoint channel
         ranges, double-buffered through the Shared Buffer (§5.3.4) *)
      let split = 2.0 *. (float_of_int base /. float_of_int (cycles_for 4 4)) in
      (k.Kernel.name, entries @ [ ("4x8-split", split) ]))
    (Kernels.all Kernels.picachu)

(* ----------------------------------------------------------------- fig7c *)

let fig7c () =
  List.map
    (fun m ->
      let w = Workload.of_model m ~seq in
      (* the A100-throughput-matched configuration (as in Figure 9), where
         nonlinear time is a visible share of the total *)
      let total kb =
        let cfg =
          { (Simulator.a100_scale_config ()) with
            Simulator.vector = 4;
            buffer = Picachu_memory.Shared_buffer.make ~kb () }
        in
        (Simulator.run cfg w).Simulator.total_cycles
      in
      let unlimited = total 100000.0 in
      ( m.Mz.name,
        List.map
          (fun kb -> (kb, float_of_int unlimited /. float_of_int (total kb)))
          [ 10.0; 20.0; 40.0; 80.0; 160.0 ] ))
    [ Mz.gpt2_xl; Mz.llama2_7b ]

(* ----------------------------------------------------------------- fig7d *)

let fig7d () =
  let scalar = Compiler.picachu_options () in
  let vec = Compiler.picachu_options ~vector:4 () in
  List.filter_map
    (fun (k : Kernel.t) ->
      let vectorizable =
        match Picachu_nonlinear.Registry.of_name_opt k.Kernel.name with
        | Some op -> Picachu_nonlinear.Registry.vectorizable op
        | None -> true (* library extras, e.g. softmax_online *)
      in
      if vectorizable then
        let s = Compiler.pass_cycles (Compiler.cached scalar Kernels.picachu k.Kernel.name) ~n:seq in
        let v = Compiler.pass_cycles (Compiler.cached vec Kernels.picachu k.Kernel.name) ~n:seq in
        Some (k.Kernel.name, float_of_int s /. float_of_int v)
      else None)
    (Kernels.all Kernels.picachu)

(* ------------------------------------------------------------- fig8/fig9 *)

let fig8a_models = tab5_models

let fig8a () =
  let sys = Systolic.default in
  List.map
    (fun m ->
      let w = Workload.of_model m ~seq in
      let gemm_s =
        List.fold_left
          (fun acc (g : Workload.gemm) ->
            acc +. (float_of_int g.count *. Systolic.gemm_seconds sys ~m:g.m ~k:g.k ~n:g.n))
          0.0 w.Workload.gemms
      in
      let cpu_s = gemm_s +. Cpu.total_nl_seconds Cpu.i7_11370h w in
      let gem = Gemmini.run Gemmini.default w in
      let gem_s = float_of_int gem.Gemmini.total_cycles *. 1e-9 in
      (* PICACHU deploys the INT16 4-lane path, whose accuracy Tables 5/6
         validate *)
      let cfg = Simulator.default_config ~vector:4 () in
      let pic_s = Simulator.seconds cfg (Simulator.run cfg w) in
      (m.Mz.name, cpu_s /. gem_s, cpu_s /. pic_s))
    fig8a_models

let tandem_a100_scale =
  {
    Tandem.systolic = Systolic.make 384;
    lanes = 512.0;
    dma = Picachu_memory.Dma.make ~bytes_per_cycle:2000.0 ();
  }

let picachu_a100_scale () =
  { (Simulator.a100_scale_config ()) with Simulator.vector = 4 }

let fig8b () =
  List.map
    (fun m ->
      let w = Workload.of_model m ~seq in
      let a100_s = (Gpu.run Gpu.a100 w).Gpu.total_s in
      let tan = Tandem.run tandem_a100_scale w in
      let tan_s = float_of_int tan.Tandem.total_cycles *. 1e-9 in
      let cfg = picachu_a100_scale () in
      let pic_s = Simulator.seconds cfg (Simulator.run cfg w) in
      (m.Mz.name, a100_s /. tan_s, a100_s /. pic_s))
    [ Mz.bigbird; Mz.gpt2_xl ]

let fig9a_models = [ Mz.opt_6_7b; Mz.opt_13b; Mz.llama2_7b; Mz.llama2_13b ]

let fig9a () =
  List.map
    (fun m ->
      let w = Workload.of_model m ~seq in
      let gpu = Gpu.run Gpu.a100 w in
      let cfg = picachu_a100_scale () in
      let r = Simulator.run cfg w in
      let pic_s = Simulator.seconds cfg r in
      let gpu_energy = Gpu.energy_j Gpu.a100 gpu in
      let pic_energy = r.Simulator.energy_uj *. 1e-6 in
      (m.Mz.name, gpu.Gpu.total_s /. pic_s, gpu_energy /. pic_energy))
    fig9a_models

let fig9b () =
  List.map
    (fun m ->
      let w = Workload.of_model m ~seq in
      let gpu = Gpu.run Gpu.a100 w in
      let cfg = picachu_a100_scale () in
      let r = Simulator.run cfg w in
      (m.Mz.name, Gpu.nonlinear_fraction gpu, Simulator.nonlinear_fraction r))
    [ Mz.llama2_7b; Mz.llama2_13b ]

(* --------------------------------------- supplementary: upcoming models *)

(* The paper's title promises *upcoming* operations; run the Table 5
   protocol on model families published after its baselines: Mistral
   (GQA + sliding window) and Falcon (multi-query attention). *)
let supp_models () =
  List.map
    (fun m ->
      match
        ppl_for m
          [ Nm.Approx.fp16_reference; Nm.Approx.ours_fp (); Nm.Approx.ours_int () ]
      with
      | [ (_, fp16); (_, ours_fp); (_, ours_int) ] ->
          (m.Mz.name, fp16, ours_fp -. fp16, ours_int -. fp16)
      | _ -> assert false)
    [ Mz.mistral_7b; Mz.falcon_7b ]

(* ------------------------------------------ supplementary: mapper quality *)

(* How far is the IMS heuristic from the II lower bound, and is the bound
   actually achievable? For each Table 1 loop at UF=1: the bound, the
   heuristic's II, and a bounded-exhaustive probe (small graphs only). *)
let supp_mapper () =
  let arch = Arch.picachu () in
  List.concat_map
    (fun (k : Kernel.t) ->
      List.map
        (fun loop ->
          let g = Fuse.fuse (Dfg.of_loop loop) in
          let lower, achieved, verdict = Picachu_cgra.Mapper_exact.heuristic_gap arch g in
          (loop.Kernel.label, Dfg.node_count g, lower, achieved, verdict))
        k.Kernel.loops)
    (table1_kernels Kernels.picachu)

(* -------------------------------------------- supplementary: energy/op *)

(* Energy per processed element for each nonlinear operation: CGRA at its
   measured cycles/element and tile power, vs the A100 at the roofline
   model's per-element time and a 300W board draw. *)
let supp_energy () =
  let opts = Compiler.picachu_options ~vector:4 () in
  let cgra_power_mw = (Cost.cgra_cost (Arch.picachu ())).Cost.power_mw in
  List.map
    (fun op ->
      let name = Picachu_nonlinear.Registry.name op in
      let c = Compiler.cached opts Kernels.picachu name in
      let n = 4096 in
      let cyc_per_elem = float_of_int (Compiler.pass_cycles c ~n) /. float_of_int n in
      let cgra_pj = cyc_per_elem *. cgra_power_mw (* mW * ns = pJ *) in
      let nl = { Workload.op; rows = 4096; dim = n; nl_count = 1; nl_tag = "x" } in
      let gpu_s = Gpu.nl_seconds Gpu.a100 nl in
      let gpu_pj = gpu_s *. 300.0 /. float_of_int (4096 * n) *. 1e12 in
      (name, cgra_pj, gpu_pj))
    Picachu_nonlinear.Registry.all

(* ----------------------------------------------- supplementary: serving *)

(* A production request (1024-token prompt, 256 generated tokens): time to
   first token and sustained decode throughput, PICACHU (A100 scale, INT16
   path) vs the A100 roofline. *)
let supp_serving () =
  let r = { Serving.prompt = 1024; generate = 256 } in
  List.map
    (fun m ->
      let pic =
        Serving.summarize (Serving.picachu_costs (picachu_a100_scale ()) m r) r
      in
      let gpu = Serving.summarize (Serving.gpu_costs Gpu.a100 m r) r in
      (m.Mz.name, gpu, pic))
    [ Mz.gpt2_xl; Mz.llama2_7b; Mz.mistral_7b ]

(* --------------------------------------- supplementary: outlier threshold *)

(* Where does the INT8 grid break? Sweep the injected outlier magnitude on
   the LLaMA-structured surrogate and watch I-BERT cross from mild
   degradation into collapse while ours-INT16 stays put. *)
let supp_outliers () =
  let streams = [ 7; 19; 31 ] in
  List.map
    (fun scale ->
      let cfg =
        { (Surrogate.surrogate_of Mz.llama2_7b) with Surrogate.outlier_scale = scale }
      in
      let sur = Surrogate.create ~seed cfg in
      let avg backend =
        let total =
          List.fold_left
            (fun acc stream_seed ->
              let rng = Picachu_tensor.Rng.create stream_seed in
              let stream =
                Surrogate.sample sur rng ~temperature:sample_temperature
                  ~len:stream_len ()
              in
              acc +. Ppl.ppl sur backend stream)
            0.0 streams
        in
        total /. float_of_int (List.length streams)
      in
      ( scale,
        avg Nm.Approx.fp16_reference,
        avg (Nm.Approx.ours_int ()),
        avg Nm.Approx.ibert ))
    [ 1.0; 4.0; 8.0; 16.0; 32.0 ]

(* ------------------------------------- supplementary: per-op attribution *)

(* Which nonlinear operation carries the I-BERT collapse? Damage one
   operator family at a time (FP16 elsewhere) and measure the PPL. The
   `Norm family swap carries the INT8 I/O grid with it, which also touches
   RoPE's format — attribution for those two families is slightly smeared. *)
let supp_attrib () =
  let sur = surrogate_for Mz.llama2_7b in
  let rng = Picachu_tensor.Rng.create stream_seed in
  let stream = Surrogate.sample sur rng ~temperature:sample_temperature ~len:stream_len () in
  let base = Nm.Approx.fp16_reference in
  let damaged = Nm.Approx.ibert in
  let fp16 = Ppl.ppl sur base stream in
  ("fp16 (none)", fp16)
  :: List.map
       (fun (label, only) ->
         let b = Nm.Approx.hybrid ~name:label ~base ~damaged ~only in
         (label, Ppl.ppl sur b stream))
       [
         ("i-bert softmax only", `Softmax);
         ("i-bert activation only", `Activation);
         ("i-bert norm only", `Norm);
         ("i-bert rope only", `Rope);
       ]
  @ [ ("i-bert everywhere", Ppl.ppl sur damaged stream) ]

(* ------------------------------------------- supplementary: W8 + ours *)

(* The paper's deployment composes two error sources: quantized linear
   layers and approximated nonlinear operators. Reproduce the composition:
   W8 linear + each nonlinear backend, on the LLaMA-style surrogate. *)
let supp_quant () =
  let base = Surrogate.surrogate_of Mz.llama2_7b in
  let quantized = Surrogate.with_linear_bits 8 base in
  List.concat_map
    (fun (label, cfg) ->
      let sur = Surrogate.create ~seed cfg in
      let rng = Picachu_tensor.Rng.create stream_seed in
      let stream =
        Surrogate.sample sur rng ~temperature:sample_temperature ~len:stream_len ()
      in
      List.map
        (fun (b : Nm.Approx.t) ->
          (label ^ " + " ^ b.Nm.Approx.name, Ppl.ppl sur b stream))
        [ Nm.Approx.fp16_reference; Nm.Approx.ours_int () ])
    [ ("fp-linear", base); ("w8-linear", quantized) ]

(* --------------------------------------------------- supplementary: noc *)

(* Audit the mapper's routing abstraction: worst per-link contention of
   every compiled Table 1 kernel loop. *)
let supp_noc () =
  let opts = Compiler.picachu_options () in
  List.concat_map
    (fun (k : Kernel.t) ->
      let c = Compiler.cached opts Kernels.picachu k.Kernel.name in
      List.map
        (fun (cl : Compiler.compiled_loop) ->
          let r = Picachu_cgra.Noc.analyze c.Compiler.arch cl.Compiler.dfg cl.Compiler.mapping in
          let rf = Picachu_cgra.Rf.analyze c.Compiler.arch cl.Compiler.dfg cl.Compiler.mapping in
          (cl.Compiler.source.Kernel.label, cl.Compiler.mapping.Mapper.ii, r, rf))
        c.Compiler.loops)
    (table1_kernels Kernels.picachu)

(* ------------------------------------------------- supplementary: decode *)

(* One autoregressive decode step (context 1024): the GEMV-dominated regime
   where nonlinear operations weigh heaviest on the GPU, and where PICACHU's
   overlap matters most. Not a paper figure (the paper evaluates prefill);
   included because LLM serving spends most wall-clock here. *)
let supp_decode () =
  List.map
    (fun m ->
      let w = Workload.decode_of_model m ~context:1024 in
      let gpu = Gpu.run Gpu.a100 w in
      let cfg = picachu_a100_scale () in
      let r = Simulator.run cfg w in
      ( m.Mz.name,
        Gpu.nonlinear_fraction gpu,
        gpu.Gpu.total_s /. Simulator.seconds cfg r ))
    [ Mz.gpt2_xl; Mz.opt_6_7b; Mz.llama2_7b; Mz.llama2_13b ]

(* -------------------------------------------------------------- ablations *)

let ablation_fusion () =
  let on = Compiler.picachu_options () in
  let off = { on with Compiler.fuse = false } in
  List.map
    (fun (k : Kernel.t) ->
      let c_on = Compiler.pass_cycles (Compiler.compile on k) ~n:seq in
      let c_off = Compiler.pass_cycles (Compiler.compile off k) ~n:seq in
      (k.Kernel.name, float_of_int c_off /. float_of_int c_on))
    (table1_kernels Kernels.picachu)

let ablation_fp2fx () =
  let opts = Compiler.picachu_options () in
  List.map
    (fun name ->
      let special = Compiler.pass_cycles (Compiler.cached opts Kernels.picachu name) ~n:seq in
      let plain =
        Compiler.pass_cycles
          (Compiler.compile opts (Kernels.by_name Kernels.Baseline name))
          ~n:seq
      in
      (name, float_of_int plain /. float_of_int special))
    [ "softmax"; "gelu"; "silu"; "swiglu"; "geglu" ]

let ablation_hetero () =
  let het = Compiler.picachu_options () in
  let uni = Compiler.picachu_options ~arch:(Arch.universal ()) () in
  let area arch = (Cost.cgra_cost arch).Cost.area_mm2 in
  let premium = area (Arch.universal ()) /. area (Arch.picachu ()) in
  List.map
    (fun (k : Kernel.t) ->
      let c_h = Compiler.pass_cycles (Compiler.cached het Kernels.picachu k.Kernel.name) ~n:seq in
      let c_u = Compiler.pass_cycles (Compiler.cached uni Kernels.picachu k.Kernel.name) ~n:seq in
      (k.Kernel.name, float_of_int c_h /. float_of_int c_u, premium))
    (table1_kernels Kernels.picachu)

let ablation_dbuf () =
  List.map
    (fun m ->
      let w = Workload.of_model m ~seq in
      let on = Simulator.run (Simulator.default_config ()) w in
      let off =
        Simulator.run
          { (Simulator.default_config ()) with Simulator.double_buffering = false }
          w
      in
      ( m.Mz.name,
        float_of_int off.Simulator.total_cycles /. float_of_int on.Simulator.total_cycles ))
    [ Mz.gpt2_xl; Mz.llama2_7b ]

(* Online (FlashAttention-style) softmax vs the three-loop form: the online
   reduce is a single pass, so it streams out of the systolic array (Case 1)
   and only the normalize pass touches the buffer — Case 3's enabler
   (§4.2.4). Cost: two exponentials per element in the reduce loop.

   Finding: on the CGRA the ratio comes out *below* 1 — softmax is
   compute-bound on the fabric (channel-resident Case 2 already makes the
   extra passes DMA-free), so the doubled exponentials are not repaid by the
   overlap. The online form's value on PICACHU is enabling Case 3 residency
   for blocked attention, not raw kernel speed — unlike on GPUs, where
   softmax is memory-bound and FlashAttention's single pass wins outright. *)
let ablation_online_softmax () =
  let opts = Compiler.picachu_options () in
  let dma = Picachu_memory.Dma.default in
  let buf = Picachu_memory.Shared_buffer.make ~kb:40.0 () in
  let sys = Systolic.default in
  List.map
    (fun m ->
      let w = Workload.of_model m ~seq in
      let sm = List.find (fun (nl : Workload.nl) -> nl.Workload.nl_tag = "softmax") w.Workload.nls in
      let scores = List.find (fun (g : Workload.gemm) -> g.Workload.g_tag = "attn.scores") w.Workload.gemms in
      let producer =
        Systolic.gemm_cycles sys ~m:scores.Workload.m ~k:scores.Workload.k ~n:scores.Workload.n
        * scores.Workload.count / sm.Workload.nl_count
      in
      let per_loop_channel (c : Compiler.compiled) idx =
        let cl = List.nth c.Compiler.loops idx in
        let per = cl.Compiler.source.Kernel.step * cl.Compiler.source.Kernel.vector_width in
        ((sm.Workload.dim + per - 1) / per) * cl.Compiler.mapping.Mapper.ii
      in
      (* standard: all three loops run channel-at-a-time after production *)
      let std = Compiler.cached opts Kernels.picachu "softmax" in
      let std_cycles =
        Picachu_memory.Dataflow.case2_cycles dma buf ~rows:sm.Workload.rows
          ~dim:sm.Workload.dim ~element_bytes:2
          ~compute_per_channel:(Compiler.per_channel_cycles std ~dim:sm.Workload.dim)
          ~writeback:true
      in
      (* online: the reduce loop overlaps the producing GEMM; only the
         normalize pass is buffer traffic *)
      let onl = Compiler.cached opts Kernels.picachu "softmax_online" in
      let reduce = per_loop_channel onl 0 * sm.Workload.rows in
      let overlap = Stdlib.max producer reduce - producer in
      let normalize =
        Picachu_memory.Dataflow.case2_cycles dma buf ~rows:sm.Workload.rows
          ~dim:sm.Workload.dim ~element_bytes:2
          ~compute_per_channel:(per_loop_channel onl 1) ~writeback:true
      in
      let onl_cycles = overlap + normalize in
      (m.Mz.name, float_of_int std_cycles /. float_of_int onl_cycles))
    [ Mz.gpt2_xl; Mz.llama2_7b ]

let ablation_order () =
  let opts = Compiler.picachu_options () in
  List.map
    (fun order ->
      let err =
        max_rel ~lo:(-20.0) ~hi:3.0 ~reference:Stdlib.exp
          ~candidate:(Nm.Taylor.exp ~cfg:{ Nm.Taylor.order })
      in
      let k = Kernels.exp_kernel ~order Kernels.picachu in
      let c = Compiler.compile_with_unroll opts 1 k in
      let nodes =
        List.fold_left (fun acc cl -> acc + Dfg.node_count cl.Compiler.dfg) 0
          c.Compiler.loops
      in
      (order, err, nodes))
    [ 2; 3; 4; 6; 8 ]

(* -------------------------------------------------------------- printing *)

let print_fig1 () =
  Report.section "Figure 1a: A100 runtime breakdown (seq 1024)";
  Report.table
    ~header:[ "model"; "gemm ms"; "softmax"; "norm"; "act"; "rope"; "nonlinear %" ]
    (List.map
       (fun r ->
         [
           r.f1_model;
           Printf.sprintf "%.1f" (r.f1_gemm_s *. 1e3);
           Printf.sprintf "%.1f" (r.f1_softmax_s *. 1e3);
           Printf.sprintf "%.1f" (r.f1_norm_s *. 1e3);
           Printf.sprintf "%.1f" (r.f1_act_s *. 1e3);
           Printf.sprintf "%.1f" (r.f1_rope_s *. 1e3);
           Report.fmt_pct r.f1_nl_frac;
         ])
       (fig1a ()));
  Report.section "Figure 1b: LLaMA2-7B nonlinear share vs sequence length";
  Report.table ~header:[ "seq"; "nonlinear %" ]
    (List.map (fun (s, f) -> [ string_of_int s; Report.fmt_pct f ]) (fig1b ()))

let print_tab2 () =
  Report.section "Table 2: PPL of integer baselines on LLaMA-family surrogates";
  let rows = tab2 () in
  let headers =
    match rows with (_, cells) :: _ -> List.map fst cells | [] -> []
  in
  Report.table ~header:("model" :: headers)
    (List.map
       (fun (m, cells) -> m :: List.map (fun (_, v) -> Report.fmt_f v) cells)
       rows)

let print_tab3 () =
  Report.section "Table 3 (supplementary): operator worst relative error";
  Report.table ~header:[ "operator"; "FP path"; "INT path" ]
    (List.map
       (fun (o, f, i) -> [ o; Printf.sprintf "%.2e" f; Printf.sprintf "%.2e" i ])
       (tab3 ()))

let print_tab4 () =
  Report.section "Table 4: fused DFG patterns across kernels";
  Report.table ~header:[ "pattern"; "occurrences"; "kernels containing" ]
    (List.map
       (fun (p, n, frac) -> [ p; string_of_int n; Report.fmt_pct frac ])
       (tab4 ()))

let print_tab5 () =
  Report.section "Table 5: PICACHU algorithm PPL deltas (surrogate Wikitext2)";
  Report.table ~header:[ "model"; "FP16 PPL"; "ours FP16"; "ours INT16" ]
    (List.map
       (fun (m, fp, dfp, dint) ->
         [ m; Printf.sprintf "%.3f" fp; Printf.sprintf "%+.4f" dfp; Printf.sprintf "%+.4f" dint ])
       (tab5 ()))

let print_tab6 () =
  Report.section "Table 6: zero-shot task accuracy (agreement with FP64 labels)";
  List.iter
    (fun (m, tasks) ->
      Printf.printf "%s\n" m;
      Report.table ~header:[ "task"; "FP16"; "ours FP16"; "ours INT16" ]
        (List.map
           (fun (t, fp, dfp, dint) ->
             [
               t;
               Report.fmt_pct fp;
               Report.fmt_delta (100.0 *. dfp) ^ "%";
               Report.fmt_delta (100.0 *. dint) ^ "%";
             ])
           tasks))
    (tab6 ())

let print_tab7 () =
  Report.section "Table 7: area/power breakdown (32x32 systolic + 4x4 CGRA + 40KB)";
  Cost.pp_breakdown Format.std_formatter (tab7 ());
  Format.pp_print_flush Format.std_formatter ();
  Report.table ~header:[ "special FU"; "area overhead"; "power overhead" ]
    (List.map
       (fun (n, a, p) -> [ n; Report.fmt_pct a; Report.fmt_pct p ])
       (tab7_fu_overheads ()))

let print_fig3 () =
  Report.section "Figure 3b: survey design points (static literature data)";
  Report.table ~header:[ "design"; "class"; "GOPS"; "power mW" ]
    (List.map
       (fun (n, c, g, p) -> [ n; c; Report.fmt_f g; Report.fmt_f p ])
       (fig3 ()))

let print_fig7a () =
  Report.section "Figure 7a: kernel speedup over the homogeneous 4x4 CGRA";
  let rows = fig7a () in
  Report.table ~header:[ "loop"; "baseline cyc"; "picachu cyc"; "UF"; "speedup" ]
    (List.map
       (fun r ->
         [
           r.f7_loop;
           string_of_int r.f7_base_cycles;
           string_of_int r.f7_pic_cycles;
           string_of_int r.f7_uf;
           Report.fmt_x r.f7_speedup;
         ])
       rows);
  let gm, mx = fig7a_summary rows in
  Printf.printf "geomean %s, max %s (paper: avg 2.95x, max 6.4x)\n" (Report.fmt_x gm)
    (Report.fmt_x mx)

let print_fig7b () =
  Report.section "Figure 7b: scalability (throughput normalized to 3x3)";
  let rows = fig7b () in
  let headers = match rows with (_, e) :: _ -> List.map fst e | [] -> [] in
  Report.table ~header:("kernel" :: headers)
    (List.map (fun (k, e) -> k :: List.map (fun (_, v) -> Report.fmt_x v) e) rows)

let print_fig7c () =
  Report.section "Figure 7c: Shared Buffer size sweep (vs unlimited buffer)";
  let rows = fig7c () in
  let headers =
    match rows with
    | (_, e) :: _ -> List.map (fun (kb, _) -> Printf.sprintf "%.0fKB" kb) e
    | [] -> []
  in
  Report.table ~header:("model" :: headers)
    (List.map
       (fun (m, e) -> m :: List.map (fun (_, v) -> Printf.sprintf "%.3fx" v) e)
       rows)

let print_fig7d () =
  Report.section "Figure 7d: INT16 4-lane vectorization speedup";
  Report.table ~header:[ "kernel"; "speedup" ]
    (List.map (fun (k, s) -> [ k; Report.fmt_x s ]) (fig7d ()));
  let gm = Stats.geomean (List.map snd (fig7d ())) in
  Printf.printf "geomean %s (paper: avg 2.77x, max 3.5x, theoretical 4x)\n"
    (Report.fmt_x gm)

let print_fig8a () =
  Report.section "Figure 8a: speedup over the CPU-offload configuration";
  Report.table ~header:[ "model"; "Gemmini"; "PICACHU" ]
    (List.map
       (fun (m, g, p) -> [ m; Report.fmt_x g; Report.fmt_x p ])
       (fig8a ()));
  let rows = fig8a () in
  Printf.printf "PICACHU vs Gemmini geomean: %s (paper: 1.86x avg)\n"
    (Report.fmt_x (Stats.geomean (List.map (fun (_, g, p) -> p /. g) rows)))

let print_fig8b () =
  Report.section "Figure 8b: speedup over the A100 (Tandem vs PICACHU)";
  Report.table ~header:[ "model"; "Tandem"; "PICACHU" ]
    (List.map (fun (m, t, p) -> [ m; Report.fmt_x t; Report.fmt_x p ]) (fig8b ()));
  let rows = fig8b () in
  Printf.printf "PICACHU vs Tandem max: %s (paper: up to 1.55x)\n"
    (Report.fmt_x
       (List.fold_left (fun acc (_, t, p) -> Float.max acc (p /. t)) 0.0 rows))

let print_fig9a () =
  Report.section "Figure 9a: PICACHU vs A100 (speedup / energy reduction)";
  Report.table ~header:[ "model"; "speedup"; "energy reduction" ]
    (List.map (fun (m, s, e) -> [ m; Report.fmt_x s; Report.fmt_x e ]) (fig9a ()))

let print_fig9b () =
  Report.section "Figure 9b: nonlinear latency share, A100 vs PICACHU";
  Report.table ~header:[ "model"; "A100"; "PICACHU" ]
    (List.map
       (fun (m, g, p) -> [ m; Report.fmt_pct g; Report.fmt_pct p ])
       (fig9b ()))

let print_ablations () =
  Report.section "Ablation: operation fusion";
  Report.table ~header:[ "kernel"; "speedup from fusion" ]
    (List.map (fun (k, s) -> [ k; Report.fmt_x s ]) (ablation_fusion ()));
  Report.section "Ablation: FP2FX/LUT special function units";
  Report.table ~header:[ "kernel"; "speedup from special FUs" ]
    (List.map (fun (k, s) -> [ k; Report.fmt_x s ]) (ablation_fp2fx ()));
  Report.section "Ablation: heterogeneous vs universal tiles";
  Report.table ~header:[ "kernel"; "universal speedup"; "universal area premium" ]
    (List.map
       (fun (k, s, a) -> [ k; Report.fmt_x s; Report.fmt_x a ])
       (ablation_hetero ()));
  Report.section "Ablation: online (FlashAttention-style) softmax (<1 = slower: compute-bound)";
  Report.table ~header:[ "model"; "relative speed" ]
    (List.map (fun (m, s) -> [ m; Report.fmt_x s ]) (ablation_online_softmax ()));
  Report.section "Ablation: double buffering";
  Report.table ~header:[ "model"; "slowdown without" ]
    (List.map (fun (m, s) -> [ m; Report.fmt_x s ]) (ablation_dbuf ()));
  Report.section "Ablation: Taylor order (user-defined precision)";
  Report.table ~header:[ "order"; "worst exp rel err"; "exp DFG nodes" ]
    (List.map
       (fun (o, e, n) -> [ string_of_int o; Printf.sprintf "%.2e" e; string_of_int n ])
       (ablation_order ()))

let print_supp_models () =
  Report.section "Supplementary: Table 5 protocol on post-paper model families";
  Report.table ~header:[ "model"; "FP16 PPL"; "ours FP16"; "ours INT16" ]
    (List.map
       (fun (m, fp, dfp, dint) ->
         [ m; Printf.sprintf "%.3f" fp; Printf.sprintf "%+.4f" dfp; Printf.sprintf "%+.4f" dint ])
       (supp_models ()))

let print_supp_mapper () =
  Report.section "Supplementary: mapper quality (II lower bound vs heuristic vs exact probe)";
  Report.table ~header:[ "loop"; "nodes"; "bound"; "heuristic"; "exact probe" ]
    (List.map
       (fun (label, nodes, lower, achieved, verdict) ->
         [
           label;
           string_of_int nodes;
           string_of_int lower;
           string_of_int achieved;
           (match verdict with
           | Picachu_cgra.Mapper_exact.Feasible ii -> Printf.sprintf "II=%d feasible" ii
           | Picachu_cgra.Mapper_exact.Infeasible_up_to b ->
               Printf.sprintf "none <= %d (window-bounded)" b
           | Picachu_cgra.Mapper_exact.Unknown -> "(graph too large / budget)");
         ])
       (supp_mapper ()))

let print_supp_energy () =
  Report.section "Supplementary: energy per element (INT16 path vs A100)";
  Report.table ~header:[ "operation"; "CGRA pJ/elem"; "A100 pJ/elem"; "ratio" ]
    (List.map
       (fun (name, c, g) ->
         [ name; Printf.sprintf "%.1f" c; Printf.sprintf "%.1f" g; Report.fmt_x (g /. c) ])
       (supp_energy ()))

let print_supp_serving () =
  Report.section "Supplementary: serving view (1024-token prompt + 256 generated)";
  Report.table
    ~header:[ "model"; "A100 ttft"; "A100 tok/s"; "PICACHU ttft"; "PICACHU tok/s" ]
    (List.map
       (fun (m, (g : Serving.summary), (p : Serving.summary)) ->
         [
           m;
           Printf.sprintf "%.0f ms" (g.Serving.ttft_s *. 1e3);
           Printf.sprintf "%.0f" g.Serving.tokens_per_s;
           Printf.sprintf "%.0f ms" (p.Serving.ttft_s *. 1e3);
           Printf.sprintf "%.0f" p.Serving.tokens_per_s;
         ])
       (supp_serving ()))

let print_supp_outliers () =
  Report.section "Supplementary: activation-outlier sweep (LLaMA-structured surrogate)";
  Report.table ~header:[ "outlier scale"; "FP16 PPL"; "ours-INT16"; "I-BERT INT8" ]
    (List.map
       (fun (s, fp, ours, ib) ->
         [
           Printf.sprintf "%.0fx" s;
           Printf.sprintf "%.2f" fp;
           Printf.sprintf "%.2f" ours;
           Printf.sprintf "%.2f" ib;
         ])
       (supp_outliers ()))

let print_supp_attrib () =
  Report.section "Supplementary: per-operator damage attribution (LLaMA surrogate PPL)";
  Report.table ~header:[ "damaged operator family"; "PPL" ]
    (List.map (fun (l, p) -> [ l; Printf.sprintf "%.2f" p ]) (supp_attrib ()))

let print_supp_quant () =
  Report.section "Supplementary: W8 linear x nonlinear backend composition (PPL)";
  Report.table ~header:[ "configuration"; "PPL" ]
    (List.map (fun (l, p) -> [ l; Printf.sprintf "%.3f" p ]) (supp_quant ()))

let print_supp_noc () =
  Report.section "Supplementary: interconnect & register-file audit (per kernel loop)";
  Report.table
    ~header:[ "loop"; "II"; "hops/II"; "max link load"; "max tile regs"; "longest live" ]
    (List.map
       (fun (label, ii, (r : Picachu_cgra.Noc.report), (rf : Picachu_cgra.Rf.report)) ->
         [
           label;
           string_of_int ii;
           string_of_int r.Picachu_cgra.Noc.total_hops;
           string_of_int r.Picachu_cgra.Noc.max_link_load;
           string_of_int rf.Picachu_cgra.Rf.max_tile_registers;
           string_of_int rf.Picachu_cgra.Rf.longest_lifetime;
         ])
       (supp_noc ()))

let print_dse () =
  Report.section "Design-space exploration (grid size x CoT share)";
  let points = Explore.sweep () in
  let front = Explore.pareto points in
  Report.table
    ~header:[ "arch"; "area mm2"; "geomean elems/cyc"; "perf/area"; "pareto" ]
    (List.map
       (fun (p : Explore.point) ->
         [
           p.Explore.arch_name;
           Printf.sprintf "%.3f" p.Explore.area_mm2;
           Printf.sprintf "%.3f" p.Explore.geomean_throughput;
           Printf.sprintf "%.3f" p.Explore.perf_per_area;
           (if List.memq p front then "*" else "");
         ])
       points);
  let r = Explore.reference_point () in
  Printf.printf "paper operating point: %s  %.3f elems/cyc at %.3f mm2
"
    r.Explore.arch_name r.Explore.geomean_throughput r.Explore.area_mm2

let print_supp_decode () =
  Report.section "Supplementary: one decode step (context 1024)";
  Report.table ~header:[ "model"; "A100 nonlinear %"; "PICACHU speedup vs A100" ]
    (List.map
       (fun (m, f, s) -> [ m; Report.fmt_pct f; Report.fmt_x s ])
       (supp_decode ()))

(* ------------------------------------------- supplementary: resilience *)

(* Fault-injection campaign: DMR + bounded re-execution over the kernel
   roster at uniform per-site fault rates.  Rate 0 pins the determinism
   story (zero injections, every trial Clean); the positive rates map how
   detection, correction and the silent-corruption floor scale.  Trials fan
   out on the domain pool; the per-trial salts make the result independent
   of the pool size. *)
(* rates are per site access (every RF read / FU latch / LUT lookup / NoC
   hop samples), so even 1e-3 means multiple expected faults per kernel
   execution — the sweep stays low to expose the correction gradient *)
let resilience_rates = [ 0.0; 1e-4; 5e-4; 2e-3; 1e-2 ]

let resilience_campaign () =
  List.map
    (fun rate ->
      let fault = Fault.uniform ~seed:1234 rate in
      (rate, Resilience.campaign ~budget:3 ~trials:8 ~n:24 ~fault ()))
    resilience_rates

(* Graceful degradation: serve a small request mix under forced tier
   failures and record who answered.  "fused fabric degraded" deploys the
   Picachu-variant kernels on the homogeneous baseline fabric, where their
   LUT/FP2FX tiles do not exist — the fused tier is structurally unmappable
   and every request must fall through, yet all are answered. *)
let resilience_serving () =
  let requests =
    List.init 8 (fun i ->
        { Serving.prompt = 128 + (i * 96); generate = 32 + (8 * (i mod 3)) })
  in
  let m = Mz.gpt2_xl in
  let tally serve =
    let tiers = [ Serving.Fused; Serving.Baseline_cgra; Serving.Roofline ] in
    let counts = List.map (fun t -> (t, ref 0)) tiers in
    let answered =
      List.fold_left
        (fun acc r ->
          match serve r with
          | (res : Serving.robust) ->
              incr (List.assq res.Serving.served_by counts);
              acc + 1
          | exception Picachu_error.Error _ -> acc)
        0 requests
    in
    ( float_of_int answered /. float_of_int (List.length requests),
      List.map (fun (t, c) -> (Serving.tier_name t, !c)) counts )
  in
  let scen name cfg =
    let a, c = tally (fun r -> Serving.robust_costs cfg m r) in
    (name, a, c)
  in
  let cgra_offline =
    let fail e = fun _ -> raise (Picachu_error.Error e) in
    let a, c =
      tally
        (Serving.robust_costs_with
           [
             (Serving.Fused, fail (Picachu_error.Mapping_failed "fabric offline"));
             ( Serving.Baseline_cgra,
               fail (Picachu_error.Execution_fault "fabric offline") );
             (Serving.Roofline, fun r -> Serving.gpu_costs Gpu.a100 m r);
           ])
    in
    ("cgra offline", a, c)
  in
  [
    scen "nominal" (Simulator.default_config ());
    scen "fused fabric degraded"
      { (Simulator.default_config ()) with Simulator.arch = Arch.baseline () };
    cgra_offline;
  ]

let print_resilience () =
  Report.section "Supplementary: fault-injection campaign (DMR + re-execution)";
  Report.table
    ~header:
      [
        "rate"; "trials"; "injected"; "detected"; "corrected"; "silent";
        "uncorrected"; "execs"; "worst |err|";
      ]
    (List.map
       (fun (rate, (s : Resilience.stats)) ->
         [
           Printf.sprintf "%g" rate;
           string_of_int s.Resilience.trials;
           string_of_int s.Resilience.injected;
           string_of_int s.Resilience.detected;
           string_of_int s.Resilience.corrected;
           string_of_int s.Resilience.silent;
           string_of_int s.Resilience.uncorrected;
           string_of_int s.Resilience.executions;
           Printf.sprintf "%.3g" s.Resilience.worst_abs_err;
         ])
       (resilience_campaign ()));
  Report.section "Supplementary: serving availability under tier failures";
  Report.table
    ~header:[ "scenario"; "availability"; "fused"; "baseline-cgra"; "roofline" ]
    (List.map
       (fun (name, avail, counts) ->
         name :: Printf.sprintf "%.2f" avail
         :: List.map (fun (_, c) -> string_of_int c) counts)
       (resilience_serving ()))

(* --------------------------------------- supplementary: pipeline stats *)

(* Compile the whole kernel library under both option sets and report the
   per-pass instrumentation plus cache effectiveness.  Wall times are
   nondeterministic, which is why this id is opt-in rather than part of the
   golden transcript. *)
let print_pipeline () =
  Compiler.reset_stats ();
  let roster variant = Kernels.all variant @ Kernels.extras variant in
  let compile_roster () =
    List.iter
      (fun (variant, opts) ->
        List.iter
          (fun (k : Kernel.t) ->
            ignore (Compiler.cached_result opts variant k.Kernel.name))
          (roster variant))
      [
        (Kernels.picachu, Compiler.picachu_options ());
        (Kernels.Baseline, Compiler.baseline_options ());
      ]
  in
  compile_roster ();
  Report.section "Supplementary: compilation pipeline (per-pass stats)";
  Report.pass_table (Compiler.compile_stats ());
  let s = Compiler.cache_stats () in
  Printf.printf "cache: hits=%d misses=%d entries=%d\n" s.Compiler.hits
    s.Compiler.misses s.Compiler.entries

(* ------------------------------- supplementary: precision / formats *)

(* Accuracy vs cost of the proven-bound format selection: per roster
   kernel, the chosen format, its statically proven worst-case output
   error, and the surrogate-perplexity delta of running the whole
   nonlinear stack behind that format's I/O grid (exact operator
   mathematics behind quantized I/O, isolating the data-format cost).
   Tensors are scaled per-tensor into the format's range before
   quantizing — the same dynamic protocol as the ours-INT16 backend —
   so the delta measures the format's *resolution*, which is what the
   proven bound speaks to, not fixed-range saturation on out-of-range
   hidden states.  PPL deltas are per format, so kernels sharing a
   chosen format share a delta; the proven bound is the per-kernel
   quantity. *)
let supp_precision () =
  let roster = Kernels.all Kernels.picachu @ Kernels.extras Kernels.picachu in
  let sur = surrogate_for Mz.llama2_7b in
  let rng = Picachu_tensor.Rng.create stream_seed in
  let stream =
    Surrogate.sample sur rng ~temperature:sample_temperature ~len:stream_len ()
  in
  let base = Ppl.ppl sur Nm.Approx.exact stream in
  let delta_memo = Hashtbl.create 8 in
  let ppl_delta fmt =
    let key = Nm.Numfmt.name fmt in
    match Hashtbl.find_opt delta_memo key with
    | Some d -> d
    | None ->
        let quantize_dyn xs =
          let amax =
            Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0.0 xs
          in
          if amax = 0.0 || not (Float.is_finite amax) then
            Array.map (Nm.Numfmt.quantize fmt) xs
          else
            let s = amax /. Nm.Numfmt.max_value fmt in
            Array.map (fun x -> Nm.Numfmt.quantize fmt (x /. s) *. s) xs
        in
        let backend =
          { Nm.Approx.exact with Nm.Approx.name = key; format = quantize_dyn }
        in
        let d = Ppl.ppl sur backend stream -. base in
        Hashtbl.add delta_memo key d;
        d
  in
  List.map
    (fun (k : Kernel.t) ->
      let c = Compiler.select_format ~budget:1e-2 k in
      ( k.Kernel.name,
        c.Picachu_verify.Precision.fmt,
        c.Picachu_verify.Precision.bound,
        c.Picachu_verify.Precision.fallback,
        ppl_delta c.Picachu_verify.Precision.fmt ))
    roster

let print_precision () =
  Report.section
    "Supplementary: precision analysis & proven-bound format selection";
  Report.table
    ~header:[ "kernel"; "format"; "bits"; "proven bound"; "ppl delta"; "status" ]
    (List.map
       (fun (name, fmt, bound, fallback, delta) ->
         [
           name;
           Nm.Numfmt.name fmt;
           string_of_int (Nm.Numfmt.bits fmt);
           (if Float.is_finite bound then Printf.sprintf "%.3g" bound
            else "unbounded");
           Printf.sprintf "%+.4f" delta;
           (if fallback then "fallback" else "fits");
         ])
       (supp_precision ()))

(* -------------------------------------------------------------- backends *)

(* Head-to-head of the two Picachu approximation backends — Taylor
   expansion vs non-uniform linear interpolation — per operator.  Three
   axes: accuracy, achieved II per loop, and resident LUT ROM bytes (the
   tile state the mapper charges against [Arch.lut_capacity_bytes]).

   Accuracy is the verifier's proven FP16 error bound where the
   affine/PWL transfer rules prove one; where no finite bound exists
   (division, inverse square root and other unbounded denominators), the
   honest fallback is the surrogate-PPL delta of damaging just that
   operator's family with the backend's arithmetic, the Table 5
   protocol. *)
let backend_family = function
  | "softmax" | "softmax_online" -> Some `Softmax
  | "relu" | "gelu" | "geglu" | "swiglu" | "silu" | "relu_squared" ->
      Some `Activation
  | "layernorm" | "rmsnorm" -> Some `Norm
  | "rope" -> Some `Rope
  | _ -> None

let backends_roster =
  [
    "softmax"; "softmax_online"; "relu"; "gelu"; "geglu"; "swiglu"; "silu";
    "layernorm"; "rmsnorm"; "rope"; "softcap"; "relu_squared";
  ]

type backend_cell = {
  bc_iis : int list;
  bc_rom : int;
  bc_bound : float;
  bc_ppl : float option;  (** fallback when the bound is infinite *)
}

let backends_cells () =
  let sur = surrogate_for Mz.llama2_7b in
  let rng = Picachu_tensor.Rng.create stream_seed in
  let stream =
    Surrogate.sample sur rng ~temperature:sample_temperature ~len:stream_len ()
  in
  let base = lazy (Ppl.ppl sur Nm.Approx.exact stream) in
  let ppl_memo = Hashtbl.create 8 in
  let ppl_delta backend family =
    let fam_tag =
      match family with
      | `Softmax -> "softmax"
      | `Activation -> "act"
      | `Norm -> "norm"
      | `Rope -> "rope"
    in
    let damaged =
      match backend with
      | Kernels.Taylor -> Nm.Approx.ours_fp ()
      | Kernels.Nli -> Nm.Approx.nli_fp ()
    in
    let key = Kernels.backend_name backend ^ "/" ^ fam_tag in
    match Hashtbl.find_opt ppl_memo key with
    | Some d -> d
    | None ->
        let b =
          Nm.Approx.hybrid ~name:key ~base:Nm.Approx.exact ~damaged
            ~only:family
        in
        let d = Ppl.ppl sur b stream -. Lazy.force base in
        Hashtbl.add ppl_memo key d;
        d
  in
  let opts = Compiler.picachu_options () in
  let cell backend name =
    let variant = Kernels.Picachu backend in
    let k =
      List.find
        (fun (k : Kernel.t) -> k.Kernel.name = name)
        (Kernels.all variant @ Kernels.extras variant)
    in
    let c =
      match Compiler.memo_result opts k with
      | Ok c -> c
      | Error e -> raise (Picachu_error.Error e)
    in
    let bc_iis =
      List.map
        (fun (cl : Compiler.compiled_loop) -> cl.Compiler.mapping.Mapper.ii)
        c.Compiler.loops
    in
    let bc_rom =
      let names =
        List.concat_map
          (fun (cl : Compiler.compiled_loop) -> Mapper.lut_names cl.Compiler.dfg)
          c.Compiler.loops
      in
      Nm.Lut_catalog.footprint_bytes names
    in
    let bc_bound =
      (Picachu_verify.Precision.analyze ~fmt:Nm.Numfmt.Fp16 k)
        .Picachu_verify.Precision.bound
    in
    let bc_ppl =
      if Float.is_finite bc_bound then None
      else Option.map (ppl_delta backend) (backend_family name)
    in
    { bc_iis; bc_rom; bc_bound; bc_ppl }
  in
  List.map
    (fun name -> (name, cell Kernels.Taylor name, cell Kernels.Nli name))
    backends_roster

let print_backends () =
  Report.section
    "Backend head-to-head: Taylor expansion vs non-uniform interpolation";
  let fmt_acc c =
    if Float.is_finite c.bc_bound then Printf.sprintf "%.2e bound" c.bc_bound
    else
      match c.bc_ppl with
      | Some d -> Printf.sprintf "%+.4f ppl" d
      | None -> "unbounded"
  in
  let fmt_iis c =
    String.concat "," (List.map string_of_int c.bc_iis)
  in
  let cells = backends_cells () in
  let rows =
    List.map
      (fun (name, t, n) ->
        [
          name;
          fmt_iis t;
          fmt_iis n;
          string_of_int t.bc_rom;
          string_of_int n.bc_rom;
          fmt_acc t;
          fmt_acc n;
        ])
      cells
  in
  Report.table
    ~header:
      [
        "operator"; "taylor II"; "nli II"; "taylor ROM B"; "nli ROM B";
        "taylor accuracy"; "nli accuracy";
      ]
    rows;
  let sum_ii c = List.fold_left ( + ) 0 c.bc_iis in
  let wins =
    List.length (List.filter (fun (_, t, n) -> sum_ii n < sum_ii t) cells)
  in
  Printf.printf
    "nli lowers the summed II on %d/%d operators; every nli table fits the \
     %d-byte tile ROM budget\n"
    wins
    (List.length backends_roster)
    Arch.default_lut_capacity_bytes

(* ------------------------------------- supplementary: ONE-SA + codesign *)

(* Figure 8a extended with the third architectural philosophy: nonlinear
   ops executed *inside* the systolic array (ONE-SA), vs Gemmini's
   dedicated-unit/scalar-fallback split and PICACHU's plug-in CGRA.  Same
   CPU-offload numerator as fig8a, so rows are comparable side by side. *)
let onesa () =
  let sys = Systolic.default in
  List.map
    (fun m ->
      let w = Workload.of_model m ~seq in
      let gemm_s =
        List.fold_left
          (fun acc (g : Workload.gemm) ->
            acc +. (float_of_int g.count *. Systolic.gemm_seconds sys ~m:g.m ~k:g.k ~n:g.n))
          0.0 w.Workload.gemms
      in
      let cpu_s = gemm_s +. Cpu.total_nl_seconds Cpu.i7_11370h w in
      let gem = Gemmini.run Gemmini.default w in
      let gem_s = float_of_int gem.Gemmini.total_cycles *. 1e-9 in
      let osa = One_sa.run One_sa.default w in
      let osa_s = float_of_int osa.One_sa.total_cycles *. 1e-9 in
      let cfg = Simulator.default_config ~vector:4 () in
      let pic_s = Simulator.seconds cfg (Simulator.run cfg w) in
      (m.Mz.name, cpu_s /. gem_s, cpu_s /. osa_s, cpu_s /. pic_s))
    fig8a_models

let print_onesa () =
  Report.section
    "Figure 8a extended: ONE-SA (nonlinear ops inside the systolic array)";
  Report.table
    ~header:[ "model"; "Gemmini"; "ONE-SA"; "PICACHU" ]
    (List.map
       (fun (m, g, o, p) ->
         [ m; Report.fmt_x g; Report.fmt_x o; Report.fmt_x p ])
       (onesa ()));
  let rows = onesa () in
  Printf.printf "PICACHU vs ONE-SA geomean: %s (coverage without a plug-in: no area, but the array time-multiplexes)\n"
    (Report.fmt_x (Stats.geomean (List.map (fun (_, _, o, p) -> p /. o) rows)))

(* Small pinned-seed co-design run: enough budget to walk off the
   hand-designed 4x4 point, small enough to stay interactive *)
let print_codesign () =
  let config = { Codesign.default_config with Codesign.iters = 32; seed = 7 } in
  Report.codesign_table (Codesign.run ~config ())

let printers =
  [
    ("fig1", print_fig1);
    ("tab2", print_tab2);
    ("tab3", print_tab3);
    ("tab4", print_tab4);
    ("tab5", print_tab5);
    ("tab6", print_tab6);
    ("tab7", print_tab7);
    ("fig3", print_fig3);
    ("fig7a", print_fig7a);
    ("fig7b", print_fig7b);
    ("fig7c", print_fig7c);
    ("fig7d", print_fig7d);
    ("fig8a", print_fig8a);
    ("fig8b", print_fig8b);
    ("fig9a", print_fig9a);
    ("fig9b", print_fig9b);
    ("decode", print_supp_decode);
    ("noc", print_supp_noc);
    ("quant", print_supp_quant);
    ("attrib", print_supp_attrib);
    ("outliers", print_supp_outliers);
    ("serving", print_supp_serving);
    ("energy", print_supp_energy);
    ("mapper", print_supp_mapper);
    ("models", print_supp_models);
    ("dse", print_dse);
    ("ablations", print_ablations);
  ]

(* opt-in ids, kept out of [print_all]: the default experiments transcript
   (EXPERIMENTS.md) predates fault support and must stay byte-identical *)
let extra_printers =
  [
    ("resilience", print_resilience);
    ("pipeline", print_pipeline);
    ("precision", print_precision);
    ("backends", print_backends);
    ("onesa", print_onesa);
    ("codesign", print_codesign);
  ]

let ids = List.map fst printers @ List.map fst extra_printers

let print id =
  match List.assoc_opt id (printers @ extra_printers) with
  | Some f -> f ()
  | None -> invalid_arg ("Experiments.print: unknown id " ^ id)

let print_all () = List.iter (fun (_, f) -> f ()) printers
