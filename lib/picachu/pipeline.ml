module Verify = Picachu_verify.Verify
module Finding = Picachu_verify.Finding

type pass_stats = {
  pass : string;
  runs : int;
  wall_s : float;
  counters : (string * int) list;
}

exception Pass_failed of { pass : string; findings : string list }

(* ------------------------------------------------------- stats registry *)

type entry = {
  mutable runs : int;
  mutable wall_s : float;
  tallies : (string, int) Hashtbl.t;
}

let lock = Mutex.create ()
let entries : (string, entry) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref []

(* external counter sources (e.g. the mapper's search-effort atomics),
   snapshotted at [stats] time so concurrent compiles never double-count *)
let sources : (string * (unit -> (string * int) list)) list ref = ref []
let resetters : (unit -> unit) list ref = ref []

let entry_of name =
  (* callers hold [lock] *)
  match Hashtbl.find_opt entries name with
  | Some e -> e
  | None ->
      let e = { runs = 0; wall_s = 0.0; tallies = Hashtbl.create 4 } in
      Hashtbl.add entries name e;
      order := name :: !order;
      e

let declare name = Mutex.protect lock (fun () -> ignore (entry_of name))

let record name dt =
  Mutex.protect lock (fun () ->
      let e = entry_of name in
      e.runs <- e.runs + 1;
      e.wall_s <- e.wall_s +. dt)

let bump ~pass name n =
  Mutex.protect lock (fun () ->
      let e = entry_of pass in
      Hashtbl.replace e.tallies name
        (n + Option.value ~default:0 (Hashtbl.find_opt e.tallies name)))

let register_counter_source ~pass ?reset f =
  Mutex.protect lock (fun () ->
      ignore (entry_of pass);
      sources := (pass, f) :: !sources;
      match reset with None -> () | Some r -> resetters := r :: !resetters)

let stats () =
  Mutex.protect lock (fun () ->
      List.rev_map
        (fun name ->
          let e = Hashtbl.find entries name in
          let own =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) e.tallies []
          in
          let sourced =
            List.concat_map
              (fun (p, f) -> if p = name then f () else [])
              !sources
          in
          {
            pass = name;
            runs = e.runs;
            wall_s = e.wall_s;
            counters =
              List.sort (fun (a, _) (b, _) -> String.compare a b) (own @ sourced);
          })
        !order)

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.iter
        (fun _ e ->
          e.runs <- 0;
          e.wall_s <- 0.0;
          Hashtbl.reset e.tallies)
        entries;
      List.iter (fun r -> r ()) !resetters)

(* ------------------------------------------------------------- dumping *)

let dump_after : string option ref = ref None
let dump_sink : (pass:string -> string -> unit) ref =
  ref (fun ~pass:_ s -> print_string s)

let set_dump_after ?sink name =
  dump_after := name;
  match sink with None -> () | Some s -> dump_sink := s

(* -------------------------------------------------------------- passes *)

type ('a, 'b) t = 'a -> 'b

let v ~name ?post ?dump f : ('a, 'b) t =
 fun x ->
  let t0 = Unix.gettimeofday () in
  let y =
    match f x with
    | y -> y
    | exception e ->
        record name (Unix.gettimeofday () -. t0);
        raise e
  in
  record name (Unix.gettimeofday () -. t0);
  (* no tuple allocation on the hot no-dump path *)
  (match !dump_after with
  | Some want when want = name -> (
      match dump with Some d -> !dump_sink ~pass:name (d y) | None -> ())
  | _ -> ());
  (match post with
  | Some check when Verify.enabled () -> (
      match Finding.errors (check y) with
      | [] -> ()
      | errs ->
          raise
            (Pass_failed
               { pass = name; findings = List.map Finding.to_string errs }))
  | _ -> ());
  y

let skip : ('a, 'a) t = Fun.id
let ( >>> ) (a : ('a, 'b) t) (b : ('b, 'c) t) : ('a, 'c) t = fun x -> b (a x)
let run (p : ('a, 'b) t) x = p x
