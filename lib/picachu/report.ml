let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  List.iter
    (fun r ->
      if List.length r <> cols then invalid_arg "Report.table: ragged row")
    rows;
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)))
    all;
  let print_row r =
    List.iteri
      (fun i cell ->
        Printf.printf "%s%s" cell (String.make (widths.(i) - String.length cell + 2) ' '))
      r;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') (Array.to_list widths));
  List.iter print_row rows

let fmt_f v =
  if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v else Printf.sprintf "%.3g" v

let fmt_x v = Printf.sprintf "%.2fx" v
let fmt_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)

let fmt_delta v =
  if Float.abs v < 0.005 then "0.00"
  else if v > 0.0 then Printf.sprintf "+%.2f" v
  else Printf.sprintf "%.2f" v

(* Fleet-level serving metrics: the percentile table plus one summary line.
   Milliseconds for the per-request rows — tail latencies are the headline
   number, and sub-second values render illegibly in seconds. *)
let serve_table (f : Scheduler.fleet) =
  let ms v = Printf.sprintf "%.2f" (1000.0 *. v) in
  table
    ~header:[ "metric"; "p50"; "p95"; "p99" ]
    [
      [ "ttft (ms)"; ms f.Scheduler.ttft.Scheduler.p50; ms f.Scheduler.ttft.Scheduler.p95;
        ms f.Scheduler.ttft.Scheduler.p99 ];
      [ "latency (ms)"; ms f.Scheduler.latency.Scheduler.p50;
        ms f.Scheduler.latency.Scheduler.p95; ms f.Scheduler.latency.Scheduler.p99 ];
    ];
  Printf.printf "completed %d  dropped %d  makespan %.3f s  throughput %.1f tok/s\n"
    (List.length f.Scheduler.completions)
    f.Scheduler.dropped f.Scheduler.makespan_s f.Scheduler.throughput_tps;
  Printf.printf "tiers: %s\n"
    (String.concat "  "
       (List.map
          (fun (t, k) -> Printf.sprintf "%s=%d" (Serving.tier_name t) k)
          f.Scheduler.tiers))

(* Cluster-level serving metrics: the percentile table, the availability
   accounting identity (printed so CI can grep it), fault and defense
   counters, and the per-replica completion spread. *)
let cluster_table (r : Cluster.report) =
  let ms v = Printf.sprintf "%.2f" (1000.0 *. v) in
  table
    ~header:[ "metric"; "p50"; "p95"; "p99" ]
    [
      [ "ttft (ms)"; ms r.Cluster.ttft.Scheduler.p50; ms r.Cluster.ttft.Scheduler.p95;
        ms r.Cluster.ttft.Scheduler.p99 ];
      [ "latency (ms)"; ms r.Cluster.latency.Scheduler.p50;
        ms r.Cluster.latency.Scheduler.p95; ms r.Cluster.latency.Scheduler.p99 ];
    ];
  Printf.printf "arrivals %d  answered %d  dropped %d  failed %d  (identity %s)\n"
    r.Cluster.arrivals r.Cluster.answered r.Cluster.dropped r.Cluster.failed
    (if Cluster.accounting_ok r then "ok" else "VIOLATED");
  Printf.printf
    "availability %.4f  goodput %.1f tok/s  amplification %.2fx  makespan %.3f s\n"
    r.Cluster.availability r.Cluster.goodput_tps r.Cluster.amplification
    r.Cluster.makespan_s;
  let c = r.Cluster.counters in
  Printf.printf "faults: crashes=%d hangs=%d slowdowns=%d\n" c.Cluster.crashes
    c.Cluster.hangs c.Cluster.slowdowns;
  Printf.printf
    "defense: requeued=%d retries=%d timeouts=%d hedges=%d hedge-wins=%d \
     breaker-trips=%d probes=%d\n"
    c.Cluster.requeued c.Cluster.retries c.Cluster.timeouts c.Cluster.hedges
    c.Cluster.hedge_wins c.Cluster.breaker_trips c.Cluster.probes;
  Printf.printf "replicas served: %s\n"
    (String.concat "  "
       (Array.to_list
          (Array.mapi (fun i k -> Printf.sprintf "r%d=%d" i k) r.Cluster.served_per_replica)));
  Printf.printf "tiers: %s\n"
    (String.concat "  "
       (List.map
          (fun (t, k) -> Printf.sprintf "%s=%d" (Serving.tier_name t) k)
          r.Cluster.tiers))

(* One-line mapper search-effort summary: raw attempt/backtrack totals plus
   the warm-start hit rate whenever any hints were consulted — the number
   that tells you whether a sweep actually ran on the fast path. *)
let search_effort_line (c : Picachu_cgra.Mapper.counters) =
  let consulted = c.Picachu_cgra.Mapper.warm_hits + c.Picachu_cgra.Mapper.warm_rejects in
  let warm =
    if consulted = 0 then ""
    else
      Printf.sprintf "  warm-hits %d/%d (%s)" c.Picachu_cgra.Mapper.warm_hits
        consulted
        (fmt_pct
           (float_of_int c.Picachu_cgra.Mapper.warm_hits /. float_of_int consulted))
  in
  Printf.printf "mapper effort: ii-attempts %d  backtracks %d%s\n"
    c.Picachu_cgra.Mapper.ii_attempts c.Picachu_cgra.Mapper.backtracks warm

(* Per-pass pipeline instrumentation, one row per pass in pipeline order.
   Counters render inline ("ii-attempts=147 backtracks=9") so the table
   keeps a fixed arity whatever each pass tallies. *)
let pass_table (stats : Pipeline.pass_stats list) =
  table
    ~header:[ "pass"; "runs"; "wall-ms"; "counters" ]
    (List.map
       (fun (s : Pipeline.pass_stats) ->
         [
           s.Pipeline.pass;
           string_of_int s.Pipeline.runs;
           Printf.sprintf "%.2f" (1000.0 *. s.Pipeline.wall_s);
           (match s.Pipeline.counters with
           | [] -> "-"
           | cs ->
               String.concat " "
                 (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) cs));
         ])
       stats)

(* Co-design search rendering: the accepted-move trace (the path the
   annealer walked), totals, the discovered-vs-reference comparison, and a
   greppable verdict line for the CI smoke. *)
let codesign_table (r : Codesign.result) =
  section "HW/SW co-design search (simulated annealing)";
  Printf.printf "budget %d candidates  batch %d  seed %d  objective %s\n"
    r.Codesign.config.Codesign.iters r.Codesign.config.Codesign.batch
    r.Codesign.config.Codesign.seed
    (match r.Codesign.config.Codesign.objective with
    | Codesign.Perf_per_area -> "perf/area"
    | Codesign.Throughput_under_cap cap ->
        Printf.sprintf "geomean throughput under %.3f mm2" cap);
  let accepted =
    List.filter (fun (e : Codesign.trace_entry) -> e.Codesign.accepted) r.Codesign.trace
  in
  table
    ~header:[ "step"; "move"; "arch"; "score"; "best" ]
    (List.map
       (fun (e : Codesign.trace_entry) ->
         [
           string_of_int e.Codesign.step;
           e.Codesign.move;
           e.Codesign.arch_name;
           (match e.Codesign.score with
           | Some s -> Printf.sprintf "%.3f" s
           | None -> "-");
           Printf.sprintf "%.3f" e.Codesign.best_score;
         ])
       accepted);
  Printf.printf "evaluated %d  accepted %d  infeasible %d\n"
    r.Codesign.evaluated r.Codesign.accepted_count r.Codesign.infeasible;
  let p = r.Codesign.best and q = r.Codesign.init_point in
  table
    ~header:[ "arch"; "area mm2"; "geomean elems/cyc"; "perf/area" ]
    [
      [
        q.Explore.arch_name ^ " (reference)";
        Printf.sprintf "%.3f" q.Explore.area_mm2;
        Printf.sprintf "%.3f" q.Explore.geomean_throughput;
        Printf.sprintf "%.3f" q.Explore.perf_per_area;
      ];
      [
        p.Explore.arch_name ^ " (discovered)";
        Printf.sprintf "%.3f" p.Explore.area_mm2;
        Printf.sprintf "%.3f" p.Explore.geomean_throughput;
        Printf.sprintf "%.3f" p.Explore.perf_per_area;
      ];
    ];
  Printf.printf "codesign: best perf/area %.3f vs reference %.3f (%s)\n"
    p.Explore.perf_per_area q.Explore.perf_per_area
    (if p.Explore.perf_per_area > q.Explore.perf_per_area then
       "beats reference"
     else "does not beat reference")
