(** Design-space exploration over the CGRA configuration.

    The paper leans on DSE frameworks (OpenCGRA, APEX, VecPAC) to justify
    its heterogeneous 4x4 operating point; this module reproduces that kind
    of study: sweep grid sizes and CoT shares, evaluate each point's
    geomean kernel throughput over the Table 1 library and its silicon
    area, and extract the Pareto frontier.

    Throughput is elements per cycle at a 1024-element pass, geomean over
    kernels; area is the CGRA cost model's figure. *)

type point = {
  rows : int;
  cols : int;
  cot_share : float;
  backend : Picachu_ir.Kernels.backend;
      (** approximation backend the roster was authored with *)
  arch_name : string;
  area_mm2 : float;
  geomean_throughput : float;  (** elements/cycle, geomean over kernels *)
  perf_per_area : float;
}

val kernel_roster :
  ?backend:Picachu_ir.Kernels.backend -> unit -> Picachu_ir.Kernel.t list
(** The kernels a design point is scored on: the full library authored with
    [backend] (default Taylor), minus [softmax_online] (same numerics as
    [softmax], kept out so the streaming variant does not double-weight the
    geomean).  Exposed so searches layered on top (e.g. {!Codesign}) can
    pre-compile or harvest warm-start hints for exactly the scored set. *)

val arch_area : Picachu_cgra.Arch.t -> float
(** {!Picachu_cgra.Cost.cgra_cost} area plus the per-LUT-tile ROM capacity
    delta against {!Picachu_cgra.Arch.default_lut_capacity_bytes}, priced by
    {!Picachu_cgra.Cost.lut_rom_cost}.  Exactly the cost-model figure at the
    default capacity; shrinking the ROM budget is a real area saving, growing
    it a real cost — the knob the co-design search trades against mapping
    feasibility. *)

val evaluate_arch :
  ?cold:bool ->
  ?hints:Compiler.hints ->
  ?backend:Picachu_ir.Kernels.backend ->
  Picachu_cgra.Arch.t ->
  point
(** Compile the kernel library onto an arbitrary architecture instance and
    measure.  [rows]/[cols] are read off the instance and [cot_share] is the
    measured CoT fraction of its non-corner tiles; area is {!arch_area}.
    Raises like {!evaluate}. *)

val evaluate :
  ?cold:bool ->
  ?hints:Compiler.hints ->
  ?backend:Picachu_ir.Kernels.backend ->
  rows:int ->
  cols:int ->
  cot_share:float ->
  unit ->
  point
(** [evaluate_arch] on [Arch.hetero_mix ~rows ~cols ~cot_share], with the
    requested share as the point's label. Raises
    {!Picachu_cgra.Mapper.Unmappable} only if some kernel cannot map at any
    candidate unroll factor (kernels that fail are skipped; a point where
    *no* kernel maps raises).  The roster is deduplicated by
    {!Picachu_ir.Kernel.structural_digest} before fan-out, so structurally
    shared kernels compile once per point.  [cold] (default false) bypasses
    the content-addressed cache — benchmarks and the search-effort gate use
    it to measure genuine compiles.  [hints] warm-starts each kernel's
    mapper from the store and harvests this point's accepted schedules back
    into it. *)

val sweep :
  ?sizes:(int * int) list ->
  ?cot_shares:float list ->
  ?backends:Picachu_ir.Kernels.backend list ->
  ?warm:bool ->
  unit ->
  point list
(** Default: sizes {3x3, 4x4, 4x8, 5x5} x CoT shares {1/3, 1/2, 2/3, 5/6},
    Taylor backend only.  [backends] adds an outer per-operator-backend
    axis: the full grid is swept once per backend, each sweep compiling the
    roster authored with that backend's kernels.
    Design points that share an architecture digest (CoT shares rounding to
    the same tile mix) evaluate once and are relabeled per share.

    [warm] (default false) evaluates each grid size's shares sequentially,
    threading a per-size {!Compiler.hints} store along the CoT-share axis so
    every point after the first seeds its mapper from a sibling one knob
    away; sizes still run in parallel, and hint stores never cross sizes, so
    results are pool-size independent.  Off by default: the flat cold path
    is the reference the transcript golden pins, warm mode is the DSE
    fast path. *)

val pareto : point list -> point list
(** Points not dominated in (throughput up, area down), in area order. *)

val reference_point : unit -> point
(** The paper's operating point: 4x4 at a 2/3 CoT share. *)
