(** Plain-text table rendering for the experiment harness. *)

val section : string -> unit
(** Underlined heading on stdout. *)

val table : header:string list -> string list list -> unit
(** Column-aligned table; every row must have the header's arity. *)

val fmt_f : float -> string
(** Compact float (3 significant decimals). *)

val fmt_x : float -> string
(** Ratio as ["1.86x"]. *)

val fmt_pct : float -> string
(** Fraction as ["46.3%"]. *)

val fmt_delta : float -> string
(** Signed small delta, paper Table 5/6 style: ["+0.05" / "-0.21" / "0.00"]. *)

val serve_table : Scheduler.fleet -> unit
(** Render a {!Scheduler.fleet}: the TTFT/latency percentile table (ms) and
    a completed/dropped/makespan/throughput summary line plus the per-tier
    tally. *)

val cluster_table : Cluster.report -> unit
(** Render a {!Cluster.report}: percentile table (ms), the availability
    accounting identity (greppable ["(identity ok)"] for the CI smokes),
    availability/goodput/amplification, fault and defense counters, the
    per-replica completion spread, and the per-tier tally. *)

val pass_table : Pipeline.pass_stats list -> unit
(** Render [Compiler.compile_stats ()]: pass, runs, total wall-ms, and the
    pass's counters inline.  Wall times are nondeterministic — keep this
    out of golden-diffed transcripts. *)

val search_effort_line : Picachu_cgra.Mapper.counters -> unit
(** One-line mapper search-effort summary — II attempts, backtracks, and
    (when any hints were consulted) the warm-start hit rate. *)

val codesign_table : Codesign.result -> unit
(** Render a {!Codesign.result}: the accepted-move trace, search totals,
    the discovered-vs-reference architecture comparison, and a greppable
    ["beats reference"] verdict line for the CI smoke. *)
