module Kernel = Picachu_ir.Kernel
module Kernels = Picachu_ir.Kernels
module Kernel_text = Picachu_ir.Kernel_text
module Transform = Picachu_ir.Transform
module Dfg = Picachu_dfg.Dfg
module Fuse = Picachu_dfg.Fuse
module Arch = Picachu_cgra.Arch
module Mapper = Picachu_cgra.Mapper
module Verify = Picachu_verify.Verify
module Finding = Picachu_verify.Finding
module Precision = Picachu_verify.Precision

type options = {
  arch : Arch.t;
  fuse : bool;
  unroll_candidates : int list;
  vector : int;
}

let picachu_options ?arch ?(vector = 1) () =
  {
    arch = (match arch with Some a -> a | None -> Arch.picachu ());
    fuse = true;
    unroll_candidates = [ 1; 2; 4 ];
    vector;
  }

let baseline_options ?arch () =
  {
    arch = (match arch with Some a -> a | None -> Arch.baseline ());
    fuse = false;
    unroll_candidates = [ 1 ];
    vector = 1;
  }

type compiled_loop = {
  source : Kernel.loop;
  dfg : Dfg.t;
  mapping : Mapper.mapping;
}

type compiled = {
  kernel : Kernel.t;
  loops : compiled_loop list;
  unroll : int;
  vector : int;
  arch : Arch.t;
  arch_name : string;
}

(* ------------------------------------------------------------- pipeline *)

let pass_names = [ "vectorize"; "unroll"; "extract"; "fuse"; "schedule" ]

let () =
  List.iter Pipeline.declare pass_names;
  Pipeline.declare "select-format";
  (* the mapper's search-effort atomics surface under the schedule pass *)
  Pipeline.register_counter_source ~pass:"schedule"
    ~reset:Mapper.reset_counters (fun () ->
      let c = Mapper.counters () in
      [
        ("ii-attempts", c.Mapper.ii_attempts);
        ("backtracks", c.Mapper.backtracks);
        ("warm-hits", c.Mapper.warm_hits);
        ("warm-rejects", c.Mapper.warm_rejects);
      ])

(* ------------------------------------------------- format selection pass *)

(* Precision-driven format choice runs as its own registered pass so the
   ladder walk shows up in [compile_stats] next to the structural passes:
   how many candidates each selection proved bounds for, and how often the
   budget was missed (a fallback to the best-proven / widest format). *)
let stage_select_format ?config ?budget ?candidates () =
  Pipeline.v ~name:"select-format" (fun k ->
      let c = Precision.select_format ?config ?budget ?candidates k in
      Pipeline.bump ~pass:"select-format" "candidates-proven"
        (List.length
           (List.filter (fun (_, b) -> Float.is_finite b) c.Precision.tried));
      Pipeline.bump ~pass:"select-format" "candidates-tried"
        (List.length c.Precision.tried);
      if c.Precision.fallback then
        Pipeline.bump ~pass:"select-format" "fallbacks" 1;
      c)

let select_format ?config ?budget ?candidates (k : Kernel.t) =
  Pipeline.run (stage_select_format ?config ?budget ?candidates ()) k

(* ------------------------------------------------------- warm-start hints *)

(* A hint store carries accepted mappings across the design points of a
   sweep so a sibling compile (same kernel, one arch knob changed) can seed
   the mapper instead of searching cold.  Keys deliberately exclude the
   architecture — cross-arch reuse is the whole point — and identify the
   schedule's exact input: the *post-transform* kernel digest (so vector and
   unroll factors are baked in), the loop's ordinal, and the fuse knob.
   The mapper re-validates every hint from first principles on the new arch
   (and [stage_schedule] adds the independent verifier), so a stale or
   cross-wired hint costs a [warm_rejects] tick, never a wrong schedule. *)
type hints = {
  table : (string, Mapper.mapping) Hashtbl.t;
  hints_lock : Mutex.t;
}

let hints_create () = { table = Hashtbl.create 64; hints_lock = Mutex.create () }

let hint_key ~digest ~fuse ~loop_idx =
  Printf.sprintf "%s:%d:%b" digest loop_idx fuse

let hint_find h key =
  Mutex.protect h.hints_lock (fun () -> Hashtbl.find_opt h.table key)

let hint_store h key m =
  Mutex.protect h.hints_lock (fun () -> Hashtbl.replace h.table key m)

let dump_dfg (_, g) = Format.asprintf "%a" Dfg.pp g

let stage_vectorize vf =
  Pipeline.v ~name:"vectorize" ~post:Verify.lint_kernel
    ~dump:Kernel_text.to_string (fun k ->
      if vf > 1 then Transform.vectorize_kernel vf k else k)

let stage_unroll uf =
  Pipeline.v ~name:"unroll" ~post:Verify.lint_kernel
    ~dump:Kernel_text.to_string (fun k ->
      if uf > 1 then Transform.unroll_kernel uf k else k)

let stage_extract =
  Pipeline.v ~name:"extract"
    ~post:(fun (loop, g) -> Verify.check_dfg ~source:loop g)
    ~dump:dump_dfg
    (fun loop -> (loop, Dfg.of_loop loop))

let stage_fuse =
  Pipeline.v ~name:"fuse"
    ~post:(fun (loop, g) -> Verify.check_dfg ~source:loop g)
    ~dump:dump_dfg
    (fun (loop, g) ->
      let fused = Fuse.fuse g in
      let matches =
        List.fold_left (fun acc (_, n) -> acc + n) 0 (Fuse.pattern_counts fused)
      in
      Pipeline.bump ~pass:"fuse" "matches" matches;
      (loop, fused))

let stage_schedule ?hint arch =
  Pipeline.v ~name:"schedule"
    ~post:(fun cl -> Verify.check_mapping arch cl.dfg cl.mapping)
    (fun (loop, g) ->
      (* warm-start acceptance always consults the independent verifier,
         regardless of the PICACHU_VERIFY knob: reusing a sibling design
         point's schedule is exactly the step that deserves an outside
         opinion, and the check runs only on the (rare) hint path *)
      let validate m = Finding.errors (Verify.check_mapping arch g m) = [] in
      { source = loop; dfg = g; mapping = Mapper.map_dfg ?hint ~validate arch g })

let compile_with_unroll ?hints (opts : options) uf (k : Kernel.t) =
  let front = Pipeline.(stage_vectorize opts.vector >>> stage_unroll uf) in
  let k = Pipeline.run front k in
  let lookup =
    match hints with
    | None -> fun _ -> None
    | Some h ->
        let digest = Kernel.structural_digest k in
        fun i -> hint_find h (hint_key ~digest ~fuse:opts.fuse ~loop_idx:i)
  in
  let back i =
    Pipeline.(
      stage_extract
      >>> (if opts.fuse then stage_fuse else skip)
      >>> stage_schedule ?hint:(lookup i) opts.arch)
  in
  let loops = List.mapi (fun i l -> Pipeline.run (back i) l) k.Kernel.loops in
  let c =
    {
      kernel = k;
      loops;
      unroll = uf;
      vector = opts.vector;
      arch = opts.arch;
      arch_name = opts.arch.Arch.name;
    }
  in
  (* every successful candidate seeds the store — the auto-tuner's rejected
     unroll factors still warm the sibling design point's same-factor
     compile (the digest keys them apart) *)
  (match hints with
  | Some h ->
      let digest = Kernel.structural_digest k in
      List.iteri
        (fun i (cl : compiled_loop) ->
          hint_store h (hint_key ~digest ~fuse:opts.fuse ~loop_idx:i) cl.mapping)
        loops
  | None -> ());
  c

(* Record a finished compile's schedules for reuse by sibling design points.
   [c.kernel] is the post-transform kernel, so its digest matches what the
   next [compile_with_unroll] computes after its own front end. *)
let harvest_hints hints (opts : options) (c : compiled) =
  let digest = Kernel.structural_digest c.kernel in
  List.iteri
    (fun i (cl : compiled_loop) ->
      hint_store hints
        (hint_key ~digest ~fuse:opts.fuse ~loop_idx:i)
        cl.mapping)
    c.loops

let compile_stats () = Pipeline.stats ()
let reset_stats () = Pipeline.reset ()

let loop_trips (cl : compiled_loop) ~n =
  let per_trip = cl.source.Kernel.step * cl.source.Kernel.vector_width in
  (n + per_trip - 1) / per_trip

let pass_cycles c ~n =
  List.fold_left
    (fun acc cl -> acc + Mapper.loop_cycles cl.mapping ~trips:(loop_trips cl ~n))
    0 c.loops

(* Steady state only: successive channels overlap each loop's prologue. *)
let per_channel_cycles c ~dim =
  List.fold_left
    (fun acc cl -> acc + (loop_trips cl ~n:dim * cl.mapping.Mapper.ii))
    0 c.loops

let compile_runs = Atomic.make 0

let compile_count () = Atomic.get compile_runs

(* Independent re-validation of everything a compile emits, in one sweep.
   [compile_result] no longer calls this — each pipeline pass gates its own
   artifact via a post-condition, so failures name the offending pass — but
   it remains the after-the-fact API for validating a [compiled] you already
   hold (the lint CLI, tests).  Only Error-severity findings are returned;
   advisory Warnings (dead lane placeholders from the division vector split,
   conservative range flags) are not. *)
let verify_compiled (opts : options) (c : compiled) =
  let structural =
    List.concat_map
      (fun cl ->
        Verify.check_loop ~arch:opts.arch ~source:cl.source cl.dfg cl.mapping)
      c.loops
  in
  Finding.errors (Verify.lint_kernel c.kernel @ structural)

let compile_result ?hints (opts : options) (k : Kernel.t) =
  Atomic.incr compile_runs;
  let candidates =
    match opts.unroll_candidates with [] -> [ 1 ] | l -> l
  in
  let best = ref None in
  let failed = ref [] in
  match
    List.iter
      (fun uf ->
        Pipeline.bump ~pass:"unroll" "candidates" 1;
        match compile_with_unroll ?hints opts uf k with
        | compiled -> (
            let cost = pass_cycles compiled ~n:1024 in
            match !best with
            | Some (_, best_cost) when best_cost <= cost -> ()
            | _ -> best := Some (compiled, cost))
        | exception Mapper.Unmappable msg -> failed := (uf, msg) :: !failed)
      candidates
  with
  | () -> (
      match !best with
      | Some (c, _) -> Ok c
      | None ->
          Error
            (Picachu_error.Unmappable
               { kernel = k.Kernel.name; reasons = List.rev !failed }))
  | exception Pipeline.Pass_failed { pass; findings } ->
      Error
        (Picachu_error.Verification_failed
           {
             kernel = k.Kernel.name;
             findings = List.map (fun f -> "after " ^ pass ^ ": " ^ f) findings;
           })

let compile (opts : options) (k : Kernel.t) =
  match compile_result opts k with
  | Ok c -> c
  | Error e -> raise (Picachu_error.Error e)

(* --------------------------------------------- content-addressed cache *)

(* Results are cached by what the pipeline can observe — a digest of the
   canonicalized kernel IR, the architecture's structure and the option
   knobs — so structurally identical kernels share one compile no matter
   what they are called or where they came from (library or user-authored).
   Failures are cached too (negative caching): a kernel known to be
   unmappable on an arch is answered from the table instead of re-running
   the whole II search per request — the fallback tiers of
   [Serving.robust_costs] pay the mapper once, not once per request. *)

let cache : (string, (compiled, Picachu_error.t) result) Hashtbl.t =
  Hashtbl.create 64

let cache_lock = Mutex.create ()
let cache_hits = Atomic.make 0
let cache_misses = Atomic.make 0

type cache_stats = { hits : int; misses : int; entries : int }

let cache_stats () =
  Mutex.protect cache_lock (fun () ->
      {
        hits = Atomic.get cache_hits;
        misses = Atomic.get cache_misses;
        entries = Hashtbl.length cache;
      })

let cache_key (opts : options) (k : Kernel.t) =
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [
            Kernel.structural_digest k;
            Arch.structural_digest opts.arch;
            string_of_bool opts.fuse;
            string_of_int opts.vector;
            String.concat "," (List.map string_of_int opts.unroll_candidates);
          ]))

let cache_clear () = Mutex.protect cache_lock (fun () -> Hashtbl.reset cache)

let memo_result ?hints (opts : options) (k : Kernel.t) =
  let key = cache_key opts k in
  match Mutex.protect cache_lock (fun () -> Hashtbl.find_opt cache key) with
  | Some r ->
      Atomic.incr cache_hits;
      r
  | None ->
      Atomic.incr cache_misses;
      let r = compile_result ?hints opts k in
      (* keep the first insertion so concurrent compilers share one value *)
      Mutex.protect cache_lock (fun () ->
          match Hashtbl.find_opt cache key with
          | Some r' -> r'
          | None ->
              Hashtbl.add cache key r;
              r)

let cached_result (opts : options) variant name =
  match Kernels.by_name variant name with
  | k -> memo_result opts k
  | exception Not_found -> Error (Picachu_error.Unknown_kernel name)

let cached (opts : options) variant name =
  match cached_result opts variant name with
  | Ok c -> c
  | Error e -> raise (Picachu_error.Error e)
