module Kernel = Picachu_ir.Kernel
module Kernels = Picachu_ir.Kernels
module Transform = Picachu_ir.Transform
module Dfg = Picachu_dfg.Dfg
module Fuse = Picachu_dfg.Fuse
module Arch = Picachu_cgra.Arch
module Mapper = Picachu_cgra.Mapper
module Verify = Picachu_verify.Verify
module Finding = Picachu_verify.Finding

type options = {
  arch : Arch.t;
  fuse : bool;
  unroll_candidates : int list;
  vector : int;
}

let picachu_options ?arch ?(vector = 1) () =
  {
    arch = (match arch with Some a -> a | None -> Arch.picachu ());
    fuse = true;
    unroll_candidates = [ 1; 2; 4 ];
    vector;
  }

let baseline_options ?arch () =
  {
    arch = (match arch with Some a -> a | None -> Arch.baseline ());
    fuse = false;
    unroll_candidates = [ 1 ];
    vector = 1;
  }

type compiled_loop = {
  source : Kernel.loop;
  dfg : Dfg.t;
  mapping : Mapper.mapping;
}

type compiled = {
  kernel : Kernel.t;
  loops : compiled_loop list;
  unroll : int;
  vector : int;
  arch : Arch.t;
  arch_name : string;
}

let compile_with_unroll (opts : options) uf (k : Kernel.t) =
  let k = if opts.vector > 1 then Transform.vectorize_kernel opts.vector k else k in
  let k = if uf > 1 then Transform.unroll_kernel uf k else k in
  let loops =
    List.map
      (fun loop ->
        let g = Dfg.of_loop loop in
        let g = if opts.fuse then Fuse.fuse g else g in
        { source = loop; dfg = g; mapping = Mapper.map_dfg opts.arch g })
      k.Kernel.loops
  in
  {
    kernel = k;
    loops;
    unroll = uf;
    vector = opts.vector;
    arch = opts.arch;
    arch_name = opts.arch.Arch.name;
  }

let loop_trips (cl : compiled_loop) ~n =
  let per_trip = cl.source.Kernel.step * cl.source.Kernel.vector_width in
  (n + per_trip - 1) / per_trip

let pass_cycles c ~n =
  List.fold_left
    (fun acc cl -> acc + Mapper.loop_cycles cl.mapping ~trips:(loop_trips cl ~n))
    0 c.loops

(* Steady state only: successive channels overlap each loop's prologue. *)
let per_channel_cycles c ~dim =
  List.fold_left
    (fun acc cl -> acc + (loop_trips cl ~n:dim * cl.mapping.Mapper.ii))
    0 c.loops

let compile_runs = Atomic.make 0

let compile_count () = Atomic.get compile_runs

(* Independent re-validation of everything a compile emits: the (possibly
   unrolled/vectorized) kernel IR, each loop's DFG against its source, and
   each modulo schedule against the architecture.  Only Error-severity
   findings gate; advisory Warnings (dead lane placeholders from the
   division vector split, conservative range flags) do not block. *)
let verify_compiled (opts : options) (c : compiled) =
  let structural =
    List.concat_map
      (fun cl ->
        Verify.check_loop ~arch:opts.arch ~source:cl.source cl.dfg cl.mapping)
      c.loops
  in
  Finding.errors (Verify.lint_kernel c.kernel @ structural)

let gate_result (opts : options) (k : Kernel.t) = function
  | Error _ as e -> e
  | Ok c as ok ->
      if not (Verify.enabled ()) then ok
      else (
        match verify_compiled opts c with
        | [] -> ok
        | errs ->
            Error
              (Picachu_error.Verification_failed
                 {
                   kernel = k.Kernel.name;
                   findings = List.map Finding.to_string errs;
                 }))

let compile_result (opts : options) (k : Kernel.t) =
  Atomic.incr compile_runs;
  let candidates =
    match opts.unroll_candidates with [] -> [ 1 ] | l -> l
  in
  let best = ref None in
  let failed = ref [] in
  List.iter
    (fun uf ->
      match compile_with_unroll opts uf k with
      | compiled -> (
          let cost = pass_cycles compiled ~n:1024 in
          match !best with
          | Some (_, best_cost) when best_cost <= cost -> ()
          | _ -> best := Some (compiled, cost))
      | exception Mapper.Unmappable msg -> failed := (uf, msg) :: !failed)
    candidates;
  let result =
    match !best with
    | Some (c, _) -> Ok c
    | None ->
        Error
          (Picachu_error.Unmappable { kernel = k.Kernel.name; reasons = List.rev !failed })
  in
  gate_result opts k result

let compile (opts : options) (k : Kernel.t) =
  match compile_result opts k with
  | Ok c -> c
  | Error e -> raise (Picachu_error.Error e)

(* Results are cached negatively too: a kernel known to be unmappable on an
   arch is answered from the table instead of re-running the whole II search
   per request — the fallback tiers of [Serving.robust_costs] pay the mapper
   once, not once per request. *)
let cache : (string, (compiled, Picachu_error.t) result) Hashtbl.t = Hashtbl.create 64
let cache_lock = Mutex.create ()

let cached_result (opts : options) variant name =
  let key =
    Printf.sprintf "%s/%b/%d/%s/%s" opts.arch.Arch.name opts.fuse opts.vector
      (match variant with Kernels.Picachu -> "p" | Kernels.Baseline -> "b")
      name
  in
  let lookup () = Mutex.protect cache_lock (fun () -> Hashtbl.find_opt cache key) in
  match lookup () with
  | Some r -> r
  | None ->
      let r =
        match Kernels.by_name variant name with
        | k -> compile_result opts k
        | exception Not_found -> Error (Picachu_error.Unknown_kernel name)
      in
      (* keep the first insertion so concurrent compilers share one value *)
      Mutex.protect cache_lock (fun () ->
          match Hashtbl.find_opt cache key with
          | Some r' -> r'
          | None ->
              Hashtbl.add cache key r;
              r)

let cached (opts : options) variant name =
  match cached_result opts variant name with
  | Ok c -> c
  | Error e -> raise (Picachu_error.Error e)
