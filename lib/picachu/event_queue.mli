(** Deterministic binary-heap event queue.

    The priority is the pair [(time, seq)] where [seq] is the push order:
    events dequeue in nondecreasing time, and two events scheduled for the
    same instant dequeue in the order they were pushed.  Total order, no
    fallback to physical layout — the property that keeps discrete-event
    cluster traces bit-identical across domain-pool sizes and repeat runs.
    Push and pop are O(log n); the heap storage grows geometrically and is
    never shared, so a queue is single-owner mutable state like
    {!Picachu_tensor.Rng}. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> at:float -> 'a -> unit
(** Schedule [v] at absolute time [at].  Raises [Invalid_argument] on a NaN
    time (which would poison the heap order). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event — smallest [(time, seq)]. *)

val peek : 'a t -> (float * 'a) option
(** The event [pop] would return, without removing it. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
