module Arch = Picachu_cgra.Arch
module Cost = Picachu_cgra.Cost
module Workload = Picachu_llm.Workload
module Registry = Picachu_nonlinear.Registry
module Kernel = Picachu_ir.Kernel
module Kernels = Picachu_ir.Kernels
module Systolic = Picachu_systolic.Systolic
module Dma = Picachu_memory.Dma
module Shared_buffer = Picachu_memory.Shared_buffer
module Dataflow = Picachu_memory.Dataflow

type config = {
  arch : Arch.t;
  systolic : Systolic.t;
  dma : Dma.t;
  buffer : Shared_buffer.t;
  vector : int;
  double_buffering : bool;
  nl_parallel : int;
  variant : Kernels.variant;
}

let default_config ?(buffer_kb = 40.0) ?(vector = 1) () =
  {
    arch = Arch.picachu ();
    systolic = Systolic.default;
    dma = Dma.default;
    buffer = Shared_buffer.make ~kb:buffer_kb ();
    vector;
    double_buffering = true;
    nl_parallel = 1;
    variant = Kernels.picachu;
  }

let a100_scale_config () =
  (* match the A100's *peak* tensor throughput (312 TFLOPS ~ 384x384 MACs at
     1 GHz) and give the CGRA farm an HBM-class aggregate DMA bandwidth
     (128 engines x 16 B/cycle = 2 TB/s) — the paper's §5.4 scaling rule *)
  {
    (default_config ()) with
    systolic = Systolic.make 384;
    nl_parallel = 128;
  }

type op_time = {
  ot_tag : string;
  case : Dataflow.case;
  busy_cycles : int;
  exposed_cycles : int;
}

type result = {
  gemm_cycles : int;
  nl : op_time list;
  total_cycles : int;
  energy_uj : float;
  nl_exposed_total : int;
}

let ceil_div a b = (a + b - 1) / b

(* The GEMM whose output stream feeds an EO operation (Case 1 overlap). *)
let producer_tag = function
  | "activation" -> Some "ffn.up"
  | "rope" -> Some "qkv"
  | _ -> None

let find_gemm (w : Workload.t) tag =
  List.find_opt
    (fun (g : Workload.gemm) ->
      g.g_tag = tag || (tag = "ffn.up" && g.g_tag = "ffn.up+gate"))
    w.gemms

let nl_op_time cfg (w : Workload.t) (nl : Workload.nl) =
  let opts =
    match cfg.variant with
    | Kernels.Picachu _ -> Compiler.picachu_options ~arch:cfg.arch ~vector:cfg.vector ()
    | Kernels.Baseline -> Compiler.baseline_options ~arch:cfg.arch ()
  in
  let compiled = Compiler.cached opts cfg.variant (Registry.name nl.op) in
  let per_channel = Compiler.per_channel_cycles compiled ~dim:nl.dim in
  let prologue =
    Compiler.pass_cycles compiled ~n:nl.dim - per_channel
  in
  let reduction = Registry.klass nl.op = Kernel.RE in
  let case = Dataflow.classify cfg.buffer ~reduction ~rows:nl.rows ~dim:nl.dim in
  let rows_per_engine = ceil_div nl.rows cfg.nl_parallel in
  let instance_busy = rows_per_engine * per_channel in
  let instance_exposed =
    match case with
    | Dataflow.Stream_overlap ->
        let producer_cycles =
          match producer_tag nl.nl_tag with
          | Some tag -> (
              match find_gemm w tag with
              | Some g ->
                  (* one producer instance feeds (count/g.count) consumers *)
                  let per_producer =
                    Systolic.gemm_cycles cfg.systolic ~m:g.m ~k:g.k ~n:g.n
                  in
                  per_producer * g.count / Stdlib.max 1 nl.nl_count
              | None -> 0)
          | None -> 0
        in
        Dataflow.case1_cycles ~producer_cycles ~cgra_cycles:instance_busy
          ~prologue
        - producer_cycles (* the producer's own time is already in gemm_cycles *)
    | Dataflow.Channel_dma ->
        let f =
          if cfg.double_buffering then Dataflow.case2_cycles
          else Dataflow.case2_cycles_single_buffered
        in
        f cfg.dma cfg.buffer ~rows:rows_per_engine ~dim:nl.dim ~element_bytes:2
          ~compute_per_channel:per_channel ~writeback:true
    | Dataflow.Buffer_resident ->
        (* softmax scores stream in from the systolic array; norm inputs are
           the DRAM-resident residual stream *)
        let input_on_chip = nl.nl_tag = "softmax" in
        Dataflow.case3_cycles cfg.dma ~rows:rows_per_engine ~dim:nl.dim
          ~element_bytes:2 ~compute_per_channel:per_channel ~input_on_chip
  in
  {
    ot_tag = nl.nl_tag;
    case;
    busy_cycles = nl.nl_count * instance_busy;
    exposed_cycles = nl.nl_count * Stdlib.max 0 instance_exposed;
  }

let run cfg (w : Workload.t) =
  let gemm_cycles =
    List.fold_left
      (fun acc (g : Workload.gemm) ->
        acc + (g.count * Systolic.gemm_cycles cfg.systolic ~m:g.m ~k:g.k ~n:g.n))
      0 w.gemms
  in
  let nl = List.map (nl_op_time cfg w) w.nls in
  let nl_exposed_total = List.fold_left (fun acc o -> acc + o.exposed_cycles) 0 nl in
  let total_cycles = gemm_cycles + nl_exposed_total in
  let breakdown =
    Cost.picachu_breakdown ~systolic_dim:cfg.systolic.Systolic.dim
      ~shared_buffer_kb:
        (float_of_int cfg.buffer.Shared_buffer.capacity_bytes /. 1024.0)
      cfg.arch
  in
  let busy_total = List.fold_left (fun acc o -> acc + o.busy_cycles) 0 nl in
  let energy_uj =
    1e-6
    *. ((breakdown.Cost.macs.Cost.power_mw *. float_of_int gemm_cycles)
        +. (breakdown.Cost.cgra.Cost.power_mw *. float_of_int cfg.nl_parallel
            *. float_of_int (busy_total / Stdlib.max 1 cfg.nl_parallel))
        +. ((breakdown.Cost.sram.Cost.power_mw +. breakdown.Cost.others.Cost.power_mw)
            *. float_of_int total_cycles))
  in
  { gemm_cycles; nl; total_cycles; energy_uj; nl_exposed_total }

let seconds cfg r =
  float_of_int r.total_cycles /. (cfg.systolic.Systolic.freq_ghz *. 1e9)

let nonlinear_fraction r =
  if r.total_cycles = 0 then 0.0
  else float_of_int r.nl_exposed_total /. float_of_int r.total_cycles
