(** Fault-tolerant multi-replica cluster serving.

    {!Scheduler} simulates one replica; production traffic runs N of them
    behind a router, and replicas crash, hang, and slow down.  This module
    hosts N copies of the Scheduler's continuous-batching step model inside
    a deterministic discrete-event core ({!Event_queue}: binary heap,
    O(log n) per event, stable (time, seq) tie-breaking), adds a seeded
    replica-level failure model (crash / hang-straggler / transient
    slowdown with MTTF/MTTR renewal), and defends at the front end with
    per-request timeouts, bounded retries with exponential backoff and
    jitter, optional hedged requests after a p95-derived delay, per-replica
    circuit breakers (closed / open / half-open with probe admission), and
    health-check-driven ejection.  A crashed replica's in-flight and queued
    requests are re-queued on survivors ({!Picachu_error.Replica_crashed}
    is transient, so re-queuing is not charged against the retry budget);
    a timed-out attempt is retried within a bounded budget
    ({!Picachu_error.Deadline_exceeded}) — the typed taxonomy, not strings,
    drives the policy.

    {2 Fidelity and determinism}

    A 1-replica, zero-fault, defense-free cluster replays
    {!Scheduler.run}'s trace bit-identically (the PR 5 golden-trace MD5
    holds over [Cluster.run]'s completions).  Every stream is seeded and
    all arithmetic is sequential, so traces are bit-identical across
    [PICACHU_DOMAINS] pool sizes and repeat runs at every fault profile. *)

module Mz = Picachu_llm.Model_zoo

(** {2 Routing} *)

type router = Round_robin | Least_loaded | Power_of_two

val router_name : router -> string
(** ["round-robin"] / ["least-loaded"] / ["p2c"] — also the CLI spelling. *)

val router_of_string : string -> router option

(** {2 Failure model} *)

type fault_profile = {
  fp_seed : int;
  mttf_s : float;  (** mean time between failures; [infinity] disables *)
  mttr_s : float;  (** mean outage duration *)
  p_crash : float;  (** mode weights, normalized over the three *)
  p_hang : float;
  p_slow : float;
  hang_factor : float;  (** step-duration multiplier while hung *)
  slow_factor : float;  (** step-duration multiplier while slowed *)
}

val profile_none : fault_profile

val profile_crash : ?seed:int -> mttf:float -> mttr:float -> unit -> fault_profile
val profile_straggler : ?seed:int -> mttf:float -> mttr:float -> unit -> fault_profile
val profile_mixed : ?seed:int -> mttf:float -> mttr:float -> unit -> fault_profile
(** Crash-only / hang-only / 50-30-20 crash-hang-slow mixes. *)

val profile_active : fault_profile -> bool

val profile_of_string :
  ?seed:int -> ?mttf:float -> ?mttr:float -> string -> fault_profile option
(** ["none"], ["crash"], ["straggler"], ["mixed"] — the CLI spellings. *)

(** {2 Front-end defenses} *)

type defenses = {
  timeout_s : float;  (** per-attempt deadline; [infinity] disables *)
  max_retries : int;  (** deadline-driven retries per request *)
  backoff_s : float;  (** base redispatch backoff, doubling per wait *)
  backoff_jitter : float;  (** jitter fraction on the backoff, seeded *)
  requeue_on_crash : bool;  (** re-queue a crashed replica's requests *)
  hedge : bool;  (** duplicate slow requests after a p95-derived delay *)
  hedge_min_samples : int;  (** completions needed before hedging arms *)
  breaker : bool;  (** per-replica circuit breakers *)
  breaker_threshold : int;  (** consecutive failures to trip *)
  breaker_cooldown_s : float;  (** open -> half-open delay *)
  health_interval_s : float;  (** recovered-replica re-admission cadence *)
}

val no_defenses : defenses
(** Everything off — crashes lose their requests.  The chaos baseline. *)

val default_defenses : defenses

(** {2 Configuration} *)

type config = {
  replicas : int;
  router : router;
  slots : int;  (** continuous-batching slots per replica *)
  queue_capacity : int;  (** admission-queue bound per replica *)
  seed : int;  (** front-end stream: p2c choices, backoff jitter *)
  profile : fault_profile;
  defenses : defenses;
}

val default_config :
  ?replicas:int ->
  ?router:router ->
  ?slots:int ->
  ?queue_capacity:int ->
  ?seed:int ->
  ?profile:fault_profile ->
  ?defenses:defenses ->
  unit ->
  config
(** 2 replicas, round-robin, 8 slots, queue 64, seed 1, no faults,
    {!default_defenses}. *)

(** {2 Results} *)

type counters = {
  crashes : int;
  hangs : int;
  slowdowns : int;
  requeued : int;  (** crash-displaced dispatches (not charged to retries) *)
  retries : int;  (** deadline-driven re-dispatches *)
  timeouts : int;  (** attempts that outlived the per-request deadline *)
  hedges : int;  (** duplicate attempts launched *)
  hedge_wins : int;  (** hedged attempts that answered first *)
  breaker_trips : int;  (** closed/half-open -> open transitions *)
  probes : int;  (** half-open probe admissions *)
  dispatches : int;  (** every enqueue onto a replica, all causes *)
}

type report = {
  completions : Scheduler.completion list;  (** in completion order *)
  arrivals : int;
  answered : int;
  dropped : int;  (** rejected by a full admission queue *)
  failed : int;  (** timed out / lost after the retry budget *)
  availability : float;  (** answered / (arrivals - dropped); 1.0 vacuously *)
  amplification : float;  (** dispatches / (arrivals - dropped) *)
  makespan_s : float;
  goodput_tps : float;  (** completed tokens per second over the makespan *)
  ttft : Scheduler.pct;
  latency : Scheduler.pct;
  tiers : (Serving.tier * int) list;
  served_per_replica : int array;
  counters : counters;
}

val accounting_ok : report -> bool
(** The availability identity: answered + dropped + failed = arrivals.
    Holds for every scenario — asserted by the chaos CI smoke. *)

val run : config -> cost:Scheduler.cost_source -> Scheduler.arrival list -> report
(** Simulate a trace through the cluster.  Raises [Invalid_argument] on
    non-positive knobs or a malformed request; never raises on overload —
    shed and lost load is reported, not thrown. *)

val serve :
  ?budget:int ->
  ?gpu:Picachu_llm.Gpu_model.t ->
  config ->
  Simulator.config ->
  Mz.t ->
  Scheduler.trace_spec ->
  report
(** [run] over [Scheduler.trace spec] with {!Scheduler.robust_source}
    costs — the end-to-end entry the CLI and benchmarks use. *)
