(** Deterministic discrete-event multi-request serving simulator.

    {!Serving} answers one request at a time; production traffic is many
    requests contending for the same accelerator.  This module simulates a
    seeded Poisson arrival stream of requests through an admission queue
    and a batching policy, charging each simulated decode step with the
    {!Serving} phase-cost machinery (whose kernel compiles are memoized in
    the content-addressed compile cache), and reports per-request TTFT and
    TPOT plus fleet-level throughput and p50/p95/p99 tail latency.

    {2 The step model}

    Batches execute in lockstep: one decode step emits one token for every
    active request, and the slowest active member gates the step.  Under
    {!policy.Continuous}, decode slots refill at every step boundary as
    requests complete, and an admitted request's prefill overlaps the step
    it joins.  Under [Static b], a batch of [b] requests is formed (waiting
    for arrivals if needed), prefilled together, and decoded until {e every}
    member finishes before the next batch forms — the classic static-batch
    TTFT penalty the continuous policy exists to remove.

    {2 Determinism}

    The arrival stream is a pure function of the seed, and the simulation is
    sequential float arithmetic over costs that are themselves bit-identical
    across domain-pool sizes — a trace replays exactly for any
    [PICACHU_DOMAINS] and for repeated runs with the same seed. *)

module Mz = Picachu_llm.Model_zoo

type policy =
  | Static of int  (** fixed batch of the given size, run to completion *)
  | Continuous  (** slots refill per step; prefills join the running batch *)

val policy_name : policy -> string
(** ["static=4"] / ["continuous"] — also the CLI spelling. *)

(** {2 Arrival streams} *)

type trace_spec = {
  rps : float;  (** mean arrival rate (Poisson) *)
  requests : int;  (** total requests in the trace *)
  prompt_buckets : int array;  (** prompt lengths, sampled uniformly *)
  generate_buckets : int array;  (** generation lengths, sampled uniformly *)
  seed : int;
}

val default_trace : ?seed:int -> rps:float -> requests:int -> unit -> trace_spec
(** Prompt buckets {64, 128, 256, 512}, generate buckets {16, 32, 64},
    seed 1. *)

type arrival = { id : int; at : float; request : Serving.request }

val trace : trace_spec -> arrival list
(** The seeded stream, in arrival order: exponential inter-arrival times at
    rate [rps], prompt/generate drawn uniformly from the buckets.  Raises
    [Invalid_argument] on a non-positive rate, request count, or bucket. *)

(** {2 Cost sources} *)

type cost_source = Serving.request -> Serving.phase_costs * Serving.tier
(** What one request costs and which serving tier answered it. *)

val robust_source :
  ?budget:int ->
  ?gpu:Picachu_llm.Gpu_model.t ->
  Simulator.config ->
  Mz.t ->
  cost_source
(** {!Serving.robust_costs} as a cost source — degraded tiers show up in the
    latency distribution — memoized per distinct (prompt, generate) bucket
    (the underlying kernel compiles are already shared through the
    content-addressed compile cache). *)

(** {2 Results} *)

type completion = {
  c_id : int;
  c_request : Serving.request;
  c_arrival_s : float;  (** absolute arrival time *)
  c_ttft_s : float;  (** first token minus arrival: queueing + prefill *)
  c_latency_s : float;  (** completion minus arrival *)
  c_tpot_s : float;  (** mean seconds per generated token after the first *)
  c_tier : Serving.tier;
}

type pct = { p50 : float; p95 : float; p99 : float }

val percentiles : (completion -> float) -> completion list -> pct
(** p50/p95/p99 of a per-completion metric ({!Picachu_tensor.Stats.percentile}
    with monomorphic [Float.compare]); all-zero on an empty list. *)

val tier_tally : completion list -> (Serving.tier * int) list
(** Completions per serving tier, omitting tiers that served nothing. *)

type fleet = {
  completions : completion list;  (** in completion order *)
  dropped : int;  (** arrivals rejected by a full admission queue *)
  makespan_s : float;  (** last completion time *)
  throughput_tps : float;  (** generated tokens per second over the makespan *)
  ttft : pct;  (** TTFT percentiles, seconds *)
  latency : pct;  (** end-to-end latency percentiles, seconds *)
  tiers : (Serving.tier * int) list;  (** completions per serving tier *)
}

val run :
  ?slots:int ->
  ?queue_capacity:int ->
  policy:policy ->
  cost:cost_source ->
  arrival list ->
  fleet
(** Simulate a trace.  [slots] (default 8) bounds the continuous decode
    batch; [queue_capacity] (default 64) bounds the admission queue —
    arrivals beyond it are dropped and counted.  A trace with no
    completions (empty, or overload dropping everything) returns a
    well-formed fleet with zero completions, zero percentiles, and the true
    [dropped] count.  Raises [Invalid_argument] only on non-positive knobs
    or a malformed request. *)

val serve :
  ?slots:int ->
  ?queue_capacity:int ->
  ?budget:int ->
  ?gpu:Picachu_llm.Gpu_model.t ->
  policy:policy ->
  Simulator.config ->
  Mz.t ->
  trace_spec ->
  fleet
(** [run] over [trace spec] with {!robust_source} costs — the end-to-end
    entry the CLI and benchmarks use. *)
