(** One reproduction entry per table and figure of the paper's evaluation
    (§5), plus the design ablations DESIGN.md calls out.

    Every [figN]/[tabN] function is pure data (deterministic given the fixed
    seeds baked in); [print_all] / [print] render them as the tables
    EXPERIMENTS.md records.  Paper-vs-measured commentary lives in
    EXPERIMENTS.md. *)

module Cost = Picachu_cgra.Cost

(* -- Figure 1: runtime breakdown on the A100 ------------------------------ *)

type fig1_row = {
  f1_model : string;
  f1_gemm_s : float;
  f1_softmax_s : float;
  f1_norm_s : float;
  f1_act_s : float;
  f1_rope_s : float;
  f1_nl_frac : float;
}

val fig1a : unit -> fig1_row list
(** GPT2-XL, OPT-6.7B, BigBird, LLaMA2-13B at sequence length 1024. *)

val fig1b : unit -> (int * float) list
(** LLaMA2-7B nonlinear fraction across sequence lengths 128..2048. *)

(* -- Tables 2/5: perplexity ------------------------------------------------ *)

val tab2 : unit -> (string * (string * float) list) list
(** Per LLaMA-family surrogate: (backend, PPL) including FP16, I-BERT and
    gemmlowp. *)

val tab5 : unit -> (string * float * float * float) list
(** Per surrogate model: (FP16 PPL, delta ours-FP16, delta ours-INT16). *)

(* -- Table 3 (supplementary): operator accuracy ---------------------------- *)

val tab3 : unit -> (string * float * float) list
(** Per basic operator: worst relative error of the FP and INT datapaths
    over the operator's LLM-relevant input range. *)

(* -- Table 4: DFG patterns ------------------------------------------------- *)

val tab4 : unit -> (string * int * float) list
(** Per fused pattern: total occurrences across all kernel loops and the
    fraction of kernels containing it. *)

(* -- Table 6: zero-shot tasks ---------------------------------------------- *)

val tab6 : unit -> (string * (string * float * float * float) list) list
(** Per surrogate model, per task: (FP16 accuracy, delta ours-FP16, delta
    ours-INT16). *)

(* -- Table 7: area/power --------------------------------------------------- *)

val tab7 : unit -> Cost.breakdown
val tab7_fu_overheads : unit -> (string * float * float) list

(* -- Figure 3: survey scatter (static literature data) --------------------- *)

val fig3 : unit -> (string * string * float * float) list
(** (design, class, throughput GOPS, power mW) — reproduced as the static
    table behind the paper's survey scatter plot. *)

(* -- Figure 7: CGRA microbenchmarks ---------------------------------------- *)

type fig7a_row = {
  f7_loop : string;
  f7_base_cycles : int;
  f7_pic_cycles : int;
  f7_uf : int;
  f7_speedup : float;
}

val fig7a : unit -> fig7a_row list
(** Per kernel loop at a 1024-element pass: homogeneous baseline vs PICACHU
    (fusion + special FUs + tuned unrolling). *)

val fig7a_summary : fig7a_row list -> float * float
(** (geomean speedup, max speedup). *)

val fig7b : unit -> (string * (string * float) list) list
(** Per kernel: throughput on 3x3/4x4/5x5/4x8 and the split-4x8 mode,
    normalized to 3x3. *)

val fig7c : unit -> (string * (float * float) list) list
(** Per model (GPT2-XL, LLaMA2-7B): (buffer KB, speedup normalized to an
    effectively unlimited buffer). *)

val fig7d : unit -> (string * float) list
(** Per vectorizable kernel: INT16 4-lane speedup over the scalar FP path
    (below the theoretical 4x, §5.3.3). *)

(* -- Figures 8/9: end-to-end ----------------------------------------------- *)

val fig8a : unit -> (string * float * float) list
(** Per model: (Gemmini speedup vs CPU config, PICACHU speedup vs CPU). *)

val fig8b : unit -> (string * float * float) list
(** Per model (BigBird standing in for BERT, GPT2-XL): (Tandem speedup vs
    A100, PICACHU speedup vs A100), at the A100-throughput-matched scale. *)

val onesa : unit -> (string * float * float * float) list
(** Figure 8a extended with the ONE-SA baseline — per model: (Gemmini,
    ONE-SA, PICACHU) speedups over the CPU-offload configuration.  Opt-in
    ([experiments onesa]); the default transcript predates the baseline. *)

val fig9a : unit -> (string * float * float) list
(** Per OPT/LLaMA model: (PICACHU speedup vs A100, energy reduction). *)

val fig9b : unit -> (string * float * float) list
(** Per LLaMA model: nonlinear latency share on the A100 vs on PICACHU. *)

(* -- Supplementary ----------------------------------------------------------- *)

val supp_noc : unit -> (string * int * Picachu_cgra.Noc.report * Picachu_cgra.Rf.report) list
(** Per compiled kernel loop: (label, II, link-contention report,
    register-pressure report) — the audit of the mapper's routing and
    register-file abstractions. *)

val supp_models : unit -> (string * float * float * float) list
(** The Table 5 protocol applied to Mistral (GQA) and Falcon (MQA)
    surrogates — "upcoming" model families relative to the paper. *)

val supp_mapper :
  unit ->
  (string * int * int * int * Picachu_cgra.Mapper_exact.verdict) list
(** Mapper-quality audit: per Table 1 loop, (label, fused nodes, II lower
    bound, heuristic II, bounded-exhaustive probe verdict). *)

val supp_energy : unit -> (string * float * float) list
(** Per nonlinear operation: (name, CGRA pJ/element on the INT16 path,
    A100 pJ/element at 300W). *)

val supp_serving : unit -> (string * Serving.summary * Serving.summary) list
(** Request-level serving view: per model, (A100 summary, PICACHU summary)
    for a 1024-prompt/256-generate request. *)

val supp_outliers : unit -> (float * float * float * float) list
(** Outlier-magnitude sweep: (scale, FP16 PPL, ours-INT16 PPL, I-BERT PPL)
    — locates the collapse threshold of the static INT8 grid. *)

val supp_attrib : unit -> (string * float) list
(** Per-operator damage attribution: PPL with I-BERT substituted into one
    operator family at a time (FP16 elsewhere). *)

val supp_quant : unit -> (string * float) list
(** PPL of the composition {FP, W8} linear x {FP16, ours-INT16} nonlinear
    on the LLaMA-style surrogate — the paper's deployment setting. *)

val supp_decode : unit -> (string * float * float) list
(** One decode step at context 1024 (not a paper figure): per model, the
    A100's nonlinear share in the GEMV-bound regime and PICACHU's speedup at
    the matched scale. *)

(* -- Supplementary: resilience ---------------------------------------------- *)

val resilience_campaign : unit -> (float * Resilience.stats) list
(** DMR + bounded-re-execution fault campaign over the kernel roster at
    uniform per-site fault rates 0 .. 1e-2 (seed 1234).  The zero-rate
    row pins determinism: no injections, every trial Clean.  Trials run on
    the shared domain pool; results are independent of the pool size. *)

val resilience_serving : unit -> (string * float * (string * int) list) list
(** Serving under forced tier failures: per scenario, (availability,
    requests answered per tier).  Availability is 1.0 in every scenario —
    the roofline tier is analytic and cannot fail. *)

(* -- Supplementary: precision --------------------------------------------- *)

val supp_precision :
  unit -> (string * Picachu_numerics.Numfmt.t * float * bool * float) list
(** Accuracy vs cost of proven-bound format selection: per roster kernel,
    (chosen format, proven worst-case output error, fallback?, surrogate
    PPL delta of exact operator mathematics behind that format's I/O
    grid, per-tensor dynamically scaled like the ours-INT16 backend).
    Budget 1e-2. *)

(* -- Ablations -------------------------------------------------------------- *)

val ablation_fusion : unit -> (string * float) list
(** Per kernel: speedup of fusion on vs off (same arch, tuned UF). *)

val ablation_fp2fx : unit -> (string * float) list
(** Per exp-heavy kernel: speedup of the FP2FX/LUT special units vs the
    primitive-only expansion on the same heterogeneous fabric. *)

val ablation_hetero : unit -> (string * float * float) list
(** Per kernel: (universal-tile speedup over heterogeneous, universal area
    premium) — what the BaT/BrT/CoT split trades. *)

val ablation_dbuf : unit -> (string * float) list
(** Per model: slowdown with double buffering disabled. *)

val ablation_online_softmax : unit -> (string * float) list
(** Per model: relative softmax-stage speed of the FlashAttention-style
    online kernel (reduce overlapped with the scores GEMM, one fewer data
    pass) vs the three-loop form. Values below 1 — the measured outcome —
    show that on the compute-bound CGRA the doubled exponentials are not
    repaid; the online form's value is enabling Case 3 residency
    (§4.2.4), not kernel speed. *)

val ablation_order : unit -> (int * float * int) list
(** Per Taylor order: (order, worst exp relative error, exp-kernel DFG
    size) — the user-defined precision trade-off (§3.2.3). *)

(* -- Drivers ---------------------------------------------------------------- *)

val print : string -> unit
(** Print one experiment by id ("fig1", "tab2", ..., "ablations",
    "resilience", "pipeline", "precision"). Raises [Invalid_argument] on
    unknown ids. *)

val ids : string list

val print_all : unit -> unit
(** Every paper reproduction entry.  Opt-in extras ("resilience",
    "pipeline" — the latter has nondeterministic wall times) are only
    reachable through {!print} so this transcript stays stable. *)
