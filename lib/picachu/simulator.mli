(** End-to-end PICACHU simulator: systolic array + plug-in CGRA + Shared
    Buffer data flows (paper §4.2.4, Figures 5/9).

    For each nonlinear-operation instance the simulator compiles the kernel
    (memoized), classifies the data-flow case, and charges:

    - Case 1 (EO): overlapped with the producing GEMM — only the excess of
      CGRA time over producer time is exposed;
    - Case 2 (RE, working set exceeds the buffer): channel-at-a-time DMA,
      double-buffered;
    - Case 3 (RE, resident): bulk load (skipped when the producer left the
      data on chip), in-place processing, bulk store.

    Energy integrates component powers over their active cycles. *)

module Arch = Picachu_cgra.Arch
module Workload = Picachu_llm.Workload
module Dataflow = Picachu_memory.Dataflow

type config = {
  arch : Arch.t;
  systolic : Picachu_systolic.Systolic.t;
  dma : Picachu_memory.Dma.t;
  buffer : Picachu_memory.Shared_buffer.t;
  vector : int;  (** 1 = FP16 path, 4 = INT16 4-lane path *)
  double_buffering : bool;  (** ablation knob (§4.2.3) *)
  nl_parallel : int;  (** CGRA instance count (A100-scale configs) *)
  variant : Picachu_ir.Kernels.variant;
      (** which kernel library + compile options feed the CGRA: [Picachu]
          (fused, special FUs, tuned unrolling — the default) or [Baseline]
          (primitive-only kernels, no fusion) — the degraded serving tier *)
}

val default_config : ?buffer_kb:float -> ?vector:int -> unit -> config
(** 4x4 CGRA + 32x32 systolic + 40KB buffer. *)

val a100_scale_config : unit -> config
(** The §5.4 fair-comparison configuration: systolic array scaled to the
    A100's peak tensor throughput (384x384-equivalent) and 128 CGRA
    instances sharing HBM-class DMA bandwidth. *)

type op_time = {
  ot_tag : string;
  case : Dataflow.case;
  busy_cycles : int;  (** CGRA-active cycles for all instances *)
  exposed_cycles : int;  (** cycles added to the critical path *)
}

type result = {
  gemm_cycles : int;
  nl : op_time list;
  total_cycles : int;
  energy_uj : float;
  nl_exposed_total : int;
}

val nl_op_time : config -> Workload.t -> Workload.nl -> op_time
(** Timing of all instances of one nonlinear entry (used by the timeline
    renderer as well as {!run}). *)

val run : config -> Workload.t -> result
val seconds : config -> result -> float
val nonlinear_fraction : result -> float
