(* Deterministic discrete-event multi-request serving simulator.

   Time advances in decode-step quanta: the engine executes one token for
   every active request per step, and the slowest active member gates the
   step (lockstep batching).  Under [Continuous], decode slots refill at
   every step boundary as requests complete, and a newly admitted request's
   prefill overlaps the step it joins (chunked-prefill abstracted to one
   quantum); under [Static b], a batch of [b] requests is formed, prefilled
   together, and decoded to completion before the next batch starts.

   Everything is sequential float arithmetic over costs that are themselves
   bit-identical across domain-pool sizes, so a trace replays exactly for
   any [PICACHU_DOMAINS]. *)

module Rng = Picachu_tensor.Rng
module Stats = Picachu_tensor.Stats
module Mz = Picachu_llm.Model_zoo

type policy = Static of int | Continuous

let policy_name = function
  | Static b -> Printf.sprintf "static=%d" b
  | Continuous -> "continuous"

(* ------------------------------------------------------- arrival streams *)

type trace_spec = {
  rps : float;
  requests : int;
  prompt_buckets : int array;
  generate_buckets : int array;
  seed : int;
}

let default_trace ?(seed = 1) ~rps ~requests () =
  {
    rps;
    requests;
    prompt_buckets = [| 64; 128; 256; 512 |];
    generate_buckets = [| 16; 32; 64 |];
    seed;
  }

type arrival = { id : int; at : float; request : Serving.request }

let trace spec =
  if spec.rps <= 0.0 then invalid_arg "Scheduler.trace: rps must be positive";
  if spec.requests < 1 then invalid_arg "Scheduler.trace: requests must be positive";
  if Array.length spec.prompt_buckets = 0 || Array.length spec.generate_buckets = 0
  then invalid_arg "Scheduler.trace: empty bucket set";
  Array.iter
    (fun b -> if b < 1 then invalid_arg "Scheduler.trace: non-positive bucket")
    spec.prompt_buckets;
  Array.iter
    (fun b -> if b < 1 then invalid_arg "Scheduler.trace: non-positive bucket")
    spec.generate_buckets;
  let rng = Rng.create spec.seed in
  let t = ref 0.0 in
  List.init spec.requests (fun id ->
      (* Poisson arrivals: exponential inter-arrival times at rate rps *)
      t := !t +. (-.log (1.0 -. Rng.float rng) /. spec.rps);
      let pick a = a.(Rng.int rng (Array.length a)) in
      {
        id;
        at = !t;
        request =
          { Serving.prompt = pick spec.prompt_buckets; generate = pick spec.generate_buckets };
      })

(* ---------------------------------------------------------- cost sources *)

type cost_source = Serving.request -> Serving.phase_costs * Serving.tier

let robust_source ?budget ?gpu cfg m : cost_source =
  (* the trace draws prompt/generate from buckets, so requests repeat; one
     tier-ladder evaluation per distinct (prompt, generate) — and the kernel
     compiles underneath are shared across buckets anyway through the
     content-addressed compile cache *)
  let memo = Hashtbl.create 16 in
  fun (r : Serving.request) ->
    let key = (r.Serving.prompt, r.Serving.generate) in
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
        let rb = Serving.robust_costs ?budget ?gpu cfg m r in
        let v = (rb.Serving.r_costs, rb.Serving.served_by) in
        Hashtbl.add memo key v;
        v

(* -------------------------------------------------------------- metrics *)

type completion = {
  c_id : int;
  c_request : Serving.request;
  c_arrival_s : float;
  c_ttft_s : float;
  c_latency_s : float;
  c_tpot_s : float;
  c_tier : Serving.tier;
}

type pct = { p50 : float; p95 : float; p99 : float }

let zero_pct = { p50 = 0.0; p95 = 0.0; p99 = 0.0 }

let percentiles f completions =
  match completions with
  | [] -> zero_pct
  | _ ->
      let xs = Array.of_list (List.map f completions) in
      {
        p50 = Stats.percentile xs 50.0;
        p95 = Stats.percentile xs 95.0;
        p99 = Stats.percentile xs 99.0;
      }

let tier_tally completions =
  List.filter_map
    (fun t ->
      match List.length (List.filter (fun c -> c.c_tier = t) completions) with
      | 0 -> None
      | k -> Some (t, k))
    [ Serving.Fused; Serving.Baseline_cgra; Serving.Roofline ]

type fleet = {
  completions : completion list;
  dropped : int;
  makespan_s : float;
  throughput_tps : float;
  ttft : pct;
  latency : pct;
  tiers : (Serving.tier * int) list;
}

(* -------------------------------------------------------------- the sim *)

type live = {
  l_arr : arrival;
  l_costs : Serving.phase_costs;
  l_tier : Serving.tier;
  mutable l_done : int;  (* decode tokens emitted *)
  mutable l_ttft : float;  (* absolute first-token time *)
}

let run ?(slots = 8) ?(queue_capacity = 64) ~policy ~(cost : cost_source) arrivals =
  if slots < 1 then invalid_arg "Scheduler.run: slots must be positive";
  if queue_capacity < 1 then invalid_arg "Scheduler.run: queue_capacity must be positive";
  (match policy with
  | Static b when b < 1 -> invalid_arg "Scheduler.run: batch size must be positive"
  | _ -> ());
  let arrivals =
    Array.of_list
      (List.sort
         (fun a b ->
           match Float.compare a.at b.at with 0 -> Int.compare a.id b.id | c -> c)
         arrivals)
  in
  Array.iter
    (fun a ->
      if a.request.Serving.prompt < 1 || a.request.Serving.generate < 1 then
        invalid_arg "Scheduler.run: request")
    arrivals;
  let n = Array.length arrivals in
  let next = ref 0 in
  let queue = Queue.create () in
  let dropped = ref 0 in
  let admit_until t =
    (* arrivals up to [t] enter the admission queue; a full queue drops *)
    while !next < n && arrivals.(!next).at <= t do
      if Queue.length queue >= queue_capacity then incr dropped
      else Queue.add arrivals.(!next) queue;
      incr next
    done
  in
  let pop_queue k =
    let rec go k acc =
      if k = 0 || Queue.is_empty queue then List.rev acc
      else go (k - 1) (Queue.pop queue :: acc)
    in
    go k []
  in
  let admit a =
    let costs, tier = cost a.request in
    { l_arr = a; l_costs = costs; l_tier = tier; l_done = 0; l_ttft = Float.nan }
  in
  let completions = ref [] in
  let complete (l : live) t =
    let gen = l.l_arr.request.Serving.generate in
    completions :=
      {
        c_id = l.l_arr.id;
        c_request = l.l_arr.request;
        c_arrival_s = l.l_arr.at;
        c_ttft_s = l.l_ttft -. l.l_arr.at;
        c_latency_s = t -. l.l_arr.at;
        c_tpot_s = (t -. l.l_ttft) /. float_of_int gen;
        c_tier = l.l_tier;
      }
      :: !completions
  in
  let step_cost actives =
    List.fold_left
      (fun acc l ->
        Float.max acc
          (Serving.decode_cost l.l_costs (l.l_arr.request.Serving.prompt + l.l_done)))
      0.0 actives
  in
  let now = ref 0.0 in
  (match policy with
  | Continuous ->
      let live = ref [] in
      let running = ref true in
      while !running do
        admit_until !now;
        (* slots freed by completions refill here, at the step boundary *)
        let joiners = List.map admit (pop_queue (slots - List.length !live)) in
        if !live = [] && joiners = [] then
          if !next < n then now := Float.max !now arrivals.(!next).at
          else running := false
        else begin
          (* a joiner's prefill overlaps the step it joins; whichever of the
             continuing decodes and the joining prefills is slowest gates it *)
          let dur =
            List.fold_left
              (fun acc j -> Float.max acc j.l_costs.Serving.prefill_s)
              (step_cost !live) joiners
          in
          now := !now +. dur;
          List.iter (fun l -> l.l_done <- l.l_done + 1) !live;
          let finished, continuing =
            List.partition
              (fun l -> l.l_done >= l.l_arr.request.Serving.generate)
              !live
          in
          List.iter (fun l -> complete l !now) finished;
          List.iter (fun j -> j.l_ttft <- !now) joiners;
          live := continuing @ joiners
        end
      done
  | Static b ->
      let running = ref true in
      while !running do
        admit_until !now;
        if Queue.length queue >= b || (!next >= n && not (Queue.is_empty queue))
        then begin
          let batch = List.map admit (pop_queue b) in
          (* batched prefill: the batch's first tokens appear together *)
          let pf =
            List.fold_left
              (fun acc l -> Float.max acc l.l_costs.Serving.prefill_s)
              0.0 batch
          in
          now := !now +. pf;
          admit_until !now;
          List.iter (fun l -> l.l_ttft <- !now) batch;
          (* lockstep decode until every member finishes: finished members
             release no slot — the next batch forms only when this one ends *)
          let active = ref batch in
          while !active <> [] do
            now := !now +. step_cost !active;
            admit_until !now;
            List.iter (fun l -> l.l_done <- l.l_done + 1) !active;
            let finished, continuing =
              List.partition
                (fun l -> l.l_done >= l.l_arr.request.Serving.generate)
                !active
            in
            List.iter (fun l -> complete l !now) finished;
            active := continuing
          done
        end
        else if !next >= n then running := false
        else now := Float.max !now arrivals.(!next).at
      done);
  let completions = List.rev !completions in
  (* zero completions — an empty trace, or overload dropping everything — is
     a scenario to report, not an exception: the caller still needs the true
     drop count to see the shed load *)
  let makespan =
    List.fold_left (fun acc c -> Float.max acc (c.c_arrival_s +. c.c_latency_s)) 0.0
      completions
  in
  let tokens =
    List.fold_left (fun acc c -> acc + c.c_request.Serving.generate) 0 completions
  in
  {
    completions;
    dropped = !dropped;
    makespan_s = makespan;
    throughput_tps =
      (if completions = [] then 0.0 else float_of_int tokens /. makespan);
    ttft = percentiles (fun c -> c.c_ttft_s) completions;
    latency = percentiles (fun c -> c.c_latency_s) completions;
    tiers = tier_tally completions;
  }

let serve ?slots ?queue_capacity ?budget ?gpu ~policy cfg m spec =
  run ?slots ?queue_capacity ~policy
    ~cost:(robust_source ?budget ?gpu cfg m)
    (trace spec)
