(* Fault-tolerant multi-replica cluster serving, as a deterministic
   discrete-event simulation.

   N replicas each run the Scheduler step model (continuous batching: one
   decode token per active request per step, slowest member gates the step,
   freed slots refill at step boundaries, a joiner's prefill overlaps the
   step it joins).  A front-end router dispatches arrivals to replicas and
   defends against replica failures with per-request timeouts, bounded
   retries, hedged requests, per-replica circuit breakers, and
   health-check-driven ejection.

   Faithfulness to the Scheduler: a 1-replica, zero-fault, defense-free
   cluster replays Scheduler.run's trace bit-identically.  The event
   encoding preserves the lockstep loop's exact float arithmetic and list
   ordering: a Step event at boundary time T first finishes the step that
   ends at T (increment l_done on the live set, complete finished members,
   stamp joiners' TTFT, live <- continuing @ joiners — the Scheduler's
   statement order), then begins the next step (pop joiners, fold the step
   duration with the same Float.max chain, schedule the next boundary at
   T +. dur).  Arrivals are pushed into the event queue before any Step
   event exists, so an arrival at exactly a boundary time dequeues first —
   the event-order twin of admit_until's [<=].

   Determinism: every stream is seeded (arrival trace, per-replica failure
   renewal processes, front-end jitter), the event queue breaks time ties
   on push order, and all arithmetic is sequential — traces are
   bit-identical across PICACHU_DOMAINS pool sizes and repeat runs. *)

module Rng = Picachu_tensor.Rng
module Mz = Picachu_llm.Model_zoo
module E = Picachu_error

(* ---------------------------------------------------------------- router *)

type router = Round_robin | Least_loaded | Power_of_two

let router_name = function
  | Round_robin -> "round-robin"
  | Least_loaded -> "least-loaded"
  | Power_of_two -> "p2c"

let router_of_string s =
  match String.lowercase_ascii s with
  | "round-robin" | "rr" -> Some Round_robin
  | "least-loaded" | "ll" -> Some Least_loaded
  | "p2c" | "power-of-two" | "power-of-two-choices" -> Some Power_of_two
  | _ -> None

(* ---------------------------------------------------------- failure model *)

type fault_profile = {
  fp_seed : int;
  mttf_s : float;  (* mean time to failure; infinity disables faults *)
  mttr_s : float;  (* mean time to recovery *)
  p_crash : float;  (* mode mix, normalized over the three weights *)
  p_hang : float;
  p_slow : float;
  hang_factor : float;  (* step-duration multiplier while hung *)
  slow_factor : float;  (* step-duration multiplier while slowed *)
}

let profile_none =
  {
    fp_seed = 0;
    mttf_s = Float.infinity;
    mttr_s = 1.0;
    p_crash = 0.0;
    p_hang = 0.0;
    p_slow = 0.0;
    hang_factor = 8.0;
    slow_factor = 1.5;
  }

let profile_crash ?(seed = 0) ~mttf ~mttr () =
  { profile_none with fp_seed = seed; mttf_s = mttf; mttr_s = mttr; p_crash = 1.0 }

let profile_straggler ?(seed = 0) ~mttf ~mttr () =
  { profile_none with fp_seed = seed; mttf_s = mttf; mttr_s = mttr; p_hang = 1.0 }

let profile_mixed ?(seed = 0) ~mttf ~mttr () =
  {
    profile_none with
    fp_seed = seed;
    mttf_s = mttf;
    mttr_s = mttr;
    p_crash = 0.5;
    p_hang = 0.3;
    p_slow = 0.2;
  }

let profile_active p = p.mttf_s < Float.infinity && p.p_crash +. p.p_hang +. p.p_slow > 0.0

let profile_of_string ?(seed = 0) ?(mttf = 30.0) ?(mttr = 5.0) s =
  match String.lowercase_ascii s with
  | "none" | "zero" -> Some profile_none
  | "crash" -> Some (profile_crash ~seed ~mttf ~mttr ())
  | "straggler" | "hang" -> Some (profile_straggler ~seed ~mttf ~mttr ())
  | "mixed" | "chaos" -> Some (profile_mixed ~seed ~mttf ~mttr ())
  | _ -> None

(* -------------------------------------------------------------- defenses *)

type defenses = {
  timeout_s : float;  (* per-attempt deadline; infinity disables *)
  max_retries : int;  (* deadline-driven retries per request *)
  backoff_s : float;  (* base redispatch backoff (exponential) *)
  backoff_jitter : float;  (* jitter fraction on the backoff, seeded *)
  requeue_on_crash : bool;  (* re-queue a crashed replica's requests *)
  hedge : bool;  (* duplicate slow requests after a p95-derived delay *)
  hedge_min_samples : int;  (* completions needed before hedging arms *)
  breaker : bool;  (* per-replica circuit breakers *)
  breaker_threshold : int;  (* consecutive failures to trip *)
  breaker_cooldown_s : float;  (* open -> half-open delay *)
  health_interval_s : float;  (* recovered-replica re-admission cadence *)
}

let no_defenses =
  {
    timeout_s = Float.infinity;
    max_retries = 0;
    backoff_s = 0.1;
    backoff_jitter = 0.0;
    requeue_on_crash = false;
    hedge = false;
    hedge_min_samples = 8;
    breaker = false;
    breaker_threshold = 3;
    breaker_cooldown_s = 5.0;
    health_interval_s = Float.infinity;
  }

let default_defenses =
  {
    timeout_s = 120.0;
    max_retries = 3;
    backoff_s = 0.1;
    backoff_jitter = 0.5;
    requeue_on_crash = true;
    hedge = true;
    hedge_min_samples = 8;
    breaker = true;
    breaker_threshold = 3;
    breaker_cooldown_s = 5.0;
    health_interval_s = 1.0;
  }

(* ---------------------------------------------------------------- config *)

type config = {
  replicas : int;
  router : router;
  slots : int;  (* continuous-batching slots per replica *)
  queue_capacity : int;  (* admission queue bound per replica *)
  seed : int;  (* front-end stream: p2c choices, jitter *)
  profile : fault_profile;
  defenses : defenses;
}

let default_config ?(replicas = 2) ?(router = Round_robin) ?(slots = 8)
    ?(queue_capacity = 64) ?(seed = 1) ?(profile = profile_none)
    ?(defenses = default_defenses) () =
  { replicas; router; slots; queue_capacity; seed; profile; defenses }

(* --------------------------------------------------------------- results *)

type counters = {
  crashes : int;
  hangs : int;
  slowdowns : int;
  requeued : int;  (* crash-displaced dispatches (not charged to retries) *)
  retries : int;  (* deadline-driven re-dispatches *)
  timeouts : int;  (* attempts that outlived the per-request deadline *)
  hedges : int;  (* duplicate attempts launched *)
  hedge_wins : int;  (* hedged attempts that answered first *)
  breaker_trips : int;  (* closed/half-open -> open transitions *)
  probes : int;  (* half-open probe admissions *)
  dispatches : int;  (* every enqueue onto a replica, all causes *)
}

type report = {
  completions : Scheduler.completion list;  (* in completion order *)
  arrivals : int;
  answered : int;
  dropped : int;  (* rejected by a full admission queue *)
  failed : int;  (* timed out / lost after the retry budget *)
  availability : float;  (* answered / (arrivals - dropped) *)
  amplification : float;  (* dispatches / (arrivals - dropped) *)
  makespan_s : float;
  goodput_tps : float;  (* completed tokens per second over the makespan *)
  ttft : Scheduler.pct;
  latency : Scheduler.pct;
  tiers : (Serving.tier * int) list;
  served_per_replica : int array;
  counters : counters;
}

let accounting_ok r = r.answered + r.dropped + r.failed = r.arrivals

(* ----------------------------------------------------------------- state *)

type ev =
  | Arrival of int  (* request index in the sorted trace *)
  | Step of int * int  (* replica id, generation (stale guard) *)
  | Fail of int  (* replica id: next failure of the renewal process *)
  | Recover of int
  | Timeout of int * int  (* request index, attempt id *)
  | Hedge of int  (* request index *)
  | Redispatch of int  (* request index: retry after backoff *)
  | Health

type status = Waiting | Answered | Dropped | Failed

type req = {
  arr : Scheduler.arrival;
  mutable status : status;
  mutable next_attempt : int;  (* fresh attempt-id source *)
  mutable outstanding : (int * int) list;  (* (attempt, replica) in flight *)
  mutable deadline_retries : int;
  mutable redispatches : int;  (* backoff waits while no replica is eligible *)
  mutable crash_requeues : int;  (* crash displacements survived so far *)
  mutable hedge_attempt : int;  (* attempt id of the hedge twin, -1 if none *)
}

(* one request attempt active on a replica — the Scheduler's [live] record
   plus the (request, attempt) identity the front-end needs for routing
   completions and cancellations *)
type alive = {
  al_req : int;
  al_attempt : int;
  al_arr : Scheduler.arrival;
  al_costs : Serving.phase_costs;
  al_tier : Serving.tier;
  mutable al_done : int;
  mutable al_ttft : float;
}

type breaker = Closed | Open of float (* re-probe time *) | Half_open of bool (* probe out *)

type replica = {
  rid : int;
  frng : Rng.t;  (* failure renewal stream, decorrelated per replica *)
  mutable up : bool;
  mutable speed : float;  (* step-duration multiplier; 1.0 when healthy *)
  mutable ejected : bool;  (* health-check view: crashed, not yet re-admitted *)
  rq : (int * int) Queue.t;  (* admission queue of (request, attempt) *)
  mutable qlen : int;  (* logical length (cancelled entries excluded) *)
  mutable live : alive list;
  mutable joining : alive list;  (* popped at the last boundary, prefilling *)
  mutable stepping : bool;
  mutable gen : int;  (* bumped on crash to invalidate scheduled Steps *)
  mutable consec_fails : int;
  mutable br : breaker;
  mutable served : int;
}

let exp_draw rng mean = -.mean *. log (1.0 -. Rng.float rng)

(* caps that bound the simulation without ever firing in sane scenarios *)
let max_crash_requeues = 10_000
let max_redispatches = 1_000

let run cfg ~(cost : Scheduler.cost_source) arrivals =
  if cfg.replicas < 1 then invalid_arg "Cluster.run: replicas must be positive";
  if cfg.slots < 1 then invalid_arg "Cluster.run: slots must be positive";
  if cfg.queue_capacity < 1 then invalid_arg "Cluster.run: queue_capacity must be positive";
  if profile_active cfg.profile && not (cfg.profile.mttr_s > 0.0) then
    invalid_arg "Cluster.run: mttr must be positive when faults are on";
  let d = cfg.defenses in
  let arrivals =
    Array.of_list
      (List.sort
         (fun (a : Scheduler.arrival) b ->
           match Float.compare a.Scheduler.at b.Scheduler.at with
           | 0 -> Int.compare a.Scheduler.id b.Scheduler.id
           | c -> c)
         arrivals)
  in
  Array.iter
    (fun (a : Scheduler.arrival) ->
      if a.Scheduler.request.Serving.prompt < 1 || a.Scheduler.request.Serving.generate < 1
      then invalid_arg "Cluster.run: request")
    arrivals;
  let n = Array.length arrivals in
  let reqs =
    Array.map
      (fun a ->
        {
          arr = a;
          status = Waiting;
          next_attempt = 0;
          outstanding = [];
          deadline_retries = 0;
          redispatches = 0;
          crash_requeues = 0;
          hedge_attempt = -1;
        })
      arrivals
  in
  let replicas =
    Array.init cfg.replicas (fun rid ->
        {
          rid;
          frng = Rng.create (cfg.profile.fp_seed lxor ((rid + 1) * 0x1E3779B97F4A7C15));
          up = true;
          speed = 1.0;
          ejected = false;
          rq = Queue.create ();
          qlen = 0;
          live = [];
          joining = [];
          stepping = false;
          gen = 0;
          consec_fails = 0;
          br = Closed;
          served = 0;
        })
  in
  let frontend_rng = Rng.create cfg.seed in
  let q : ev Event_queue.t = Event_queue.create () in
  (* arrivals enter the queue first: on a time tie with any event scheduled
     later (every Step is), the arrival's smaller seq dequeues first — the
     admit-before-pop order the Scheduler's admit_until gives *)
  Array.iteri (fun i (a : Scheduler.arrival) -> Event_queue.push q ~at:a.Scheduler.at (Arrival i)) arrivals;
  if profile_active cfg.profile then begin
    Array.iter
      (fun r -> Event_queue.push q ~at:(exp_draw r.frng cfg.profile.mttf_s) (Fail r.rid))
      replicas;
    if d.health_interval_s < Float.infinity then
      Event_queue.push q ~at:d.health_interval_s Health
  end;
  (* tallies *)
  let resolved = ref 0 in
  let answered = ref 0 and dropped = ref 0 and failed = ref 0 in
  let crashes = ref 0 and hangs = ref 0 and slowdowns = ref 0 in
  let requeued = ref 0 and retries = ref 0 and timeouts = ref 0 in
  let hedges = ref 0 and hedge_wins = ref 0 in
  let breaker_trips = ref 0 and probes = ref 0 and dispatches = ref 0 in
  let completions = ref [] in
  let latencies = ref [] and n_latencies = ref 0 in
  (* ---------------------------------------------------------- the breaker *)
  let trip r t =
    if d.breaker then begin
      (match r.br with
      | Open _ -> ()
      | Closed | Half_open _ -> incr breaker_trips);
      r.br <- Open (t +. d.breaker_cooldown_s);
      r.consec_fails <- 0
    end
  in
  let breaker_fail r t =
    if d.breaker then
      match r.br with
      | Half_open _ -> trip r t  (* the probe failed: straight back to open *)
      | Closed ->
          r.consec_fails <- r.consec_fails + 1;
          if r.consec_fails >= d.breaker_threshold then trip r t
      | Open _ -> ()
  in
  let breaker_ok r t =
    (not d.breaker)
    ||
    match r.br with
    | Closed -> true
    | Open until ->
        if t >= until then begin
          r.br <- Half_open false;
          true
        end
        else false
    | Half_open probe_out -> not probe_out
  in
  let breaker_admit r =
    if d.breaker then
      match r.br with
      | Half_open false ->
          r.br <- Half_open true;
          incr probes
      | _ -> ()
  in
  let breaker_success r =
    if d.breaker then begin
      r.consec_fails <- 0;
      match r.br with Half_open _ -> r.br <- Closed | _ -> ()
    end
  in
  (* ----------------------------------------------------------- the router *)
  let rr_cursor = ref 0 in
  let load r = r.qlen + List.length r.live + List.length r.joining in
  let eligible ?(need_space = false) t r =
    r.up
    && (not r.ejected)
    && breaker_ok r t
    && ((not need_space) || r.qlen < cfg.queue_capacity)
  in
  let choose ?need_space ?(exclude = -1) t =
    let cands = ref [] in
    for rid = cfg.replicas - 1 downto 0 do
      if rid <> exclude && eligible ?need_space t replicas.(rid) then
        cands := replicas.(rid) :: !cands
    done;
    match !cands with
    | [] ->
        (* nothing but the excluded replica left? better than nothing *)
        if exclude >= 0 && eligible ?need_space t replicas.(exclude) then
          Some replicas.(exclude)
        else None
    | [ r ] -> Some r
    | cands -> (
        match cfg.router with
        | Round_robin ->
            let pick = ref None in
            let i = ref 0 in
            while !pick = None && !i < cfg.replicas do
              let rid = (!rr_cursor + !i) mod cfg.replicas in
              if List.exists (fun r -> r.rid = rid) cands then begin
                pick := Some replicas.(rid);
                rr_cursor := rid + 1
              end;
              incr i
            done;
            !pick
        | Least_loaded ->
            Some
              (List.fold_left
                 (fun best r -> if load r < load best then r else best)
                 (List.hd cands) (List.tl cands))
        | Power_of_two ->
            let arr = Array.of_list cands in
            let k = Array.length arr in
            let i = Rng.int frontend_rng k in
            let j0 = Rng.int frontend_rng (k - 1) in
            let j = if j0 >= i then j0 + 1 else j0 in
            let a = arr.(i) and b = arr.(j) in
            Some
              (if load a < load b then a
               else if load b < load a then b
               else if a.rid < b.rid then a
               else b))
  in
  (* --------------------------------------------------- the replica engine *)
  let admit (req_i, attempt) =
    let a = reqs.(req_i).arr in
    let costs, tier = cost a.Scheduler.request in
    {
      al_req = req_i;
      al_attempt = attempt;
      al_arr = a;
      al_costs = costs;
      al_tier = tier;
      al_done = 0;
      al_ttft = Float.nan;
    }
  in
  let valid_entry (req_i, attempt) =
    reqs.(req_i).status = Waiting && List.mem_assoc attempt reqs.(req_i).outstanding
  in
  let pop_queue r k =
    let rec go k acc =
      if k = 0 || Queue.is_empty r.rq then List.rev acc
      else
        let e = Queue.pop r.rq in
        if valid_entry e then begin
          r.qlen <- r.qlen - 1;
          go (k - 1) (e :: acc)
        end
        else go k acc  (* cancelled: qlen already adjusted at cancel time *)
    in
    go k []
  in
  let step_cost live =
    List.fold_left
      (fun acc l ->
        Float.max acc
          (Serving.decode_cost l.al_costs (l.al_arr.Scheduler.request.Serving.prompt + l.al_done)))
      0.0 live
  in
  let begin_step t r =
    let free = cfg.slots - List.length r.live in
    let joiners = List.map admit (pop_queue r free) in
    r.joining <- joiners;
    if r.live = [] && joiners = [] then r.stepping <- false
    else begin
      let dur =
        List.fold_left
          (fun acc j -> Float.max acc j.al_costs.Serving.prefill_s)
          (step_cost r.live) joiners
      in
      let dur = if r.speed = 1.0 then dur else dur *. r.speed in
      r.stepping <- true;
      Event_queue.push q ~at:(t +. dur) (Step (r.rid, r.gen))
    end
  in
  let kick t r = if r.up && not r.stepping then begin_step t r in
  (* ------------------------------------------------------- request fates *)
  let cancel_attempt req_i attempt =
    let rq = reqs.(req_i) in
    match List.assoc_opt attempt rq.outstanding with
    | None -> ()
    | Some rid ->
        rq.outstanding <- List.remove_assoc attempt rq.outstanding;
        let r = replicas.(rid) in
        let is_it l = l.al_req = req_i && l.al_attempt = attempt in
        if List.exists is_it r.live then
          r.live <- List.filter (fun l -> not (is_it l)) r.live
        else if List.exists is_it r.joining then
          r.joining <- List.filter (fun l -> not (is_it l)) r.joining
        else r.qlen <- r.qlen - 1 (* still queued: lazy-deleted at pop *)
  in
  let fail_request req_i =
    let rq = reqs.(req_i) in
    if rq.status = Waiting then begin
      List.iter (fun (a, _) -> cancel_attempt req_i a) rq.outstanding;
      rq.status <- Failed;
      incr failed;
      incr resolved
    end
  in
  let enqueue t r req_i =
    let rq = reqs.(req_i) in
    let attempt = rq.next_attempt in
    rq.next_attempt <- attempt + 1;
    rq.outstanding <- (attempt, r.rid) :: rq.outstanding;
    Queue.add (req_i, attempt) r.rq;
    r.qlen <- r.qlen + 1;
    incr dispatches;
    breaker_admit r;
    if d.timeout_s < Float.infinity then
      Event_queue.push q ~at:(t +. d.timeout_s) (Timeout (req_i, attempt));
    kick t r;
    attempt
  in
  let backoff_delay k =
    let exp = Float.of_int (1 lsl Stdlib.min k 6) in
    let jitter =
      if d.backoff_jitter > 0.0 then 1.0 +. (d.backoff_jitter *. Rng.float frontend_rng)
      else 1.0
    in
    d.backoff_s *. exp *. jitter
  in
  (* a displaced request (crash, timeout-retry) needs a replica with queue
     space; when none is eligible it backs off and re-enters later *)
  let redispatch t req_i =
    let rq = reqs.(req_i) in
    if rq.status = Waiting && rq.outstanding = [] then
      match choose ~need_space:true t with
      | Some r -> ignore (enqueue t r req_i)
      | None ->
          if rq.redispatches >= max_redispatches then fail_request req_i
          else begin
            let k = rq.redispatches in
            rq.redispatches <- k + 1;
            Event_queue.push q ~at:(t +. backoff_delay k) (Redispatch req_i)
          end
  in
  (* crash displacement: Replica_crashed is transient and not the request's
     fault, so re-queuing is not charged against the deadline-retry budget *)
  let crash_loss t rid req_i attempt =
    let rq = reqs.(req_i) in
    rq.outstanding <- List.remove_assoc attempt rq.outstanding;
    let err = E.Replica_crashed { replica = rid } in
    if E.transient err && d.requeue_on_crash && rq.crash_requeues < max_crash_requeues
    then begin
      rq.crash_requeues <- rq.crash_requeues + 1;
      incr requeued;
      redispatch t req_i
    end
    else fail_request req_i
  in
  let complete r (l : alive) t =
    let rq = reqs.(l.al_req) in
    if rq.status = Waiting then begin
      let gen = l.al_arr.Scheduler.request.Serving.generate in
      completions :=
        {
          Scheduler.c_id = l.al_arr.Scheduler.id;
          c_request = l.al_arr.Scheduler.request;
          c_arrival_s = l.al_arr.Scheduler.at;
          c_ttft_s = l.al_ttft -. l.al_arr.Scheduler.at;
          c_latency_s = t -. l.al_arr.Scheduler.at;
          c_tpot_s = (t -. l.al_ttft) /. float_of_int gen;
          c_tier = l.al_tier;
        }
        :: !completions;
      rq.status <- Answered;
      incr answered;
      incr resolved;
      r.served <- r.served + 1;
      latencies := (t -. l.al_arr.Scheduler.at) :: !latencies;
      incr n_latencies;
      if rq.hedge_attempt >= 0 && l.al_attempt = rq.hedge_attempt then incr hedge_wins;
      rq.outstanding <- List.remove_assoc l.al_attempt rq.outstanding;
      List.iter (fun (a, _) -> cancel_attempt l.al_req a) rq.outstanding;
      breaker_success r
    end
    else rq.outstanding <- List.remove_assoc l.al_attempt rq.outstanding
  in
  (* hedge delay: the p95 of completed latencies so far — adaptive, and
     arm only once enough samples exist to make the tail meaningful *)
  let hedge_delay () =
    if !n_latencies < d.hedge_min_samples then None
    else
      Some (Picachu_tensor.Stats.percentile (Array.of_list !latencies) 95.0)
  in
  let initial_dispatch t req_i =
    (* admission control is per replica: the router's pick is final, and a
       full queue sheds the arrival — the Scheduler's drop semantics *)
    match choose t with
    | None -> redispatch t req_i  (* whole cluster dark: back off, retry *)
    | Some r ->
        if r.qlen >= cfg.queue_capacity then begin
          reqs.(req_i).status <- Dropped;
          incr dropped;
          incr resolved
        end
        else begin
          ignore (enqueue t r req_i);
          if d.hedge then
            match hedge_delay () with
            | Some delay -> Event_queue.push q ~at:(t +. delay) (Hedge req_i)
            | None -> ()
        end
  in
  (* --------------------------------------------------------- event loop *)
  while !resolved < n && not (Event_queue.is_empty q) do
    match Event_queue.pop q with
    | None -> ()
    | Some (t, ev) -> (
        match ev with
        | Arrival i -> if reqs.(i).status = Waiting then initial_dispatch t i
        | Step (rid, gen) ->
            let r = replicas.(rid) in
            if gen = r.gen && r.up then begin
              (* the step that began at the previous boundary ends at t —
                 the Scheduler loop's statement order, except live updates
                 before completions run: a completion can cancel a sibling
                 attempt on this very replica, and that cancellation must
                 land on the new live list, not be undone by it *)
              List.iter (fun l -> l.al_done <- l.al_done + 1) r.live;
              let finished, continuing =
                List.partition
                  (fun l -> l.al_done >= l.al_arr.Scheduler.request.Serving.generate)
                  r.live
              in
              List.iter (fun j -> j.al_ttft <- t) r.joining;
              r.live <- continuing @ r.joining;
              r.joining <- [];
              List.iter (fun l -> complete r l t) finished;
              begin_step t r
            end
        | Fail rid ->
            let r = replicas.(rid) in
            if r.up then begin
              let total = cfg.profile.p_crash +. cfg.profile.p_hang +. cfg.profile.p_slow in
              let u = Rng.float r.frng *. total in
              let dur = exp_draw r.frng cfg.profile.mttr_s in
              if u < cfg.profile.p_crash then begin
                (* crash: the replica loses everything in flight or queued *)
                incr crashes;
                r.up <- false;
                r.ejected <- true;
                r.gen <- r.gen + 1;
                r.stepping <- false;
                r.speed <- 1.0;
                let lost =
                  List.map (fun l -> (l.al_req, l.al_attempt)) (r.live @ r.joining)
                  @ pop_queue r max_int
                in
                r.live <- [];
                r.joining <- [];
                r.qlen <- 0;
                Queue.clear r.rq;
                trip r t;
                List.iter (fun (req_i, attempt) -> crash_loss t rid req_i attempt) lost
              end
              else if u < cfg.profile.p_crash +. cfg.profile.p_hang then begin
                incr hangs;
                r.speed <- cfg.profile.hang_factor
              end
              else begin
                incr slowdowns;
                r.speed <- cfg.profile.slow_factor
              end;
              Event_queue.push q ~at:(t +. dur) (Recover rid)
            end
        | Recover rid ->
            let r = replicas.(rid) in
            r.up <- true;
            r.speed <- 1.0;
            (* re-admission waits for a health check when checks are on *)
            if d.health_interval_s = Float.infinity then r.ejected <- false;
            Event_queue.push q ~at:(t +. exp_draw r.frng cfg.profile.mttf_s) (Fail rid)
        | Health ->
            Array.iter (fun r -> if r.up then r.ejected <- false) replicas;
            if !resolved < n then
              Event_queue.push q ~at:(t +. d.health_interval_s) Health
        | Timeout (req_i, attempt) ->
            let rq = reqs.(req_i) in
            if rq.status = Waiting && List.mem_assoc attempt rq.outstanding then begin
              incr timeouts;
              let rid = List.assoc attempt rq.outstanding in
              cancel_attempt req_i attempt;
              breaker_fail replicas.(rid) t;
              let err = E.Deadline_exceeded { request = rq.arr.Scheduler.id; attempt } in
              if E.transient err && rq.deadline_retries < d.max_retries then begin
                rq.deadline_retries <- rq.deadline_retries + 1;
                incr retries;
                match choose ~need_space:true ~exclude:rid t with
                | Some r -> ignore (enqueue t r req_i)
                | None -> redispatch t req_i
              end
              else if rq.outstanding = [] then fail_request req_i
              (* a hedge twin is still running: let it race the deadline *)
            end
        | Hedge req_i ->
            let rq = reqs.(req_i) in
            if
              rq.status = Waiting && rq.hedge_attempt < 0
              && List.length rq.outstanding = 1
            then begin
              let current_rid = snd (List.hd rq.outstanding) in
              match choose ~need_space:true ~exclude:current_rid t with
              | Some r when r.rid <> current_rid ->
                  incr hedges;
                  rq.hedge_attempt <- enqueue t r req_i
              | _ -> ()  (* nowhere distinct to hedge: skip, don't re-arm *)
            end
        | Redispatch req_i -> redispatch t req_i)
  done;
  (* anything still unresolved when the queue drains is a lost request —
     the accounting identity must hold whatever the scenario did *)
  Array.iteri (fun i rq -> if rq.status = Waiting then fail_request i) reqs;
  let completions = List.rev !completions in
  let makespan =
    List.fold_left
      (fun acc (c : Scheduler.completion) ->
        Float.max acc (c.Scheduler.c_arrival_s +. c.Scheduler.c_latency_s))
      0.0 completions
  in
  let tokens =
    List.fold_left
      (fun acc (c : Scheduler.completion) -> acc + c.Scheduler.c_request.Serving.generate)
      0 completions
  in
  let admitted = n - !dropped in
  {
    completions;
    arrivals = n;
    answered = !answered;
    dropped = !dropped;
    failed = !failed;
    availability =
      (if admitted = 0 then 1.0 else float_of_int !answered /. float_of_int admitted);
    amplification =
      (if admitted = 0 then 0.0 else float_of_int !dispatches /. float_of_int admitted);
    makespan_s = makespan;
    goodput_tps = (if completions = [] then 0.0 else float_of_int tokens /. makespan);
    ttft = Scheduler.percentiles (fun c -> c.Scheduler.c_ttft_s) completions;
    latency = Scheduler.percentiles (fun c -> c.Scheduler.c_latency_s) completions;
    tiers = Scheduler.tier_tally completions;
    served_per_replica = Array.map (fun r -> r.served) replicas;
    counters =
      {
        crashes = !crashes;
        hangs = !hangs;
        slowdowns = !slowdowns;
        requeued = !requeued;
        retries = !retries;
        timeouts = !timeouts;
        hedges = !hedges;
        hedge_wins = !hedge_wins;
        breaker_trips = !breaker_trips;
        probes = !probes;
        dispatches = !dispatches;
      };
  }

let serve ?budget ?gpu cfg sim m spec =
  run cfg ~cost:(Scheduler.robust_source ?budget ?gpu sim m) (Scheduler.trace spec)
