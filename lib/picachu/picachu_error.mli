(** The shared error taxonomy of the compile/execute/serve pipeline.

    The seed code signalled every failure as an exception ([Mapper.Unmappable]
    anywhere in the compile pipeline aborted a whole experiment); production
    serving needs failures as *values* so a request can fall back to a slower
    tier instead of dying.  This type is the single channel: the compiler
    returns it from {!Compiler.compile_result}, the resilience layer raises
    it when DMR detection exhausts its retry budget, and
    {!Serving.robust_costs} accumulates it per fallback tier.

    [transient] partitions the taxonomy for retry policy: a transient fault
    (a detected execution fault, a timing violation) may vanish on
    re-execution; a structural failure (unmappable kernel, unknown name)
    is deterministic and retrying is wasted work — the serving path skips
    straight to the next tier and the compiler caches the failure
    negatively. *)

type t =
  | Unmappable of { kernel : string; reasons : (int * string) list }
      (** Every unroll candidate failed to map; [reasons] pairs each
          attempted unroll factor with the mapper's failure message. *)
  | Mapping_failed of string
      (** A raw mapper failure outside candidate auto-tuning. *)
  | Unknown_kernel of string
  | Execution_fault of string
      (** DMR detected a fault and the retry budget is exhausted. *)
  | Timing_violation of string
  | Verification_failed of { kernel : string; findings : string list }
      (** The [PICACHU_VERIFY] gate: the independent validator rejected what
          the compiler produced; [findings] are the pretty-printed
          Error-severity findings. *)
  | All_tiers_failed of (string * t) list
      (** Every serving tier failed; payload pairs tier names with their
          final errors, in attempt order. *)
  | Replica_crashed of { replica : int }
      (** A cluster replica died with this request in flight or queued.
          Transient: the request itself is fine — the front-end re-queues it
          on a surviving replica without charging the retry budget. *)
  | Deadline_exceeded of { request : int; attempt : int }
      (** A dispatched attempt outlived its per-request timeout.  Transient:
          another replica may answer in time, but each retry is charged
          against the request's bounded budget. *)

exception Error of t

val transient : t -> bool
(** True for failures that re-execution may clear ([Execution_fault],
    [Timing_violation], [Replica_crashed], [Deadline_exceeded]); false for
    deterministic/structural ones.  The cluster front-end's retry policy
    keys off this bit: a non-transient failure is never retried. *)

val of_exn : exn -> t option
(** Map pipeline exceptions into the taxonomy: [Error] unwraps,
    {!Picachu_cgra.Mapper.Unmappable} becomes [Mapping_failed],
    {!Picachu_cgra.Executor.Execution_error} becomes [Execution_fault],
    {!Picachu_cgra.Executor.Timing_violation} becomes [Timing_violation].
    [None] for foreign exceptions (which should keep propagating). *)

val to_string : t -> string
