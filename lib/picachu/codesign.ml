module Arch = Picachu_cgra.Arch
module Fu = Picachu_cgra.Fu
module Mapper = Picachu_cgra.Mapper
module Kernels = Picachu_ir.Kernels
module Rng = Picachu_tensor.Rng
module Parallel = Picachu_parallel.Parallel

type objective = Perf_per_area | Throughput_under_cap of float

type config = {
  iters : int;
  batch : int;
  seed : int;
  backend : Kernels.backend;
  objective : objective;
  init : Arch.t option;
}

let default_config =
  {
    iters = 64;
    batch = 4;
    seed = 1;
    backend = Kernels.Taylor;
    objective = Perf_per_area;
    init = None;
  }

type trace_entry = {
  step : int;
  move : string;
  arch_name : string;
  score : float option;
  accepted : bool;
  best_score : float;
}

type result = {
  config : config;
  init_point : Explore.point;
  best : Explore.point;
  best_arch : Arch.t;
  evaluated : int;
  accepted_count : int;
  infeasible : int;
  trace : trace_entry list;
}

let score objective (p : Explore.point) =
  match objective with
  | Perf_per_area -> Some p.Explore.perf_per_area
  | Throughput_under_cap cap ->
      if p.Explore.area_mm2 <= cap then Some p.Explore.geomean_throughput
      else None

(* ---- the move set ------------------------------------------------------ *)

let min_rows = 2
let max_rows = 6
let min_cols = 2
let max_cols = 8
let min_lut = 1024
let max_lut = 32768

let is_corner (a : Arch.t) i =
  let r, c = Arch.coords a i in
  (r = 0 || r = a.Arch.rows - 1) && (c = 0 || c = a.Arch.cols - 1)

let noncorner_indices (a : Arch.t) =
  Array.of_seq
    (Seq.filter
       (fun i -> not (is_corner a i))
       (Seq.init (Array.length a.Arch.kinds) Fun.id))

let share_of (a : Arch.t) =
  let nc = noncorner_indices a in
  if Array.length nc = 0 then 0.0
  else
    let cot =
      Array.fold_left
        (fun n i ->
          match a.Arch.kinds.(i) with
          | Fu.CoT | Fu.UniT -> n + 1
          | Fu.BaT | Fu.BrT -> n)
        0 nc
    in
    float_of_int cot /. float_of_int (Array.length nc)

(* candidate names carry every searched knob so the trace reads as a path
   through the design space; structural digests (which ignore the name) are
   what dedupe and the compile cache key on *)
let rename (a : Arch.t) =
  let cot =
    Array.fold_left
      (fun n k -> match k with Fu.CoT | Fu.UniT -> n + 1 | Fu.BaT | Fu.BrT -> n)
      0 a.Arch.kinds
  in
  {
    a with
    Arch.name =
      Printf.sprintf "sa-%dx%d-cot%d-lut%d" a.Arch.rows a.Arch.cols cot
        a.Arch.lut_capacity_bytes;
  }

let resized ~rows ~cols (a : Arch.t) =
  Arch.hetero_mix ~rows ~cols ~cot_share:(share_of a)
  |> Arch.with_lut_capacity a.Arch.lut_capacity_bytes
  |> rename

let flipped rng (a : Arch.t) =
  let nc = noncorner_indices a in
  if Array.length nc = 0 then a
  else begin
    let i = nc.(Rng.int rng (Array.length nc)) in
    let ks = Array.copy a.Arch.kinds in
    ks.(i) <-
      (match ks.(i) with
      | Fu.CoT | Fu.UniT -> Fu.BaT
      | Fu.BaT | Fu.BrT -> Fu.CoT);
    rename { a with Arch.kinds = ks }
  end

let reinterleaved rng (a : Arch.t) =
  let dir = if Rng.bool rng then 1.0 else -1.0 in
  let mag = Rng.uniform rng ~lo:0.08 ~hi:0.25 in
  let share = Float.max 0.0 (Float.min 1.0 (share_of a +. (dir *. mag))) in
  let label = if dir > 0.0 then "share+" else "share-" in
  ( label,
    Arch.hetero_mix ~rows:a.Arch.rows ~cols:a.Arch.cols ~cot_share:share
    |> Arch.with_lut_capacity a.Arch.lut_capacity_bytes
    |> rename )

let relut cap (a : Arch.t) =
  Arch.with_lut_capacity (Stdlib.max min_lut (Stdlib.min max_lut cap)) a
  |> rename

(* single-knob neighbor; re-drawn (bounded) when a clamped move lands on the
   current design, so steps at the boundary of the space stay productive *)
let neighbor rng (a : Arch.t) =
  let attempt () =
    let r = Rng.int rng 100 in
    if r < 30 then ("flip", flipped rng a)
    else if r < 45 then reinterleaved rng a
    else if r < 70 then begin
      match Rng.int rng 4 with
      | 0 ->
          ( "rows+1",
            resized ~rows:(Stdlib.min max_rows (a.Arch.rows + 1)) ~cols:a.Arch.cols a )
      | 1 ->
          ( "rows-1",
            resized ~rows:(Stdlib.max min_rows (a.Arch.rows - 1)) ~cols:a.Arch.cols a )
      | 2 ->
          ( "cols+1",
            resized ~rows:a.Arch.rows ~cols:(Stdlib.min max_cols (a.Arch.cols + 1)) a )
      | _ ->
          ( "cols-1",
            resized ~rows:a.Arch.rows ~cols:(Stdlib.max min_cols (a.Arch.cols - 1)) a )
    end
    else if Rng.bool rng then
      ("lut/2", relut (a.Arch.lut_capacity_bytes / 2) a)
    else ("lutx2", relut (a.Arch.lut_capacity_bytes * 2) a)
  in
  let cur = Arch.structural_digest a in
  let rec go n =
    let mv, a' = attempt () in
    if n >= 8 || Arch.structural_digest a' <> cur then (mv, a') else go (n + 1)
  in
  go 1

(* ---- warm starts ------------------------------------------------------- *)

(* One private store per candidate, populated from the current design's
   accepted schedules.  All the current design's compiles are cache hits
   (it was evaluated when it became current), so seeding is a readback +
   harvest, not a compile.  Privacy matters: candidates harvest their own
   schedules while compiling, and hint keys carry no architecture, so a
   store shared across a concurrent batch would leak one candidate's
   schedules into a sibling's lookups in pool order. *)
let seed_store ~backend arch =
  let s = Compiler.hints_create () in
  let opts = Compiler.picachu_options ~arch () in
  List.iter
    (fun k ->
      match Compiler.memo_result opts k with
      | Ok c -> Compiler.harvest_hints s opts c
      | Error _ -> ())
    (Explore.kernel_roster ~backend ());
  s

(* ---- the annealer ------------------------------------------------------ *)

let run ?(config = default_config) () =
  let cfg = config in
  if cfg.iters <= 0 then invalid_arg "Codesign.run: iters must be > 0";
  if cfg.batch <= 0 then invalid_arg "Codesign.run: batch must be > 0";
  let rng = Rng.create cfg.seed in
  let init_arch =
    match cfg.init with
    | Some a -> a
    | None -> Arch.hetero_mix ~rows:4 ~cols:4 ~cot_share:(2.0 /. 3.0)
  in
  let init_point = Explore.evaluate_arch ~backend:cfg.backend init_arch in
  let cur_arch = ref init_arch in
  let cur_score =
    ref
      (match score cfg.objective init_point with
      | Some s -> s
      | None -> Float.neg_infinity)
  in
  let best_arch = ref init_arch in
  let best_point = ref init_point in
  let best_score = ref !cur_score in
  let t0 =
    0.10
    *. (if Float.is_finite !cur_score && !cur_score <> 0.0 then
          Float.abs !cur_score
        else 1.0)
  in
  let temperature step =
    (* geometric cooling to 2% of t0 over the budget *)
    t0 *. (0.02 ** (float_of_int step /. float_of_int (Stdlib.max 1 (cfg.iters - 1))))
  in
  let trace = ref [] in
  let evaluated = ref 0 in
  let accepted_count = ref 0 in
  let infeasible = ref 0 in
  let step = ref 0 in
  while !step < cfg.iters do
    let n = Stdlib.min cfg.batch (cfg.iters - !step) in
    (* moves draw sequentially from the current state ... *)
    let cands = Array.init n (fun _ -> neighbor rng !cur_arch) in
    let stores =
      Array.map (fun _ -> seed_store ~backend:cfg.backend !cur_arch) cands
    in
    (* ... the batch evaluates concurrently ... *)
    let points =
      Parallel.parallel_map_array
        (fun i ->
          let _, a = cands.(i) in
          match Explore.evaluate_arch ~hints:stores.(i) ~backend:cfg.backend a with
          | p -> Some p
          | exception (Mapper.Unmappable _ | Picachu_error.Error _) -> None)
        (Array.init n Fun.id)
    in
    (* ... and acceptance folds sequentially in batch order *)
    Array.iteri
      (fun i popt ->
        let t = temperature !step in
        incr step;
        incr evaluated;
        let mv, a = cands.(i) in
        (* one Metropolis draw per candidate, needed or not, so the random
           stream is a function of the step count alone *)
        let u = Rng.float rng in
        let sc = Option.bind popt (score cfg.objective) in
        if sc = None then incr infeasible;
        let accept =
          match sc with
          | None -> false
          | Some s -> s > !cur_score || exp ((s -. !cur_score) /. t) > u
        in
        if accept then begin
          incr accepted_count;
          cur_arch := a;
          cur_score := Option.get sc
        end;
        (match (sc, popt) with
        | Some s, Some p when s > !best_score ->
            best_score := s;
            best_point := p;
            best_arch := a
        | _ -> ());
        trace :=
          {
            step = !step;
            move = mv;
            arch_name = a.Arch.name;
            score = sc;
            accepted = accept;
            best_score = !best_score;
          }
          :: !trace)
      points
  done;
  {
    config = cfg;
    init_point;
    best = !best_point;
    best_arch = !best_arch;
    evaluated = !evaluated;
    accepted_count = !accepted_count;
    infeasible = !infeasible;
    trace = List.rev !trace;
  }
