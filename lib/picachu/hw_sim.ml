module Interp = Picachu_ir.Interp
module Kernel = Picachu_ir.Kernel
module Executor = Picachu_cgra.Executor
module Config = Picachu_cgra.Config

type report = {
  result : Interp.result;
  total_cycles : int;
  configs : Config.t list;
}

let run ?fault (c : Compiler.compiled) (env : Interp.env) =
  let outputs = Hashtbl.create 4 in
  let cycles = ref 0 in
  let configs = ref [] in
  let scalars =
    List.fold_left
      (fun scalars (cl : Compiler.compiled_loop) ->
        let loop = cl.Compiler.source in
        let scalars =
          List.fold_left
            (fun acc (name, e) -> (name, Interp.eval_sexpr acc e) :: acc)
            scalars loop.Kernel.pre
        in
        let arrays =
          Hashtbl.fold (fun name a acc -> (name, a) :: acc) outputs env.Interp.arrays
        in
        configs :=
          Config.generate c.Compiler.arch loop cl.Compiler.dfg cl.Compiler.mapping
          :: !configs;
        let r =
          Executor.run_loop ?fault c.Compiler.arch loop cl.Compiler.dfg
            cl.Compiler.mapping ~arrays ~scalars
        in
        cycles := !cycles + r.Executor.cycles;
        List.iter (fun (name, a) -> Hashtbl.replace outputs name a) r.Executor.out_arrays;
        r.Executor.out_scalars @ scalars)
      env.Interp.scalars c.Compiler.loops
  in
  {
    result =
      {
        Interp.out_arrays = Hashtbl.fold (fun name a acc -> (name, a) :: acc) outputs [];
        out_scalars = scalars;
      };
    total_cycles = !cycles;
    configs = List.rev !configs;
  }

let config_words (c : Compiler.compiled) =
  List.fold_left
    (fun acc (cl : Compiler.compiled_loop) ->
      acc
      + Config.words
          (Config.generate c.Compiler.arch cl.Compiler.source cl.Compiler.dfg
             cl.Compiler.mapping))
    0 c.Compiler.loops
