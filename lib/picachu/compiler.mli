(** The PICACHU compiler pipeline (paper §4.3, Figure 6).

    kernel IR -> (vectorize) -> (unroll) -> DFG extraction -> pattern fusion
    -> modulo-scheduled mapping, per loop.  Unroll factors are auto-tuned:
    the pipeline compiles each candidate and keeps the one with the best
    steady-state throughput, exactly the role loop unrolling plays in
    Figure 7a.  Compiled kernels are memoized per (arch, variant, vector,
    kernel). *)

module Kernel = Picachu_ir.Kernel
module Kernels = Picachu_ir.Kernels
module Dfg = Picachu_dfg.Dfg
module Arch = Picachu_cgra.Arch
module Mapper = Picachu_cgra.Mapper

type options = {
  arch : Arch.t;
  fuse : bool;
  unroll_candidates : int list;
  vector : int;  (** 1 = FP32/FP16 mode; 4 = INT16 4-lane mode *)
}

val picachu_options : ?arch:Arch.t -> ?vector:int -> unit -> options
(** Fusion on, UF in {1,2,4}, default 4x4 heterogeneous CGRA. *)

val baseline_options : ?arch:Arch.t -> unit -> options
(** The §5.3.2 baseline: homogeneous CGRA, no fusion, no unrolling,
    scalar. *)

type compiled_loop = {
  source : Kernel.loop;  (** after transformation *)
  dfg : Dfg.t;  (** after fusion (when enabled) *)
  mapping : Mapper.mapping;
}

type compiled = {
  kernel : Kernel.t;
  loops : compiled_loop list;
  unroll : int;
  vector : int;
  arch : Arch.t;
  arch_name : string;
}

val compile_with_unroll : options -> int -> Kernel.t -> compiled
(** Fixed unroll factor (no tuning). Raises {!Mapper.Unmappable} like the
    mapper. *)

val compile_result : options -> Kernel.t -> (compiled, Picachu_error.t) result
(** Auto-tuned over [unroll_candidates] (best steady-state cycles at a
    1024-element pass); candidates that fail to map are skipped.  When
    {e every} candidate fails, returns
    [Error (Unmappable { kernel; reasons })] carrying each candidate's
    unroll factor and mapper message — nothing is discarded. *)

val compile : options -> Kernel.t -> compiled
(** [compile_result] unwrapped; raises {!Picachu_error.Error} on failure. *)

val verify_compiled : options -> compiled -> Picachu_verify.Finding.t list
(** Error-severity findings from the independent validator
    ({!Picachu_verify.Verify}) over everything a compile emitted: the
    transformed kernel IR, each loop's DFG against its source, and each
    modulo schedule against the architecture.  [[]] means the compile
    verifies clean.  When the [PICACHU_VERIFY] environment knob is set,
    {!compile_result} runs this on every success and converts a non-empty
    result into [Error (Verification_failed _)]. *)

val pass_cycles : compiled -> n:int -> int
(** One pass of the whole kernel (all loops) over [n] elements. *)

val per_channel_cycles : compiled -> dim:int -> int
(** Steady-state cost of one channel of length [dim] — what the Shared
    Buffer data-flow model consumes. Excludes first-iteration prologue,
    which successive channels pipeline away. *)

val cached_result :
  options -> Kernels.variant -> string -> (compiled, Picachu_error.t) result
(** [cached_result opts variant kernel_name] — memoized compile of a library
    kernel.  Failures are cached too (negative caching): a known-unmappable
    or unknown kernel is answered from the table without re-running the
    mapper's II search. *)

val cached : options -> Kernels.variant -> string -> compiled
(** [cached_result] unwrapped; raises {!Picachu_error.Error} on failure. *)

val compile_count : unit -> int
(** Number of (non-memoized) compile pipeline runs since program start —
    observability for the negative cache: repeated [cached_result] calls on
    a failing key must not increase it. *)
