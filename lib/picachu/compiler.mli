(** The PICACHU compiler as a staged pipeline (paper §4.3, Figure 6).

    Compilation is a composition of typed, named passes ({!Pipeline}):

    {v kernel IR -(vectorize)-> kernel -(unroll)-> kernel
       per loop: -(extract)-> DFG -(fuse)-> DFG -(schedule)-> mapping v}

    Each pass is instrumented (wall time, invocation counts, pass-specific
    tallies — {!compile_stats}) and carries its own post-condition from the
    independent verifier, so with the [PICACHU_VERIFY] knob on a bad
    artifact fails the compile {e naming the pass that produced it}.
    Unroll factors are auto-tuned: the pipeline compiles each candidate and
    keeps the one with the best steady-state throughput, exactly the role
    loop unrolling plays in Figure 7a.  Results (successes and failures)
    are memoized in a content-addressed cache keyed by the structural
    digest of the canonicalized kernel IR, the architecture and the option
    knobs — see {!cache_key}. *)

module Kernel = Picachu_ir.Kernel
module Kernels = Picachu_ir.Kernels
module Dfg = Picachu_dfg.Dfg
module Arch = Picachu_cgra.Arch
module Mapper = Picachu_cgra.Mapper

type options = {
  arch : Arch.t;
  fuse : bool;
  unroll_candidates : int list;
  vector : int;  (** 1 = FP32/FP16 mode; 4 = INT16 4-lane mode *)
}

val picachu_options : ?arch:Arch.t -> ?vector:int -> unit -> options
(** Fusion on, UF in {1,2,4}, default 4x4 heterogeneous CGRA. *)

val baseline_options : ?arch:Arch.t -> unit -> options
(** The §5.3.2 baseline: homogeneous CGRA, no fusion, no unrolling,
    scalar. *)

type compiled_loop = {
  source : Kernel.loop;  (** after transformation *)
  dfg : Dfg.t;  (** after fusion (when enabled) *)
  mapping : Mapper.mapping;
}

type compiled = {
  kernel : Kernel.t;
  loops : compiled_loop list;
  unroll : int;
  vector : int;
  arch : Arch.t;
  arch_name : string;
}

type hints
(** A warm-start hint store: accepted mappings from already-compiled design
    points, keyed by (post-transform kernel digest, loop ordinal, fuse) —
    the architecture is deliberately {e not} part of the key, so a sweep
    can seed each point's mapper from a sibling one knob away.  Safe to
    share across domains (internally locked).  Every hint is re-validated
    from first principles on the consuming architecture and checked by the
    independent verifier before acceptance ({!Mapper.map_dfg}), so hint
    stores can only save work, never change a result's legality. *)

val hints_create : unit -> hints

val harvest_hints : hints -> options -> compiled -> unit
(** Record each loop's accepted mapping for reuse by sibling compiles. *)

val compile_with_unroll : ?hints:hints -> options -> int -> Kernel.t -> compiled
(** One pipeline run at a fixed unroll factor (no tuning).  Raises
    {!Mapper.Unmappable} like the mapper, and {!Pipeline.Pass_failed} when
    a pass post-condition finds Error-severity problems (only with the
    [PICACHU_VERIFY] knob on). *)

val compile_result :
  ?hints:hints -> options -> Kernel.t -> (compiled, Picachu_error.t) result
(** Auto-tuned over [unroll_candidates] (best steady-state cycles at a
    1024-element pass); candidates that fail to map are skipped.  When
    {e every} candidate fails, returns
    [Error (Unmappable { kernel; reasons })] carrying each candidate's
    unroll factor and mapper message — nothing is discarded.  A
    {!Pipeline.Pass_failed} from any candidate becomes
    [Error (Verification_failed _)] with each finding prefixed by the
    offending pass's name. *)

val compile : options -> Kernel.t -> compiled
(** [compile_result] unwrapped; raises {!Picachu_error.Error} on failure. *)

val select_format :
  ?config:Picachu_verify.Precision.config ->
  ?budget:float ->
  ?candidates:Picachu_numerics.Numfmt.t list ->
  Kernel.t ->
  Picachu_verify.Precision.choice
(** {!Picachu_verify.Precision.select_format} run as the registered
    ["select-format"] pipeline pass: picks the cheapest candidate format
    whose statically proven error bound fits the budget (default
    {!Picachu_verify.Precision.default_budget}), falling back to the
    best-proven (or widest) candidate.  Instrumented under
    {!compile_stats}: candidates tried/proven and fallback count. *)

val verify_compiled : options -> compiled -> Picachu_verify.Finding.t list
(** Error-severity findings from the independent validator
    ({!Picachu_verify.Verify}) over everything a compile emitted: the
    transformed kernel IR, each loop's DFG against its source, and each
    modulo schedule against the architecture.  [[]] means the compile
    verifies clean.  During compilation the same checks run {e per pass}
    as post-conditions; this is the after-the-fact sweep for a [compiled]
    you already hold. *)

val pass_cycles : compiled -> n:int -> int
(** One pass of the whole kernel (all loops) over [n] elements. *)

val per_channel_cycles : compiled -> dim:int -> int
(** Steady-state cost of one channel of length [dim] — what the Shared
    Buffer data-flow model consumes. Excludes first-iteration prologue,
    which successive channels pipeline away. *)

val cache_key : options -> Kernel.t -> string
(** The content address: an MD5 hex digest over
    [Kernel.structural_digest kernel | Arch.structural_digest arch | fuse |
    vector | unroll_candidates].  Kernel and loop {e names} are not part of
    the address — structurally identical kernels share an entry. *)

val memo_result :
  ?hints:hints -> options -> Kernel.t -> (compiled, Picachu_error.t) result
(** Content-addressed memoization of {!compile_result} for any kernel,
    library or user-authored.  Failures are cached too (negative caching):
    a known-unmappable kernel is answered from the table without re-running
    the mapper's II search.  Hits never bump {!compile_count}. *)

val cache_clear : unit -> unit
(** Drop every memoized entry (hit/miss totals are kept).  Benchmarks and
    the search-effort gate use this to force genuinely cold compiles. *)

val cached_result :
  options -> Kernels.variant -> string -> (compiled, Picachu_error.t) result
(** [cached_result opts variant kernel_name] — {!memo_result} on a library
    kernel looked up by name; [Error (Unknown_kernel _)] (not cached) when
    the name does not resolve. *)

val cached : options -> Kernels.variant -> string -> compiled
(** [cached_result] unwrapped; raises {!Picachu_error.Error} on failure. *)

val compile_count : unit -> int
(** Number of (non-memoized) compile pipeline runs since program start —
    observability for the cache: repeated [memo_result] calls on any key,
    failing or not, must not increase it. *)

type cache_stats = { hits : int; misses : int; entries : int }

val cache_stats : unit -> cache_stats
(** Hit/miss totals since program start and current entry count. *)

val pass_names : string list
(** The pipeline's pass names in order:
    ["vectorize"; "unroll"; "extract"; "fuse"; "schedule"] — the valid
    arguments to [--dump-after] and {!Pipeline.set_dump_after}. *)

val compile_stats : unit -> Pipeline.pass_stats list
(** Per-pass instrumentation (runs, wall time, counters) in pipeline
    order: vectorize, unroll, extract, fuse, schedule. *)

val reset_stats : unit -> unit
(** Zero {!compile_stats} (including the mapper's search-effort
    counters). *)
