(** Whole-kernel execution on the configured fabric.

    Runs every loop of a compiled kernel through the cycle-accurate
    {!Picachu_cgra.Executor} — generating the per-tile configuration on the
    way — evaluating the inter-loop scalar glue exactly as the reference
    interpreter does.  This is the "does the compiled artifact actually
    compute the right thing, on time" check the paper delegates to its RTL
    framework. *)

module Interp = Picachu_ir.Interp
module Config = Picachu_cgra.Config

type report = {
  result : Interp.result;  (** streams and scalars, interpreter-shaped *)
  total_cycles : int;  (** sum of the loops' completion cycles *)
  configs : Config.t list;  (** one per loop, in order *)
}

val run : ?fault:Picachu_cgra.Fault.injector -> Compiler.compiled -> Interp.env -> report
(** Raises {!Picachu_cgra.Executor.Timing_violation} if the schedule is
    inconsistent — which the test suite asserts never happens for compiler
    output. Requires a scalar-mode compilation ([vector = 1]).

    [fault] threads one fault-injection stream through every loop of the
    kernel, in order (see {!Picachu_cgra.Executor.run_loop}). *)

val config_words : Compiler.compiled -> int
(** Total configuration-memory footprint of the kernel. *)
