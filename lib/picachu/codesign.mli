(** Automated HW/SW co-design search over the CGRA architecture space.

    MACO (PAPERS.md) automates CGRA hardware/software co-design; this module
    reproduces the substance with a seeded simulated-annealing search over
    grid dimensions, the per-tile FU kind mix ({!Picachu_cgra.Arch.kinds}),
    the CoT share, and the per-tile LUT ROM budget
    ([lut_capacity_bytes]), scoring each candidate with
    {!Explore.evaluate_arch} on the full kernel roster.

    {2 Search mechanics}

    The state is a whole architecture instance.  Neighbor moves change one
    knob: grow/shrink a grid dimension (re-interleaving the body at the
    current CoT share), flip one non-corner tile CoT <-> BaT, re-interleave
    the body at a perturbed share, or halve/double the LUT capacity.
    Acceptance is Metropolis under a geometric cooling schedule; candidates
    are generated and accepted {e sequentially} on the calling thread, but
    each generation's batch of candidates is {e evaluated} concurrently over
    [lib/parallel].

    {2 Warm starts}

    Every candidate is one knob away from the current design, so its mapper
    is seeded with the current design's accepted schedules (PR 6 hints).
    Each candidate gets its {e own} hint store, populated from the current
    state before the batch fans out: a store shared across a concurrent
    batch would let one candidate's harvested schedules leak into a
    sibling's lookups in pool-order, breaking determinism.

    {2 Determinism}

    All random draws (move selection and Metropolis) happen on the calling
    thread in a fixed order, one Metropolis draw per candidate whether or
    not it is needed; candidate evaluation is deterministic per candidate
    (private hint stores, content-addressed cache with deterministic
    values); so the whole trace is a pure function of the seed and config,
    independent of the domain-pool size. *)

type objective =
  | Perf_per_area  (** maximize {!Explore.point.perf_per_area} *)
  | Throughput_under_cap of float
      (** maximize geomean throughput subject to area <= cap (mm2, on
          {!Explore.arch_area}); candidates over the cap are infeasible *)

type config = {
  iters : int;  (** total candidate evaluations *)
  batch : int;  (** candidates evaluated concurrently per generation *)
  seed : int;
  backend : Picachu_ir.Kernels.backend;
  objective : objective;
  init : Picachu_cgra.Arch.t option;
      (** starting design; default the paper's hand-designed 4x4 at a 2/3
          CoT share (the {!Explore.reference_point} architecture) *)
}

val default_config : config
(** 64 iterations, batch 4, seed 1, Taylor, [Perf_per_area], default init. *)

type trace_entry = {
  step : int;  (** candidate ordinal, 1-based *)
  move : string;  (** e.g. ["flip"], ["rows+1"], ["lut/2"] *)
  arch_name : string;
  score : float option;  (** [None]: unmappable or over the area cap *)
  accepted : bool;
  best_score : float;  (** running best after this step *)
}

type result = {
  config : config;
  init_point : Explore.point;
  best : Explore.point;
  best_arch : Picachu_cgra.Arch.t;
  evaluated : int;
  accepted_count : int;
  infeasible : int;
  trace : trace_entry list;  (** in step order, one entry per candidate *)
}

val score : objective -> Explore.point -> float option
(** The scalar a point is ranked by under an objective; [None] if the point
    is infeasible (over the cap). *)

val run : ?config:config -> unit -> result
(** Run the search.  The returned trace is pinned by [(config, seed)] —
    bit-identical across repeat invocations and across domain-pool sizes. *)
