module Fault = Picachu_cgra.Fault
module Interp = Picachu_ir.Interp
module Kernel = Picachu_ir.Kernel
module Kernels = Picachu_ir.Kernels
module Rng = Picachu_tensor.Rng
module Parallel = Picachu_parallel.Parallel

type verdict = Clean | Masked | Corrected of int | Silent | Uncorrected

type trial = {
  verdict : verdict;
  injected : Fault.counts;
  executions : int;
  max_abs_err : float;
}

(* bitwise agreement — float (=) would call NaN /= NaN and make a
   NaN-corrupted-in-both-copies pair undetectable forever *)
let bits_eq a b = Int64.bits_of_float a = Int64.bits_of_float b

let results_agree (a : Interp.result) (b : Interp.result) =
  List.for_all2
    (fun (na, va) (nb, vb) ->
      na = nb && Array.length va = Array.length vb
      && (let ok = ref true in
          Array.iteri (fun i x -> if not (bits_eq x vb.(i)) then ok := false) va;
          !ok))
    a.Interp.out_arrays b.Interp.out_arrays
  && List.for_all2
       (fun (na, va) (nb, vb) -> na = nb && bits_eq va vb)
       a.Interp.out_scalars b.Interp.out_scalars

let error_vs_golden (golden : Interp.result) (r : Interp.result) =
  let worst = ref 0.0 in
  let note d = if Float.is_nan d then worst := infinity else worst := Float.max !worst d in
  List.iter
    (fun (name, a) ->
      match List.assoc_opt name golden.Interp.out_arrays with
      | None -> ()
      | Some g -> Array.iteri (fun i v -> note (Float.abs (v -. g.(i)))) a)
    r.Interp.out_arrays;
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name golden.Interp.out_scalars with
      | None -> ()
      | Some g -> note (Float.abs (v -. g)))
    r.Interp.out_scalars;
  !worst

let run_trial ?(budget = 3) ~fault ~salt (compiled : Compiler.compiled)
    (env : Interp.env) =
  let golden = (Hw_sim.run compiled env).Hw_sim.result in
  let injected = ref Fault.no_faults in
  let execs = ref 0 in
  (* rounds are spaced well below the inter-trial salt stride (see
     [campaign]), so every (trial, round, copy) samples its own stream *)
  let execute round copy =
    let inj = Fault.injector ~salt:((salt * 1024) + (round * 2) + copy) fault in
    let r = (Hw_sim.run ~fault:inj compiled env).Hw_sim.result in
    injected := Fault.add !injected (Fault.counts inj);
    incr execs;
    r
  in
  let finish verdict err =
    { verdict; injected = !injected; executions = !execs; max_abs_err = err }
  in
  let rec round r =
    let a = execute r 0 in
    let b = execute r 1 in
    if results_agree a b then
      if results_agree a golden then
        if r > 0 then finish (Corrected r) 0.0
        else if Fault.total !injected = 0 then finish Clean 0.0
        else finish Masked 0.0
      else finish Silent (error_vs_golden golden a)
    else if r >= budget then finish Uncorrected (error_vs_golden golden a)
    else round (r + 1)
  in
  round 0

type stats = {
  trials : int;
  injected : int;
  detected : int;
  corrected : int;
  silent : int;
  uncorrected : int;
  clean : int;
  masked : int;
  executions : int;
  worst_abs_err : float;
}

let stats_of_trials trials =
  List.fold_left
    (fun acc (t : trial) ->
      let acc =
        {
          acc with
          trials = acc.trials + 1;
          injected = acc.injected + Fault.total t.injected;
          executions = acc.executions + t.executions;
          worst_abs_err = Float.max acc.worst_abs_err t.max_abs_err;
        }
      in
      match t.verdict with
      | Clean -> { acc with clean = acc.clean + 1 }
      | Masked -> { acc with masked = acc.masked + 1 }
      | Corrected _ ->
          { acc with detected = acc.detected + 1; corrected = acc.corrected + 1 }
      | Silent -> { acc with silent = acc.silent + 1 }
      | Uncorrected ->
          { acc with detected = acc.detected + 1; uncorrected = acc.uncorrected + 1 })
    {
      trials = 0;
      injected = 0;
      detected = 0;
      corrected = 0;
      silent = 0;
      uncorrected = 0;
      clean = 0;
      masked = 0;
      executions = 0;
      worst_abs_err = 0.0;
    }
    trials

let pp_stats ppf s =
  Format.fprintf ppf
    "trials=%d injected=%d detected=%d corrected=%d silent=%d uncorrected=%d \
     clean=%d masked=%d executions=%d worst|err|=%g"
    s.trials s.injected s.detected s.corrected s.silent s.uncorrected s.clean
    s.masked s.executions s.worst_abs_err

let default_kernels = [ "relu"; "gelu"; "softmax"; "rmsnorm"; "rope" ]

let campaign ?(budget = 3) ?(trials = 8) ?(n = 24) ?(kernels = default_kernels)
    ~fault () =
  let opts = Compiler.picachu_options () in
  let roster =
    List.map (fun name -> (name, Compiler.cached opts Kernels.picachu name)) kernels
  in
  let descs =
    Array.of_list
      (List.concat
         (List.mapi
            (fun ki (_, compiled) ->
              List.init trials (fun t -> (compiled, (ki * 1000003) + (t * 101))))
            roster))
  in
  let run (compiled, salt) =
    (* inputs are a pure function of (campaign seed, trial salt): trials are
       independent, so the domain pool never changes any result *)
    let rng = Rng.create (fault.Fault.seed lxor (salt * 7919)) in
    let arrays =
      List.map
        (fun name -> (name, Array.init n (fun _ -> Rng.uniform rng ~lo:(-2.0) ~hi:2.0)))
        compiled.Compiler.kernel.Kernel.inputs
    in
    let env = { Interp.arrays; scalars = [ ("n", float_of_int n) ] } in
    run_trial ~budget ~fault ~salt compiled env
  in
  stats_of_trials (Array.to_list (Parallel.parallel_map_array run descs))
