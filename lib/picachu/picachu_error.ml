module Mapper = Picachu_cgra.Mapper
module Executor = Picachu_cgra.Executor

type t =
  | Unmappable of { kernel : string; reasons : (int * string) list }
  | Mapping_failed of string
  | Unknown_kernel of string
  | Execution_fault of string
  | Timing_violation of string
  | Verification_failed of { kernel : string; findings : string list }
  | All_tiers_failed of (string * t) list
  | Replica_crashed of { replica : int }
  | Deadline_exceeded of { request : int; attempt : int }

exception Error of t

let transient = function
  | Execution_fault _ | Timing_violation _ | Replica_crashed _ | Deadline_exceeded _ ->
      true
  | Unmappable _ | Mapping_failed _ | Unknown_kernel _ | Verification_failed _
  | All_tiers_failed _ ->
      false

let of_exn = function
  | Error e -> Some e
  | Mapper.Unmappable msg -> Some (Mapping_failed msg)
  | Executor.Execution_error msg -> Some (Execution_fault msg)
  | Executor.Timing_violation msg -> Some (Timing_violation msg)
  | _ -> None

let rec to_string = function
  | Unmappable { kernel; reasons } ->
      Printf.sprintf "%s: every unroll candidate unmappable (%s)" kernel
        (String.concat "; "
           (List.map (fun (uf, msg) -> Printf.sprintf "UF%d: %s" uf msg) reasons))
  | Mapping_failed msg -> "mapping failed: " ^ msg
  | Unknown_kernel name -> "unknown kernel: " ^ name
  | Execution_fault msg -> "execution fault: " ^ msg
  | Timing_violation msg -> "timing violation: " ^ msg
  | Verification_failed { kernel; findings } ->
      Printf.sprintf "%s: static verification failed (%s)" kernel
        (String.concat "; " findings)
  | Replica_crashed { replica } -> Printf.sprintf "replica %d crashed" replica
  | Deadline_exceeded { request; attempt } ->
      Printf.sprintf "request %d exceeded its deadline on attempt %d" request attempt
  | All_tiers_failed tiers ->
      "all serving tiers failed: "
      ^ String.concat "; "
          (List.map (fun (name, e) -> Printf.sprintf "[%s] %s" name (to_string e)) tiers)
