(** Fault detection and recovery over the cycle-level executor.

    Detection is dual modular redundancy (DMR): every protected execution
    runs the compiled kernel twice with independent fault-sampling streams
    and compares outputs bit-for-bit.  A mismatch means at least one copy was
    corrupted — the fault is {e detected} — and recovery re-executes the pair
    with fresh streams, up to a bounded retry budget.  An agreeing pair is
    accepted; the campaign (which, unlike real hardware, also holds the
    fault-free golden output) classifies accepted-but-wrong answers as
    {e silent} corruption — the probability-squared event DMR cannot see:
    both copies corrupted into bitwise agreement, or one copy corrupted in a
    value that never reaches an output.

    Every trial derives its injector seeds from the campaign seed and the
    trial's index only, so campaigns are bit-identical across domain-pool
    sizes (asserted at pool sizes 1/2/4 in the test suite). *)

module Fault = Picachu_cgra.Fault
module Interp = Picachu_ir.Interp

type verdict =
  | Clean  (** no fault was injected; output correct *)
  | Masked  (** faults injected, first pair agreed, output correct *)
  | Corrected of int
      (** detected, and a retry round produced an agreeing correct pair;
          payload = retry rounds used *)
  | Silent  (** an accepted (agreeing) pair produced a wrong output *)
  | Uncorrected
      (** detected, but no agreeing pair within the retry budget *)

type trial = {
  verdict : verdict;
  injected : Fault.counts;  (** summed over every execution of the trial *)
  executions : int;  (** 2 per DMR round *)
  max_abs_err : float;
      (** worst |accepted - golden| over output streams; 0 unless [Silent];
          for [Uncorrected], the last pair's primary copy vs golden *)
}

val run_trial :
  ?budget:int ->
  fault:Fault.config ->
  salt:int ->
  Compiler.compiled ->
  Interp.env ->
  trial
(** One protected execution ([budget] retry rounds after the initial pair,
    default 3).  [salt] separates trials: each DMR copy of round [r] samples
    an independent stream derived from [(fault.seed, salt, r, copy)].
    Requires a scalar-mode compilation, like {!Hw_sim.run}. *)

type stats = {
  trials : int;
  injected : int;  (** total faults injected across all executions *)
  detected : int;  (** trials whose first DMR pair disagreed *)
  corrected : int;
  silent : int;
  uncorrected : int;
  clean : int;
  masked : int;
  executions : int;
  worst_abs_err : float;
}

val stats_of_trials : trial list -> stats
val pp_stats : Format.formatter -> stats -> unit

val campaign :
  ?budget:int ->
  ?trials:int ->
  ?n:int ->
  ?kernels:string list ->
  fault:Fault.config ->
  unit ->
  stats
(** A seeded fault campaign: for each kernel (default: relu, gelu, softmax,
    rmsnorm, rope — one per nonlinear family), run [trials] (default 8)
    protected executions over [n]-element streams (default 24) with
    deterministic per-trial inputs, fanned out across the ambient domain
    pool.  Never raises on injected faults: a trial that stays corrupted
    past the budget is reported as [Uncorrected], not thrown. *)
