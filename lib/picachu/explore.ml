module Arch = Picachu_cgra.Arch
module Cost = Picachu_cgra.Cost
module Fu = Picachu_cgra.Fu
module Mapper = Picachu_cgra.Mapper
module Kernels = Picachu_ir.Kernels
module Kernel = Picachu_ir.Kernel
module Stats = Picachu_tensor.Stats
module Parallel = Picachu_parallel.Parallel

type point = {
  rows : int;
  cols : int;
  cot_share : float;
  backend : Kernels.backend;
  arch_name : string;
  area_mm2 : float;
  geomean_throughput : float;
  perf_per_area : float;
}

let pass_elements = 1024

let kernel_roster ?(backend = Kernels.Taylor) () =
  List.filter
    (fun (k : Kernel.t) -> k.Kernel.name <> "softmax_online")
    (Kernels.all (Kernels.Picachu backend))

let cot_share_of (arch : Arch.t) =
  let noncorner = ref 0 and cot = ref 0 in
  Array.iteri
    (fun i k ->
      let r, c = Arch.coords arch i in
      let corner =
        (r = 0 || r = arch.Arch.rows - 1) && (c = 0 || c = arch.Arch.cols - 1)
      in
      if not corner then begin
        incr noncorner;
        match k with Fu.CoT | Fu.UniT -> incr cot | Fu.BaT | Fu.BrT -> ()
      end)
    arch.Arch.kinds;
  if !noncorner = 0 then 0.0
  else float_of_int !cot /. float_of_int !noncorner

let arch_area (arch : Arch.t) =
  (* [Cost.cgra_cost] prices each LUT-bearing tile at the calibrated table
     cost regardless of the declared [lut_capacity_bytes]; charge the
     capacity delta against the default budget pro-rata so shrinking the ROM
     is a real area saving the co-design search can exploit.  At the default
     capacity the delta is exactly 0.0, keeping every pinned figure
     bit-identical. *)
  let base = (Cost.cgra_cost arch).Cost.area_mm2 in
  let lut_tiles =
    Array.fold_left
      (fun acc k ->
        match k with Fu.CoT | Fu.UniT -> acc + 1 | Fu.BaT | Fu.BrT -> acc)
      0 arch.Arch.kinds
  in
  let delta =
    (Cost.lut_rom_cost ~bytes:arch.Arch.lut_capacity_bytes).Cost.area_mm2
    -. (Cost.lut_rom_cost ~bytes:Arch.default_lut_capacity_bytes).Cost.area_mm2
  in
  base +. (float_of_int lut_tiles *. delta)

let evaluate_arch ?(cold = false) ?hints ?(backend = Kernels.Taylor)
    (arch : Arch.t) =
  let opts = Compiler.picachu_options ~arch () in
  (* the roster is deduplicated by structural digest before fan-out: two
     kernels that canonicalize identically compile once and share the
     result, independent of (and cheaper than) the content-addressed cache
     doing the same across repeat visits *)
  let roster = Array.of_list (kernel_roster ~backend ()) in
  let digests = Array.map Kernel.structural_digest roster in
  let first_idx = Hashtbl.create 16 in
  Array.iteri
    (fun i d -> if not (Hashtbl.mem first_idx d) then Hashtbl.add first_idx d i)
    digests;
  let uniq =
    Array.of_seq
      (Seq.filter (fun i -> Hashtbl.find first_idx digests.(i) = i)
         (Seq.init (Array.length roster) Fun.id))
  in
  let compile_one k =
    if cold then Compiler.compile_result ?hints opts k
    else Compiler.memo_result ?hints opts k
  in
  (* kernels compile independently (the mapper keeps all its state local),
     so one design point fans its unique roster out across the domain pool *)
  let uniq_results =
    Parallel.parallel_map_array (fun i -> compile_one roster.(i)) uniq
  in
  let by_digest = Hashtbl.create 16 in
  Array.iteri
    (fun j i -> Hashtbl.replace by_digest digests.(i) uniq_results.(j))
    uniq;
  let throughputs =
    Array.to_list digests
    |> List.filter_map (fun d ->
           (* harvesting happens inside the compile itself (every successful
              unroll candidate), so cache hits and dedupe reads need no
              explicit store-back here *)
           match Hashtbl.find by_digest d with
           | Ok compiled ->
               Some
                 (float_of_int pass_elements
                 /. float_of_int (Compiler.pass_cycles compiled ~n:pass_elements))
           | Error _ -> None)
  in
  if throughputs = [] then
    raise (Mapper.Unmappable (arch.Arch.name ^ ": no kernel maps"));
  let geomean_throughput = Stats.geomean throughputs in
  let area_mm2 = arch_area arch in
  {
    rows = arch.Arch.rows;
    cols = arch.Arch.cols;
    cot_share = cot_share_of arch;
    backend;
    arch_name = arch.Arch.name;
    area_mm2;
    geomean_throughput;
    perf_per_area = geomean_throughput /. area_mm2;
  }

let evaluate ?cold ?hints ?backend ~rows ~cols ~cot_share () =
  let p =
    evaluate_arch ?cold ?hints ?backend (Arch.hetero_mix ~rows ~cols ~cot_share)
  in
  (* keep the requested share as the label (the sweep relabels digest-shared
     points the same way); the measured mix share is what [evaluate_arch]
     reports for hand-built instances *)
  { p with cot_share }

let eval_opt ?cold ?hints ?backend ~rows ~cols ~cot_share () =
  match evaluate ?cold ?hints ?backend ~rows ~cols ~cot_share () with
  | p -> Some p
  | exception (Mapper.Unmappable _ | Picachu_error.Error _) -> None

let sweep_one ~sizes ~cot_shares ~backend ~warm () =
  if warm then
    (* Warm mode: parallel across grid sizes, sequential along the CoT-share
       axis within a size, threading a per-size hint store so each point's
       mapper seeds from the previous share's schedules.  Hint stores never
       cross sizes (a resize changes every distance), so the grouping —
       not the pool — decides what each point can see, and results are
       pool-size independent like the flat path. *)
    Parallel.parallel_map_array
      (fun (rows, cols) ->
        let hints = Compiler.hints_create () in
        List.filter_map
          (fun cot_share -> eval_opt ~hints ~backend ~rows ~cols ~cot_share ())
          cot_shares)
      (Array.of_list sizes)
    |> Array.to_list |> List.concat
  else begin
    (* flatten the grid and evaluate design points across the pool; inner
       per-kernel parallelism collapses to sequential inside a worker.
       Structurally identical archs (e.g. CoT shares that round to the same
       tile mix) evaluate once; duplicates reuse the point under their own
       share label. *)
    let grid =
      Array.of_list
        (List.concat_map
           (fun (rows, cols) ->
             List.map (fun cot -> (rows, cols, cot)) cot_shares)
           sizes)
    in
    let digest_of (rows, cols, cot) =
      Arch.structural_digest (Arch.hetero_mix ~rows ~cols ~cot_share:cot)
    in
    let digests = Array.map digest_of grid in
    let first_idx = Hashtbl.create 16 in
    Array.iteri
      (fun i d -> if not (Hashtbl.mem first_idx d) then Hashtbl.add first_idx d i)
      digests;
    let uniq =
      Array.of_seq
        (Seq.filter (fun i -> Hashtbl.find first_idx digests.(i) = i)
           (Seq.init (Array.length grid) Fun.id))
    in
    let uniq_results =
      Parallel.parallel_map_array
        (fun i ->
          let rows, cols, cot_share = grid.(i) in
          eval_opt ~backend ~rows ~cols ~cot_share ())
        uniq
    in
    let by_digest = Hashtbl.create 16 in
    Array.iteri
      (fun j i -> Hashtbl.replace by_digest digests.(i) uniq_results.(j))
      uniq;
    Array.to_list
      (Array.mapi
         (fun i (rows, cols, cot_share) ->
           match Hashtbl.find by_digest digests.(i) with
           | Some p ->
               Some
                 {
                   p with
                   cot_share;
                   arch_name = (Arch.hetero_mix ~rows ~cols ~cot_share).Arch.name;
                 }
           | None -> None)
         grid)
    |> List.filter_map Fun.id
  end

let sweep ?(sizes = [ (3, 3); (4, 4); (4, 8); (5, 5) ])
    ?(cot_shares = [ 1.0 /. 3.0; 0.5; 2.0 /. 3.0; 5.0 /. 6.0 ])
    ?(backends = [ Kernels.Taylor ]) ?(warm = false) () =
  List.concat_map
    (fun backend -> sweep_one ~sizes ~cot_shares ~backend ~warm ())
    backends

let dominates a b =
  a.geomean_throughput >= b.geomean_throughput
  && a.area_mm2 <= b.area_mm2
  && (a.geomean_throughput > b.geomean_throughput || a.area_mm2 < b.area_mm2)

let pareto points =
  points
  |> List.filter (fun p -> not (List.exists (fun q -> dominates q p) points))
  |> List.sort (fun a b -> Float.compare a.area_mm2 b.area_mm2)

let reference_point () = evaluate ~rows:4 ~cols:4 ~cot_share:(2.0 /. 3.0) ()
