module Arch = Picachu_cgra.Arch
module Cost = Picachu_cgra.Cost
module Mapper = Picachu_cgra.Mapper
module Kernels = Picachu_ir.Kernels
module Kernel = Picachu_ir.Kernel
module Stats = Picachu_tensor.Stats
module Parallel = Picachu_parallel.Parallel

type point = {
  rows : int;
  cols : int;
  cot_share : float;
  arch_name : string;
  area_mm2 : float;
  geomean_throughput : float;
  perf_per_area : float;
}

let pass_elements = 1024

let kernel_roster () =
  List.filter
    (fun (k : Kernel.t) -> k.Kernel.name <> "softmax_online")
    (Kernels.all Kernels.Picachu)

let evaluate ~rows ~cols ~cot_share =
  let arch = Arch.hetero_mix ~rows ~cols ~cot_share in
  let opts = Compiler.picachu_options ~arch () in
  (* kernels compile independently (the mapper keeps all its state local),
     so one design point fans its roster out across the domain pool; the
     content-addressed cache deduplicates repeat visits to a design point
     (and structurally identical archs across grid corners) *)
  let throughputs =
    Parallel.parallel_map_array
      (fun k ->
        match Compiler.memo_result opts k with
        | Ok compiled ->
            Some
              (float_of_int pass_elements
              /. float_of_int (Compiler.pass_cycles compiled ~n:pass_elements))
        | Error _ -> None)
      (Array.of_list (kernel_roster ()))
    |> Array.to_list
    |> List.filter_map Fun.id
  in
  if throughputs = [] then
    raise (Mapper.Unmappable (arch.Arch.name ^ ": no kernel maps"));
  let geomean_throughput = Stats.geomean throughputs in
  let area_mm2 = (Cost.cgra_cost arch).Cost.area_mm2 in
  {
    rows;
    cols;
    cot_share;
    arch_name = arch.Arch.name;
    area_mm2;
    geomean_throughput;
    perf_per_area = geomean_throughput /. area_mm2;
  }

let sweep ?(sizes = [ (3, 3); (4, 4); (4, 8); (5, 5) ])
    ?(cot_shares = [ 1.0 /. 3.0; 0.5; 2.0 /. 3.0; 5.0 /. 6.0 ]) () =
  (* flatten the grid and evaluate design points across the pool; inner
     per-kernel parallelism collapses to sequential inside a worker *)
  let grid =
    Array.of_list
      (List.concat_map
         (fun (rows, cols) -> List.map (fun cot -> (rows, cols, cot)) cot_shares)
         sizes)
  in
  Parallel.parallel_map_array
    (fun (rows, cols, cot_share) ->
      match evaluate ~rows ~cols ~cot_share with
      | p -> Some p
      | exception (Mapper.Unmappable _ | Picachu_error.Error _) -> None)
    grid
  |> Array.to_list
  |> List.filter_map Fun.id

let dominates a b =
  a.geomean_throughput >= b.geomean_throughput
  && a.area_mm2 <= b.area_mm2
  && (a.geomean_throughput > b.geomean_throughput || a.area_mm2 < b.area_mm2)

let pareto points =
  points
  |> List.filter (fun p -> not (List.exists (fun q -> dominates q p) points))
  |> List.sort (fun a b -> compare a.area_mm2 b.area_mm2)

let reference_point () = evaluate ~rows:4 ~cols:4 ~cot_share:(2.0 /. 3.0)
