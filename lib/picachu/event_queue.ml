(* Seeded-order binary-heap event queue for the discrete-event cluster
   simulator.

   Events pop in nondecreasing (time, seq) order, where [seq] is the push
   order: two events at the same instant dequeue in the order they were
   scheduled.  That single rule is what makes cluster traces bit-identical
   across domain-pool sizes and repeat runs — ties never fall back to
   physical heap layout or pointer identity.  O(log n) push/pop. *)

type 'a entry = { at : float; seq : int; v : 'a }

type 'a t = {
  mutable heap : 'a entry array;  (* [0, n) is a min-heap on (at, seq) *)
  mutable n : int;
  mutable seq : int;  (* next push order stamp *)
}

let create () = { heap = [||]; n = 0; seq = 0 }
let length t = t.n
let is_empty t = t.n = 0

(* strict (time, seq) order; seq values are unique so this is total *)
let before a b =
  match Float.compare a.at b.at with 0 -> Int.compare a.seq b.seq < 0 | c -> c < 0

let grow t =
  let cap = Array.length t.heap in
  if t.n = cap then begin
    let ncap = Stdlib.max 8 (2 * cap) in
    let h = Array.make ncap t.heap.(0) in
    Array.blit t.heap 0 h 0 t.n;
    t.heap <- h
  end

let push t ~at v =
  if Float.is_nan at then invalid_arg "Event_queue.push: NaN time";
  let e = { at; seq = t.seq; v } in
  t.seq <- t.seq + 1;
  if t.n = 0 && Array.length t.heap = 0 then t.heap <- Array.make 8 e else grow t;
  (* sift up *)
  let i = ref t.n in
  t.n <- t.n + 1;
  t.heap.(!i) <- e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let peek t = if t.n = 0 then None else Some (t.heap.(0).at, t.heap.(0).v)

let pop t =
  if t.n = 0 then None
  else begin
    let top = t.heap.(0) in
    t.n <- t.n - 1;
    if t.n > 0 then begin
      t.heap.(0) <- t.heap.(t.n);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.n && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.n && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!smallest) in
          t.heap.(!smallest) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.at, top.v)
  end
