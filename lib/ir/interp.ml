module Nm = Picachu_numerics

type env = {
  arrays : (string * float array) list;
  scalars : (string * float) list;
}

type result = {
  out_arrays : (string * float array) list;
  out_scalars : (string * float) list;
}

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let lookup_lut name =
  match Nm.Lut_catalog.find_opt name with
  | Some t -> t
  | None -> fail "unknown LUT %s" name

let eval_binop (op : Op.binop) a b =
  match op with
  | Add -> a +. b
  | Sub -> a -. b
  | Mul -> a *. b
  | Div -> a /. b
  | Max -> Float.max a b
  | Min -> Float.min a b

let eval_cmp (op : Op.cmpop) a b =
  let r =
    match op with
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
    | Eq -> a = b
    | Ne -> a <> b
  in
  if r then 1.0 else 0.0

let rec eval_sexpr scalars = function
  | Kernel.Svar s -> (
      match List.assoc_opt s scalars with
      | Some v -> v
      | None -> fail "setup references unknown scalar %s" s)
  | Kernel.Sconst v -> v
  | Kernel.Sbin (op, a, b) -> eval_binop op (eval_sexpr scalars a) (eval_sexpr scalars b)
  | Kernel.Sisqrt e ->
      let v = eval_sexpr scalars e in
      if v <= 0.0 then fail "isqrt of non-positive value %g" v else 1.0 /. sqrt v

(* Trip count: the branch condition compares the incremented induction
   variable against a scalar Input; that scalar is the element count. *)
let trip_count_scalar (loop : Kernel.loop) =
  let body = Array.of_list loop.body in
  let br =
    match
      Array.find_opt (fun (i : Instr.t) -> i.op = Op.Br) body
    with
    | Some i -> i
    | None -> fail "%s: no branch" loop.label
  in
  let cmp_id = List.hd br.args in
  let cmp = body.(cmp_id) in
  match cmp.args with
  | [ _; n_ref ] -> (
      match body.(n_ref).op with
      | Op.Input s -> s
      | _ -> fail "%s: branch bound is not a scalar input" loop.label)
  | _ -> fail "%s: malformed branch compare" loop.label

let trip_scalar = trip_count_scalar

let run_loop ?round (loop : Kernel.loop) ~arrays ~scalars ~outputs =
  (* the optional rounding hook models a finite machine: it sees every
     instruction result and may quantize it (staged per loop so a hook can
     precompute per-loop facts, e.g. the control skeleton) *)
  let round_instr =
    match round with
    | Some r -> r loop
    | None -> fun (_ : Instr.t) v -> v
  in
  let scalars = ref scalars in
  List.iter
    (fun (name, e) -> scalars := (name, eval_sexpr !scalars e) :: !scalars)
    loop.pre;
  let trip_name = trip_count_scalar loop in
  let n =
    match List.assoc_opt trip_name !scalars with
    | Some v -> int_of_float v
    | None -> fail "%s: missing trip scalar %s" loop.label trip_name
  in
  let trips = (n + loop.step - 1) / loop.step in
  let body = Array.of_list loop.body in
  let count = Array.length body in
  let values = Array.make count 0.0 in
  let prev = Array.make count 0.0 in
  let get_array name =
    match List.assoc_opt name arrays with
    | Some a -> a
    | None -> fail "%s: missing input stream %s" loop.label name
  in
  let get_output name len =
    match Hashtbl.find_opt outputs name with
    | Some a -> a
    | None ->
        let a = Array.make len 0.0 in
        Hashtbl.add outputs name a;
        a
  in
  for iter = 0 to trips - 1 do
    let base = iter * loop.step in
    Array.iter
      (fun (i : Instr.t) ->
        let arg k = values.(List.nth i.args k) in
        let v =
          match i.op with
          | Op.Const c -> c
          | Op.Input s -> (
              match List.assoc_opt s !scalars with
              | Some v -> v
              | None -> fail "%s: missing scalar %s" loop.label s)
          | Op.Phi -> if iter = 0 then arg 0 else prev.(List.nth i.args 1)
          | Op.Bin op -> eval_binop op (arg 0) (arg 1)
          | Op.Un Neg -> -.arg 0
          | Op.Un Abs -> Float.abs (arg 0)
          | Op.Un Floor -> Float.floor (arg 0)
          | Op.Cmp op -> eval_cmp op (arg 0) (arg 1)
          | Op.Select -> if arg 0 <> 0.0 then arg 1 else arg 2
          | Op.Load s ->
              let a = get_array s in
              let idx = base + i.offset in
              if idx >= Array.length a then fail "%s: load %s[%d] out of bounds" loop.label s idx
              else a.(idx)
          | Op.Store s ->
              let a = get_output s n in
              let idx = base + i.offset in
              if idx < Array.length a then a.(idx) <- values.(List.nth i.args 1);
              values.(List.nth i.args 1)
          | Op.Fp2fx_int ->
              let ip, _ = Nm.Fixed_point.split (arg 0) in
              float_of_int ip
          | Op.Fp2fx_frac ->
              let _, fp = Nm.Fixed_point.split (arg 0) in
              fp
          | Op.Shift_exp -> Float.ldexp (arg 0) (int_of_float (Float.round (arg 1)))
          | Op.Lut name -> Nm.Lut.eval (lookup_lut name) (arg 0)
          | Op.Br -> arg 0
          | Op.Fused _ -> fail "%s: fused op in IR interpreter" loop.label
        in
        values.(i.id) <- round_instr i v)
      body;
    Array.blit values 0 prev 0 count
  done;
  let scalars' =
    List.fold_left
      (fun acc (name, id) ->
        (name, if trips = 0 then 0.0 else values.(id)) :: acc)
      !scalars loop.exports
  in
  scalars'

let run ?round (k : Kernel.t) env =
  (match Kernel.validate k with
  | Ok () -> ()
  | Error e -> fail "invalid kernel: %s" e);
  let outputs = Hashtbl.create 4 in
  let scalars =
    List.fold_left
      (fun scalars loop ->
        (* streams written by earlier loops become readable *)
        let arrays =
          Hashtbl.fold (fun name a acc -> (name, a) :: acc) outputs env.arrays
        in
        run_loop ?round loop ~arrays ~scalars ~outputs)
      env.scalars k.loops
  in
  {
    out_arrays = Hashtbl.fold (fun name a acc -> (name, a) :: acc) outputs [];
    out_scalars = scalars;
  }
