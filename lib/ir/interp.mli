(** Reference interpreter for kernels.

    Executes a kernel over named input streams and scalars, producing output
    streams and exported scalars, in float64.  This is the functional
    specification the compiler pipeline must preserve: tests check that DFG
    extraction, fusion, unrolling and mapping never change a kernel's
    input/output behaviour (fusion and unrolling are interpreted by
    re-expanding fused nodes / stepping offsets).

    Special ops execute their hardware semantics: [Fp2fx_*] split through
    {!Picachu_numerics.Fixed_point.split}, [Shift_exp] is [ldexp] with a
    rounded shift amount, [Lut] evaluates the named CoT table. *)

type env = {
  arrays : (string * float array) list;
  scalars : (string * float) list;
}

type result = {
  out_arrays : (string * float array) list;
  out_scalars : (string * float) list;
}

exception Runtime_error of string

val lookup_lut : string -> Picachu_numerics.Lut.t
(** The tables shipped with the CoTs, resolved through
    {!Picachu_numerics.Lut_catalog}: ["phi"] (uniform Gaussian CDF) and the
    ["nli.*"] non-uniform segment tables.  Raises [Runtime_error] on an
    unknown table. *)

val run :
  ?round:(Kernel.loop -> Instr.t -> float -> float) -> Kernel.t -> env -> result
(** The trip-count scalar of each loop (its [trip_input]) must divide into
    the streams consistently: every loaded stream must have at least
    [trip * step] elements. Raises [Runtime_error] on missing streams,
    scalars, or malformed bodies.

    [?round] models a finite machine: it is applied to every instruction
    result before it is written back (staged once per loop, so the hook can
    precompute per-loop facts such as the control skeleton).  The default
    is the identity — plain float64 reference semantics. *)

val eval_sexpr : (string * float) list -> Kernel.sexpr -> float

val trip_scalar : Kernel.loop -> string
(** Name of the scalar input the loop's exit branch compares against — its
    element count. Raises [Runtime_error] on a malformed loop. *)
