type backend = Taylor | Nli
type variant = Picachu of backend | Baseline

let picachu = Picachu Taylor
let picachu_nli = Picachu Nli
let backend_name = function Taylor -> "taylor" | Nli -> "nli"

let variant_name = function
  | Picachu Taylor -> "picachu"
  | Picachu Nli -> "picachu-nli"
  | Baseline -> "baseline"

let taylor_order = 6
let use_fp2fx = function Picachu _ -> true | Baseline -> false

(* the softmax-family exponential: argument is max-shifted (<= 0) *)
let exp_shifted_body b variant d =
  match variant with
  | Picachu Nli -> Builder.lut b "nli.exp" d
  | Picachu Taylor | Baseline -> Builder.exp_taylor b ~order:taylor_order d

let mk ~name ~klass ~loops ~inputs ~outputs ?(scalar_inputs = [ "n" ]) () =
  let k =
    { Kernel.name; klass; loops; inputs; outputs; scalar_inputs }
  in
  match Kernel.validate k with
  | Ok () -> k
  | Error e -> failwith ("Kernels." ^ name ^ ": " ^ e)

let relu variant =
  let b = Builder.create ~use_fp2fx:(use_fp2fx variant) () in
  let x = Builder.load b "x" in
  let z = Builder.const b 0.0 in
  let c = Builder.cmp b Op.Gt x z in
  let y = Builder.select b c x z in
  Builder.store b "y" y;
  let loop = Builder.finish b ~label:"relu.1" ~trip_input:"n" () in
  mk ~name:"relu" ~klass:Kernel.EO ~loops:[ loop ] ~inputs:[ "x" ] ~outputs:[ "y" ] ()

let softmax variant =
  let fp2fx = use_fp2fx variant in
  (* loop 1: running maximum *)
  let b1 = Builder.create ~use_fp2fx:fp2fx () in
  let x = Builder.load b1 "x" in
  let neg_inf = Builder.const b1 (-1e30) in
  let _, m_next = Builder.reduce_simple b1 Op.Max ~init:neg_inf x in
  let l1 =
    Builder.finish b1 ~label:"softmax.1" ~reduction:true
      ~exports:[ ("m", m_next) ] ~trip_input:"n" ()
  in
  (* loop 2: numerator + running sum *)
  let b2 = Builder.create ~use_fp2fx:fp2fx () in
  let x = Builder.load b2 "x" in
  let m = Builder.input b2 "m" in
  let d = Builder.sub b2 x m in
  let e = exp_shifted_body b2 variant d in
  Builder.store b2 "e" e;
  let _, s_next = Builder.reduce_simple b2 Op.Add ~init:(Builder.const b2 0.0) e in
  let l2 =
    Builder.finish b2 ~label:"softmax.2" ~reduction:true
      ~exports:[ ("s", s_next) ] ~trip_input:"n" ()
  in
  (* loop 3: normalize *)
  let b3 = Builder.create ~use_fp2fx:fp2fx () in
  let e = Builder.load b3 "e" in
  let s = Builder.input b3 "s" in
  let y = Builder.div b3 e s in
  Builder.store b3 "y" y;
  let l3 = Builder.finish b3 ~label:"softmax.3" ~trip_input:"n" () in
  mk ~name:"softmax" ~klass:Kernel.RE ~loops:[ l1; l2; l3 ] ~inputs:[ "x" ]
    ~outputs:[ "e"; "y" ] ()

let softmax_online variant =
  let fp2fx = use_fp2fx variant in
  (* loop 1: online max + rescaled sum.
       m' = max(m, x);  s' = s * exp(m - m') + exp(x - m')
     both exponential arguments are <= 0 and the seed of -50 keeps the
     first iteration's correction term at exp(-50-x) ~ 0. *)
  let b1 = Builder.create ~use_fp2fx:fp2fx () in
  let x = Builder.load b1 "x" in
  let seed = Builder.const b1 (-50.0) in
  let m = Builder.phi b1 ~init:seed in
  let s = Builder.phi b1 ~init:(Builder.const b1 0.0) in
  let m' = Builder.fmax b1 m x in
  let p = exp_shifted_body b1 variant (Builder.sub b1 x m') in
  let corr = exp_shifted_body b1 variant (Builder.sub b1 m m') in
  let s' = Builder.add b1 (Builder.mul b1 s corr) p in
  Builder.set_phi_next b1 m m';
  Builder.set_phi_next b1 s s';
  let l1 =
    Builder.finish b1 ~label:"softmax_online.1" ~reduction:true
      ~exports:[ ("m", m'); ("s", s') ] ~trip_input:"n" ()
  in
  (* loop 2: y = exp(x - m) / s *)
  let b2 = Builder.create ~use_fp2fx:fp2fx () in
  let x = Builder.load b2 "x" in
  let m = Builder.input b2 "m" in
  let s = Builder.input b2 "s" in
  let e = exp_shifted_body b2 variant (Builder.sub b2 x m) in
  let y = Builder.div b2 e s in
  Builder.store b2 "y" y;
  let l2 = Builder.finish b2 ~label:"softmax_online.2" ~trip_input:"n" () in
  mk ~name:"softmax_online" ~klass:Kernel.RE ~loops:[ l1; l2 ] ~inputs:[ "x" ]
    ~outputs:[ "y" ] ()

let gelu variant =
  match variant with
  | Picachu Taylor ->
      let b = Builder.create () in
      let x = Builder.load b "x" in
      let p = Builder.lut b "phi" x in
      let y = Builder.mul b x p in
      Builder.store b "y" y;
      let loop = Builder.finish b ~label:"gelu.1" ~trip_input:"n" () in
      mk ~name:"gelu" ~klass:Kernel.EO ~loops:[ loop ] ~inputs:[ "x" ] ~outputs:[ "y" ] ()
  | Picachu Nli ->
      (* the non-uniform table holds GeLU itself, not Phi: a single lookup *)
      let b = Builder.create () in
      let x = Builder.load b "x" in
      let y = Builder.lut b "nli.gelu" x in
      Builder.store b "y" y;
      let loop = Builder.finish b ~label:"gelu.1" ~trip_input:"n" () in
      mk ~name:"gelu" ~klass:Kernel.EO ~loops:[ loop ] ~inputs:[ "x" ] ~outputs:[ "y" ] ()
  | Baseline ->
      (* tanh form of Table 1, with tanh expanded through exp *)
      let b = Builder.create ~use_fp2fx:false () in
      let x = Builder.load b "x" in
      let x2 = Builder.mul b x x in
      let x3 = Builder.mul b x2 x in
      let cubic = Builder.mul b x3 (Builder.const b 0.044715) in
      let s = Builder.add b x cubic in
      let z = Builder.mul b s (Builder.const b (sqrt (2.0 /. Float.pi))) in
      let two_z = Builder.mul b z (Builder.const b 2.0) in
      let e = Builder.exp_taylor b ~order:taylor_order two_z in
      let num = Builder.sub b e (Builder.const b 1.0) in
      let den = Builder.add b e (Builder.const b 1.0) in
      let th = Builder.div b num den in
      let w = Builder.add b th (Builder.const b 1.0) in
      let half_x = Builder.mul b x (Builder.const b 0.5) in
      let y = Builder.mul b half_x w in
      Builder.store b "y" y;
      let loop = Builder.finish b ~label:"gelu.1" ~trip_input:"n" () in
      mk ~name:"gelu" ~klass:Kernel.EO ~loops:[ loop ] ~inputs:[ "x" ] ~outputs:[ "y" ] ()

let silu_body b variant x =
  match variant with
  | Picachu Nli -> Builder.lut b "nli.silu" x
  | Picachu Taylor | Baseline ->
      let sg = Builder.sigmoid_taylor b ~order:taylor_order x in
      Builder.mul b x sg

let silu variant =
  let b = Builder.create ~use_fp2fx:(use_fp2fx variant) () in
  let x = Builder.load b "x" in
  let y = silu_body b variant x in
  Builder.store b "y" y;
  let loop = Builder.finish b ~label:"silu.1" ~trip_input:"n" () in
  mk ~name:"silu" ~klass:Kernel.EO ~loops:[ loop ] ~inputs:[ "x" ] ~outputs:[ "y" ] ()

let swiglu variant =
  let b = Builder.create ~use_fp2fx:(use_fp2fx variant) () in
  let a = Builder.load b "a" in
  let g = Builder.load b "b" in
  let s = silu_body b variant a in
  let y = Builder.mul b s g in
  Builder.store b "y" y;
  let loop = Builder.finish b ~label:"swiglu.1" ~trip_input:"n" () in
  mk ~name:"swiglu" ~klass:Kernel.EO ~loops:[ loop ] ~inputs:[ "a"; "b" ] ~outputs:[ "y" ] ()

let geglu variant =
  let b = Builder.create ~use_fp2fx:(use_fp2fx variant) () in
  let a = Builder.load b "a" in
  let g = Builder.load b "b" in
  let ge =
    match variant with
    | Picachu Taylor ->
        let p = Builder.lut b "phi" a in
        Builder.mul b a p
    | Picachu Nli -> Builder.lut b "nli.gelu" a
    | Baseline ->
        let x2 = Builder.mul b a a in
        let x3 = Builder.mul b x2 a in
        let cubic = Builder.mul b x3 (Builder.const b 0.044715) in
        let s = Builder.add b a cubic in
        let z = Builder.mul b s (Builder.const b (sqrt (2.0 /. Float.pi))) in
        let two_z = Builder.mul b z (Builder.const b 2.0) in
        let e = Builder.exp_taylor b ~order:taylor_order two_z in
        let num = Builder.sub b e (Builder.const b 1.0) in
        let den = Builder.add b e (Builder.const b 1.0) in
        let th = Builder.div b num den in
        let w = Builder.add b th (Builder.const b 1.0) in
        let half = Builder.mul b a (Builder.const b 0.5) in
        Builder.mul b half w
  in
  let y = Builder.mul b ge g in
  Builder.store b "y" y;
  let loop = Builder.finish b ~label:"geglu.1" ~trip_input:"n" () in
  mk ~name:"geglu" ~klass:Kernel.EO ~loops:[ loop ] ~inputs:[ "a"; "b" ] ~outputs:[ "y" ] ()

let layernorm variant =
  let fp2fx = use_fp2fx variant in
  let b1 = Builder.create ~use_fp2fx:fp2fx () in
  let x = Builder.load b1 "x" in
  let zero = Builder.const b1 0.0 in
  let _, sum_next = Builder.reduce_simple b1 Op.Add ~init:zero x in
  let x2 = Builder.mul b1 x x in
  let _, sq_next = Builder.reduce_simple b1 Op.Add ~init:zero x2 in
  let l1 =
    Builder.finish b1 ~label:"layernorm.1" ~reduction:true
      ~exports:[ ("sum", sum_next); ("sumsq", sq_next) ] ~trip_input:"n" ()
  in
  let b2 = Builder.create ~use_fp2fx:fp2fx () in
  let x = Builder.load b2 "x" in
  let mu = Builder.input b2 "mu" in
  let inv = Builder.input b2 "inv_sigma" in
  let d = Builder.sub b2 x mu in
  let y = Builder.mul b2 d inv in
  Builder.store b2 "y" y;
  let pre =
    Kernel.
      [
        ("mu", Sbin (Op.Div, Svar "sum", Svar "n"));
        ( "inv_sigma",
          Sisqrt
            (Sbin
               ( Op.Add,
                 Sbin
                   ( Op.Sub,
                     Sbin (Op.Div, Svar "sumsq", Svar "n"),
                     Sbin (Op.Mul, Svar "mu", Svar "mu") ),
                 Sconst 1e-5 )) );
      ]
  in
  let l2 = Builder.finish b2 ~label:"layernorm.2" ~pre ~trip_input:"n" () in
  mk ~name:"layernorm" ~klass:Kernel.RE ~loops:[ l1; l2 ] ~inputs:[ "x" ] ~outputs:[ "y" ] ()

let rmsnorm variant =
  let fp2fx = use_fp2fx variant in
  let b1 = Builder.create ~use_fp2fx:fp2fx () in
  let x = Builder.load b1 "x" in
  let x2 = Builder.mul b1 x x in
  let _, sq_next = Builder.reduce_simple b1 Op.Add ~init:(Builder.const b1 0.0) x2 in
  let l1 =
    Builder.finish b1 ~label:"rmsnorm.1" ~reduction:true
      ~exports:[ ("sumsq", sq_next) ] ~trip_input:"n" ()
  in
  let b2 = Builder.create ~use_fp2fx:fp2fx () in
  let x = Builder.load b2 "x" in
  let inv = Builder.input b2 "inv_rms" in
  let y = Builder.mul b2 x inv in
  Builder.store b2 "y" y;
  let pre =
    Kernel.
      [
        ( "inv_rms",
          Sisqrt (Sbin (Op.Add, Sbin (Op.Div, Svar "sumsq", Svar "n"), Sconst 1e-5)) );
      ]
  in
  let l2 = Builder.finish b2 ~label:"rmsnorm.2" ~pre ~trip_input:"n" () in
  mk ~name:"rmsnorm" ~klass:Kernel.RE ~loops:[ l1; l2 ] ~inputs:[ "x" ] ~outputs:[ "y" ] ()

let rope variant =
  let b = Builder.create ~use_fp2fx:(use_fp2fx variant) () in
  let x1 = Builder.load b "x1" in
  let x2 = Builder.load b "x2" in
  let a = Builder.load b "angle" in
  let s, c =
    match variant with
    | Picachu Nli ->
        let s = Builder.lut b "nli.sin" a in
        let c = Builder.lut b "nli.cos" a in
        (s, c)
    | Picachu Taylor | Baseline ->
        let s = Builder.sin_taylor b ~order:7 a in
        let c = Builder.cos_taylor b ~order:8 a in
        (s, c)
  in
  let y1 = Builder.sub b (Builder.mul b x1 c) (Builder.mul b x2 s) in
  let y2 = Builder.add b (Builder.mul b x1 s) (Builder.mul b x2 c) in
  Builder.store b "y1" y1;
  Builder.store b "y2" y2;
  let loop = Builder.finish b ~label:"rope.1" ~trip_input:"n" () in
  mk ~name:"rope" ~klass:Kernel.EO ~loops:[ loop ] ~inputs:[ "x1"; "x2"; "angle" ]
    ~outputs:[ "y1"; "y2" ] ()

let softcap ?(cap = 30.0) variant =
  let b = Builder.create ~use_fp2fx:(use_fp2fx variant) () in
  let x = Builder.load b "x" in
  let scaled = Builder.mul b x (Builder.const b (1.0 /. cap)) in
  let th =
    match variant with
    | Picachu Nli -> Builder.lut b "nli.tanh" scaled
    | Picachu Taylor | Baseline ->
        (* tanh(z) = (e^{2z} - 1) / (e^{2z} + 1) *)
        let two_z = Builder.mul b scaled (Builder.const b 2.0) in
        let e = Builder.exp_taylor b ~order:taylor_order two_z in
        let num = Builder.sub b e (Builder.const b 1.0) in
        let den = Builder.add b e (Builder.const b 1.0) in
        Builder.div b num den
  in
  let y = Builder.mul b th (Builder.const b cap) in
  Builder.store b "y" y;
  let loop = Builder.finish b ~label:"softcap.1" ~trip_input:"n" () in
  mk ~name:"softcap" ~klass:Kernel.EO ~loops:[ loop ] ~inputs:[ "x" ] ~outputs:[ "y" ] ()

let relu_squared variant =
  let b = Builder.create ~use_fp2fx:(use_fp2fx variant) () in
  let x = Builder.load b "x" in
  let z = Builder.const b 0.0 in
  let c = Builder.cmp b Op.Gt x z in
  let r = Builder.select b c x z in
  let y = Builder.mul b r r in
  Builder.store b "y" y;
  let loop = Builder.finish b ~label:"relu2.1" ~trip_input:"n" () in
  mk ~name:"relu_squared" ~klass:Kernel.EO ~loops:[ loop ] ~inputs:[ "x" ] ~outputs:[ "y" ] ()

let extras variant = [ softcap variant; relu_squared variant ]

let exp_kernel ?(order = taylor_order) variant =
  let b = Builder.create ~use_fp2fx:(use_fp2fx variant) () in
  let x = Builder.load b "x" in
  let e = Builder.exp_taylor b ~order x in
  Builder.store b "y" e;
  let loop = Builder.finish b ~label:"exp.1" ~trip_input:"n" () in
  mk ~name:"exp" ~klass:Kernel.EO ~loops:[ loop ] ~inputs:[ "x" ] ~outputs:[ "y" ] ()

let all variant =
  [
    softmax variant;
    softmax_online variant;
    relu variant;
    gelu variant;
    geglu variant;
    swiglu variant;
    silu variant;
    layernorm variant;
    rmsnorm variant;
    rope variant;
  ]

let by_name variant name = List.find (fun k -> k.Kernel.name = name) (all variant)
