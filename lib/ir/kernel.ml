type sexpr =
  | Svar of string
  | Sconst of float
  | Sbin of Op.binop * sexpr * sexpr
  | Sisqrt of sexpr

type loop = {
  label : string;
  pre : (string * sexpr) list;
  body : Instr.t list;
  reduction : bool;
  exports : (string * int) list;
  step : int;
  vector_width : int;
}

type klass = EO | RE

type t = {
  name : string;
  klass : klass;
  loops : loop list;
  inputs : string list;
  outputs : string list;
  scalar_inputs : string list;
}

let instr_count loop = List.length loop.body
let kernel_instr_count k = List.fold_left (fun acc l -> acc + instr_count l) 0 k.loops
let find loop id = List.find (fun (i : Instr.t) -> i.id = id) loop.body

let validate_loop (k : t) (loop : loop) =
  let n = List.length loop.body in
  let ids = List.mapi (fun pos (i : Instr.t) -> (pos, i)) loop.body in
  let err fmt = Printf.ksprintf (fun s -> Error (loop.label ^ ": " ^ s)) fmt in
  let rec check = function
    | [] -> Ok ()
    | (pos, (i : Instr.t)) :: rest ->
        if i.id <> pos then err "instruction %d has id %d (ids must be dense)" pos i.id
        else
          let bad_arg =
            List.find_opt
              (fun a ->
                a < 0 || a >= n
                || (a >= pos && not (i.op = Op.Phi && List.nth i.args 1 = a)))
              i.args
          in
          let arity_ok =
            match i.op with
            | Op.Const _ | Op.Input _ -> i.args = []
            | Op.Bin _ | Op.Cmp _ -> List.length i.args = 2
            | Op.Un _ | Op.Br | Op.Fp2fx_int | Op.Fp2fx_frac | Op.Lut _ ->
                List.length i.args = 1
            | Op.Select -> List.length i.args = 3
            | Op.Phi -> List.length i.args = 2
            | Op.Load _ -> List.length i.args <= 1
            | Op.Store _ -> List.length i.args >= 1 && List.length i.args <= 2
            | Op.Shift_exp -> List.length i.args = 2
            | Op.Fused _ -> List.length i.args >= 1
          in
          if not arity_ok then err "instruction %%%d (%s): bad arity" i.id (Op.name i.op)
          else (
            match bad_arg with
            | Some a -> err "instruction %%%d: bad argument %%%d" i.id a
            | None -> (
                match i.op with
                | Op.Load s when not (List.mem s k.inputs || List.mem s k.outputs) ->
                    (* intermediate streams produced by an earlier loop are
                       declared as outputs and may be re-read *)
                    err "load from undeclared input %s" s
                | Op.Store s when not (List.mem s k.outputs) ->
                    err "store to undeclared output %s" s
                | _ -> check rest))
  in
  match check ids with
  | Error _ as e -> e
  | Ok () ->
      let brs =
        List.filter (fun (i : Instr.t) ->
            match i.op with Op.Br | Op.Fused Op.Cmp_br -> true | _ -> false)
          loop.body
      in
      if List.length brs <> 1 then err "expected exactly one branch, found %d" (List.length brs)
      else if loop.step < 1 then err "step < 1"
      else if loop.vector_width < 1 then err "vector_width < 1"
      else
        let bad_export =
          List.find_opt (fun (_, id) -> id < 0 || id >= n) loop.exports
        in
        (match bad_export with
        | Some (name, id) -> err "export %s references missing instruction %%%d" name id
        | None -> Ok ())

let validate k =
  let rec all = function
    | [] -> Ok ()
    | l :: rest -> ( match validate_loop k l with Ok () -> all rest | e -> e)
  in
  all k.loops

(* ---------------------------------------------------- canonical hashing *)

(* A canonical serialization for content addressing: every semantically
   meaningful field, in a fixed order, with the kernel name and the loop
   labels deliberately omitted — two kernels that differ only in naming are
   the same compilation problem and must share a cache entry.  Floats are
   rendered with %h (exact hex) so the serialization never loses bits. *)

let canonical_op buf (op : Op.t) =
  let add = Buffer.add_string buf in
  match op with
  | Op.Const v -> add (Printf.sprintf "const:%h" v)
  | Op.Bin b -> add ("bin:" ^ Op.name (Op.Bin b))
  | Op.Un u -> add (Op.name (Op.Un u))
  | Op.Cmp c ->
      add
        ("cmp:"
        ^
        match c with
        | Op.Lt -> "lt"
        | Op.Le -> "le"
        | Op.Gt -> "gt"
        | Op.Ge -> "ge"
        | Op.Eq -> "eq"
        | Op.Ne -> "ne")
  | Op.Select -> add "select"
  | Op.Phi -> add "phi"
  | Op.Load s -> add ("load:" ^ s)
  | Op.Store s -> add ("store:" ^ s)
  | Op.Input s -> add ("input:" ^ s)
  | Op.Fp2fx_int -> add "fp2fx.i"
  | Op.Fp2fx_frac -> add "fp2fx.f"
  | Op.Shift_exp -> add "shexp"
  | Op.Lut s -> add ("lut:" ^ s)
  | Op.Br -> add "br"
  | Op.Fused f -> add ("fused:" ^ Op.name (Op.Fused f))

let rec canonical_sexpr buf = function
  | Svar v -> Buffer.add_string buf ("v:" ^ v)
  | Sconst c -> Buffer.add_string buf (Printf.sprintf "c:%h" c)
  | Sbin (op, a, b) ->
      Buffer.add_string buf ("(" ^ Op.name (Op.Bin op) ^ " ");
      canonical_sexpr buf a;
      Buffer.add_char buf ' ';
      canonical_sexpr buf b;
      Buffer.add_char buf ')'
  | Sisqrt e ->
      Buffer.add_string buf "(isqrt ";
      canonical_sexpr buf e;
      Buffer.add_char buf ')'

let canonical_string (k : t) =
  let buf = Buffer.create 512 in
  let add = Buffer.add_string buf in
  add (match k.klass with EO -> "EO" | RE -> "RE");
  add ";in=";
  add (String.concat "," k.inputs);
  add ";out=";
  add (String.concat "," k.outputs);
  add ";scal=";
  add (String.concat "," k.scalar_inputs);
  List.iter
    (fun l ->
      add
        (Printf.sprintf ";loop[red=%b,step=%d,vw=%d]" l.reduction l.step
           l.vector_width);
      List.iter
        (fun (name, e) ->
          add (";pre " ^ name ^ "=");
          canonical_sexpr buf e)
        l.pre;
      List.iter
        (fun (name, id) -> add (Printf.sprintf ";exp %s=%d" name id))
        l.exports;
      List.iter
        (fun (i : Instr.t) ->
          add (Printf.sprintf ";%d=" i.id);
          canonical_op buf i.op;
          List.iter (fun a -> add (Printf.sprintf " %d" a)) i.args;
          if i.offset <> 0 then add (Printf.sprintf " +%d" i.offset))
        l.body)
    k.loops;
  Buffer.contents buf

let structural_digest k = Digest.to_hex (Digest.string (canonical_string k))

let pp fmt k =
  Format.fprintf fmt "kernel %s (%s)@." k.name
    (match k.klass with EO -> "EO" | RE -> "RE");
  List.iter
    (fun l ->
      Format.fprintf fmt "  loop %s (step %d, vw %d)%s@." l.label l.step l.vector_width
        (if l.reduction then " [reduction]" else "");
      List.iter (fun i -> Format.fprintf fmt "    %a@." Instr.pp i) l.body)
    k.loops
