(** Loop-based kernels.

    A kernel is the unit the PICACHU compiler offloads to the CGRA: one or
    more single-level loops over 1-D streams (§3.1 — higher-rank tensors are
    flattened), plus cheap scalar glue computed between loops (e.g. the
    inverse square root that normalization applies outside its hot loops,
    §4.1).

    Loops are classified element-wise (EO) or reduction-then-element-wise
    (RE) following Table 1; the classification drives the Shared Buffer data
    flow cases of §4.2.4. *)

type sexpr =
  | Svar of string
  | Sconst of float
  | Sbin of Op.binop * sexpr * sexpr
  | Sisqrt of sexpr  (** the libc-style inverse square root (§4.1) *)

type loop = {
  label : string;  (** e.g. ["softmax.2"] *)
  pre : (string * sexpr) list;
      (** scalars computed before the loop starts, in order *)
  body : Instr.t list;  (** includes the induction/branch skeleton *)
  reduction : bool;
  exports : (string * int) list;
      (** scalar name -> instr whose last-iteration value becomes live-out *)
  step : int;  (** elements consumed per iteration (UF after unrolling) *)
  vector_width : int;  (** lanes per element op (INT16 vectorization) *)
}

type klass = EO | RE

type t = {
  name : string;
  klass : klass;
  loops : loop list;
  inputs : string list;  (** stream names read *)
  outputs : string list;  (** stream names written *)
  scalar_inputs : string list;  (** required scalar live-ins, e.g. ["n"] *)
}

val instr_count : loop -> int
val kernel_instr_count : t -> int
val find : loop -> int -> Instr.t
(** Lookup by id; raises [Not_found]. *)

val validate : t -> (unit, string) result
(** Structural checks: ids dense and ordered, args resolve, the only forward
    references are phi back edges, exactly one [Br], stores name declared
    outputs, loads name declared inputs. *)

val canonical_string : t -> string
(** Canonical serialization for content addressing: every semantically
    meaningful field in a fixed order, with the kernel name and the loop
    labels omitted — two kernels that differ only in naming describe the
    same compilation problem.  Floats are serialized exactly (hex). *)

val structural_digest : t -> string
(** MD5 hex digest of {!canonical_string} — the kernel component of the
    compiler's content-addressed cache key. *)

val pp : Format.formatter -> t -> unit
