(* Locate the loop-control skeleton: br -> cmp -> iv_add -> iv_phi. *)
type skeleton = {
  br_id : int;
  cmp_id : int;
  iv_add_id : int;
  iv_phi_id : int;
  bound_id : int;  (* the Input holding the trip count *)
}

let find_skeleton (body : Instr.t array) label =
  let br =
    match Array.find_opt (fun (i : Instr.t) -> i.op = Op.Br) body with
    | Some i -> i
    | None -> failwith (label ^ ": no branch")
  in
  let cmp = body.(List.hd br.args) in
  match cmp.args with
  | [ iv_add_id; bound_id ] ->
      let iv_add = body.(iv_add_id) in
      let iv_phi_id = List.hd iv_add.args in
      { br_id = br.id; cmp_id = cmp.id; iv_add_id; iv_phi_id; bound_id }
  | _ -> failwith (label ^ ": malformed loop compare")

let unroll uf (loop : Kernel.loop) =
  if uf < 1 then invalid_arg "Transform.unroll: uf < 1";
  if uf = 1 then loop
  else if loop.step <> 1 then invalid_arg "Transform.unroll: loop already unrolled"
  else
    let body = Array.of_list loop.body in
    let count = Array.length body in
    let sk = find_skeleton body loop.label in
    let excluded id = id = sk.br_id || id = sk.cmp_id || id = sk.iv_add_id in
    let out = ref [] and fresh = ref 0 in
    let emit ?(offset = 0) op args =
      let id = !fresh in
      incr fresh;
      out := Instr.make ~offset ~id ~op ~args () :: !out;
      id
    in
    let maps = Array.init uf (fun _ -> Array.make count (-1)) in
    (* a constant or scalar input is worth copying only if something we keep
       consumes it: the excluded skeleton ops are re-synthesized around a
       fresh [uf] constant, so e.g. the old induction step literal would
       otherwise survive as a dead instruction *)
    let keep = Array.make count false in
    Array.iter
      (fun (i : Instr.t) ->
        if not (excluded i.id) then List.iter (fun a -> keep.(a) <- true) i.args)
      body;
    keep.(sk.bound_id) <- true;
    List.iter (fun (_, id) -> keep.(id) <- true) loop.exports;
    (* phis other than the induction variable are reduction accumulators *)
    let reduction_phis = ref [] in
    for j = 0 to uf - 1 do
      Array.iter
        (fun (i : Instr.t) ->
          if excluded i.id then ()
          else
            let m a = maps.(j).(a) in
            match i.op with
            | Op.Const _ | Op.Input _ ->
                if keep.(i.id) then
                  maps.(j).(i.id) <- (if j = 0 then emit i.op [] else maps.(0).(i.id))
            | Op.Phi when i.id = sk.iv_phi_id ->
                maps.(j).(i.id) <-
                  (if j = 0 then
                     let init = m (List.hd i.args) in
                     emit Op.Phi [ init; init ] (* next patched below *)
                   else maps.(0).(i.id))
            | Op.Phi -> (
                let orig_next = List.nth i.args 1 in
                if j = 0 then begin
                  let init = m (List.hd i.args) in
                  let id = emit Op.Phi [ init; init ] in
                  maps.(0).(i.id) <- id;
                  reduction_phis := (id, orig_next) :: !reduction_phis
                end
                else
                  (* copy j consumes the running value from copy j-1 *)
                  maps.(j).(i.id) <- maps.(j - 1).(orig_next))
            | Op.Load _ | Op.Store _ ->
                maps.(j).(i.id) <- emit ~offset:(i.offset + j) i.op (List.map m i.args)
            | _ -> maps.(j).(i.id) <- emit i.op (List.map m i.args))
        body
    done;
    let uf_const = emit (Op.Const (float_of_int uf)) [] in
    let iv_new = maps.(0).(sk.iv_phi_id) in
    let iv_add' = emit (Op.Bin Op.Add) [ iv_new; uf_const ] in
    let cmp' = emit (Op.Cmp Op.Lt) [ iv_add'; maps.(0).(sk.bound_id) ] in
    let _br' = emit Op.Br [ cmp' ] in
    let final = Array.of_list (List.rev !out) in
    (* patch phi back edges *)
    let patch id next =
      final.(id) <- { (final.(id)) with args = [ List.hd final.(id).args; next ] }
    in
    patch iv_new iv_add';
    List.iter (fun (id, orig_next) -> patch id maps.(uf - 1).(orig_next)) !reduction_phis;
    let exports =
      List.map
        (fun (name, id) ->
          let mapped = maps.(uf - 1).(id) in
          (name, if mapped >= 0 then mapped else maps.(0).(id)))
        loop.exports
    in
    { loop with body = Array.to_list final; exports; step = uf }

let vectorize vf (loop : Kernel.loop) =
  if vf < 1 then invalid_arg "Transform.vectorize: vf < 1";
  if vf = 1 then loop
  else
    (* divisions are split into one node per lane; everything else keeps its
       node count (control ops stay scalar, vector FUs widen in place) *)
    let body = Array.of_list loop.body in
    let count = Array.length body in
    let remap = Array.make count (-1) in
    let out = ref [] and fresh = ref 0 in
    let emit ?(offset = 0) op args =
      let id = !fresh in
      incr fresh;
      out := Instr.make ~offset ~id ~op ~args () :: !out;
      id
    in
    Array.iter
      (fun (i : Instr.t) ->
        let args = List.map (fun a -> if remap.(a) >= 0 then remap.(a) else a) i.args in
        (* forward phi refs are not yet remapped; fix in a second pass *)
        let args0 = args in
        remap.(i.id) <- emit ~offset:i.offset i.op args0;
        if i.op = Op.Bin Op.Div then
          for _ = 2 to vf do
            ignore (emit ~offset:i.offset i.op args0)
          done)
      body;
    let final = Array.of_list (List.rev !out) in
    (* second pass: phi back edges are forward references, so their targets
       were not yet remapped during the first pass; patch them from the
       original body's structure *)
    Array.iter
      (fun (orig : Instr.t) ->
        if orig.op = Op.Phi then
          match orig.args with
          | [ _; orig_next ] when orig_next > orig.id ->
              let pos = remap.(orig.id) in
              let i = final.(pos) in
              final.(pos) <-
                { i with args = [ List.hd i.args; remap.(orig_next) ] }
          | _ -> ())
      body;
    let exports = List.map (fun (name, id) -> (name, remap.(id))) loop.exports in
    { loop with body = Array.to_list final; exports; vector_width = vf }

let unroll_kernel uf (k : Kernel.t) =
  { k with loops = List.map (unroll uf) k.loops }

let vectorize_kernel vf (k : Kernel.t) =
  { k with loops = List.map (vectorize vf) k.loops }
