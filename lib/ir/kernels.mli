(** The nonlinear-operation kernel library (paper Table 1).

    Every kernel is authored per {!variant}: the PICACHU forms use the FP2FX
    special unit plus an approximation {!backend} — [Taylor] expands
    operators around reduced ranges (the paper's algorithm, CoT LUT for
    Phi), [Nli] replaces the expansions with single lookups into non-uniform
    error-equalized segment tables ({!Picachu_numerics.Nli}).  The baseline
    form expands the same mathematics with primitive ops only (floor-based
    splits, tanh form of GeLU) — the configuration the homogeneous baseline
    CGRA of §5.3.2 must run.

    Loop structure follows §3.1: element-wise operations are one loop;
    softmax is three loops (max-reduce, exp-and-sum-reduce, divide);
    normalizations are two loops (reduce, normalize), with the inverse
    square root in the inter-loop scalar glue.

    All kernels use the scalar input ["n"] as trip count; RoPE interprets
    ["n"] as the number of rotated pairs and expects its angle stream
    pre-reduced into [-pi/2, pi/2]. *)

type backend = Taylor | Nli
(** Approximation backend for the Picachu kernel forms.  [Taylor]: the
    paper's range-reduced polynomial expansions.  [Nli]: non-uniform linear
    interpolation — one [Op.Lut] per operator into an error-equalized
    segment table ("nli.*" names resolved by
    {!Picachu_numerics.Lut_catalog}). *)

type variant = Picachu of backend | Baseline

val picachu : variant
(** [Picachu Taylor] — the paper's configuration and the default
    everywhere a variant used to be just "Picachu". *)

val picachu_nli : variant
(** [Picachu Nli]. *)

val backend_name : backend -> string
(** ["taylor"] / ["nli"]. *)

val variant_name : variant -> string
(** ["picachu"], ["picachu-nli"], ["baseline"]. *)

val taylor_order : int
(** Polynomial order used in kernel expansions (6, matching
    {!Picachu_numerics.Taylor.default}). *)

val relu : variant -> Kernel.t
val softmax : variant -> Kernel.t
(** Three-loop form (max-reduce, exp-and-sum, divide). *)

val softmax_online : variant -> Kernel.t
(** Single-pass (online) softmax in the FlashAttention style the paper's
    Case 3 relies on (§4.2.4): one fused loop maintains the running maximum
    and the rescaled running sum, and one element-wise loop normalizes.
    Two passes over the data instead of three; the price is two exponentials
    per element in the reduce loop.  Requires inputs above -50 (the running
    maximum is seeded there so that its first correction term flushes to
    zero). *)

val gelu : variant -> Kernel.t
(** LUT form ([x * Phi(x)]) in the Picachu variant; tanh form in Baseline. *)

val silu : variant -> Kernel.t
val swiglu : variant -> Kernel.t
(** Element-wise part; the two linear projections run on the systolic
    array. Streams: ["a"] (gate pre-activation), ["b"]. *)

val geglu : variant -> Kernel.t
val layernorm : variant -> Kernel.t
val rmsnorm : variant -> Kernel.t
val rope : variant -> Kernel.t
(** Streams ["x1"], ["x2"], ["angle"]; outputs ["y1"], ["y2"]. *)

val softcap : ?cap:float -> variant -> Kernel.t
(** Logit soft-capping, [y = c * tanh(x / c)] (Gemma-style) — an operation
    published *after* the accelerators the paper compares against, included
    to exercise the future-operation claim (§3.2.2). tanh expands through
    the exponential decomposition. *)

val relu_squared : variant -> Kernel.t
(** Squared ReLU, [y = max(x,0)^2] (Primer) — same motivation. *)

val extras : variant -> Kernel.t list
(** The future-operation kernels above (not part of [all]; the paper's
    experiment roster stays Table 1). *)

val exp_kernel : ?order:int -> variant -> Kernel.t
(** Element-wise [y = exp x] micro-kernel with a selectable Taylor order —
    the user-defined-precision knob (§3.2.3) used by the order ablation. *)

val all : variant -> Kernel.t list
(** The Table 1 kernels plus the online-softmax variant. *)

val by_name : variant -> string -> Kernel.t
(** Raises [Not_found] for unknown names. *)
